#include "shtrace/store/key.hpp"

#include <sstream>

#include "shtrace/util/hexfloat.hpp"

namespace shtrace::store {

namespace {

const char* methodName(IntegrationMethod m) {
    switch (m) {
        case IntegrationMethod::BackwardEuler:
            return "be";
        case IntegrationMethod::Trapezoidal:
            return "trap";
        case IntegrationMethod::Gear2:
            return "gear2";
    }
    return "?";
}

void criterionSansTarget(std::ostringstream& os,
                         const CriterionOptions& c) {
    // Everything that shapes h except the degradation target: entries
    // differing only there trace the same curve family at nearby levels.
    os << "criterion-family frac=" << toHexFloat(c.transitionFraction)
       << " refSetup=" << toHexFloat(c.referenceSetupSkew)
       << " refHold=" << toHexFloat(c.referenceHoldSkew)
       << " window=" << toHexFloat(c.observationWindow) << '\n';
}

std::string problemText(const RegisterFixture& fixture,
                        const CriterionOptions& criterion,
                        const SimulationRecipe& recipe) {
    std::ostringstream os;
    os << "format " << kFormatVersion << '\n';
    os << canonicalFixture(fixture);
    criterionSansTarget(os, criterion);
    os << canonicalRecipe(recipe);
    return os.str();
}

}  // namespace

std::string toHexKey(std::uint64_t key) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[key & 0xF];
        key >>= 4;
    }
    return out;
}

std::optional<std::uint64_t> parseHexKey(const std::string& text) {
    if (text.size() != 16) {
        return std::nullopt;
    }
    std::uint64_t key = 0;
    for (const char c : text) {
        key <<= 4;
        if (c >= '0' && c <= '9') {
            key |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            key |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return std::nullopt;
        }
    }
    return key;
}

std::string canonicalFixture(const RegisterFixture& fixture) {
    std::ostringstream os;
    os << "fixture q=" << fixture.q.index << " d=" << fixture.d.index
       << " clk=" << fixture.clk.index
       << " vdd=" << toHexFloat(fixture.vdd)
       << " edge=" << fixture.activeEdgeIndex
       << " qInitial=" << toHexFloat(fixture.qInitial)
       << " qFinal=" << toHexFloat(fixture.qFinal)
       << " edgeOverride=" << toHexFloat(fixture.activeEdgeOverride) << '\n';
    os << fixture.circuit.canonicalDescription();
    return os.str();
}

std::string canonicalCriterion(const CriterionOptions& c) {
    std::ostringstream os;
    criterionSansTarget(os, c);
    os << "criterion degradation=" << toHexFloat(c.degradation) << '\n';
    return os.str();
}

std::string canonicalRecipe(const SimulationRecipe& r) {
    std::ostringstream os;
    os << "recipe method=" << methodName(r.method)
       << " dt=" << toHexFloat(r.dtNominal)
       << " gmin=" << toHexFloat(r.gmin)
       << " reuse=" << (r.jacobianReuse ? 1 : 0)
       << " linalg=" << linalgBackendName(r.linalg)
       << " batch=" << (r.batchDeviceEval ? 1 : 0)
       << " newton=" << r.newton.maxIterations << ' '
       << toHexFloat(r.newton.relTol) << ' ' << toHexFloat(r.newton.vAbsTol)
       << ' ' << toHexFloat(r.newton.iAbsTol) << ' '
       << toHexFloat(r.newton.residualTol) << ' '
       << toHexFloat(r.newton.maxUpdate) << '\n';
    return os.str();
}

std::string canonicalIndependent(const IndependentOptions& o) {
    std::ostringstream os;
    os << "independent pinned=" << toHexFloat(o.pinnedSkew)
       << " lo=" << toHexFloat(o.lo) << " hi=" << toHexFloat(o.hi)
       << " tol=" << toHexFloat(o.tolerance) << " maxIter=" << o.maxIterations
       << " hTol=" << toHexFloat(o.hTol)
       << " seed=" << toHexFloat(o.newtonSeed) << '\n';
    return os.str();
}

std::string canonicalSeed(const SeedOptions& o) {
    std::ostringstream os;
    os << "seed holdLarge=" << toHexFloat(o.holdSkewLarge)
       << " lo=" << toHexFloat(o.setupLo) << " hi=" << toHexFloat(o.setupHi)
       << " bracket=" << toHexFloat(o.bracketTarget)
       << " maxBisect=" << o.maxBisections
       << " maxExpand=" << o.maxExpansions << '\n';
    return os.str();
}

std::string canonicalTracer(const TracerOptions& o) {
    std::ostringstream os;
    os << "tracer corrector=" << static_cast<int>(o.correctorKind)
       << " mpnr=" << o.corrector.maxIterations << ' '
       << toHexFloat(o.corrector.skewRelTol) << ' '
       << toHexFloat(o.corrector.skewAbsTol) << ' '
       << toHexFloat(o.corrector.hTol) << ' '
       << toHexFloat(o.corrector.maxStep) << ' '
       << toHexFloat(o.corrector.gradientTol)
       << " bounds=" << toHexFloat(o.bounds.setupMin) << ' '
       << toHexFloat(o.bounds.setupMax) << ' '
       << toHexFloat(o.bounds.holdMin) << ' '
       << toHexFloat(o.bounds.holdMax)
       << " step=" << toHexFloat(o.stepLength) << ' '
       << toHexFloat(o.minStepLength) << ' ' << toHexFloat(o.maxStepLength)
       << ' ' << toHexFloat(o.growFactor) << " easy=" << o.easyIterations
       << " maxRatio=" << toHexFloat(o.maxCorrectionRatio)
       << " maxPoints=" << o.maxPoints
       << " both=" << (o.traceBothDirections ? 1 : 0)
       << " retry=" << o.transientRetryLimit << ' '
       << toHexFloat(o.transientRetryJitter)
       << " reseed=" << o.plateauReseedLimit << ' '
       << toHexFloat(o.plateauReseedPull) << '\n';
    return os.str();
}

std::string canonicalSurfaceOptions(const SurfaceMethodOptions& o) {
    std::ostringstream os;
    os << "surface n=" << o.setupPoints << 'x' << o.holdPoints
       << " setup=" << toHexFloat(o.setupMin) << ".." << toHexFloat(o.setupMax)
       << " hold=" << toHexFloat(o.holdMin) << ".." << toHexFloat(o.holdMax)
       << '\n';
    return os.str();
}

CacheKey characterizeKey(const RegisterFixture& fixture,
                         const RunConfig& config) {
    std::ostringstream os;
    os << "format " << kFormatVersion << '\n' << "kind characterize\n"
       << canonicalFixture(fixture) << canonicalCriterion(config.criterion)
       << canonicalRecipe(config.recipe) << canonicalSeed(config.seed)
       << canonicalTracer(config.tracer);
    CacheKey key;
    key.full = Fnv1a().update(os.str()).value();
    key.problem =
        Fnv1a()
            .update(problemText(fixture, config.criterion, config.recipe))
            .value();
    return key;
}

CacheKey libraryRowKey(const RegisterFixture& fixture,
                       const CriterionOptions& cellCriterion,
                       const RunConfig& config, bool traceContours) {
    std::ostringstream os;
    os << "format " << kFormatVersion << '\n' << "kind library_row\n"
       << "contours " << (traceContours ? 1 : 0) << '\n'
       << canonicalFixture(fixture) << canonicalCriterion(cellCriterion)
       << canonicalRecipe(config.recipe)
       << canonicalIndependent(config.independent);
    if (traceContours) {
        os << canonicalSeed(config.seed) << canonicalTracer(config.tracer);
    }
    CacheKey key;
    key.full = Fnv1a().update(os.str()).value();
    key.problem =
        Fnv1a()
            .update(problemText(fixture, cellCriterion, config.recipe))
            .value();
    return key;
}

CacheKey independentRowKey(const RegisterFixture& fixture,
                           const RunConfig& config) {
    std::ostringstream os;
    os << "format " << kFormatVersion << '\n' << "kind independent_row\n"
       << canonicalFixture(fixture) << canonicalCriterion(config.criterion)
       << canonicalRecipe(config.recipe)
       << canonicalIndependent(config.independent);
    CacheKey key;
    key.full = Fnv1a().update(os.str()).value();
    key.problem =
        Fnv1a()
            .update(problemText(fixture, config.criterion, config.recipe))
            .value();
    return key;
}

CacheKey cornerRowKey(const RegisterFixture& fixture,
                      const RunConfig& config) {
    std::ostringstream os;
    os << "format " << kFormatVersion << '\n' << "kind corner_row\n"
       << canonicalFixture(fixture) << canonicalCriterion(config.criterion)
       << canonicalRecipe(config.recipe) << canonicalSeed(config.seed)
       << canonicalTracer(config.tracer);
    CacheKey key;
    key.full = Fnv1a().update(os.str()).value();
    key.problem =
        Fnv1a()
            .update(problemText(fixture, config.criterion, config.recipe))
            .value();
    return key;
}

CacheKey surfaceKey(const RegisterFixture& fixture, const RunConfig& config,
                    const SurfaceMethodOptions& options) {
    std::ostringstream os;
    os << "format " << kFormatVersion << '\n' << "kind surface\n"
       << canonicalFixture(fixture) << canonicalCriterion(config.criterion)
       << canonicalRecipe(config.recipe)
       << canonicalSurfaceOptions(options);
    CacheKey key;
    key.full = Fnv1a().update(os.str()).value();
    key.problem =
        Fnv1a()
            .update(problemText(fixture, config.criterion, config.recipe))
            .value();
    return key;
}

}  // namespace shtrace::store
