#include "shtrace/store/serialize.hpp"

#include <cmath>
#include <sstream>

#include "shtrace/util/hexfloat.hpp"

namespace shtrace::store {

namespace {

// Guards the vector-prealloc paths against absurd counts from a corrupt
// entry (the checksum already catches random damage; this bounds malice).
constexpr std::size_t kMaxCount = 1u << 20;

std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\r':
                out += "\\r";
                break;
            default:
                out += c;
        }
    }
    out += '"';
    return out;
}

std::string unquoted(const std::string& s) {
    if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
        throw StoreFormatError("expected quoted string, got '" + s + "'");
    }
    std::string out;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        if (++i + 1 >= s.size() + 1) {
            throw StoreFormatError("dangling escape in string");
        }
        switch (s[i]) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            default:
                throw StoreFormatError("bad escape in string");
        }
    }
    return out;
}

std::vector<std::string> tokens(const std::string& line) {
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok) {
        out.push_back(tok);
    }
    return out;
}

double num(const std::string& tok) {
    try {
        return fromHexFloat(tok);
    } catch (const Error&) {
        throw StoreFormatError("bad number '" + tok + "'");
    }
}

long integer(const std::string& tok) {
    std::size_t used = 0;
    long v = 0;
    try {
        v = std::stol(tok, &used);
    } catch (const std::exception&) {
        throw StoreFormatError("bad integer '" + tok + "'");
    }
    if (used != tok.size()) {
        throw StoreFormatError("bad integer '" + tok + "'");
    }
    return v;
}

std::uint64_t counter(const std::string& tok) {
    std::size_t used = 0;
    std::uint64_t v = 0;
    try {
        v = std::stoull(tok, &used);
    } catch (const std::exception&) {
        throw StoreFormatError("bad counter '" + tok + "'");
    }
    if (used != tok.size()) {
        throw StoreFormatError("bad counter '" + tok + "'");
    }
    return v;
}

bool boolean(const std::string& tok) {
    if (tok == "1") {
        return true;
    }
    if (tok == "0") {
        return false;
    }
    throw StoreFormatError("bad bool '" + tok + "'");
}

std::size_t count(const std::string& tok) {
    const long v = integer(tok);
    if (v < 0 || static_cast<std::size_t>(v) > kMaxCount) {
        throw StoreFormatError("count out of range '" + tok + "'");
    }
    return static_cast<std::size_t>(v);
}

/// Strict line cursor over a payload string.
class Reader {
public:
    explicit Reader(const std::string& text) : in_(text) {}

    std::string line() {
        std::string l;
        if (!std::getline(in_, l)) {
            throw StoreFormatError("unexpected end of payload");
        }
        return l;
    }

    /// Next line must start with "<tag> "; returns the remainder.
    std::string tagged(const std::string& tag) {
        const std::string l = line();
        if (l.size() <= tag.size() || l.compare(0, tag.size(), tag) != 0 ||
            l[tag.size()] != ' ') {
            throw StoreFormatError("expected '" + tag + "' line, got '" + l +
                                   "'");
        }
        return l.substr(tag.size() + 1);
    }

    /// Like tagged(), but tokenized and checked for an exact token count.
    std::vector<std::string> fields(const std::string& tag, std::size_t n) {
        const std::vector<std::string> toks = tokens(tagged(tag));
        if (toks.size() != n) {
            throw StoreFormatError("'" + tag + "' line needs " +
                                   std::to_string(n) + " fields, got " +
                                   std::to_string(toks.size()));
        }
        return toks;
    }

    void expectEnd() {
        std::string l;
        while (std::getline(in_, l)) {
            if (!l.empty()) {
                throw StoreFormatError("trailing content: '" + l + "'");
            }
        }
    }

private:
    std::istringstream in_;
};

// Drift guard: the stats line serializes every SimStats field (22 uint64
// counters + wallSeconds). A newly added counter changes sizeof(SimStats)
// and must not silently vanish from the v-format -- update writeStats,
// readStats, the 23-field check below, and bump kFormatVersion.
static_assert(sizeof(SimStats) ==
                  22 * sizeof(std::uint64_t) + sizeof(double),
              "SimStats changed: extend the store stats line and bump "
              "kFormatVersion");

void writeStats(std::ostream& os, const SimStats& s) {
    os << "stats " << s.transientSolves << ' ' << s.timeSteps << ' '
       << s.rejectedSteps << ' ' << s.newtonIterations << ' '
       << s.luFactorizations << ' ' << s.luSolves << ' '
       << s.deviceEvaluations << ' ' << s.residualOnlyAssemblies << ' '
       << s.chordIterations << ' ' << s.bypassedFactorizations << ' '
       << s.sensitivitySteps << ' ' << s.hEvaluations << ' '
       << s.mpnrIterations << ' ' << s.cacheHits << ' ' << s.cacheMisses
       << ' ' << s.cacheWarmStarts << ' ' << s.traceNonFiniteRejections
       << ' ' << s.traceTransientRetries << ' ' << s.tracePlateauReseeds
       << ' ' << s.traceStepHalvings << ' ' << s.sparseRefactorizations
       << ' ' << s.batchAssemblies << ' ' << toHexFloat(s.wallSeconds)
       << '\n';
}

SimStats readStats(Reader& r) {
    const auto f = r.fields("stats", 23);
    SimStats s;
    s.transientSolves = counter(f[0]);
    s.timeSteps = counter(f[1]);
    s.rejectedSteps = counter(f[2]);
    s.newtonIterations = counter(f[3]);
    s.luFactorizations = counter(f[4]);
    s.luSolves = counter(f[5]);
    s.deviceEvaluations = counter(f[6]);
    s.residualOnlyAssemblies = counter(f[7]);
    s.chordIterations = counter(f[8]);
    s.bypassedFactorizations = counter(f[9]);
    s.sensitivitySteps = counter(f[10]);
    s.hEvaluations = counter(f[11]);
    s.mpnrIterations = counter(f[12]);
    s.cacheHits = counter(f[13]);
    s.cacheMisses = counter(f[14]);
    s.cacheWarmStarts = counter(f[15]);
    s.traceNonFiniteRejections = counter(f[16]);
    s.traceTransientRetries = counter(f[17]);
    s.tracePlateauReseeds = counter(f[18]);
    s.traceStepHalvings = counter(f[19]);
    s.sparseRefactorizations = counter(f[20]);
    s.batchAssemblies = counter(f[21]);
    s.wallSeconds = num(f[22]);
    return s;
}

void writePoints(std::ostream& os, const std::vector<SkewPoint>& points) {
    os << "points " << points.size() << '\n';
    for (const SkewPoint& p : points) {
        os << toHexFloat(p.setup) << ' ' << toHexFloat(p.hold) << '\n';
    }
}

std::vector<SkewPoint> readPoints(Reader& r) {
    const auto f = r.fields("points", 1);
    const std::size_t n = count(f[0]);
    std::vector<SkewPoint> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto toks = tokens(r.line());
        if (toks.size() != 2) {
            throw StoreFormatError("contour point needs 2 fields");
        }
        points.push_back(SkewPoint{num(toks[0]), num(toks[1])});
    }
    return points;
}

void writeSeed(std::ostream& os, const SeedResult& s) {
    os << "seed " << (s.found ? 1 : 0) << ' ' << toHexFloat(s.seed.setup)
       << ' ' << toHexFloat(s.seed.hold) << ' ' << toHexFloat(s.bracketLo)
       << ' ' << toHexFloat(s.bracketHi) << ' ' << s.evaluations << '\n';
}

SeedResult readSeed(Reader& r) {
    const auto f = r.fields("seed", 6);
    SeedResult s;
    s.found = boolean(f[0]);
    s.seed.setup = num(f[1]);
    s.seed.hold = num(f[2]);
    s.bracketLo = num(f[3]);
    s.bracketHi = num(f[4]);
    s.evaluations = static_cast<int>(integer(f[5]));
    return s;
}

void writeDiagnostics(std::ostream& os, const TraceDiagnostics& d) {
    os << "diag " << d.events.size() << '\n';
    for (const TraceEvent& e : d.events) {
        os << toString(e.kind) << ' ' << toString(e.phase) << ' '
           << toHexFloat(e.at.setup) << ' ' << toHexFloat(e.at.hold) << ' '
           << toHexFloat(e.stepLength) << ' ' << e.correctorIterations
           << '\n';
    }
    // Format v4: the ordered whole-trace event timeline. opIndex is the
    // deterministic operation clock (h evaluations completed); wallNs is
    // 0.0 unless span tracing was enabled during the trace.
    os << "timeline " << d.timeline.size() << '\n';
    for (const TimelineEvent& e : d.timeline) {
        os << toString(e.kind) << ' ' << toString(e.phase) << ' '
           << toHexFloat(e.at.setup) << ' ' << toHexFloat(e.at.hold) << ' '
           << e.opIndex << ' ' << toHexFloat(e.wallNs) << '\n';
    }
}

TraceDiagnostics readDiagnostics(Reader& r) {
    const auto f = r.fields("diag", 1);
    const std::size_t n = count(f[0]);
    TraceDiagnostics d;
    d.events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto toks = tokens(r.line());
        if (toks.size() != 6) {
            throw StoreFormatError("diag event needs 6 fields");
        }
        TraceEvent e;
        bool ok = false;
        e.kind = traceEventKindFromString(toks[0], ok);
        if (!ok) {
            throw StoreFormatError("bad diag kind '" + toks[0] + "'");
        }
        e.phase = tracePhaseFromString(toks[1], ok);
        if (!ok) {
            throw StoreFormatError("bad diag phase '" + toks[1] + "'");
        }
        e.at.setup = num(toks[2]);
        e.at.hold = num(toks[3]);
        e.stepLength = num(toks[4]);
        e.correctorIterations = static_cast<int>(integer(toks[5]));
        d.events.push_back(e);
    }
    const auto t = r.fields("timeline", 1);
    const std::size_t m = count(t[0]);
    d.timeline.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
        const auto toks = tokens(r.line());
        if (toks.size() != 6) {
            throw StoreFormatError("timeline event needs 6 fields");
        }
        TimelineEvent e;
        bool ok = false;
        e.kind = timelineEventKindFromString(toks[0], ok);
        if (!ok) {
            throw StoreFormatError("bad timeline kind '" + toks[0] + "'");
        }
        e.phase = tracePhaseFromString(toks[1], ok);
        if (!ok) {
            throw StoreFormatError("bad timeline phase '" + toks[1] + "'");
        }
        e.at.setup = num(toks[2]);
        e.at.hold = num(toks[3]);
        e.opIndex = counter(toks[4]);
        e.wallNs = num(toks[5]);
        d.timeline.push_back(e);
    }
    return d;
}

void writeTraced(std::ostream& os, const TracedContour& c) {
    os << "traced " << (c.seedConverged ? 1 : 0) << ' ' << c.predictorRetries
       << ' ' << c.points.size() << '\n';
    for (std::size_t i = 0; i < c.points.size(); ++i) {
        os << toHexFloat(c.points[i].setup) << ' '
           << toHexFloat(c.points[i].hold) << ' '
           << toHexFloat(i < c.residuals.size() ? c.residuals[i] : 0.0)
           << ' '
           << (i < c.correctorIterations.size() ? c.correctorIterations[i]
                                                : 0)
           << '\n';
    }
    writeDiagnostics(os, c.diagnostics);
}

TracedContour readTraced(Reader& r) {
    const auto f = r.fields("traced", 3);
    TracedContour c;
    c.seedConverged = boolean(f[0]);
    c.predictorRetries = static_cast<int>(integer(f[1]));
    const std::size_t n = count(f[2]);
    c.points.reserve(n);
    c.residuals.reserve(n);
    c.correctorIterations.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto toks = tokens(r.line());
        if (toks.size() != 4) {
            throw StoreFormatError("traced point needs 4 fields");
        }
        c.points.push_back(SkewPoint{num(toks[0]), num(toks[1])});
        c.residuals.push_back(num(toks[2]));
        c.correctorIterations.push_back(static_cast<int>(integer(toks[3])));
    }
    c.diagnostics = readDiagnostics(r);
    return c;
}

}  // namespace

std::string serializeSimStats(const SimStats& stats) {
    std::ostringstream os;
    writeStats(os, stats);
    return os.str();
}

SimStats deserializeSimStats(const std::string& text) {
    Reader r(text);
    const SimStats s = readStats(r);
    r.expectEnd();
    return s;
}

std::string serializeContourPoints(const std::vector<SkewPoint>& points) {
    std::ostringstream os;
    writePoints(os, points);
    return os.str();
}

std::vector<SkewPoint> deserializeContourPoints(const std::string& text) {
    Reader r(text);
    std::vector<SkewPoint> points = readPoints(r);
    r.expectEnd();
    return points;
}

std::string serializeCharacterizeResult(const CharacterizeResult& result) {
    std::ostringstream os;
    os << "characterize " << (result.success ? 1 : 0) << '\n';
    os << "reason " << quoted(result.failureReason) << '\n';
    os << "values " << toHexFloat(result.characteristicClockToQ) << ' '
       << toHexFloat(result.degradedClockToQ) << ' ' << toHexFloat(result.tf)
       << ' ' << toHexFloat(result.r) << '\n';
    writeSeed(os, result.seed);
    writeTraced(os, result.contour);
    writeStats(os, result.stats);
    return os.str();
}

CharacterizeResult deserializeCharacterizeResult(const std::string& text) {
    Reader r(text);
    CharacterizeResult result;
    result.success = boolean(r.fields("characterize", 1)[0]);
    result.failureReason = unquoted(r.tagged("reason"));
    const auto v = r.fields("values", 4);
    result.characteristicClockToQ = num(v[0]);
    result.degradedClockToQ = num(v[1]);
    result.tf = num(v[2]);
    result.r = num(v[3]);
    result.seed = readSeed(r);
    result.contour = readTraced(r);
    result.stats = readStats(r);
    r.expectEnd();
    return result;
}

std::string serializeLibraryRow(const LibraryRow& row) {
    std::ostringstream os;
    os << "library_row " << (row.success ? 1 : 0) << '\n';
    os << "cell " << quoted(row.cell) << '\n';
    os << "reason " << quoted(row.failureReason) << '\n';
    os << "provenance " << quoted(row.provenance) << '\n';
    os << "values " << toHexFloat(row.characteristicClockToQ) << ' '
       << toHexFloat(row.setupTime) << ' ' << toHexFloat(row.holdTime)
       << '\n';
    writePoints(os, row.contour);
    writeDiagnostics(os, row.diagnostics);
    writeStats(os, row.stats);
    return os.str();
}

LibraryRow deserializeLibraryRow(const std::string& text) {
    Reader r(text);
    LibraryRow row;
    row.success = boolean(r.fields("library_row", 1)[0]);
    row.cell = unquoted(r.tagged("cell"));
    row.failureReason = unquoted(r.tagged("reason"));
    row.provenance = unquoted(r.tagged("provenance"));
    const auto v = r.fields("values", 3);
    row.characteristicClockToQ = num(v[0]);
    row.setupTime = num(v[1]);
    row.holdTime = num(v[2]);
    row.contour = readPoints(r);
    row.diagnostics = readDiagnostics(r);
    row.stats = readStats(r);
    r.expectEnd();
    return row;
}

std::string serializePvtRow(const PvtCornerResult& row) {
    std::ostringstream os;
    os << "pvt_row " << (row.success ? 1 : 0) << ' ' << row.transientCount
       << '\n';
    os << "corner " << quoted(row.corner) << '\n';
    os << "reason " << quoted(row.failureReason) << '\n';
    os << "values " << toHexFloat(row.characteristicClockToQ) << ' '
       << toHexFloat(row.setupTime) << ' ' << toHexFloat(row.holdTime)
       << '\n';
    writeStats(os, row.stats);
    return os.str();
}

PvtCornerResult deserializePvtRow(const std::string& text) {
    Reader r(text);
    PvtCornerResult row;
    const auto head = r.fields("pvt_row", 2);
    row.success = boolean(head[0]);
    row.transientCount = static_cast<int>(integer(head[1]));
    row.corner = unquoted(r.tagged("corner"));
    row.failureReason = unquoted(r.tagged("reason"));
    const auto v = r.fields("values", 3);
    row.characteristicClockToQ = num(v[0]);
    row.setupTime = num(v[1]);
    row.holdTime = num(v[2]);
    row.stats = readStats(r);
    r.expectEnd();
    return row;
}

std::string serializeMcRow(const McSampleRow& row) {
    std::ostringstream os;
    os << "mc_row " << (row.converged ? 1 : 0) << ' '
       << toHexFloat(row.setupTime) << ' ' << toHexFloat(row.holdTime) << ' '
       << toHexFloat(row.clockToQ) << '\n';
    return os.str();
}

McSampleRow deserializeMcRow(const std::string& text) {
    Reader r(text);
    const auto f = r.fields("mc_row", 4);
    McSampleRow row;
    row.converged = boolean(f[0]);
    row.setupTime = num(f[1]);
    row.holdTime = num(f[2]);
    row.clockToQ = num(f[3]);
    r.expectEnd();
    return row;
}

std::string serializeSurfaceResult(const SurfaceMethodResult& result) {
    std::ostringstream os;
    os << "surface " << result.transientCount << '\n';
    const auto axis = [&os](const char* tag,
                            const std::vector<double>& values) {
        os << tag << ' ' << values.size();
        for (const double v : values) {
            os << ' ' << toHexFloat(v);
        }
        os << '\n';
    };
    axis("setup_axis", result.surface.setupSkews());
    axis("hold_axis", result.surface.holdSkews());
    for (std::size_t i = 0; i < result.surface.setupCount(); ++i) {
        os << "row";
        for (std::size_t j = 0; j < result.surface.holdCount(); ++j) {
            os << ' ' << toHexFloat(result.surface.value(i, j));
        }
        os << '\n';
    }
    os << "contours " << result.contours.size() << '\n';
    for (const ContourPolyline& poly : result.contours) {
        writePoints(os, poly);
    }
    writeStats(os, result.stats);
    return os.str();
}

SurfaceMethodResult deserializeSurfaceResult(const std::string& text) {
    Reader r(text);
    const auto head = r.fields("surface", 1);
    const auto axis = [&r](const std::string& tag) {
        const auto toks = tokens(r.tagged(tag));
        if (toks.empty()) {
            throw StoreFormatError("'" + tag + "' needs a count");
        }
        const std::size_t n = count(toks[0]);
        if (toks.size() != n + 1) {
            throw StoreFormatError("'" + tag + "' count mismatch");
        }
        std::vector<double> values;
        values.reserve(n);
        for (std::size_t i = 1; i < toks.size(); ++i) {
            values.push_back(num(toks[i]));
        }
        return values;
    };
    const std::vector<double> setups = axis("setup_axis");
    const std::vector<double> holds = axis("hold_axis");
    SurfaceMethodResult result{OutputSurface(setups, holds), {}, 0, {}};
    result.transientCount = static_cast<int>(integer(head[0]));
    for (std::size_t i = 0; i < setups.size(); ++i) {
        const auto toks = tokens(r.tagged("row"));
        if (toks.size() != holds.size()) {
            throw StoreFormatError("surface row width mismatch");
        }
        for (std::size_t j = 0; j < toks.size(); ++j) {
            result.surface.setValue(i, j, num(toks[j]));
        }
    }
    const std::size_t k = count(r.fields("contours", 1)[0]);
    result.contours.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
        result.contours.push_back(readPoints(r));
    }
    result.stats = readStats(r);
    r.expectEnd();
    return result;
}

std::string serializeCornerRow(const CornerFamilyRow& row) {
    std::ostringstream os;
    os << "corner_row " << (row.success ? 1 : 0) << ' ' << row.transientCount
       << '\n';
    os << "provenance " << toString(row.provenance) << '\n';
    os << "corner " << quoted(row.corner) << '\n';
    os << "reason " << quoted(row.failureReason) << '\n';
    os << "point " << toHexFloat(row.point.process) << ' '
       << toHexFloat(row.point.vdd) << ' '
       << toHexFloat(row.point.temperatureC) << '\n';
    os << "score " << toHexFloat(row.acquisitionScore) << '\n';
    os << "values " << toHexFloat(row.characteristicClockToQ) << ' '
       << toHexFloat(row.setupTime) << ' ' << toHexFloat(row.holdTime)
       << '\n';
    writePoints(os, row.contour);
    return os.str();
}

CornerFamilyRow deserializeCornerRow(const std::string& text) {
    Reader r(text);
    CornerFamilyRow row;
    const auto head = r.fields("corner_row", 2);
    row.success = boolean(head[0]);
    row.transientCount = static_cast<int>(integer(head[1]));
    bool ok = false;
    row.provenance = cornerProvenanceFromString(r.tagged("provenance"), ok);
    if (!ok) {
        throw StoreFormatError("bad corner provenance");
    }
    row.corner = unquoted(r.tagged("corner"));
    row.failureReason = unquoted(r.tagged("reason"));
    const auto p = r.fields("point", 3);
    row.point.process = num(p[0]);
    row.point.vdd = num(p[1]);
    row.point.temperatureC = num(p[2]);
    row.acquisitionScore = num(r.fields("score", 1)[0]);
    const auto v = r.fields("values", 3);
    row.characteristicClockToQ = num(v[0]);
    row.setupTime = num(v[1]);
    row.holdTime = num(v[2]);
    row.contour = readPoints(r);
    r.expectEnd();
    return row;
}

std::vector<SkewPoint> contourOfEntry(const StoreEntry& entry) {
    try {
        if (entry.kind == kKindCharacterize) {
            return deserializeCharacterizeResult(entry.payload).contour.points;
        }
        if (entry.kind == kKindLibraryRow) {
            return deserializeLibraryRow(entry.payload).contour;
        }
        if (entry.kind == kKindCornerRow) {
            return deserializeCornerRow(entry.payload).contour;
        }
    } catch (const StoreFormatError&) {
        // A malformed near-hit is not worth failing a run over.
    }
    return {};
}

std::optional<SkewPoint> nearestPoint(const std::vector<SkewPoint>& points,
                                      const SkewPoint& target) {
    if (points.empty()) {
        return std::nullopt;
    }
    const SkewPoint* best = &points.front();
    double bestDist = std::numeric_limits<double>::infinity();
    for (const SkewPoint& p : points) {
        const double ds = p.setup - target.setup;
        const double dh = p.hold - target.hold;
        const double dist = ds * ds + dh * dh;
        if (dist < bestDist) {
            bestDist = dist;
            best = &p;
        }
    }
    return *best;
}

}  // namespace shtrace::store
