#include "shtrace/store/cache.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "shtrace/obs/span.hpp"
#include "shtrace/store/key.hpp"
#include "shtrace/store/serialize.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "shtrace-store";
constexpr const char* kSuffix = ".shtr";

std::string quoteLabel(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\r':
                out += "\\r";
                break;
            default:
                out += c;
        }
    }
    out += '"';
    return out;
}

std::optional<std::string> unquoteLabel(const std::string& s) {
    if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
        return std::nullopt;
    }
    std::string out;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        if (++i + 1 >= s.size()) {
            return std::nullopt;
        }
        switch (s[i]) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            default:
                return std::nullopt;
        }
    }
    return out;
}

/// Remainder of `line` after "<tag> "; nullopt when the tag doesn't match.
std::optional<std::string> afterTag(const std::string& line,
                                    const std::string& tag) {
    if (line.size() <= tag.size() || line.compare(0, tag.size(), tag) != 0 ||
        line[tag.size()] != ' ') {
        return std::nullopt;
    }
    return line.substr(tag.size() + 1);
}

/// Parses one entry file. Returns nullopt on ANY deviation from the
/// documented framing -- wrong magic/version, bad hex, short payload,
/// checksum mismatch, missing terminator, trailing junk.
std::optional<StoreEntry> parseEntryFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        return std::nullopt;
    }
    std::string line;

    if (!std::getline(in, line)) {
        return std::nullopt;
    }
    {
        std::istringstream head(line);
        std::string magic;
        int version = 0;
        if (!(head >> magic >> version) || magic != kMagic ||
            version != kFormatVersion) {
            return std::nullopt;
        }
        std::string extra;
        if (head >> extra) {
            return std::nullopt;
        }
    }

    StoreEntry entry;
    if (!std::getline(in, line)) {
        return std::nullopt;
    }
    if (const auto kind = afterTag(line, "kind")) {
        entry.kind = *kind;
        if (entry.kind.empty() ||
            entry.kind.find(' ') != std::string::npos) {
            return std::nullopt;
        }
    } else {
        return std::nullopt;
    }

    if (!std::getline(in, line)) {
        return std::nullopt;
    }
    if (const auto key = afterTag(line, "key")) {
        const auto parsed = parseHexKey(*key);
        if (!parsed) {
            return std::nullopt;
        }
        entry.key = *parsed;
    } else {
        return std::nullopt;
    }

    if (!std::getline(in, line)) {
        return std::nullopt;
    }
    if (const auto problem = afterTag(line, "problem")) {
        const auto parsed = parseHexKey(*problem);
        if (!parsed) {
            return std::nullopt;
        }
        entry.problem = *parsed;
    } else {
        return std::nullopt;
    }

    if (!std::getline(in, line)) {
        return std::nullopt;
    }
    if (const auto label = afterTag(line, "label")) {
        const auto parsed = unquoteLabel(*label);
        if (!parsed) {
            return std::nullopt;
        }
        entry.label = *parsed;
    } else {
        return std::nullopt;
    }

    std::size_t lineCount = 0;
    std::uint64_t checksum = 0;
    if (!std::getline(in, line)) {
        return std::nullopt;
    }
    if (const auto payload = afterTag(line, "payload")) {
        std::istringstream head(*payload);
        std::string countTok;
        std::string sumTok;
        std::string extra;
        if (!(head >> countTok >> sumTok) || head >> extra) {
            return std::nullopt;
        }
        try {
            std::size_t used = 0;
            const unsigned long long n = std::stoull(countTok, &used);
            if (used != countTok.size() || n > (1u << 22)) {
                return std::nullopt;
            }
            lineCount = static_cast<std::size_t>(n);
        } catch (const std::exception&) {
            return std::nullopt;
        }
        const auto sum = parseHexKey(sumTok);
        if (!sum) {
            return std::nullopt;
        }
        checksum = *sum;
    } else {
        return std::nullopt;
    }

    std::ostringstream payload;
    for (std::size_t i = 0; i < lineCount; ++i) {
        if (!std::getline(in, line)) {
            return std::nullopt;
        }
        payload << line << '\n';
    }
    entry.payload = payload.str();

    if (!std::getline(in, line) || line != "end") {
        return std::nullopt;
    }
    while (std::getline(in, line)) {
        if (!line.empty()) {
            return std::nullopt;
        }
    }

    if (Fnv1a().update(entry.payload).value() != checksum) {
        return std::nullopt;
    }
    return entry;
}

std::size_t countLines(const std::string& payload) {
    return static_cast<std::size_t>(
        std::count(payload.begin(), payload.end(), '\n'));
}

}  // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
    require(!dir_.empty(), "ResultStore: empty directory path");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_)) {
        throw Error("ResultStore: cannot create directory '" + dir_ + "'");
    }
}

std::string ResultStore::entryFileName(std::uint64_t key) {
    return toHexKey(key) + kSuffix;
}

std::string ResultStore::pathFor(std::uint64_t key) const {
    return (fs::path(dir_) / entryFileName(key)).string();
}

std::optional<StoreEntry> ResultStore::load(std::uint64_t key) const {
    SHTRACE_SPAN("store.load");
    auto entry = parseEntryFile(pathFor(key));
    if (entry && entry->key != key) {
        return std::nullopt;  // renamed or mislabeled entry
    }
    return entry;
}

void ResultStore::save(const StoreEntry& entry) const {
    SHTRACE_SPAN("store.save");
    require(!entry.kind.empty(), "ResultStore::save: empty kind");
    require(entry.payload.empty() || entry.payload.back() == '\n',
            "ResultStore::save: payload must be newline-terminated");

    std::ostringstream os;
    os << kMagic << ' ' << kFormatVersion << '\n';
    os << "kind " << entry.kind << '\n';
    os << "key " << toHexKey(entry.key) << '\n';
    os << "problem " << toHexKey(entry.problem) << '\n';
    os << "label " << quoteLabel(entry.label) << '\n';
    os << "payload " << countLines(entry.payload) << ' '
       << toHexKey(Fnv1a().update(entry.payload).value()) << '\n';
    os << entry.payload;
    os << "end\n";

    // Unique temp name per writer, then an atomic rename: concurrent batch
    // workers publishing the same key race benignly (last rename wins with
    // identical content), and readers never observe a torn file.
    static std::atomic<std::uint64_t> counter{0};
    const std::uint64_t nonce =
        Fnv1a()
            .update(std::to_string(
                reinterpret_cast<std::uintptr_t>(&counter)))
            .value() ^
        counter.fetch_add(1, std::memory_order_relaxed);
    const fs::path tmp =
        fs::path(dir_) /
        (entryFileName(entry.key) + ".tmp-" + toHexKey(nonce));
    {
        std::ofstream out(tmp);
        if (!out) {
            throw Error("ResultStore: cannot write '" + tmp.string() + "'");
        }
        out << os.str();
        out.flush();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            throw Error("ResultStore: short write to '" + tmp.string() +
                        "'");
        }
    }
    std::error_code ec;
    fs::rename(tmp, pathFor(entry.key), ec);
    if (ec) {
        fs::remove(tmp, ec);
        throw Error("ResultStore: cannot publish entry " +
                    toHexKey(entry.key));
    }
}

std::vector<StoreEntry> ResultStore::list() const {
    std::vector<StoreEntry> entries;
    std::error_code ec;
    for (const auto& item : fs::directory_iterator(dir_, ec)) {
        if (!item.is_regular_file()) {
            continue;
        }
        const std::string name = item.path().filename().string();
        if (name.size() != 16 + std::string(kSuffix).size() ||
            name.substr(16) != kSuffix) {
            continue;
        }
        const auto key = parseHexKey(name.substr(0, 16));
        if (!key) {
            continue;
        }
        if (auto entry = load(*key)) {
            entries.push_back(std::move(*entry));
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const StoreEntry& a, const StoreEntry& b) {
                  return a.key < b.key;
              });
    return entries;
}

std::optional<StoreEntry> ResultStore::findNearHit(
    std::uint64_t problem, std::uint64_t excludeKey) const {
    std::optional<StoreEntry> best;
    for (StoreEntry& entry : list()) {
        if (entry.problem != problem || entry.key == excludeKey) {
            continue;
        }
        if (contourOfEntry(entry).empty()) {
            continue;
        }
        if (!best || entry.key < best->key) {
            best = std::move(entry);
        }
    }
    return best;
}

bool ResultStore::remove(std::uint64_t key) const {
    std::error_code ec;
    return fs::remove(pathFor(key), ec) && !ec;
}

ResultStore::GcReport ResultStore::gc() const {
    GcReport report;
    std::vector<fs::path> doomed;
    std::error_code ec;
    for (const auto& item : fs::directory_iterator(dir_, ec)) {
        if (!item.is_regular_file()) {
            continue;
        }
        const std::string name = item.path().filename().string();
        if (name.size() < std::string(kSuffix).size() ||
            name.substr(name.size() - std::string(kSuffix).size()) !=
                kSuffix) {
            continue;  // not a store entry (e.g. an in-flight temp file)
        }
        const auto key = name.size() == 16 + std::string(kSuffix).size()
                             ? parseHexKey(name.substr(0, 16))
                             : std::nullopt;
        if (key && load(*key)) {
            ++report.kept;
        } else {
            doomed.push_back(item.path());
        }
    }
    for (const fs::path& path : doomed) {
        if (fs::remove(path, ec) && !ec) {
            ++report.removed;
        }
    }
    return report;
}

}  // namespace shtrace::store
