#include "shtrace/serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "shtrace/serve/json.hpp"

namespace shtrace::serve {

namespace {

/// Largest request body the server will buffer (a characterization request
/// is a few KB; this bound rejects abuse, not legitimate traffic).
constexpr std::size_t kMaxBodyBytes = 4u << 20;
constexpr std::size_t kMaxHeaderBytes = 64u << 10;
/// Poll tick for reads: the latency of noticing stop() on an idle
/// keep-alive connection.
constexpr int kReadPollMillis = 200;

std::string toLower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t')) {
        ++b;
    }
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                     s[e - 1] == '\r')) {
        --e;
    }
    return s.substr(b, e - b);
}

/// recv with a stop-aware poll loop. Returns bytes read, 0 on EOF, and -1
/// when the stop flag fired while idle.
long pollRecv(int fd, char* buf, std::size_t len,
              const std::atomic<bool>* stopFlag) {
    while (true) {
        if (stopFlag != nullptr &&
            stopFlag->load(std::memory_order_acquire)) {
            return -1;
        }
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, kReadPollMillis);
        if (ready < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw Error(message("http: poll failed: ",
                                std::strerror(errno)));
        }
        if (ready == 0) {
            continue;  // tick: re-check the stop flag
        }
        const long n = ::recv(fd, buf, len, 0);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK) {
                continue;
            }
            throw Error(message("http: recv failed: ",
                                std::strerror(errno)));
        }
        return n;
    }
}

void sendAll(int fd, const char* data, std::size_t len) {
    std::size_t sent = 0;
    while (sent < len) {
        const long n =
            ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw Error(message("http: send failed: ",
                                std::strerror(errno)));
        }
        sent += static_cast<std::size_t>(n);
    }
}

}  // namespace

std::string HttpRequest::path() const {
    const std::size_t q = target.find('?');
    return q == std::string::npos ? target : target.substr(0, q);
}

const std::string* HttpRequest::header(
    const std::string& lowercaseName) const {
    const auto it = headers.find(lowercaseName);
    return it == headers.end() ? nullptr : &it->second;
}

HttpResponse HttpResponse::json(int status, const std::string& body) {
    HttpResponse r;
    r.status = status;
    r.contentType = "application/json";
    r.body = body;
    return r;
}

HttpResponse HttpResponse::text(int status, const std::string& body) {
    HttpResponse r;
    r.status = status;
    r.contentType = "text/plain; charset=utf-8";
    r.body = body;
    return r;
}

const char* statusText(int status) {
    switch (status) {
        case 200:
            return "OK";
        case 400:
            return "Bad Request";
        case 404:
            return "Not Found";
        case 405:
            return "Method Not Allowed";
        case 411:
            return "Length Required";
        case 413:
            return "Content Too Large";
        case 500:
            return "Internal Server Error";
        case 501:
            return "Not Implemented";
        case 503:
            return "Service Unavailable";
        default:
            return "Unknown";
    }
}

bool readHttpRequest(int fd, HttpRequest* request,
                     const std::atomic<bool>* stopFlag) {
    std::string buf;
    std::size_t headerEnd = std::string::npos;
    char chunk[4096];
    while (true) {
        headerEnd = buf.find("\r\n\r\n");
        if (headerEnd != std::string::npos) {
            break;
        }
        if (buf.size() > kMaxHeaderBytes) {
            throw Error("http: request header too large");
        }
        const long n = pollRecv(fd, chunk, sizeof chunk, stopFlag);
        if (n < 0) {
            return false;  // stop requested while idle
        }
        if (n == 0) {
            if (buf.empty()) {
                return false;  // clean keep-alive close
            }
            throw Error("http: connection closed mid-header");
        }
        buf.append(chunk, static_cast<std::size_t>(n));
    }

    // Request line.
    const std::size_t lineEnd = buf.find("\r\n");
    {
        const std::string line = buf.substr(0, lineEnd);
        const std::size_t sp1 = line.find(' ');
        const std::size_t sp2 =
            sp1 == std::string::npos ? std::string::npos
                                     : line.find(' ', sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos) {
            throw Error("http: malformed request line");
        }
        request->method = line.substr(0, sp1);
        request->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        request->version = line.substr(sp2 + 1);
        if (request->version != "HTTP/1.1" &&
            request->version != "HTTP/1.0") {
            throw Error("http: unsupported version " + request->version);
        }
    }

    // Header fields.
    request->headers.clear();
    std::size_t pos = lineEnd + 2;
    while (pos < headerEnd) {
        const std::size_t end = buf.find("\r\n", pos);
        const std::string line = buf.substr(pos, end - pos);
        pos = end + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            throw Error("http: malformed header line");
        }
        request->headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }

    if (request->header("transfer-encoding") != nullptr) {
        throw Error("http: chunked transfer encoding unsupported");
    }

    std::size_t contentLength = 0;
    if (const std::string* cl = request->header("content-length")) {
        try {
            std::size_t used = 0;
            const unsigned long long n = std::stoull(*cl, &used);
            if (used != cl->size() || n > kMaxBodyBytes) {
                throw Error("http: bad content-length");
            }
            contentLength = static_cast<std::size_t>(n);
        } catch (const std::exception&) {
            throw Error("http: bad content-length");
        }
    }

    request->body = buf.substr(headerEnd + 4);
    while (request->body.size() < contentLength) {
        const long n = pollRecv(fd, chunk, sizeof chunk, stopFlag);
        if (n <= 0) {
            throw Error("http: connection closed mid-body");
        }
        request->body.append(chunk, static_cast<std::size_t>(n));
    }
    if (request->body.size() > contentLength) {
        // Pipelined second request: unsupported, and the framing above
        // would silently misattribute it to this body. Reject loudly.
        throw Error("http: pipelined requests unsupported");
    }
    return true;
}

void writeHttpResponse(int fd, const HttpResponse& response,
                       bool closeAfter) {
    std::string out = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                      statusText(response.status) + "\r\n";
    out += "Content-Type: " + response.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) +
           "\r\n";
    for (const auto& h : response.headers) {
        out += h.first + ": " + h.second + "\r\n";
    }
    out += closeAfter ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
    out += "\r\n";
    out += response.body;
    sendAll(fd, out.data(), out.size());
}

HttpServer::HttpServer(std::uint16_t port) {
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        throw Error(message("http: socket failed: ", std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw Error(message("http: cannot bind 127.0.0.1:", port, ": ",
                            why));
    }
    if (::listen(listenFd_, 128) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw Error(message("http: listen failed: ", why));
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw Error(message("http: getsockname failed: ", why));
    }
    port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() {
    stop();
    {
        const std::lock_guard<std::mutex> lock(threadsMutex_);
        for (Connection& c : connections_) {
            if (c.thread.joinable()) {
                c.thread.join();
            }
        }
        connections_.clear();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void HttpServer::stop() noexcept {
    stop_.store(true, std::memory_order_release);
}

void HttpServer::serve(const HttpHandler& handler) {
    while (!stopping()) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, kReadPollMillis);
        if (ready < 0 && errno != EINTR) {
            throw Error(message("http: accept poll failed: ",
                                std::strerror(errno)));
        }
        if (ready <= 0) {
            continue;  // tick: re-check the stop flag (EINTR included)
        }
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        const std::lock_guard<std::mutex> lock(threadsMutex_);
        // Reap connections whose handler loop has finished so a
        // long-lived server does not accumulate done threads (joining a
        // done thread is instant).
        connections_.erase(
            std::remove_if(connections_.begin(), connections_.end(),
                           [](Connection& c) {
                               if (c.done->load(
                                       std::memory_order_acquire)) {
                                   c.thread.join();
                                   return true;
                               }
                               return false;
                           }),
            connections_.end());
        Connection conn;
        conn.done = std::make_shared<std::atomic<bool>>(false);
        auto done = conn.done;
        conn.thread = std::thread([this, fd, &handler, done] {
            handleConnection(fd, handler, done);
        });
        connections_.push_back(std::move(conn));
    }
    // Drain: join every connection thread; each notices the stop flag at
    // its next poll tick and exits after answering its in-flight request.
    std::vector<Connection> drained;
    {
        const std::lock_guard<std::mutex> lock(threadsMutex_);
        drained.swap(connections_);
    }
    for (Connection& c : drained) {
        if (c.thread.joinable()) {
            c.thread.join();
        }
    }
}

void HttpServer::handleConnection(
    int fd, const HttpHandler& handler,
    const std::shared_ptr<std::atomic<bool>>& done) {
    while (true) {
        HttpRequest request;
        bool haveRequest = false;
        try {
            haveRequest = readHttpRequest(fd, &request, &stop_);
        } catch (const Error&) {
            // Malformed framing: best-effort 400, then close.
            try {
                writeHttpResponse(
                    fd,
                    HttpResponse::json(
                        400, "{\"error\":\"malformed HTTP request\"}"),
                    true);
            } catch (const Error&) {
            }
            break;
        }
        if (!haveRequest) {
            break;  // peer closed, or stop() while idle
        }
        HttpResponse response;
        try {
            response = handler(request);
        } catch (const std::exception& e) {
            response = HttpResponse::json(
                500, "{\"error\":" + jsonQuote(e.what()) + "}");
        }
        // Once draining, tell the client this connection is done after
        // the in-flight response.
        const bool closing = stopping();
        try {
            writeHttpResponse(fd, response, closing);
        } catch (const Error&) {
            break;  // peer went away mid-write
        }
        if (closing) {
            break;
        }
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    done->store(true, std::memory_order_release);
}

HttpClient::HttpClient(std::uint16_t port, int timeoutMillis) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        throw Error(message("http: socket failed: ", std::strerror(errno)));
    }
    timeval tv{};
    tv.tv_sec = timeoutMillis / 1000;
    tv.tv_usec = (timeoutMillis % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw Error(
            message("http: cannot connect to 127.0.0.1:", port, ": ", why));
    }
}

HttpClient::~HttpClient() {
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

HttpClient::HttpClient(HttpClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
}

HttpClient::Response HttpClient::request(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& contentType,
    const std::vector<std::pair<std::string, std::string>>& extraHeaders) {
    std::string out = method + ' ' + target + " HTTP/1.1\r\n";
    out += "Host: 127.0.0.1\r\n";
    if (!body.empty() || method == "POST") {
        out += "Content-Type: " + contentType + "\r\n";
        out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    for (const auto& [name, value] : extraHeaders) {
        out += name + ": " + value + "\r\n";
    }
    out += "\r\n";
    out += body;
    sendAll(fd_, out.data(), out.size());

    // Read the status line + headers, then Content-Length body bytes.
    std::string buf;
    char chunk[4096];
    std::size_t headerEnd = std::string::npos;
    while ((headerEnd = buf.find("\r\n\r\n")) == std::string::npos) {
        const long n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw Error(message("http: client recv failed: ",
                                std::strerror(errno)));
        }
        if (n == 0) {
            throw Error("http: server closed before response");
        }
        buf.append(chunk, static_cast<std::size_t>(n));
    }

    Response response;
    const std::size_t lineEnd = buf.find("\r\n");
    {
        const std::string line = buf.substr(0, lineEnd);
        const std::size_t sp1 = line.find(' ');
        if (sp1 == std::string::npos || line.size() < sp1 + 4) {
            throw Error("http: malformed status line");
        }
        response.status = std::atoi(line.c_str() + sp1 + 1);
    }
    std::size_t pos = lineEnd + 2;
    while (pos < headerEnd) {
        const std::size_t end = buf.find("\r\n", pos);
        const std::string line = buf.substr(pos, end - pos);
        pos = end + 2;
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
            response.headers[toLower(trim(line.substr(0, colon)))] =
                trim(line.substr(colon + 1));
        }
    }
    std::size_t contentLength = 0;
    const auto cl = response.headers.find("content-length");
    if (cl != response.headers.end()) {
        contentLength =
            static_cast<std::size_t>(std::strtoull(cl->second.c_str(),
                                                   nullptr, 10));
    }
    response.body = buf.substr(headerEnd + 4);
    while (response.body.size() < contentLength) {
        const long n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw Error(message("http: client recv failed: ",
                                std::strerror(errno)));
        }
        if (n == 0) {
            throw Error("http: server closed mid-body");
        }
        response.body.append(chunk, static_cast<std::size_t>(n));
    }
    response.body.resize(contentLength);
    return response;
}

}  // namespace shtrace::serve
