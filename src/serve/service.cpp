// shtrace -- characterization service implementation.
//
// Concurrency model, in one place:
//
//   * `mutex_` guards the queue, the coalescing index, the counters, and
//     the executing-worker count. It is held only for bookkeeping --
//     never across a characterization.
//
//   * A Job carries a std::promise<void> / shared_future<void> pair. The
//     worker that executes the job (the leader) fills the job's result
//     fields and then fulfills the promise; every waiter (the leader's
//     own connection thread and any coalesced followers) blocks on the
//     shared future. The promise/future synchronizes-with, so waiters
//     read the result fields without further locking.
//
//   * The coalescing index maps CacheKey.full -> the in-flight Job. A
//     follower that finds its key in the index attaches to that job
//     without consuming a queue slot. The index entry is erased by the
//     worker right before it fulfills the promise: a request arriving
//     after that starts a fresh job (which will then hit the persistent
//     store, the durable tier under this in-memory one).
//
//   * Drain: beginDrain() flips an atomic and wakes the workers. Workers
//     keep pulling until the queue is empty, then exit; awaitDrain()
//     joins them. Jobs admitted before the flip always complete --
//     admission and the flip are both under `mutex_`, so there is no
//     window where an admitted job can be abandoned.
#include "shtrace/serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <future>
#include <utility>

#include "shtrace/obs/log.hpp"
#include "shtrace/obs/metrics.hpp"
#include "shtrace/obs/span.hpp"
#include "shtrace/obs/trace_context.hpp"
#include "shtrace/store/key.hpp"
#include "shtrace/util/parallel.hpp"

namespace shtrace::serve {

namespace {

using MonoClock = std::chrono::steady_clock;

double millisBetween(MonoClock::time_point from, MonoClock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

/// One admitted characterization: shared between the leader's connection
/// thread, any coalesced followers, and the worker that executes it. The
/// result fields are written by the worker before `promise.set_value()`
/// and read by waiters after `future.wait()` -- the promise/future pair
/// is the only synchronization they need.
struct CharacterizationService::Job {
    ServeRequest request;
    int priority = 0;
    std::uint64_t sequence = 0;  ///< admission order, for FIFO tiebreak
    MonoClock::time_point admitted;

    /// The leader's request identity; the worker runs under it, so spans
    /// and log lines from deep inside the solvers carry this trace id.
    obs::TraceContext trace;
    /// Store read/publish wall time attributed by obs::ScopedStageTimer
    /// from inside the drivers (atomic: corner-family pool workers add
    /// concurrently).
    obs::StageAccumulator stageNs;

    std::promise<void> promise;
    std::shared_future<void> future;

    // Written by the worker, read by waiters (synchronized via future).
    CharacterizeResult result;
    CornerFamilyResult sweepResult;  ///< filled instead when request.sweep
    std::exception_ptr error;
    double queueMillis = 0.0;
    double computeMillis = 0.0;

    const SimStats& stats() const {
        return request.sweep ? sweepResult.stats : result.stats;
    }
};

bool CharacterizationService::JobOrder::operator()(
    const std::shared_ptr<Job>& a, const std::shared_ptr<Job>& b) const {
    // priority_queue pops the LARGEST element: higher priority wins, and
    // within a level the smaller (earlier) sequence wins.
    if (a->priority != b->priority) {
        return a->priority < b->priority;
    }
    return a->sequence > b->sequence;
}

CharacterizationService::CharacterizationService(const ServiceOptions& options)
    : options_(options), recorder_(options.flightRecorderCapacity) {
    // Same resolution rule as the batch drivers; the "job count" is the
    // queue bound since that is the most work that can ever be pending.
    threads_ = resolveThreadCount(
        options_.threads,
        options_.queueDepth > 0 ? options_.queueDepth : std::size_t{1});
    // The slow-request sampler needs per-kernel spans to be worth keeping.
    if (!options_.slowTraceDir.empty()) {
        if (!obs::fineEnabled()) {
            obs::setDetail(obs::Detail::Fine);
        }
        std::error_code ec;
        std::filesystem::create_directories(options_.slowTraceDir, ec);
        if (ec || !std::filesystem::is_directory(options_.slowTraceDir)) {
            // Keep serving -- a broken sampler dir degrades observability,
            // not availability -- but say so where an operator will look.
            obs::logEvent(obs::LogLevel::Warn, "serve.slow_trace_dir_failed",
                          {{"dir", options_.slowTraceDir}});
        }
    }
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

CharacterizationService::~CharacterizationService() { awaitDrain(); }

CharacterizationService::Outcome CharacterizationService::characterize(
    const std::string& requestBody, const std::string& traceparent) {
    bool adopted = false;
    const obs::TraceContext trace =
        obs::adoptOrMintTraceContext(traceparent, &adopted);
    // The connection thread carries the request identity for the whole
    // lifecycle: every log line below (including 400/503 rejections)
    // attaches trace/span automatically.
    const obs::ScopedRequestContext requestScope(
        obs::RequestContext{trace, nullptr});
    const std::string requestId = trace.traceIdHex();

    ServeRequest parsed;
    try {
        parsed = parseServeRequest(requestBody, options_.cacheDir);
    } catch (const JsonParseError& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.badRequests;
        obs::addCount(obs::Count::ServeBadRequests);
        obs::logEvent(obs::LogLevel::Warn, "serve.bad_request",
                      {{"what", e.what()}});
        return Outcome{400, renderServeError(e.what(), requestId), 0,
                       requestId};
    } catch (const BadRequestError& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.badRequests;
        obs::addCount(obs::Count::ServeBadRequests);
        obs::logEvent(obs::LogLevel::Warn, "serve.bad_request",
                      {{"what", e.what()}});
        return Outcome{400, renderServeError(e.what(), requestId), 0,
                       requestId};
    }

    const auto admitted = MonoClock::now();
    std::shared_ptr<Job> job;
    bool coalesced = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.requests;
        obs::addCount(obs::Count::ServeRequests);

        auto found = inflight_.find(parsed.key.full);
        if (found != inflight_.end()) {
            // Identical physics already queued or executing: attach.
            job = found->second;
            coalesced = true;
            ++counters_.coalesced;
            obs::addCount(obs::Count::ServeCoalesced);
        } else {
            if (draining_.load(std::memory_order_acquire) ||
                queue_.size() >= options_.queueDepth) {
                ++counters_.rejected;
                obs::addCount(obs::Count::ServeRejected);
                obs::logEvent(obs::LogLevel::Warn, "serve.rejected",
                              {{"cell", parsed.cell},
                               {"draining", draining()},
                               {"queueDepth",
                                static_cast<unsigned long long>(
                                    queue_.size())}});
                return Outcome{503,
                               renderServeError(
                                   draining() ? "service is draining"
                                              : "queue full, retry later",
                                   requestId),
                               options_.retryAfterSeconds, requestId};
            }
            job = std::make_shared<Job>();
            job->request = std::move(parsed);
            job->priority = job->request.priority;
            job->sequence = nextSequence_++;
            job->admitted = admitted;
            // The leader's identity travels with the job: the worker and
            // its pool threads run under it, and the drivers re-install it
            // from the config.
            job->trace = trace;
            job->request.config.traceContext = trace;
            job->future = job->promise.get_future().share();
            inflight_.emplace(job->request.key.full, job);
            queue_.push(job);
            obs::setGauge(obs::Gauge::ServeQueueDepth,
                          static_cast<double>(queue_.size()));
            workReady_.notify_one();
        }
    }

    job->future.wait();

    std::string body;
    bool ok = false;
    std::string errorWhat;
    if (job->error != nullptr) {
        try {
            std::rethrow_exception(job->error);
        } catch (const std::exception& e) {
            errorWhat = e.what();
            body = renderServeError(errorWhat, requestId);
        }
    } else {
        ServeDisposition disposition;
        disposition.coalesced = coalesced;
        disposition.queueMillis = job->queueMillis;
        disposition.computeMillis = job->computeMillis;
        disposition.requestId = requestId;
        disposition.tracedByClient = adopted;
        // Followers render against the leader's request (identical key,
        // possibly different label/priority spelling -- the physics is
        // what is shared).
        if (job->request.sweep) {
            body = renderPvtSweepResponse(job->request, job->sweepResult,
                                          disposition);
            ok = job->sweepResult.allSucceeded();
        } else {
            body = renderServeResponse(job->request, job->result,
                                       disposition);
            ok = job->result.success;
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (job->error == nullptr && ok) {
            ++counters_.ok;
            obs::addCount(obs::Count::ServeResponsesOk);
        } else {
            ++counters_.failed;
            obs::addCount(obs::Count::ServeResponsesFailed);
        }
    }

    // Flight-recorder entry: wall is measured HERE, after rendering, and
    // the leader's compute stage is the residual, so the five stages sum
    // to wallMillis exactly (the /debug/requests contract).
    const double wallMillis = millisBetween(admitted, MonoClock::now());
    RequestRecord record;
    record.id = requestId;
    record.spanId = trace.spanIdHex();
    record.tracedByClient = adopted;
    record.cell = job->request.cell;
    record.key = store::toHexKey(job->request.key.full);
    record.status = job->error != nullptr ? 500 : 200;
    record.ok = job->error == nullptr && ok;
    record.sweep = job->request.sweep;
    record.coalesced = coalesced;
    record.cacheHit = job->stats().cacheHits > 0;
    record.warmStart = job->stats().cacheWarmStarts > 0;
    record.error = errorWhat;
    record.wallMillis = wallMillis;
    if (coalesced) {
        // A follower never queued or computed; its whole life was the
        // wait on the leader's future (plus render, folded in).
        record.stages.coalesceWaitMillis = wallMillis;
        obs::observe(obs::Hist::ServeCoalesceWaitMilliseconds,
                     record.stages.coalesceWaitMillis);
    } else {
        record.stages.queueWaitMillis = job->queueMillis;
        record.stages.storeReadMillis =
            job->stageNs.millis(obs::Stage::StoreRead);
        record.stages.storePublishMillis =
            job->stageNs.millis(obs::Stage::StorePublish);
        record.stages.computeMillis = std::max(
            0.0, wallMillis - record.stages.queueWaitMillis -
                     record.stages.storeReadMillis -
                     record.stages.storePublishMillis);
        obs::observe(obs::Hist::ServeStoreReadMilliseconds,
                     record.stages.storeReadMillis);
        obs::observe(obs::Hist::ServeComputeMilliseconds,
                     record.stages.computeMillis);
        obs::observe(obs::Hist::ServeStorePublishMilliseconds,
                     record.stages.storePublishMillis);
    }
    const SimStats& s = job->stats();
    record.stats.transientSolves = s.transientSolves;
    record.stats.newtonIterations = s.newtonIterations;
    record.stats.hEvaluations = s.hEvaluations;
    record.stats.cacheHits = s.cacheHits;
    record.stats.cacheMisses = s.cacheMisses;
    record.stats.cacheWarmStarts = s.cacheWarmStarts;
    record.stats.wallSeconds = s.wallSeconds;
    record.completedAtNs = obs::monotonicNanos();
    record.sequence = recorder_.record(record);
    maybeSampleSlowRequest(record, trace);

    obs::observe(obs::Hist::ServeRequestMilliseconds, wallMillis);
    obs::logEvent(obs::LogLevel::Info, "serve.request",
                  {{"cell", record.cell},
                   {"key", record.key},
                   {"status", record.status},
                   {"ok", record.ok},
                   {"coalesced", record.coalesced},
                   {"cacheHit", record.cacheHit},
                   {"wallMillis", wallMillis},
                   {"computeMillis", record.stages.computeMillis}});
    return Outcome{job->error != nullptr ? 500 : 200, std::move(body), 0,
                   requestId};
}

void CharacterizationService::maybeSampleSlowRequest(
    const RequestRecord& record, const obs::TraceContext& trace) {
    if (options_.slowTraceDir.empty() || record.coalesced) {
        return;
    }
    std::lock_guard<std::mutex> lock(slowMutex_);
    const std::size_t keep =
        options_.slowTraceCount > 0 ? options_.slowTraceCount : 1;
    std::string evicted;
    if (slowKept_.size() >= keep) {
        auto slowest = std::min_element(
            slowKept_.begin(), slowKept_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        if (slowest->first >= record.wallMillis) {
            return;  // not among the K slowest
        }
        evicted = slowest->second;
        slowKept_.erase(slowest);
    }
    const std::string path = options_.slowTraceDir + "/slow_" + record.id +
                             "_" + std::to_string(record.sequence) +
                             ".trace.json";
    try {
        obs::writeChromeTraceForTrace(path, trace.traceHi, trace.traceLo);
    } catch (const std::exception& e) {
        // The sampler must never take the service down with it.
        obs::logEvent(obs::LogLevel::Warn, "serve.slow_trace_failed",
                      {{"what", e.what()}, {"path", path}});
        return;
    }
    if (!evicted.empty()) {
        std::remove(evicted.c_str());
    }
    slowKept_.emplace_back(record.wallMillis, path);
    obs::logEvent(obs::LogLevel::Info, "serve.slow_trace",
                  {{"path", path}, {"wallMillis", record.wallMillis}});
}

void CharacterizationService::beginDrain() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_.store(true, std::memory_order_release);
    }
    workReady_.notify_all();
}

void CharacterizationService::awaitDrain() {
    beginDrain();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        drained_.wait(lock,
                      [this] { return queue_.empty() && executing_ == 0; });
        if (workersJoined_) {
            return;
        }
        workersJoined_ = true;
    }
    workReady_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
    workers_.clear();
}

ServiceCounters CharacterizationService::counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::size_t CharacterizationService::queuedJobs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void CharacterizationService::workerLoop() {
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return !queue_.empty() ||
                       draining_.load(std::memory_order_acquire);
            });
            if (queue_.empty()) {
                // Draining and nothing left: exit. The drained_ notify
                // below already fired when the last job finished.
                return;
            }
            job = queue_.top();
            queue_.pop();
            ++executing_;
            obs::setGauge(obs::Gauge::ServeQueueDepth,
                          static_cast<double>(queue_.size()));
            obs::setGauge(obs::Gauge::ServeInflight,
                          static_cast<double>(executing_));
        }

        runJob(job);

        bool drainedNow = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --executing_;
            obs::setGauge(obs::Gauge::ServeInflight,
                          static_cast<double>(executing_));
            if (draining_.load(std::memory_order_acquire)) {
                ++counters_.drained;
                obs::addCount(obs::Count::ServeDrainedJobs);
                drainedNow = queue_.empty() && executing_ == 0;
            }
        }
        if (drainedNow) {
            drained_.notify_all();
        }
    }
}

void CharacterizationService::runJob(const std::shared_ptr<Job>& job) {
    const auto pickedUp = MonoClock::now();
    job->queueMillis = millisBetween(job->admitted, pickedUp);
    obs::observe(obs::Hist::ServeQueueWaitMilliseconds, job->queueMillis);

    // The worker runs under the leader's identity, with the job's stage
    // accumulator armed so the drivers' store-read/publish timers land in
    // this request's breakdown.
    const obs::ScopedRequestContext requestScope(
        obs::RequestContext{job->trace, &job->stageNs});
    try {
        if (job->request.sweep) {
            job->sweepResult = characterizeCornerFamily(
                job->request.sweepAxes, job->request.sweepBuilder,
                job->request.config);
        } else {
            job->result =
                characterizeInterdependent(job->request.fixture,
                                           job->request.config);
        }
        // The registry's run counters are normally published by the
        // metrics-file writer; a long-running service publishes after
        // every computation so GET /metrics is live.
        obs::addRunCounters(job->stats());
    } catch (const std::exception& e) {
        job->error = std::current_exception();
        obs::addCount(obs::Count::ServeWorkerExceptions);
        obs::logEvent(obs::LogLevel::Error, "serve.worker_exception",
                      {{"what", e.what()},
                       {"cell", job->request.cell},
                       {"key", store::toHexKey(job->request.key.full)}});
    } catch (...) {
        job->error = std::current_exception();
        obs::addCount(obs::Count::ServeWorkerExceptions);
        obs::logEvent(obs::LogLevel::Error, "serve.worker_exception",
                      {{"what", "non-standard exception"},
                       {"cell", job->request.cell},
                       {"key", store::toHexKey(job->request.key.full)}});
    }
    job->computeMillis = millisBetween(pickedUp, MonoClock::now());

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.computed;
        obs::addCount(obs::Count::ServeComputed);
        if (job->error != nullptr) {
            ++counters_.workerExceptions;
        } else {
            if (job->stats().cacheHits > 0) {
                ++counters_.cacheHits;
            }
            if (job->stats().cacheWarmStarts > 0) {
                ++counters_.warmStarts;
            }
        }
        inflight_.erase(job->request.key.full);
    }
    // Publish: after this, waiters may read the result fields, and a new
    // identical request starts a fresh job (served by the store).
    job->promise.set_value();
}

}  // namespace shtrace::serve
