// shtrace -- characterization service implementation.
//
// Concurrency model, in one place:
//
//   * `mutex_` guards the queue, the coalescing index, the counters, and
//     the executing-worker count. It is held only for bookkeeping --
//     never across a characterization.
//
//   * A Job carries a std::promise<void> / shared_future<void> pair. The
//     worker that executes the job (the leader) fills the job's result
//     fields and then fulfills the promise; every waiter (the leader's
//     own connection thread and any coalesced followers) blocks on the
//     shared future. The promise/future synchronizes-with, so waiters
//     read the result fields without further locking.
//
//   * The coalescing index maps CacheKey.full -> the in-flight Job. A
//     follower that finds its key in the index attaches to that job
//     without consuming a queue slot. The index entry is erased by the
//     worker right before it fulfills the promise: a request arriving
//     after that starts a fresh job (which will then hit the persistent
//     store, the durable tier under this in-memory one).
//
//   * Drain: beginDrain() flips an atomic and wakes the workers. Workers
//     keep pulling until the queue is empty, then exit; awaitDrain()
//     joins them. Jobs admitted before the flip always complete --
//     admission and the flip are both under `mutex_`, so there is no
//     window where an admitted job can be abandoned.
#include "shtrace/serve/service.hpp"

#include <chrono>
#include <exception>
#include <future>
#include <utility>

#include "shtrace/obs/metrics.hpp"
#include "shtrace/util/parallel.hpp"

namespace shtrace::serve {

namespace {

using MonoClock = std::chrono::steady_clock;

double millisBetween(MonoClock::time_point from, MonoClock::time_point to) {
    return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

/// One admitted characterization: shared between the leader's connection
/// thread, any coalesced followers, and the worker that executes it. The
/// result fields are written by the worker before `promise.set_value()`
/// and read by waiters after `future.wait()` -- the promise/future pair
/// is the only synchronization they need.
struct CharacterizationService::Job {
    ServeRequest request;
    int priority = 0;
    std::uint64_t sequence = 0;  ///< admission order, for FIFO tiebreak
    MonoClock::time_point admitted;

    std::promise<void> promise;
    std::shared_future<void> future;

    // Written by the worker, read by waiters (synchronized via future).
    CharacterizeResult result;
    CornerFamilyResult sweepResult;  ///< filled instead when request.sweep
    std::exception_ptr error;
    double queueMillis = 0.0;
    double computeMillis = 0.0;

    const SimStats& stats() const {
        return request.sweep ? sweepResult.stats : result.stats;
    }
};

bool CharacterizationService::JobOrder::operator()(
    const std::shared_ptr<Job>& a, const std::shared_ptr<Job>& b) const {
    // priority_queue pops the LARGEST element: higher priority wins, and
    // within a level the smaller (earlier) sequence wins.
    if (a->priority != b->priority) {
        return a->priority < b->priority;
    }
    return a->sequence > b->sequence;
}

CharacterizationService::CharacterizationService(const ServiceOptions& options)
    : options_(options) {
    // Same resolution rule as the batch drivers; the "job count" is the
    // queue bound since that is the most work that can ever be pending.
    threads_ = resolveThreadCount(
        options_.threads,
        options_.queueDepth > 0 ? options_.queueDepth : std::size_t{1});
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

CharacterizationService::~CharacterizationService() { awaitDrain(); }

CharacterizationService::Outcome CharacterizationService::characterize(
    const std::string& requestBody) {
    ServeRequest parsed;
    try {
        parsed = parseServeRequest(requestBody, options_.cacheDir);
    } catch (const JsonParseError& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.badRequests;
        obs::addCount(obs::Count::ServeBadRequests);
        return Outcome{400, renderServeError(e.what()), 0};
    } catch (const BadRequestError& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.badRequests;
        obs::addCount(obs::Count::ServeBadRequests);
        return Outcome{400, renderServeError(e.what()), 0};
    }

    const auto admitted = MonoClock::now();
    std::shared_ptr<Job> job;
    bool coalesced = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.requests;
        obs::addCount(obs::Count::ServeRequests);

        auto found = inflight_.find(parsed.key.full);
        if (found != inflight_.end()) {
            // Identical physics already queued or executing: attach.
            job = found->second;
            coalesced = true;
            ++counters_.coalesced;
            obs::addCount(obs::Count::ServeCoalesced);
        } else {
            if (draining_.load(std::memory_order_acquire) ||
                queue_.size() >= options_.queueDepth) {
                ++counters_.rejected;
                obs::addCount(obs::Count::ServeRejected);
                return Outcome{503,
                               renderServeError(
                                   draining() ? "service is draining"
                                              : "queue full, retry later"),
                               options_.retryAfterSeconds};
            }
            job = std::make_shared<Job>();
            job->request = std::move(parsed);
            job->priority = job->request.priority;
            job->sequence = nextSequence_++;
            job->admitted = admitted;
            job->future = job->promise.get_future().share();
            inflight_.emplace(job->request.key.full, job);
            queue_.push(job);
            obs::setGauge(obs::Gauge::ServeQueueDepth,
                          static_cast<double>(queue_.size()));
            workReady_.notify_one();
        }
    }

    job->future.wait();

    std::string body;
    bool ok = false;
    if (job->error != nullptr) {
        try {
            std::rethrow_exception(job->error);
        } catch (const std::exception& e) {
            body = renderServeError(e.what());
        }
    } else {
        ServeDisposition disposition;
        disposition.coalesced = coalesced;
        disposition.queueMillis = job->queueMillis;
        disposition.computeMillis = job->computeMillis;
        // Followers render against the leader's request (identical key,
        // possibly different label/priority spelling -- the physics is
        // what is shared).
        if (job->request.sweep) {
            body = renderPvtSweepResponse(job->request, job->sweepResult,
                                          disposition);
            ok = job->sweepResult.allSucceeded();
        } else {
            body = renderServeResponse(job->request, job->result,
                                       disposition);
            ok = job->result.success;
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (job->error == nullptr && ok) {
            ++counters_.ok;
            obs::addCount(obs::Count::ServeResponsesOk);
        } else {
            ++counters_.failed;
            obs::addCount(obs::Count::ServeResponsesFailed);
        }
    }
    obs::observe(obs::Hist::ServeRequestMilliseconds,
                 millisBetween(admitted, MonoClock::now()));
    return Outcome{job->error != nullptr ? 500 : 200, std::move(body), 0};
}

void CharacterizationService::beginDrain() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_.store(true, std::memory_order_release);
    }
    workReady_.notify_all();
}

void CharacterizationService::awaitDrain() {
    beginDrain();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        drained_.wait(lock,
                      [this] { return queue_.empty() && executing_ == 0; });
        if (workersJoined_) {
            return;
        }
        workersJoined_ = true;
    }
    workReady_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
    workers_.clear();
}

ServiceCounters CharacterizationService::counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::size_t CharacterizationService::queuedJobs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void CharacterizationService::workerLoop() {
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return !queue_.empty() ||
                       draining_.load(std::memory_order_acquire);
            });
            if (queue_.empty()) {
                // Draining and nothing left: exit. The drained_ notify
                // below already fired when the last job finished.
                return;
            }
            job = queue_.top();
            queue_.pop();
            ++executing_;
            obs::setGauge(obs::Gauge::ServeQueueDepth,
                          static_cast<double>(queue_.size()));
            obs::setGauge(obs::Gauge::ServeInflight,
                          static_cast<double>(executing_));
        }

        runJob(job);

        bool drainedNow = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --executing_;
            obs::setGauge(obs::Gauge::ServeInflight,
                          static_cast<double>(executing_));
            if (draining_.load(std::memory_order_acquire)) {
                ++counters_.drained;
                obs::addCount(obs::Count::ServeDrainedJobs);
                drainedNow = queue_.empty() && executing_ == 0;
            }
        }
        if (drainedNow) {
            drained_.notify_all();
        }
    }
}

void CharacterizationService::runJob(const std::shared_ptr<Job>& job) {
    const auto pickedUp = MonoClock::now();
    job->queueMillis = millisBetween(job->admitted, pickedUp);
    obs::observe(obs::Hist::ServeQueueWaitMilliseconds, job->queueMillis);

    try {
        if (job->request.sweep) {
            job->sweepResult = characterizeCornerFamily(
                job->request.sweepAxes, job->request.sweepBuilder,
                job->request.config);
        } else {
            job->result =
                characterizeInterdependent(job->request.fixture,
                                           job->request.config);
        }
        // The registry's run counters are normally published by the
        // metrics-file writer; a long-running service publishes after
        // every computation so GET /metrics is live.
        obs::addRunCounters(job->stats());
    } catch (...) {
        job->error = std::current_exception();
    }
    job->computeMillis = millisBetween(pickedUp, MonoClock::now());

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.computed;
        obs::addCount(obs::Count::ServeComputed);
        if (job->error == nullptr) {
            if (job->stats().cacheHits > 0) {
                ++counters_.cacheHits;
            }
            if (job->stats().cacheWarmStarts > 0) {
                ++counters_.warmStarts;
            }
        }
        inflight_.erase(job->request.key.full);
    }
    // Publish: after this, waiters may read the result fields, and a new
    // identical request starts a fresh job (served by the store).
    job->promise.set_value();
}

}  // namespace shtrace::serve
