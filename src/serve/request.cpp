#include "shtrace/serve/request.hpp"

#include <cmath>

#include "shtrace/util/hexfloat.hpp"

#include "shtrace/cells/c2mos.hpp"
#include "shtrace/cells/latch.hpp"
#include "shtrace/cells/tg_dff.hpp"
#include "shtrace/cells/tspc.hpp"

namespace shtrace::serve {

namespace {

/// Strict field walker: every object member must be claimed by exactly
/// one take*() call, and leftovers are a 400. This is what turns a typo'd
/// knob name into an error instead of a silently-defaulted run.
class Fields {
public:
    Fields(const JsonValue& object, std::string where)
        : where_(std::move(where)) {
        if (!object.isObject()) {
            throw BadRequestError(where_ + " must be an object");
        }
        for (const JsonMember& m : object.members()) {
            pending_.emplace_back(&m);
        }
    }

    const JsonValue* take(const std::string& name) {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if ((*it)->first == name) {
                const JsonValue* v = &(*it)->second;
                pending_.erase(it);
                return v;
            }
        }
        return nullptr;
    }

    double takeNumber(const std::string& name, double fallback) {
        const JsonValue* v = take(name);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->isNumber()) {
            throw BadRequestError(where_ + "." + name +
                                  " must be a number");
        }
        const double n = v->asNumber();
        if (!std::isfinite(n)) {
            throw BadRequestError(where_ + "." + name + " must be finite");
        }
        return n;
    }

    int takeInt(const std::string& name, int fallback) {
        const double n =
            takeNumber(name, static_cast<double>(fallback));
        const int i = static_cast<int>(n);
        if (static_cast<double>(i) != n) {
            throw BadRequestError(where_ + "." + name +
                                  " must be an integer");
        }
        return i;
    }

    bool takeBool(const std::string& name, bool fallback) {
        const JsonValue* v = take(name);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->isBool()) {
            throw BadRequestError(where_ + "." + name + " must be a bool");
        }
        return v->asBool();
    }

    std::string takeString(const std::string& name,
                           const std::string& fallback) {
        const JsonValue* v = take(name);
        if (v == nullptr) {
            return fallback;
        }
        if (!v->isString()) {
            throw BadRequestError(where_ + "." + name +
                                  " must be a string");
        }
        return v->asString();
    }

    /// Call last: any unclaimed member is a schema violation.
    void finish() const {
        if (!pending_.empty()) {
            throw BadRequestError("unknown field " + where_ + "." +
                                  pending_.front()->first);
        }
    }

private:
    std::string where_;
    std::vector<const JsonMember*> pending_;
};

ProcessCorner parseCorner(const JsonValue* node) {
    ProcessCorner corner = ProcessCorner::typical();
    if (node == nullptr) {
        return corner;
    }
    Fields f(*node, "corner");
    const std::string base = f.takeString("base", "TT");
    if (base == "TT") {
        corner = ProcessCorner::typical();
    } else if (base == "FF") {
        corner = ProcessCorner::fast();
    } else if (base == "SS") {
        corner = ProcessCorner::slow();
    } else {
        throw BadRequestError("corner.base must be TT, FF, or SS");
    }
    const double celsius = f.takeNumber("temperatureC", 27.0);
    if (celsius != 27.0) {
        corner = corner.atTemperature(celsius);
    }
    // Model-card overrides after the base + temperature derating.
    corner.vdd = f.takeNumber("vdd", corner.vdd);
    corner.vtn = f.takeNumber("vtn", corner.vtn);
    corner.vtp = f.takeNumber("vtp", corner.vtp);
    corner.kpn = f.takeNumber("kpn", corner.kpn);
    corner.kpp = f.takeNumber("kpp", corner.kpp);
    f.finish();
    if (corner.vdd <= 0.0) {
        throw BadRequestError("corner.vdd must be positive");
    }
    return corner;
}

/// The geometry/load knobs shared by every cell builder.
struct CellKnobs {
    double dataTransitionTime;
    double outputLoadCapacitance;
    double wn, wp, l;
    bool risingData;
    bool risingDataSet = false;  ///< honor each cell's own default
    double clkBarDelay;
    bool clkBarDelaySet = false;
};

CellKnobs parseCellKnobs(Fields& f) {
    CellKnobs k{};
    k.dataTransitionTime = f.takeNumber("dataTransitionTime", 0.1e-9);
    k.outputLoadCapacitance = f.takeNumber("outputLoadCapacitance", 20e-15);
    k.wn = f.takeNumber("wn", 0.6e-6);
    k.wp = f.takeNumber("wp", 1.2e-6);
    k.l = f.takeNumber("l", 0.25e-6);
    if (const JsonValue* v = f.take("risingData")) {
        if (!v->isBool()) {
            throw BadRequestError("cellOptions.risingData must be a bool");
        }
        k.risingData = v->asBool();
        k.risingDataSet = true;
    }
    if (const JsonValue* v = f.take("clkBarDelay")) {
        if (!v->isNumber()) {
            throw BadRequestError(
                "cellOptions.clkBarDelay must be a number");
        }
        k.clkBarDelay = v->asNumber();
        k.clkBarDelaySet = true;
    }
    if (k.dataTransitionTime <= 0.0 || k.wn <= 0.0 || k.wp <= 0.0 ||
        k.l <= 0.0 || k.outputLoadCapacitance < 0.0) {
        throw BadRequestError("cellOptions geometry must be positive");
    }
    return k;
}

RegisterFixture buildCell(const std::string& cell,
                          const ProcessCorner& corner, const CellKnobs& k) {
    if (cell == "tspc") {
        TspcOptions o;
        o.corner = corner;
        o.dataTransitionTime = k.dataTransitionTime;
        o.outputLoadCapacitance = k.outputLoadCapacitance;
        o.wn = k.wn;
        o.wp = k.wp;
        o.l = k.l;
        if (k.risingDataSet) {
            o.risingData = k.risingData;
        }
        if (k.clkBarDelaySet) {
            throw BadRequestError("tspc has no clk-bar (single-phase)");
        }
        return buildTspcRegister(o);
    }
    if (cell == "c2mos") {
        C2mosOptions o;
        o.corner = corner;
        o.dataTransitionTime = k.dataTransitionTime;
        o.outputLoadCapacitance = k.outputLoadCapacitance;
        o.wn = k.wn;
        o.wp = k.wp;
        o.l = k.l;
        if (k.risingDataSet) {
            o.risingData = k.risingData;
        }
        if (k.clkBarDelaySet) {
            o.clkBarDelay = k.clkBarDelay;
        }
        return buildC2mosRegister(o);
    }
    if (cell == "tg_dff") {
        TgDffOptions o;
        o.corner = corner;
        o.dataTransitionTime = k.dataTransitionTime;
        o.outputLoadCapacitance = k.outputLoadCapacitance;
        o.wn = k.wn;
        o.wp = k.wp;
        o.l = k.l;
        if (k.risingDataSet) {
            o.risingData = k.risingData;
        }
        if (k.clkBarDelaySet) {
            o.clkBarDelay = k.clkBarDelay;
        }
        return buildTgDffRegister(o);
    }
    if (cell == "latch") {
        LatchOptions o;
        o.corner = corner;
        o.dataTransitionTime = k.dataTransitionTime;
        o.outputLoadCapacitance = k.outputLoadCapacitance;
        o.wn = k.wn;
        o.wp = k.wp;
        o.l = k.l;
        if (k.risingDataSet) {
            o.risingData = k.risingData;
        }
        if (k.clkBarDelaySet) {
            o.clkBarDelay = k.clkBarDelay;
        }
        return buildTransparentLatch(o);
    }
    throw BadRequestError("unknown cell \"" + cell +
                          "\" (tspc, c2mos, tg_dff, latch)");
}

void parseCriterion(const JsonValue* node, CriterionOptions* c) {
    if (node == nullptr) {
        return;
    }
    Fields f(*node, "criterion");
    c->transitionFraction =
        f.takeNumber("transitionFraction", c->transitionFraction);
    c->degradation = f.takeNumber("degradation", c->degradation);
    c->referenceSetupSkew =
        f.takeNumber("referenceSetupSkew", c->referenceSetupSkew);
    c->referenceHoldSkew =
        f.takeNumber("referenceHoldSkew", c->referenceHoldSkew);
    c->observationWindow =
        f.takeNumber("observationWindow", c->observationWindow);
    f.finish();
    if (c->transitionFraction <= 0.0 || c->transitionFraction >= 1.0) {
        throw BadRequestError(
            "criterion.transitionFraction must be in (0, 1)");
    }
    if (c->degradation <= 0.0 || c->degradation > 10.0) {
        throw BadRequestError("criterion.degradation must be in (0, 10]");
    }
}

void parseRecipe(const JsonValue* node, SimulationRecipe* r) {
    if (node == nullptr) {
        return;
    }
    Fields f(*node, "recipe");
    const std::string method = f.takeString("method", "trap");
    if (method == "be") {
        r->method = IntegrationMethod::BackwardEuler;
    } else if (method == "trap") {
        r->method = IntegrationMethod::Trapezoidal;
    } else if (method == "gear2") {
        r->method = IntegrationMethod::Gear2;
    } else {
        throw BadRequestError("recipe.method must be be, trap, or gear2");
    }
    r->dtNominal = f.takeNumber("dtNominal", r->dtNominal);
    r->gmin = f.takeNumber("gmin", r->gmin);
    r->jacobianReuse = f.takeBool("jacobianReuse", r->jacobianReuse);
    r->batchDeviceEval = f.takeBool("batchDeviceEval", r->batchDeviceEval);
    const std::string linalg = f.takeString("linalg", "auto");
    if (linalg == "dense") {
        r->linalg = LinalgBackend::Dense;
    } else if (linalg == "sparse") {
        r->linalg = LinalgBackend::Sparse;
    } else if (linalg == "auto") {
        r->linalg = LinalgBackend::Auto;
    } else {
        throw BadRequestError(
            "recipe.linalg must be dense, sparse, or auto");
    }
    f.finish();
    if (r->dtNominal <= 0.0 || r->dtNominal > 1e-9) {
        throw BadRequestError("recipe.dtNominal must be in (0, 1ns]");
    }
}

void parseTracer(const JsonValue* node, TracerOptions* t) {
    if (node == nullptr) {
        return;
    }
    Fields f(*node, "tracer");
    if (const JsonValue* b = f.take("bounds")) {
        Fields bf(*b, "tracer.bounds");
        t->bounds.setupMin = bf.takeNumber("setupMin", t->bounds.setupMin);
        t->bounds.setupMax = bf.takeNumber("setupMax", t->bounds.setupMax);
        t->bounds.holdMin = bf.takeNumber("holdMin", t->bounds.holdMin);
        t->bounds.holdMax = bf.takeNumber("holdMax", t->bounds.holdMax);
        bf.finish();
        if (t->bounds.setupMin >= t->bounds.setupMax ||
            t->bounds.holdMin >= t->bounds.holdMax) {
            throw BadRequestError("tracer.bounds must be a proper window");
        }
    }
    t->stepLength = f.takeNumber("stepLength", t->stepLength);
    t->maxPoints = f.takeInt("maxPoints", t->maxPoints);
    t->traceBothDirections =
        f.takeBool("traceBothDirections", t->traceBothDirections);
    f.finish();
    if (t->maxPoints < 1 || t->maxPoints > 4096) {
        throw BadRequestError("tracer.maxPoints must be in [1, 4096]");
    }
    if (t->stepLength <= 0.0) {
        throw BadRequestError("tracer.stepLength must be positive");
    }
}

void parseSeed(const JsonValue* node, SeedOptions* s) {
    if (node == nullptr) {
        return;
    }
    Fields f(*node, "seed");
    s->holdSkewLarge = f.takeNumber("holdSkewLarge", s->holdSkewLarge);
    s->setupLo = f.takeNumber("setupLo", s->setupLo);
    s->setupHi = f.takeNumber("setupHi", s->setupHi);
    s->bracketTarget = f.takeNumber("bracketTarget", s->bracketTarget);
    f.finish();
    if (s->setupLo >= s->setupHi || s->bracketTarget <= 0.0) {
        throw BadRequestError("seed bracket must satisfy lo < hi");
    }
}

std::vector<double> takeAxis(Fields& f, const std::string& name,
                             std::vector<double> fallback) {
    const JsonValue* v = f.take(name);
    if (v == nullptr) {
        return fallback;
    }
    if (!v->isArray()) {
        throw BadRequestError("pvtSweep." + name +
                              " must be an array of numbers");
    }
    std::vector<double> out;
    out.reserve(v->asArray().size());
    for (const JsonValue& e : v->asArray()) {
        if (!e.isNumber() || !std::isfinite(e.asNumber())) {
            throw BadRequestError("pvtSweep." + name +
                                  " must contain finite numbers");
        }
        out.push_back(e.asNumber());
    }
    return out;
}

/// Fills the sweep fields from a "pvtSweep" block. The grid's own corner
/// synthesis replaces the single "corner" block; the surrogate knobs ride
/// in config.corners.
void parsePvtSweep(const JsonValue& node, ServeRequest* request) {
    Fields f(node, "pvtSweep");
    PvtAxes& axes = request->sweepAxes;
    axes.process = takeAxis(f, "process", axes.process);
    axes.vdd = takeAxis(f, "vdd", axes.vdd);
    axes.temperatureC = takeAxis(f, "temperatureC", axes.temperatureC);
    CornerSweepOptions& corners = request->config.corners;
    corners.anchorsAll = f.takeBool("anchorsAll", corners.anchorsAll);
    corners.tolerance = f.takeNumber("tolerance", corners.tolerance);
    corners.maxEscalations =
        f.takeInt("maxEscalations", corners.maxEscalations);
    corners.controlPoints = f.takeInt("controlPoints", corners.controlPoints);
    corners.maxRounds = f.takeInt("maxRounds", corners.maxRounds);
    corners.probeResidual = f.takeBool("probeResidual", corners.probeResidual);
    f.finish();
    if (corners.controlPoints < 2 || corners.controlPoints > 4096) {
        throw BadRequestError("pvtSweep.controlPoints must be in [2, 4096]");
    }
    try {
        axes.validate();
    } catch (const Error& e) {
        throw BadRequestError(e.what());
    }
    request->sweep = true;
}

}  // namespace

ServeRequest parseServeRequest(const std::string& body,
                               const std::string& cacheDir) {
    const JsonValue doc = parseJson(body);
    Fields f(doc, "request");

    ServeRequest request;
    const JsonValue* cell = f.take("cell");
    if (cell == nullptr || !cell->isString() || cell->asString().empty()) {
        throw BadRequestError("\"cell\" (string) is required");
    }
    request.cell = cell->asString();
    request.label = f.takeString("label", request.cell);
    request.priority = f.takeInt("priority", 0);
    if (request.priority < -100 || request.priority > 100) {
        throw BadRequestError("priority must be in [-100, 100]");
    }
    const bool warmStart = f.takeBool("warmStart", true);

    const JsonValue* sweepNode = f.take("pvtSweep");
    const JsonValue* cornerNode = f.take("corner");
    if (sweepNode != nullptr && cornerNode != nullptr) {
        throw BadRequestError(
            "pvtSweep and corner are mutually exclusive (the grid defines "
            "the corners)");
    }

    JsonValue emptyOptions = JsonValue::object();
    const JsonValue* optionsNode = f.take("cellOptions");
    Fields cellFields(optionsNode != nullptr ? *optionsNode : emptyOptions,
                      "cellOptions");
    const CellKnobs knobs = parseCellKnobs(cellFields);
    cellFields.finish();

    RunConfig& config = request.config;
    if (sweepNode != nullptr) {
        parsePvtSweep(*sweepNode, &request);
        request.sweepBuilder = [cell = request.cell,
                                knobs](const ProcessCorner& corner) {
            return buildCell(cell, corner, knobs);
        };
        // Representative fixture (first grid corner): validates the cell
        // spelling now and anchors the coalescing key to the physics.
        request.fixture =
            request.sweepBuilder(cornerAtPvt(request.sweepAxes.at(0)));
    } else {
        const ProcessCorner corner = parseCorner(cornerNode);
        request.fixture = buildCell(request.cell, corner, knobs);
    }

    parseCriterion(f.take("criterion"), &config.criterion);
    parseRecipe(f.take("recipe"), &config.recipe);
    parseTracer(f.take("tracer"), &config.tracer);
    parseSeed(f.take("seed"), &config.seed);
    f.finish();

    config.cacheDir = cacheDir;
    config.warmStart = warmStart;
    config.storeLabel = request.label;  // display-only; never in the key
    // The service is the one place deciding store policy; requests cannot
    // turn writes off (the shared tier is an operator concern).
    config.cachePolicy = CachePolicy::ReadWrite;

    request.key = store::characterizeKey(request.fixture, config);
    if (request.sweep) {
        // Fold the grid geometry and surrogate strategy into the
        // coalescing key: two sweeps may only share a computation when
        // they would produce byte-identical results.
        store::Fnv1a h;
        h.update("pvt_sweep\n").update(store::toHexKey(request.key.full));
        for (const std::vector<double>* axis :
             {&request.sweepAxes.process, &request.sweepAxes.vdd,
              &request.sweepAxes.temperatureC}) {
            h.update("\naxis");
            for (const double v : *axis) {
                h.update(" ").update(toHexFloat(v));
            }
        }
        const CornerSweepOptions& corners = config.corners;
        h.update("\nstrategy ")
            .update(corners.anchorsAll ? "all" : "anchors")
            .update(" ")
            .update(toHexFloat(corners.tolerance))
            .update(" ")
            .update(std::to_string(corners.maxEscalations))
            .update(" ")
            .update(std::to_string(corners.controlPoints))
            .update(" ")
            .update(std::to_string(corners.maxRounds))
            .update(corners.probeResidual ? " probe" : " noprobe");
        request.key.full = h.value();
    }
    return request;
}

std::string renderServeResponse(const ServeRequest& request,
                                const CharacterizeResult& result,
                                const ServeDisposition& disposition) {
    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue(result.success));
    out.set("cell", JsonValue(request.cell));
    out.set("key", JsonValue(store::toHexKey(request.key.full)));
    out.set("problem", JsonValue(store::toHexKey(request.key.problem)));
    if (!result.success) {
        out.set("error", JsonValue(result.failureReason));
    }
    out.set("characteristicClockToQ",
            JsonValue(result.characteristicClockToQ));
    out.set("degradedClockToQ", JsonValue(result.degradedClockToQ));
    out.set("tf", JsonValue(result.tf));
    out.set("r", JsonValue(result.r));

    JsonValue contour = JsonValue::array();
    const TracedContour& traced = result.contour;
    for (std::size_t i = 0; i < traced.points.size(); ++i) {
        JsonValue row = JsonValue::object();
        row.set("setup", JsonValue(traced.points[i].setup));
        row.set("hold", JsonValue(traced.points[i].hold));
        if (i < traced.residuals.size()) {
            row.set("residual", JsonValue(traced.residuals[i]));
        }
        contour.push(std::move(row));
    }
    out.set("contour", std::move(contour));

    JsonValue diag = JsonValue::object();
    diag.set("events",
             JsonValue(static_cast<std::uint64_t>(
                 traced.diagnostics.events.size())));
    diag.set("summary", JsonValue(traced.diagnostics.summary()));
    out.set("diagnostics", std::move(diag));

    const SimStats& s = result.stats;
    JsonValue stats = JsonValue::object();
    stats.set("transientSolves", JsonValue(s.transientSolves));
    stats.set("timeSteps", JsonValue(s.timeSteps));
    stats.set("newtonIterations", JsonValue(s.newtonIterations));
    stats.set("chordIterations", JsonValue(s.chordIterations));
    stats.set("luFactorizations", JsonValue(s.luFactorizations));
    stats.set("hEvaluations", JsonValue(s.hEvaluations));
    stats.set("mpnrIterations", JsonValue(s.mpnrIterations));
    stats.set("cacheHits", JsonValue(s.cacheHits));
    stats.set("cacheMisses", JsonValue(s.cacheMisses));
    stats.set("cacheWarmStarts", JsonValue(s.cacheWarmStarts));
    stats.set("wallSeconds", JsonValue(s.wallSeconds));
    out.set("stats", std::move(stats));

    JsonValue served = JsonValue::object();
    served.set("coalesced", JsonValue(disposition.coalesced));
    served.set("cacheHit", JsonValue(s.cacheHits > 0));
    served.set("warmStart", JsonValue(s.cacheWarmStarts > 0));
    served.set("queueMillis", JsonValue(disposition.queueMillis));
    served.set("computeMillis", JsonValue(disposition.computeMillis));
    if (!disposition.requestId.empty()) {
        served.set("tracedByClient", JsonValue(disposition.tracedByClient));
        out.set("requestId", JsonValue(disposition.requestId));
    }
    out.set("served", std::move(served));

    return writeJson(out);
}

std::string renderPvtSweepResponse(const ServeRequest& request,
                                   const CornerFamilyResult& result,
                                   const ServeDisposition& disposition) {
    JsonValue out = JsonValue::object();
    out.set("ok", JsonValue(result.allSucceeded()));
    out.set("cell", JsonValue(request.cell));
    out.set("key", JsonValue(store::toHexKey(request.key.full)));

    const auto axisArray = [](const std::vector<double>& axis) {
        JsonValue arr = JsonValue::array();
        for (const double v : axis) {
            arr.push(JsonValue(v));
        }
        return arr;
    };
    JsonValue grid = JsonValue::object();
    grid.set("process", axisArray(result.axes.process));
    grid.set("vdd", axisArray(result.axes.vdd));
    grid.set("temperatureC", axisArray(result.axes.temperatureC));
    out.set("grid", std::move(grid));

    JsonValue sweep = JsonValue::object();
    sweep.set("corners", JsonValue(static_cast<std::uint64_t>(
                             result.rows.size())));
    sweep.set("anchorsTraced",
              JsonValue(static_cast<std::uint64_t>(result.anchorsTraced)));
    sweep.set("escalated",
              JsonValue(static_cast<std::uint64_t>(result.escalated)));
    sweep.set("surrogateAccepted", JsonValue(static_cast<std::uint64_t>(
                                       result.surrogateAccepted)));
    sweep.set("tracedFraction",
              JsonValue(result.rows.empty()
                            ? 0.0
                            : static_cast<double>(result.tracedCount()) /
                                  static_cast<double>(result.rows.size())));
    sweep.set("rounds", JsonValue(result.rounds));
    sweep.set("converged", JsonValue(result.converged));
    sweep.set("surrogateMaxScore", JsonValue(result.surrogateMaxScore));
    out.set("sweep", std::move(sweep));

    JsonValue corners = JsonValue::array();
    for (const CornerFamilyRow& row : result.rows) {
        JsonValue c = JsonValue::object();
        c.set("corner", JsonValue(row.corner));
        c.set("ok", JsonValue(row.success));
        c.set("provenance", JsonValue(toString(row.provenance)));
        c.set("anchor", JsonValue(row.anchor));
        if (!row.success) {
            c.set("error", JsonValue(row.failureReason));
        }
        c.set("characteristicClockToQ",
              JsonValue(row.characteristicClockToQ));
        c.set("setupTime", JsonValue(row.setupTime));
        c.set("holdTime", JsonValue(row.holdTime));
        c.set("contourPoints",
              JsonValue(static_cast<std::uint64_t>(row.contour.size())));
        c.set("acquisitionScore", JsonValue(row.acquisitionScore));
        c.set("warmStartCorner", JsonValue(row.warmStartCorner));
        c.set("transients", JsonValue(row.transientCount));
        c.set("wallSeconds", JsonValue(row.stats.wallSeconds));
        corners.push(std::move(c));
    }
    out.set("corners", std::move(corners));

    const SimStats& s = result.stats;
    JsonValue stats = JsonValue::object();
    stats.set("transientSolves", JsonValue(s.transientSolves));
    stats.set("hEvaluations", JsonValue(s.hEvaluations));
    stats.set("cacheHits", JsonValue(s.cacheHits));
    stats.set("cacheMisses", JsonValue(s.cacheMisses));
    stats.set("cacheWarmStarts", JsonValue(s.cacheWarmStarts));
    stats.set("wallSeconds", JsonValue(s.wallSeconds));
    out.set("stats", std::move(stats));

    JsonValue served = JsonValue::object();
    served.set("coalesced", JsonValue(disposition.coalesced));
    served.set("cacheHit", JsonValue(s.cacheHits > 0));
    served.set("warmStart", JsonValue(s.cacheWarmStarts > 0));
    served.set("queueMillis", JsonValue(disposition.queueMillis));
    served.set("computeMillis", JsonValue(disposition.computeMillis));
    if (!disposition.requestId.empty()) {
        served.set("tracedByClient", JsonValue(disposition.tracedByClient));
        out.set("requestId", JsonValue(disposition.requestId));
    }
    out.set("served", std::move(served));

    return writeJson(out);
}

std::string renderServeError(const std::string& what) {
    JsonValue out = JsonValue::object();
    out.set("error", JsonValue(what));
    return writeJson(out);
}

std::string renderServeError(const std::string& what,
                             const std::string& requestId) {
    JsonValue out = JsonValue::object();
    out.set("error", JsonValue(what));
    if (!requestId.empty()) {
        out.set("requestId", JsonValue(requestId));
    }
    return writeJson(out);
}

}  // namespace shtrace::serve
