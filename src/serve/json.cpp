#include "shtrace/serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace shtrace::serve {

namespace {

void typeError(const char* wanted, JsonValue::Kind got) {
    static const char* names[] = {"null",   "bool",  "number",
                                  "string", "array", "object"};
    throw InvalidArgumentError(
        message("json: expected ", wanted, ", got ",
                names[static_cast<int>(got)]));
}

}  // namespace

bool JsonValue::asBool() const {
    if (kind_ != Kind::Bool) {
        typeError("bool", kind_);
    }
    return bool_;
}

double JsonValue::asNumber() const {
    if (kind_ != Kind::Number) {
        typeError("number", kind_);
    }
    return number_;
}

const std::string& JsonValue::asString() const {
    if (kind_ != Kind::String) {
        typeError("string", kind_);
    }
    return string_;
}

const JsonArray& JsonValue::asArray() const {
    if (kind_ != Kind::Array) {
        typeError("array", kind_);
    }
    return array_;
}

const std::vector<JsonMember>& JsonValue::members() const {
    if (kind_ != Kind::Object) {
        typeError("object", kind_);
    }
    return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    if (kind_ != Kind::Object) {
        return nullptr;
    }
    for (const JsonMember& m : object_) {
        if (m.first == key) {
            return &m.second;
        }
    }
    return nullptr;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
    if (kind_ != Kind::Object) {
        typeError("object", kind_);
    }
    for (JsonMember& m : object_) {
        if (m.first == key) {
            m.second = std::move(value);
            return *this;
        }
    }
    object_.emplace_back(key, std::move(value));
    return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
    if (kind_ != Kind::Array) {
        typeError("array", kind_);
    }
    array_.push_back(std::move(value));
    return *this;
}

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parseDocument() {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
        }
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw JsonParseError(why, pos_);
    }

    void skipSpace() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(message("expected '", c, "'"));
        }
        ++pos_;
    }

    bool consumeWord(const char* word) {
        std::size_t n = 0;
        while (word[n] != '\0') {
            ++n;
        }
        if (text_.compare(pos_, n, word) != 0) {
            return false;
        }
        pos_ += n;
        return true;
    }

    JsonValue parseValue() {
        if (++depth_ > kMaxDepth) {
            fail("nesting too deep");
        }
        skipSpace();
        const char c = peek();
        JsonValue out;
        switch (c) {
            case '{':
                out = parseObject();
                break;
            case '[':
                out = parseArray();
                break;
            case '"':
                out = JsonValue(parseString());
                break;
            case 't':
                if (!consumeWord("true")) {
                    fail("bad literal");
                }
                out = JsonValue(true);
                break;
            case 'f':
                if (!consumeWord("false")) {
                    fail("bad literal");
                }
                out = JsonValue(false);
                break;
            case 'n':
                if (!consumeWord("null")) {
                    fail("bad literal");
                }
                out = JsonValue(nullptr);
                break;
            default:
                out = JsonValue(parseNumber());
        }
        --depth_;
        return out;
    }

    JsonValue parseObject() {
        expect('{');
        JsonValue obj = JsonValue::object();
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipSpace();
            if (peek() != '"') {
                fail("expected object key string");
            }
            std::string key = parseString();
            skipSpace();
            expect(':');
            if (obj.find(key) != nullptr) {
                fail("duplicate object key \"" + key + "\"");
            }
            obj.set(key, parseValue());
            skipSpace();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return obj;
            }
            fail("expected ',' or '}'");
        }
    }

    JsonValue parseArray() {
        expect('[');
        JsonValue arr = JsonValue::array();
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipSpace();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return arr;
            }
            fail("expected ',' or ']'");
        }
    }

    std::string parseString() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_++]);
            if (c == '"') {
                return out;
            }
            if (c < 0x20) {
                fail("raw control character in string");
            }
            if (c != '\\') {
                out += static_cast<char>(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char e = text_[pos_++];
            switch (e) {
                case '"':
                    out += '"';
                    break;
                case '\\':
                    out += '\\';
                    break;
                case '/':
                    out += '/';
                    break;
                case 'b':
                    out += '\b';
                    break;
                case 'f':
                    out += '\f';
                    break;
                case 'n':
                    out += '\n';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("short \\u escape");
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("bad \\u escape digit");
                        }
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs are
                    // rejected: the protocol is ASCII-dominant and the
                    // writer never emits them).
                    if (code >= 0xD800 && code <= 0xDFFF) {
                        fail("surrogate \\u escapes unsupported");
                    }
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default:
                    fail("unknown escape");
            }
        }
    }

    double parseNumber() {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_]))) {
            fail("expected number");
        }
        // JSON int grammar: "0" or nonzero-leading digits -- "01" is two
        // tokens and therefore an error, not an octal-looking number.
        if (text_[pos_] == '0') {
            ++pos_;
            if (pos_ < text_.size() &&
                std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("leading zero in number");
            }
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required after decimal point");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required in exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v)) {
            fail("unrepresentable number");
        }
        return v;
    }

    static constexpr int kMaxDepth = 64;

    const std::string& text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

void writeNumber(std::string& out, double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v >= -9.0e15 && v <= 9.0e15) {
        out += std::to_string(static_cast<long long>(v));
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void writeValue(std::string& out, const JsonValue& v, int indent,
                int depth) {
    const auto newline = [&](int d) {
        if (indent >= 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (v.kind()) {
        case JsonValue::Kind::Null:
            out += "null";
            break;
        case JsonValue::Kind::Bool:
            out += v.asBool() ? "true" : "false";
            break;
        case JsonValue::Kind::Number:
            writeNumber(out, v.asNumber());
            break;
        case JsonValue::Kind::String:
            out += jsonQuote(v.asString());
            break;
        case JsonValue::Kind::Array: {
            const JsonArray& a = v.asArray();
            if (a.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            for (std::size_t i = 0; i < a.size(); ++i) {
                if (i != 0) {
                    out += ',';
                }
                newline(depth + 1);
                writeValue(out, a[i], indent, depth + 1);
            }
            newline(depth);
            out += ']';
            break;
        }
        case JsonValue::Kind::Object: {
            const auto& m = v.members();
            if (m.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            for (std::size_t i = 0; i < m.size(); ++i) {
                if (i != 0) {
                    out += ',';
                }
                newline(depth + 1);
                out += jsonQuote(m[i].first);
                out += indent >= 0 ? ": " : ":";
                writeValue(out, m[i].second, indent, depth + 1);
            }
            newline(depth);
            out += '}';
            break;
        }
    }
}

}  // namespace

JsonValue parseJson(const std::string& text) {
    return Parser(text).parseDocument();
}

std::string jsonQuote(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
        const unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\b':
                out += "\\b";
                break;
            case '\f':
                out += "\\f";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\r':
                out += "\\r";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (u < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", u);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string writeJson(const JsonValue& value) {
    std::string out;
    writeValue(out, value, -1, 0);
    return out;
}

std::string writeJsonPretty(const JsonValue& value) {
    std::string out;
    writeValue(out, value, 2, 0);
    out += '\n';
    return out;
}

}  // namespace shtrace::serve
