#include "shtrace/serve/flight_recorder.hpp"

#include <algorithm>
#include <utility>

#include "shtrace/serve/json.hpp"

namespace shtrace::serve {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
    ring_.reserve(capacity_);
}

std::uint64_t FlightRecorder::record(RequestRecord record) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t sequence = total_;
    record.sequence = sequence;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(record));
    } else {
        ring_[total_ % capacity_] = std::move(record);
    }
    ++total_;
    return sequence;
}

std::vector<RequestRecord> FlightRecorder::recent() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RequestRecord> out;
    out.reserve(ring_.size());
    for (std::uint64_t back = 0; back < ring_.size(); ++back) {
        out.push_back(ring_[(total_ - 1 - back) % capacity_]);
    }
    return out;
}

std::optional<RequestRecord> FlightRecorder::find(
    const std::string& id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint64_t back = 0; back < ring_.size(); ++back) {
        const RequestRecord& r = ring_[(total_ - 1 - back) % capacity_];
        if (r.id == id) {
            return r;
        }
    }
    return std::nullopt;
}

std::size_t FlightRecorder::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::uint64_t FlightRecorder::totalRecorded() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

namespace {

JsonValue recordJson(const RequestRecord& r) {
    JsonValue out = JsonValue::object();
    out.set("requestId", JsonValue(r.id));
    out.set("spanId", JsonValue(r.spanId));
    out.set("tracedByClient", JsonValue(r.tracedByClient));
    out.set("sequence", JsonValue(r.sequence));
    out.set("cell", JsonValue(r.cell));
    out.set("key", JsonValue(r.key));
    out.set("status", JsonValue(static_cast<double>(r.status)));
    out.set("ok", JsonValue(r.ok));
    out.set("sweep", JsonValue(r.sweep));
    out.set("coalesced", JsonValue(r.coalesced));
    out.set("cacheHit", JsonValue(r.cacheHit));
    out.set("warmStart", JsonValue(r.warmStart));
    if (!r.error.empty()) {
        out.set("error", JsonValue(r.error));
    }

    JsonValue stages = JsonValue::object();
    stages.set("queueWaitMillis", JsonValue(r.stages.queueWaitMillis));
    stages.set("coalesceWaitMillis",
               JsonValue(r.stages.coalesceWaitMillis));
    stages.set("storeReadMillis", JsonValue(r.stages.storeReadMillis));
    stages.set("computeMillis", JsonValue(r.stages.computeMillis));
    stages.set("storePublishMillis",
               JsonValue(r.stages.storePublishMillis));
    out.set("stages", std::move(stages));
    out.set("wallMillis", JsonValue(r.wallMillis));

    JsonValue stats = JsonValue::object();
    stats.set("transientSolves", JsonValue(r.stats.transientSolves));
    stats.set("newtonIterations", JsonValue(r.stats.newtonIterations));
    stats.set("hEvaluations", JsonValue(r.stats.hEvaluations));
    stats.set("cacheHits", JsonValue(r.stats.cacheHits));
    stats.set("cacheMisses", JsonValue(r.stats.cacheMisses));
    stats.set("cacheWarmStarts", JsonValue(r.stats.cacheWarmStarts));
    stats.set("wallSeconds", JsonValue(r.stats.wallSeconds));
    out.set("stats", std::move(stats));
    return out;
}

}  // namespace

std::string renderRequestRecord(const RequestRecord& record) {
    return writeJson(recordJson(record));
}

std::string renderRequestRecords(const FlightRecorder& recorder) {
    JsonValue out = JsonValue::object();
    out.set("capacity",
            JsonValue(static_cast<std::uint64_t>(recorder.capacity())));
    out.set("recorded", JsonValue(recorder.totalRecorded()));
    JsonValue requests = JsonValue::array();
    for (const RequestRecord& r : recorder.recent()) {
        requests.push(recordJson(r));
    }
    out.set("requests", std::move(requests));
    return writeJson(out);
}

}  // namespace shtrace::serve
