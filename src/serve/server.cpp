// shtrace -- served daemon route dispatch.
#include "shtrace/serve/server.hpp"

#include "shtrace/obs/metrics.hpp"
#include "shtrace/obs/span.hpp"

namespace shtrace::serve {

ServedDaemon::ServedDaemon(const DaemonOptions& options)
    : service_(options.service),
      server_(static_cast<std::uint16_t>(options.port)) {
    // A long-running service is an observability consumer by definition:
    // GET /metrics is only live when the registry records.
    if (!obs::enabled()) {
        obs::setDetail(obs::Detail::Coarse);
    }
}

void ServedDaemon::run() {
    server_.serve([this](const HttpRequest& request) {
        return handle(request);
    });
}

void ServedDaemon::shutdown() {
    // Order matters: drain the service first (every admitted job
    // completes and its connection thread gets its response), then stop
    // the transport (which itself waits for in-flight responses to
    // flush). New requests arriving mid-drain get clean 503s.
    service_.beginDrain();
    service_.awaitDrain();
    server_.stop();
}

HttpResponse ServedDaemon::handle(const HttpRequest& request) {
    const std::string path = request.path();

    if (path == "/healthz") {
        if (request.method != "GET") {
            return HttpResponse::text(405, "method not allowed\n");
        }
        if (service_.draining()) {
            return HttpResponse::text(503, "draining\n");
        }
        return HttpResponse::text(200, "ok\n");
    }

    if (path == "/metrics") {
        if (request.method != "GET") {
            return HttpResponse::text(405, "method not allowed\n");
        }
        HttpResponse response;
        response.status = 200;
        // Prometheus text exposition format version, per the spec; the
        // lint stage (scripts/prom_lint.sh) scrapes this live.
        response.contentType = "text/plain; version=0.0.4; charset=utf-8";
        response.body = obs::prometheusText(obs::metricsSnapshot());
        return response;
    }

    if (path == "/v1/characterize") {
        if (request.method != "POST") {
            return HttpResponse::json(
                405, renderServeError("method not allowed; POST required"));
        }
        CharacterizationService::Outcome outcome =
            service_.characterize(request.body);
        HttpResponse response =
            HttpResponse::json(outcome.status, outcome.body);
        if (outcome.retryAfterSeconds > 0) {
            response.headers.emplace_back(
                "Retry-After", std::to_string(outcome.retryAfterSeconds));
        }
        return response;
    }

    return HttpResponse::json(404, renderServeError("no such route"));
}

}  // namespace shtrace::serve
