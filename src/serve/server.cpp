// shtrace -- served daemon route dispatch.
#include "shtrace/serve/server.hpp"

#include "shtrace/obs/metrics.hpp"
#include "shtrace/obs/span.hpp"
#include "shtrace/serve/json.hpp"

namespace shtrace::serve {

namespace {

// Kept in sync with the CMake project() VERSION; surfaced by /healthz so
// fleet tooling can tell what is actually running.
constexpr const char* kServeVersion = "1.0.0";

}  // namespace

ServedDaemon::ServedDaemon(const DaemonOptions& options)
    : service_(options.service),
      server_(static_cast<std::uint16_t>(options.port)),
      started_(std::chrono::steady_clock::now()) {
    // A long-running service is an observability consumer by definition:
    // GET /metrics is only live when the registry records.
    if (!obs::enabled()) {
        obs::setDetail(obs::Detail::Coarse);
    }
}

void ServedDaemon::run() {
    server_.serve([this](const HttpRequest& request) {
        return handle(request);
    });
}

void ServedDaemon::shutdown() {
    // Order matters: drain the service first (every admitted job
    // completes and its connection thread gets its response), then stop
    // the transport (which itself waits for in-flight responses to
    // flush). New requests arriving mid-drain get clean 503s.
    service_.beginDrain();
    service_.awaitDrain();
    server_.stop();
}

HttpResponse ServedDaemon::handle(const HttpRequest& request) {
    const std::string path = request.path();

    if (path == "/healthz") {
        if (request.method != "GET") {
            return HttpResponse::text(405, "method not allowed\n");
        }
        const bool draining = service_.draining();
        JsonValue out = JsonValue::object();
        out.set("status", JsonValue(draining ? std::string("draining")
                                             : std::string("ok")));
        out.set("version", JsonValue(std::string(kServeVersion)));
        out.set("uptimeSeconds",
                JsonValue(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started_)
                              .count()));
        out.set("queueDepth", JsonValue(static_cast<std::uint64_t>(
                                  service_.queuedJobs())));
        out.set("workerThreads", JsonValue(static_cast<double>(
                                     service_.workerThreads())));
        JsonValue recorder = JsonValue::object();
        recorder.set("size", JsonValue(static_cast<std::uint64_t>(
                                 service_.flightRecorder().size())));
        recorder.set("capacity",
                     JsonValue(static_cast<std::uint64_t>(
                         service_.flightRecorder().capacity())));
        recorder.set("recorded",
                     JsonValue(service_.flightRecorder().totalRecorded()));
        out.set("flightRecorder", std::move(recorder));
        return HttpResponse::json(draining ? 503 : 200, writeJson(out));
    }

    if (path == "/metrics") {
        if (request.method != "GET") {
            return HttpResponse::text(405, "method not allowed\n");
        }
        HttpResponse response;
        response.status = 200;
        // Prometheus text exposition format version, per the spec; the
        // lint stage (scripts/prom_lint.sh) scrapes this live.
        response.contentType = "text/plain; version=0.0.4; charset=utf-8";
        response.body = obs::prometheusText(obs::metricsSnapshot());
        return response;
    }

    if (path == "/debug/requests" ||
        path.rfind("/debug/requests/", 0) == 0) {
        if (request.method != "GET") {
            return HttpResponse::json(
                405, renderServeError("method not allowed; GET required"));
        }
        if (path == "/debug/requests") {
            return HttpResponse::json(
                200, renderRequestRecords(service_.flightRecorder()));
        }
        const std::string id =
            path.substr(std::string("/debug/requests/").size());
        if (const auto record = service_.flightRecorder().find(id)) {
            return HttpResponse::json(200, renderRequestRecord(*record));
        }
        return HttpResponse::json(
            404, renderServeError("no such request id", id));
    }

    if (path == "/v1/characterize") {
        if (request.method != "POST") {
            return HttpResponse::json(
                405, renderServeError("method not allowed; POST required"));
        }
        const std::string* traceparent = request.header("traceparent");
        CharacterizationService::Outcome outcome = service_.characterize(
            request.body,
            traceparent != nullptr ? *traceparent : std::string());
        HttpResponse response =
            HttpResponse::json(outcome.status, outcome.body);
        if (!outcome.requestId.empty()) {
            response.headers.emplace_back("X-Request-Id",
                                          outcome.requestId);
        }
        if (outcome.retryAfterSeconds > 0) {
            response.headers.emplace_back(
                "Retry-After", std::to_string(outcome.retryAfterSeconds));
        }
        return response;
    }

    return HttpResponse::json(404, renderServeError("no such route"));
}

}  // namespace shtrace::serve
