#include "shtrace/linalg/sparse.hpp"

#include <algorithm>

#include "shtrace/util/error.hpp"

namespace shtrace {

SparsePattern::SparsePattern(std::size_t n,
                             std::vector<std::pair<int, int>> entries)
    : n_(n) {
    require(n > 0, "SparsePattern: dimension must be positive");
    for (std::size_t i = 0; i < n; ++i) {
        entries.emplace_back(static_cast<int>(i), static_cast<int>(i));
    }
    for (const auto& [row, col] : entries) {
        require(row >= 0 && col >= 0 && static_cast<std::size_t>(row) < n &&
                    static_cast<std::size_t>(col) < n,
                "SparsePattern: entry (", row, ",", col, ") out of range ", n);
    }
    // Column-major order with rows sorted within each column.
    std::sort(entries.begin(), entries.end(),
              [](const std::pair<int, int>& a, const std::pair<int, int>& b) {
                  return a.second != b.second ? a.second < b.second
                                              : a.first < b.first;
              });
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

    colPtr_.assign(n + 1, 0);
    rowIdx_.reserve(entries.size());
    for (const auto& [row, col] : entries) {
        rowIdx_.push_back(row);
        ++colPtr_[static_cast<std::size_t>(col) + 1];
    }
    for (std::size_t j = 0; j < n; ++j) {
        colPtr_[j + 1] += colPtr_[j];
    }
    diag_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        diag_[i] = indexOf(static_cast<int>(i), static_cast<int>(i));
    }
}

int SparsePattern::indexOf(int row, int col) const noexcept {
    const int lo = colPtr_[static_cast<std::size_t>(col)];
    const int hi = colPtr_[static_cast<std::size_t>(col) + 1];
    const auto first = rowIdx_.begin() + lo;
    const auto last = rowIdx_.begin() + hi;
    const auto it = std::lower_bound(first, last, row);
    if (it == last || *it != row) {
        return -1;
    }
    return static_cast<int>(it - rowIdx_.begin());
}

SparseMatrixCsc& SparseMatrixCsc::operator+=(const SparseMatrixCsc& o) {
    require(pattern_ != nullptr && pattern_ == o.pattern_,
            "SparseMatrixCsc::operator+=: operands must share one pattern");
    for (std::size_t i = 0; i < values_.size(); ++i) {
        values_[i] += o.values_[i];
    }
    return *this;
}

void SparseMatrixCsc::multiplyAccumulate(const Vector& x, double s,
                                         Vector& y) const {
    require(bound(), "SparseMatrixCsc::multiplyAccumulate: unbound matrix");
    const std::size_t n = pattern_->dimension();
    require(x.size() == n && y.size() == n,
            "SparseMatrixCsc::multiplyAccumulate: size mismatch");
    const std::vector<int>& colPtr = pattern_->colPtr();
    const std::vector<int>& rowIdx = pattern_->rowIdx();
    for (std::size_t j = 0; j < n; ++j) {
        const double xj = s * x[j];
        if (xj == 0.0) {
            continue;
        }
        for (int p = colPtr[j]; p < colPtr[j + 1]; ++p) {
            y[static_cast<std::size_t>(rowIdx[static_cast<std::size_t>(p)])] +=
                values_[static_cast<std::size_t>(p)] * xj;
        }
    }
}

Vector SparseMatrixCsc::multiplyTransposed(const Vector& x) const {
    require(bound(), "SparseMatrixCsc::multiplyTransposed: unbound matrix");
    const std::size_t n = pattern_->dimension();
    require(x.size() == n, "SparseMatrixCsc::multiplyTransposed: size mismatch");
    const std::vector<int>& colPtr = pattern_->colPtr();
    const std::vector<int>& rowIdx = pattern_->rowIdx();
    Vector y(n);
    for (std::size_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (int p = colPtr[j]; p < colPtr[j + 1]; ++p) {
            sum += values_[static_cast<std::size_t>(p)] *
                   x[static_cast<std::size_t>(rowIdx[static_cast<std::size_t>(p)])];
        }
        y[j] = sum;
    }
    return y;
}

Matrix SparseMatrixCsc::toDense() const {
    require(bound(), "SparseMatrixCsc::toDense: unbound matrix");
    const std::size_t n = pattern_->dimension();
    Matrix out(n, n);
    const std::vector<int>& colPtr = pattern_->colPtr();
    const std::vector<int>& rowIdx = pattern_->rowIdx();
    for (std::size_t j = 0; j < n; ++j) {
        for (int p = colPtr[j]; p < colPtr[j + 1]; ++p) {
            out(static_cast<std::size_t>(rowIdx[static_cast<std::size_t>(p)]),
                j) = values_[static_cast<std::size_t>(p)];
        }
    }
    return out;
}

}  // namespace shtrace
