#include "shtrace/linalg/linear_solver.hpp"

#include "shtrace/util/error.hpp"

namespace shtrace {

LinalgBackend resolveLinalgBackend(LinalgBackend requested,
                                   std::size_t systemSize) noexcept {
    if (requested != LinalgBackend::Auto) {
        return requested;
    }
    return systemSize >= kSparseAutoThreshold ? LinalgBackend::Sparse
                                              : LinalgBackend::Dense;
}

const char* linalgBackendName(LinalgBackend backend) noexcept {
    switch (backend) {
        case LinalgBackend::Auto:
            return "auto";
        case LinalgBackend::Dense:
            return "dense";
        case LinalgBackend::Sparse:
            return "sparse";
    }
    return "unknown";
}

void SystemMatrix::bindDense(std::size_t n) {
    mode_ = Mode::Dense;
    dense_.resize(n, n);
    sparse_ = SparseMatrixCsc{};
}

void SystemMatrix::bindSparse(std::shared_ptr<const SparsePattern> pattern) {
    require(pattern != nullptr, "SystemMatrix::bindSparse: null pattern");
    mode_ = Mode::Sparse;
    sparse_ = SparseMatrixCsc(std::move(pattern));
    dense_ = Matrix{};
}

std::size_t SystemMatrix::dimension() const noexcept {
    switch (mode_) {
        case Mode::Dense:
            return dense_.rows();
        case Mode::Sparse:
            return sparse_.dimension();
        case Mode::Unbound:
            break;
    }
    return 0;
}

Matrix& SystemMatrix::dense() {
    require(mode_ == Mode::Dense, "SystemMatrix::dense: not in dense mode");
    return dense_;
}

const Matrix& SystemMatrix::dense() const {
    require(mode_ == Mode::Dense, "SystemMatrix::dense: not in dense mode");
    return dense_;
}

SparseMatrixCsc& SystemMatrix::sparse() {
    require(mode_ == Mode::Sparse, "SystemMatrix::sparse: not in sparse mode");
    return sparse_;
}

const SparseMatrixCsc& SystemMatrix::sparse() const {
    require(mode_ == Mode::Sparse, "SystemMatrix::sparse: not in sparse mode");
    return sparse_;
}

void SystemMatrix::setZero() {
    require(bound(), "SystemMatrix::setZero: unbound");
    if (mode_ == Mode::Dense) {
        dense_.setZero();
    } else {
        sparse_.setZero();
    }
}

SystemMatrix& SystemMatrix::operator*=(double s) {
    require(bound(), "SystemMatrix::operator*=: unbound");
    if (mode_ == Mode::Dense) {
        dense_ *= s;
    } else {
        sparse_ *= s;
    }
    return *this;
}

SystemMatrix& SystemMatrix::operator+=(const SystemMatrix& o) {
    require(bound() && mode_ == o.mode_,
            "SystemMatrix::operator+=: operands must share a mode");
    if (mode_ == Mode::Dense) {
        dense_ += o.dense_;
    } else {
        sparse_ += o.sparse_;
    }
    return *this;
}

void SystemMatrix::addToDiagonal(std::size_t i, double v) {
    if (mode_ == Mode::Dense) {
        dense_(i, i) += v;
    } else {
        sparse_.addAt(sparse_.pattern().diagonalIndex(i), v);
    }
}

void SystemMatrix::multiplyAccumulate(const Vector& x, double s,
                                      Vector& y) const {
    require(bound(), "SystemMatrix::multiplyAccumulate: unbound");
    if (mode_ == Mode::Dense) {
        dense_.multiplyAccumulate(x, s, y);
    } else {
        sparse_.multiplyAccumulate(x, s, y);
    }
}

Vector SystemMatrix::multiplyTransposed(const Vector& x) const {
    require(bound(), "SystemMatrix::multiplyTransposed: unbound");
    return mode_ == Mode::Dense ? dense_.multiplyTransposed(x)
                                : sparse_.multiplyTransposed(x);
}

Matrix SystemMatrix::toDense() const {
    require(bound(), "SystemMatrix::toDense: unbound");
    return mode_ == Mode::Dense ? dense_ : sparse_.toDense();
}

bool DenseLinearSolver::factor(const SystemMatrix& a, SimStats* stats,
                               double pivotTol) {
    return lu_.factor(a.dense(), stats, pivotTol);
}

bool SparseLinearSolver::factor(const SystemMatrix& a, SimStats* stats,
                                double pivotTol) {
    return lu_.factor(a.sparse(), stats, pivotTol);
}

std::unique_ptr<LinearSolver> makeLinearSolver(LinalgBackend backend) {
    switch (backend) {
        case LinalgBackend::Dense:
            return std::make_unique<DenseLinearSolver>();
        case LinalgBackend::Sparse:
            return std::make_unique<SparseLinearSolver>();
        case LinalgBackend::Auto:
            break;
    }
    throw InvalidArgumentError(
        "makeLinearSolver: backend must be resolved (Dense or Sparse)");
}

}  // namespace shtrace
