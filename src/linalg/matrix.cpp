#include "shtrace/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace shtrace {

// ---------------------------------------------------------------- Vector ---

Vector& Vector::operator+=(const Vector& o) {
    require(size() == o.size(), "Vector += size mismatch: ", size(), " vs ",
            o.size());
    for (std::size_t i = 0; i < size(); ++i) {
        data_[i] += o.data_[i];
    }
    return *this;
}

Vector& Vector::operator-=(const Vector& o) {
    require(size() == o.size(), "Vector -= size mismatch: ", size(), " vs ",
            o.size());
    for (std::size_t i = 0; i < size(); ++i) {
        data_[i] -= o.data_[i];
    }
    return *this;
}

Vector& Vector::operator*=(double s) noexcept {
    for (double& v : data_) {
        v *= s;
    }
    return *this;
}

void Vector::addScaled(double s, const Vector& b) {
    require(size() == b.size(), "Vector::addScaled size mismatch: ", size(),
            " vs ", b.size());
    for (std::size_t i = 0; i < size(); ++i) {
        data_[i] += s * b.data_[i];
    }
}

double Vector::dot(const Vector& o) const {
    require(size() == o.size(), "Vector::dot size mismatch: ", size(), " vs ",
            o.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < size(); ++i) {
        acc += data_[i] * o.data_[i];
    }
    return acc;
}

double Vector::normInf() const noexcept {
    double acc = 0.0;
    for (double v : data_) {
        acc = std::max(acc, std::fabs(v));
    }
    return acc;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
    os << '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) {
            os << ", ";
        }
        os << v[i];
    }
    return os << ']';
}

// ---------------------------------------------------------------- Matrix ---

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 1.0;
    }
    return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
    require(rows_ == o.rows_ && cols_ == o.cols_, "Matrix += shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += o.data_[i];
    }
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
    require(rows_ == o.rows_ && cols_ == o.cols_, "Matrix -= shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] -= o.data_[i];
    }
    return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
    for (double& v : data_) {
        v *= s;
    }
    return *this;
}

Vector Matrix::multiply(const Vector& x) const {
    require(x.size() == cols_, "Matrix*Vector shape mismatch: ", rows_, "x",
            cols_, " vs ", x.size());
    Vector y(rows_);
    multiplyAccumulate(x, 1.0, y);
    return y;
}

void Matrix::multiplyAccumulate(const Vector& x, double s, Vector& y) const {
    require(x.size() == cols_ && y.size() == rows_,
            "Matrix::multiplyAccumulate shape mismatch");
    for (std::size_t i = 0; i < rows_; ++i) {
        const double* row = rowData(i);
        double acc = 0.0;
        for (std::size_t j = 0; j < cols_; ++j) {
            acc += row[j] * x[j];
        }
        y[i] += s * acc;
    }
}

Vector Matrix::multiplyTransposed(const Vector& x) const {
    require(x.size() == rows_, "Matrix^T*Vector shape mismatch");
    Vector y(cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        const double* row = rowData(i);
        for (std::size_t j = 0; j < cols_; ++j) {
            y[j] += row[j] * x[i];
        }
    }
    return y;
}

Matrix Matrix::multiply(const Matrix& b) const {
    require(cols_ == b.rows_, "Matrix*Matrix shape mismatch");
    Matrix c(rows_, b.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aik = (*this)(i, k);
            if (aik == 0.0) {
                continue;
            }
            const double* brow = b.rowData(k);
            double* crow = c.rowData(i);
            for (std::size_t j = 0; j < b.cols_; ++j) {
                crow[j] += aik * brow[j];
            }
        }
    }
    return c;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) {
            t(j, i) = (*this)(i, j);
        }
    }
    return t;
}

double Matrix::normInf() const noexcept {
    double best = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
        double rowSum = 0.0;
        const double* row = rowData(i);
        for (std::size_t j = 0; j < cols_; ++j) {
            rowSum += std::fabs(row[j]);
        }
        best = std::max(best, rowSum);
    }
    return best;
}

double Matrix::maxAbsDiff(const Matrix& o) const {
    require(rows_ == o.rows_ && cols_ == o.cols_,
            "Matrix::maxAbsDiff shape mismatch");
    double best = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        best = std::max(best, std::fabs(data_[i] - o.data_[i]));
    }
    return best;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
        os << (i == 0 ? "[[" : " [");
        for (std::size_t j = 0; j < m.cols(); ++j) {
            if (j != 0) {
                os << ", ";
            }
            os << std::setw(12) << m(i, j);
        }
        os << (i + 1 == m.rows() ? "]]" : "]\n");
    }
    return os;
}

}  // namespace shtrace
