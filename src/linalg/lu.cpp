#include "shtrace/linalg/lu.hpp"

#include <cmath>
#include <utility>

#include "shtrace/obs/span.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

bool LuFactorization::factor(const Matrix& a, SimStats* stats,
                             double pivotTol) {
    require(a.rows() == a.cols(), "LU requires a square matrix, got ",
            a.rows(), "x", a.cols());
    SHTRACE_FINE_SPAN("lu.factor");
    const std::size_t n = a.rows();
    // Vector copy-assignment reuses existing capacity, so after the first
    // factor() at a given size this copy allocates nothing -- the transient
    // step loop calls factor() thousands of times on one object.
    lu_ = a;
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        perm_[i] = i;
    }
    permSign_ = 1;
    valid_ = false;

    // Implicit row scaling for pivot selection (Crout-style scaled partial
    // pivoting): MNA rows mix conductances (~1e-3 S) and unit-entries of
    // source branch equations, so unscaled pivoting can pick poor pivots.
    scaleBuf_.assign(n, 0.0);
    std::vector<double>& scale = scaleBuf_;
    for (std::size_t i = 0; i < n; ++i) {
        double rowMax = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            rowMax = std::max(rowMax, std::fabs(lu_(i, j)));
        }
        if (rowMax == 0.0) {
            return false;  // structurally empty row
        }
        scale[i] = 1.0 / rowMax;
    }

    for (std::size_t k = 0; k < n; ++k) {
        // Pivot search on the scaled column.
        std::size_t pivotRow = k;
        double best = std::fabs(lu_(k, k)) * scale[k];
        for (std::size_t i = k + 1; i < n; ++i) {
            const double cand = std::fabs(lu_(i, k)) * scale[i];
            if (cand > best) {
                best = cand;
                pivotRow = i;
            }
        }
        if (pivotRow != k) {
            for (std::size_t j = 0; j < n; ++j) {
                std::swap(lu_(k, j), lu_(pivotRow, j));
            }
            std::swap(perm_[k], perm_[pivotRow]);
            std::swap(scale[k], scale[pivotRow]);
            permSign_ = -permSign_;
        }
        const double pivot = lu_(k, k);
        if (std::fabs(pivot) < pivotTol) {
            return false;
        }
        const double invPivot = 1.0 / pivot;
        for (std::size_t i = k + 1; i < n; ++i) {
            const double lik = lu_(i, k) * invPivot;
            lu_(i, k) = lik;
            if (lik == 0.0) {
                continue;
            }
            double* rowI = lu_.rowData(i);
            const double* rowK = lu_.rowData(k);
            for (std::size_t j = k + 1; j < n; ++j) {
                rowI[j] -= lik * rowK[j];
            }
        }
    }
    valid_ = true;
    if (stats != nullptr) {
        ++stats->luFactorizations;
    }
    return true;
}

Vector LuFactorization::solve(const Vector& b, SimStats* stats) const {
    Vector x = b;
    solveInPlace(x, stats);
    return x;
}

void LuFactorization::solveInPlace(Vector& b, SimStats* stats) const {
    require(valid_, "LuFactorization::solve on invalid factorization");
    require(b.size() == dimension(), "LU solve dimension mismatch");
    SHTRACE_FINE_SPAN("lu.solve");
    const std::size_t n = dimension();
    // Apply the permutation into the reused scratch buffer (resize is a
    // no-op after the first solve at this size).
    scratch_.resize(n);
    Vector& y = scratch_;
    for (std::size_t i = 0; i < n; ++i) {
        y[i] = b[perm_[i]];
    }
    // Forward substitution (L has implicit unit diagonal).
    for (std::size_t i = 1; i < n; ++i) {
        const double* row = lu_.rowData(i);
        double acc = y[i];
        for (std::size_t j = 0; j < i; ++j) {
            acc -= row[j] * y[j];
        }
        y[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
        const double* row = lu_.rowData(ii);
        double acc = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j) {
            acc -= row[j] * y[j];
        }
        y[ii] = acc / row[ii];
    }
    // Copy (not move): y aliases the reusable scratch buffer.
    b = y;
    if (stats != nullptr) {
        ++stats->luSolves;
    }
}

Vector LuFactorization::solveTransposed(const Vector& b,
                                        SimStats* stats) const {
    require(valid_, "LuFactorization::solveTransposed on invalid factorization");
    require(b.size() == dimension(), "LU solveTransposed dimension mismatch");
    const std::size_t n = dimension();
    // A^T = (P^T L U)^T = U^T L^T P, so solve U^T z = b, L^T w = z, x = P^T w.
    Vector z = b;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = z[i];
        for (std::size_t j = 0; j < i; ++j) {
            acc -= lu_(j, i) * z[j];
        }
        z[i] = acc / lu_(i, i);
    }
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = z[ii];
        for (std::size_t j = ii + 1; j < n; ++j) {
            acc -= lu_(j, ii) * z[j];
        }
        z[ii] = acc;
    }
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[perm_[i]] = z[i];
    }
    if (stats != nullptr) {
        ++stats->luSolves;
    }
    return x;
}

double LuFactorization::determinant() const {
    require(valid_, "determinant of invalid factorization");
    double det = permSign_;
    for (std::size_t i = 0; i < dimension(); ++i) {
        det *= lu_(i, i);
    }
    return det;
}

double LuFactorization::reciprocalPivotRatio() const noexcept {
    if (!valid_ || dimension() == 0) {
        return 0.0;
    }
    double minPivot = std::fabs(lu_(0, 0));
    double maxPivot = minPivot;
    for (std::size_t i = 1; i < dimension(); ++i) {
        const double p = std::fabs(lu_(i, i));
        minPivot = std::min(minPivot, p);
        maxPivot = std::max(maxPivot, p);
    }
    return maxPivot == 0.0 ? 0.0 : minPivot / maxPivot;
}

Vector solveLinearSystem(const Matrix& a, const Vector& b, SimStats* stats) {
    LuFactorization lu;
    if (!lu.factor(a, stats)) {
        throw NumericalError("solveLinearSystem: singular matrix");
    }
    return lu.solve(b, stats);
}

}  // namespace shtrace
