#include "shtrace/linalg/sparse_lu.hpp"

#include <algorithm>
#include <cmath>

#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

/// Sorted-vector union of `a` and `b` excluding `drop1`/`drop2`.
void mergeInto(const std::vector<int>& a, const std::vector<int>& b,
               int drop1, int drop2, std::vector<int>& out) {
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        int v;
        if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
            v = a[i];
            if (i < a.size() && j < b.size() && a[i] == b[j]) {
                ++j;
            }
            ++i;
        } else {
            v = b[j];
            ++j;
        }
        if (v != drop1 && v != drop2) {
            out.push_back(v);
        }
    }
}

}  // namespace

std::vector<int> minimumDegreeOrder(const SparsePattern& pattern) {
    const int n = static_cast<int>(pattern.dimension());
    const std::vector<int>& colPtr = pattern.colPtr();
    const std::vector<int>& rowIdx = pattern.rowIdx();
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
        for (int p = colPtr[static_cast<std::size_t>(j)];
             p < colPtr[static_cast<std::size_t>(j) + 1]; ++p) {
            const int r = rowIdx[static_cast<std::size_t>(p)];
            if (r != j) {
                adj[static_cast<std::size_t>(r)].push_back(j);
                adj[static_cast<std::size_t>(j)].push_back(r);
            }
        }
    }
    for (auto& list : adj) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }

    std::vector<char> alive(static_cast<std::size_t>(n), 1);
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<int> scratch;
    for (int step = 0; step < n; ++step) {
        // Deterministic tie-break: smallest index among minimum degrees.
        int best = -1;
        std::size_t bestDeg = 0;
        for (int v = 0; v < n; ++v) {
            if (alive[static_cast<std::size_t>(v)] &&
                (best < 0 || adj[static_cast<std::size_t>(v)].size() < bestDeg)) {
                best = v;
                bestDeg = adj[static_cast<std::size_t>(v)].size();
            }
        }
        order.push_back(best);
        alive[static_cast<std::size_t>(best)] = 0;
        // Eliminating `best` turns its neighborhood into a clique.
        const std::vector<int> nbrs =
            std::move(adj[static_cast<std::size_t>(best)]);
        adj[static_cast<std::size_t>(best)].clear();
        for (const int u : nbrs) {
            mergeInto(adj[static_cast<std::size_t>(u)], nbrs, u, best, scratch);
            adj[static_cast<std::size_t>(u)].swap(scratch);
        }
    }
    return order;
}

double SparseLuFactorization::maxAbsValue(const SparseMatrixCsc& a) noexcept {
    double m = 0.0;
    const double* v = a.values();
    for (std::size_t i = 0; i < a.nonZeros(); ++i) {
        const double av = std::fabs(v[i]);
        if (av > m) {
            m = av;
        }
    }
    return m;
}

bool SparseLuFactorization::factor(const SparseMatrixCsc& a, SimStats* stats,
                                   double pivotTol) {
    require(a.bound(), "SparseLuFactorization::factor: unbound matrix");
    lastWasRefactor_ = false;
    if (stats != nullptr) {
        ++stats->luFactorizations;
    }
    if (valid_ && pattern_ == a.patternPtr()) {
        if (refactor(a, pivotTol)) {
            lastWasRefactor_ = true;
            if (stats != nullptr) {
                ++stats->sparseRefactorizations;
            }
            return true;
        }
        // Values drifted past the stored pivot sequence: fall through to a
        // fresh factorization with live pivoting.
        valid_ = false;
    }
    valid_ = fullFactor(a, pivotTol);
    return valid_;
}

bool SparseLuFactorization::fullFactor(const SparseMatrixCsc& a,
                                       double pivotTol) {
    const SparsePattern& pat = a.pattern();
    const int n = static_cast<int>(pat.dimension());
    n_ = static_cast<std::size_t>(n);
    pattern_ = a.patternPtr();
    colOrder_ = minimumDegreeOrder(pat);
    pinv_.assign(n_, -1);
    rowPerm_.assign(n_, -1);
    lColPtr_.assign(n_ + 1, 0);
    lRowIdx_.clear();
    lValues_.clear();
    uColPtr_.assign(n_ + 1, 0);
    uRowIdx_.clear();
    uValues_.clear();
    uDiag_.assign(n_, 0.0);
    work_.assign(n_, 0.0);
    mark_.assign(n_, -1);
    stack_.resize(n_);
    stackPos_.resize(n_);
    topo_.resize(n_);

    const double matScale = maxAbsValue(a);
    if (matScale == 0.0) {
        return false;
    }
    const double singularTol = pivotTol * matScale;

    const std::vector<int>& colPtr = pat.colPtr();
    const std::vector<int>& rowIdx = pat.rowIdx();
    const double* av = a.values();

    // lRowIdx_ holds ORIGINAL row indices during construction (the pivot
    // index of a fill row is unknown until that row is chosen as a pivot);
    // converted to pivot coordinates after the last column.
    for (int k = 0; k < n; ++k) {
        const int j = colOrder_[static_cast<std::size_t>(k)];

        // Symbolic: reach of the pattern of A(:,j) over the graph of L
        // (node r -> rows of L(:,pinv[r])), as a reverse DFS postorder so
        // topo_[top..n) is a valid update schedule.
        int top = n;
        for (int p = colPtr[static_cast<std::size_t>(j)];
             p < colPtr[static_cast<std::size_t>(j) + 1]; ++p) {
            const int seed = rowIdx[static_cast<std::size_t>(p)];
            if (mark_[static_cast<std::size_t>(seed)] == k) {
                continue;
            }
            int head = 0;
            stack_[0] = seed;
            while (head >= 0) {
                const int node = stack_[static_cast<std::size_t>(head)];
                const int piv = pinv_[static_cast<std::size_t>(node)];
                if (mark_[static_cast<std::size_t>(node)] != k) {
                    mark_[static_cast<std::size_t>(node)] = k;
                    stackPos_[static_cast<std::size_t>(head)] =
                        piv >= 0 ? lColPtr_[static_cast<std::size_t>(piv)] : 0;
                }
                bool descended = false;
                if (piv >= 0) {
                    const int end =
                        lColPtr_[static_cast<std::size_t>(piv) + 1];
                    while (stackPos_[static_cast<std::size_t>(head)] < end) {
                        const int child = lRowIdx_[static_cast<std::size_t>(
                            stackPos_[static_cast<std::size_t>(head)]++)];
                        if (mark_[static_cast<std::size_t>(child)] != k) {
                            stack_[static_cast<std::size_t>(++head)] = child;
                            descended = true;
                            break;
                        }
                    }
                }
                if (!descended) {
                    topo_[static_cast<std::size_t>(--top)] = node;
                    --head;
                }
            }
        }

        // Numeric: scatter A(:,j), then eliminate in topological order.
        for (int p = colPtr[static_cast<std::size_t>(j)];
             p < colPtr[static_cast<std::size_t>(j) + 1]; ++p) {
            work_[static_cast<std::size_t>(rowIdx[static_cast<std::size_t>(p)])] =
                av[p];
        }
        for (int t = top; t < n; ++t) {
            const int r = topo_[static_cast<std::size_t>(t)];
            const int i = pinv_[static_cast<std::size_t>(r)];
            if (i < 0) {
                continue;  // below-diagonal candidate, handled after
            }
            const double uval = work_[static_cast<std::size_t>(r)];
            work_[static_cast<std::size_t>(r)] = 0.0;
            uRowIdx_.push_back(i);
            uValues_.push_back(uval);
            for (int q = lColPtr_[static_cast<std::size_t>(i)];
                 q < lColPtr_[static_cast<std::size_t>(i) + 1]; ++q) {
                work_[static_cast<std::size_t>(
                    lRowIdx_[static_cast<std::size_t>(q)])] -=
                    uval * lValues_[static_cast<std::size_t>(q)];
            }
        }

        // Partial pivoting over the not-yet-pivotal reach rows.
        int pivRow = -1;
        double colMax = 0.0;
        for (int t = top; t < n; ++t) {
            const int r = topo_[static_cast<std::size_t>(t)];
            if (pinv_[static_cast<std::size_t>(r)] < 0) {
                const double mag = std::fabs(work_[static_cast<std::size_t>(r)]);
                if (mag > colMax) {
                    colMax = mag;
                    pivRow = r;
                }
            }
        }
        if (pivRow < 0 || colMax <= singularTol) {
            // Structurally deficient (no eligible pivot row) or numerically
            // singular column. Leave the instance invalid; scratch is
            // re-initialized by the next fullFactor call.
            return false;
        }
        pinv_[static_cast<std::size_t>(pivRow)] = k;
        rowPerm_[static_cast<std::size_t>(k)] = pivRow;
        const double pivot = work_[static_cast<std::size_t>(pivRow)];
        uDiag_[static_cast<std::size_t>(k)] = pivot;
        work_[static_cast<std::size_t>(pivRow)] = 0.0;
        for (int t = top; t < n; ++t) {
            const int r = topo_[static_cast<std::size_t>(t)];
            if (pinv_[static_cast<std::size_t>(r)] < 0) {
                lRowIdx_.push_back(r);
                lValues_.push_back(work_[static_cast<std::size_t>(r)] / pivot);
                work_[static_cast<std::size_t>(r)] = 0.0;
            }
        }
        lColPtr_[static_cast<std::size_t>(k) + 1] =
            static_cast<int>(lRowIdx_.size());
        uColPtr_[static_cast<std::size_t>(k) + 1] =
            static_cast<int>(uRowIdx_.size());
    }

    for (int& r : lRowIdx_) {
        r = pinv_[static_cast<std::size_t>(r)];
    }
    return true;
}

bool SparseLuFactorization::refactor(const SparseMatrixCsc& a,
                                     double pivotTol) {
    const SparsePattern& pat = a.pattern();
    const int n = static_cast<int>(n_);
    const double matScale = maxAbsValue(a);
    if (matScale == 0.0) {
        return false;
    }
    const double singularTol = pivotTol * matScale;
    const std::vector<int>& colPtr = pat.colPtr();
    const std::vector<int>& rowIdx = pat.rowIdx();
    const double* av = a.values();

    // work_ is all-zero between columns (every touched slot is cleared on
    // consumption below); indices are PIVOT coordinates throughout.
    for (int k = 0; k < n; ++k) {
        const int j = colOrder_[static_cast<std::size_t>(k)];
        for (int p = colPtr[static_cast<std::size_t>(j)];
             p < colPtr[static_cast<std::size_t>(j) + 1]; ++p) {
            work_[static_cast<std::size_t>(
                pinv_[static_cast<std::size_t>(
                    rowIdx[static_cast<std::size_t>(p)])])] = av[p];
        }
        for (int p = uColPtr_[static_cast<std::size_t>(k)];
             p < uColPtr_[static_cast<std::size_t>(k) + 1]; ++p) {
            const int i = uRowIdx_[static_cast<std::size_t>(p)];
            const double uval = work_[static_cast<std::size_t>(i)];
            work_[static_cast<std::size_t>(i)] = 0.0;
            uValues_[static_cast<std::size_t>(p)] = uval;
            if (uval == 0.0) {
                continue;
            }
            for (int q = lColPtr_[static_cast<std::size_t>(i)];
                 q < lColPtr_[static_cast<std::size_t>(i) + 1]; ++q) {
                work_[static_cast<std::size_t>(
                    lRowIdx_[static_cast<std::size_t>(q)])] -=
                    uval * lValues_[static_cast<std::size_t>(q)];
            }
        }
        const double pivot = work_[static_cast<std::size_t>(k)];
        work_[static_cast<std::size_t>(k)] = 0.0;
        double colMax = std::fabs(pivot);
        for (int q = lColPtr_[static_cast<std::size_t>(k)];
             q < lColPtr_[static_cast<std::size_t>(k) + 1]; ++q) {
            colMax = std::max(
                colMax, std::fabs(work_[static_cast<std::size_t>(
                            lRowIdx_[static_cast<std::size_t>(q)])]));
        }
        // Pivot health: the stored pivot row must stay both nonsingular and
        // within a growth factor of its column maximum, else the stale
        // pivot sequence would amplify roundoff -- bail to a full factor.
        if (std::fabs(pivot) <= singularTol ||
            std::fabs(pivot) < 0.1 * colMax) {
            for (int q = lColPtr_[static_cast<std::size_t>(k)];
                 q < lColPtr_[static_cast<std::size_t>(k) + 1]; ++q) {
                work_[static_cast<std::size_t>(
                    lRowIdx_[static_cast<std::size_t>(q)])] = 0.0;
            }
            return false;
        }
        uDiag_[static_cast<std::size_t>(k)] = pivot;
        for (int q = lColPtr_[static_cast<std::size_t>(k)];
             q < lColPtr_[static_cast<std::size_t>(k) + 1]; ++q) {
            const int r = lRowIdx_[static_cast<std::size_t>(q)];
            lValues_[static_cast<std::size_t>(q)] =
                work_[static_cast<std::size_t>(r)] / pivot;
            work_[static_cast<std::size_t>(r)] = 0.0;
        }
    }
    return true;
}

void SparseLuFactorization::solveInPlace(Vector& b, SimStats* stats) const {
    require(valid_, "SparseLuFactorization::solveInPlace without factor()");
    require(b.size() == n_,
            "SparseLuFactorization::solveInPlace: size mismatch");
    solveWork_.resize(n_);
    const int n = static_cast<int>(n_);
    for (int k = 0; k < n; ++k) {
        solveWork_[static_cast<std::size_t>(k)] =
            b[static_cast<std::size_t>(rowPerm_[static_cast<std::size_t>(k)])];
    }
    for (int k = 0; k < n; ++k) {  // L (unit lower) forward
        const double xk = solveWork_[static_cast<std::size_t>(k)];
        if (xk == 0.0) {
            continue;
        }
        for (int q = lColPtr_[static_cast<std::size_t>(k)];
             q < lColPtr_[static_cast<std::size_t>(k) + 1]; ++q) {
            solveWork_[static_cast<std::size_t>(
                lRowIdx_[static_cast<std::size_t>(q)])] -=
                lValues_[static_cast<std::size_t>(q)] * xk;
        }
    }
    for (int k = n - 1; k >= 0; --k) {  // U backward
        const double xk = solveWork_[static_cast<std::size_t>(k)] /
                          uDiag_[static_cast<std::size_t>(k)];
        solveWork_[static_cast<std::size_t>(k)] = xk;
        if (xk == 0.0) {
            continue;
        }
        for (int p = uColPtr_[static_cast<std::size_t>(k)];
             p < uColPtr_[static_cast<std::size_t>(k) + 1]; ++p) {
            solveWork_[static_cast<std::size_t>(
                uRowIdx_[static_cast<std::size_t>(p)])] -=
                uValues_[static_cast<std::size_t>(p)] * xk;
        }
    }
    for (int k = 0; k < n; ++k) {
        b[static_cast<std::size_t>(colOrder_[static_cast<std::size_t>(k)])] =
            solveWork_[static_cast<std::size_t>(k)];
    }
    if (stats != nullptr) {
        ++stats->luSolves;
    }
}

Vector SparseLuFactorization::solve(const Vector& b, SimStats* stats) const {
    Vector x = b;
    solveInPlace(x, stats);
    return x;
}

Vector SparseLuFactorization::solveTransposed(const Vector& b,
                                              SimStats* stats) const {
    require(valid_, "SparseLuFactorization::solveTransposed without factor()");
    require(b.size() == n_,
            "SparseLuFactorization::solveTransposed: size mismatch");
    solveWork_.resize(n_);
    const int n = static_cast<int>(n_);
    for (int k = 0; k < n; ++k) {
        solveWork_[static_cast<std::size_t>(k)] =
            b[static_cast<std::size_t>(colOrder_[static_cast<std::size_t>(k)])];
    }
    for (int k = 0; k < n; ++k) {  // U^T (lower triangular) forward
        double sum = solveWork_[static_cast<std::size_t>(k)];
        for (int p = uColPtr_[static_cast<std::size_t>(k)];
             p < uColPtr_[static_cast<std::size_t>(k) + 1]; ++p) {
            sum -= uValues_[static_cast<std::size_t>(p)] *
                   solveWork_[static_cast<std::size_t>(
                       uRowIdx_[static_cast<std::size_t>(p)])];
        }
        solveWork_[static_cast<std::size_t>(k)] =
            sum / uDiag_[static_cast<std::size_t>(k)];
    }
    for (int k = n - 1; k >= 0; --k) {  // L^T (unit upper) backward
        double sum = solveWork_[static_cast<std::size_t>(k)];
        for (int q = lColPtr_[static_cast<std::size_t>(k)];
             q < lColPtr_[static_cast<std::size_t>(k) + 1]; ++q) {
            sum -= lValues_[static_cast<std::size_t>(q)] *
                   solveWork_[static_cast<std::size_t>(
                       lRowIdx_[static_cast<std::size_t>(q)])];
        }
        solveWork_[static_cast<std::size_t>(k)] = sum;
    }
    Vector x(n_);
    for (int k = 0; k < n; ++k) {
        x[static_cast<std::size_t>(rowPerm_[static_cast<std::size_t>(k)])] =
            solveWork_[static_cast<std::size_t>(k)];
    }
    if (stats != nullptr) {
        ++stats->luSolves;
    }
    return x;
}

double SparseLuFactorization::reciprocalPivotRatio() const noexcept {
    if (!valid_ || uDiag_.empty()) {
        return 0.0;
    }
    double minAbs = std::fabs(uDiag_[0]);
    double maxAbs = minAbs;
    for (const double d : uDiag_) {
        const double mag = std::fabs(d);
        minAbs = std::min(minAbs, mag);
        maxAbs = std::max(maxAbs, mag);
    }
    return maxAbs > 0.0 ? minAbs / maxAbs : 0.0;
}

}  // namespace shtrace
