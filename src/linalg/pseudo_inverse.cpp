#include "shtrace/linalg/pseudo_inverse.hpp"

#include <cmath>

#include "shtrace/linalg/lu.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

Matrix pseudoInverseWide(const Matrix& a) {
    require(a.rows() <= a.cols(),
            "pseudoInverseWide expects a wide matrix, got ", a.rows(), "x",
            a.cols());
    const Matrix at = a.transposed();
    const Matrix gram = a.multiply(at);  // rows x rows
    LuFactorization lu;
    if (!lu.factor(gram)) {
        throw NumericalError(
            "pseudoInverseWide: A A^T is singular (rank-deficient rows)");
    }
    // Solve gram * X = A column-block-wise: A^+ = A^T gram^{-1}.
    Matrix pinv(a.cols(), a.rows());
    for (std::size_t j = 0; j < a.rows(); ++j) {
        Vector e(a.rows());
        e[j] = 1.0;
        const Vector col = lu.solve(e);  // j-th column of gram^{-1}
        for (std::size_t i = 0; i < a.cols(); ++i) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.rows(); ++k) {
                acc += at(i, k) * col[k];
            }
            pinv(i, j) = acc;
        }
    }
    return pinv;
}

Vector moorePenroseStep(const Vector& hRow, double h, double gradTol) {
    const double gram = hRow.dot(hRow);
    if (!(gram > gradTol)) {
        throw NumericalError(
            message("moorePenroseStep: vanishing gradient (|H|^2=", gram,
                    "); the iterate is at a critical point of h"));
    }
    Vector step = hRow;
    step *= -h / gram;
    return step;
}

Vector tangentFromGradient2(double dhds, double dhdh, double gradTol) {
    const double norm2 = dhds * dhds + dhdh * dhdh;
    if (!(norm2 > gradTol)) {
        throw NumericalError(
            "tangentFromGradient2: zero gradient, tangent undefined");
    }
    const double inv = 1.0 / std::sqrt(norm2);
    return Vector{-dhdh * inv, dhds * inv};
}

}  // namespace shtrace
