#include "shtrace/circuit/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "shtrace/devices/mosfet_batch.hpp"

namespace shtrace {

// Default pattern discovery: evaluate at x = 0, t = 0 and let the
// Assembler's pattern pass record the stamp positions. Exact whenever the
// positions are state-independent (see the header).
void Device::stampPattern(Assembler& out) const {
    const Vector x(out.systemSize());
    eval(EvalContext{x, 0.0}, out);
}

Circuit::Circuit() = default;
Circuit::~Circuit() = default;
Circuit::Circuit(Circuit&&) noexcept = default;
Circuit& Circuit::operator=(Circuit&&) noexcept = default;

NodeId Circuit::node(const std::string& name) {
    if (name == "0" || name == "gnd") {
        return kGround;
    }
    const auto it = nodeIndex_.find(name);
    if (it != nodeIndex_.end()) {
        return NodeId{it->second};
    }
    require(!finalized_, "Circuit::node creating '", name,
            "' after finalize()");
    const int idx = static_cast<int>(nodeNames_.size());
    nodeIndex_.emplace(name, idx);
    nodeNames_.push_back(name);
    return NodeId{idx};
}

NodeId Circuit::findNode(const std::string& name) const {
    if (name == "0" || name == "gnd") {
        return kGround;
    }
    const auto it = nodeIndex_.find(name);
    require(it != nodeIndex_.end(), "Circuit: unknown node '", name, "'");
    return NodeId{it->second};
}

bool Circuit::hasNode(const std::string& name) const {
    return name == "0" || name == "gnd" || nodeIndex_.count(name) != 0;
}

const std::string& Circuit::nodeName(NodeId n) const {
    static const std::string kGroundName = "0";
    if (n.isGround()) {
        return kGroundName;
    }
    require(n.index >= 0 && n.index < nodeCount(), "Circuit::nodeName: bad id");
    return nodeNames_[static_cast<std::size_t>(n.index)];
}

void Circuit::finalize() {
    require(!finalized_, "Circuit::finalize called twice");
    require(!devices_.empty(), "Circuit::finalize on an empty circuit");
    BranchAllocator alloc(nodeCount());
    for (auto& dev : devices_) {
        dev->allocateBranches(alloc);
    }
    branchRows_ = alloc.next() - nodeCount();
    finalized_ = true;

    // Union sparsity pattern: one pattern-discovery pass over every device.
    // The pattern object is shared by every sparse Assembler / G / C / J of
    // this circuit, which is what makes their combine elementwise.
    Assembler discovery(systemSize());
    std::vector<std::pair<int, int>> positions;
    discovery.beginPatternPass(positions);
    for (const auto& dev : devices_) {
        dev->stampPattern(discovery);
    }
    pattern_ =
        std::make_shared<SparsePattern>(systemSize(), std::move(positions));

    // SoA batch plan: flatten every Mosfet's parameters and terminals into
    // contiguous arrays, in declaration order.
    batchPlan_ = std::make_unique<MosfetBatchPlan>();
    batchPlan_->slotOfDevice.assign(devices_.size(), -1);
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        const auto* m = dynamic_cast<const Mosfet*>(devices_[i].get());
        if (m == nullptr) {
            continue;
        }
        batchPlan_->slotOfDevice[i] =
            static_cast<int>(batchPlan_->devices.size());
        const MosfetParams& p = m->params();
        batchPlan_->sgn.push_back(p.type == MosfetType::Nmos ? 1.0 : -1.0);
        batchPlan_->vt0.push_back(p.vt0);
        batchPlan_->beta.push_back(p.beta());
        batchPlan_->lambda.push_back(p.lambda);
        batchPlan_->gamma.push_back(p.gamma);
        batchPlan_->phi.push_back(p.phi);
        batchPlan_->drain.push_back(m->drain().index);
        batchPlan_->gate.push_back(m->gate().index);
        batchPlan_->source.push_back(m->source().index);
        batchPlan_->bulk.push_back(m->bulk().index);
        batchPlan_->devices.push_back(m);
    }
}

const std::shared_ptr<const SparsePattern>& Circuit::sparsityPattern() const {
    require(finalized_, "Circuit::sparsityPattern before finalize()");
    return pattern_;
}

const MosfetBatchPlan& Circuit::batchPlan() const {
    require(finalized_, "Circuit::batchPlan before finalize()");
    return *batchPlan_;
}

std::size_t Circuit::systemSize() const {
    require(finalized_, "Circuit::systemSize before finalize()");
    return static_cast<std::size_t>(nodeCount() + branchRows_);
}

void Circuit::assemble(const Vector& x, double t, Assembler& out,
                       SimStats* stats) const {
    require(finalized_, "Circuit::assemble before finalize()");
    require(x.size() == systemSize(), "Circuit::assemble: x has size ",
            x.size(), ", expected ", systemSize());
    out.beginPass();
    const EvalContext ctx{x, t};
    for (const auto& dev : devices_) {
        dev->eval(ctx, out);
    }
    if (stats != nullptr) {
        ++stats->deviceEvaluations;
    }
}

void Circuit::assembleResidual(const Vector& x, double t, Assembler& out,
                               SimStats* stats) const {
    require(finalized_, "Circuit::assembleResidual before finalize()");
    require(x.size() == systemSize(), "Circuit::assembleResidual: x has size ",
            x.size(), ", expected ", systemSize());
    out.beginResidualPass();
    const EvalContext ctx{x, t};
    for (const auto& dev : devices_) {
        dev->evalResidual(ctx, out);
    }
    if (stats != nullptr) {
        ++stats->residualOnlyAssemblies;
    }
}

void Circuit::assembleBatch(const Vector& x, double t, Assembler& out,
                            MosfetBatchScratch& scratch,
                            SimStats* stats) const {
    require(finalized_, "Circuit::assembleBatch before finalize()");
    require(x.size() == systemSize(), "Circuit::assembleBatch: x has size ",
            x.size(), ", expected ", systemSize());
    evaluateMosfetBatch(*batchPlan_, x, scratch);
    out.beginPass();
    const EvalContext ctx{x, t};
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        const int slot = batchPlan_->slotOfDevice[i];
        if (slot >= 0) {
            batchPlan_->devices[static_cast<std::size_t>(slot)]->stampWithOp(
                ctx, out, scratch.op[static_cast<std::size_t>(slot)]);
        } else {
            devices_[i]->eval(ctx, out);
        }
    }
    if (stats != nullptr) {
        ++stats->deviceEvaluations;
        ++stats->batchAssemblies;
    }
}

void Circuit::assembleResidualBatch(const Vector& x, double t, Assembler& out,
                                    MosfetBatchScratch& scratch,
                                    SimStats* stats) const {
    require(finalized_, "Circuit::assembleResidualBatch before finalize()");
    require(x.size() == systemSize(),
            "Circuit::assembleResidualBatch: x has size ", x.size(),
            ", expected ", systemSize());
    evaluateMosfetBatch(*batchPlan_, x, scratch);
    out.beginResidualPass();
    const EvalContext ctx{x, t};
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        const int slot = batchPlan_->slotOfDevice[i];
        if (slot >= 0) {
            batchPlan_->devices[static_cast<std::size_t>(slot)]
                ->stampResidualWithOp(
                    ctx, out, scratch.op[static_cast<std::size_t>(slot)]);
        } else {
            devices_[i]->evalResidual(ctx, out);
        }
    }
    if (stats != nullptr) {
        ++stats->residualOnlyAssemblies;
        ++stats->batchAssemblies;
    }
}

void Circuit::addSkewDerivative(double t, SkewParam p, Vector& rhs) const {
    require(rhs.size() == systemSize(),
            "Circuit::addSkewDerivative: rhs size mismatch");
    for (const auto& dev : devices_) {
        dev->addSkewDerivative(t, p, rhs);
    }
}

void Circuit::addAcStimulus(Vector& rhs) const {
    require(rhs.size() == systemSize(),
            "Circuit::addAcStimulus: rhs size mismatch");
    for (const auto& dev : devices_) {
        dev->addAcStimulus(rhs);
    }
}

std::vector<double> Circuit::breakpoints(double t0, double t1) const {
    std::vector<double> pts;
    for (const auto& dev : devices_) {
        dev->breakpoints(t0, t1, pts);
    }
    std::sort(pts.begin(), pts.end());
    // Dedupe with a tolerance tied to the window width; coincident waveform
    // corners (e.g. clock and clk-bar edges) otherwise produce zero-length
    // steps.
    const double tol = 1e-15 * std::max(1.0, std::fabs(t1 - t0));
    std::vector<double> out;
    for (double p : pts) {
        if (out.empty() || p - out.back() > tol) {
            out.push_back(p);
        }
    }
    return out;
}

std::string Circuit::canonicalDescription() const {
    require(finalized_, "Circuit::canonicalDescription before finalize()");
    std::ostringstream os;
    os << "circuit nodes=" << nodeCount() << " branches=" << branchRows_
       << '\n';
    for (const auto& dev : devices_) {
        dev->describe(os);
        os << '\n';
    }
    return os.str();
}

Vector Circuit::selectorFor(NodeId n) const {
    require(finalized_, "Circuit::selectorFor before finalize()");
    require(!n.isGround(), "Circuit::selectorFor: ground has no row");
    Vector c(systemSize());
    c[static_cast<std::size_t>(n.index)] = 1.0;
    return c;
}

}  // namespace shtrace
