#include "shtrace/circuit/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace shtrace {

NodeId Circuit::node(const std::string& name) {
    if (name == "0" || name == "gnd") {
        return kGround;
    }
    const auto it = nodeIndex_.find(name);
    if (it != nodeIndex_.end()) {
        return NodeId{it->second};
    }
    require(!finalized_, "Circuit::node creating '", name,
            "' after finalize()");
    const int idx = static_cast<int>(nodeNames_.size());
    nodeIndex_.emplace(name, idx);
    nodeNames_.push_back(name);
    return NodeId{idx};
}

NodeId Circuit::findNode(const std::string& name) const {
    if (name == "0" || name == "gnd") {
        return kGround;
    }
    const auto it = nodeIndex_.find(name);
    require(it != nodeIndex_.end(), "Circuit: unknown node '", name, "'");
    return NodeId{it->second};
}

bool Circuit::hasNode(const std::string& name) const {
    return name == "0" || name == "gnd" || nodeIndex_.count(name) != 0;
}

const std::string& Circuit::nodeName(NodeId n) const {
    static const std::string kGroundName = "0";
    if (n.isGround()) {
        return kGroundName;
    }
    require(n.index >= 0 && n.index < nodeCount(), "Circuit::nodeName: bad id");
    return nodeNames_[static_cast<std::size_t>(n.index)];
}

void Circuit::finalize() {
    require(!finalized_, "Circuit::finalize called twice");
    require(!devices_.empty(), "Circuit::finalize on an empty circuit");
    BranchAllocator alloc(nodeCount());
    for (auto& dev : devices_) {
        dev->allocateBranches(alloc);
    }
    branchRows_ = alloc.next() - nodeCount();
    finalized_ = true;
}

std::size_t Circuit::systemSize() const {
    require(finalized_, "Circuit::systemSize before finalize()");
    return static_cast<std::size_t>(nodeCount() + branchRows_);
}

void Circuit::assemble(const Vector& x, double t, Assembler& out,
                       SimStats* stats) const {
    require(finalized_, "Circuit::assemble before finalize()");
    require(x.size() == systemSize(), "Circuit::assemble: x has size ",
            x.size(), ", expected ", systemSize());
    out.beginPass();
    const EvalContext ctx{x, t};
    for (const auto& dev : devices_) {
        dev->eval(ctx, out);
    }
    if (stats != nullptr) {
        ++stats->deviceEvaluations;
    }
}

void Circuit::assembleResidual(const Vector& x, double t, Assembler& out,
                               SimStats* stats) const {
    require(finalized_, "Circuit::assembleResidual before finalize()");
    require(x.size() == systemSize(), "Circuit::assembleResidual: x has size ",
            x.size(), ", expected ", systemSize());
    out.beginResidualPass();
    const EvalContext ctx{x, t};
    for (const auto& dev : devices_) {
        dev->evalResidual(ctx, out);
    }
    if (stats != nullptr) {
        ++stats->residualOnlyAssemblies;
    }
}

void Circuit::addSkewDerivative(double t, SkewParam p, Vector& rhs) const {
    require(rhs.size() == systemSize(),
            "Circuit::addSkewDerivative: rhs size mismatch");
    for (const auto& dev : devices_) {
        dev->addSkewDerivative(t, p, rhs);
    }
}

void Circuit::addAcStimulus(Vector& rhs) const {
    require(rhs.size() == systemSize(),
            "Circuit::addAcStimulus: rhs size mismatch");
    for (const auto& dev : devices_) {
        dev->addAcStimulus(rhs);
    }
}

std::vector<double> Circuit::breakpoints(double t0, double t1) const {
    std::vector<double> pts;
    for (const auto& dev : devices_) {
        dev->breakpoints(t0, t1, pts);
    }
    std::sort(pts.begin(), pts.end());
    // Dedupe with a tolerance tied to the window width; coincident waveform
    // corners (e.g. clock and clk-bar edges) otherwise produce zero-length
    // steps.
    const double tol = 1e-15 * std::max(1.0, std::fabs(t1 - t0));
    std::vector<double> out;
    for (double p : pts) {
        if (out.empty() || p - out.back() > tol) {
            out.push_back(p);
        }
    }
    return out;
}

std::string Circuit::canonicalDescription() const {
    require(finalized_, "Circuit::canonicalDescription before finalize()");
    std::ostringstream os;
    os << "circuit nodes=" << nodeCount() << " branches=" << branchRows_
       << '\n';
    for (const auto& dev : devices_) {
        dev->describe(os);
        os << '\n';
    }
    return os.str();
}

Vector Circuit::selectorFor(NodeId n) const {
    require(finalized_, "Circuit::selectorFor before finalize()");
    require(!n.isGround(), "Circuit::selectorFor: ground has no row");
    Vector c(systemSize());
    c[static_cast<std::size_t>(n.index)] = 1.0;
    return c;
}

}  // namespace shtrace
