#include "shtrace/circuit/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/diode.hpp"
#include "shtrace/devices/inductor.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/devices/vccs.hpp"
#include "shtrace/devices/vcvs.hpp"
#include "shtrace/util/units.hpp"
#include "shtrace/waveform/analog_sources.hpp"
#include "shtrace/waveform/pulse.hpp"
#include "shtrace/waveform/pwl.hpp"

namespace shtrace {

namespace {

std::string toUpper(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
    });
    return s;
}

/// Splits a line into tokens; '(' ')' '=' ',' become separators.
std::vector<std::string> tokenize(const std::string& line) {
    std::string padded;
    padded.reserve(line.size() + 8);
    for (char c : line) {
        if (c == '(' || c == ')' || c == '=' || c == ',') {
            padded += ' ';
            if (c == '=') {
                padded += '=';
                padded += ' ';
            }
        } else {
            padded += c;
        }
    }
    std::istringstream is(padded);
    std::vector<std::string> tokens;
    std::string tok;
    while (is >> tok) {
        tokens.push_back(tok);
    }
    return tokens;
}

/// key=value parameter list starting at tokens[pos] ("KEY", "=", "value").
std::map<std::string, double> parseParams(const std::vector<std::string>& t,
                                          std::size_t pos, int line) {
    std::map<std::string, double> params;
    while (pos < t.size()) {
        if (pos + 2 >= t.size() + 1 || pos + 2 > t.size() ||
            t[pos + 1] != "=") {
            throw ParseError(
                message("expected KEY=VALUE, got '", t[pos], "'"), line);
        }
        params[toUpper(t[pos])] = parseEngineeringOrThrow(t[pos + 2], line);
        pos += 3;
    }
    return params;
}

double getParam(const std::map<std::string, double>& p, const std::string& key,
                double fallback) {
    const auto it = p.find(key);
    return it == p.end() ? fallback : it->second;
}

class ParserState {
public:
    ParsedNetlist result;
    std::map<std::string, MosfetParams> models;

    void parseLine(const std::string& rawLine, int line) {
        std::string text = rawLine;
        const auto semi = text.find(';');
        if (semi != std::string::npos) {
            text.erase(semi);
        }
        const auto tokens = tokenize(text);
        if (tokens.empty()) {
            return;
        }
        const std::string first = toUpper(tokens[0]);
        if (first[0] == '*') {
            return;  // comment
        }
        if (first == ".END") {
            sawEnd_ = true;
            return;
        }
        if (sawEnd_) {
            throw ParseError("content after .end", line);
        }
        if (first == ".MODEL") {
            parseModel(tokens, line);
            return;
        }
        switch (first[0]) {
            case 'R': parseTwoTerminal(tokens, line, 'R'); break;
            case 'C': parseTwoTerminal(tokens, line, 'C'); break;
            case 'L': parseTwoTerminal(tokens, line, 'L'); break;
            case 'V': parseSource(tokens, line, /*voltage=*/true); break;
            case 'I': parseSource(tokens, line, /*voltage=*/false); break;
            case 'E': parseVcvs(tokens, line); break;
            case 'G': parseVccs(tokens, line); break;
            case 'D': parseDiode(tokens, line); break;
            case 'M': parseMosfet(tokens, line); break;
            default:
                throw ParseError(
                    message("unknown element '", tokens[0], "'"), line);
        }
    }

    void finish(int line) {
        if (result.circuit.deviceCount() == 0) {
            throw ParseError("netlist contains no devices", line);
        }
        result.circuit.finalize();
    }

private:
    void needTokens(const std::vector<std::string>& t, std::size_t n,
                    int line, const char* what) {
        if (t.size() < n) {
            throw ParseError(
                message(what, ": expected at least ", n, " tokens, got ",
                        t.size()),
                line);
        }
    }

    void parseTwoTerminal(const std::vector<std::string>& t, int line,
                          char kind) {
        needTokens(t, 4, line, "two-terminal element");
        Circuit& ckt = result.circuit;
        const NodeId a = ckt.node(t[1]);
        const NodeId b = ckt.node(t[2]);
        const double value = parseEngineeringOrThrow(t[3], line);
        switch (kind) {
            case 'R': ckt.add<Resistor>(t[0], a, b, value); break;
            case 'C': ckt.add<Capacitor>(t[0], a, b, value); break;
            case 'L': ckt.add<Inductor>(t[0], a, b, value); break;
            default: throw ParseError("internal: bad two-terminal kind", line);
        }
    }

    std::shared_ptr<const Waveform> parseWaveform(
        const std::vector<std::string>& t, std::size_t pos, int line,
        const std::string& sourceName) {
        const std::string kind = toUpper(t[pos]);
        auto numbers = [&](std::size_t from) {
            std::vector<double> vals;
            for (std::size_t i = from; i < t.size(); ++i) {
                if (toUpper(t[i]) == "INV") {
                    vals.push_back(-1.0);  // sentinel handled by CLOCK only
                } else {
                    vals.push_back(parseEngineeringOrThrow(t[i], line));
                }
            }
            return vals;
        };
        if (kind == "DC") {
            needTokens(t, pos + 2, line, "DC source");
            return std::make_shared<DcWaveform>(
                parseEngineeringOrThrow(t[pos + 1], line));
        }
        if (kind == "PULSE") {
            const auto v = numbers(pos + 1);
            if (v.size() != 6) {
                throw ParseError(
                    "PULSE needs (v0 v1 delay rise width fall)", line);
            }
            PulseWaveform::Spec s;
            s.v0 = v[0];
            s.v1 = v[1];
            s.delay = v[2];
            s.riseTime = v[3];
            s.width = v[4];
            s.fallTime = v[5];
            return std::make_shared<PulseWaveform>(s);
        }
        if (kind == "PWL") {
            const auto v = numbers(pos + 1);
            if (v.size() < 2 || v.size() % 2 != 0) {
                throw ParseError("PWL needs an even number of t/v values",
                                 line);
            }
            std::vector<PwlWaveform::Point> pts;
            for (std::size_t i = 0; i + 1 < v.size(); i += 2) {
                pts.push_back({v[i], v[i + 1]});
            }
            return std::make_shared<PwlWaveform>(std::move(pts));
        }
        if (kind == "CLOCK") {
            ClockWaveform::Spec s;
            bool inverted = false;
            std::vector<double> v;
            for (std::size_t i = pos + 1; i < t.size(); ++i) {
                if (toUpper(t[i]) == "INV") {
                    inverted = true;
                } else {
                    v.push_back(parseEngineeringOrThrow(t[i], line));
                }
            }
            if (v.size() < 6 || v.size() > 7) {
                throw ParseError(
                    "CLOCK needs (v0 v1 period delay rise fall [duty] [inv])",
                    line);
            }
            s.v0 = v[0];
            s.v1 = v[1];
            s.period = v[2];
            s.delay = v[3];
            s.riseTime = v[4];
            s.fallTime = v[5];
            if (v.size() == 7) {
                s.dutyCycle = v[6];
            }
            s.inverted = inverted;
            auto clock = std::make_shared<ClockWaveform>(s);
            result.clocks.emplace(toUpper(sourceName), clock);
            return clock;
        }
        if (kind == "SIN") {
            const auto v = numbers(pos + 1);
            if (v.size() < 3 || v.size() > 5) {
                throw ParseError(
                    "SIN needs (offset amplitude freq [delay] [damping])",
                    line);
            }
            SineWaveform::Spec s;
            s.offset = v[0];
            s.amplitude = v[1];
            s.frequency = v[2];
            if (v.size() > 3) {
                s.delay = v[3];
            }
            if (v.size() > 4) {
                s.damping = v[4];
            }
            return std::make_shared<SineWaveform>(s);
        }
        if (kind == "EXP") {
            const auto v = numbers(pos + 1);
            if (v.size() != 6) {
                throw ParseError("EXP needs (v1 v2 td1 tau1 td2 tau2)",
                                 line);
            }
            ExpWaveform::Spec s;
            s.v1 = v[0];
            s.v2 = v[1];
            s.riseDelay = v[2];
            s.riseTau = v[3];
            s.fallDelay = v[4];
            s.fallTau = v[5];
            return std::make_shared<ExpWaveform>(s);
        }
        if (kind == "DATAPULSE") {
            const auto v = numbers(pos + 1);
            if (v.size() != 4) {
                throw ParseError("DATAPULSE needs (v0 v1 tedge ttrans)", line);
            }
            DataPulse::Spec s;
            s.v0 = v[0];
            s.v1 = v[1];
            s.activeEdgeTime = v[2];
            s.transitionTime = v[3];
            auto pulse = std::make_shared<DataPulse>(s);
            result.dataPulses.emplace(toUpper(sourceName), pulse);
            return pulse;
        }
        // Bare value: "V1 a 0 2.5".
        if (pos + 1 == t.size()) {
            return std::make_shared<DcWaveform>(
                parseEngineeringOrThrow(t[pos], line));
        }
        throw ParseError(message("unknown waveform '", t[pos], "'"), line);
    }

    void parseSource(const std::vector<std::string>& t, int line,
                     bool voltage) {
        needTokens(t, 4, line, "source");
        Circuit& ckt = result.circuit;
        const NodeId pos = ckt.node(t[1]);
        const NodeId neg = ckt.node(t[2]);
        auto wave = parseWaveform(t, 3, line, t[0]);
        if (voltage) {
            ckt.add<VoltageSource>(t[0], pos, neg, std::move(wave));
        } else {
            ckt.add<CurrentSource>(t[0], pos, neg, std::move(wave));
        }
    }

    void parseVcvs(const std::vector<std::string>& t, int line) {
        needTokens(t, 6, line, "VCVS");
        Circuit& ckt = result.circuit;
        ckt.add<Vcvs>(t[0], ckt.node(t[1]), ckt.node(t[2]), ckt.node(t[3]),
                      ckt.node(t[4]), parseEngineeringOrThrow(t[5], line));
    }

    void parseVccs(const std::vector<std::string>& t, int line) {
        needTokens(t, 6, line, "VCCS");
        Circuit& ckt = result.circuit;
        ckt.add<Vccs>(t[0], ckt.node(t[1]), ckt.node(t[2]), ckt.node(t[3]),
                      ckt.node(t[4]), parseEngineeringOrThrow(t[5], line));
    }

    void parseDiode(const std::vector<std::string>& t, int line) {
        needTokens(t, 3, line, "diode");
        const auto params = parseParams(t, 3, line);
        DiodeParams dp;
        dp.is = getParam(params, "IS", dp.is);
        dp.n = getParam(params, "N", dp.n);
        dp.cj0 = getParam(params, "CJ0", dp.cj0);
        dp.vj = getParam(params, "VJ", dp.vj);
        dp.m = getParam(params, "M", dp.m);
        dp.tt = getParam(params, "TT", dp.tt);
        Circuit& ckt = result.circuit;
        ckt.add<Diode>(t[0], ckt.node(t[1]), ckt.node(t[2]), dp);
    }

    static void applyMosParams(MosfetParams& mp,
                               const std::map<std::string, double>& params) {
        mp.vt0 = getParam(params, "VT0", mp.vt0);
        mp.kp = getParam(params, "KP", mp.kp);
        mp.lambda = getParam(params, "LAMBDA", mp.lambda);
        mp.gamma = getParam(params, "GAMMA", mp.gamma);
        mp.phi = getParam(params, "PHI", mp.phi);
        mp.w = getParam(params, "W", mp.w);
        mp.l = getParam(params, "L", mp.l);
        mp.cgs = getParam(params, "CGS", mp.cgs);
        mp.cgd = getParam(params, "CGD", mp.cgd);
        mp.cgb = getParam(params, "CGB", mp.cgb);
        mp.cdb = getParam(params, "CDB", mp.cdb);
        mp.csb = getParam(params, "CSB", mp.csb);
    }

    void parseModel(const std::vector<std::string>& t, int line) {
        needTokens(t, 3, line, ".model");
        const std::string modelName = toUpper(t[1]);
        const std::string type = toUpper(t[2]);
        MosfetParams mp;
        if (type == "NMOS") {
            mp.type = MosfetType::Nmos;
        } else if (type == "PMOS") {
            mp.type = MosfetType::Pmos;
        } else {
            throw ParseError(
                message("unsupported model type '", t[2], "'"), line);
        }
        applyMosParams(mp, parseParams(t, 3, line));
        models[modelName] = mp;
    }

    void parseMosfet(const std::vector<std::string>& t, int line) {
        needTokens(t, 6, line, "MOSFET");
        const std::string modelName = toUpper(t[5]);
        MosfetParams mp;
        if (modelName == "NMOS") {
            mp.type = MosfetType::Nmos;
        } else if (modelName == "PMOS") {
            mp.type = MosfetType::Pmos;
        } else {
            const auto it = models.find(modelName);
            if (it == models.end()) {
                throw ParseError(
                    message("unknown MOSFET model '", t[5], "'"), line);
            }
            mp = it->second;
        }
        applyMosParams(mp, parseParams(t, 6, line));
        Circuit& ckt = result.circuit;
        ckt.add<Mosfet>(t[0], ckt.node(t[1]), ckt.node(t[2]), ckt.node(t[3]),
                        ckt.node(t[4]), mp);
    }

    bool sawEnd_ = false;
};

}  // namespace

std::shared_ptr<DataPulse> ParsedNetlist::theDataPulse() const {
    require(dataPulses.size() == 1,
            "ParsedNetlist::theDataPulse: netlist has ", dataPulses.size(),
            " DATAPULSE sources, expected exactly 1");
    return dataPulses.begin()->second;
}

std::shared_ptr<ClockWaveform> ParsedNetlist::theClock() const {
    std::shared_ptr<ClockWaveform> found;
    for (const auto& [name, clock] : clocks) {
        if (!clock->spec().inverted) {
            require(found == nullptr,
                    "ParsedNetlist::theClock: multiple non-inverted clocks");
            found = clock;
        }
    }
    require(found != nullptr,
            "ParsedNetlist::theClock: no non-inverted CLOCK source");
    return found;
}

ParsedNetlist parseNetlist(std::istream& in) {
    ParserState state;
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        state.parseLine(line, lineNo);
    }
    state.finish(lineNo);
    return std::move(state.result);
}

ParsedNetlist parseNetlistString(const std::string& text) {
    std::istringstream is(text);
    return parseNetlist(is);
}

ParsedNetlist parseNetlistFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error(message("cannot open netlist file '", path, "'"));
    }
    return parseNetlist(in);
}

}  // namespace shtrace
