#include "shtrace/sta/timing_graph.hpp"

#include <algorithm>
#include <deque>

#include "shtrace/util/error.hpp"

namespace shtrace::sta {

int TimingGraph::indexOf(const std::string& net) const {
    const auto it = netIndex.find(net);
    if (it == netIndex.end()) {
        throw InvalidArgumentError(
            message("TimingGraph: unknown net '", net, "'"));
    }
    return it->second;
}

TimingGraph buildTimingGraph(const Design& design) {
    TimingGraph graph;

    const auto intern = [&graph](const std::string& net) {
        const auto [it, fresh] =
            graph.netIndex.emplace(net, graph.netCount());
        if (fresh) {
            graph.netNames.push_back(net);
            graph.kinds.push_back(NetKind::GateOutput);  // until driven
            graph.fanins.emplace_back();
            graph.fanouts.emplace_back();
            graph.driverGate.push_back(-1);
            graph.driverRegister.push_back(-1);
        }
        return it->second;
    };

    // Intern nets in statement order so indices are deterministic, then
    // record each net's driver kind.
    std::vector<bool> driven;
    const auto markDriven = [&](int net) {
        if (static_cast<std::size_t>(net) >= driven.size()) {
            driven.resize(net + 1, false);
        }
        driven[net] = true;
    };
    for (const PrimaryInput& input : design.inputs) {
        const int net = intern(input.net);
        graph.kinds[net] = NetKind::PrimaryInput;
        markDriven(net);
    }
    for (std::size_t r = 0; r < design.registers.size(); ++r) {
        const int q = intern(design.registers[r].q);
        graph.kinds[q] = NetKind::RegisterOutput;
        graph.driverRegister[q] = static_cast<int>(r);
        markDriven(q);
        intern(design.registers[r].d);
    }
    for (std::size_t g = 0; g < design.gates.size(); ++g) {
        const Gate& gate = design.gates[g];
        const int out = intern(gate.output);
        graph.driverGate[out] = static_cast<int>(g);
        markDriven(out);
        for (const GateArc& arc : gate.arcs) {
            const int from = intern(arc.from);
            graph.fanins[out].push_back({from, arc.delay});
            graph.fanouts[from].push_back({out, arc.delay});
        }
    }
    for (const PrimaryOutput& output : design.outputs) {
        intern(output.net);
    }
    driven.resize(graph.netCount(), false);

    for (int net = 0; net < graph.netCount(); ++net) {
        if (!driven[net]) {
            throw Error(message("timing graph: net '", graph.netNames[net],
                                "' is read but never driven (no input, "
                                "gate output, or register q)"));
        }
    }

    // ASAP levelization (Kahn over fanin arcs). Sources -- inputs and
    // register Q nets -- are level 0; a gate output is one past its
    // deepest fanin. Whatever never levels is on a combinational cycle.
    graph.levels.assign(graph.netCount(), -1);
    std::vector<int> pending(graph.netCount(), 0);
    std::deque<int> ready;
    for (int net = 0; net < graph.netCount(); ++net) {
        pending[net] = static_cast<int>(graph.fanins[net].size());
        if (pending[net] == 0) {
            graph.levels[net] = 0;
            ready.push_back(net);
        }
    }
    int leveled = 0;
    while (!ready.empty()) {
        const int net = ready.front();
        ready.pop_front();
        ++leveled;
        for (const FanoutArc& arc : graph.fanouts[net]) {
            graph.levels[arc.to] =
                std::max(graph.levels[arc.to], graph.levels[net] + 1);
            if (--pending[arc.to] == 0) {
                ready.push_back(arc.to);
            }
        }
    }
    if (leveled != graph.netCount()) {
        for (int net = 0; net < graph.netCount(); ++net) {
            if (graph.levels[net] < 0) {
                throw Error(message(
                    "timing graph: combinational cycle through net '",
                    graph.netNames[net], "'"));
            }
        }
    }

    const int depth =
        1 + *std::max_element(graph.levels.begin(), graph.levels.end());
    graph.byLevel.resize(depth);
    for (int net = 0; net < graph.netCount(); ++net) {
        graph.byLevel[graph.levels[net]].push_back(net);
    }
    return graph;
}

}  // namespace shtrace::sta
