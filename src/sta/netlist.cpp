#include "shtrace/sta/netlist.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "shtrace/util/error.hpp"
#include "shtrace/util/units.hpp"

namespace shtrace::sta {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream in(line.substr(0, line.find('#')));
    std::string token;
    while (in >> token) {
        tokens.push_back(token);
    }
    return tokens;
}

[[noreturn]] void fail(int line, const std::string& what) {
    throw ParseError(what, line);
}

/// Statement-level cursor over one line's token list.
class Cursor {
public:
    Cursor(const std::vector<std::string>& tokens, int line)
        : tokens_(tokens), line_(line) {}

    bool done() const { return next_ >= tokens_.size(); }
    bool peekIs(const std::string& word) const {
        return !done() && tokens_[next_] == word;
    }
    const std::string& word(const char* what) {
        if (done()) {
            fail(line_, std::string("expected ") + what);
        }
        return tokens_[next_++];
    }
    double time(const char* what) {
        return parseEngineeringOrThrow(word(what), line_);
    }
    void keyword(const char* word) {
        const std::string& got = this->word(word);
        if (got != word) {
            fail(line_, std::string("expected '") + word + "', got '" + got +
                            "'");
        }
    }
    void end() const {
        if (!done()) {
            fail(line_, "trailing token '" + tokens_[next_] + "'");
        }
    }

private:
    const std::vector<std::string>& tokens_;
    std::size_t next_ = 0;
    int line_;
};

/// Tracks which statement drives each net so a second driver is reported
/// at ITS line, naming the first.
class DriverMap {
public:
    void claim(const std::string& net, const std::string& by, int line) {
        const auto [it, fresh] = drivers_.emplace(net, by);
        if (!fresh) {
            fail(line, "net '" + net + "' already driven by " + it->second);
        }
    }

private:
    std::unordered_map<std::string, std::string> drivers_;
};

}  // namespace

Design parseDesign(const std::string& text) {
    Design design;
    DriverMap drivers;
    std::unordered_set<std::string> names;  // gate/register instance names
    std::unordered_set<std::string> sinkNets;  // output nets (one use each)
    bool sawDesign = false;
    bool sawClock = false;

    const auto claimName = [&](const std::string& name, int line) {
        if (!names.insert(name).second) {
            fail(line, "duplicate instance name '" + name + "'");
        }
    };

    std::istringstream in(text);
    std::string lineText;
    int lineNo = 0;
    while (std::getline(in, lineText)) {
        ++lineNo;
        const std::vector<std::string> tokens = tokenize(lineText);
        if (tokens.empty()) {
            continue;
        }
        Cursor cur(tokens, lineNo);
        const std::string& stmt = cur.word("statement");
        if (stmt == "design") {
            if (sawDesign) {
                fail(lineNo, "duplicate design statement");
            }
            sawDesign = true;
            design.name = cur.word("design name");
            cur.end();
        } else if (stmt == "clock") {
            if (sawClock) {
                fail(lineNo, "duplicate clock statement (one clock domain)");
            }
            sawClock = true;
            design.clockName = cur.word("clock name");
            cur.keyword("period");
            design.clockPeriod = cur.time("clock period");
            if (design.clockPeriod <= 0.0) {
                fail(lineNo, "clock period must be positive");
            }
            cur.end();
        } else if (stmt == "input") {
            PrimaryInput input;
            input.line = lineNo;
            input.net = cur.word("input net");
            if (cur.peekIs("arrival")) {
                cur.keyword("arrival");
                input.arrivalMin = cur.time("arrival min");
                input.arrivalMax = cur.time("arrival max");
                if (input.arrivalMin > input.arrivalMax) {
                    fail(lineNo, "arrival min exceeds arrival max");
                }
            }
            cur.end();
            drivers.claim(input.net, "input (line " + std::to_string(lineNo) +
                                         ")",
                          lineNo);
            design.inputs.push_back(std::move(input));
        } else if (stmt == "output") {
            PrimaryOutput output;
            output.line = lineNo;
            output.net = cur.word("output net");
            if (cur.peekIs("require")) {
                cur.keyword("require");
                output.requiredMax = cur.time("required time");
                output.hasRequirement = true;
            }
            cur.end();
            if (!sinkNets.insert(output.net).second) {
                fail(lineNo, "duplicate output statement for net '" +
                                 output.net + "'");
            }
            design.outputs.push_back(std::move(output));
        } else if (stmt == "gate") {
            Gate gate;
            gate.line = lineNo;
            gate.name = cur.word("gate name");
            claimName(gate.name, lineNo);
            gate.output = cur.word("gate output net");
            while (!cur.done()) {
                cur.keyword("from");
                GateArc arc;
                arc.from = cur.word("arc input net");
                arc.delay = cur.time("arc delay");
                if (arc.delay < 0.0) {
                    fail(lineNo, "negative arc delay");
                }
                if (arc.from == gate.output) {
                    fail(lineNo, "gate '" + gate.name +
                                     "' feeds its own output net");
                }
                gate.arcs.push_back(std::move(arc));
            }
            if (gate.arcs.empty()) {
                fail(lineNo, "gate '" + gate.name + "' has no 'from' arcs");
            }
            drivers.claim(gate.output,
                          "gate '" + gate.name + "' (line " +
                              std::to_string(lineNo) + ")",
                          lineNo);
            design.gates.push_back(std::move(gate));
        } else if (stmt == "reg") {
            Register reg;
            reg.line = lineNo;
            reg.name = cur.word("register name");
            claimName(reg.name, lineNo);
            cur.keyword("cell");
            reg.cell = cur.word("cell name");
            cur.keyword("d");
            reg.d = cur.word("d net");
            cur.keyword("q");
            reg.q = cur.word("q net");
            if (cur.peekIs("skew")) {
                cur.keyword("skew");
                reg.skew = cur.time("clock skew");
            }
            cur.end();
            if (reg.d == reg.q) {
                fail(lineNo, "register '" + reg.name +
                                 "' ties d and q to the same net");
            }
            drivers.claim(reg.q,
                          "register '" + reg.name + "' (line " +
                              std::to_string(lineNo) + ")",
                          lineNo);
            design.registers.push_back(std::move(reg));
        } else {
            fail(lineNo, "unknown statement '" + stmt + "'");
        }
    }

    if (!sawDesign) {
        fail(lineNo, "missing design statement");
    }
    if (!design.registers.empty() && !sawClock) {
        fail(lineNo, "design has registers but no clock statement");
    }
    return design;
}

Design loadDesign(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error(message("loadDesign: cannot open '", path, "'"));
    }
    std::ostringstream body;
    body << in.rdbuf();
    try {
        return parseDesign(body.str());
    } catch (const ParseError& e) {
        throw ParseError(message("in '", path, "': ", e.what()), e.line());
    }
}

}  // namespace shtrace::sta
