#include "shtrace/sta/engine.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "shtrace/chz/characterize.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace::sta {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// In-process coalescing slot: the first register request for a cell runs
/// the characterization (which itself consults the persistent store);
/// concurrent requests for the same cell wait on the once_flag instead of
/// paying a duplicate fresh trace.
struct CellSlot {
    const StaCell* cell = nullptr;
    std::once_flag once;
    CharacterizeResult leader;
};

/// Builds the endpoint-facing view from a characterization result.
/// Throws InvalidArgumentError when the contour degenerates (ShiaContour
/// constructor); the caller maps that to a failureReason.
CharacterizedStaCell makeCharacterizedCell(const std::string& name,
                                           const CharacterizeResult& result) {
    CharacterizedStaCell cell;
    cell.name = name;
    cell.traced = result.contour.points;
    cell.contour = ShiaContour::fromTrace(result.contour);
    cell.knee = cell.contour->kneePoint();
    cell.clockToQ = result.characteristicClockToQ;
    cell.degradedClockToQ = result.degradedClockToQ;
    return cell;
}

/// The propagation + check core both public overloads share. `cells` must
/// cover every register's cell name with a usable contour.
void runTimingCore(const Design& design,
                   const std::map<std::string, CharacterizedStaCell>& cells,
                   const RunConfig& config, StaReport* report) {
    TimingGraph graph;
    try {
        graph = buildTimingGraph(design);
    } catch (const Error& e) {
        report->failureReason = e.what();
        return;
    }
    for (const Register& reg : design.registers) {
        const auto it = cells.find(reg.cell);
        if (it == cells.end() || !it->second.contour.has_value()) {
            report->failureReason = "register '" + reg.name +
                                    "': cell '" + reg.cell +
                                    "' is not characterized";
            return;
        }
    }

    const int netCount = graph.netCount();
    std::vector<double> atMin(netCount, 0.0);
    std::vector<double> atMax(netCount, 0.0);

    // --- forward sweep: earliest/latest arrival per net -------------------
    // Levels run in sequence; nets within a level in parallel. Each net
    // reduces over its own fanin arcs in fixed arc order and writes only
    // its own slot, so results are bit-identical for any thread count.
    {
        SHTRACE_SPAN("sta.arrival_sweep");
        for (const std::vector<int>& level : graph.byLevel) {
            // One fine span per level: the per-level fan-out width is the
            // thing a slow-sweep investigation needs to see.
            SHTRACE_FINE_SPAN("sta.arrival_level");
            parallelRun(
                level.size(),
                [&](std::size_t job, std::size_t /*worker*/) {
                    const int net = level[job];
                    switch (graph.kinds[net]) {
                        case NetKind::PrimaryInput: {
                            // Interned in statement order; find the input
                            // record by name (inputs are few).
                            for (const PrimaryInput& input : design.inputs) {
                                if (input.net == graph.netNames[net]) {
                                    atMin[net] = input.arrivalMin;
                                    atMax[net] = input.arrivalMax;
                                    break;
                                }
                            }
                            break;
                        }
                        case NetKind::RegisterOutput: {
                            const Register& reg =
                                design.registers[graph.driverRegister[net]];
                            const CharacterizedStaCell& cell =
                                cells.at(reg.cell);
                            // Earliest launch: nominal clock-to-Q. Latest
                            // launch: a register operating ON the contour
                            // runs at the degraded clock-to-Q by
                            // construction, so the late arrival carries it.
                            atMin[net] = reg.skew + cell.clockToQ;
                            atMax[net] = reg.skew + cell.degradedClockToQ;
                            break;
                        }
                        case NetKind::GateOutput: {
                            double lo = kInf;
                            double hi = -kInf;
                            for (const FaninArc& arc : graph.fanins[net]) {
                                lo = std::min(lo,
                                              atMin[arc.from] + arc.delay);
                                hi = std::max(hi,
                                              atMax[arc.from] + arc.delay);
                            }
                            atMin[net] = lo;
                            atMax[net] = hi;
                            break;
                        }
                    }
                },
                config.parallel);
        }
    }

    // --- endpoint checks --------------------------------------------------
    report->endpoints.reserve(design.registers.size());
    for (const Register& reg : design.registers) {
        const CharacterizedStaCell& cell = cells.at(reg.cell);
        const int d = graph.indexOf(reg.d);

        EndpointCheck check;
        check.reg = reg.name;
        check.cell = reg.cell;
        check.dNet = reg.d;
        // Capture edge at period + skew; data must settle availSetup
        // before it and the next-cycle datum holds off until availHold
        // after it (same-edge hold: the new datum launches at t = 0).
        check.availSetup = design.clockPeriod + reg.skew - atMax[d];
        check.availHold = atMin[d] - reg.skew;

        check.kneeSetup = cell.knee.setup;
        check.kneeHold = cell.knee.hold;
        check.classicalSetupSlack = check.availSetup - cell.knee.setup;
        check.classicalHoldSlack = check.availHold - cell.knee.hold;
        check.classicalSetupOk = check.classicalSetupSlack >= 0.0;
        check.classicalHoldOk = check.classicalHoldSlack >= 0.0;

        const ShiaContour& contour = *cell.contour;
        check.shiaOk = contour.admits(check.availSetup, check.availHold);
        if (const auto slack =
                contour.holdSlack(check.availSetup, check.availHold)) {
            check.shiaFeasible = true;
            check.shiaHoldSlack = *slack;
        }
        check.recovered = !check.classicalHoldOk && check.shiaOk;

        report->classicalSetupViolations += !check.classicalSetupOk;
        report->classicalHoldViolations += !check.classicalHoldOk;
        report->shiaViolations += !check.shiaOk;
        report->recoveredEndpoints += check.recovered;
        report->worstSetupSlack =
            std::min(report->worstSetupSlack, check.classicalSetupSlack);
        report->classicalWorstHoldSlack =
            std::min(report->classicalWorstHoldSlack,
                     check.classicalHoldSlack);
        if (check.shiaFeasible) {
            report->shiaWorstHoldSlack =
                std::min(report->shiaWorstHoldSlack, check.shiaHoldSlack);
        } else {
            // Infeasible setup: the contour excludes the budget outright.
            report->shiaWorstHoldSlack = -kInf;
        }
        report->endpoints.push_back(std::move(check));
    }
    obs::addCount(obs::Count::StaEndpointsChecked,
                  report->endpoints.size());
    obs::addCount(obs::Count::StaEndpointsRecovered,
                  static_cast<std::uint64_t>(report->recoveredEndpoints));

    // --- backward sweep: required times from classical constraints -------
    std::vector<double> requiredMax(netCount, kInf);
    std::vector<double> requiredMin(netCount, -kInf);
    for (const Register& reg : design.registers) {
        const CharacterizedStaCell& cell = cells.at(reg.cell);
        const int d = graph.indexOf(reg.d);
        requiredMax[d] = std::min(
            requiredMax[d],
            design.clockPeriod + reg.skew - cell.knee.setup);
        requiredMin[d] =
            std::max(requiredMin[d], reg.skew + cell.knee.hold);
    }
    for (const PrimaryOutput& output : design.outputs) {
        const int net = graph.indexOf(output.net);
        const double required = output.hasRequirement ? output.requiredMax
                                                      : design.clockPeriod;
        requiredMax[net] = std::min(requiredMax[net], required);
    }
    {
        SHTRACE_SPAN("sta.required_sweep");
        for (auto levelIt = graph.byLevel.rbegin();
             levelIt != graph.byLevel.rend(); ++levelIt) {
            const std::vector<int>& level = *levelIt;
            SHTRACE_FINE_SPAN("sta.required_level");
            parallelRun(
                level.size(),
                [&](std::size_t job, std::size_t /*worker*/) {
                    const int net = level[job];
                    // Fanout targets sit at strictly higher levels, so
                    // their required times are final by now.
                    for (const FanoutArc& arc : graph.fanouts[net]) {
                        requiredMax[net] =
                            std::min(requiredMax[net],
                                     requiredMax[arc.to] - arc.delay);
                        requiredMin[net] =
                            std::max(requiredMin[net],
                                     requiredMin[arc.to] - arc.delay);
                    }
                },
                config.parallel);
        }
    }

    report->nets.reserve(netCount);
    for (int net = 0; net < netCount; ++net) {
        NetTiming timing;
        timing.net = graph.netNames[net];
        timing.level = graph.levels[net];
        timing.atMin = atMin[net];
        timing.atMax = atMax[net];
        timing.requiredMax = requiredMax[net];
        timing.requiredMin = requiredMin[net];
        timing.setupSlack = requiredMax[net] - atMax[net];
        timing.holdSlack = atMin[net] - requiredMin[net];
        report->nets.push_back(std::move(timing));
    }
    report->success = true;
}

}  // namespace

StaReport analyzeDesign(const Design& design,
                        const std::vector<StaCell>& library,
                        const RunConfig& config) {
    const obs::ScopedRequestContext requestScope(requestContextFor(config));
    obs::RunObservation observation(config.metricsPath,
                                    config.spanTracePath);
    StaReport report;
    report.design = design.name;
    report.clockPeriod = design.clockPeriod;
    ScopedTimer timer(&report.stats);

    // Resolve each distinct referenced cell to its library entry.
    std::map<std::string, CellSlot> slots;
    for (const Register& reg : design.registers) {
        if (slots.count(reg.cell) != 0) {
            continue;
        }
        const auto it =
            std::find_if(library.begin(), library.end(),
                         [&](const StaCell& c) { return c.name == reg.cell; });
        if (it == library.end()) {
            report.failureReason = "register '" + reg.name +
                                   "': unknown cell '" + reg.cell + "'";
            observation.finish(report.stats);
            return report;
        }
        slots[reg.cell].cell = &*it;
    }

    // One characterization request per register. The leader for each cell
    // computes (or store-loads); followers wait, then issue their own
    // request -- a guaranteed store hit once the leader published -- so
    // the store sees the design's true fan-out. Without a readable store
    // the followers reuse the leader's result at zero cost.
    const bool followersRequest =
        !config.cacheDir.empty() && config.cachePolicy != CachePolicy::Refresh;
    RunContext ctx(config, design.registers.size());
    std::vector<const CharacterizeResult*> leaderOf(design.registers.size());
    std::vector<CharacterizeResult> followerResults(design.registers.size());
    {
        SHTRACE_SPAN("sta.characterize_cells");
        parallelRun(
            design.registers.size(),
            [&](std::size_t job, std::size_t /*worker*/) {
                const auto requestStart = std::chrono::steady_clock::now();
                CellSlot& slot = slots.at(design.registers[job].cell);
                bool isLeader = false;
                std::call_once(slot.once, [&] {
                    isLeader = true;
                    const RunConfig cellConfig =
                        staCellConfig(config, *slot.cell);
                    try {
                        slot.leader = characterizeInterdependent(
                            slot.cell->build(), cellConfig);
                    } catch (const std::exception& e) {
                        slot.leader.success = false;
                        slot.leader.failureReason = e.what();
                    }
                });
                if (isLeader) {
                    ctx.jobStats(job) = slot.leader.stats;
                    leaderOf[job] = &slot.leader;
                } else if (followersRequest && slot.leader.success) {
                    const RunConfig cellConfig =
                        staCellConfig(config, *slot.cell);
                    try {
                        followerResults[job] = characterizeInterdependent(
                            slot.cell->build(), cellConfig);
                    } catch (const std::exception& e) {
                        followerResults[job].success = false;
                        followerResults[job].failureReason = e.what();
                    }
                    ctx.jobStats(job) = followerResults[job].stats;
                    leaderOf[job] = &followerResults[job];
                } else {
                    // Coalesced reuse: the follower's request is satisfied
                    // by the in-process leader at zero additional cost.
                    leaderOf[job] = &slot.leader;
                }
                obs::observe(
                    obs::Hist::StaRegisterCharacterizeMilliseconds,
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - requestStart)
                        .count());
            },
            config.parallel, config.onJobDone);
    }
    report.stats.merge(ctx.mergedStats());

    for (const auto& [name, slot] : slots) {
        const CharacterizeResult& result = slot.leader;
        if (!result.success) {
            report.failureReason = "characterization of cell '" + name +
                                   "' failed: " + result.failureReason;
            observation.finish(report.stats);
            return report;
        }
        try {
            report.cells.emplace(name,
                                 makeCharacterizedCell(name, result));
        } catch (const Error& e) {
            report.failureReason = "cell '" + name +
                                   "': unusable contour: " + e.what();
            observation.finish(report.stats);
            return report;
        }
    }
    // Per-register requests that recomputed independently (disjoint store
    // race) would still agree bit-exactly; only failures matter here.
    for (std::size_t job = 0; job < design.registers.size(); ++job) {
        if (leaderOf[job] != nullptr && !leaderOf[job]->success) {
            report.failureReason =
                "characterization request for register '" +
                design.registers[job].name +
                "' failed: " + leaderOf[job]->failureReason;
            observation.finish(report.stats);
            return report;
        }
    }

    runTimingCore(design, report.cells, config, &report);
    observation.finish(report.stats);
    return report;
}

StaReport analyzeDesign(
    const Design& design,
    const std::map<std::string, CharacterizedStaCell>& cells,
    const RunConfig& config) {
    StaReport report;
    report.design = design.name;
    report.clockPeriod = design.clockPeriod;
    report.cells = cells;
    ScopedTimer timer(&report.stats);
    runTimingCore(design, report.cells, config, &report);
    return report;
}

}  // namespace shtrace::sta
