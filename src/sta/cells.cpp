#include "shtrace/sta/cells.hpp"

#include "shtrace/cells/c2mos.hpp"
#include "shtrace/cells/register_chain.hpp"
#include "shtrace/cells/tspc.hpp"

namespace shtrace::sta {

std::vector<StaCell> builtinStaCells() {
    std::vector<StaCell> cells;

    // Windows and criteria mirror bench/bench_common.hpp so STA-driven
    // characterizations share store entries with the figure benches.
    {
        StaCell tspc;
        tspc.name = "tspc";
        tspc.build = [] { return buildTspcRegister(); };
        tspc.criterion = CriterionOptions{};  // 50%, 10% degradation
        tspc.window = SkewBounds{120e-12, 560e-12, 60e-12, 460e-12};
        cells.push_back(std::move(tspc));
    }
    {
        StaCell c2mos;
        c2mos.name = "c2mos";
        c2mos.build = [] { return buildC2mosRegister(); };
        c2mos.criterion.transitionFraction = 0.9;  // Fig. 11: 90%
        c2mos.window = SkewBounds{250e-12, 800e-12, 100e-12, 600e-12};
        cells.push_back(std::move(c2mos));
    }
    {
        StaCell chain;
        chain.name = "tspc_x4";
        chain.build = [] {
            RegisterChainOptions options;
            options.bits = 4;
            return buildTspcRegisterChain(options);
        };
        chain.criterion = CriterionOptions{};
        chain.window = SkewBounds{120e-12, 560e-12, 60e-12, 460e-12};
        cells.push_back(std::move(chain));
    }
    return cells;
}

RunConfig staCellConfig(const RunConfig& base, const StaCell& cell) {
    RunConfig config = base;
    config.criterion = cell.criterion;
    config.tracer.bounds = cell.window;
    // Batch-only knobs: the engine owns progress reporting and the
    // observation scope; a per-cell request must not re-enter either.
    config.onJobDone = nullptr;
    config.metricsPath.clear();
    config.spanTracePath.clear();
    if (config.storeLabel.empty()) {
        config.storeLabel = "sta:" + cell.name;
    }
    return config;
}

}  // namespace shtrace::sta
