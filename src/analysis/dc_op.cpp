#include "shtrace/analysis/dc_op.hpp"

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/devices/mosfet_batch.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

/// Per-run solver state the gmin stages share: the backend-bound assembler
/// and workspace, the LinearSolver, and the batch scratch. Sharing keeps
/// the continuation ladder allocation-free after the first stage (and, on
/// the sparse backend, lets later stages reuse the symbolic factorization).
struct DcScratch {
    Assembler asmb;
    NewtonWorkspace ws;
    std::unique_ptr<LinearSolver> solver;
    MosfetBatchScratch batch;

    DcScratch(const Circuit& circuit, LinalgBackend backend)
        : asmb(circuit.systemSize(), backend == LinalgBackend::Sparse
                                         ? circuit.sparsityPattern()
                                         : nullptr),
          solver(makeLinearSolver(backend)) {
        ws.bind(circuit.systemSize(), backend == LinalgBackend::Sparse
                                          ? circuit.sparsityPattern()
                                          : nullptr);
    }
};

/// One Newton solve of f(x) + gmin*v = 0 at fixed gmin, from the given seed.
NewtonResult solveAtGmin(const Circuit& circuit, const DcOptions& options,
                         double gmin, Vector& x, DcScratch& scratch,
                         SimStats* stats) {
    const std::size_t nodeRows = static_cast<std::size_t>(circuit.nodeCount());
    const NewtonSystemFn system = [&](const Vector& xi, Vector& residual,
                                      SystemMatrix& jacobian) {
        if (options.batchDeviceEval) {
            circuit.assembleBatch(xi, options.time, scratch.asmb,
                                  scratch.batch, stats);
        } else {
            circuit.assemble(xi, options.time, scratch.asmb, stats);
        }
        residual = scratch.asmb.f();
        jacobian = scratch.asmb.gSystem();
        for (std::size_t i = 0; i < nodeRows; ++i) {
            residual[i] += gmin * xi[i];
            jacobian.addToDiagonal(i, gmin);
        }
    };
    return solveNewton(system, x, nodeRows, options.newton, *scratch.solver,
                       scratch.ws, stats);
}

}  // namespace

DcResult solveDcOperatingPoint(const Circuit& circuit, const DcOptions& options,
                               SimStats* stats) {
    require(circuit.finalized(), "solveDcOperatingPoint: circuit not finalized");
    DcResult result;
    result.x = Vector(circuit.systemSize());
    DcScratch scratch(
        circuit, resolveLinalgBackend(options.linalg, circuit.systemSize()));

    // Direct attempt at the gmin floor.
    NewtonResult nr = solveAtGmin(circuit, options, options.gminFloor,
                                  result.x, scratch, stats);
    result.totalNewtonIterations += nr.iterations;
    if (nr.converged) {
        result.converged = true;
        return result;
    }

    // gmin continuation: restart from zero at the top of the ladder, then
    // walk down re-seeding each stage with the previous stage's solution.
    result.usedContinuation = true;
    result.x.setZero();
    bool haveSeed = false;
    for (double gmin : options.gminLadder) {
        if (gmin < options.gminFloor) {
            continue;
        }
        Vector trial = result.x;
        nr = solveAtGmin(circuit, options, gmin, trial, scratch, stats);
        result.totalNewtonIterations += nr.iterations;
        if (!nr.converged) {
            if (!haveSeed) {
                throw NumericalError(message(
                    "DC operating point failed even at gmin=", gmin,
                    " (residual=", nr.finalResidualNorm, ")"));
            }
            // Stage failed: keep the last good solution and stop tightening.
            break;
        }
        result.x = trial;
        haveSeed = true;
    }
    require(haveSeed, "DC gmin ladder is empty or entirely below the floor");

    // Final polish at the floor from the continuation seed.
    nr = solveAtGmin(circuit, options, options.gminFloor, result.x, scratch,
                     stats);
    result.totalNewtonIterations += nr.iterations;
    result.converged = nr.converged;
    if (!result.converged) {
        throw NumericalError(
            "DC operating point: continuation reached the gmin floor but the "
            "final polish did not converge");
    }
    return result;
}

}  // namespace shtrace
