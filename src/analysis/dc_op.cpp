#include "shtrace/analysis/dc_op.hpp"

#include "shtrace/circuit/assembler.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

/// One Newton solve of f(x) + gmin*v = 0 at fixed gmin, from the given seed.
NewtonResult solveAtGmin(const Circuit& circuit, double time, double gmin,
                         const NewtonOptions& newtonOptions, Vector& x,
                         Assembler& asmb, SimStats* stats) {
    const std::size_t nodeRows = static_cast<std::size_t>(circuit.nodeCount());
    const NewtonSystemFn system = [&](const Vector& xi, Vector& residual,
                                      Matrix& jacobian) {
        circuit.assemble(xi, time, asmb, stats);
        residual = asmb.f();
        jacobian = asmb.g();
        for (std::size_t i = 0; i < nodeRows; ++i) {
            residual[i] += gmin * xi[i];
            jacobian(i, i) += gmin;
        }
    };
    return solveNewton(system, x, nodeRows, newtonOptions, stats);
}

}  // namespace

DcResult solveDcOperatingPoint(const Circuit& circuit, const DcOptions& options,
                               SimStats* stats) {
    require(circuit.finalized(), "solveDcOperatingPoint: circuit not finalized");
    DcResult result;
    result.x = Vector(circuit.systemSize());
    Assembler asmb(circuit.systemSize());

    // Direct attempt at the gmin floor.
    NewtonResult nr = solveAtGmin(circuit, options.time, options.gminFloor,
                                  options.newton, result.x, asmb, stats);
    result.totalNewtonIterations += nr.iterations;
    if (nr.converged) {
        result.converged = true;
        return result;
    }

    // gmin continuation: restart from zero at the top of the ladder, then
    // walk down re-seeding each stage with the previous stage's solution.
    result.usedContinuation = true;
    result.x.setZero();
    bool haveSeed = false;
    for (double gmin : options.gminLadder) {
        if (gmin < options.gminFloor) {
            continue;
        }
        Vector trial = result.x;
        nr = solveAtGmin(circuit, options.time, gmin, options.newton, trial,
                         asmb, stats);
        result.totalNewtonIterations += nr.iterations;
        if (!nr.converged) {
            if (!haveSeed) {
                throw NumericalError(message(
                    "DC operating point failed even at gmin=", gmin,
                    " (residual=", nr.finalResidualNorm, ")"));
            }
            // Stage failed: keep the last good solution and stop tightening.
            break;
        }
        result.x = trial;
        haveSeed = true;
    }
    require(haveSeed, "DC gmin ladder is empty or entirely below the floor");

    // Final polish at the floor from the continuation seed.
    nr = solveAtGmin(circuit, options.time, options.gminFloor, options.newton,
                     result.x, asmb, stats);
    result.totalNewtonIterations += nr.iterations;
    result.converged = nr.converged;
    if (!result.converged) {
        throw NumericalError(
            "DC operating point: continuation reached the gmin floor but the "
            "final polish did not converge");
    }
    return result;
}

}  // namespace shtrace
