#include "shtrace/analysis/adjoint.hpp"

#include "shtrace/linalg/linear_solver.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

AdjointGradient computeAdjointGradient(const Circuit& circuit,
                                       const TransientResult& result,
                                       const Vector& selector,
                                       SimStats* stats) {
    const auto& tape = result.adjointTape;
    require(tape.size() >= 2,
            "computeAdjointGradient: transient was not run with "
            "recordAdjointTape (tape has fewer than 2 entries)");
    require(selector.size() == circuit.systemSize(),
            "computeAdjointGradient: selector size mismatch");
    require(result.tapeMethod != IntegrationMethod::Gear2,
            "computeAdjointGradient: Gear2 tapes are not supported (use the "
            "forward sensitivities, which cover all methods)");

    const bool trap = result.tapeMethod == IntegrationMethod::Trapezoidal;
    const std::size_t n = circuit.systemSize();
    const std::size_t steps = tape.size() - 1;  // entry 0 = initial state

    AdjointGradient grad;
    // lambda carries the costate of step i (1-based over tape entries).
    Vector lambda;
    Vector nextLambdaRhs = selector;  // rhs for the final step's solve

    // One solver for the whole sweep, matching the tape's representation;
    // on the sparse backend every step after the first is a numeric replay
    // of the shared symbolic factorization.
    const std::unique_ptr<LinearSolver> solver = makeLinearSolver(
        tape[1].c.isSparse() ? LinalgBackend::Sparse : LinalgBackend::Dense);
    SystemMatrix jacobian;

    // Backward sweep: i = steps .. 1 (tape[i] is the accepted state of
    // step i; tape[i-1] its predecessor).
    for (std::size_t i = steps; i >= 1; --i) {
        const AdjointTapeEntry& cur = tape[i];
        const AdjointTapeEntry& prev = tape[i - 1];
        const double dt = cur.t - prev.t;
        require(dt > 0.0, "computeAdjointGradient: non-increasing tape time");
        const double a = (trap ? 2.0 : 1.0) / dt;

        // J_i = a C_i + G_i; solve J_i^T lambda_i = rhs.
        jacobian = cur.c;
        jacobian *= a;
        jacobian += cur.g;
        if (!solver->factor(jacobian, stats)) {
            throw NumericalError(message(
                "computeAdjointGradient: singular step Jacobian at t=",
                cur.t));
        }
        lambda = solver->solveTransposed(nextLambdaRhs, stats);

        // Gradient accumulation: dJ/dtau -= lambda^T dF_i/dtau, where
        // dF_i/dtau = b z(t_i) (+ b z(t_{i-1}) for TRAP).
        const auto accumulate = [&](SkewParam p, double& out) {
            Vector bz(n);
            circuit.addSkewDerivative(cur.t, p, bz);
            if (trap) {
                circuit.addSkewDerivative(prev.t, p, bz);
            }
            out -= lambda.dot(bz);
        };
        accumulate(SkewParam::Setup, grad.dSetup);
        accumulate(SkewParam::Hold, grad.dHold);

        if (i == 1) {
            break;  // x_0 is fixed: no dependence through the initial state
        }

        // rhs for step i-1: -(dF_i/dx_{i-1})^T lambda_i
        //   BE:   dF_i/dx_{i-1} = -a C_{i-1}         -> rhs = a C_{i-1}^T l
        //   TRAP: dF_i/dx_{i-1} = -a C_{i-1}+G_{i-1} -> rhs = (aC-G)^T l
        // NOTE: `a` of step i-1 differs when the grid is non-uniform, but
        // the C/G factors here belong to F_i, so THIS step's a is correct.
        Vector rhs = prev.c.multiplyTransposed(lambda);
        rhs *= a;
        if (trap) {
            const Vector gTerm = prev.g.multiplyTransposed(lambda);
            rhs -= gTerm;
        }
        nextLambdaRhs = std::move(rhs);
        if (stats != nullptr) {
            ++stats->sensitivitySteps;
        }
    }
    return grad;
}

}  // namespace shtrace
