#include "shtrace/analysis/ac.hpp"

#include <cmath>

#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/circuit/assembler.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

using Complex = std::complex<double>;

/// Minimal dense complex LU with partial pivoting (the real LU's twin;
/// kept file-local -- AC is the only complex consumer).
class ComplexLu {
public:
    bool factor(std::vector<Complex> a, std::size_t n) {
        lu_ = std::move(a);
        n_ = n;
        perm_.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            perm_[i] = i;
        }
        for (std::size_t k = 0; k < n; ++k) {
            std::size_t pivotRow = k;
            double best = std::abs(at(k, k));
            for (std::size_t i = k + 1; i < n; ++i) {
                const double cand = std::abs(at(i, k));
                if (cand > best) {
                    best = cand;
                    pivotRow = i;
                }
            }
            if (best < 1e-300) {
                return false;
            }
            if (pivotRow != k) {
                for (std::size_t j = 0; j < n; ++j) {
                    std::swap(at(k, j), at(pivotRow, j));
                }
                std::swap(perm_[k], perm_[pivotRow]);
            }
            const Complex invPivot = 1.0 / at(k, k);
            for (std::size_t i = k + 1; i < n; ++i) {
                const Complex lik = at(i, k) * invPivot;
                at(i, k) = lik;
                if (lik == Complex{}) {
                    continue;
                }
                for (std::size_t j = k + 1; j < n; ++j) {
                    at(i, j) -= lik * at(k, j);
                }
            }
        }
        return true;
    }

    std::vector<Complex> solve(const std::vector<Complex>& b) const {
        std::vector<Complex> y(n_);
        for (std::size_t i = 0; i < n_; ++i) {
            y[i] = b[perm_[i]];
        }
        for (std::size_t i = 1; i < n_; ++i) {
            Complex acc = y[i];
            for (std::size_t j = 0; j < i; ++j) {
                acc -= at(i, j) * y[j];
            }
            y[i] = acc;
        }
        for (std::size_t ii = n_; ii-- > 0;) {
            Complex acc = y[ii];
            for (std::size_t j = ii + 1; j < n_; ++j) {
                acc -= at(ii, j) * y[j];
            }
            y[ii] = acc / at(ii, ii);
        }
        return y;
    }

private:
    Complex& at(std::size_t i, std::size_t j) { return lu_[i * n_ + j]; }
    const Complex& at(std::size_t i, std::size_t j) const {
        return lu_[i * n_ + j];
    }

    std::vector<Complex> lu_;
    std::vector<std::size_t> perm_;
    std::size_t n_ = 0;
};

}  // namespace

std::vector<double> logSweep(double fStart, double fStop,
                             int pointsPerDecade) {
    require(fStart > 0.0 && fStop > fStart,
            "logSweep: need 0 < fStart < fStop");
    require(pointsPerDecade >= 1, "logSweep: pointsPerDecade must be >= 1");
    std::vector<double> freqs;
    const double step = 1.0 / pointsPerDecade;
    for (double e = std::log10(fStart); ; e += step) {
        const double f = std::pow(10.0, e);
        if (f > fStop * (1.0 + 1e-12)) {
            break;
        }
        freqs.push_back(f);
    }
    if (freqs.empty() || freqs.back() < fStop * (1.0 - 1e-9)) {
        freqs.push_back(fStop);
    }
    return freqs;
}

std::vector<Complex> AcResult::nodeResponse(NodeId node) const {
    require(!node.isGround(), "AcResult::nodeResponse: ground has no row");
    std::vector<Complex> out;
    out.reserve(response.size());
    for (const auto& x : response) {
        out.push_back(x[static_cast<std::size_t>(node.index)]);
    }
    return out;
}

std::vector<double> AcResult::magnitudeDb(NodeId node) const {
    std::vector<double> out;
    for (const Complex& v : nodeResponse(node)) {
        out.push_back(20.0 * std::log10(std::max(std::abs(v), 1e-300)));
    }
    return out;
}

std::vector<double> AcResult::phaseDegrees(NodeId node) const {
    std::vector<double> out;
    for (const Complex& v : nodeResponse(node)) {
        out.push_back(std::arg(v) * 180.0 / M_PI);
    }
    return out;
}

AcResult runAcAnalysis(const Circuit& circuit, const AcOptions& opt,
                       SimStats* stats) {
    require(circuit.finalized(), "runAcAnalysis: circuit not finalized");
    require(!opt.frequencies.empty(), "runAcAnalysis: no frequencies given");
    const std::size_t n = circuit.systemSize();

    // Stimulus vector (frequency independent).
    Vector stimulus(n);
    circuit.addAcStimulus(stimulus);
    require(stimulus.normInf() > 0.0,
            "runAcAnalysis: no source carries an AC magnitude (call "
            "setAcMagnitude on the stimulus source)");

    // Linearize at the DC operating point.
    AcResult result;
    DcOptions dcOpt;
    dcOpt.newton = opt.newton;
    dcOpt.gminFloor = opt.gmin;
    result.operatingPoint = solveDcOperatingPoint(circuit, dcOpt, stats).x;
    Assembler asmb(n);
    circuit.assemble(result.operatingPoint, 0.0, asmb, stats);
    const Matrix& g = asmb.g();
    const Matrix& c = asmb.c();

    result.frequencies = opt.frequencies;
    result.response.reserve(opt.frequencies.size());
    std::vector<Complex> system(n * n);
    std::vector<Complex> rhs(n);
    for (double f : opt.frequencies) {
        const double omega = 2.0 * M_PI * f;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                double gij = g(i, j);
                if (i == j && static_cast<int>(i) <
                                  static_cast<int>(circuit.nodeCount())) {
                    gij += opt.gmin;  // keep floating nodes well posed
                }
                system[i * n + j] = Complex(gij, omega * c(i, j));
            }
            rhs[i] = stimulus[i];
        }
        ComplexLu lu;
        if (!lu.factor(std::move(system), n)) {
            throw NumericalError(message(
                "runAcAnalysis: singular small-signal system at f=", f));
        }
        system.assign(n * n, Complex{});  // factor() consumed the storage
        result.response.push_back(lu.solve(rhs));
        if (stats != nullptr) {
            ++stats->luFactorizations;
            ++stats->luSolves;
        }
    }
    return result;
}

}  // namespace shtrace
