#include "shtrace/analysis/transient.hpp"

#include <algorithm>
#include <cmath>

#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/circuit/assembler.hpp"
#include "shtrace/devices/mosfet_batch.hpp"
#include "shtrace/linalg/linear_solver.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

// ---------------------------------------------------------------- result ---

double TransientResult::valueAt(const Vector& selector, double t) const {
    require(!times.empty() && states.size() == times.size(),
            "TransientResult::valueAt requires stored states");
    if (t <= times.front()) {
        return selector.dot(states.front());
    }
    if (t >= times.back()) {
        return selector.dot(states.back());
    }
    const auto it = std::upper_bound(times.begin(), times.end(), t);
    const std::size_t hi = static_cast<std::size_t>(it - times.begin());
    const std::size_t lo = hi - 1;
    const double frac = (t - times[lo]) / (times[hi] - times[lo]);
    const double vLo = selector.dot(states[lo]);
    const double vHi = selector.dot(states[hi]);
    return vLo + frac * (vHi - vLo);
}

std::vector<double> TransientResult::signal(const Vector& selector) const {
    std::vector<double> out;
    out.reserve(states.size());
    for (const Vector& x : states) {
        out.push_back(selector.dot(x));
    }
    return out;
}

// ---------------------------------------------------------------- engine ---

namespace {

/// Everything retained from the previously ACCEPTED step.
struct StepHistory {
    double t = 0.0;
    Vector x;
    Vector q;
    Vector fTotal;  ///< f(x,t) + b(t) + gmin*v  (the complete algebraic part)
    SystemMatrix c;
    SystemMatrix g;  ///< df/dx + gmin on node diagonal
    Vector ms;       ///< dx/dtau_s
    Vector mh;       ///< dx/dtau_h
};

class Engine {
public:
    Engine(const Circuit& circuit, const TransientOptions& opt, SimStats* stats)
        : circuit_(circuit),
          opt_(opt),
          stats_(stats),
          n_(circuit.systemSize()),
          nodeRows_(static_cast<std::size_t>(circuit.nodeCount())),
          backend_(resolveLinalgBackend(opt.linalg, circuit.systemSize())),
          asmb_(circuit.systemSize(), backend_ == LinalgBackend::Sparse
                                          ? circuit.sparsityPattern()
                                          : nullptr),
          stepSolver_(makeLinearSolver(backend_)) {
        ws_.bind(n_, backend_ == LinalgBackend::Sparse
                         ? circuit.sparsityPattern()
                         : nullptr);
    }

    TransientResult run() {
        SHTRACE_SPAN("transient.solve");
        if (!obs::enabled()) {
            return runImpl();
        }
        const long long startNs = obs::monotonicNanos();
        TransientResult result = runImpl();
        obs::observe(
            obs::Hist::TransientWallMilliseconds,
            static_cast<double>(obs::monotonicNanos() - startNs) / 1.0e6);
        return result;
    }

private:
    TransientResult runImpl() {
        TransientResult result;
        const double span = opt_.tStop - opt_.tStart;
        require(span > 0.0, "TransientAnalysis: tStop must exceed tStart");

        if (stats_ != nullptr) {
            ++stats_->transientSolves;
        }

        // --- initial condition ---
        StepHistory prev;
        prev.t = opt_.tStart;
        if (opt_.initialCondition.has_value()) {
            require(opt_.initialCondition->size() == n_,
                    "TransientAnalysis: initial condition size mismatch");
            prev.x = *opt_.initialCondition;
        } else {
            DcOptions dcOpt;
            dcOpt.newton = opt_.newton;
            dcOpt.time = opt_.tStart;
            dcOpt.linalg = opt_.linalg;
            dcOpt.batchDeviceEval = opt_.batchDeviceEval;
            prev.x = solveDcOperatingPoint(circuit_, dcOpt, stats_).x;
        }
        assembleHistory(prev.x, prev.t, prev);
        if (opt_.trackSkewSensitivities) {
            // x0 is fixed (tau-independent), so m(t0) = 0 (paper step 1c).
            prev.ms = Vector(n_);
            prev.mh = Vector(n_);
        }
        result.tapeMethod = opt_.method;
        recordTape(result, prev);
        record(result, prev);

        // --- step-size plan ---
        const double dtMax =
            opt_.dtMax > 0.0 ? opt_.dtMax : span / 200.0;
        double dt;
        int remainingFixedSteps = 0;
        if (!opt_.adaptive) {
            remainingFixedSteps =
                opt_.fixedSteps > 0
                    ? opt_.fixedSteps
                    : static_cast<int>(std::ceil(span / dtMax));
            dt = span / remainingFixedSteps;
        } else {
            dt = std::min(opt_.dtInit, dtMax);
        }

        std::vector<double> breakpoints;
        std::size_t nextBreakpoint = 0;
        if (opt_.adaptive && opt_.useBreakpoints) {
            breakpoints = circuit_.breakpoints(opt_.tStart, opt_.tStop);
        }

        // Previous-previous accepted step (predictor history; also the
        // q/C/m history Gear2 needs). `next` lives outside the loop so the
        // swap-based rotation below recycles all three histories' buffers:
        // after the first two steps the loop allocates nothing.
        StepHistory prev2;
        StepHistory next;
        bool havePrev2 = false;

        // --- main loop ---
        while (prev.t < opt_.tStop - 1e-18 * span) {
            double stepDt = dt;
            bool landedOnBreakpoint = false;
            if (!opt_.adaptive) {
                // Uniform grid: recompute from the remaining span to kill
                // floating-point drift; the last step lands exactly on tStop.
                stepDt = (opt_.tStop - prev.t) /
                         std::max(1, remainingFixedSteps);
            } else {
                while (nextBreakpoint < breakpoints.size() &&
                       breakpoints[nextBreakpoint] <= prev.t + 1e-18 * span) {
                    ++nextBreakpoint;
                }
                if (nextBreakpoint < breakpoints.size() &&
                    prev.t + stepDt >= breakpoints[nextBreakpoint]) {
                    stepDt = breakpoints[nextBreakpoint] - prev.t;
                    landedOnBreakpoint = true;
                }
                if (prev.t + stepDt > opt_.tStop) {
                    stepDt = opt_.tStop - prev.t;
                }
            }

            // Nonlinear solve, halving dt on failure (adaptive mode only).
            bool solved = false;
            while (true) {
                next.t = prev.t + stepDt;
                predictInto(prev, havePrev2 ? &prev2 : nullptr, next.t,
                            next.x);
                if (solveStep(prev, havePrev2 ? &prev2 : nullptr, next,
                              stepDt)) {
                    solved = true;
                    break;
                }
                if (!opt_.adaptive) {
                    break;  // fixed grid must not silently change the grid
                }
                landedOnBreakpoint = false;
                stepDt *= 0.5;
                if (stepDt < opt_.dtMin) {
                    break;
                }
            }
            if (!solved) {
                result.failureReason = message(
                    "Newton failed to converge at t=", prev.t + stepDt,
                    (opt_.adaptive ? " (dt underflow)" : " (fixed grid)"));
                return result;
            }

            // LTE control (adaptive only, needs two history points).
            if (opt_.adaptive && havePrev2) {
                const double err = lteEstimate(prev, prev2, next);
                if (err > 1.0 && stepDt > opt_.dtMin && !landedOnBreakpoint) {
                    if (stats_ != nullptr) {
                        ++stats_->rejectedSteps;
                    }
                    // The factorization now corresponds to a rejected
                    // iterate, and the retry changes dt anyway.
                    forceRefactor_ = true;
                    dt = std::max(opt_.dtMin, stepDt * 0.5);
                    continue;  // reject
                }
                const double order =
                    opt_.method == IntegrationMethod::Trapezoidal ? 3.0 : 2.0;
                const double grow =
                    0.9 * std::pow(std::max(err, 1e-8), -1.0 / order);
                dt = std::clamp(stepDt * std::clamp(grow, 0.2, 2.0),
                                opt_.dtMin, dtMax);
            }

            // Accept: epilogue assembly at the converged solution, then
            // advance sensitivities with the SAME factored matrix.
            if (!allFinite(next.x)) {
                result.nonFinite = true;
                result.failureReason =
                    message("non-finite accepted state at t=", next.t);
                return result;
            }
            assembleHistory(next.x, next.t, next);
            if (opt_.trackSkewSensitivities) {
                advanceSensitivities(prev, havePrev2 ? &prev2 : nullptr,
                                     next, stepDt);
                // The sensitivity recurrence has no Newton loop to reject a
                // blow-up; NaN here would flow straight into dh/dtau.
                if (!allFinite(next.ms) || !allFinite(next.mh)) {
                    result.nonFinite = true;
                    result.failureReason = message(
                        "non-finite sensitivity at t=", next.t);
                    return result;
                }
            }
            if (stats_ != nullptr) {
                ++stats_->timeSteps;
            }
            // Rotate by swapping: the retired prev2's buffers become the
            // next step's scratch instead of being freed.
            std::swap(prev2, prev);
            std::swap(prev, next);
            havePrev2 = true;
            if (!opt_.adaptive) {
                --remainingFixedSteps;
            }
            recordTape(result, prev);
            record(result, prev);
        }

        result.finalState = prev.x;
        if (opt_.trackSkewSensitivities) {
            result.finalSensitivitySetup = prev.ms;
            result.finalSensitivityHold = prev.mh;
        }
        result.success = true;
        return result;
    }

private:
    /// Assembles q, fTotal (+gmin) at (x, t) into `h`; C and G only when a
    /// consumer exists (sensitivity recurrences, adjoint tape). The step
    /// residuals themselves read only q/fTotal history, so the epilogue of
    /// a plain transient is a residual-only pass.
    void assembleHistory(const Vector& x, double t, StepHistory& h) {
        const bool needJacobians =
            opt_.trackSkewSensitivities || opt_.recordAdjointTape;
        if (needJacobians) {
            assembleFull(x, t);
        } else {
            assembleResidualOnly(x, t);
        }
        h.x = x;
        h.t = t;
        h.q = asmb_.q();
        h.fTotal = asmb_.f();
        for (std::size_t i = 0; i < nodeRows_; ++i) {
            h.fTotal[i] += opt_.gmin * x[i];
        }
        if (needJacobians) {
            h.c = asmb_.cSystem();
            h.g = asmb_.gSystem();
            for (std::size_t i = 0; i < nodeRows_; ++i) {
                h.g.addToDiagonal(i, opt_.gmin);
            }
        }
    }

    /// Full assembly with the recipe's device-evaluation mode.
    void assembleFull(const Vector& x, double t) {
        if (opt_.batchDeviceEval) {
            circuit_.assembleBatch(x, t, asmb_, batchScratch_, stats_);
        } else {
            circuit_.assemble(x, t, asmb_, stats_);
        }
    }

    /// Residual-only assembly with the recipe's device-evaluation mode.
    void assembleResidualOnly(const Vector& x, double t) {
        if (opt_.batchDeviceEval) {
            circuit_.assembleResidualBatch(x, t, asmb_, batchScratch_, stats_);
        } else {
            circuit_.assembleResidual(x, t, asmb_, stats_);
        }
    }

    /// Initial guess for the step at tNew, written into `out` (which keeps
    /// its capacity across steps).
    void predictInto(const StepHistory& prev, const StepHistory* prev2,
                     double tNew, Vector& out) const {
        out = prev.x;
        if (prev2 == nullptr || prev.t <= prev2->t) {
            return;
        }
        // Linear extrapolation through the last two accepted points.
        const double frac = (tNew - prev.t) / (prev.t - prev2->t);
        for (std::size_t i = 0; i < n_; ++i) {
            out[i] += frac * (prev.x[i] - prev2->x[i]);
        }
    }

    /// Integration formula actually used for a step: Gear2 bootstraps its
    /// first step (no second history point yet) with Backward Euler.
    IntegrationMethod effectiveMethod(const StepHistory* prev2) const {
        if (opt_.method == IntegrationMethod::Gear2 && prev2 == nullptr) {
            return IntegrationMethod::BackwardEuler;
        }
        return opt_.method;
    }

    /// Discretized residual solve for one step; next.x holds the initial
    /// guess on entry and the solution on (successful) exit.
    ///
    /// Residuals (all with the gmin leak folded into f):
    ///   BE:    (q_i - q_{i-1})/dt + f_i = 0                 J = C/dt + G
    ///   TRAP:  2(q_i - q_{i-1})/dt + f_i + f_{i-1} = 0      J = 2C/dt + G
    ///   Gear2: (1.5 q_i - 2 q_{i-1} + 0.5 q_{i-2})/dt + f_i = 0,
    ///                                                       J = 1.5C/dt + G
    bool solveStep(const StepHistory& prev, const StepHistory* prev2,
                   StepHistory& next, double dt) {
        SHTRACE_FINE_SPAN("transient.step");
        const IntegrationMethod method = effectiveMethod(prev2);
        const bool trap = method == IntegrationMethod::Trapezoidal;
        const bool gear = method == IntegrationMethod::Gear2;
        const double a = (trap ? 2.0 : (gear ? 1.5 : 1.0)) / dt;
        const double tNew = next.t;
        const NewtonSystemFn system = [&](const Vector& xi, Vector& residual,
                                          SystemMatrix& jacobian) {
            assembleFull(xi, tNew);
            residual = asmb_.q();
            residual *= a;
            if (gear) {
                residual.addScaled(-2.0 / dt, prev.q);
                residual.addScaled(0.5 / dt, prev2->q);
            } else {
                residual.addScaled(-a, prev.q);
            }
            residual += asmb_.f();
            jacobian = asmb_.cSystem();
            jacobian *= a;
            jacobian += asmb_.gSystem();
            for (std::size_t i = 0; i < nodeRows_; ++i) {
                residual[i] += opt_.gmin * xi[i];
                jacobian.addToDiagonal(i, opt_.gmin);
            }
            if (trap) {
                residual += prev.fTotal;
            }
        };
        // Residual-only twin of `system`: identical f/q arithmetic, no G/C
        // restamp and no Jacobian build (chord iterations keep the old LU).
        const NewtonResidualFn residualOnly = [&](const Vector& xi,
                                                  Vector& residual) {
            assembleResidualOnly(xi, tNew);
            residual = asmb_.q();
            residual *= a;
            if (gear) {
                residual.addScaled(-2.0 / dt, prev.q);
                residual.addScaled(0.5 / dt, prev2->q);
            } else {
                residual.addScaled(-a, prev.q);
            }
            residual += asmb_.f();
            for (std::size_t i = 0; i < nodeRows_; ++i) {
                residual[i] += opt_.gmin * xi[i];
            }
            if (trap) {
                residual += prev.fTotal;
            }
        };

        // The factorization carried in stepLu_ is reusable only while the
        // discretization coefficient matches: a = coef/dt enters the
        // Jacobian as a*C + G, so a dt change (adaptive control, final-step
        // truncation) or a method-coefficient change (Gear2's BE bootstrap)
        // invalidates it. The comparison is RELATIVE: fixed grids recompute
        // stepDt from the remaining span each step, so `a` drifts by a few
        // ulps even when the grid is nominally uniform.
        const bool reuse = opt_.jacobianReuse && !forceRefactor_ &&
                           stepSolver_->valid() && haveLuCoef_ &&
                           std::fabs(a - luCoef_) <= 1e-9 * std::fabs(a);
        const NewtonResult nr =
            solveNewtonChord(system, residualOnly, next.x, nodeRows_,
                             opt_.newton, *stepSolver_, reuse, ws_, stats_);
        if (!nr.converged) {
            forceRefactor_ = true;
            return false;
        }
        if (nr.refactored) {
            luCoef_ = a;
            haveLuCoef_ = true;
        }
        forceRefactor_ = false;
        return true;
    }

    /// Weighted LTE estimate (>1 means reject): difference between the
    /// accepted solution and the polynomial predictor through the previous
    /// two points, measured against lteRelTol/lteAbsTol.
    double lteEstimate(const StepHistory& prev, const StepHistory& prev2,
                       const StepHistory& next) const {
        const double frac = (next.t - prev.t) / (prev.t - prev2.t);
        double worst = 0.0;
        for (std::size_t i = 0; i < n_; ++i) {
            const double pred =
                prev.x[i] + frac * (prev.x[i] - prev2.x[i]);
            const double err = std::fabs(next.x[i] - pred);
            const double tol =
                opt_.lteRelTol * std::max(std::fabs(next.x[i]),
                                          std::fabs(prev.x[i])) +
                opt_.lteAbsTol;
            worst = std::max(worst, err / tol);
        }
        return worst;
    }

    /// m_i update reusing the state solve's factored (a*C_i + G_i) -- the
    /// paper's central efficiency point: each sensitivity costs one extra
    /// back-substitution per step, not a new factorization. The reused
    /// factors are from the final Newton iterate, within Newton tolerance
    /// of the accepted solution (see solveNewton docs). With jacobianReuse
    /// they may additionally be a few chord steps stale; the chord
    /// contraction threshold bounds ||I - J_stale^-1 J||, so the extra
    /// perturbation stays of the same order (docs/ALGORITHM.md section 13).
    void advanceSensitivities(const StepHistory& prev,
                              const StepHistory* prev2, StepHistory& next,
                              double dt) {
        SHTRACE_FINE_SPAN("transient.sensitivities");
        const IntegrationMethod method = effectiveMethod(prev2);
        const bool trap = method == IntegrationMethod::Trapezoidal;
        const bool gear = method == IntegrationMethod::Gear2;
        const double a = (trap ? 2.0 : (gear ? 1.5 : 1.0)) / dt;
        if (opt_.jacobianReuse) {
            // The recurrence is a PRODUCT of per-step J^-1 applications, so
            // unlike the self-correcting Newton iteration it compounds any
            // factorization staleness across the whole run. Refactor at the
            // accepted solution (whose C/G the epilogue just assembled):
            // exactly one factorization per step -- still well below the
            // one-per-Newton-iteration cost with reuse off -- and the next
            // step's chord phase starts from these fresher factors too.
            ws_.jacobian = next.c;
            ws_.jacobian *= a;
            ws_.jacobian += next.g;
            if (!stepSolver_->factor(ws_.jacobian, stats_)) {
                throw NumericalError(message(
                    "singular Jacobian at accepted step t=", next.t));
            }
            luCoef_ = a;
            haveLuCoef_ = true;
        }
        const LinearSolver& lu = *stepSolver_;
        if (!lu.valid()) {
            throw NumericalError(message(
                "sensitivity update without a factored step Jacobian at t=",
                next.t));
        }
        const auto advanceOne = [&](SkewParam p, const Vector& mPrev,
                                    const Vector* mPrev2, Vector& mOut) {
            // Differentiating the step residual w.r.t. tau:
            //   BE:    rhs = C_{i-1} m_{i-1}/dt - b z_i
            //   TRAP:  rhs = (2C_{i-1}/dt - G_{i-1}) m_{i-1}
            //                - b z_i - b z_{i-1}
            //   Gear2: rhs = (2 C_{i-1} m_{i-1} - 0.5 C_{i-2} m_{i-2})/dt
            //                - b z_i
            // sensRhs_/sensBz_ are member scratch so the per-step loop does
            // not allocate.
            sensRhs_.resize(n_);
            sensRhs_.setZero();
            Vector& rhs = sensRhs_;
            if (gear) {
                prev.c.multiplyAccumulate(mPrev, 2.0 / dt, rhs);
                prev2->c.multiplyAccumulate(*mPrev2, -0.5 / dt, rhs);
            } else {
                prev.c.multiplyAccumulate(mPrev, a, rhs);
                if (trap) {
                    prev.g.multiplyAccumulate(mPrev, -1.0, rhs);
                }
            }
            sensBz_.resize(n_);
            sensBz_.setZero();
            circuit_.addSkewDerivative(next.t, p, sensBz_);
            if (trap) {
                circuit_.addSkewDerivative(prev.t, p, sensBz_);
            }
            rhs -= sensBz_;
            lu.solveInPlace(rhs, stats_);
            mOut = rhs;
        };
        advanceOne(SkewParam::Setup, prev.ms,
                   prev2 != nullptr ? &prev2->ms : nullptr, next.ms);
        advanceOne(SkewParam::Hold, prev.mh,
                   prev2 != nullptr ? &prev2->mh : nullptr, next.mh);
        if (stats_ != nullptr) {
            stats_->sensitivitySteps += 2;
        }
    }

    void recordTape(TransientResult& result, const StepHistory& h) const {
        if (!opt_.recordAdjointTape) {
            return;
        }
        AdjointTapeEntry entry;
        entry.t = h.t;
        entry.c = h.c;
        entry.g = h.g;
        result.adjointTape.push_back(std::move(entry));
    }

    void record(TransientResult& result, const StepHistory& h) const {
        if (!opt_.storeStates) {
            return;
        }
        result.times.push_back(h.t);
        result.states.push_back(h.x);
        if (opt_.trackSkewSensitivities) {
            result.sensitivitySetup.push_back(h.ms);
            result.sensitivityHold.push_back(h.mh);
        }
    }

    const Circuit& circuit_;
    const TransientOptions& opt_;
    SimStats* stats_;
    std::size_t n_;
    std::size_t nodeRows_;
    /// Resolved (never Auto) linear-algebra backend of this run.
    LinalgBackend backend_;
    Assembler asmb_;
    /// Solver holding the factors of the last Newton Jacobian this engine
    /// assembled, reused by the sensitivity recurrences and -- with
    /// jacobianReuse -- as the chord factorization of subsequent iterations
    /// and steps.
    std::unique_ptr<LinearSolver> stepSolver_;
    /// SoA scratch for batchDeviceEval (per-engine, never shared).
    MosfetBatchScratch batchScratch_;
    /// Integration coefficient a = coef/dt the stepLu_ factors were built
    /// with; chord reuse requires the current step's a to match.
    double luCoef_ = 0.0;
    bool haveLuCoef_ = false;
    /// Set on rejected/failed steps: the factorization corresponds to an
    /// abandoned iterate, start the next solve with a fresh Jacobian.
    bool forceRefactor_ = false;
    /// Newton solver buffers, reused across every step of the run.
    NewtonWorkspace ws_;
    /// Sensitivity-recurrence scratch, reused across steps.
    Vector sensRhs_;
    Vector sensBz_;
};

}  // namespace

TransientAnalysis::TransientAnalysis(const Circuit& circuit,
                                     TransientOptions options)
    : circuit_(circuit), options_(std::move(options)) {
    require(circuit.finalized(), "TransientAnalysis: circuit not finalized");
    require(options_.tStop > options_.tStart,
            "TransientAnalysis: tStop must exceed tStart");
    require(!(options_.method == IntegrationMethod::Gear2 &&
              options_.adaptive),
            "TransientAnalysis: Gear2 uses constant-step coefficients and "
            "supports the fixed grid only");
}

TransientResult TransientAnalysis::run(SimStats* stats) const {
    Engine engine(circuit_, options_, stats);
    return engine.run();
}

}  // namespace shtrace
