#include "shtrace/analysis/shooting.hpp"

#include <cmath>

#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/linalg/lu.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

/// Propagates the monodromy matrix M = d phi / d x0 along a recorded tape.
Matrix propagateMonodromy(const TransientResult& tr, std::size_t n,
                          SimStats* stats) {
    const bool trap = tr.tapeMethod == IntegrationMethod::Trapezoidal;
    Matrix m = Matrix::identity(n);
    for (std::size_t i = 1; i < tr.adjointTape.size(); ++i) {
        const AdjointTapeEntry& cur = tr.adjointTape[i];
        const AdjointTapeEntry& prev = tr.adjointTape[i - 1];
        const double dt = cur.t - prev.t;
        const double a = (trap ? 2.0 : 1.0) / dt;

        // The monodromy product is dense regardless of the tape's backend
        // (M itself fills in); NOT on the transient hot path.
        Matrix jacobian = cur.c.toDense();
        jacobian *= a;
        jacobian += cur.g.toDense();
        LuFactorization lu;
        if (!lu.factor(jacobian, stats)) {
            throw NumericalError(message(
                "shooting: singular step Jacobian at t=", cur.t));
        }
        // rhs = (a C_{i-1} [- G_{i-1}]) M_{i-1}, column by column.
        Matrix rhsBase = prev.c.toDense();
        rhsBase *= a;
        if (trap) {
            rhsBase -= prev.g.toDense();
        }
        Matrix next(n, n);
        Vector col(n);
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t r = 0; r < n; ++r) {
                double acc = 0.0;
                for (std::size_t k = 0; k < n; ++k) {
                    acc += rhsBase(r, k) * m(k, j);
                }
                col[r] = acc;
            }
            lu.solveInPlace(col, stats);
            for (std::size_t r = 0; r < n; ++r) {
                next(r, j) = col[r];
            }
        }
        m = std::move(next);
    }
    return m;
}

}  // namespace

ShootingResult solvePeriodicSteadyState(const Circuit& circuit,
                                        const ShootingOptions& opt,
                                        SimStats* stats) {
    require(circuit.finalized(), "shooting: circuit not finalized");
    require(opt.period > 0.0, "shooting: period must be positive");
    require(opt.stepsPerPeriod >= 8, "shooting: too few steps per period");
    require(opt.method == IntegrationMethod::BackwardEuler,
            "shooting: Backward Euler only (TRAP leaves MNA algebraic "
            "modes undamped, making M - I singular; see ShootingOptions)");
    const std::size_t n = circuit.systemSize();

    ShootingResult result;
    if (opt.initialGuess.has_value()) {
        require(opt.initialGuess->size() == n,
                "shooting: initial guess size mismatch");
        result.periodicState = *opt.initialGuess;
    } else {
        DcOptions dcOpt;
        dcOpt.newton = opt.newton;
        dcOpt.time = opt.tStart;
        result.periodicState = solveDcOperatingPoint(circuit, dcOpt, stats).x;
    }

    TransientOptions tranOpt;
    tranOpt.tStart = opt.tStart;
    tranOpt.tStop = opt.tStart + opt.period;
    tranOpt.method = opt.method;
    tranOpt.adaptive = false;
    tranOpt.fixedSteps = opt.stepsPerPeriod;
    tranOpt.newton = opt.newton;
    tranOpt.gmin = opt.gmin;
    tranOpt.recordAdjointTape = true;
    tranOpt.storeStates = true;

    for (result.iterations = 1; result.iterations <= opt.maxIterations;
         ++result.iterations) {
        tranOpt.initialCondition = result.periodicState;
        const TransientResult tr =
            TransientAnalysis(circuit, tranOpt).run(stats);
        if (!tr.success) {
            throw NumericalError(message(
                "shooting: transient failed inside Newton (",
                tr.failureReason, ")"));
        }
        // F = phi(T; x0) - x0.
        Vector residual = tr.finalState;
        residual -= result.periodicState;
        result.finalError = residual.normInf();
        if (result.finalError <= opt.tolerance) {
            result.converged = true;
            result.steadyStatePeriod = tr;
            return result;
        }

        // Newton: dx0 = -(M - I)^{-1} F.
        Matrix jacobian = propagateMonodromy(tr, n, stats);
        jacobian -= Matrix::identity(n);
        LuFactorization lu;
        if (!lu.factor(jacobian, stats)) {
            throw NumericalError(
                "shooting: (M - I) singular -- the circuit has a floating "
                "(marginally stable) mode; shooting cannot isolate a unique "
                "periodic orbit");
        }
        lu.solveInPlace(residual, stats);
        result.periodicState -= residual;
    }
    result.iterations = opt.maxIterations;
    return result;
}

}  // namespace shtrace
