#include "shtrace/analysis/sensitivity.hpp"

#include "shtrace/util/error.hpp"

namespace shtrace {

SkewEvaluation evaluateWithSensitivities(const Circuit& circuit,
                                         DataPulse& data,
                                         const Vector& selector,
                                         double setupSkew, double holdSkew,
                                         const TransientOptions& options,
                                         SimStats* stats) {
    data.setSkews(setupSkew, holdSkew);
    TransientOptions opt = options;
    opt.trackSkewSensitivities = true;
    opt.storeStates = false;
    const TransientResult tr = TransientAnalysis(circuit, opt).run(stats);
    SkewEvaluation out;
    out.success = tr.success;
    if (!tr.success) {
        return out;
    }
    out.output = selector.dot(tr.finalState);
    out.dOutputDSetup = selector.dot(tr.finalSensitivitySetup);
    out.dOutputDHold = selector.dot(tr.finalSensitivityHold);
    return out;
}

SkewEvaluation evaluateWithFiniteDifferences(const Circuit& circuit,
                                             DataPulse& data,
                                             const Vector& selector,
                                             double setupSkew, double holdSkew,
                                             const TransientOptions& options,
                                             double delta, SimStats* stats) {
    require(delta > 0.0, "evaluateWithFiniteDifferences: delta must be > 0");
    TransientOptions opt = options;
    opt.trackSkewSensitivities = false;
    opt.storeStates = false;

    const auto runAt = [&](double ts, double th, double& value) {
        data.setSkews(ts, th);
        const TransientResult tr = TransientAnalysis(circuit, opt).run(stats);
        if (!tr.success) {
            return false;
        }
        value = selector.dot(tr.finalState);
        return true;
    };

    SkewEvaluation out;
    double center = 0.0;
    double sPlus = 0.0;
    double sMinus = 0.0;
    double hPlus = 0.0;
    double hMinus = 0.0;
    out.success = runAt(setupSkew, holdSkew, center) &&
                  runAt(setupSkew + delta, holdSkew, sPlus) &&
                  runAt(setupSkew - delta, holdSkew, sMinus) &&
                  runAt(setupSkew, holdSkew + delta, hPlus) &&
                  runAt(setupSkew, holdSkew - delta, hMinus);
    data.setSkews(setupSkew, holdSkew);  // restore
    if (!out.success) {
        return out;
    }
    out.output = center;
    out.dOutputDSetup = (sPlus - sMinus) / (2.0 * delta);
    out.dOutputDHold = (hPlus - hMinus) / (2.0 * delta);
    return out;
}

}  // namespace shtrace
