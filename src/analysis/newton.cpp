#include "shtrace/analysis/newton.hpp"

#include <algorithm>
#include <cmath>

#include "shtrace/util/error.hpp"

namespace shtrace {

NewtonResult solveNewton(const NewtonSystemFn& system, Vector& x,
                         std::size_t nodeRows, const NewtonOptions& options,
                         SimStats* stats, LuFactorization* finalFactorization) {
    require(nodeRows <= x.size(), "solveNewton: nodeRows exceeds system size");
    const std::size_t n = x.size();
    NewtonResult result;
    Vector residual(n);
    Matrix jacobian(n, n);
    LuFactorization localLu;
    LuFactorization& lu =
        finalFactorization != nullptr ? *finalFactorization : localLu;

    for (result.iterations = 1; result.iterations <= options.maxIterations;
         ++result.iterations) {
        if (stats != nullptr) {
            ++stats->newtonIterations;
        }
        system(x, residual, jacobian);
        result.finalResidualNorm = residual.normInf();

        if (!lu.factor(jacobian, stats)) {
            result.singular = true;
            return result;
        }
        Vector dx = residual;
        lu.solveInPlace(dx, stats);

        // Damping: scale the whole update so no component exceeds maxUpdate.
        const double updateNorm = dx.normInf();
        double scale = 1.0;
        if (updateNorm > options.maxUpdate) {
            scale = options.maxUpdate / updateNorm;
        }
        bool updateConverged = true;
        for (std::size_t i = 0; i < n; ++i) {
            const double step = scale * dx[i];
            const double xOld = x[i];
            const double xNew = xOld - step;
            const double absTol =
                (i < nodeRows) ? options.vAbsTol : options.iAbsTol;
            const double tol =
                options.relTol * std::max(std::fabs(xNew), std::fabs(xOld)) +
                absTol;
            if (std::fabs(step) > tol) {
                updateConverged = false;
            }
            x[i] = xNew;
        }
        result.finalUpdateNorm = scale * updateNorm;

        // Converged when the (undamped) update passes the tolerance model
        // and the residual at the PREVIOUS iterate was already small; this
        // matches SPICE's two-criterion test closely enough for our device
        // models while avoiding one extra assembly.
        if (updateConverged && scale == 1.0 &&
            result.finalResidualNorm <= options.residualTol) {
            result.converged = true;
            return result;
        }
    }
    result.iterations = options.maxIterations;
    return result;
}

}  // namespace shtrace
