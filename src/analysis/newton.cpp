#include "shtrace/analysis/newton.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

/// One histogram sample per step solve: how many fresh-Jacobian and how
/// many reused-LU iterations this solve took.
void observeSolve(const NewtonResult& result) {
    if (!obs::enabled()) {
        return;
    }
    obs::observe(obs::Hist::NewtonIterationsPerStep,
                 static_cast<double>(result.iterations));
    obs::observe(obs::Hist::ChordIterationsPerStep,
                 static_cast<double>(result.chordIterations));
}

// Applies the (possibly damped) update x -= scale*dx and evaluates the SPICE
// per-unknown tolerance model. Returns true when every component passed.
bool applyUpdate(Vector& x, const Vector& dx, double scale,
                 std::size_t nodeRows, const NewtonOptions& options) {
    bool updateConverged = true;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double step = scale * dx[i];
        const double xOld = x[i];
        const double xNew = xOld - step;
        const double absTol = (i < nodeRows) ? options.vAbsTol : options.iAbsTol;
        const double tol =
            options.relTol * std::max(std::fabs(xNew), std::fabs(xOld)) + absTol;
        if (std::fabs(step) > tol) {
            updateConverged = false;
        }
        x[i] = xNew;
    }
    return updateConverged;
}

// The classic damped Newton loop on fresh Jacobians. `result` accumulates
// across phases (chord iterations already counted by the caller).
void runFullNewton(const NewtonSystemFn& system, Vector& x,
                   std::size_t nodeRows, const NewtonOptions& options,
                   LinearSolver& solver, NewtonWorkspace& ws, SimStats* stats,
                   NewtonResult& result) {
    for (result.iterations = 1; result.iterations <= options.maxIterations;
         ++result.iterations) {
        if (stats != nullptr) {
            ++stats->newtonIterations;
        }
        system(x, ws.residual, ws.jacobian);
        result.finalResidualNorm = ws.residual.normInf();

        if (!solver.factor(ws.jacobian, stats)) {
            result.singular = true;
            return;
        }
        ws.dx = ws.residual;
        solver.solveInPlace(ws.dx, stats);

        // Damping: scale the whole update so no component exceeds maxUpdate.
        const double updateNorm = ws.dx.normInf();
        double scale = 1.0;
        if (updateNorm > options.maxUpdate) {
            scale = options.maxUpdate / updateNorm;
        }
        const bool updateConverged =
            applyUpdate(x, ws.dx, scale, nodeRows, options);
        result.finalUpdateNorm = scale * updateNorm;

        // Converged when the (undamped) update passes the tolerance model
        // and the residual at the PREVIOUS iterate was already small; this
        // matches SPICE's two-criterion test closely enough for our device
        // models while avoiding one extra assembly.
        if (updateConverged && scale == 1.0 &&
            result.finalResidualNorm <= options.residualTol) {
            result.converged = true;
            return;
        }
    }
    result.iterations = options.maxIterations;
}

/// Adapts a dense-only callback to the SystemMatrix signature (deprecated
/// entry points; the workspace is always dense-bound there).
NewtonSystemFn wrapDense(const DenseNewtonSystemFn& system) {
    return [&system](const Vector& x, Vector& residual,
                     SystemMatrix& jacobian) {
        system(x, residual, jacobian.dense());
    };
}

}  // namespace

NewtonResult solveNewton(const NewtonSystemFn& system, Vector& x,
                         std::size_t nodeRows, const NewtonOptions& options,
                         LinearSolver& solver, NewtonWorkspace& ws,
                         SimStats* stats) {
    require(nodeRows <= x.size(), "solveNewton: nodeRows exceeds system size");
    require(ws.jacobian.bound() && ws.jacobian.dimension() == x.size(),
            "solveNewton: workspace Jacobian not bound to the system size");
    ws.residual.resize(x.size());
    ws.dx.resize(x.size());
    NewtonResult result;
    runFullNewton(system, x, nodeRows, options, solver, ws, stats, result);
    observeSolve(result);
    return result;
}

NewtonResult solveNewtonChord(const NewtonSystemFn& system,
                              const NewtonResidualFn& residualOnly, Vector& x,
                              std::size_t nodeRows,
                              const NewtonOptions& options,
                              LinearSolver& solver, bool reuseFactorization,
                              NewtonWorkspace& ws, SimStats* stats) {
    require(nodeRows <= x.size(),
            "solveNewtonChord: nodeRows exceeds system size");
    require(ws.jacobian.bound() && ws.jacobian.dimension() == x.size(),
            "solveNewtonChord: workspace Jacobian not bound to the system "
            "size");
    SHTRACE_FINE_SPAN("newton.solve");
    const std::size_t n = x.size();
    NewtonResult result;
    ws.residual.resize(n);
    ws.dx.resize(n);

    if (reuseFactorization && solver.valid() && solver.dimension() == n) {
        double prevUpdateNorm = std::numeric_limits<double>::infinity();
        for (int it = 1; it <= options.chordMaxIterations; ++it) {
            residualOnly(x, ws.residual);
            const double residualNorm = ws.residual.normInf();

            ws.dx = ws.residual;
            solver.solveInPlace(ws.dx, stats);
            const double updateNorm = ws.dx.normInf();

            // A step large enough to need damping means the iterate left the
            // basin the stale Jacobian was factored in -- bail WITHOUT
            // applying and let full Newton handle it with damping.
            if (updateNorm > options.maxUpdate) {
                break;
            }
            // Linear chord convergence demands geometric decay; a stalled or
            // growing update says the stale Jacobian has drifted too far.
            if (it > 1 && updateNorm > options.chordContraction * prevUpdateNorm) {
                break;
            }
            prevUpdateNorm = updateNorm;

            const bool updateConverged =
                applyUpdate(x, ws.dx, 1.0, nodeRows, options);
            ++result.chordIterations;
            if (stats != nullptr) {
                ++stats->chordIterations;
                ++stats->bypassedFactorizations;
            }
            result.finalResidualNorm = residualNorm;
            result.finalUpdateNorm = updateNorm;

            // Same two-criterion test as full Newton: the accepted solution
            // is within the same tolerance no matter which phase found it.
            if (updateConverged && residualNorm <= options.residualTol) {
                result.converged = true;
                observeSolve(result);
                return result;
            }
        }
    }

    result.refactored = true;
    runFullNewton(system, x, nodeRows, options, solver, ws, stats, result);
    observeSolve(result);
    return result;
}

// ------------------------------------------------- deprecated dense shims ---

NewtonResult solveNewton(const DenseNewtonSystemFn& system, Vector& x,
                         std::size_t nodeRows, const NewtonOptions& options,
                         SimStats* stats, LuFactorization* finalFactorization) {
    NewtonWorkspace ws;
    ws.resize(x.size());
    DenseLinearSolver solver;
    if (finalFactorization != nullptr) {
        // Move the caller's buffers in so they get recycled, and the factors
        // move back out below -- same storage lifecycle as before PR 6.
        solver.lu() = std::move(*finalFactorization);
    }
    const NewtonResult result = solveNewton(wrapDense(system), x, nodeRows,
                                            options, solver, ws, stats);
    if (finalFactorization != nullptr) {
        *finalFactorization = std::move(solver.lu());
    }
    return result;
}

NewtonResult solveNewtonChord(const DenseNewtonSystemFn& system,
                              const NewtonResidualFn& residualOnly, Vector& x,
                              std::size_t nodeRows,
                              const NewtonOptions& options,
                              LuFactorization& lu, bool reuseFactorization,
                              NewtonWorkspace& ws, SimStats* stats) {
    ws.resize(x.size());
    DenseLinearSolver solver;
    solver.lu() = std::move(lu);
    const NewtonResult result =
        solveNewtonChord(wrapDense(system), residualOnly, x, nodeRows, options,
                         solver, reuseFactorization, ws, stats);
    lu = std::move(solver.lu());
    return result;
}

}  // namespace shtrace
