#include "shtrace/devices/resistor.hpp"

#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
    require(resistance > 0.0, "Resistor ", this->name(),
            ": resistance must be positive, got ", resistance);
}

void Resistor::eval(const EvalContext& ctx, Assembler& out) const {
    const double g = 1.0 / resistance_;
    const double va = Assembler::nodeVoltage(ctx.x, a_);
    const double vb = Assembler::nodeVoltage(ctx.x, b_);
    const double i = g * (va - vb);
    out.addCurrent(a_, i);
    out.addCurrent(b_, -i);
    out.addConductance(a_, a_, g);
    out.addConductance(a_, b_, -g);
    out.addConductance(b_, a_, -g);
    out.addConductance(b_, b_, g);
}

void Resistor::evalResidual(const EvalContext& ctx, Assembler& out) const {
    const double g = 1.0 / resistance_;
    const double va = Assembler::nodeVoltage(ctx.x, a_);
    const double vb = Assembler::nodeVoltage(ctx.x, b_);
    const double i = g * (va - vb);
    out.addCurrent(a_, i);
    out.addCurrent(b_, -i);
}


void Resistor::describe(std::ostream& os) const {
    os << "R " << a_.index << ' ' << b_.index << ' '
       << toHexFloat(resistance_);
}

}  // namespace shtrace
