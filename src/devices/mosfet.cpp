#include "shtrace/devices/mosfet.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
               NodeId bulk, const MosfetParams& params)
    : Device(std::move(name)),
      drain_(drain),
      gate_(gate),
      source_(source),
      bulk_(bulk),
      params_(params) {
    require(params.kp > 0.0, "Mosfet ", this->name(), ": kp must be positive");
    require(params.w > 0.0 && params.l > 0.0, "Mosfet ", this->name(),
            ": W and L must be positive");
    require(params.vt0 >= 0.0, "Mosfet ", this->name(),
            ": vt0 is a magnitude (>= 0) for both types");
    require(params.lambda >= 0.0 && params.gamma >= 0.0 && params.phi > 0.0,
            "Mosfet ", this->name(), ": lambda/gamma/phi out of range");
}

MosfetOperatingPoint Mosfet::operatingPoint(double vd, double vg, double vs,
                                            double vb) const {
    const double sgn = (params_.type == MosfetType::Nmos) ? 1.0 : -1.0;
    return shichmanHodgesOp(sgn, params_.vt0, params_.beta(), params_.lambda,
                            params_.gamma, params_.phi, vd, vg, vs, vb);
}

void Mosfet::stampLinearCap(Assembler& out, const Vector& x, NodeId a,
                            NodeId b, double c) const {
    if (c <= 0.0) {
        return;
    }
    const double va = Assembler::nodeVoltage(x, a);
    const double vb = Assembler::nodeVoltage(x, b);
    const double q = c * (va - vb);
    out.addCharge(a, q);
    out.addCharge(b, -q);
    out.addCapacitance(a, a, c);
    out.addCapacitance(a, b, -c);
    out.addCapacitance(b, a, -c);
    out.addCapacitance(b, b, c);
}

void Mosfet::eval(const EvalContext& ctx, Assembler& out) const {
    const double vd = Assembler::nodeVoltage(ctx.x, drain_);
    const double vg = Assembler::nodeVoltage(ctx.x, gate_);
    const double vs = Assembler::nodeVoltage(ctx.x, source_);
    const double vb = Assembler::nodeVoltage(ctx.x, bulk_);
    stampWithOp(ctx, out, operatingPoint(vd, vg, vs, vb));
}

void Mosfet::stampWithOp(const EvalContext& ctx, Assembler& out,
                         const MosfetOperatingPoint& op) const {
    const double sgn = (params_.type == MosfetType::Nmos) ? 1.0 : -1.0;

    // Effective drain/source after the symmetry swap: conduction current
    // flows from dEff to sEff in the normalized frame.
    const NodeId dEff = op.swapped ? source_ : drain_;
    const NodeId sEff = op.swapped ? drain_ : source_;

    // In terminal voltages, the residual at dEff is sgn*id(vgs, vds, vbs)
    // with vgs = sgn*(Vg - VsEff) etc., so the sgn factors cancel in every
    // Jacobian entry:
    const double i = sgn * op.id;
    out.addCurrent(dEff, i);
    out.addCurrent(sEff, -i);

    const double gSum = op.gm + op.gds + op.gmb;
    out.addConductance(dEff, gate_, op.gm);
    out.addConductance(dEff, dEff, op.gds);
    out.addConductance(dEff, bulk_, op.gmb);
    out.addConductance(dEff, sEff, -gSum);
    out.addConductance(sEff, gate_, -op.gm);
    out.addConductance(sEff, dEff, -op.gds);
    out.addConductance(sEff, bulk_, -op.gmb);
    out.addConductance(sEff, sEff, gSum);

    // Meyer-simplified constant capacitances on the ACTUAL terminals.
    stampLinearCap(out, ctx.x, gate_, source_, params_.cgs);
    stampLinearCap(out, ctx.x, gate_, drain_, params_.cgd);
    stampLinearCap(out, ctx.x, gate_, bulk_, params_.cgb);
    stampLinearCap(out, ctx.x, drain_, bulk_, params_.cdb);
    stampLinearCap(out, ctx.x, source_, bulk_, params_.csb);
}

void Mosfet::stampLinearCapCharge(Assembler& out, const Vector& x, NodeId a,
                                  NodeId b, double c) {
    if (c <= 0.0) {
        return;
    }
    const double va = Assembler::nodeVoltage(x, a);
    const double vb = Assembler::nodeVoltage(x, b);
    const double q = c * (va - vb);
    out.addCharge(a, q);
    out.addCharge(b, -q);
}

void Mosfet::evalResidual(const EvalContext& ctx, Assembler& out) const {
    const double vd = Assembler::nodeVoltage(ctx.x, drain_);
    const double vg = Assembler::nodeVoltage(ctx.x, gate_);
    const double vs = Assembler::nodeVoltage(ctx.x, source_);
    const double vb = Assembler::nodeVoltage(ctx.x, bulk_);

    // operatingPoint() computes gm/gds/gmb alongside id for negligible extra
    // cost; the saving here is skipping the eight conductance stamps and the
    // capacitance stamps.
    stampResidualWithOp(ctx, out, operatingPoint(vd, vg, vs, vb));
}

void Mosfet::stampResidualWithOp(const EvalContext& ctx, Assembler& out,
                                 const MosfetOperatingPoint& op) const {
    const double sgn = (params_.type == MosfetType::Nmos) ? 1.0 : -1.0;
    const NodeId dEff = op.swapped ? source_ : drain_;
    const NodeId sEff = op.swapped ? drain_ : source_;
    const double i = sgn * op.id;
    out.addCurrent(dEff, i);
    out.addCurrent(sEff, -i);

    stampLinearCapCharge(out, ctx.x, gate_, source_, params_.cgs);
    stampLinearCapCharge(out, ctx.x, gate_, drain_, params_.cgd);
    stampLinearCapCharge(out, ctx.x, gate_, bulk_, params_.cgb);
    stampLinearCapCharge(out, ctx.x, drain_, bulk_, params_.cdb);
    stampLinearCapCharge(out, ctx.x, source_, bulk_, params_.csb);
}

void Mosfet::stampPattern(Assembler& out) const {
    // The symmetry swap moves the conduction stamps between drain and
    // source depending on sign(vds), so the union covers BOTH orientations:
    // rows {d, s} x cols {g, d, s, b}.
    const NodeId rows[2] = {drain_, source_};
    const NodeId cols[4] = {gate_, drain_, source_, bulk_};
    for (const NodeId r : rows) {
        for (const NodeId c : cols) {
            out.addConductance(r, c, 0.0);
        }
    }
    const NodeId capPairs[5][2] = {{gate_, source_},
                                   {gate_, drain_},
                                   {gate_, bulk_},
                                   {drain_, bulk_},
                                   {source_, bulk_}};
    const double capVals[5] = {params_.cgs, params_.cgd, params_.cgb,
                               params_.cdb, params_.csb};
    for (int i = 0; i < 5; ++i) {
        if (capVals[i] <= 0.0) {
            continue;
        }
        const NodeId a = capPairs[i][0];
        const NodeId b = capPairs[i][1];
        out.addCapacitance(a, a, 0.0);
        out.addCapacitance(a, b, 0.0);
        out.addCapacitance(b, a, 0.0);
        out.addCapacitance(b, b, 0.0);
    }
}


void Mosfet::describe(std::ostream& os) const {
    os << "M " << drain_.index << ' ' << gate_.index << ' ' << source_.index
       << ' ' << bulk_.index
       << (params_.type == MosfetType::Nmos ? " nmos " : " pmos ")
       << toHexFloat(params_.vt0) << ' ' << toHexFloat(params_.kp) << ' '
       << toHexFloat(params_.lambda) << ' ' << toHexFloat(params_.gamma)
       << ' ' << toHexFloat(params_.phi) << ' ' << toHexFloat(params_.w)
       << ' ' << toHexFloat(params_.l) << ' ' << toHexFloat(params_.cgs)
       << ' ' << toHexFloat(params_.cgd) << ' ' << toHexFloat(params_.cgb)
       << ' ' << toHexFloat(params_.cdb) << ' ' << toHexFloat(params_.csb);
}

}  // namespace shtrace
