#include "shtrace/devices/mosfet.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
               NodeId bulk, const MosfetParams& params)
    : Device(std::move(name)),
      drain_(drain),
      gate_(gate),
      source_(source),
      bulk_(bulk),
      params_(params) {
    require(params.kp > 0.0, "Mosfet ", this->name(), ": kp must be positive");
    require(params.w > 0.0 && params.l > 0.0, "Mosfet ", this->name(),
            ": W and L must be positive");
    require(params.vt0 >= 0.0, "Mosfet ", this->name(),
            ": vt0 is a magnitude (>= 0) for both types");
    require(params.lambda >= 0.0 && params.gamma >= 0.0 && params.phi > 0.0,
            "Mosfet ", this->name(), ": lambda/gamma/phi out of range");
}

MosfetOperatingPoint Mosfet::operatingPoint(double vd, double vg, double vs,
                                            double vb) const {
    const double sgn = (params_.type == MosfetType::Nmos) ? 1.0 : -1.0;
    MosfetOperatingPoint op;

    // Normalize polarities so the NMOS equations apply.
    double nvd = sgn * vd;
    double nvs = sgn * vs;
    const double nvg = sgn * vg;
    const double nvb = sgn * vb;

    // The level-1 model is symmetric: for vds < 0 exchange drain and source.
    op.swapped = nvd < nvs;
    if (op.swapped) {
        std::swap(nvd, nvs);
    }
    const double vgs = nvg - nvs;
    const double vds = nvd - nvs;
    const double vbs = nvb - nvs;

    // Threshold with body effect; clamp the sqrt argument to keep the model
    // defined (and C1) for forward-biased bulk junctions during iterates.
    double vt = params_.vt0;
    double dvtDvbs = 0.0;
    if (params_.gamma > 0.0) {
        const double kMinArg = 1e-4;
        const double arg = std::max(params_.phi - vbs, kMinArg);
        vt = params_.vt0 +
             params_.gamma * (std::sqrt(arg) - std::sqrt(params_.phi));
        if (params_.phi - vbs > kMinArg) {
            dvtDvbs = -params_.gamma / (2.0 * std::sqrt(arg));
        }
    }

    const double vov = vgs - vt;
    const double beta = params_.beta();
    if (vov <= 0.0) {
        op.region = 0;  // cutoff
        return op;
    }
    const double clm = 1.0 + params_.lambda * vds;
    if (vds < vov) {
        op.region = 1;  // triode
        const double shape = vov * vds - 0.5 * vds * vds;
        op.id = beta * shape * clm;
        op.gm = beta * vds * clm;
        op.gds = beta * (vov - vds) * clm + beta * shape * params_.lambda;
    } else {
        op.region = 2;  // saturation
        op.id = 0.5 * beta * vov * vov * clm;
        op.gm = beta * vov * clm;
        op.gds = 0.5 * beta * vov * vov * params_.lambda;
    }
    // dId/dvbs = dId/dvt * dvt/dvbs = -gm * dvt/dvbs.
    op.gmb = -op.gm * dvtDvbs;
    return op;
}

void Mosfet::stampLinearCap(Assembler& out, const Vector& x, NodeId a,
                            NodeId b, double c) const {
    if (c <= 0.0) {
        return;
    }
    const double va = Assembler::nodeVoltage(x, a);
    const double vb = Assembler::nodeVoltage(x, b);
    const double q = c * (va - vb);
    out.addCharge(a, q);
    out.addCharge(b, -q);
    out.addCapacitance(a, a, c);
    out.addCapacitance(a, b, -c);
    out.addCapacitance(b, a, -c);
    out.addCapacitance(b, b, c);
}

void Mosfet::eval(const EvalContext& ctx, Assembler& out) const {
    const double vd = Assembler::nodeVoltage(ctx.x, drain_);
    const double vg = Assembler::nodeVoltage(ctx.x, gate_);
    const double vs = Assembler::nodeVoltage(ctx.x, source_);
    const double vb = Assembler::nodeVoltage(ctx.x, bulk_);

    const MosfetOperatingPoint op = operatingPoint(vd, vg, vs, vb);
    const double sgn = (params_.type == MosfetType::Nmos) ? 1.0 : -1.0;

    // Effective drain/source after the symmetry swap: conduction current
    // flows from dEff to sEff in the normalized frame.
    const NodeId dEff = op.swapped ? source_ : drain_;
    const NodeId sEff = op.swapped ? drain_ : source_;

    // In terminal voltages, the residual at dEff is sgn*id(vgs, vds, vbs)
    // with vgs = sgn*(Vg - VsEff) etc., so the sgn factors cancel in every
    // Jacobian entry:
    const double i = sgn * op.id;
    out.addCurrent(dEff, i);
    out.addCurrent(sEff, -i);

    const double gSum = op.gm + op.gds + op.gmb;
    out.addConductance(dEff, gate_, op.gm);
    out.addConductance(dEff, dEff, op.gds);
    out.addConductance(dEff, bulk_, op.gmb);
    out.addConductance(dEff, sEff, -gSum);
    out.addConductance(sEff, gate_, -op.gm);
    out.addConductance(sEff, dEff, -op.gds);
    out.addConductance(sEff, bulk_, -op.gmb);
    out.addConductance(sEff, sEff, gSum);

    // Meyer-simplified constant capacitances on the ACTUAL terminals.
    stampLinearCap(out, ctx.x, gate_, source_, params_.cgs);
    stampLinearCap(out, ctx.x, gate_, drain_, params_.cgd);
    stampLinearCap(out, ctx.x, gate_, bulk_, params_.cgb);
    stampLinearCap(out, ctx.x, drain_, bulk_, params_.cdb);
    stampLinearCap(out, ctx.x, source_, bulk_, params_.csb);
}

void Mosfet::stampLinearCapCharge(Assembler& out, const Vector& x, NodeId a,
                                  NodeId b, double c) {
    if (c <= 0.0) {
        return;
    }
    const double va = Assembler::nodeVoltage(x, a);
    const double vb = Assembler::nodeVoltage(x, b);
    const double q = c * (va - vb);
    out.addCharge(a, q);
    out.addCharge(b, -q);
}

void Mosfet::evalResidual(const EvalContext& ctx, Assembler& out) const {
    const double vd = Assembler::nodeVoltage(ctx.x, drain_);
    const double vg = Assembler::nodeVoltage(ctx.x, gate_);
    const double vs = Assembler::nodeVoltage(ctx.x, source_);
    const double vb = Assembler::nodeVoltage(ctx.x, bulk_);

    // operatingPoint() computes gm/gds/gmb alongside id for negligible extra
    // cost; the saving here is skipping the eight conductance stamps and the
    // capacitance stamps below.
    const MosfetOperatingPoint op = operatingPoint(vd, vg, vs, vb);
    const double sgn = (params_.type == MosfetType::Nmos) ? 1.0 : -1.0;
    const NodeId dEff = op.swapped ? source_ : drain_;
    const NodeId sEff = op.swapped ? drain_ : source_;
    const double i = sgn * op.id;
    out.addCurrent(dEff, i);
    out.addCurrent(sEff, -i);

    stampLinearCapCharge(out, ctx.x, gate_, source_, params_.cgs);
    stampLinearCapCharge(out, ctx.x, gate_, drain_, params_.cgd);
    stampLinearCapCharge(out, ctx.x, gate_, bulk_, params_.cgb);
    stampLinearCapCharge(out, ctx.x, drain_, bulk_, params_.cdb);
    stampLinearCapCharge(out, ctx.x, source_, bulk_, params_.csb);
}


void Mosfet::describe(std::ostream& os) const {
    os << "M " << drain_.index << ' ' << gate_.index << ' ' << source_.index
       << ' ' << bulk_.index
       << (params_.type == MosfetType::Nmos ? " nmos " : " pmos ")
       << toHexFloat(params_.vt0) << ' ' << toHexFloat(params_.kp) << ' '
       << toHexFloat(params_.lambda) << ' ' << toHexFloat(params_.gamma)
       << ' ' << toHexFloat(params_.phi) << ' ' << toHexFloat(params_.w)
       << ' ' << toHexFloat(params_.l) << ' ' << toHexFloat(params_.cgs)
       << ' ' << toHexFloat(params_.cgd) << ' ' << toHexFloat(params_.cgb)
       << ' ' << toHexFloat(params_.cdb) << ' ' << toHexFloat(params_.csb);
}

}  // namespace shtrace
