#include "shtrace/devices/sources.hpp"

#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

namespace {
const SkewParametricWaveform* asSkewWave(const Waveform& w) {
    return dynamic_cast<const SkewParametricWaveform*>(&w);
}
}  // namespace

// --------------------------------------------------------- VoltageSource ---

VoltageSource::VoltageSource(std::string name, NodeId pos, NodeId neg,
                             std::shared_ptr<const Waveform> waveform)
    : Device(std::move(name)),
      pos_(pos),
      neg_(neg),
      waveform_(std::move(waveform)) {
    require(waveform_ != nullptr, "VoltageSource ", this->name(),
            ": null waveform");
    require(!(pos == neg), "VoltageSource ", this->name(),
            ": terminals must differ");
}

VoltageSource::VoltageSource(std::string name, NodeId pos, NodeId neg,
                             double dcValue)
    : VoltageSource(std::move(name), pos, neg,
                    std::make_shared<DcWaveform>(dcValue)) {}

void VoltageSource::eval(const EvalContext& ctx, Assembler& out) const {
    require(branchRow_ >= 0, "VoltageSource ", name(),
            ": eval before finalize()");
    const double i = ctx.x[static_cast<std::size_t>(branchRow_)];
    // Branch current i is defined INTO the positive terminal through the
    // source; it appears in both node KCL rows.
    out.addCurrent(pos_, i);
    out.addCurrent(neg_, -i);
    out.addBranchToNode(pos_, branchRow_, 1.0);
    out.addBranchToNode(neg_, branchRow_, -1.0);

    // Branch equation: v(pos) - v(neg) - u(t) = 0.
    const double vpos = Assembler::nodeVoltage(ctx.x, pos_);
    const double vneg = Assembler::nodeVoltage(ctx.x, neg_);
    out.addToF(branchRow_, vpos - vneg - waveform_->value(ctx.time));
    out.addToG(branchRow_, pos_, 1.0);
    out.addToG(branchRow_, neg_, -1.0);
}

void VoltageSource::evalResidual(const EvalContext& ctx,
                                 Assembler& out) const {
    require(branchRow_ >= 0, "VoltageSource ", name(),
            ": eval before finalize()");
    const double i = ctx.x[static_cast<std::size_t>(branchRow_)];
    out.addCurrent(pos_, i);
    out.addCurrent(neg_, -i);
    const double vpos = Assembler::nodeVoltage(ctx.x, pos_);
    const double vneg = Assembler::nodeVoltage(ctx.x, neg_);
    out.addToF(branchRow_, vpos - vneg - waveform_->value(ctx.time));
}

void VoltageSource::addSkewDerivative(double t, SkewParam p,
                                      Vector& rhs) const {
    if (const auto* w = asSkewWave(*waveform_)) {
        rhs[static_cast<std::size_t>(branchRow_)] -= w->skewDerivative(t, p);
    }
}

void VoltageSource::addAcStimulus(Vector& rhs) const {
    // Branch equation carries -u: moving the stimulus to the right-hand
    // side of (G + jwC)x = s gives +magnitude at the branch row.
    if (acMagnitude_ != 0.0) {
        rhs[static_cast<std::size_t>(branchRow_)] += acMagnitude_;
    }
}

void VoltageSource::breakpoints(double t0, double t1,
                                std::vector<double>& out) const {
    waveform_->breakpoints(t0, t1, out);
}

// --------------------------------------------------------- CurrentSource ---

CurrentSource::CurrentSource(std::string name, NodeId pos, NodeId neg,
                             std::shared_ptr<const Waveform> waveform)
    : Device(std::move(name)),
      pos_(pos),
      neg_(neg),
      waveform_(std::move(waveform)) {
    require(waveform_ != nullptr, "CurrentSource ", this->name(),
            ": null waveform");
}

CurrentSource::CurrentSource(std::string name, NodeId pos, NodeId neg,
                             double dcValue)
    : CurrentSource(std::move(name), pos, neg,
                    std::make_shared<DcWaveform>(dcValue)) {}

void CurrentSource::eval(const EvalContext& ctx, Assembler& out) const {
    const double i = waveform_->value(ctx.time);
    // Positive source current leaves pos (through the source to neg).
    out.addCurrent(pos_, i);
    out.addCurrent(neg_, -i);
}

void CurrentSource::evalResidual(const EvalContext& ctx,
                                 Assembler& out) const {
    // eval() stamps no Jacobian entries, so the residual pass is identical.
    eval(ctx, out);
}

void CurrentSource::addSkewDerivative(double t, SkewParam p,
                                      Vector& rhs) const {
    if (const auto* w = asSkewWave(*waveform_)) {
        const double z = w->skewDerivative(t, p);
        if (!pos_.isGround()) {
            rhs[static_cast<std::size_t>(pos_.index)] += z;
        }
        if (!neg_.isGround()) {
            rhs[static_cast<std::size_t>(neg_.index)] -= z;
        }
    }
}

void CurrentSource::addAcStimulus(Vector& rhs) const {
    // KCL rows carry +u at pos: on the right-hand side the signs flip.
    if (acMagnitude_ != 0.0) {
        if (!pos_.isGround()) {
            rhs[static_cast<std::size_t>(pos_.index)] -= acMagnitude_;
        }
        if (!neg_.isGround()) {
            rhs[static_cast<std::size_t>(neg_.index)] += acMagnitude_;
        }
    }
}

void CurrentSource::breakpoints(double t0, double t1,
                                std::vector<double>& out) const {
    waveform_->breakpoints(t0, t1, out);
}


void VoltageSource::describe(std::ostream& os) const {
    os << "V " << pos_.index << ' ' << neg_.index << ' ';
    waveform_->describe(os);
}

void CurrentSource::describe(std::ostream& os) const {
    os << "I " << pos_.index << ' ' << neg_.index << ' ';
    waveform_->describe(os);
}

}  // namespace shtrace
