#include "shtrace/devices/capacitor.hpp"

#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance) {
    require(capacitance > 0.0, "Capacitor ", this->name(),
            ": capacitance must be positive, got ", capacitance);
}

void Capacitor::eval(const EvalContext& ctx, Assembler& out) const {
    const double va = Assembler::nodeVoltage(ctx.x, a_);
    const double vb = Assembler::nodeVoltage(ctx.x, b_);
    const double charge = capacitance_ * (va - vb);
    out.addCharge(a_, charge);
    out.addCharge(b_, -charge);
    out.addCapacitance(a_, a_, capacitance_);
    out.addCapacitance(a_, b_, -capacitance_);
    out.addCapacitance(b_, a_, -capacitance_);
    out.addCapacitance(b_, b_, capacitance_);
}

void Capacitor::evalResidual(const EvalContext& ctx, Assembler& out) const {
    const double va = Assembler::nodeVoltage(ctx.x, a_);
    const double vb = Assembler::nodeVoltage(ctx.x, b_);
    const double charge = capacitance_ * (va - vb);
    out.addCharge(a_, charge);
    out.addCharge(b_, -charge);
}


void Capacitor::describe(std::ostream& os) const {
    os << "C " << a_.index << ' ' << b_.index << ' '
       << toHexFloat(capacitance_);
}

}  // namespace shtrace
