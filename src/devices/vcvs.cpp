#include "shtrace/devices/vcvs.hpp"

#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

Vcvs::Vcvs(std::string name, NodeId pos, NodeId neg, NodeId ctrlPos,
           NodeId ctrlNeg, double gain)
    : Device(std::move(name)),
      pos_(pos),
      neg_(neg),
      ctrlPos_(ctrlPos),
      ctrlNeg_(ctrlNeg),
      gain_(gain) {
    require(!(pos == neg), "Vcvs ", this->name(), ": terminals must differ");
}

void Vcvs::eval(const EvalContext& ctx, Assembler& out) const {
    require(branchRow_ >= 0, "Vcvs ", name(), ": eval before finalize()");
    const double i = ctx.x[static_cast<std::size_t>(branchRow_)];
    out.addCurrent(pos_, i);
    out.addCurrent(neg_, -i);
    out.addBranchToNode(pos_, branchRow_, 1.0);
    out.addBranchToNode(neg_, branchRow_, -1.0);

    const double vp = Assembler::nodeVoltage(ctx.x, pos_);
    const double vn = Assembler::nodeVoltage(ctx.x, neg_);
    const double vcp = Assembler::nodeVoltage(ctx.x, ctrlPos_);
    const double vcn = Assembler::nodeVoltage(ctx.x, ctrlNeg_);
    out.addToF(branchRow_, vp - vn - gain_ * (vcp - vcn));
    out.addToG(branchRow_, pos_, 1.0);
    out.addToG(branchRow_, neg_, -1.0);
    out.addToG(branchRow_, ctrlPos_, -gain_);
    out.addToG(branchRow_, ctrlNeg_, gain_);
}

void Vcvs::evalResidual(const EvalContext& ctx, Assembler& out) const {
    require(branchRow_ >= 0, "Vcvs ", name(), ": eval before finalize()");
    const double i = ctx.x[static_cast<std::size_t>(branchRow_)];
    out.addCurrent(pos_, i);
    out.addCurrent(neg_, -i);

    const double vp = Assembler::nodeVoltage(ctx.x, pos_);
    const double vn = Assembler::nodeVoltage(ctx.x, neg_);
    const double vcp = Assembler::nodeVoltage(ctx.x, ctrlPos_);
    const double vcn = Assembler::nodeVoltage(ctx.x, ctrlNeg_);
    out.addToF(branchRow_, vp - vn - gain_ * (vcp - vcn));
}


void Vcvs::describe(std::ostream& os) const {
    os << "E " << pos_.index << ' ' << neg_.index << ' ' << ctrlPos_.index
       << ' ' << ctrlNeg_.index << ' ' << toHexFloat(gain_);
}

}  // namespace shtrace
