#include "shtrace/devices/mosfet_batch.hpp"

namespace shtrace {

void evaluateMosfetBatch(const MosfetBatchPlan& plan, const Vector& x,
                         MosfetBatchScratch& scratch) {
    const std::size_t n = plan.size();
    scratch.op.resize(n);
    const auto volt = [&x](int node) {
        return node < 0 ? 0.0 : x[static_cast<std::size_t>(node)];
    };
    for (std::size_t i = 0; i < n; ++i) {
        scratch.op[i] = shichmanHodgesOp(
            plan.sgn[i], plan.vt0[i], plan.beta[i], plan.lambda[i],
            plan.gamma[i], plan.phi[i], volt(plan.drain[i]),
            volt(plan.gate[i]), volt(plan.source[i]), volt(plan.bulk[i]));
    }
}

}  // namespace shtrace
