#include "shtrace/devices/inductor.hpp"

#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance)
    : Device(std::move(name)), a_(a), b_(b), inductance_(inductance) {
    require(inductance > 0.0, "Inductor ", this->name(),
            ": inductance must be positive, got ", inductance);
}

void Inductor::eval(const EvalContext& ctx, Assembler& out) const {
    require(branchRow_ >= 0, "Inductor ", name(), ": eval before finalize()");
    const double va = Assembler::nodeVoltage(ctx.x, a_);
    const double vb = Assembler::nodeVoltage(ctx.x, b_);
    const double i = ctx.x[static_cast<std::size_t>(branchRow_)];

    // KCL rows: branch current leaves a, enters b.
    out.addCurrent(a_, i);
    out.addCurrent(b_, -i);
    out.addBranchToNode(a_, branchRow_, 1.0);
    out.addBranchToNode(b_, branchRow_, -1.0);

    // Branch row: v(a) - v(b) - L di/dt = 0.
    out.addToF(branchRow_, va - vb);
    out.addToG(branchRow_, a_, 1.0);
    out.addToG(branchRow_, b_, -1.0);
    out.addToQ(branchRow_, -inductance_ * i);
    out.addToCRaw(branchRow_, branchRow_, -inductance_);
}

void Inductor::evalResidual(const EvalContext& ctx, Assembler& out) const {
    require(branchRow_ >= 0, "Inductor ", name(), ": eval before finalize()");
    const double va = Assembler::nodeVoltage(ctx.x, a_);
    const double vb = Assembler::nodeVoltage(ctx.x, b_);
    const double i = ctx.x[static_cast<std::size_t>(branchRow_)];
    out.addCurrent(a_, i);
    out.addCurrent(b_, -i);
    out.addToF(branchRow_, va - vb);
    out.addToQ(branchRow_, -inductance_ * i);
}


void Inductor::describe(std::ostream& os) const {
    os << "L " << a_.index << ' ' << b_.index << ' '
       << toHexFloat(inductance_);
}

}  // namespace shtrace
