#include "shtrace/devices/diode.hpp"

#include <cmath>
#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

Diode::Diode(std::string name, NodeId anode, NodeId cathode,
             const DiodeParams& params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode),
      params_(params) {
    require(params.is > 0.0 && params.n > 0.0 && params.vt > 0.0,
            "Diode ", this->name(), ": is, n, vt must be positive");
    require(params.m > 0.0 && params.m < 1.0, "Diode ", this->name(),
            ": grading coefficient must be in (0,1)");
    require(params.fc > 0.0 && params.fc < 1.0, "Diode ", this->name(),
            ": fc must be in (0,1)");
}

void Diode::currentAndConductance(const DiodeParams& p, double v,
                                  double& current, double& conductance) {
    const double nvt = p.n * p.vt;
    const double arg = v / nvt;
    if (arg > p.maxExpArg) {
        // Linear extension above the cap keeps the model C1 and prevents
        // overflow during wild Newton iterates.
        const double expMax = std::exp(p.maxExpArg);
        const double iMax = p.is * (expMax - 1.0);
        const double gMax = p.is * expMax / nvt;
        current = iMax + gMax * (v - p.maxExpArg * nvt);
        conductance = gMax;
    } else {
        const double e = std::exp(arg);
        current = p.is * (e - 1.0);
        conductance = p.is * e / nvt;
    }
}

void Diode::chargeAndCapacitance(const DiodeParams& p, double v,
                                 double& charge, double& capacitance) {
    charge = 0.0;
    capacitance = 0.0;
    if (p.cj0 > 0.0) {
        const double vSwitch = p.fc * p.vj;
        if (v < vSwitch) {
            const double u = 1.0 - v / p.vj;
            const double um = std::pow(u, 1.0 - p.m);
            charge = p.cj0 * p.vj / (1.0 - p.m) * (1.0 - um);
            capacitance = p.cj0 * std::pow(u, -p.m);
        } else {
            // SPICE forward-bias linearization of the depletion formula.
            const double f1 =
                p.vj / (1.0 - p.m) * (1.0 - std::pow(1.0 - p.fc, 1.0 - p.m));
            const double f2 = std::pow(1.0 - p.fc, 1.0 + p.m);
            const double f3 = 1.0 - p.fc * (1.0 + p.m);
            const double dv = v - vSwitch;
            // q is the integral of C(v') = cj0/f2 * (f3 + m v'/vj) from
            // vSwitch, so the quadratic term uses v^2 - vSwitch^2.
            charge = p.cj0 *
                     (f1 + (1.0 / f2) *
                               (f3 * dv + p.m / (2.0 * p.vj) *
                                              (v * v - vSwitch * vSwitch)));
            capacitance = p.cj0 / f2 * (f3 + p.m * v / p.vj);
        }
    }
    if (p.tt > 0.0) {
        double i = 0.0;
        double g = 0.0;
        currentAndConductance(p, v, i, g);
        charge += p.tt * i;
        capacitance += p.tt * g;
    }
}

void Diode::eval(const EvalContext& ctx, Assembler& out) const {
    const double va = Assembler::nodeVoltage(ctx.x, anode_);
    const double vc = Assembler::nodeVoltage(ctx.x, cathode_);
    const double v = va - vc;

    double i = 0.0;
    double g = 0.0;
    currentAndConductance(params_, v, i, g);
    out.addCurrent(anode_, i);
    out.addCurrent(cathode_, -i);
    out.addConductance(anode_, anode_, g);
    out.addConductance(anode_, cathode_, -g);
    out.addConductance(cathode_, anode_, -g);
    out.addConductance(cathode_, cathode_, g);

    double q = 0.0;
    double c = 0.0;
    chargeAndCapacitance(params_, v, q, c);
    if (q != 0.0 || c != 0.0) {
        out.addCharge(anode_, q);
        out.addCharge(cathode_, -q);
        out.addCapacitance(anode_, anode_, c);
        out.addCapacitance(anode_, cathode_, -c);
        out.addCapacitance(cathode_, anode_, -c);
        out.addCapacitance(cathode_, cathode_, c);
    }
}

void Diode::evalResidual(const EvalContext& ctx, Assembler& out) const {
    const double va = Assembler::nodeVoltage(ctx.x, anode_);
    const double vc = Assembler::nodeVoltage(ctx.x, cathode_);
    const double v = va - vc;

    // currentAndConductance / chargeAndCapacitance compute the derivative as
    // a byproduct of keeping i/q C1 at the region switches; recomputing both
    // keeps f/q bit-identical to eval() while the Assembler drops the
    // untaken Jacobian stamps.
    double i = 0.0;
    double g = 0.0;
    currentAndConductance(params_, v, i, g);
    out.addCurrent(anode_, i);
    out.addCurrent(cathode_, -i);

    double q = 0.0;
    double c = 0.0;
    chargeAndCapacitance(params_, v, q, c);
    if (q != 0.0 || c != 0.0) {
        out.addCharge(anode_, q);
        out.addCharge(cathode_, -q);
    }
}


void Diode::describe(std::ostream& os) const {
    os << "D " << anode_.index << ' ' << cathode_.index << ' '
       << toHexFloat(params_.is) << ' ' << toHexFloat(params_.n) << ' '
       << toHexFloat(params_.vt) << ' ' << toHexFloat(params_.cj0) << ' '
       << toHexFloat(params_.vj) << ' ' << toHexFloat(params_.m) << ' '
       << toHexFloat(params_.fc) << ' ' << toHexFloat(params_.tt) << ' '
       << toHexFloat(params_.maxExpArg);
}

}  // namespace shtrace
