#include "shtrace/devices/vccs.hpp"

#include <ostream>

#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

Vccs::Vccs(std::string name, NodeId pos, NodeId neg, NodeId ctrlPos,
           NodeId ctrlNeg, double transconductance)
    : Device(std::move(name)),
      pos_(pos),
      neg_(neg),
      ctrlPos_(ctrlPos),
      ctrlNeg_(ctrlNeg),
      gm_(transconductance) {}

void Vccs::eval(const EvalContext& ctx, Assembler& out) const {
    const double vc = Assembler::nodeVoltage(ctx.x, ctrlPos_) -
                      Assembler::nodeVoltage(ctx.x, ctrlNeg_);
    const double i = gm_ * vc;
    out.addCurrent(pos_, i);
    out.addCurrent(neg_, -i);
    out.addConductance(pos_, ctrlPos_, gm_);
    out.addConductance(pos_, ctrlNeg_, -gm_);
    out.addConductance(neg_, ctrlPos_, -gm_);
    out.addConductance(neg_, ctrlNeg_, gm_);
}

void Vccs::evalResidual(const EvalContext& ctx, Assembler& out) const {
    const double vc = Assembler::nodeVoltage(ctx.x, ctrlPos_) -
                      Assembler::nodeVoltage(ctx.x, ctrlNeg_);
    const double i = gm_ * vc;
    out.addCurrent(pos_, i);
    out.addCurrent(neg_, -i);
}


void Vccs::describe(std::ostream& os) const {
    os << "G " << pos_.index << ' ' << neg_.index << ' ' << ctrlPos_.index
       << ' ' << ctrlNeg_.index << ' ' << toHexFloat(gm_);
}

}  // namespace shtrace
