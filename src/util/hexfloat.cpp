#include "shtrace/util/hexfloat.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "shtrace/util/error.hpp"

namespace shtrace {

std::string toHexFloat(double v) {
    if (std::isnan(v)) {
        return "nan";
    }
    if (std::isinf(v)) {
        return v > 0.0 ? "inf" : "-inf";
    }
    // "%a" prints the shortest exact hex mantissa; the spelling is fully
    // determined by the bit pattern (no locale, no rounding mode).
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

double fromHexFloat(const std::string& text) {
    require(!text.empty(), "fromHexFloat: empty string");
    const char* begin = text.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    require(end == begin + text.size(),
            "fromHexFloat: not a number: '", text, "'");
    return v;
}

}  // namespace shtrace
