#include "shtrace/util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "shtrace/util/error.hpp"

namespace shtrace {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::addRow(std::vector<std::string> cells) {
    require(cells.size() == headers_.size(), "table row has ", cells.size(),
            " cells, expected ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string TablePrinter::toCell(double v) {
    std::ostringstream os;
    os << std::setprecision(6) << v;
    return os.str();
}

void TablePrinter::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto& row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto printRule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto printCells = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << std::setw(static_cast<int>(widths[c])) << std::left
               << cells[c] << ' ';
        }
        os << "|\n";
    };
    printRule();
    printCells(headers_);
    printRule();
    for (const auto& row : rows_) {
        printCells(row);
    }
    printRule();
}

struct CsvWriter::Impl {
    std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
    impl_->out.open(path);
    if (!impl_->out) {
        delete impl_;
        throw Error(message("cannot open CSV file '", path, "' for writing"));
    }
    impl_->out << std::setprecision(12);
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::writeHeader(std::initializer_list<std::string> names) {
    bool first = true;
    for (const auto& n : names) {
        if (!first) {
            impl_->out << ',';
        }
        impl_->out << n;
        first = false;
    }
    impl_->out << '\n';
}

void CsvWriter::writeRow(std::initializer_list<double> values) {
    bool first = true;
    for (double v : values) {
        if (!first) {
            impl_->out << ',';
        }
        impl_->out << v;
        first = false;
    }
    impl_->out << '\n';
}

}  // namespace shtrace
