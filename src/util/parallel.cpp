#include "shtrace/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "shtrace/obs/span.hpp"
#include "shtrace/obs/trace_context.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

int resolveThreadCount(int requested, std::size_t jobCount) noexcept {
    int threads = requested;
    if (threads <= 0) {
        const unsigned hc = std::thread::hardware_concurrency();
        threads = hc == 0 ? 1 : static_cast<int>(hc);
    }
    if (jobCount < static_cast<std::size_t>(threads)) {
        threads = static_cast<int>(jobCount);
    }
    return std::max(threads, 1);
}

void parallelRun(std::size_t jobCount,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 const ParallelOptions& options,
                 const ProgressCallback& onJobDone) {
    if (jobCount == 0) {
        return;
    }
    require(body != nullptr, "parallelRun: null job body");
    const int threads = resolveThreadCount(options.threads, jobCount);
    const std::size_t chunk =
        options.chunk < 1 ? 1 : static_cast<std::size_t>(options.chunk);

    if (threads == 1) {
        // Serial fast path: no pool, no atomics -- the historical batch
        // loop, byte for byte.
        for (std::size_t job = 0; job < jobCount; ++job) {
            body(job, 0);
            if (onJobDone) {
                onJobDone(job, jobCount);
            }
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    std::mutex mutex;  // guards firstFailure and serializes onJobDone
    std::string firstFailure;

    // Pool threads inherit the submitter's request identity so spans and
    // log lines recorded inside jobs stay attributable to the originating
    // request (the serial path above runs on the submitting thread and
    // needs nothing).
    const obs::RequestContext inherited = obs::currentRequestContext();

    const auto workerLoop = [&](std::size_t worker) {
        const obs::ScopedRequestContext requestScope(inherited);
        SHTRACE_SPAN("parallel.worker");
        for (;;) {
            if (stop.load(std::memory_order_relaxed)) {
                return;
            }
            const std::size_t start =
                next.fetch_add(chunk, std::memory_order_relaxed);
            if (start >= jobCount) {
                return;
            }
            const std::size_t end = std::min(jobCount, start + chunk);
            for (std::size_t job = start; job < end; ++job) {
                try {
                    SHTRACE_FINE_SPAN("parallel.job");
                    body(job, worker);
                } catch (const std::exception& e) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (firstFailure.empty()) {
                        firstFailure = e.what();
                    }
                    stop.store(true, std::memory_order_relaxed);
                    return;
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (firstFailure.empty()) {
                        firstFailure = "non-standard exception";
                    }
                    stop.store(true, std::memory_order_relaxed);
                    return;
                }
                if (onJobDone) {
                    std::lock_guard<std::mutex> lock(mutex);
                    onJobDone(job, jobCount);
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads) - 1);
    for (int worker = 1; worker < threads; ++worker) {
        pool.emplace_back(workerLoop, static_cast<std::size_t>(worker));
    }
    workerLoop(0);
    for (std::thread& t : pool) {
        t.join();
    }
    if (!firstFailure.empty()) {
        throw Error(
            message("parallelRun: job threw out of the batch: ",
                    firstFailure));
    }
}

}  // namespace shtrace
