#include "shtrace/util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

bool iequalsPrefix(std::string_view text, std::string_view lowerPrefix) {
    if (text.size() < lowerPrefix.size()) {
        return false;
    }
    for (std::size_t i = 0; i < lowerPrefix.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(text[i])) !=
            lowerPrefix[i]) {
            return false;
        }
    }
    return true;
}

/// Maps the trailing suffix of a numeric token to a scale factor.
double suffixScale(std::string_view rest) {
    if (rest.empty()) {
        return 1.0;
    }
    // Multi-letter suffixes first: "meg" and "mil" both start with 'm'.
    if (iequalsPrefix(rest, "meg")) {
        return 1e6;
    }
    if (iequalsPrefix(rest, "mil")) {
        return 25.4e-6;
    }
    switch (std::tolower(static_cast<unsigned char>(rest[0]))) {
        case 't': return 1e12;
        case 'g': return 1e9;
        case 'k': return 1e3;
        case 'm': return 1e-3;
        case 'u': return 1e-6;
        case 'n': return 1e-9;
        case 'p': return 1e-12;
        case 'f': return 1e-15;
        case 'a': return 1e-18;
        default: return 1.0;  // unrecognized letters are units ("V", "Ohm")
    }
}

}  // namespace

std::optional<double> parseEngineering(std::string_view text) {
    if (text.empty()) {
        return std::nullopt;
    }
    std::string buf(text);
    const char* begin = buf.c_str();
    char* end = nullptr;
    const double mantissa = std::strtod(begin, &end);
    if (end == begin) {
        return std::nullopt;
    }
    std::string_view rest(end);
    // Everything after the number must be alphabetic (suffix and/or unit).
    for (char c : rest) {
        if (std::isalpha(static_cast<unsigned char>(c)) == 0) {
            return std::nullopt;
        }
    }
    return mantissa * suffixScale(rest);
}

double parseEngineeringOrThrow(std::string_view text, int line) {
    const auto value = parseEngineering(text);
    if (!value) {
        throw ParseError(message("malformed number '", text, "'"), line);
    }
    return *value;
}

std::string formatEngineering(double value, std::string_view unit,
                              int significantDigits) {
    struct Band {
        double scale;
        const char* prefix;
    };
    // "Meg", not "M": in SPICE notation (which parseEngineering follows)
    // a leading 'm' is always milli, so mega must round-trip as "Meg".
    static constexpr Band kBands[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "Meg"}, {1e3, "k"},  {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
    };
    std::ostringstream os;
    os.precision(significantDigits);
    if (value == 0.0 || !std::isfinite(value)) {
        os << value << unit;
        return os.str();
    }
    const double mag = std::fabs(value);
    for (const Band& band : kBands) {
        if (mag >= band.scale * 0.9995) {
            os << value / band.scale << band.prefix << unit;
            return os.str();
        }
    }
    os << value << unit;
    return os.str();
}

}  // namespace shtrace
