#include "shtrace/util/stats.hpp"

#include <ostream>

namespace shtrace {

SimStats& SimStats::operator+=(const SimStats& other) noexcept {
    transientSolves += other.transientSolves;
    timeSteps += other.timeSteps;
    rejectedSteps += other.rejectedSteps;
    newtonIterations += other.newtonIterations;
    luFactorizations += other.luFactorizations;
    luSolves += other.luSolves;
    deviceEvaluations += other.deviceEvaluations;
    residualOnlyAssemblies += other.residualOnlyAssemblies;
    chordIterations += other.chordIterations;
    bypassedFactorizations += other.bypassedFactorizations;
    sensitivitySteps += other.sensitivitySteps;
    hEvaluations += other.hEvaluations;
    mpnrIterations += other.mpnrIterations;
    cacheHits += other.cacheHits;
    cacheMisses += other.cacheMisses;
    cacheWarmStarts += other.cacheWarmStarts;
    traceNonFiniteRejections += other.traceNonFiniteRejections;
    traceTransientRetries += other.traceTransientRetries;
    tracePlateauReseeds += other.tracePlateauReseeds;
    traceStepHalvings += other.traceStepHalvings;
    sparseRefactorizations += other.sparseRefactorizations;
    batchAssemblies += other.batchAssemblies;
    wallSeconds += other.wallSeconds;
    return *this;
}

std::ostream& operator<<(std::ostream& os, const SimStats& s) {
    os << "transients=" << s.transientSolves << " steps=" << s.timeSteps
       << " (+" << s.rejectedSteps << " rejected)"
       << " newton=" << s.newtonIterations << " lu=" << s.luFactorizations
       << "/" << s.luSolves << " devEval=" << s.deviceEvaluations
       << " sensSteps=" << s.sensitivitySteps << " hEval=" << s.hEvaluations
       << " mpnr=" << s.mpnrIterations;
    if (s.chordIterations != 0 || s.residualOnlyAssemblies != 0) {
        os << " chord=" << s.chordIterations
           << " residEval=" << s.residualOnlyAssemblies
           << " luBypassed=" << s.bypassedFactorizations;
    }
    if (s.cacheHits != 0 || s.cacheMisses != 0 || s.cacheWarmStarts != 0) {
        os << " cache=" << s.cacheHits << "h/" << s.cacheMisses << "m/"
           << s.cacheWarmStarts << "w";
    }
    if (s.sparseRefactorizations != 0 || s.batchAssemblies != 0) {
        os << " sparseRefactor=" << s.sparseRefactorizations
           << " batchAsm=" << s.batchAssemblies;
    }
    if (s.traceNonFiniteRejections != 0 || s.traceTransientRetries != 0 ||
        s.tracePlateauReseeds != 0 || s.traceStepHalvings != 0) {
        os << " trace=" << s.traceStepHalvings << "halve/"
           << s.traceTransientRetries << "retry/" << s.tracePlateauReseeds
           << "reseed/" << s.traceNonFiniteRejections << "nonfinite";
    }
    os << " wall=" << s.wallSeconds << "s";
    return os;
}

}  // namespace shtrace
