#include "shtrace/waveform/clock.hpp"

#include <cmath>
#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

ClockWaveform::ClockWaveform(const Spec& spec) : spec_(spec) {
    require(spec.period > 0.0, "ClockWaveform: period must be positive");
    require(spec.riseTime >= 0.0 && spec.fallTime >= 0.0,
            "ClockWaveform: negative rise/fall time");
    require(spec.dutyCycle > 0.0 && spec.dutyCycle < 1.0,
            "ClockWaveform: duty cycle must be in (0,1)");
    // The high interval (between 50% points) must fit the edges.
    require(spec.dutyCycle * spec.period >
                0.5 * (spec.riseTime + spec.fallTime),
            "ClockWaveform: duty cycle too small for edge times");
    require(
        (1.0 - spec.dutyCycle) * spec.period >
            0.5 * (spec.riseTime + spec.fallTime),
        "ClockWaveform: duty cycle too large for edge times");
}

double ClockWaveform::basePhaseValue(double tau) const {
    const Spec& s = spec_;
    // tau in [0, period), measured from the start of the rising edge.
    const double fallStart =
        0.5 * s.riseTime + s.dutyCycle * s.period - 0.5 * s.fallTime;
    if (tau < s.riseTime) {
        return s.v0 +
               (s.v1 - s.v0) * edgeProfile(s.shape, tau / s.riseTime);
    }
    if (tau < fallStart) {
        return s.v1;
    }
    if (tau < fallStart + s.fallTime) {
        return s.v1 + (s.v0 - s.v1) *
                          edgeProfile(s.shape, (tau - fallStart) / s.fallTime);
    }
    return s.v0;
}

double ClockWaveform::value(double t) const {
    const Spec& s = spec_;
    double base;
    if (t <= s.delay) {
        base = s.v0;
    } else {
        const double local = t - s.delay;
        base = basePhaseValue(local - s.period * std::floor(local / s.period));
    }
    return s.inverted ? (s.v0 + s.v1) - base : base;
}

void ClockWaveform::breakpoints(double t0, double t1,
                                std::vector<double>& out) const {
    const Spec& s = spec_;
    if (t1 <= s.delay) {
        return;
    }
    const double fallStart =
        0.5 * s.riseTime + s.dutyCycle * s.period - 0.5 * s.fallTime;
    const long firstCycle = static_cast<long>(
        std::floor((std::max(t0, s.delay) - s.delay) / s.period));
    for (long k = std::max(0L, firstCycle - 1);; ++k) {
        const double cycleStart = s.delay + static_cast<double>(k) * s.period;
        if (cycleStart > t1) {
            break;
        }
        const double corners[] = {cycleStart, cycleStart + s.riseTime,
                                  cycleStart + fallStart,
                                  cycleStart + fallStart + s.fallTime};
        for (double c : corners) {
            if (c > t0 && c < t1) {
                out.push_back(c);
            }
        }
    }
}

double ClockWaveform::risingEdgeMidpoint(int k) const {
    require(k >= 0, "ClockWaveform::risingEdgeMidpoint: negative edge index");
    return spec_.delay + 0.5 * spec_.riseTime +
           static_cast<double>(k) * spec_.period;
}


void ClockWaveform::describe(std::ostream& os) const {
    os << "clock " << toHexFloat(spec_.v0) << ' ' << toHexFloat(spec_.v1)
       << ' ' << toHexFloat(spec_.period) << ' ' << toHexFloat(spec_.delay)
       << ' ' << toHexFloat(spec_.riseTime) << ' '
       << toHexFloat(spec_.fallTime) << ' ' << toHexFloat(spec_.dutyCycle)
       << " inv=" << (spec_.inverted ? 1 : 0)
       << " shape=" << static_cast<int>(spec_.shape);
}

}  // namespace shtrace
