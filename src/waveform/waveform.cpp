#include "shtrace/waveform/waveform.hpp"

#include <ostream>

#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

void Waveform::breakpoints(double, double, std::vector<double>&) const {}

void DcWaveform::describe(std::ostream& os) const {
    os << "dc " << toHexFloat(level_);
}

double edgeProfile(EdgeShape shape, double u) {
    if (u <= 0.0) {
        return 0.0;
    }
    if (u >= 1.0) {
        return 1.0;
    }
    switch (shape) {
        case EdgeShape::Linear:
            return u;
        case EdgeShape::Smoothstep:
            return u * u * (3.0 - 2.0 * u);
    }
    return u;  // unreachable; silences -Wreturn-type
}

double edgeProfileSlope(EdgeShape shape, double u) {
    if (u <= 0.0 || u >= 1.0) {
        return 0.0;
    }
    switch (shape) {
        case EdgeShape::Linear:
            return 1.0;
        case EdgeShape::Smoothstep:
            return 6.0 * u * (1.0 - u);
    }
    return 0.0;
}

}  // namespace shtrace
