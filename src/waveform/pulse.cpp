#include "shtrace/waveform/pulse.hpp"

#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

PulseWaveform::PulseWaveform(const Spec& spec) : spec_(spec) {
    require(spec.riseTime >= 0.0 && spec.fallTime >= 0.0 && spec.width >= 0.0,
            "PulseWaveform: negative rise/fall/width");
}

double PulseWaveform::value(double t) const {
    const Spec& s = spec_;
    const double riseStart = s.delay;
    const double riseEnd = riseStart + s.riseTime;
    const double fallStart = riseEnd + s.width;
    const double fallEnd = fallStart + s.fallTime;
    if (t <= riseStart) {
        return s.v0;
    }
    if (t < riseEnd) {
        const double u = (t - riseStart) / s.riseTime;
        return s.v0 + (s.v1 - s.v0) * edgeProfile(s.shape, u);
    }
    if (t <= fallStart) {
        return s.v1;
    }
    if (t < fallEnd) {
        const double u = (t - fallStart) / s.fallTime;
        return s.v1 + (s.v0 - s.v1) * edgeProfile(s.shape, u);
    }
    return s.v0;
}

void PulseWaveform::breakpoints(double t0, double t1,
                                std::vector<double>& out) const {
    const Spec& s = spec_;
    const double corners[] = {s.delay, s.delay + s.riseTime,
                              s.delay + s.riseTime + s.width,
                              s.delay + s.riseTime + s.width + s.fallTime};
    for (double c : corners) {
        if (c > t0 && c < t1) {
            out.push_back(c);
        }
    }
}


void PulseWaveform::describe(std::ostream& os) const {
    os << "pulse " << toHexFloat(spec_.v0) << ' ' << toHexFloat(spec_.v1)
       << ' ' << toHexFloat(spec_.delay) << ' ' << toHexFloat(spec_.riseTime)
       << ' ' << toHexFloat(spec_.width) << ' ' << toHexFloat(spec_.fallTime)
       << " shape=" << static_cast<int>(spec_.shape);
}

}  // namespace shtrace
