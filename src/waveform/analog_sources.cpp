#include "shtrace/waveform/analog_sources.hpp"

#include <cmath>
#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

SineWaveform::SineWaveform(const Spec& spec) : spec_(spec) {
    require(spec.frequency > 0.0, "SineWaveform: frequency must be positive");
    require(spec.damping >= 0.0, "SineWaveform: damping must be >= 0");
}

double SineWaveform::value(double t) const {
    const Spec& s = spec_;
    if (t <= s.delay) {
        return s.offset;
    }
    const double local = t - s.delay;
    const double envelope =
        s.damping > 0.0 ? std::exp(-s.damping * local) : 1.0;
    return s.offset + s.amplitude * envelope *
                          std::sin(2.0 * M_PI * s.frequency * local);
}

void SineWaveform::breakpoints(double t0, double t1,
                               std::vector<double>& out) const {
    // The only non-smooth point is the turn-on instant.
    if (spec_.delay > t0 && spec_.delay < t1) {
        out.push_back(spec_.delay);
    }
}

ExpWaveform::ExpWaveform(const Spec& spec) : spec_(spec) {
    require(spec.riseTau > 0.0 && spec.fallTau > 0.0,
            "ExpWaveform: time constants must be positive");
    require(spec.fallDelay >= spec.riseDelay,
            "ExpWaveform: fall delay precedes rise delay");
}

double ExpWaveform::value(double t) const {
    const Spec& s = spec_;
    double v = s.v1;
    if (t > s.riseDelay) {
        v += (s.v2 - s.v1) *
             (1.0 - std::exp(-(t - s.riseDelay) / s.riseTau));
    }
    if (t > s.fallDelay) {
        v += (s.v1 - s.v2) *
             (1.0 - std::exp(-(t - s.fallDelay) / s.fallTau));
    }
    return v;
}

void ExpWaveform::breakpoints(double t0, double t1,
                              std::vector<double>& out) const {
    for (double c : {spec_.riseDelay, spec_.fallDelay}) {
        if (c > t0 && c < t1) {
            out.push_back(c);
        }
    }
}


void SineWaveform::describe(std::ostream& os) const {
    os << "sin " << toHexFloat(spec_.offset) << ' '
       << toHexFloat(spec_.amplitude) << ' ' << toHexFloat(spec_.frequency)
       << ' ' << toHexFloat(spec_.delay) << ' ' << toHexFloat(spec_.damping);
}

void ExpWaveform::describe(std::ostream& os) const {
    os << "exp " << toHexFloat(spec_.v1) << ' ' << toHexFloat(spec_.v2)
       << ' ' << toHexFloat(spec_.riseDelay) << ' '
       << toHexFloat(spec_.riseTau) << ' ' << toHexFloat(spec_.fallDelay)
       << ' ' << toHexFloat(spec_.fallTau);
}

}  // namespace shtrace
