#include "shtrace/waveform/data_pulse.hpp"

#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

DataPulse::DataPulse(const Spec& spec) : spec_(spec) {
    require(spec.transitionTime > 0.0,
            "DataPulse: transitionTime must be positive (the skew "
            "derivatives scale as 1/transitionTime)");
    require(spec.activeEdgeTime > 0.0,
            "DataPulse: activeEdgeTime must be positive");
}

void DataPulse::setSkews(double setupSkew, double holdSkew) {
    setupSkew_ = setupSkew;
    holdSkew_ = holdSkew;
}

double DataPulse::value(double t) const {
    // Pulse = leading-edge progress minus trailing-edge progress. This form
    // stays well defined (a reduced-amplitude pulse) even if the tracer
    // wanders into a region where the two edges overlap.
    const double lead =
        edgeProfile(spec_.shape, edgeU(t, leadingEdgeMidpoint()));
    const double trail =
        edgeProfile(spec_.shape, edgeU(t, trailingEdgeMidpoint()));
    return spec_.v0 + (spec_.v1 - spec_.v0) * (lead - trail);
}

double DataPulse::skewDerivative(double t, SkewParam p) const {
    const double mid = (p == SkewParam::Setup) ? leadingEdgeMidpoint()
                                               : trailingEdgeMidpoint();
    const double slope = edgeProfileSlope(spec_.shape, edgeU(t, mid));
    // d u_lead / d tau_s = +1/tr; d u_trail / d tau_h = -1/tr, but the
    // trailing edge enters the value with a minus sign, so both derivatives
    // reduce to +(v1-v0) * p'(u) / tr.
    return (spec_.v1 - spec_.v0) * slope / spec_.transitionTime;
}

void DataPulse::breakpoints(double t0, double t1,
                            std::vector<double>& out) const {
    const double half = 0.5 * spec_.transitionTime;
    const double corners[] = {
        leadingEdgeMidpoint() - half, leadingEdgeMidpoint() + half,
        trailingEdgeMidpoint() - half, trailingEdgeMidpoint() + half};
    for (double c : corners) {
        if (c > t0 && c < t1) {
            out.push_back(c);
        }
    }
}


void DataPulse::describe(std::ostream& os) const {
    // Structural spec only: setupSkew_/holdSkew_ are the coordinates h is
    // evaluated at, not part of the circuit's identity.
    os << "datapulse " << toHexFloat(spec_.v0) << ' ' << toHexFloat(spec_.v1)
       << ' ' << toHexFloat(spec_.activeEdgeTime) << ' '
       << toHexFloat(spec_.transitionTime)
       << " shape=" << static_cast<int>(spec_.shape);
}

}  // namespace shtrace
