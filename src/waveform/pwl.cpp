#include "shtrace/waveform/pwl.hpp"

#include <algorithm>
#include <ostream>

#include "shtrace/util/error.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {

PwlWaveform::PwlWaveform(std::vector<Point> points)
    : points_(std::move(points)) {
    require(!points_.empty(), "PwlWaveform requires at least one point");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        require(points_[i].t > points_[i - 1].t,
                "PwlWaveform points must be strictly increasing in time");
    }
}

double PwlWaveform::value(double t) const {
    if (t <= points_.front().t) {
        return points_.front().v;
    }
    if (t >= points_.back().t) {
        return points_.back().v;
    }
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), t,
        [](double lhs, const Point& p) { return lhs < p.t; });
    const Point& hi = *it;
    const Point& lo = *(it - 1);
    const double frac = (t - lo.t) / (hi.t - lo.t);
    return lo.v + frac * (hi.v - lo.v);
}

void PwlWaveform::breakpoints(double t0, double t1,
                              std::vector<double>& out) const {
    for (const Point& p : points_) {
        if (p.t > t0 && p.t < t1) {
            out.push_back(p.t);
        }
    }
}


void PwlWaveform::describe(std::ostream& os) const {
    os << "pwl";
    for (const Point& p : points_) {
        os << ' ' << toHexFloat(p.t) << ':' << toHexFloat(p.v);
    }
}

}  // namespace shtrace
