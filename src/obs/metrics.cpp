#include "shtrace/obs/obs.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "shtrace/util/error.hpp"

namespace shtrace::obs {

namespace {

constexpr std::size_t kHistCount = static_cast<std::size_t>(Hist::kCount);
constexpr std::size_t kGaugeCount = static_cast<std::size_t>(Gauge::kCount);
// Largest finite-bound count across all histograms; shards are fixed-size
// arrays so observe() never allocates.
constexpr std::size_t kMaxBounds = 12;

struct HistDef {
    const char* name;
    const char* help;
    std::size_t boundCount;
    std::array<double, kMaxBounds> bounds;
};

constexpr std::array<HistDef, kHistCount> kHistDefs{{
    {"shtrace_newton_iterations_per_step",
     "Full Newton iterations per transient step solve.", 8,
     {1, 2, 3, 4, 5, 6, 8, 12}},
    {"shtrace_chord_iterations_per_step",
     "Reused-LU (chord) Newton iterations per transient step solve.", 8,
     {1, 2, 3, 4, 5, 6, 8, 12}},
    {"shtrace_corrector_iterations_per_point",
     "Moore-Penrose corrector iterations per contour point attempt.", 8,
     {1, 2, 3, 4, 6, 8, 12, 16}},
    {"shtrace_seed_evaluations_per_search",
     "h evaluations per seed bisection search.", 10,
     {2, 4, 6, 8, 12, 16, 24, 32, 48, 64}},
    {"shtrace_transient_wall_milliseconds",
     "Wall time of one complete transient analysis in milliseconds.", 12,
     {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}},
    {"shtrace_serve_request_milliseconds",
     "Service latency from admission to response-ready in milliseconds.",
     12, {1, 2.5, 5, 10, 25, 50, 100, 250, 1000, 2500, 10000, 60000}},
    {"shtrace_serve_queue_wait_milliseconds",
     "Queue wait from admission to worker pickup in milliseconds.", 10,
     {0.5, 1, 2.5, 5, 10, 25, 100, 500, 2500, 10000}},
    {"shtrace_serve_coalesce_wait_milliseconds",
     "Follower wait on an identical in-flight computation in milliseconds.",
     10, {0.5, 1, 2.5, 5, 10, 25, 100, 500, 2500, 10000}},
    {"shtrace_serve_store_read_milliseconds",
     "Persistent-store lookup plus warm-start load per request in "
     "milliseconds.",
     10, {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 100, 500}},
    {"shtrace_serve_compute_milliseconds",
     "Leader compute time excluding store I/O in milliseconds.", 12,
     {1, 2.5, 5, 10, 25, 50, 100, 250, 1000, 2500, 10000, 60000}},
    {"shtrace_serve_store_publish_milliseconds",
     "Persistent-store save of a fresh result in milliseconds.", 10,
     {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 100, 500}},
    {"shtrace_sta_register_characterize_milliseconds",
     "One register cell characterization inside the STA engine in "
     "milliseconds.",
     12, {1, 2.5, 5, 10, 25, 50, 100, 250, 1000, 2500, 10000, 60000}},
}};

struct GaugeDef {
    const char* name;
    const char* help;
};

constexpr std::array<GaugeDef, kGaugeCount> kGaugeDefs{{
    {"shtrace_worker_threads",
     "Resolved worker thread count of the most recent batch run."},
    {"shtrace_batch_jobs", "Job count of the most recent batch run."},
    {"shtrace_serve_queue_depth",
     "Admitted characterization requests waiting for a worker."},
    {"shtrace_serve_inflight",
     "Characterization requests currently executing on a worker."},
    {"shtrace_corner_surrogate_max_error_seconds",
     "Max acquisition score among surrogate-accepted corners of the most "
     "recent corner-family run (seconds)."},
}};

constexpr std::size_t kCountCount = static_cast<std::size_t>(Count::kCount);

struct CountDef {
    const char* name;
    const char* help;
};

constexpr std::array<CountDef, kCountCount> kCountDefs{{
    {"shtrace_serve_requests_total",
     "Characterization requests reaching service admission."},
    {"shtrace_serve_responses_ok_total",
     "Characterization responses with ok=true."},
    {"shtrace_serve_responses_failed_total",
     "Characterization responses with ok=false (clean negatives)."},
    {"shtrace_serve_bad_requests_total",
     "Requests rejected with 400 (schema or JSON errors)."},
    {"shtrace_serve_rejected_total",
     "Requests rejected with 503 by admission control."},
    {"shtrace_serve_coalesced_total",
     "Requests served by attaching to an identical in-flight computation."},
    {"shtrace_serve_computed_total",
     "Leader characterization computations executed by workers."},
    {"shtrace_serve_drained_jobs_total",
     "Jobs completed after graceful drain began."},
    {"shtrace_serve_worker_exceptions_total",
     "Exceptions caught in the serve worker loop (failed jobs)."},
    {"shtrace_corner_anchors_traced_total",
     "Anchor corners fully traced by the corner-family driver."},
    {"shtrace_corner_escalated_total",
     "Corners escalated to a full trace by the acquisition score."},
    {"shtrace_corner_surrogate_accepted_total",
     "Corners filled by the cross-corner surrogate without a trace."},
    {"shtrace_sta_endpoints_checked_total",
     "Register endpoints evaluated by the STA engine."},
    {"shtrace_sta_endpoints_recovered_total",
     "Classical setup/hold violations the interdependent contour cleared."},
}};

struct HistShard {
    std::array<std::uint64_t, kMaxBounds + 1> buckets{};  // last is +Inf
    std::uint64_t count = 0;
    double sum = 0.0;
};

/// One thread's private slice of the registry. Written by the owner thread
/// only; merged under the registry mutex after workers join (the SimStats
/// discipline).
struct MetricsShard {
    std::array<HistShard, kHistCount> hists{};
};

struct MetricsRegistry {
    std::mutex mutex;
    std::vector<std::shared_ptr<MetricsShard>> shards;
    MetricsShard retired;  ///< folded-in shards of exited threads
    std::array<double, kGaugeCount> gauges{};
    SimStats counters;  ///< accumulated per-run merged stats
    std::array<std::uint64_t, kCountCount> eventCounts{};  ///< serve layer
};

MetricsRegistry& registry() {
    static MetricsRegistry* r = new MetricsRegistry();  // outlives TLS dtors
    return *r;
}

MetricsShard& localShard() {
    thread_local std::shared_ptr<MetricsShard> shard = [] {
        auto s = std::make_shared<MetricsShard>();
        MetricsRegistry& reg = registry();
        const std::lock_guard<std::mutex> lock(reg.mutex);
        reg.shards.push_back(s);
        return s;
    }();
    return *shard;
}

void foldShardInto(MetricsShard& into, const MetricsShard& from) {
    for (std::size_t h = 0; h < kHistCount; ++h) {
        for (std::size_t b = 0; b <= kMaxBounds; ++b) {
            into.hists[h].buckets[b] += from.hists[h].buckets[b];
        }
        into.hists[h].count += from.hists[h].count;
        into.hists[h].sum += from.hists[h].sum;
    }
}

/// Folds shards whose owner thread has exited (registry holds the last
/// reference) into `retired`, bounding registry growth across many batch
/// runs. Caller holds the registry mutex.
void compactLocked(MetricsRegistry& reg) {
    auto dead = std::remove_if(reg.shards.begin(), reg.shards.end(),
                               [&](const std::shared_ptr<MetricsShard>& s) {
                                   if (s.use_count() != 1) {
                                       return false;
                                   }
                                   foldShardInto(reg.retired, *s);
                                   return true;
                               });
    reg.shards.erase(dead, reg.shards.end());
}

void formatNumber(std::ostringstream& os, double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v >= -9.0e15 && v <= 9.0e15) {
        os << static_cast<long long>(v);
    } else {
        std::ostringstream tmp;
        tmp.precision(17);
        tmp << v;
        os << tmp.str();
    }
}

struct CounterField {
    const char* name;
    const char* help;
    std::uint64_t SimStats::*field;
};

// One row per SimStats counter; wallSeconds is appended separately (it is
// the only double). test_stats.cpp guards the field count against drift.
constexpr std::array<CounterField, 22> kCounterFields{{
    {"shtrace_transient_solves_total", "Complete transient analyses.",
     &SimStats::transientSolves},
    {"shtrace_time_steps_total", "Accepted time steps.", &SimStats::timeSteps},
    {"shtrace_rejected_steps_total", "Steps rejected by LTE control.",
     &SimStats::rejectedSteps},
    {"shtrace_newton_iterations_total",
     "Nonlinear iterations across all solvers.", &SimStats::newtonIterations},
    {"shtrace_lu_factorizations_total", "LU factorizations.",
     &SimStats::luFactorizations},
    {"shtrace_lu_solves_total",
     "LU back-substitutions including sensitivities.", &SimStats::luSolves},
    {"shtrace_device_evaluations_total", "Full-circuit assembly passes.",
     &SimStats::deviceEvaluations},
    {"shtrace_residual_only_assemblies_total",
     "Residual-only (f/q, no G/C) assembly passes.",
     &SimStats::residualOnlyAssemblies},
    {"shtrace_chord_iterations_total",
     "Newton iterations on a reused LU factorization.",
     &SimStats::chordIterations},
    {"shtrace_bypassed_factorizations_total",
     "LU factorizations avoided by chord reuse.",
     &SimStats::bypassedFactorizations},
    {"shtrace_sensitivity_steps_total", "Sensitivity recurrence updates.",
     &SimStats::sensitivitySteps},
    {"shtrace_h_evaluations_total", "Evaluations of h(tau_s, tau_h).",
     &SimStats::hEvaluations},
    {"shtrace_mpnr_iterations_total", "Moore-Penrose Newton iterations.",
     &SimStats::mpnrIterations},
    {"shtrace_cache_hits_total", "Jobs served from the persistent store.",
     &SimStats::cacheHits},
    {"shtrace_cache_misses_total", "Store lookups that computed.",
     &SimStats::cacheMisses},
    {"shtrace_cache_warm_starts_total",
     "Traces seeded from a near-hit cached contour.",
     &SimStats::cacheWarmStarts},
    {"shtrace_trace_nonfinite_rejections_total",
     "NaN/Inf rejections at tracer guards.",
     &SimStats::traceNonFiniteRejections},
    {"shtrace_trace_transient_retries_total",
     "Perturbed-predictor retries after transient failures.",
     &SimStats::traceTransientRetries},
    {"shtrace_trace_plateau_reseeds_total",
     "Pulled-back re-seeds after gradient plateaus.",
     &SimStats::tracePlateauReseeds},
    {"shtrace_trace_step_halvings_total", "Predictor step-length halvings.",
     &SimStats::traceStepHalvings},
    {"shtrace_sparse_refactorizations_total",
     "Sparse numeric replays of a stored symbolic factorization.",
     &SimStats::sparseRefactorizations},
    {"shtrace_batch_assemblies_total", "SoA-batched device assembly passes.",
     &SimStats::batchAssemblies},
}};

}  // namespace

void observe(Hist hist, double value) noexcept {
    if (!enabled()) {
        return;
    }
    const auto h = static_cast<std::size_t>(hist);
    if (h >= kHistCount) {
        return;
    }
    HistShard& shard = localShard().hists[h];
    ++shard.count;
    shard.sum += value;
    const HistDef& def = kHistDefs[h];
    std::size_t b = 0;
    while (b < def.boundCount && value > def.bounds[b]) {
        ++b;
    }
    // b == boundCount lands in the +Inf bucket, stored at index boundCount.
    ++shard.buckets[b];
}

void setGauge(Gauge gauge, double value) noexcept {
    if (!enabled()) {
        return;
    }
    const auto g = static_cast<std::size_t>(gauge);
    if (g >= kGaugeCount) {
        return;
    }
    MetricsRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.gauges[g] = value;
}

void addCount(Count count, std::uint64_t n) noexcept {
    if (!enabled()) {
        return;
    }
    const auto c = static_cast<std::size_t>(count);
    if (c >= kCountCount) {
        return;
    }
    MetricsRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.eventCounts[c] += n;
}

void addRunCounters(const SimStats& stats) noexcept {
    if (!enabled()) {
        return;
    }
    MetricsRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    // Field-wise (not SimStats::operator+=) so the obs module stays at the
    // bottom of the link graph, below shtrace::util.
    for (const CounterField& field : kCounterFields) {
        reg.counters.*(field.field) += stats.*(field.field);
    }
    reg.counters.wallSeconds += stats.wallSeconds;
}

MetricsSnapshot metricsSnapshot() {
    MetricsSnapshot snapshot;
    MetricsRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    compactLocked(reg);

    MetricsShard merged = reg.retired;
    for (const auto& shard : reg.shards) {
        foldShardInto(merged, *shard);
    }

    for (const CounterField& field : kCounterFields) {
        CounterSnapshot c;
        c.name = field.name;
        c.help = field.help;
        c.value = static_cast<double>(reg.counters.*(field.field));
        snapshot.counters.push_back(std::move(c));
    }
    {
        CounterSnapshot wall;
        wall.name = "shtrace_wall_seconds_total";
        wall.help = "Accumulated ScopedTimer wall seconds.";
        wall.value = reg.counters.wallSeconds;
        snapshot.counters.push_back(std::move(wall));
    }
    for (std::size_t c = 0; c < kCountCount; ++c) {
        CounterSnapshot event;
        event.name = kCountDefs[c].name;
        event.help = kCountDefs[c].help;
        event.value = static_cast<double>(reg.eventCounts[c]);
        snapshot.counters.push_back(std::move(event));
    }

    for (std::size_t g = 0; g < kGaugeCount; ++g) {
        GaugeSnapshot gauge;
        gauge.name = kGaugeDefs[g].name;
        gauge.help = kGaugeDefs[g].help;
        gauge.value = reg.gauges[g];
        snapshot.gauges.push_back(std::move(gauge));
    }

    for (std::size_t h = 0; h < kHistCount; ++h) {
        const HistDef& def = kHistDefs[h];
        HistogramSnapshot hist;
        hist.name = def.name;
        hist.help = def.help;
        hist.upperBounds.assign(def.bounds.begin(),
                                def.bounds.begin() + def.boundCount);
        hist.counts.assign(merged.hists[h].buckets.begin(),
                           merged.hists[h].buckets.begin() +
                               def.boundCount + 1);
        hist.totalCount = merged.hists[h].count;
        hist.sum = merged.hists[h].sum;
        snapshot.histograms.push_back(std::move(hist));
    }
    return snapshot;
}

void clearMetrics() noexcept {
    MetricsRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    compactLocked(reg);
    reg.retired = MetricsShard{};
    for (const auto& shard : reg.shards) {
        *shard = MetricsShard{};
    }
    reg.gauges.fill(0.0);
    reg.counters.reset();
    reg.eventCounts.fill(0);
}

std::string prometheusText(const MetricsSnapshot& snapshot) {
    std::ostringstream os;
    for (const CounterSnapshot& c : snapshot.counters) {
        os << "# HELP " << c.name << ' ' << c.help << '\n';
        os << "# TYPE " << c.name << " counter\n";
        os << c.name << ' ';
        formatNumber(os, c.value);
        os << '\n';
    }
    for (const GaugeSnapshot& g : snapshot.gauges) {
        os << "# HELP " << g.name << ' ' << g.help << '\n';
        os << "# TYPE " << g.name << " gauge\n";
        os << g.name << ' ';
        formatNumber(os, g.value);
        os << '\n';
    }
    for (const HistogramSnapshot& h : snapshot.histograms) {
        os << "# HELP " << h.name << ' ' << h.help << '\n';
        os << "# TYPE " << h.name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.upperBounds.size(); ++b) {
            cumulative += h.counts[b];
            os << h.name << "_bucket{le=\"";
            formatNumber(os, h.upperBounds[b]);
            os << "\"} " << cumulative << '\n';
        }
        cumulative += h.counts.back();
        os << h.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
        os << h.name << "_sum ";
        formatNumber(os, h.sum);
        os << '\n';
        os << h.name << "_count " << h.totalCount << '\n';
    }
    return os.str();
}

std::string metricsJson(const MetricsSnapshot& snapshot) {
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << "    \""
           << snapshot.counters[i].name << "\": ";
        formatNumber(os, snapshot.counters[i].value);
    }
    os << "\n  },\n  \"gauges\": {";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << "    \""
           << snapshot.gauges[i].name << "\": ";
        formatNumber(os, snapshot.gauges[i].value);
    }
    os << "\n  },\n  \"histograms\": {";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        const HistogramSnapshot& h = snapshot.histograms[i];
        os << (i == 0 ? "\n" : ",\n") << "    \"" << h.name
           << "\": {\"count\": " << h.totalCount << ", \"sum\": ";
        formatNumber(os, h.sum);
        os << ", \"buckets\": [";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.upperBounds.size(); ++b) {
            cumulative += h.counts[b];
            os << (b == 0 ? "" : ", ") << "{\"le\": ";
            formatNumber(os, h.upperBounds[b]);
            os << ", \"count\": " << cumulative << "}";
        }
        cumulative += h.counts.back();
        os << (h.upperBounds.empty() ? "" : ", ")
           << "{\"le\": \"+Inf\", \"count\": " << cumulative << "}]}";
    }
    os << "\n  }\n}\n";
    return os.str();
}

std::string prometheusPathFor(const std::string& jsonPath) {
    const std::string suffix = ".json";
    if (jsonPath.size() > suffix.size() &&
        jsonPath.compare(jsonPath.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
        return jsonPath.substr(0, jsonPath.size() - suffix.size()) + ".prom";
    }
    return jsonPath + ".prom";
}

namespace {

void writeTextFile(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw Error(message("obs: cannot open '", path, "' for writing"));
    }
    out << text;
    if (!out) {
        throw Error(message("obs: failed writing '", path, "'"));
    }
}

}  // namespace

void writeMetricsFiles(const std::string& jsonPath) {
    const MetricsSnapshot snapshot = metricsSnapshot();
    writeTextFile(jsonPath, metricsJson(snapshot));
    writeTextFile(prometheusPathFor(jsonPath), prometheusText(snapshot));
}

void clearAll() noexcept {
    clearSpans();
    clearMetrics();
}

RunObservation::RunObservation(const std::string& metricsPath,
                               const std::string& spanTracePath)
    : metricsPath_(metricsPath),
      spanTracePath_(spanTracePath),
      wanted_(!metricsPath.empty() || !spanTracePath.empty()),
      previousDetail_(detailLevel()) {
    if (wanted_ && previousDetail_ < static_cast<int>(Detail::Coarse)) {
        setDetail(Detail::Coarse);
    }
}

RunObservation::~RunObservation() {
    if (wanted_) {
        setDetail(static_cast<Detail>(previousDetail_));
    }
}

void RunObservation::finish(const SimStats& merged) {
    if (!wanted_ || finished_) {
        return;
    }
    finished_ = true;
    if (!metricsPath_.empty()) {
        addRunCounters(merged);
        writeMetricsFiles(metricsPath_);
    }
    if (!spanTracePath_.empty()) {
        writeChromeTrace(spanTracePath_);
        writeCollapsedStacks(spanTracePath_ + ".folded");
    }
}

}  // namespace shtrace::obs
