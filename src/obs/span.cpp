#include "shtrace/obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "shtrace/obs/trace_context.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace::obs {

namespace {

// Most-recent 16k spans per thread; a Coarse-level characterization run
// stays well inside this, Fine-level runs overwrite the oldest records
// (reported via SpanCounts::dropped rather than silently).
constexpr std::size_t kRingCapacity = std::size_t{1} << 14;

struct SpanSlot {
    const char* name = nullptr;
    long long startNs = 0;
    long long durationNs = 0;
    unsigned depth = 0;
    std::uint64_t traceHi = 0;
    std::uint64_t traceLo = 0;
};

// Owned jointly by the recording thread (thread_local shared_ptr) and the
// registry, so rings survive worker-pool threads that exit before export.
// Slots are written by the owner thread only; readers (collect/clear) must
// run quiesced -- after the worker pool joins -- which is the same contract
// SimStats merging already imposes on the drivers.
struct SpanRing {
    unsigned threadIndex = 0;
    std::size_t written = 0;  ///< lifetime pushes; ring keeps the newest
    unsigned depth = 0;       ///< current nesting depth of the owner thread
    std::vector<SpanSlot> slots;
};

struct SpanRegistry {
    std::mutex mutex;
    std::vector<std::shared_ptr<SpanRing>> rings;
    unsigned nextThreadIndex = 0;
};

SpanRegistry& registry() {
    static SpanRegistry* r = new SpanRegistry();  // leaked: outlives TLS dtors
    return *r;
}

SpanRing& localRing() {
    thread_local std::shared_ptr<SpanRing> ring = [] {
        auto r = std::make_shared<SpanRing>();
        r->slots.resize(kRingCapacity);
        SpanRegistry& reg = registry();
        const std::lock_guard<std::mutex> lock(reg.mutex);
        r->threadIndex = reg.nextThreadIndex++;
        reg.rings.push_back(r);
        return r;
    }();
    return *ring;
}

std::atomic<int> gDetail{static_cast<int>(Detail::Off)};

std::chrono::steady_clock::time_point clockAnchor() {
    static const std::chrono::steady_clock::time_point anchor =
        std::chrono::steady_clock::now();
    return anchor;
}

}  // namespace

int detailLevel() noexcept {
    return gDetail.load(std::memory_order_relaxed);
}

void setDetail(Detail level) noexcept {
    gDetail.store(static_cast<int>(level), std::memory_order_relaxed);
}

void setEnabled(bool on) noexcept {
    if (on) {
        if (detailLevel() < static_cast<int>(Detail::Coarse)) {
            setDetail(Detail::Coarse);
        }
    } else {
        setDetail(Detail::Off);
    }
}

long long monotonicNanos() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - clockAnchor())
        .count();
}

namespace detail {

long long spanBegin() noexcept {
    SpanRing& ring = localRing();
    ++ring.depth;
    return monotonicNanos();
}

void spanEnd(const char* name, long long startNs) noexcept {
    SpanRing& ring = localRing();
    SpanSlot& slot = ring.slots[ring.written % kRingCapacity];
    slot.name = name;
    slot.startNs = startNs;
    slot.durationNs = monotonicNanos() - startNs;
    slot.depth = ring.depth > 0 ? ring.depth - 1 : 0;
    const TraceContext& trace = currentRequestContext().trace;
    slot.traceHi = trace.traceHi;
    slot.traceLo = trace.traceLo;
    ++ring.written;
    if (ring.depth > 0) {
        --ring.depth;
    }
}

}  // namespace detail

std::vector<CollectedSpan> collectSpans() {
    std::vector<CollectedSpan> out;
    SpanRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& ring : reg.rings) {
        const std::size_t kept = std::min(ring->written, kRingCapacity);
        const std::size_t first = ring->written - kept;
        for (std::size_t i = first; i < ring->written; ++i) {
            const SpanSlot& slot = ring->slots[i % kRingCapacity];
            CollectedSpan span;
            span.name = slot.name != nullptr ? slot.name : "?";
            span.startNs = slot.startNs;
            span.durationNs = slot.durationNs;
            span.depth = slot.depth;
            span.threadIndex = ring->threadIndex;
            span.traceHi = slot.traceHi;
            span.traceLo = slot.traceLo;
            out.push_back(std::move(span));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const CollectedSpan& a, const CollectedSpan& b) {
                  if (a.threadIndex != b.threadIndex) {
                      return a.threadIndex < b.threadIndex;
                  }
                  if (a.startNs != b.startNs) {
                      return a.startNs < b.startNs;
                  }
                  return a.depth < b.depth;
              });
    return out;
}

SpanCounts spanCounts() {
    SpanCounts counts;
    SpanRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& ring : reg.rings) {
        counts.recorded += ring->written;
        if (ring->written > kRingCapacity) {
            counts.dropped += ring->written - kRingCapacity;
        }
    }
    return counts;
}

void clearSpans() noexcept {
    SpanRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    // Rings whose owner thread has exited (registry holds the last
    // reference) are dropped entirely; live rings are rewound in place.
    auto keep = std::remove_if(
        reg.rings.begin(), reg.rings.end(),
        [](const std::shared_ptr<SpanRing>& r) { return r.use_count() == 1; });
    reg.rings.erase(keep, reg.rings.end());
    for (const auto& ring : reg.rings) {
        ring->written = 0;
        ring->depth = 0;
    }
}

namespace {

void jsonEscapeInto(std::ostringstream& os, const std::string& s) {
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default: os << c; break;
        }
    }
}

/// Rebuilds the call tree of one thread's spans (sorted by start time)
/// using interval containment, and emits either trace events or collapsed
/// stacks. Returns, for each span, the sum of its direct children's
/// durations (for exclusive-time reporting).
struct StackFrame {
    const CollectedSpan* span;
    long long childNs = 0;
};

}  // namespace

namespace {

std::string chromeTraceJsonFrom(const std::vector<CollectedSpan>& spans) {
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const CollectedSpan& span : spans) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "{\"name\":\"";
        jsonEscapeInto(os, span.name);
        // trace_event ts/dur are microseconds.
        os << "\",\"cat\":\"shtrace\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << span.threadIndex + 1 << ",\"ts\":"
           << static_cast<double>(span.startNs) / 1000.0
           << ",\"dur\":" << static_cast<double>(span.durationNs) / 1000.0;
        if ((span.traceHi | span.traceLo) != 0) {
            TraceContext id;
            id.traceHi = span.traceHi;
            id.traceLo = span.traceLo;
            os << ",\"args\":{\"trace\":\"" << id.traceIdHex() << "\"}";
        }
        os << "}";
    }
    os << "]}";
    return os.str();
}

}  // namespace

std::string chromeTraceJson() { return chromeTraceJsonFrom(collectSpans()); }

std::string chromeTraceJsonForTrace(std::uint64_t traceHi,
                                    std::uint64_t traceLo) {
    std::vector<CollectedSpan> spans = collectSpans();
    spans.erase(std::remove_if(spans.begin(), spans.end(),
                               [&](const CollectedSpan& span) {
                                   return span.traceHi != traceHi ||
                                          span.traceLo != traceLo;
                               }),
                spans.end());
    return chromeTraceJsonFrom(spans);
}

std::string collapsedStacks() {
    const std::vector<CollectedSpan> spans = collectSpans();
    // Aggregate exclusive nanoseconds per unique stack path across all
    // threads. Spans are sorted (thread, start), so a simple containment
    // stack rebuilds nesting per thread.
    std::vector<std::pair<std::string, long long>> lines;
    std::vector<StackFrame> stack;
    unsigned currentThread = 0;
    bool haveThread = false;

    const auto flush = [&](std::size_t downTo) {
        while (stack.size() > downTo) {
            const StackFrame frame = stack.back();
            stack.pop_back();
            std::string path;
            for (const StackFrame& f : stack) {
                path += f.span->name;
                path += ';';
            }
            path += frame.span->name;
            const long long exclusive =
                frame.span->durationNs - frame.childNs;
            lines.emplace_back(std::move(path),
                               exclusive > 0 ? exclusive : 0);
            if (!stack.empty()) {
                stack.back().childNs += frame.span->durationNs;
            }
        }
    };

    for (const CollectedSpan& span : spans) {
        if (!haveThread || span.threadIndex != currentThread) {
            flush(0);
            currentThread = span.threadIndex;
            haveThread = true;
        }
        while (!stack.empty() &&
               span.startNs >= stack.back().span->startNs +
                                   stack.back().span->durationNs) {
            flush(stack.size() - 1);
        }
        stack.push_back(StackFrame{&span, 0});
    }
    flush(0);

    // Merge identical paths (ring order can interleave same-path spans) and
    // sort for a deterministic file.
    std::sort(lines.begin(), lines.end());
    std::ostringstream os;
    std::size_t i = 0;
    while (i < lines.size()) {
        long long total = 0;
        std::size_t j = i;
        while (j < lines.size() && lines[j].first == lines[i].first) {
            total += lines[j].second;
            ++j;
        }
        os << lines[i].first << ' ' << total << '\n';
        i = j;
    }
    return os.str();
}

namespace {

void writeTextFile(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw Error(message("obs: cannot open '", path, "' for writing"));
    }
    out << text;
    if (!out) {
        throw Error(message("obs: failed writing '", path, "'"));
    }
}

}  // namespace

void writeChromeTrace(const std::string& path) {
    writeTextFile(path, chromeTraceJson());
}

void writeChromeTraceForTrace(const std::string& path, std::uint64_t traceHi,
                              std::uint64_t traceLo) {
    writeTextFile(path, chromeTraceJsonForTrace(traceHi, traceLo));
}

void writeCollapsedStacks(const std::string& path) {
    writeTextFile(path, collapsedStacks());
}

}  // namespace shtrace::obs
