#include "shtrace/obs/trace_context.hpp"

#include <chrono>
#include <random>

namespace shtrace::obs {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void appendHex64(std::string* out, std::uint64_t value) {
    for (int shift = 60; shift >= 0; shift -= 4) {
        out->push_back(kHexDigits[(value >> shift) & 0xF]);
    }
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t initialSeed() noexcept {
    std::random_device rd;
    std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    seed ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return seed;
}

std::uint64_t nextRandom64() noexcept {
    static std::atomic<std::uint64_t> state{initialSeed()};
    return splitmix64(
        state.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed));
}

int hexNibble(char c) noexcept {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;  // uppercase is invalid per the W3C spec
}

bool parseHex64(const char* text, std::size_t digits,
                std::uint64_t* out) noexcept {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < digits; ++i) {
        const int nibble = hexNibble(text[i]);
        if (nibble < 0) {
            return false;
        }
        value = (value << 4) | static_cast<std::uint64_t>(nibble);
    }
    *out = value;
    return true;
}

thread_local RequestContext tCurrent;

}  // namespace

std::string TraceContext::traceIdHex() const {
    std::string out;
    out.reserve(32);
    appendHex64(&out, traceHi);
    appendHex64(&out, traceLo);
    return out;
}

std::string TraceContext::spanIdHex() const {
    std::string out;
    out.reserve(16);
    appendHex64(&out, spanId);
    return out;
}

std::string TraceContext::traceparent() const {
    std::string out = "00-";
    out.reserve(55);
    appendHex64(&out, traceHi);
    appendHex64(&out, traceLo);
    out.push_back('-');
    appendHex64(&out, spanId);
    out += "-01";
    return out;
}

TraceContext mintTraceContext() noexcept {
    TraceContext context;
    do {
        context.traceHi = nextRandom64();
        context.traceLo = nextRandom64();
    } while (!context.valid());
    do {
        context.spanId = nextRandom64();
    } while (context.spanId == 0);
    return context;
}

TraceContext adoptOrMintTraceContext(const std::string& traceparent,
                                     bool* adopted) noexcept {
    if (adopted != nullptr) {
        *adopted = false;
    }
    // version(2) - traceid(32) - spanid(16) - flags(2), lowercase hex only.
    if (traceparent.size() != 55 || traceparent[2] != '-' ||
        traceparent[35] != '-' || traceparent[52] != '-') {
        return mintTraceContext();
    }
    const char* text = traceparent.c_str();
    std::uint64_t version = 0;
    std::uint64_t parentSpan = 0;
    std::uint64_t flags = 0;
    TraceContext context;
    const bool wellFormed =
        parseHex64(text, 2, &version) && version != 0xFF &&
        parseHex64(text + 3, 16, &context.traceHi) &&
        parseHex64(text + 19, 16, &context.traceLo) &&
        parseHex64(text + 36, 16, &parentSpan) && parentSpan != 0 &&
        parseHex64(text + 53, 2, &flags);
    if (!wellFormed || !context.valid()) {
        return mintTraceContext();
    }
    // Adopt the caller's trace id verbatim; our work is a new span in it.
    do {
        context.spanId = nextRandom64();
    } while (context.spanId == 0);
    if (adopted != nullptr) {
        *adopted = true;
    }
    return context;
}

const RequestContext& currentRequestContext() noexcept { return tCurrent; }

ScopedRequestContext::ScopedRequestContext(
    const RequestContext& context) noexcept
    : previous_(tCurrent) {
    tCurrent = context;
}

ScopedRequestContext::~ScopedRequestContext() { tCurrent = previous_; }

}  // namespace shtrace::obs
