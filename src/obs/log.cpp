#include "shtrace/obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <utility>

#include "shtrace/obs/trace_context.hpp"

namespace shtrace::obs {
namespace {

// gActive is the hot-path guard; everything else lives behind gMutex.
std::atomic<bool> gActive{false};
std::atomic<int> gMinLevel{static_cast<int>(LogLevel::Info)};

std::mutex gMutex;
LogSink gSink;                    // guarded by gMutex
std::uint64_t gEmitted = 0;       // guarded by gMutex
std::uint64_t gDropped = 0;       // guarded by gMutex
std::uint64_t gPendingDrops = 0;  // drops not yet announced, guarded by gMutex

void appendEscaped(std::string* line, const char* text) {
    for (const char* p = text; *p != '\0'; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
            case '"': *line += "\\\""; break;
            case '\\': *line += "\\\\"; break;
            case '\n': *line += "\\n"; break;
            case '\r': *line += "\\r"; break;
            case '\t': *line += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    *line += buf;
                } else {
                    line->push_back(static_cast<char>(c));
                }
        }
    }
}

void appendKey(std::string* line, const char* key) {
    line->push_back(',');
    line->push_back('"');
    appendEscaped(line, key);
    line->push_back('"');
    line->push_back(':');
}

void appendTimestamp(std::string* line) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
    const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now.time_since_epoch())
                            .count() %
                        1000;
    std::tm utc{};
    gmtime_r(&seconds, &utc);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                  utc.tm_hour, utc.tm_min, utc.tm_sec,
                  static_cast<int>(millis < 0 ? millis + 1000 : millis));
    *line += "{\"ts\":\"";
    *line += buf;
    *line += "\"";
}

std::string renderLine(LogLevel level, const char* event,
                       std::initializer_list<LogField> fields) {
    std::string line;
    line.reserve(160);
    appendTimestamp(&line);
    line += ",\"level\":\"";
    line += logLevelName(level);
    line += "\",\"event\":\"";
    appendEscaped(&line, event);
    line.push_back('"');
    const RequestContext& context = currentRequestContext();
    if (context.trace.valid()) {
        line += ",\"trace\":\"";
        line += context.trace.traceIdHex();
        line += "\",\"span\":\"";
        line += context.trace.spanIdHex();
        line.push_back('"');
    }
    for (const LogField& field : fields) {
        field.appendTo(&line);
    }
    line.push_back('}');
    return line;
}

/// Hands one line to the sink; true when the sink accepted it. The caller
/// holds gMutex.
bool writeLocked(const std::string& line) {
    try {
        return gSink && gSink(line);
    } catch (...) {
        return false;
    }
}

}  // namespace

const char* logLevelName(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Error: return "error";
    }
    return "info";
}

void LogField::appendTo(std::string* line) const {
    appendKey(line, key_);
    switch (kind_) {
        case Kind::String:
            line->push_back('"');
            appendEscaped(line, text_.c_str());
            line->push_back('"');
            break;
        case Kind::Number: {
            char buf[40];
            if (std::isfinite(number_)) {
                std::snprintf(buf, sizeof(buf), "%.12g", number_);
            } else {
                // JSON has no Inf/NaN; string form keeps the line parseable.
                std::snprintf(buf, sizeof(buf), "\"%g\"", number_);
            }
            *line += buf;
            break;
        }
        case Kind::Integer: {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%lld", integer_);
            *line += buf;
            break;
        }
        case Kind::Boolean:
            *line += boolean_ ? "true" : "false";
            break;
    }
}

void setLogSink(LogSink sink) {
    std::lock_guard<std::mutex> lock(gMutex);
    gSink = std::move(sink);
    gActive.store(static_cast<bool>(gSink), std::memory_order_release);
}

void setLogLevel(LogLevel minLevel) noexcept {
    gMinLevel.store(static_cast<int>(minLevel), std::memory_order_relaxed);
}

bool logEnabled(LogLevel level) noexcept {
    return gActive.load(std::memory_order_acquire) &&
           static_cast<int>(level) >=
               gMinLevel.load(std::memory_order_relaxed);
}

void logEvent(LogLevel level, const char* event,
              std::initializer_list<LogField> fields) {
    if (!logEnabled(level)) {
        return;
    }
    const std::string line = renderLine(level, event, fields);
    std::lock_guard<std::mutex> lock(gMutex);
    if (gSink == nullptr) {
        return;  // sink removed between the guard and the lock
    }
    // Announce any gap BEFORE the next record so a reader sees the drop
    // notice in stream order. The notice itself is synthetic and does not
    // count toward emitted/dropped.
    if (gPendingDrops > 0) {
        const std::string notice = renderLine(
            LogLevel::Warn, "log.dropped",
            {{"count", static_cast<unsigned long long>(gPendingDrops)}});
        if (writeLocked(notice)) {
            gPendingDrops = 0;
        }
    }
    if (gPendingDrops == 0 && writeLocked(line)) {
        ++gEmitted;
    } else {
        ++gDropped;
        ++gPendingDrops;
    }
}

LogCounts logCounts() noexcept {
    std::lock_guard<std::mutex> lock(gMutex);
    return LogCounts{gEmitted, gDropped};
}

void logToStream(std::FILE* stream) {
    setLogSink([stream](const std::string& line) {
        if (std::fwrite(line.data(), 1, line.size(), stream) != line.size()) {
            return false;
        }
        if (std::fputc('\n', stream) == EOF) {
            return false;
        }
        std::fflush(stream);
        return true;
    });
}

void resetLogging() {
    std::lock_guard<std::mutex> lock(gMutex);
    gSink = nullptr;
    gActive.store(false, std::memory_order_release);
    gMinLevel.store(static_cast<int>(LogLevel::Info),
                    std::memory_order_relaxed);
    gEmitted = 0;
    gDropped = 0;
    gPendingDrops = 0;
}

}  // namespace shtrace::obs
