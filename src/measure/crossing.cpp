#include "shtrace/measure/crossing.hpp"

#include "shtrace/util/error.hpp"

namespace shtrace {

std::vector<Crossing> findCrossings(const std::vector<double>& times,
                                    const std::vector<double>& values,
                                    double threshold) {
    require(times.size() == values.size(),
            "findCrossings: times/values size mismatch");
    std::vector<Crossing> out;
    for (std::size_t i = 1; i < times.size(); ++i) {
        require(times[i] > times[i - 1],
                "findCrossings: times must be strictly increasing");
        const double a = values[i - 1] - threshold;
        const double b = values[i] - threshold;
        if (a == 0.0 && b == 0.0) {
            continue;  // flat at the threshold: no crossing
        }
        const bool crosses = (a <= 0.0 && b > 0.0) || (a >= 0.0 && b < 0.0) ||
                             (a < 0.0 && b >= 0.0) || (a > 0.0 && b <= 0.0);
        if (!crosses) {
            continue;
        }
        const double frac = a / (a - b);
        Crossing c;
        c.time = times[i - 1] + frac * (times[i] - times[i - 1]);
        c.rising = b > a;
        // Avoid duplicate reports when a sample sits exactly on the
        // threshold (it terminates one segment and begins the next).
        if (!out.empty() && c.time <= out.back().time) {
            continue;
        }
        out.push_back(c);
    }
    return out;
}

std::optional<Crossing> firstCrossingAfter(const std::vector<double>& times,
                                           const std::vector<double>& values,
                                           double threshold, double tAfter,
                                           std::optional<bool> wantRising) {
    for (const Crossing& c : findCrossings(times, values, threshold)) {
        if (c.time < tAfter) {
            continue;
        }
        if (wantRising.has_value() && c.rising != *wantRising) {
            continue;
        }
        return c;
    }
    return std::nullopt;
}

}  // namespace shtrace
