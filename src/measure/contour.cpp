#include "shtrace/measure/contour.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <list>

#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

struct Segment {
    SkewPoint a;
    SkewPoint b;
};

/// Interpolated crossing of `level` along the edge (p0,v0)-(p1,v1).
SkewPoint edgeCrossing(const SkewPoint& p0, double v0, const SkewPoint& p1,
                       double v1, double level) {
    const double denom = v1 - v0;
    const double frac = denom == 0.0 ? 0.5 : (level - v0) / denom;
    return SkewPoint{p0.setup + frac * (p1.setup - p0.setup),
                     p0.hold + frac * (p1.hold - p0.hold)};
}

double pointDistance(const SkewPoint& a, const SkewPoint& b) {
    const double ds = a.setup - b.setup;
    const double dh = a.hold - b.hold;
    return std::sqrt(ds * ds + dh * dh);
}

double polylineLength(const ContourPolyline& poly) {
    double len = 0.0;
    for (std::size_t i = 1; i < poly.size(); ++i) {
        len += pointDistance(poly[i - 1], poly[i]);
    }
    return len;
}

/// Collects marching-squares segments for one grid cell.
void cellSegments(const OutputSurface& s, std::size_t i, std::size_t j,
                  double level, std::vector<Segment>& out) {
    // Corner order: 0=(i,j) 1=(i+1,j) 2=(i+1,j+1) 3=(i,j+1).
    const SkewPoint p[4] = {{s.setupAt(i), s.holdAt(j)},
                            {s.setupAt(i + 1), s.holdAt(j)},
                            {s.setupAt(i + 1), s.holdAt(j + 1)},
                            {s.setupAt(i), s.holdAt(j + 1)}};
    const double v[4] = {s.value(i, j), s.value(i + 1, j),
                         s.value(i + 1, j + 1), s.value(i, j + 1)};
    int mask = 0;
    for (int k = 0; k < 4; ++k) {
        if (v[k] >= level) {
            mask |= 1 << k;
        }
    }
    if (mask == 0 || mask == 15) {
        return;
    }
    // Edges: e0 = 0-1, e1 = 1-2, e2 = 2-3, e3 = 3-0.
    const auto cross = [&](int e) {
        const int k0 = e;
        const int k1 = (e + 1) % 4;
        return edgeCrossing(p[k0], v[k0], p[k1], v[k1], level);
    };
    const bool cut[4] = {((mask >> 0) & 1) != ((mask >> 1) & 1),
                         ((mask >> 1) & 1) != ((mask >> 2) & 1),
                         ((mask >> 2) & 1) != ((mask >> 3) & 1),
                         ((mask >> 3) & 1) != ((mask >> 0) & 1)};
    int cutEdges[4];
    int numCut = 0;
    for (int e = 0; e < 4; ++e) {
        if (cut[e]) {
            cutEdges[numCut++] = e;
        }
    }
    if (numCut == 2) {
        out.push_back({cross(cutEdges[0]), cross(cutEdges[1])});
        return;
    }
    // Saddle (4 cuts): resolve by the cell-center average, the standard
    // marching-squares disambiguation.
    if (numCut == 4) {
        const double center = 0.25 * (v[0] + v[1] + v[2] + v[3]);
        const bool centerHigh = center >= level;
        const bool corner0High = ((mask >> 0) & 1) != 0;
        if (corner0High == centerHigh) {
            out.push_back({cross(0), cross(1)});
            out.push_back({cross(2), cross(3)});
        } else {
            out.push_back({cross(3), cross(0)});
            out.push_back({cross(1), cross(2)});
        }
    }
}

}  // namespace

std::vector<ContourPolyline> extractLevelContours(const OutputSurface& surface,
                                                  double level) {
    std::vector<Segment> segments;
    for (std::size_t i = 0; i + 1 < surface.setupCount(); ++i) {
        for (std::size_t j = 0; j + 1 < surface.holdCount(); ++j) {
            cellSegments(surface, i, j, level, segments);
        }
    }

    // Endpoint-matching tolerance: a small fraction of the finest cell.
    double minSpacing = std::numeric_limits<double>::max();
    for (std::size_t i = 1; i < surface.setupCount(); ++i) {
        minSpacing =
            std::min(minSpacing, surface.setupAt(i) - surface.setupAt(i - 1));
    }
    for (std::size_t j = 1; j < surface.holdCount(); ++j) {
        minSpacing =
            std::min(minSpacing, surface.holdAt(j) - surface.holdAt(j - 1));
    }
    const double tol = 1e-9 * minSpacing;

    std::list<Segment> pool(segments.begin(), segments.end());
    std::vector<ContourPolyline> polylines;
    while (!pool.empty()) {
        std::deque<SkewPoint> chain{pool.front().a, pool.front().b};
        pool.pop_front();
        bool extended = true;
        while (extended) {
            extended = false;
            for (auto it = pool.begin(); it != pool.end(); ++it) {
                if (pointDistance(it->a, chain.back()) <= tol) {
                    chain.push_back(it->b);
                } else if (pointDistance(it->b, chain.back()) <= tol) {
                    chain.push_back(it->a);
                } else if (pointDistance(it->a, chain.front()) <= tol) {
                    chain.push_front(it->b);
                } else if (pointDistance(it->b, chain.front()) <= tol) {
                    chain.push_front(it->a);
                } else {
                    continue;
                }
                pool.erase(it);
                extended = true;
                break;
            }
        }
        polylines.emplace_back(chain.begin(), chain.end());
    }
    std::sort(polylines.begin(), polylines.end(),
              [](const ContourPolyline& a, const ContourPolyline& b) {
                  return polylineLength(a) > polylineLength(b);
              });
    return polylines;
}

double distanceToPolyline(const SkewPoint& p, const ContourPolyline& poly) {
    require(!poly.empty(), "distanceToPolyline: empty polyline");
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < poly.size(); ++i) {
        if (i + 1 < poly.size()) {
            // Exact point-to-segment distance.
            const SkewPoint& a = poly[i];
            const SkewPoint& b = poly[i + 1];
            const double abS = b.setup - a.setup;
            const double abH = b.hold - a.hold;
            const double len2 = abS * abS + abH * abH;
            double t = 0.0;
            if (len2 > 0.0) {
                t = ((p.setup - a.setup) * abS + (p.hold - a.hold) * abH) /
                    len2;
                t = std::clamp(t, 0.0, 1.0);
            }
            const SkewPoint proj{a.setup + t * abS, a.hold + t * abH};
            best = std::min(best, pointDistance(p, proj));
        } else {
            best = std::min(best, pointDistance(p, poly[i]));
        }
    }
    return best;
}

double maxDeviation(const std::vector<SkewPoint>& points,
                    const std::vector<ContourPolyline>& contours) {
    require(!contours.empty(), "maxDeviation: no contours to compare against");
    double worst = 0.0;
    for (const SkewPoint& p : points) {
        double best = std::numeric_limits<double>::max();
        for (const ContourPolyline& poly : contours) {
            best = std::min(best, distanceToPolyline(p, poly));
        }
        worst = std::max(worst, best);
    }
    return worst;
}

}  // namespace shtrace
