#include "shtrace/measure/surface.hpp"

#include <algorithm>

#include "shtrace/util/error.hpp"
#include "shtrace/util/table.hpp"

namespace shtrace {

namespace {
void checkAxis(const std::vector<double>& axis, const char* name) {
    require(axis.size() >= 2, "OutputSurface: axis '", name,
            "' needs at least 2 samples");
    for (std::size_t i = 1; i < axis.size(); ++i) {
        require(axis[i] > axis[i - 1], "OutputSurface: axis '", name,
                "' must be strictly increasing");
    }
}

/// Index of the interval containing v (axis[k] <= v <= axis[k+1]).
std::size_t intervalIndex(const std::vector<double>& axis, double v) {
    const auto it = std::upper_bound(axis.begin(), axis.end(), v);
    std::size_t hi = static_cast<std::size_t>(it - axis.begin());
    hi = std::clamp<std::size_t>(hi, 1, axis.size() - 1);
    return hi - 1;
}
}  // namespace

OutputSurface::OutputSurface(std::vector<double> setupSkews,
                             std::vector<double> holdSkews)
    : setupSkews_(std::move(setupSkews)),
      holdSkews_(std::move(holdSkews)),
      values_(setupSkews_.size(), holdSkews_.size()) {
    checkAxis(setupSkews_, "setup");
    checkAxis(holdSkews_, "hold");
}

bool OutputSurface::contains(const SkewPoint& p) const {
    return p.setup >= setupSkews_.front() && p.setup <= setupSkews_.back() &&
           p.hold >= holdSkews_.front() && p.hold <= holdSkews_.back();
}

double OutputSurface::interpolate(const SkewPoint& p) const {
    require(contains(p), "OutputSurface::interpolate: point (", p.setup, ",",
            p.hold, ") outside the sampled grid");
    const std::size_t i = intervalIndex(setupSkews_, p.setup);
    const std::size_t j = intervalIndex(holdSkews_, p.hold);
    const double fs = (p.setup - setupSkews_[i]) /
                      (setupSkews_[i + 1] - setupSkews_[i]);
    const double fh =
        (p.hold - holdSkews_[j]) / (holdSkews_[j + 1] - holdSkews_[j]);
    const double v00 = values_(i, j);
    const double v10 = values_(i + 1, j);
    const double v01 = values_(i, j + 1);
    const double v11 = values_(i + 1, j + 1);
    return v00 * (1 - fs) * (1 - fh) + v10 * fs * (1 - fh) +
           v01 * (1 - fs) * fh + v11 * fs * fh;
}

void OutputSurface::writeCsv(const std::string& path) const {
    CsvWriter csv(path);
    csv.writeHeader({"setup_skew", "hold_skew", "output"});
    for (std::size_t i = 0; i < setupCount(); ++i) {
        for (std::size_t j = 0; j < holdCount(); ++j) {
            csv.writeRow({setupSkews_[i], holdSkews_[j], values_(i, j)});
        }
    }
}

}  // namespace shtrace
