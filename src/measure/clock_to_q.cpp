#include "shtrace/measure/clock_to_q.hpp"

#include "shtrace/measure/crossing.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

std::optional<double> measureClockToQ(const TransientResult& result,
                                      const Vector& outputSelector,
                                      const ClockToQSpec& spec) {
    require(!result.times.empty() && !result.states.empty(),
            "measureClockToQ: transient has no stored states");
    const std::vector<double> signal = result.signal(outputSelector);
    const auto crossing =
        firstCrossingAfter(result.times, signal, spec.threshold(),
                           spec.clockEdgeMidpoint, spec.risingOutput());
    if (!crossing) {
        return std::nullopt;
    }
    return crossing->time - spec.clockEdgeMidpoint;
}

bool latchedSuccessfully(const TransientResult& result,
                         const Vector& outputSelector,
                         const ClockToQSpec& spec) {
    require(!result.states.empty(),
            "latchedSuccessfully: transient has no stored states");
    const double finalValue = outputSelector.dot(result.states.back());
    return spec.risingOutput() ? finalValue >= spec.threshold()
                               : finalValue <= spec.threshold();
}

}  // namespace shtrace
