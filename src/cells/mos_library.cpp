#include "shtrace/cells/mos_library.hpp"

#include <cmath>

#include "shtrace/util/error.hpp"

namespace shtrace {

ProcessCorner ProcessCorner::typical() { return ProcessCorner{}; }

ProcessCorner ProcessCorner::fast() {
    ProcessCorner c;
    c.name = "FF";
    c.vdd = 2.75;
    c.vtn = 0.38;
    c.vtp = 0.43;
    c.kpn = 72e-6;
    c.kpp = 30e-6;
    return c;
}

ProcessCorner ProcessCorner::slow() {
    ProcessCorner c;
    c.name = "SS";
    c.vdd = 2.25;
    c.vtn = 0.52;
    c.vtp = 0.57;
    c.kpn = 50e-6;
    c.kpp = 21e-6;
    return c;
}

ProcessCorner ProcessCorner::atTemperature(double celsius) const {
    ProcessCorner c = *this;
    const double tKelvin = celsius + 273.15;
    const double ratio = tKelvin / 300.0;
    const double mobilityScale = std::pow(ratio, -1.5);
    const double vtShift = -1.5e-3 * (tKelvin - 300.0);
    c.kpn *= mobilityScale;
    c.kpp *= mobilityScale;
    c.vtn = std::max(0.05, c.vtn + vtShift);
    c.vtp = std::max(0.05, c.vtp + vtShift);
    c.name += message("@", celsius, "C");
    return c;
}

namespace {
void fillCaps(const ProcessCorner& corner, double w, double l,
              MosfetParams& p) {
    const double gateCap = corner.coxPerArea * w * l;
    const double overlap = corner.overlapCapPerWidth * w;
    // Meyer-simplified split: half the channel capacitance to each of
    // source and drain, plus overlaps; a small residual to bulk.
    p.cgs = 0.5 * gateCap + overlap;
    p.cgd = 0.5 * gateCap + overlap;
    p.cgb = 0.1 * gateCap;
    p.cdb = corner.junctionCapPerWidth * w;
    p.csb = corner.junctionCapPerWidth * w;
}
}  // namespace

MosfetParams makeNmos(const ProcessCorner& corner, double w, double l) {
    require(w > 0.0 && l > 0.0, "makeNmos: W/L must be positive");
    MosfetParams p;
    p.type = MosfetType::Nmos;
    p.vt0 = corner.vtn;
    p.kp = corner.kpn;
    p.lambda = corner.lambdaN;
    p.w = w;
    p.l = l;
    fillCaps(corner, w, l, p);
    return p;
}

MosfetParams makePmos(const ProcessCorner& corner, double w, double l) {
    require(w > 0.0 && l > 0.0, "makePmos: W/L must be positive");
    MosfetParams p;
    p.type = MosfetType::Pmos;
    p.vt0 = corner.vtp;
    p.kp = corner.kpp;
    p.lambda = corner.lambdaP;
    p.w = w;
    p.l = l;
    fillCaps(corner, w, l, p);
    return p;
}

}  // namespace shtrace
