#include "shtrace/cells/tspc.hpp"

#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

RegisterFixture buildTspcRegister(const TspcOptions& opt) {
    RegisterFixture fx;
    fx.name = "TSPC";
    fx.vdd = opt.corner.vdd;
    fx.activeEdgeIndex = opt.activeEdgeIndex;

    Circuit& ckt = fx.circuit;
    const NodeId vdd = ckt.node("vdd");
    const NodeId clk = ckt.node("clk");
    const NodeId d = ckt.node("d");
    const NodeId x1 = ckt.node("x1");
    const NodeId s1 = ckt.node("s1");
    const NodeId y = ckt.node("y");
    const NodeId s2 = ckt.node("s2");
    const NodeId qb = ckt.node("qb");
    const NodeId s3 = ckt.node("s3");
    const NodeId q = ckt.node("q");
    fx.clk = clk;
    fx.d = d;
    fx.q = q;

    // --- sources ---
    ckt.add<VoltageSource>("Vdd", vdd, kGround, opt.corner.vdd);

    ClockWaveform::Spec clockSpec = opt.clockSpec;
    clockSpec.v1 = opt.corner.vdd;  // clock swings rail to rail
    fx.clock = std::make_shared<ClockWaveform>(clockSpec);
    ckt.add<VoltageSource>("Vclk", clk, kGround, fx.clock);

    DataPulse::Spec dataSpec;
    dataSpec.v0 = opt.risingData ? 0.0 : opt.corner.vdd;
    dataSpec.v1 = opt.risingData ? opt.corner.vdd : 0.0;
    dataSpec.activeEdgeTime = fx.clock->risingEdgeMidpoint(opt.activeEdgeIndex);
    dataSpec.transitionTime = opt.dataTransitionTime;
    fx.data = std::make_shared<DataPulse>(dataSpec);
    ckt.add<VoltageSource>("Vdata", d, kGround, fx.data);

    // The latched datum is dataSpec.v1; with the output inverter Q follows D.
    fx.qInitial = dataSpec.v0;
    fx.qFinal = dataSpec.v1;

    // --- stage 1: p-section, transparent at CLK=0 ---
    //   MP1a: vdd -> s1, gate D      (series pull-up, clock-gated so x1
    //   MP1b: s1 -> x1,  gate CLK     cannot RISE during evaluation --
    //   MN1:  x1 -> gnd, gate D       this is what makes TSPC edge-triggered)
    const auto nmos = [&](double w) { return makeNmos(opt.corner, w, opt.l); };
    const auto pmos = [&](double w) { return makePmos(opt.corner, w, opt.l); };
    ckt.add<Mosfet>("MP1a", s1, d, vdd, vdd, pmos(opt.wp));
    ckt.add<Mosfet>("MP1b", x1, clk, s1, vdd, pmos(opt.wp));
    ckt.add<Mosfet>("MN1", x1, d, kGround, kGround, nmos(opt.wn));

    // --- stage 2: n-section precharge (CLK=0) / evaluate ~x1 (CLK=1) ---
    //   MP2: vdd -> y, gate CLK
    //   MN3: y -> s2,  gate x1
    //   MN4: s2 -> gnd, gate CLK
    ckt.add<Mosfet>("MP2", y, clk, vdd, vdd, pmos(opt.wp));
    ckt.add<Mosfet>("MN3", y, x1, s2, kGround, nmos(opt.wn));
    ckt.add<Mosfet>("MN4", s2, clk, kGround, kGround, nmos(opt.wn));

    // --- stage 3: qb = ~y when CLK=1, dynamic hold when CLK=0 ---
    //   MP3: vdd -> qb, gate y
    //   MN5: qb -> s3,  gate CLK
    //   MN6: s3 -> gnd, gate y
    ckt.add<Mosfet>("MP3", qb, y, vdd, vdd, pmos(opt.wp));
    ckt.add<Mosfet>("MN5", qb, clk, s3, kGround, nmos(opt.wn));
    ckt.add<Mosfet>("MN6", s3, y, kGround, kGround, nmos(opt.wn));

    // --- output inverter: Q = ~qb ---
    ckt.add<Mosfet>("MP4", q, qb, vdd, vdd, pmos(opt.wp));
    ckt.add<Mosfet>("MN7", q, qb, kGround, kGround, nmos(opt.wn));

    // --- parasitics / load ---
    require(opt.outputLoadCapacitance > 0.0,
            "buildTspcRegister: output load must be positive");
    ckt.add<Capacitor>("Cload", q, kGround, opt.outputLoadCapacitance);
    if (opt.internalNodeCapacitance > 0.0) {
        ckt.add<Capacitor>("Cx1", x1, kGround, opt.internalNodeCapacitance);
        ckt.add<Capacitor>("Cy", y, kGround, opt.internalNodeCapacitance);
        ckt.add<Capacitor>("Cqb", qb, kGround, opt.internalNodeCapacitance);
    }

    ckt.finalize();
    return fx;
}

}  // namespace shtrace
