#include "shtrace/cells/register_chain.hpp"

#include <string>

#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

RegisterFixture buildTspcRegisterChain(const RegisterChainOptions& options) {
    const TspcOptions& opt = options.bit;
    require(options.bits >= 1, "buildTspcRegisterChain: bits must be >= 1");
    require(opt.outputLoadCapacitance > 0.0,
            "buildTspcRegisterChain: output load must be positive");

    RegisterFixture fx;
    fx.name = "TSPC-chain" + std::to_string(options.bits);
    fx.vdd = opt.corner.vdd;
    fx.activeEdgeIndex = opt.activeEdgeIndex;

    Circuit& ckt = fx.circuit;
    const NodeId vdd = ckt.node("vdd");
    const NodeId clk = ckt.node("clk");
    const NodeId d = ckt.node("d");
    fx.clk = clk;
    fx.d = d;

    // --- shared sources (identical to the single-bit builder) ---
    ckt.add<VoltageSource>("Vdd", vdd, kGround, opt.corner.vdd);

    ClockWaveform::Spec clockSpec = opt.clockSpec;
    clockSpec.v1 = opt.corner.vdd;
    fx.clock = std::make_shared<ClockWaveform>(clockSpec);
    ckt.add<VoltageSource>("Vclk", clk, kGround, fx.clock);

    DataPulse::Spec dataSpec;
    dataSpec.v0 = opt.risingData ? 0.0 : opt.corner.vdd;
    dataSpec.v1 = opt.risingData ? opt.corner.vdd : 0.0;
    dataSpec.activeEdgeTime = fx.clock->risingEdgeMidpoint(opt.activeEdgeIndex);
    dataSpec.transitionTime = opt.dataTransitionTime;
    fx.data = std::make_shared<DataPulse>(dataSpec);
    ckt.add<VoltageSource>("Vdata", d, kGround, fx.data);

    fx.qInitial = dataSpec.v0;
    fx.qFinal = dataSpec.v1;

    const auto nmos = [&](double w) { return makeNmos(opt.corner, w, opt.l); };
    const auto pmos = [&](double w) { return makePmos(opt.corner, w, opt.l); };

    // --- one TSPC bit per iteration, data chained from the previous Q ---
    NodeId din = d;
    for (int b = 0; b < options.bits; ++b) {
        const std::string p = "b" + std::to_string(b) + "_";
        const NodeId x1 = ckt.node(p + "x1");
        const NodeId s1 = ckt.node(p + "s1");
        const NodeId y = ckt.node(p + "y");
        const NodeId s2 = ckt.node(p + "s2");
        const NodeId qb = ckt.node(p + "qb");
        const NodeId s3 = ckt.node(p + "s3");
        const NodeId q = ckt.node(p + "q");

        // Stage 1: p-section, transparent at CLK=0.
        ckt.add<Mosfet>(p + "MP1a", s1, din, vdd, vdd, pmos(opt.wp));
        ckt.add<Mosfet>(p + "MP1b", x1, clk, s1, vdd, pmos(opt.wp));
        ckt.add<Mosfet>(p + "MN1", x1, din, kGround, kGround, nmos(opt.wn));
        // Stage 2: n-section precharge / evaluate.
        ckt.add<Mosfet>(p + "MP2", y, clk, vdd, vdd, pmos(opt.wp));
        ckt.add<Mosfet>(p + "MN3", y, x1, s2, kGround, nmos(opt.wn));
        ckt.add<Mosfet>(p + "MN4", s2, clk, kGround, kGround, nmos(opt.wn));
        // Stage 3: qb = ~y at CLK=1, dynamic hold at CLK=0.
        ckt.add<Mosfet>(p + "MP3", qb, y, vdd, vdd, pmos(opt.wp));
        ckt.add<Mosfet>(p + "MN5", qb, clk, s3, kGround, nmos(opt.wn));
        ckt.add<Mosfet>(p + "MN6", s3, y, kGround, kGround, nmos(opt.wn));
        // Output inverter: Q = ~qb.
        ckt.add<Mosfet>(p + "MP4", q, qb, vdd, vdd, pmos(opt.wp));
        ckt.add<Mosfet>(p + "MN7", q, qb, kGround, kGround, nmos(opt.wn));

        // Per-bit parasitics, same values as the single-bit builder; the
        // next bit's gate loading on q is real (MP1a/MN1 of bit b+1).
        ckt.add<Capacitor>(p + "Cload", q, kGround, opt.outputLoadCapacitance);
        if (opt.internalNodeCapacitance > 0.0) {
            ckt.add<Capacitor>(p + "Cx1", x1, kGround,
                               opt.internalNodeCapacitance);
            ckt.add<Capacitor>(p + "Cy", y, kGround,
                               opt.internalNodeCapacitance);
            ckt.add<Capacitor>(p + "Cqb", qb, kGround,
                               opt.internalNodeCapacitance);
        }

        if (b == 0) {
            fx.q = q;  // the characterized output is bit 0's Q
        }
        din = q;
    }

    ckt.finalize();
    return fx;
}

}  // namespace shtrace
