#include "shtrace/cells/c2mos.hpp"

#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

RegisterFixture buildC2mosRegister(const C2mosOptions& opt) {
    RegisterFixture fx;
    fx.name = "C2MOS";
    fx.vdd = opt.corner.vdd;
    fx.activeEdgeIndex = opt.activeEdgeIndex;

    Circuit& ckt = fx.circuit;
    const NodeId vdd = ckt.node("vdd");
    const NodeId clk = ckt.node("clk");
    const NodeId clkb = ckt.node("clkb");
    const NodeId d = ckt.node("d");
    const NodeId m1 = ckt.node("m1");  // master PMOS stack internal node
    const NodeId m2 = ckt.node("m2");  // master NMOS stack internal node
    const NodeId x = ckt.node("x");    // master output / slave input
    const NodeId sp = ckt.node("sp");  // slave PMOS stack internal node
    const NodeId sn = ckt.node("sn");  // slave NMOS stack internal node
    const NodeId q = ckt.node("q");
    fx.clk = clk;
    fx.d = d;
    fx.q = q;

    // --- sources ---
    ckt.add<VoltageSource>("Vdd", vdd, kGround, opt.corner.vdd);

    ClockWaveform::Spec clockSpec = opt.clockSpec;
    clockSpec.v1 = opt.corner.vdd;
    fx.clock = std::make_shared<ClockWaveform>(clockSpec);
    ckt.add<VoltageSource>("Vclk", clk, kGround, fx.clock);

    ClockWaveform::Spec barSpec = clockSpec;
    barSpec.inverted = true;
    barSpec.delay += opt.clkBarDelay;  // paper: clk-bar delayed 0.3 ns
    fx.clockBar = std::make_shared<ClockWaveform>(barSpec);
    ckt.add<VoltageSource>("Vclkb", clkb, kGround, fx.clockBar);

    DataPulse::Spec dataSpec;
    dataSpec.v0 = opt.risingData ? 0.0 : opt.corner.vdd;
    dataSpec.v1 = opt.risingData ? opt.corner.vdd : 0.0;
    dataSpec.activeEdgeTime = fx.clock->risingEdgeMidpoint(opt.activeEdgeIndex);
    dataSpec.transitionTime = opt.dataTransitionTime;
    fx.data = std::make_shared<DataPulse>(dataSpec);
    ckt.add<VoltageSource>("Vdata", d, kGround, fx.data);

    // Two inversions: Q follows D.
    fx.qInitial = dataSpec.v0;
    fx.qFinal = dataSpec.v1;

    const auto nmos = [&](double w) { return makeNmos(opt.corner, w, opt.l); };
    const auto pmos = [&](double w) { return makePmos(opt.corner, w, opt.l); };

    // --- master C2MOS inverter: transparent when CLK=0 ---
    //   MP1: vdd -> m1, gate D      MP2: m1 -> x, gate CLK
    //   MN1: x -> m2,  gate CLKB    MN2: m2 -> gnd, gate D
    ckt.add<Mosfet>("MP1", m1, d, vdd, vdd, pmos(opt.wp));
    ckt.add<Mosfet>("MP2", x, clk, m1, vdd, pmos(opt.wp));
    ckt.add<Mosfet>("MN1", x, clkb, m2, kGround, nmos(opt.wn));
    ckt.add<Mosfet>("MN2", m2, d, kGround, kGround, nmos(opt.wn));

    // --- slave C2MOS inverter: transparent when CLK=1 ---
    //   MP3: vdd -> sp, gate X      MP4: sp -> q, gate CLKB
    //   MN3: q -> sn,  gate CLK     MN4: sn -> gnd, gate X
    ckt.add<Mosfet>("MP3", sp, x, vdd, vdd, pmos(opt.wp));
    ckt.add<Mosfet>("MP4", q, clkb, sp, vdd, pmos(opt.wp));
    ckt.add<Mosfet>("MN3", q, clk, sn, kGround, nmos(opt.wn));
    ckt.add<Mosfet>("MN4", sn, x, kGround, kGround, nmos(opt.wn));

    // --- parasitics / load ---
    require(opt.outputLoadCapacitance > 0.0,
            "buildC2mosRegister: output load must be positive");
    ckt.add<Capacitor>("Cload", q, kGround, opt.outputLoadCapacitance);
    if (opt.internalNodeCapacitance > 0.0) {
        ckt.add<Capacitor>("Cx", x, kGround, opt.internalNodeCapacitance);
    }

    ckt.finalize();
    return fx;
}

}  // namespace shtrace
