#include "shtrace/cells/latch.hpp"

#include "shtrace/cells/inverter.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

RegisterFixture buildTransparentLatch(const LatchOptions& opt) {
    RegisterFixture fx;
    fx.name = "TG-LATCH";
    fx.vdd = opt.corner.vdd;
    fx.activeEdgeIndex = opt.activeEdgeIndex;

    Circuit& ckt = fx.circuit;
    const NodeId vdd = ckt.node("vdd");
    const NodeId clk = ckt.node("clk");
    const NodeId clkb = ckt.node("clkb");
    const NodeId d = ckt.node("d");
    const NodeId a = ckt.node("a");    // storage node
    const NodeId qb = ckt.node("qb");  // ~D while transparent
    const NodeId q = ckt.node("q");
    fx.clk = clk;
    fx.d = d;
    fx.q = q;

    // --- sources ---
    ckt.add<VoltageSource>("Vdd", vdd, kGround, opt.corner.vdd);

    ClockWaveform::Spec clockSpec = opt.clockSpec;
    clockSpec.v1 = opt.corner.vdd;
    fx.clock = std::make_shared<ClockWaveform>(clockSpec);
    ckt.add<VoltageSource>("Vclk", clk, kGround, fx.clock);

    ClockWaveform::Spec barSpec = clockSpec;
    barSpec.inverted = true;
    barSpec.delay += opt.clkBarDelay;
    fx.clockBar = std::make_shared<ClockWaveform>(barSpec);
    ckt.add<VoltageSource>("Vclkb", clkb, kGround, fx.clockBar);

    // The latch is transparent while CLK is high and CLOSES on the falling
    // edge: center the data pulse (and the measurement) on that edge.
    const double closingEdge =
        fx.clock->risingEdgeMidpoint(opt.activeEdgeIndex) +
        clockSpec.dutyCycle * clockSpec.period;
    fx.activeEdgeOverride = closingEdge;

    DataPulse::Spec dataSpec;
    dataSpec.v0 = opt.risingData ? 0.0 : opt.corner.vdd;
    dataSpec.v1 = opt.risingData ? opt.corner.vdd : 0.0;
    dataSpec.activeEdgeTime = closingEdge;
    dataSpec.transitionTime = opt.dataTransitionTime;
    fx.data = std::make_shared<DataPulse>(dataSpec);
    ckt.add<VoltageSource>("Vdata", d, kGround, fx.data);

    fx.qInitial = dataSpec.v0;
    fx.qFinal = dataSpec.v1;

    // --- the latch: TG (transparent at CLK=1), keeper, output buffer ---
    const GateSizing drive{opt.wn, opt.wp, opt.l};
    const GateSizing keeper{opt.wn * opt.keeperRatio,
                            opt.wp * opt.keeperRatio, opt.l};
    addTransmissionGate(ckt, "TG1", d, a, clk, clkb, vdd, opt.corner, drive);
    addInverter(ckt, "INV1", a, qb, vdd, opt.corner, drive);
    addInverter(ckt, "KPR1", qb, a, vdd, opt.corner, keeper);
    addInverter(ckt, "INV2", qb, q, vdd, opt.corner, drive);

    // --- parasitics / load ---
    require(opt.outputLoadCapacitance > 0.0,
            "buildTransparentLatch: output load must be positive");
    ckt.add<Capacitor>("Cload", q, kGround, opt.outputLoadCapacitance);
    if (opt.internalNodeCapacitance > 0.0) {
        ckt.add<Capacitor>("Ca", a, kGround, opt.internalNodeCapacitance);
    }

    ckt.finalize();
    return fx;
}

}  // namespace shtrace
