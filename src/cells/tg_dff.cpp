#include "shtrace/cells/tg_dff.hpp"

#include "shtrace/cells/inverter.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

RegisterFixture buildTgDffRegister(const TgDffOptions& opt) {
    RegisterFixture fx;
    fx.name = "TG-DFF";
    fx.vdd = opt.corner.vdd;
    fx.activeEdgeIndex = opt.activeEdgeIndex;

    Circuit& ckt = fx.circuit;
    const NodeId vdd = ckt.node("vdd");
    const NodeId clk = ckt.node("clk");
    const NodeId clkb = ckt.node("clkb");
    const NodeId d = ckt.node("d");
    const NodeId a = ckt.node("a");    // master storage node
    const NodeId b = ckt.node("b");    // master output (~D)
    const NodeId c = ckt.node("c");    // slave storage node
    const NodeId q = ckt.node("q");    // slave output (= D)
    fx.clk = clk;
    fx.d = d;
    fx.q = q;

    // --- sources ---
    ckt.add<VoltageSource>("Vdd", vdd, kGround, opt.corner.vdd);

    ClockWaveform::Spec clockSpec = opt.clockSpec;
    clockSpec.v1 = opt.corner.vdd;
    fx.clock = std::make_shared<ClockWaveform>(clockSpec);
    ckt.add<VoltageSource>("Vclk", clk, kGround, fx.clock);

    ClockWaveform::Spec barSpec = clockSpec;
    barSpec.inverted = true;
    barSpec.delay += opt.clkBarDelay;
    fx.clockBar = std::make_shared<ClockWaveform>(barSpec);
    ckt.add<VoltageSource>("Vclkb", clkb, kGround, fx.clockBar);

    DataPulse::Spec dataSpec;
    dataSpec.v0 = opt.risingData ? 0.0 : opt.corner.vdd;
    dataSpec.v1 = opt.risingData ? opt.corner.vdd : 0.0;
    dataSpec.activeEdgeTime = fx.clock->risingEdgeMidpoint(opt.activeEdgeIndex);
    dataSpec.transitionTime = opt.dataTransitionTime;
    fx.data = std::make_shared<DataPulse>(dataSpec);
    ckt.add<VoltageSource>("Vdata", d, kGround, fx.data);

    fx.qInitial = dataSpec.v0;
    fx.qFinal = dataSpec.v1;

    const GateSizing drive{opt.wn, opt.wp, opt.l};
    const GateSizing keeper{opt.wn * opt.keeperRatio, opt.wp * opt.keeperRatio,
                            opt.l};

    // --- master latch: transparent at CLK=0 ---
    // TG1 passes D -> a when clk low (NMOS gate clkb, PMOS gate clk).
    addTransmissionGate(ckt, "TG1", d, a, clkb, clk, vdd, opt.corner, drive);
    addInverter(ckt, "INV1", a, b, vdd, opt.corner, drive);
    // Weak keeper holds node a when the TG is off.
    addInverter(ckt, "KPR1", b, a, vdd, opt.corner, keeper);

    // --- slave latch: transparent at CLK=1 ---
    addTransmissionGate(ckt, "TG2", b, c, clk, clkb, vdd, opt.corner, drive);
    addInverter(ckt, "INV2", c, q, vdd, opt.corner, drive);
    addInverter(ckt, "KPR2", q, c, vdd, opt.corner, keeper);

    // --- parasitics / load ---
    require(opt.outputLoadCapacitance > 0.0,
            "buildTgDffRegister: output load must be positive");
    ckt.add<Capacitor>("Cload", q, kGround, opt.outputLoadCapacitance);
    if (opt.internalNodeCapacitance > 0.0) {
        ckt.add<Capacitor>("Ca", a, kGround, opt.internalNodeCapacitance);
        ckt.add<Capacitor>("Cc", c, kGround, opt.internalNodeCapacitance);
    }

    ckt.finalize();
    return fx;
}

}  // namespace shtrace
