#include "shtrace/cells/inverter.hpp"

namespace shtrace {

void addInverter(Circuit& ckt, const std::string& prefix, NodeId in,
                 NodeId out, NodeId vdd, const ProcessCorner& corner,
                 const GateSizing& sizing) {
    ckt.add<Mosfet>(prefix + "_p", out, in, vdd, vdd,
                    makePmos(corner, sizing.wp, sizing.l));
    ckt.add<Mosfet>(prefix + "_n", out, in, kGround, kGround,
                    makeNmos(corner, sizing.wn, sizing.l));
}

void addTransmissionGate(Circuit& ckt, const std::string& prefix, NodeId a,
                         NodeId b, NodeId nGate, NodeId pGate, NodeId vdd,
                         const ProcessCorner& corner,
                         const GateSizing& sizing) {
    ckt.add<Mosfet>(prefix + "_n", a, nGate, b, kGround,
                    makeNmos(corner, sizing.wn, sizing.l));
    ckt.add<Mosfet>(prefix + "_p", a, pGate, b, vdd,
                    makePmos(corner, sizing.wp, sizing.l));
}

}  // namespace shtrace
