#include "shtrace/chz/characterize.hpp"

#include <algorithm>
#include <optional>

#include "cache_glue.hpp"
#include "shtrace/obs/obs.hpp"

namespace shtrace {

namespace {

/// Clamps the seed's hold coordinate into the tracer window and traces;
/// MPNR then pulls the point onto the curve inside (or near) the bounds.
void traceFrom(const CharacterizationProblem& problem, SkewPoint seed,
               const CharacterizeOptions& options,
               CharacterizeResult* result) {
    seed.hold = std::clamp(seed.hold, options.tracer.bounds.holdMin,
                           options.tracer.bounds.holdMax);
    result->contour =
        traceContour(problem.h(), seed, options.tracer, &result->stats);
    result->success =
        result->contour.seedConverged && !result->contour.points.empty();
    if (result->success) {
        result->failureReason.clear();
    } else {
        // Never hand back an empty contour without a reason: the tracer's
        // incident log says exactly what went wrong and where.
        const std::string why = result->contour.diagnostics.summary();
        result->failureReason =
            std::string(result->contour.seedConverged
                            ? "contour tracing produced no points"
                            : "contour seed correction failed") +
            (why.empty() ? "" : " (" + why + ")");
    }
}

CharacterizeResult characterizeImpl(const RegisterFixture& fixture,
                                    const CharacterizeOptions& options) {
    CharacterizeResult result;
    ScopedTimer timer(&result.stats);

    const std::optional<store::ResultStore> cache =
        chz_detail::openStore(options);
    std::optional<store::CacheKey> key;
    if (cache) {
        const obs::ScopedStageTimer storeRead(obs::Stage::StoreRead);
        key = store::characterizeKey(fixture, options);
        if (chz_detail::mayRead(options)) {
            if (const auto entry = chz_detail::loadKind(
                    *cache, key->full, store::kKindCharacterize)) {
                try {
                    result =
                        store::deserializeCharacterizeResult(entry->payload);
                    result.stats = SimStats{};
                    result.stats.cacheHits = 1;
                    return result;
                } catch (const store::StoreFormatError&) {
                    // Unreadable payload: recompute (and overwrite below).
                }
            }
        }
        result.stats.cacheMisses = 1;
    }

    const CharacterizationProblem problem(fixture, options.criterion,
                                          options.recipe, &result.stats);
    result.characteristicClockToQ = problem.characteristicClockToQ();
    result.degradedClockToQ = problem.degradedClockToQ();
    result.tf = problem.tf();
    result.r = problem.r();

    // A cached contour of the same problem family (same circuit/recipe,
    // different degradation target) replaces the seed bisection entirely;
    // a failed warm trace falls back to the cold path below.
    if (cache && options.warmStart) {
        std::optional<SkewPoint> warmSeed;
        {
            const obs::ScopedStageTimer storeRead(obs::Stage::StoreRead);
            warmSeed =
                chz_detail::warmStartPoint(*cache, *key, options.tracer);
        }
        if (const auto& warm = warmSeed) {
            result.seed = SeedResult{};
            result.seed.found = true;
            result.seed.seed = *warm;
            result.stats.cacheWarmStarts = 1;
            const std::uint64_t op = result.stats.hEvaluations;
            traceFrom(problem, *warm, options, &result);
            result.contour.diagnostics.markPreTrace(
                TimelineEventKind::WarmStart, *warm, op);
        }
    }

    if (!result.success) {
        result.seed = findSeedPoint(problem.h(), problem.passSign(),
                                    options.seed, &result.stats);
        if (!result.seed.found) {
            result.failureReason = "contour seed search failed";
            return result;
        }
        const std::uint64_t op = result.stats.hEvaluations;
        traceFrom(problem, result.seed.seed, options, &result);
        result.contour.diagnostics.markPreTrace(TimelineEventKind::SeedFound,
                                                result.seed.seed, op);
    }

    if (result.success && cache && chz_detail::mayWrite(options)) {
        const obs::ScopedStageTimer storePublish(obs::Stage::StorePublish);
        store::StoreEntry entry;
        entry.kind = store::kKindCharacterize;
        entry.key = key->full;
        entry.problem = key->problem;
        entry.label = options.storeLabel;
        entry.payload = store::serializeCharacterizeResult(result);
        cache->save(entry);
    }
    return result;
}

}  // namespace

CharacterizeResult characterizeInterdependent(
    const RegisterFixture& fixture, const CharacterizeOptions& options) {
    const obs::ScopedRequestContext requestScope(requestContextFor(options));
    obs::RunObservation observation(options.metricsPath,
                                    options.spanTracePath);
    CharacterizeResult result;
    {
        // Scoped so the span is closed (and in the ring) before finish()
        // snapshots the trace.
        SHTRACE_SPAN("chz.characterize");
        result = characterizeImpl(fixture, options);
    }
    observation.finish(result.stats);
    return result;
}

}  // namespace shtrace
