#include "shtrace/chz/characterize.hpp"

#include <algorithm>

namespace shtrace {

CharacterizeResult characterizeInterdependent(
    const RegisterFixture& fixture, const CharacterizeOptions& options) {
    CharacterizeResult result;
    ScopedTimer timer(&result.stats);

    const CharacterizationProblem problem(fixture, options.criterion,
                                          options.recipe, &result.stats);
    result.characteristicClockToQ = problem.characteristicClockToQ();
    result.degradedClockToQ = problem.degradedClockToQ();
    result.tf = problem.tf();
    result.r = problem.r();

    result.seed = findSeedPoint(problem.h(), problem.passSign(), options.seed,
                                &result.stats);
    if (!result.seed.found) {
        return result;
    }

    // Enter the tracer window along the hold axis: MPNR will then pull the
    // point onto the curve inside (or near) the bounds.
    SkewPoint seed = result.seed.seed;
    seed.hold = std::clamp(seed.hold, options.tracer.bounds.holdMin,
                           options.tracer.bounds.holdMax);

    result.contour =
        traceContour(problem.h(), seed, options.tracer, &result.stats);
    result.success =
        result.contour.seedConverged && !result.contour.points.empty();
    return result;
}

}  // namespace shtrace
