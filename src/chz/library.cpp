#include "shtrace/chz/library.hpp"

#include <algorithm>
#include <fstream>
#include <optional>

#include "cache_glue.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"
#include "shtrace/util/units.hpp"

namespace shtrace {

namespace {

LibraryRow characterizeOne(const LibraryCell& cell, const RunConfig& opt,
                           const store::ResultStore* cache) {
    SHTRACE_SPAN("chz.library_row");
    LibraryRow row;
    row.cell = cell.name;
    ScopedTimer timer(&row.stats);
    try {
        const RegisterFixture fixture = cell.build();

        std::optional<store::CacheKey> key;
        if (cache != nullptr) {
            key = store::libraryRowKey(fixture, cell.criterion, opt,
                                       opt.traceContours);
            if (chz_detail::mayRead(opt)) {
                if (const auto entry = chz_detail::loadKind(
                        *cache, key->full, store::kKindLibraryRow)) {
                    try {
                        row = store::deserializeLibraryRow(entry->payload);
                        // The cell NAME is not part of the key (two
                        // identically-built cells share an entry), so
                        // restore this row's own name.
                        row.cell = cell.name;
                        row.stats = SimStats{};
                        row.stats.cacheHits = 1;
                        return row;
                    } catch (const store::StoreFormatError&) {
                        // Unreadable payload: recompute and overwrite.
                    }
                }
            }
            row.stats.cacheMisses = 1;
        }

        const CharacterizationProblem problem(fixture, cell.criterion,
                                              opt.recipe, &row.stats);
        row.characteristicClockToQ = problem.characteristicClockToQ();

        // Robust per-axis characterization: cells with near-zero (or
        // negative) constraints fall outside the default positive range,
        // so retry once with the range extended into negative skews.
        const auto characterizeAxis = [&](SkewAxis axis) {
            IndependentResult r = characterizeByNewton(
                problem.h(), axis, problem.passSign(), opt.independent,
                &row.stats);
            if (!r.converged) {
                IndependentOptions extended = opt.independent;
                extended.lo = -300e-12;
                r = characterizeByNewton(problem.h(), axis,
                                         problem.passSign(), extended,
                                         &row.stats);
            }
            return r;
        };
        const IndependentResult setup = characterizeAxis(SkewAxis::Setup);
        const IndependentResult hold = characterizeAxis(SkewAxis::Hold);
        if (!setup.converged || !hold.converged) {
            row.failureReason = "independent characterization diverged";
            return row;
        }
        row.setupTime = setup.skew;
        row.holdTime = hold.skew;

        if (opt.traceContours) {
            // A cached contour of the same problem family replaces the
            // seed bisection; a failed warm trace falls back cold.
            bool traced = false;
            if (cache != nullptr && opt.warmStart) {
                if (const auto warm = chz_detail::warmStartPoint(
                        *cache, *key, opt.tracer)) {
                    row.stats.cacheWarmStarts = 1;
                    const std::uint64_t op = row.stats.hEvaluations;
                    const TracedContour contour = traceContour(
                        problem.h(), *warm, opt.tracer, &row.stats);
                    row.diagnostics = contour.diagnostics;
                    row.diagnostics.markPreTrace(TimelineEventKind::WarmStart,
                                                 *warm, op);
                    if (contour.seedConverged && !contour.points.empty()) {
                        row.contour = contour.points;
                        traced = true;
                    }
                }
            }
            if (!traced) {
                const SeedResult seed = findSeedPoint(
                    problem.h(), problem.passSign(), opt.seed, &row.stats);
                if (!seed.found) {
                    row.failureReason = "contour seed search failed";
                    return row;
                }
                SkewPoint start = seed.seed;
                start.hold =
                    std::clamp(start.hold, opt.tracer.bounds.holdMin,
                               opt.tracer.bounds.holdMax);
                const std::uint64_t op = row.stats.hEvaluations;
                const TracedContour contour =
                    traceContour(problem.h(), start, opt.tracer, &row.stats);
                row.diagnostics = contour.diagnostics;
                row.diagnostics.markPreTrace(TimelineEventKind::SeedFound,
                                             seed.seed, op);
                if (!contour.seedConverged || contour.points.empty()) {
                    const std::string why = contour.diagnostics.summary();
                    row.failureReason =
                        "contour tracing failed" +
                        (why.empty() ? std::string() : " (" + why + ")");
                    return row;
                }
                row.contour = contour.points;
            }
        }
        row.success = true;
        if (cache != nullptr && chz_detail::mayWrite(opt)) {
            store::StoreEntry entry;
            entry.kind = store::kKindLibraryRow;
            entry.key = key->full;
            entry.problem = key->problem;
            entry.label = cell.name;
            entry.payload = store::serializeLibraryRow(row);
            cache->save(entry);
        }
    } catch (const Error& e) {
        row.failureReason = e.what();
    }
    return row;
}

}  // namespace

LibraryResult characterizeLibrary(const std::vector<LibraryCell>& cells,
                                  const RunConfig& config) {
    obs::RunObservation observation(config.metricsPath,
                                    config.spanTracePath);
    obs::setGauge(obs::Gauge::WorkerThreads,
                  resolveThreadCount(config.parallel.threads, cells.size()));
    obs::setGauge(obs::Gauge::BatchJobs,
                  static_cast<double>(cells.size()));
    LibraryResult result;
    result.rows.resize(cells.size());
    const std::optional<store::ResultStore> cache =
        chz_detail::openStore(config);
    const store::ResultStore* cachePtr = cache ? &*cache : nullptr;
    parallelRun(
        cells.size(),
        [&](std::size_t job, std::size_t /*worker*/) {
            // characterizeOne catches Error itself; this net additionally
            // turns any other escaped exception into the job's row failure
            // so one poisoned cell never takes down the batch.
            try {
                result.rows[job] =
                    characterizeOne(cells[job], config, cachePtr);
            } catch (const std::exception& e) {
                result.rows[job].cell = cells[job].name;
                result.rows[job].success = false;
                result.rows[job].failureReason = e.what();
            }
        },
        config.parallel, config.onJobDone);
    for (const LibraryRow& row : result.rows) {
        result.stats.merge(row.stats);
    }
    observation.finish(result.stats);
    return result;
}

void writeLibertyLite(const std::vector<LibraryRow>& rows,
                      const std::string& path,
                      const std::string& libraryName) {
    std::ofstream out(path);
    if (!out) {
        throw Error(message("writeLibertyLite: cannot open '", path, "'"));
    }
    const auto ns = [](double seconds) { return seconds * 1e9; };
    out << "/* generated by shtrace -- Liberty-LITE: familiar syntax, NOT a\n"
           "   spec-conformant .lib; setup_hold_contour is a vendor\n"
           "   extension carrying the interdependent pairs (SHIA-STA). */\n";
    out << "library (" << libraryName << ") {\n";
    out << "  time_unit : \"1ns\";\n";
    for (const LibraryRow& row : rows) {
        out << "  cell (" << row.cell << ") {\n";
        if (!row.success) {
            out << "    /* CHARACTERIZATION FAILED: " << row.failureReason
                << " */\n  }\n";
            continue;
        }
        if (!row.provenance.empty()) {
            out << "    shtrace_provenance : " << row.provenance << ";\n";
        }
        out << "    ff (IQ) { clocked_on : \"CLK\"; next_state : \"D\"; }\n";
        out << "    pin (Q) {\n"
            << "      timing () {\n"
            << "        related_pin : \"CLK\";\n"
            << "        timing_type : rising_edge;\n"
            << "        cell_rise (scalar) { values (\""
            << ns(row.characteristicClockToQ) << "\"); }\n"
            << "      }\n    }\n";
        out << "    pin (D) {\n"
            << "      timing () { related_pin : \"CLK\"; timing_type : "
               "setup_rising;\n        rise_constraint (scalar) { values (\""
            << ns(row.setupTime) << "\"); } }\n"
            << "      timing () { related_pin : \"CLK\"; timing_type : "
               "hold_rising;\n        rise_constraint (scalar) { values (\""
            << ns(row.holdTime) << "\"); } }\n"
            << "    }\n";
        if (!row.contour.empty()) {
            out << "    setup_hold_contour (\"+10%_clock_to_q\") {\n"
                << "      /* interdependent (setup, hold) pairs, ns */\n"
                << "      pairs (";
            for (std::size_t i = 0; i < row.contour.size(); ++i) {
                if (i != 0) {
                    out << ", ";
                }
                out << "\"" << ns(row.contour[i].setup) << ","
                    << ns(row.contour[i].hold) << "\"";
            }
            out << ");\n    }\n";
        }
        out << "  }\n";
    }
    out << "}\n";
}

}  // namespace shtrace
