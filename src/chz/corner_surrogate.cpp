#include "shtrace/chz/corner_surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

/// Piecewise linear through (-1, slow), (0, typ), (+1, fast); the end
/// segments extend for mild extrapolation beyond the library corners.
double blendCornerField(double slow, double typ, double fast, double p) {
    return p < 0.0 ? typ + (typ - slow) * p : typ + (fast - typ) * p;
}

double kernel(double r) { return r * r * r; }

double distance3(const std::array<double, 3>& a,
                 const std::array<double, 3>& b) {
    const double dx = a[0] - b[0];
    const double dy = a[1] - b[1];
    const double dz = a[2] - b[2];
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

void validateAxis(const std::vector<double>& axis, const char* name) {
    require(!axis.empty(), "PvtAxes: axis '", name, "' is empty");
    for (std::size_t i = 0; i < axis.size(); ++i) {
        require(std::isfinite(axis[i]), "PvtAxes: axis '", name,
                "' has a non-finite value");
        require(i == 0 || axis[i] > axis[i - 1], "PvtAxes: axis '", name,
                "' must be strictly ascending");
    }
}

double normalizedCoord(const std::vector<double>& axis, double value) {
    const double span = axis.back() - axis.front();
    return span > 0.0 ? (value - axis.front()) / span : 0.0;
}

}  // namespace

ProcessCorner cornerAtPvt(const PvtPoint& point) {
    require(std::isfinite(point.process) && std::isfinite(point.vdd) &&
                std::isfinite(point.temperatureC),
            "cornerAtPvt: non-finite coordinate");
    const ProcessCorner ss = ProcessCorner::slow();
    const ProcessCorner tt = ProcessCorner::typical();
    const ProcessCorner ff = ProcessCorner::fast();
    const double p = point.process;
    ProcessCorner blended;
    blended.vdd = blendCornerField(ss.vdd, tt.vdd, ff.vdd, p);
    blended.vtn = blendCornerField(ss.vtn, tt.vtn, ff.vtn, p);
    blended.vtp = blendCornerField(ss.vtp, tt.vtp, ff.vtp, p);
    blended.kpn = blendCornerField(ss.kpn, tt.kpn, ff.kpn, p);
    blended.kpp = blendCornerField(ss.kpp, tt.kpp, ff.kpp, p);
    blended.lambdaN = blendCornerField(ss.lambdaN, tt.lambdaN, ff.lambdaN, p);
    blended.lambdaP = blendCornerField(ss.lambdaP, tt.lambdaP, ff.lambdaP, p);
    blended.coxPerArea =
        blendCornerField(ss.coxPerArea, tt.coxPerArea, ff.coxPerArea, p);
    blended.overlapCapPerWidth =
        blendCornerField(ss.overlapCapPerWidth, tt.overlapCapPerWidth,
                         ff.overlapCapPerWidth, p);
    blended.junctionCapPerWidth =
        blendCornerField(ss.junctionCapPerWidth, tt.junctionCapPerWidth,
                         ff.junctionCapPerWidth, p);

    ProcessCorner corner = blended.atTemperature(point.temperatureC);
    corner.vdd = point.vdd;
    char name[48];
    std::snprintf(name, sizeof(name), "P%+.2f/V%.3f/T%+04.0f", point.process,
                  point.vdd, point.temperatureC);
    corner.name = name;
    return corner;
}

void PvtAxes::validate() const {
    validateAxis(process, "process");
    validateAxis(vdd, "vdd");
    validateAxis(temperatureC, "temperatureC");
}

PvtPoint PvtAxes::at(std::size_t index) const {
    require(index < cornerCount(), "PvtAxes::at index ", index,
            " out of range ", cornerCount());
    const std::size_t nt = temperatureC.size();
    const std::size_t nv = vdd.size();
    PvtPoint point;
    point.temperatureC = temperatureC[index % nt];
    point.vdd = vdd[(index / nt) % nv];
    point.process = process[index / (nt * nv)];
    return point;
}

std::array<double, 3> PvtAxes::normalized(const PvtPoint& point) const {
    return {normalizedCoord(process, point.process),
            normalizedCoord(vdd, point.vdd),
            normalizedCoord(temperatureC, point.temperatureC)};
}

std::vector<ProcessCorner> PvtAxes::corners() const {
    validate();
    std::vector<ProcessCorner> out;
    out.reserve(cornerCount());
    for (std::size_t i = 0; i < cornerCount(); ++i) {
        out.push_back(cornerAtPvt(at(i)));
    }
    return out;
}

std::vector<std::size_t> PvtAxes::anchorIndices() const {
    validate();
    const std::size_t nt = temperatureC.size();
    const std::size_t nv = vdd.size();
    auto flat = [&](std::size_t ip, std::size_t iv, std::size_t it) {
        return (ip * nv + iv) * nt + it;
    };
    auto ends = [](std::size_t n) {
        return n == 1 ? std::vector<std::size_t>{0}
                      : std::vector<std::size_t>{0, n - 1};
    };
    std::vector<std::size_t> anchors;
    for (std::size_t ip : ends(process.size())) {
        for (std::size_t iv : ends(nv)) {
            for (std::size_t it : ends(nt)) {
                anchors.push_back(flat(ip, iv, it));
            }
        }
    }
    anchors.push_back(flat((process.size() - 1) / 2, (nv - 1) / 2,
                           (nt - 1) / 2));
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
    return anchors;
}

double normalizedPvtDistance(const PvtAxes& axes, const PvtPoint& a,
                             const PvtPoint& b) {
    return distance3(axes.normalized(a), axes.normalized(b));
}

std::size_t nearestCornerIndex(const PvtAxes& axes, std::size_t target,
                               const std::vector<std::size_t>& candidates) {
    require(!candidates.empty(),
            "nearestCornerIndex: empty candidate list");
    const std::array<double, 3> t = axes.normalized(axes.at(target));
    std::size_t best = candidates.front();
    double bestDist = distance3(t, axes.normalized(axes.at(best)));
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        const std::size_t c = candidates[i];
        const double d = distance3(t, axes.normalized(axes.at(c)));
        if (d < bestDist || (d == bestDist && c < best)) {
            best = c;
            bestDist = d;
        }
    }
    return best;
}

std::vector<SkewPoint> resampleByArcLength(
    const std::vector<SkewPoint>& contour, std::size_t samples) {
    require(!contour.empty(), "resampleByArcLength: empty contour");
    require(samples >= 2, "resampleByArcLength: need at least 2 samples");
    for (const SkewPoint& p : contour) {
        require(std::isfinite(p.setup) && std::isfinite(p.hold),
                "resampleByArcLength: non-finite contour point");
    }

    // Cumulative arc length along the polyline.
    std::vector<double> cum(contour.size(), 0.0);
    for (std::size_t i = 1; i < contour.size(); ++i) {
        const double dx = contour[i].setup - contour[i - 1].setup;
        const double dy = contour[i].hold - contour[i - 1].hold;
        cum[i] = cum[i - 1] + std::sqrt(dx * dx + dy * dy);
    }
    const double total = cum.back();
    std::vector<SkewPoint> out(samples);
    if (total <= 0.0) {
        std::fill(out.begin(), out.end(), contour.front());
        return out;
    }
    std::size_t seg = 0;
    for (std::size_t k = 0; k < samples; ++k) {
        const double target =
            total * static_cast<double>(k) / static_cast<double>(samples - 1);
        while (seg + 2 < contour.size() && cum[seg + 1] < target) {
            ++seg;
        }
        const double len = cum[seg + 1] - cum[seg];
        const double t =
            len > 0.0 ? std::clamp((target - cum[seg]) / len, 0.0, 1.0) : 0.0;
        out[k].setup = contour[seg].setup +
                       t * (contour[seg + 1].setup - contour[seg].setup);
        out[k].hold =
            contour[seg].hold + t * (contour[seg + 1].hold - contour[seg].hold);
    }
    return out;
}

CornerSurrogate::Model CornerSurrogate::buildModel(
    const std::vector<std::array<double, 3>>& nodes,
    const std::vector<std::vector<double>>& outputs) {
    Model model;
    model.nodes = nodes;
    const std::size_t n = nodes.size();

    // Tail columns only for coordinates that actually vary: a constant
    // column duplicated by a degenerate coordinate would make the saddle
    // system singular.
    std::vector<int> varying;
    for (int d = 0; d < 3; ++d) {
        double lo = nodes.front()[d];
        double hi = lo;
        for (const auto& node : nodes) {
            lo = std::min(lo, node[d]);
            hi = std::max(hi, node[d]);
        }
        if (hi - lo > 1e-12) {
            varying.push_back(d);
        }
    }

    // Deterministic degradation ladder: quadratic tail, full linear tail,
    // constant-only tail, bare RBF, nearest node. The first system that
    // factorizes AND interpolates its own nodes wins. The quadratic rung
    // is offered only when the node count comfortably exceeds the tail
    // size: on a bare vertex lattice x^2 == x column-for-column and the
    // saddle system is singular, and the r^3 kernel is only conditionally
    // positive definite w.r.t. linears, so the quadratic-tail system is
    // not guaranteed nonsingular — the reproduction check below catches
    // the cases where it factors but cannot interpolate.
    struct Attempt {
        bool constant;
        std::vector<int> dims;
        std::vector<std::array<int, 2>> quad;
    };
    std::vector<std::array<int, 2>> quad;
    for (std::size_t a = 0; a < varying.size(); ++a) {
        for (std::size_t b = a; b < varying.size(); ++b) {
            quad.push_back({varying[a], varying[b]});
        }
    }
    std::vector<Attempt> attempts;
    const std::size_t quadTail = 1 + varying.size() + quad.size();
    if (!quad.empty() && n >= quadTail + 3) {
        attempts.push_back({true, varying, quad});
    }
    attempts.push_back({true, varying, {}});
    attempts.push_back({true, {}, {}});
    attempts.push_back({false, {}, {}});
    for (const Attempt& attempt : attempts) {
        const std::size_t rows = n + (attempt.constant ? 1 : 0) +
                                 attempt.dims.size() + attempt.quad.size();
        Matrix a(rows, rows, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                a(i, j) = kernel(distance3(nodes[i], nodes[j]));
            }
            std::size_t col = n;
            if (attempt.constant) {
                a(i, col) = 1.0;
                a(col, i) = 1.0;
                ++col;
            }
            for (int d : attempt.dims) {
                a(i, col) = nodes[i][d];
                a(col, i) = nodes[i][d];
                ++col;
            }
            for (const auto& q : attempt.quad) {
                const double v = nodes[i][q[0]] * nodes[i][q[1]];
                a(i, col) = v;
                a(col, i) = v;
                ++col;
            }
        }
        if (!model.lu.factor(a)) {
            continue;
        }
        model.constantTail = attempt.constant;
        model.tailDims = attempt.dims;
        model.quadTerms = attempt.quad;
        model.rows = rows;
        model.weights.clear();
        model.weights.reserve(outputs.size());
        for (const std::vector<double>& values : outputs) {
            model.weights.push_back(solveWeights(model, values));
        }
        if (!attempt.quad.empty()) {
            bool reproduces = true;
            for (std::size_t c = 0; c < outputs.size() && reproduces; ++c) {
                double scale = 0.0;
                for (const double v : outputs[c]) {
                    scale = std::max(scale, std::abs(v));
                }
                for (std::size_t i = 0; i < n; ++i) {
                    const double err = std::abs(
                        evaluateModel(model, c, nodes[i]) - outputs[c][i]);
                    if (!(err <= 1e-6 * scale)) {
                        reproduces = false;
                        break;
                    }
                }
            }
            if (!reproduces) {
                continue;
            }
        }
        return model;
    }

    // Every system was singular (coincident nodes): fall back to a
    // nearest-node lookup, storing the raw outputs as "weights".
    model.nearestOnly = true;
    model.rows = n;
    model.weights = outputs;
    return model;
}

std::vector<double> CornerSurrogate::solveWeights(
    const Model& model, const std::vector<double>& values) {
    if (model.nearestOnly) {
        return values;
    }
    Vector rhs(model.rows, 0.0);
    for (std::size_t i = 0; i < values.size(); ++i) {
        rhs[i] = values[i];
    }
    const Vector solution = model.lu.solve(rhs);
    std::vector<double> weights(model.rows);
    for (std::size_t i = 0; i < model.rows; ++i) {
        weights[i] = solution[i];
    }
    return weights;
}

double CornerSurrogate::evaluateModel(const Model& model, std::size_t output,
                                      const std::array<double, 3>& x) {
    const std::vector<double>& w = model.weights[output];
    const std::size_t n = model.nodes.size();
    if (model.nearestOnly) {
        std::size_t best = 0;
        double bestDist = distance3(x, model.nodes[0]);
        for (std::size_t i = 1; i < n; ++i) {
            const double d = distance3(x, model.nodes[i]);
            if (d < bestDist) {
                best = i;
                bestDist = d;
            }
        }
        return w[best];
    }
    double value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        value += w[i] * kernel(distance3(x, model.nodes[i]));
    }
    std::size_t col = n;
    if (model.constantTail) {
        value += w[col++];
    }
    for (int d : model.tailDims) {
        value += w[col++] * x[d];
    }
    for (const auto& q : model.quadTerms) {
        value += w[col++] * x[q[0]] * x[q[1]];
    }
    return value;
}

void CornerSurrogate::fit(std::vector<std::array<double, 3>> nodes,
                          std::vector<std::vector<SkewPoint>> contours) {
    require(!nodes.empty(), "CornerSurrogate::fit: no nodes");
    require(nodes.size() == contours.size(),
            "CornerSurrogate::fit: ", nodes.size(), " nodes vs ",
            contours.size(), " contours");
    const std::size_t k = contours.front().size();
    require(k > 0, "CornerSurrogate::fit: empty contour");
    for (const auto& node : nodes) {
        require(std::isfinite(node[0]) && std::isfinite(node[1]) &&
                    std::isfinite(node[2]),
                "CornerSurrogate::fit: non-finite node coordinate");
    }
    for (const auto& contour : contours) {
        require(contour.size() == k,
                "CornerSurrogate::fit: contours must share one "
                "control-point count (",
                k, " vs ", contour.size(), ")");
        for (const SkewPoint& p : contour) {
            require(std::isfinite(p.setup) && std::isfinite(p.hold),
                    "CornerSurrogate::fit: non-finite contour point");
        }
    }

    nodes_ = std::move(nodes);
    contours_ = std::move(contours);
    controlPoints_ = k;
    outputs_.assign(2 * k, std::vector<double>(nodes_.size(), 0.0));
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (std::size_t c = 0; c < k; ++c) {
            outputs_[2 * c][i] = contours_[i][c].setup;
            outputs_[2 * c + 1][i] = contours_[i][c].hold;
        }
    }
    model_ = buildModel(nodes_, outputs_);
}

std::vector<SkewPoint> CornerSurrogate::predict(
    const std::array<double, 3>& x) const {
    require(fitted(), "CornerSurrogate::predict before fit");
    std::vector<SkewPoint> contour(controlPoints_);
    for (std::size_t c = 0; c < controlPoints_; ++c) {
        contour[c].setup = evaluateModel(model_, 2 * c, x);
        contour[c].hold = evaluateModel(model_, 2 * c + 1, x);
    }
    return contour;
}

double CornerSurrogate::predictScalar(
    const std::array<double, 3>& x,
    const std::vector<double>& nodeValues) const {
    require(fitted(), "CornerSurrogate::predictScalar before fit");
    require(nodeValues.size() == nodes_.size(),
            "CornerSurrogate::predictScalar: ", nodeValues.size(),
            " values vs ", nodes_.size(), " nodes");
    Model scratch;
    scratch.nodes = model_.nodes;
    scratch.tailDims = model_.tailDims;
    scratch.quadTerms = model_.quadTerms;
    scratch.constantTail = model_.constantTail;
    scratch.nearestOnly = model_.nearestOnly;
    scratch.rows = model_.rows;
    scratch.weights.push_back(solveWeights(model_, nodeValues));
    // solveWeights reuses the already-factored fit matrix via model_.lu;
    // evaluateModel only needs geometry + weights, so borrow them.
    return evaluateModel(scratch, 0, x);
}

std::vector<double> CornerSurrogate::looErrors() const {
    require(fitted(), "CornerSurrogate::looErrors before fit");
    const std::size_t n = nodes_.size();
    std::vector<double> errors(n, 0.0);
    if (n < 3) {
        return errors;
    }
    for (std::size_t j = 0; j < n; ++j) {
        std::vector<std::array<double, 3>> subNodes;
        subNodes.reserve(n - 1);
        std::vector<std::vector<double>> subOutputs(
            outputs_.size(), std::vector<double>());
        for (auto& column : subOutputs) {
            column.reserve(n - 1);
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (i == j) {
                continue;
            }
            subNodes.push_back(nodes_[i]);
            for (std::size_t c = 0; c < outputs_.size(); ++c) {
                subOutputs[c].push_back(outputs_[c][i]);
            }
        }
        const Model sub = buildModel(subNodes, subOutputs);
        double worst = 0.0;
        for (std::size_t c = 0; c < controlPoints_; ++c) {
            const double ds =
                evaluateModel(sub, 2 * c, nodes_[j]) - contours_[j][c].setup;
            const double dh = evaluateModel(sub, 2 * c + 1, nodes_[j]) -
                              contours_[j][c].hold;
            worst = std::max(worst, std::sqrt(ds * ds + dh * dh));
        }
        errors[j] = worst;
    }
    return errors;
}

}  // namespace shtrace
