#include "shtrace/chz/family.hpp"

#include <algorithm>

#include "shtrace/util/error.hpp"

namespace shtrace {

bool ContourFamilyResult::allSucceeded() const {
    if (members.empty()) {
        return false;
    }
    return std::all_of(members.begin(), members.end(),
                       [](const ContourFamilyMember& m) { return m.success; });
}

ContourFamilyResult characterizeContourFamily(
    const RegisterFixture& fixture, const ContourFamilyOptions& options) {
    require(!options.degradations.empty(),
            "characterizeContourFamily: no degradation levels given");
    ContourFamilyResult result;

    SeedOptions seedOpt = options.seed;
    for (double degradation : options.degradations) {
        ContourFamilyMember member;
        member.degradation = degradation;
        {
            // Each member accumulates its own cost (and wall clock); the
            // result total is the merge, like the parallel batch drivers.
            ScopedTimer timer(&member.stats);

            CriterionOptions criterion = options.criterion;
            criterion.degradation = degradation;
            const CharacterizationProblem problem(
                fixture, criterion, options.recipe, &member.stats);
            result.characteristicClockToQ = problem.characteristicClockToQ();
            member.tf = problem.tf();

            member.seed = findSeedPoint(problem.h(), problem.passSign(),
                                        seedOpt, &member.stats);
            if (member.seed.found) {
                SkewPoint seed = member.seed.seed;
                seed.hold =
                    std::clamp(seed.hold, options.tracer.bounds.holdMin,
                               options.tracer.bounds.holdMax);
                member.contour = traceContour(problem.h(), seed,
                                              options.tracer, &member.stats);
                member.success = member.contour.seedConverged &&
                                 !member.contour.points.empty();

                // Warm start the next member: contours are nested, so the
                // next setup asymptote is near (at most somewhat below)
                // this one.
                seedOpt.setupLo = 0.5 * member.seed.seed.setup;
                seedOpt.setupHi = 2.0 * member.seed.seed.setup;
            }
        }
        result.stats.merge(member.stats);
        result.members.push_back(std::move(member));
    }
    return result;
}

}  // namespace shtrace
