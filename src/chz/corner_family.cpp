#include "shtrace/chz/corner_family.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "cache_glue.hpp"
#include "shtrace/chz/independent.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/seed.hpp"
#include "shtrace/chz/tracer.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

constexpr double kInfiniteScore = std::numeric_limits<double>::infinity();

/// Scalar-Newton solve for one contour asymptote at the window plateau
/// (h = 0 along one axis with the other pinned at its window max). The
/// plateau solve gives every corner -- traced, probed, or predicted --
/// the SAME asymptote definition, which is what lets the surrogate
/// interpolate contour SHAPES (contour minus asymptotes) and re-anchor
/// them per corner: the shape varies far less across the cube than the
/// absolute contour position does. Returns nullopt (caller keeps its
/// contour-derived fallback) when Newton fails to converge.
std::optional<double> newtonAsymptote(const CharacterizationProblem& problem,
                                      SkewAxis axis, const SkewBounds& bounds,
                                      double guess, SimStats* stats) {
    IndependentOptions opt;
    if (axis == SkewAxis::Setup) {
        opt.lo = bounds.setupMin;
        opt.hi = bounds.setupMax;
        opt.pinnedSkew = bounds.holdMax;
    } else {
        opt.lo = bounds.holdMin;
        opt.hi = bounds.holdMax;
        opt.pinnedSkew = bounds.setupMax;
    }
    const double margin = 1e-3 * (opt.hi - opt.lo);
    opt.newtonSeed = std::clamp(guess, opt.lo + margin, opt.hi - margin);
    try {
        const IndependentResult r = characterizeByNewton(
            problem.h(), axis, problem.passSign(), opt, stats);
        if (r.converged && std::isfinite(r.skew)) {
            return r.skew;
        }
    } catch (const Error&) {
        // Non-finite or failed transient on the plateau: fall back.
    }
    return std::nullopt;
}

/// The independent setup/hold numbers a bounded contour supports: the
/// setup asymptote is read at the contour's max-hold end, the hold
/// asymptote at its max-setup end. Used identically for traced and
/// predicted contours so the two row kinds are comparable.
void deriveAsymptotes(CornerFamilyRow* row) {
    if (row->contour.empty()) {
        return;
    }
    const SkewPoint* maxHold = &row->contour.front();
    const SkewPoint* maxSetup = &row->contour.front();
    for (const SkewPoint& p : row->contour) {
        if (p.hold > maxHold->hold) {
            maxHold = &p;
        }
        if (p.setup > maxSetup->setup) {
            maxSetup = &p;
        }
    }
    row->setupTime = maxHold->setup;
    row->holdTime = maxSetup->hold;
}

/// Clips a polyline to the upper-bound box {setup <= sCap, hold <= hCap},
/// inserting the linear boundary crossings. Used on SHIFTED contours
/// (contour minus asymptotes) before arc-length resampling: each traced
/// window spans a different extent relative to its asymptotes, and
/// clipping to the common extent makes control point j mean the same
/// piece of curve at every corner. Returns the input untouched when
/// nothing survives the clip (degenerate caps).
std::vector<SkewPoint> clipShape(const std::vector<SkewPoint>& points,
                                 double sCap, double hCap) {
    if (points.size() < 2) {
        return points;
    }
    std::vector<SkewPoint> out;
    const auto push = [&](const SkewPoint& p) {
        if (out.empty() || out.back().setup != p.setup ||
            out.back().hold != p.hold) {
            out.push_back(p);
        }
    };
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
        const SkewPoint& a = points[i];
        const SkewPoint& b = points[i + 1];
        const double ds = b.setup - a.setup;
        const double dh = b.hold - a.hold;
        double t0 = 0.0;
        double t1 = 1.0;
        bool reject = false;
        const auto clipAxis = [&](double v0, double d, double cap) {
            if (d > 0.0) {
                t1 = std::min(t1, (cap - v0) / d);
            } else if (d < 0.0) {
                t0 = std::max(t0, (cap - v0) / d);
            } else if (v0 > cap) {
                reject = true;
            }
        };
        clipAxis(a.setup, ds, sCap);
        clipAxis(a.hold, dh, hCap);
        if (reject || t0 >= t1) {
            continue;
        }
        push(SkewPoint{a.setup + t0 * ds, a.hold + t0 * dh});
        push(SkewPoint{a.setup + t1 * ds, a.hold + t1 * dh});
    }
    return out.size() < 2 ? points : out;
}

/// Per-corner probe state for the acquisition score. The problem holds a
/// reference to the fixture, so the pair lives heap-pinned together; the
/// construction cost (one reference transient + DC solve) is paid once
/// per corner and reused across refit rounds -- and it yields a MEASURED
/// characteristic clock-to-Q for surrogate-accepted rows.
struct ProbeState {
    RegisterFixture fixture;
    std::optional<CharacterizationProblem> problem;
    SimStats stats;
    bool broken = false;
    std::string failureReason;
    // Plateau asymptotes measured once per corner (newtonAsymptote);
    // they anchor the predicted shape at this corner's TRUE setup/hold
    // position, so the surrogate only has to get the shape right.
    bool asymTried = false;
    bool asymMeasured = false;
    double setupAsym = 0.0;
    double holdAsym = 0.0;

    explicit ProbeState(RegisterFixture f) : fixture(std::move(f)) {}
};

CornerFamilyRow traceCornerRow(const PvtAxes& axes, std::size_t index,
                               const CornerFixtureBuilder& builder,
                               const RunConfig& config,
                               const store::ResultStore* cache,
                               const std::vector<SkewPoint>* donorContour,
                               int donorIndex) {
    SHTRACE_SPAN("chz.corner_trace");
    CornerFamilyRow row;
    row.point = axes.at(index);
    row.provenance = CornerProvenance::Traced;
    row.warmStartCorner = donorIndex;
    ScopedTimer timer(&row.stats);
    try {
        const ProcessCorner corner = cornerAtPvt(row.point);
        row.corner = corner.name;
        const RegisterFixture fixture = builder(corner);

        std::optional<store::CacheKey> key;
        if (cache != nullptr) {
            key = store::cornerRowKey(fixture, config);
            if (chz_detail::mayRead(config)) {
                if (const auto entry = chz_detail::loadKind(
                        *cache, key->full, store::kKindCornerRow)) {
                    try {
                        CornerFamilyRow cached =
                            store::deserializeCornerRow(entry->payload);
                        // Only a TRACED payload may satisfy a corner this
                        // run decided to trace: a surrogate-provenance
                        // entry answers the same physics question with a
                        // prediction, which is exactly what the caller
                        // asked not to trust here. Recompute those.
                        if (cached.provenance == CornerProvenance::Traced) {
                            cached.corner = corner.name;
                            cached.point = row.point;
                            cached.warmStartCorner = donorIndex;
                            cached.stats = SimStats{};
                            cached.stats.cacheHits = 1;
                            return cached;
                        }
                    } catch (const store::StoreFormatError&) {
                        // Unreadable payload: recompute and overwrite.
                    }
                }
            }
            row.stats.cacheMisses = 1;
        }

        const CharacterizationProblem problem(fixture, config.criterion,
                                              config.recipe, &row.stats);
        row.characteristicClockToQ = problem.characteristicClockToQ();

        TracedContour contour;
        bool traced = false;
        if (donorContour != nullptr && !donorContour->empty()) {
            // Warm start: the donor contour's large-hold end (the same
            // geometry the seed search produces), clamped into this
            // corner's tracer window; MPNR pulls it onto the new curve.
            SkewPoint warm = *std::max_element(
                donorContour->begin(), donorContour->end(),
                [](const SkewPoint& a, const SkewPoint& b) {
                    return a.hold < b.hold;
                });
            warm.setup = std::clamp(warm.setup, config.tracer.bounds.setupMin,
                                    config.tracer.bounds.setupMax);
            warm.hold = std::clamp(warm.hold, config.tracer.bounds.holdMin,
                                   config.tracer.bounds.holdMax);
            row.stats.cacheWarmStarts = 1;
            const std::uint64_t op = row.stats.hEvaluations;
            contour =
                traceContour(problem.h(), warm, config.tracer, &row.stats);
            contour.diagnostics.markPreTrace(TimelineEventKind::WarmStart,
                                             warm, op);
            traced = contour.seedConverged && !contour.points.empty();
        }
        if (!traced) {
            const SeedResult seed = findSeedPoint(
                problem.h(), problem.passSign(), config.seed, &row.stats);
            if (!seed.found) {
                row.failureReason = "contour seed search failed";
                return row;
            }
            SkewPoint start = seed.seed;
            start.hold = std::clamp(start.hold, config.tracer.bounds.holdMin,
                                    config.tracer.bounds.holdMax);
            const std::uint64_t op = row.stats.hEvaluations;
            contour =
                traceContour(problem.h(), start, config.tracer, &row.stats);
            contour.diagnostics.markPreTrace(TimelineEventKind::SeedFound,
                                             seed.seed, op);
            traced = contour.seedConverged && !contour.points.empty();
        }
        if (!traced) {
            const std::string why = contour.diagnostics.summary();
            row.failureReason =
                "contour tracing failed" +
                (why.empty() ? std::string() : " (" + why + ")");
            return row;
        }
        row.contour = contour.points;
        deriveAsymptotes(&row);
        // Pin the asymptotes at the window plateau (see newtonAsymptote):
        // the contour's own endpoints depend on where the trace stopped,
        // the plateau solve does not. Seeded from the endpoints, the
        // refinement is a couple of transients per axis.
        if (const auto s =
                newtonAsymptote(problem, SkewAxis::Setup,
                                config.tracer.bounds, row.setupTime,
                                &row.stats)) {
            row.setupTime = *s;
        }
        if (const auto h =
                newtonAsymptote(problem, SkewAxis::Hold,
                                config.tracer.bounds, row.holdTime,
                                &row.stats)) {
            row.holdTime = *h;
        }
        row.success = true;

        if (cache != nullptr && chz_detail::mayWrite(config)) {
            store::StoreEntry entry;
            entry.kind = store::kKindCornerRow;
            entry.key = key->full;
            entry.problem = key->problem;
            entry.label = corner.name;
            entry.payload = store::serializeCornerRow(row);
            cache->save(entry);
        }
    } catch (const Error& e) {
        row.success = false;
        row.failureReason = e.what();
    }
    row.transientCount = static_cast<int>(row.stats.transientSolves);
    return row;
}

}  // namespace

bool CornerFamilyResult::allSucceeded() const {
    return std::all_of(rows.begin(), rows.end(),
                       [](const CornerFamilyRow& r) { return r.success; });
}

CornerFamilyResult characterizeCornerFamily(const PvtAxes& axes,
                                            const CornerFixtureBuilder& builder,
                                            const RunConfig& config) {
    axes.validate();
    const obs::ScopedRequestContext requestScope(requestContextFor(config));
    CornerFamilyResult result;
    result.axes = axes;
    const std::size_t n = axes.cornerCount();

    if (!config.traceContours) {
        // No contour, nothing to interpolate: delegate the whole grid to
        // sweepPvtCorners so this mode is bit-identical with the classic
        // exhaustive sweep (it also owns its obs run).
        const PvtSweepResult sweep =
            sweepPvtCorners(axes.corners(), builder, config);
        result.rows.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            CornerFamilyRow& row = result.rows[i];
            const PvtCornerResult& src = sweep.rows[i];
            row.corner = src.corner;
            row.point = axes.at(i);
            row.success = src.success;
            row.failureReason = src.failureReason;
            row.anchor = true;
            row.provenance = CornerProvenance::Traced;
            row.characteristicClockToQ = src.characteristicClockToQ;
            row.setupTime = src.setupTime;
            row.holdTime = src.holdTime;
            row.transientCount = src.transientCount;
            row.stats = src.stats;
        }
        result.anchorsTraced = n;
        result.stats = sweep.stats;
        return result;
    }

    obs::RunObservation observation(config.metricsPath, config.spanTracePath);
    obs::setGauge(obs::Gauge::BatchJobs, static_cast<double>(n));
    result.rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        result.rows[i].point = axes.at(i);
        result.rows[i].corner = cornerAtPvt(result.rows[i].point).name;
    }

    const CornerSweepOptions& sweep = config.corners;
    const bool exhaustive = sweep.anchorsAll || sweep.tolerance <= 0.0;
    std::vector<std::size_t> anchors;
    if (exhaustive) {
        anchors.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            anchors[i] = i;
        }
    } else if (!sweep.anchorIndices.empty()) {
        anchors = sweep.anchorIndices;
        std::sort(anchors.begin(), anchors.end());
        anchors.erase(std::unique(anchors.begin(), anchors.end()),
                      anchors.end());
        require(anchors.back() < n, "characterizeCornerFamily: anchor index ",
                anchors.back(), " out of range ", n);
    } else {
        anchors = axes.anchorIndices();
    }

    const std::optional<store::ResultStore> cache =
        chz_detail::openStore(config);
    const store::ResultStore* cachePtr = cache ? &*cache : nullptr;
    obs::setGauge(
        obs::Gauge::WorkerThreads,
        resolveThreadCount(config.parallel.threads, anchors.size()));

    std::vector<char> isTraced(n, 0);
    const auto traceWave = [&](const std::vector<std::size_t>& targets,
                               const std::vector<int>& donors, bool asAnchor) {
        parallelRun(
            targets.size(),
            [&](std::size_t job, std::size_t /*worker*/) {
                const std::size_t idx = targets[job];
                const int donor = donors.empty() ? -1 : donors[job];
                const std::vector<SkewPoint>* donorContour =
                    donor >= 0 ? &result.rows[static_cast<std::size_t>(donor)]
                                      .contour
                               : nullptr;
                try {
                    result.rows[idx] =
                        traceCornerRow(axes, idx, builder, config, cachePtr,
                                       donorContour, donor);
                } catch (const std::exception& e) {
                    result.rows[idx].success = false;
                    result.rows[idx].failureReason = e.what();
                }
                result.rows[idx].anchor = asAnchor;
                isTraced[idx] = 1;
            },
            config.parallel, config.onJobDone);
    };

    traceWave(anchors, {}, true);
    result.anchorsTraced = anchors.size();

    // ---- Active learning over the untraced remainder ----
    std::vector<std::unique_ptr<ProbeState>> probes(n);
    const auto probeFor = [&](std::size_t i) -> ProbeState* {
        if (!probes[i]) {
            auto state = std::make_unique<ProbeState>(RegisterFixture{});
            ScopedTimer timer(&state->stats);
            try {
                state->fixture = builder(cornerAtPvt(result.rows[i].point));
                state->problem.emplace(state->fixture, config.criterion,
                                       config.recipe, &state->stats);
            } catch (const Error& e) {
                state->broken = true;
                state->failureReason = e.what();
            }
            probes[i] = std::move(state);
        }
        return probes[i].get();
    };
    // |h| at the predicted contour midpoint, converted to a skew-plane
    // distance through the gradient (floored by the tracer's vanished-
    // gradient threshold so a plateau cannot fake an infinite distance).
    const auto probeScore = [&](std::size_t i,
                                const std::vector<SkewPoint>& predicted) {
        ProbeState* probe = probeFor(i);
        if (probe->broken || predicted.empty()) {
            return kInfiniteScore;
        }
        ScopedTimer timer(&probe->stats);
        const SkewPoint mid = predicted[predicted.size() / 2];
        const HEvaluation eval =
            probe->problem->h().evaluate(mid.setup, mid.hold, &probe->stats);
        if (!eval.success) {
            return kInfiniteScore;
        }
        const double gradNorm = std::hypot(eval.dhds, eval.dhdh);
        const double floor = config.tracer.corrector.gradientTol;
        return std::abs(eval.h) / std::max(gradNorm, floor);
    };

    CornerSurrogate surrogate;
    std::vector<std::size_t> tracedOk;
    const auto refit = [&]() {
        tracedOk.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (isTraced[i] && result.rows[i].success) {
                tracedOk.push_back(i);
            }
        }
        if (tracedOk.empty()) {
            return false;
        }
        std::vector<std::array<double, 3>> nodes;
        std::vector<std::vector<SkewPoint>> contours;
        nodes.reserve(tracedOk.size());
        contours.reserve(tracedOk.size());
        const std::size_t k =
            static_cast<std::size_t>(std::max(2, sweep.controlPoints));
        // Fit the SHAPE: each contour relative to its own plateau
        // asymptotes, clipped to the common extent box so control point
        // j samples the same piece of curve at every corner. Absolute
        // position is re-anchored per corner at prediction time
        // (measured when a probe exists, interpolated otherwise), which
        // removes the dominant cross-corner variation from what the RBF
        // has to model.
        std::vector<std::vector<SkewPoint>> shapes;
        shapes.reserve(tracedOk.size());
        double sCap = kInfiniteScore;
        double hCap = kInfiniteScore;
        for (const std::size_t i : tracedOk) {
            const CornerFamilyRow& row = result.rows[i];
            std::vector<SkewPoint> shape = row.contour;
            double sMax = -kInfiniteScore;
            double hMax = -kInfiniteScore;
            for (SkewPoint& p : shape) {
                p.setup -= row.setupTime;
                p.hold -= row.holdTime;
                sMax = std::max(sMax, p.setup);
                hMax = std::max(hMax, p.hold);
            }
            sCap = std::min(sCap, sMax);
            hCap = std::min(hCap, hMax);
            shapes.push_back(std::move(shape));
        }
        for (const std::size_t i : tracedOk) {
            nodes.push_back(axes.normalized(result.rows[i].point));
        }
        for (std::vector<SkewPoint>& shape : shapes) {
            contours.push_back(
                resampleByArcLength(clipShape(shape, sCap, hCap), k));
        }
        surrogate.fit(std::move(nodes), std::move(contours));
        return true;
    };

    // Interpolated asymptote pair at x, from the traced rows: the seed
    // for a probe's Newton measurement and the anchor of last resort for
    // probeless surrogate fills (exact whenever the family is linear
    // across the cube, like the contours themselves).
    const auto predictedShift = [&](const std::array<double, 3>& x) {
        std::vector<double> setups;
        std::vector<double> holds;
        setups.reserve(tracedOk.size());
        holds.reserve(tracedOk.size());
        for (const std::size_t t : tracedOk) {
            setups.push_back(result.rows[t].setupTime);
            holds.push_back(result.rows[t].holdTime);
        }
        return std::pair<double, double>{surrogate.predictScalar(x, setups),
                                         surrogate.predictScalar(x, holds)};
    };
    // The corner's own plateau asymptotes, measured once through its
    // probe; falls back to the interpolated pair when the probe is
    // broken or Newton does not converge.
    const auto anchoredShift = [&](std::size_t i,
                                   const std::array<double, 3>& x) {
        const std::pair<double, double> guess = predictedShift(x);
        ProbeState* probe = probeFor(i);
        if (!probe->broken && !probe->asymTried) {
            probe->asymTried = true;
            ScopedTimer timer(&probe->stats);
            const auto s =
                newtonAsymptote(*probe->problem, SkewAxis::Setup,
                                config.tracer.bounds, guess.first,
                                &probe->stats);
            const auto h =
                newtonAsymptote(*probe->problem, SkewAxis::Hold,
                                config.tracer.bounds, guess.second,
                                &probe->stats);
            if (s && h) {
                probe->setupAsym = *s;
                probe->holdAsym = *h;
                probe->asymMeasured = true;
            }
        }
        return probe->asymMeasured
                   ? std::pair<double, double>{probe->setupAsym,
                                               probe->holdAsym}
                   : guess;
    };
    // The full predicted contour at corner i: interpolated shape plus
    // the corner's anchor.
    const auto predictContour = [&](std::size_t i, bool measureAnchor) {
        const std::array<double, 3> x = axes.normalized(result.rows[i].point);
        std::vector<SkewPoint> contour = surrogate.predict(x);
        const std::pair<double, double> shift =
            measureAnchor ? anchoredShift(i, x) : predictedShift(x);
        for (SkewPoint& p : contour) {
            p.setup += shift.first;
            p.hold += shift.second;
        }
        return std::pair<std::vector<SkewPoint>,
                         std::pair<double, double>>{std::move(contour), shift};
    };
    // One Euler-Newton corrector pass over a predicted contour before it
    // is published: evaluate h and its gradient at a handful of control
    // points, take the Newton projection step -h*grad/|grad|^2 at each,
    // and spread the displacement field across the remaining points by
    // linear interpolation in control index. The surrogate plays the
    // predictor and the probe the corrector -- the same split the tracer
    // itself uses, at a fraction of a full trace's transient cost. Only
    // the contour interior moves; the published setup/hold asymptotes
    // stay as measured.
    const auto newtonCorrect = [&](std::size_t i,
                                   std::vector<SkewPoint>& contour) {
        constexpr std::size_t kCorrectorSamples = 7;
        constexpr double kMaxCorrection = 50e-12;
        ProbeState* probe = probeFor(i);
        if (probe->broken || contour.size() < 2) {
            return;
        }
        ScopedTimer timer(&probe->stats);
        const std::size_t last = contour.size() - 1;
        const std::size_t samples =
            std::min(kCorrectorSamples, contour.size());
        const double floor = config.tracer.corrector.gradientTol;
        std::vector<std::size_t> at;
        std::vector<double> ds;
        std::vector<double> dh;
        for (std::size_t s = 0; s < samples; ++s) {
            const std::size_t c = last * s / (samples - 1);
            const HEvaluation eval = probe->problem->h().evaluate(
                contour[c].setup, contour[c].hold, &probe->stats);
            if (!eval.success) {
                continue;
            }
            const double g2 = eval.dhds * eval.dhds + eval.dhdh * eval.dhdh;
            if (g2 <= floor * floor) {
                continue;
            }
            const double stepS = -eval.h * eval.dhds / g2;
            const double stepH = -eval.h * eval.dhdh / g2;
            const double norm = std::hypot(stepS, stepH);
            // A wild step means the sample landed somewhere the local
            // linearization cannot be trusted; skip it rather than drag
            // the contour along.
            if (!std::isfinite(norm) || norm > kMaxCorrection) {
                continue;
            }
            at.push_back(c);
            ds.push_back(stepS);
            dh.push_back(stepH);
        }
        if (at.empty()) {
            return;
        }
        std::size_t seg = 0;
        for (std::size_t c = 0; c <= last; ++c) {
            while (seg + 1 < at.size() && at[seg + 1] < c) {
                ++seg;
            }
            double fs = ds.back();
            double fh = dh.back();
            if (c <= at.front()) {
                fs = ds.front();
                fh = dh.front();
            } else if (c < at.back()) {
                const double t = static_cast<double>(c - at[seg]) /
                                 static_cast<double>(at[seg + 1] - at[seg]);
                fs = ds[seg] + t * (ds[seg + 1] - ds[seg]);
                fh = dh[seg] + t * (dh[seg + 1] - dh[seg]);
            }
            contour[c].setup += fs;
            contour[c].hold += fh;
        }
    };

    std::vector<double> scores(n, 0.0);
    bool fitOk = false;
    int round = 0;
    std::size_t budget = sweep.maxEscalations < 0
                             ? n
                             : static_cast<std::size_t>(sweep.maxEscalations);
    while (!exhaustive) {
        fitOk = refit();
        if (!fitOk) {
            result.converged = false;
            break;
        }
        const std::vector<double> loo = surrogate.looErrors();
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < n; ++i) {
            if (isTraced[i]) {
                continue;
            }
            const std::array<double, 3> x =
                axes.normalized(result.rows[i].point);
            double score = std::abs(surrogate.predictScalar(x, loo));
            if (!std::isfinite(score)) {
                score = kInfiniteScore;
            }
            if (sweep.probeResidual) {
                // Every candidate pays the probe: the measured residual
                // both confirms sub-tolerance corners AND ranks the
                // escalation queue by actual error instead of by the
                // kernel's own (smooth, clustered) LOO field.
                score = std::max(
                    score, probeScore(i, predictContour(i, true).first));
            }
            scores[i] = score;
            if (score > sweep.tolerance) {
                candidates.push_back(i);
            }
        }
        if (candidates.empty()) {
            result.converged = true;
            break;
        }
        if (budget == 0 || round >= sweep.maxRounds) {
            result.converged = false;
            break;
        }
        std::sort(candidates.begin(), candidates.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) {
                          return scores[a] > scores[b];
                      }
                      return a < b;
                  });
        // Spread the budget over waves with a refit between: the first
        // wave's traces sharpen the surrogate (and the scores) before
        // the next wave commits, instead of burning the whole budget on
        // the initial ranking.
        const std::size_t wave = std::max<std::size_t>(1, (budget + 2) / 3);
        const std::size_t take =
            std::min({budget, candidates.size(), wave});
        candidates.resize(take);
        budget -= take;
        std::vector<int> donors;
        donors.reserve(take);
        for (const std::size_t idx : candidates) {
            donors.push_back(static_cast<int>(
                nearestCornerIndex(axes, idx, tracedOk)));
        }
        traceWave(candidates, donors, false);
        for (const std::size_t idx : candidates) {
            CornerFamilyRow& row = result.rows[idx];
            row.acquisitionScore = scores[idx];
            if (probes[idx]) {
                // The probe's transients were real cost of deciding this
                // corner; attribute them to its row and retire the state.
                row.stats.merge(probes[idx]->stats);
                row.transientCount =
                    static_cast<int>(row.stats.transientSolves);
                probes[idx].reset();
            }
        }
        result.escalated += take;
        ++round;
    }
    result.rounds = round;

    // ---- Surrogate fill for everything still untraced ----
    for (std::size_t i = 0; i < n; ++i) {
        if (isTraced[i]) {
            continue;
        }
        CornerFamilyRow& row = result.rows[i];
        row.provenance = CornerProvenance::Surrogate;
        row.acquisitionScore = scores[i];
        if (!fitOk) {
            if (probes[i]) {
                row.stats.merge(probes[i]->stats);
                row.transientCount =
                    static_cast<int>(row.stats.transientSolves);
            }
            row.success = false;
            row.failureReason =
                "no traced corner succeeded; surrogate unavailable";
            continue;
        }
        // Shape from the surrogate, anchor from the corner's own plateau
        // measurement when probing is on (so the published setup/hold
        // numbers are MEASURED; only the contour interior between the
        // asymptotes is predicted). Probeless runs interpolate the
        // anchor with the same kernel. The probe's cost is merged below,
        // AFTER the anchor measurement it may pay for.
        auto predicted = predictContour(i, sweep.probeResidual);
        if (sweep.probeResidual) {
            // The acquisition score stays the PRE-correction residual: a
            // conservative upper bound on the published contour's error.
            newtonCorrect(i, predicted.first);
        }
        row.contour = std::move(predicted.first);
        row.setupTime = predicted.second.first;
        row.holdTime = predicted.second.second;
        if (probes[i] && !probes[i]->broken) {
            row.characteristicClockToQ =
                probes[i]->problem->characteristicClockToQ();
        } else {
            // No probe was built (probeResidual off): interpolate the
            // clock-to-Q with the same kernel as the contour.
            std::vector<double> c2q;
            c2q.reserve(tracedOk.size());
            for (const std::size_t t : tracedOk) {
                c2q.push_back(result.rows[t].characteristicClockToQ);
            }
            row.characteristicClockToQ = surrogate.predictScalar(
                axes.normalized(row.point), c2q);
        }
        if (probes[i]) {
            row.stats.merge(probes[i]->stats);
        }
        row.success = true;
        result.surrogateAccepted += 1;
        result.surrogateMaxScore =
            std::max(result.surrogateMaxScore, row.acquisitionScore);

        if (cachePtr != nullptr && chz_detail::mayWrite(config)) {
            try {
                std::optional<RegisterFixture> fresh;
                const RegisterFixture* fixture =
                    probes[i] && !probes[i]->broken ? &probes[i]->fixture
                                                    : nullptr;
                if (fixture == nullptr) {
                    fresh.emplace(builder(cornerAtPvt(row.point)));
                    fixture = &*fresh;
                }
                const store::CacheKey key =
                    store::cornerRowKey(*fixture, config);
                // Never downgrade a traced entry to a surrogate one: the
                // traced payload answers the same key with strictly more
                // authority.
                bool keepExisting = false;
                if (const auto entry = chz_detail::loadKind(
                        *cachePtr, key.full, store::kKindCornerRow)) {
                    try {
                        keepExisting =
                            store::deserializeCornerRow(entry->payload)
                                .provenance == CornerProvenance::Traced;
                    } catch (const store::StoreFormatError&) {
                    }
                }
                if (!keepExisting) {
                    store::StoreEntry entry;
                    entry.kind = store::kKindCornerRow;
                    entry.key = key.full;
                    entry.problem = key.problem;
                    entry.label = row.corner;
                    entry.payload = store::serializeCornerRow(row);
                    cachePtr->save(entry);
                }
            } catch (const Error&) {
                // Store publication is best-effort for surrogate rows;
                // the in-memory result is already complete.
            }
        }
        row.transientCount = static_cast<int>(row.stats.transientSolves);
    }

    for (const CornerFamilyRow& row : result.rows) {
        result.stats.merge(row.stats);
    }
    obs::addCount(obs::Count::CornerAnchorsTraced, result.anchorsTraced);
    obs::addCount(obs::Count::CornerEscalated, result.escalated);
    obs::addCount(obs::Count::CornerSurrogateAccepted,
                  result.surrogateAccepted);
    obs::setGauge(obs::Gauge::CornerSurrogateMaxError,
                  result.surrogateMaxScore);
    observation.finish(result.stats);
    return result;
}

std::vector<LibraryRow> libraryRowsFromCornerFamily(
    const CornerFamilyResult& result) {
    std::vector<LibraryRow> rows;
    rows.reserve(result.rows.size());
    for (const CornerFamilyRow& corner : result.rows) {
        LibraryRow row;
        row.cell = corner.corner;
        row.success = corner.success;
        row.failureReason = corner.failureReason;
        row.characteristicClockToQ = corner.characteristicClockToQ;
        row.setupTime = corner.setupTime;
        row.holdTime = corner.holdTime;
        row.contour = corner.contour;
        row.provenance = toString(corner.provenance);
        row.stats = corner.stats;
        rows.push_back(std::move(row));
    }
    return rows;
}

}  // namespace shtrace
