#include "shtrace/chz/problem.hpp"

#include <cmath>

#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

CharacterizationProblem::CharacterizationProblem(
    const RegisterFixture& fixture, CriterionOptions criterion,
    SimulationRecipe recipe, SimStats* stats)
    : fixture_(fixture), criterion_(criterion), recipe_(recipe) {
    require(fixture.circuit.finalized(),
            "CharacterizationProblem: fixture circuit not finalized");
    require(criterion.degradation > 0.0,
            "CharacterizationProblem: degradation must be positive");
    require(criterion.transitionFraction > 0.0 &&
                criterion.transitionFraction < 1.0,
            "CharacterizationProblem: transitionFraction must be in (0,1)");

    spec_.clockEdgeMidpoint = fixture.activeEdgeMidpoint();
    spec_.outputInitial = fixture.qInitial;
    spec_.outputFinal = fixture.qFinal;
    spec_.transitionFraction = criterion.transitionFraction;

    // Shared initial condition: DC operating point at t = 0 (skews do not
    // affect the data value at t = 0, so x0 is tau-independent).
    fixture.data->setSkews(criterion.referenceSetupSkew,
                           criterion.referenceHoldSkew);
    DcOptions dcOpt;
    dcOpt.newton = recipe.newton;
    dcOpt.linalg = recipe.linalg;
    dcOpt.batchDeviceEval = recipe.batchDeviceEval;
    x0_ = solveDcOperatingPoint(fixture.circuit, dcOpt, stats).x;

    // Reference transient at very large skews -> t_c and the
    // characteristic clock-to-Q delay.
    const double tEdge = spec_.clockEdgeMidpoint;
    TransientOptions refOpt;
    refOpt.tStart = 0.0;
    refOpt.tStop = tEdge + criterion.observationWindow;
    refOpt.method = recipe.method;
    refOpt.adaptive = false;
    refOpt.fixedSteps = static_cast<int>(
        std::ceil((refOpt.tStop - refOpt.tStart) / recipe.dtNominal));
    refOpt.newton = recipe.newton;
    refOpt.gmin = recipe.gmin;
    refOpt.jacobianReuse = recipe.jacobianReuse;
    refOpt.linalg = recipe.linalg;
    refOpt.batchDeviceEval = recipe.batchDeviceEval;
    refOpt.initialCondition = x0_;
    refOpt.storeStates = true;

    const TransientResult ref =
        TransientAnalysis(fixture.circuit, refOpt).run(stats);
    if (!ref.success) {
        throw NumericalError(message(
            "CharacterizationProblem: reference transient failed (",
            ref.failureReason, ")"));
    }
    const Vector selector = fixture.circuit.selectorFor(fixture.q);
    const auto c2q = measureClockToQ(ref, selector, spec_);
    if (!c2q.has_value()) {
        throw NumericalError(
            "CharacterizationProblem: register did not latch at reference "
            "skews; cannot define the characteristic clock-to-Q delay");
    }
    characteristicC2Q_ = *c2q;
    tc_ = tEdge + characteristicC2Q_;
    degradedC2Q_ = (1.0 + criterion.degradation) * characteristicC2Q_;
    const double tf = tEdge + degradedC2Q_;

    // Build the fixed-grid h-function recipe covering [0, tf].
    TransientOptions hOpt;
    hOpt.tStart = 0.0;
    hOpt.tStop = tf;  // overridden identically inside HFunction
    hOpt.method = recipe.method;
    hOpt.adaptive = false;
    hOpt.fixedSteps =
        static_cast<int>(std::ceil((tf - hOpt.tStart) / recipe.dtNominal));
    hOpt.newton = recipe.newton;
    hOpt.gmin = recipe.gmin;
    hOpt.jacobianReuse = recipe.jacobianReuse;
    hOpt.linalg = recipe.linalg;
    hOpt.batchDeviceEval = recipe.batchDeviceEval;
    hOpt.initialCondition = x0_;

    h_ = std::make_unique<HFunction>(fixture.circuit, fixture.data, selector,
                                     tf, spec_.threshold(), hOpt);
}

std::optional<double> CharacterizationProblem::measureClockToQAt(
    double setupSkew, double holdSkew, SimStats* stats) const {
    // Simulate past t_f so a degraded-but-successful transition is visible.
    fixture_.data->setSkews(setupSkew, holdSkew);
    TransientOptions opt;
    opt.tStart = 0.0;
    opt.tStop = spec_.clockEdgeMidpoint + criterion_.observationWindow;
    opt.method = recipe_.method;
    opt.adaptive = false;
    opt.fixedSteps = static_cast<int>(
        std::ceil((opt.tStop - opt.tStart) / recipe_.dtNominal));
    opt.newton = recipe_.newton;
    opt.gmin = recipe_.gmin;
    opt.jacobianReuse = recipe_.jacobianReuse;
    opt.linalg = recipe_.linalg;
    opt.batchDeviceEval = recipe_.batchDeviceEval;
    opt.initialCondition = x0_;
    opt.storeStates = true;
    const TransientResult tr =
        TransientAnalysis(fixture_.circuit, opt).run(stats);
    if (!tr.success) {
        return std::nullopt;
    }
    return measureClockToQ(tr, fixture_.circuit.selectorFor(fixture_.q),
                           spec_);
}

}  // namespace shtrace
