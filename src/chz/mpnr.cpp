#include "shtrace/chz/mpnr.hpp"

#include <cmath>

#include "shtrace/linalg/pseudo_inverse.hpp"
#include "shtrace/obs/obs.hpp"

namespace shtrace {

namespace {

/// Copies the evaluation into the result and applies the corrector-side
/// non-finite guard: an evaluation that reports success with NaN/Inf values
/// (possible only through a misbehaving HFunction override -- the concrete
/// class guards its own outputs) must not feed a Newton step. Returns false
/// when the iteration must stop.
bool absorbEvaluation(const HEvaluation& eval, MpnrResult& result) {
    result.h = eval.h;
    result.dhds = eval.dhds;
    result.dhdh = eval.dhdh;
    if (!eval.success) {
        result.transientFailed = !eval.nonFinite;
        result.nonFinite = eval.nonFinite;
        return false;
    }
    if (!std::isfinite(eval.h) || !std::isfinite(eval.dhds) ||
        !std::isfinite(eval.dhdh)) {
        result.nonFinite = true;
        return false;
    }
    return true;
}

MpnrResult solveMpnrIterate(const HFunction& h, SkewPoint guess,
                            const MpnrOptions& options, SimStats* stats) {
    MpnrResult result;
    result.point = guess;

    for (result.iterations = 1; result.iterations <= options.maxIterations;
         ++result.iterations) {
        if (stats != nullptr) {
            ++stats->mpnrIterations;
        }
        const HEvaluation eval =
            h.evaluate(result.point.setup, result.point.hold, stats);
        if (!absorbEvaluation(eval, result)) {
            return result;
        }
        // result.point now matches h/dhds/dhdh; every non-converged exit
        // below must keep (or restore) this pairing.
        const SkewPoint evaluated = result.point;

        const double gram = eval.dhds * eval.dhds + eval.dhdh * eval.dhdh;
        if (!(gram > options.gradientTol * options.gradientTol)) {
            // Flat spot of h: no Moore-Penrose direction exists. Typical
            // cause: both skews so generous that the output no longer
            // depends on them (the plateau of the output surface).
            result.gradientVanished = true;
            return result;
        }

        // dtau = -H^+ h = -h * H^T / (H H^T).
        double ds = -eval.h * eval.dhds / gram;
        double dh = -eval.h * eval.dhdh / gram;
        const double stepNorm = std::sqrt(ds * ds + dh * dh);
        if (stepNorm > options.maxStep) {
            const double scale = options.maxStep / stepNorm;
            ds *= scale;
            dh *= scale;
        }
        if (!std::isfinite(ds) || !std::isfinite(dh)) {
            result.nonFinite = true;  // overflow in the update arithmetic
            return result;
        }
        result.point.setup += ds;
        result.point.hold += dh;

        const bool updateSmall =
            std::fabs(ds) <= options.skewRelTol * std::fabs(result.point.setup) +
                                 options.skewAbsTol &&
            std::fabs(dh) <= options.skewRelTol * std::fabs(result.point.hold) +
                                 options.skewAbsTol;
        if (updateSmall && std::fabs(eval.h) <= options.hTol) {
            result.converged = true;
            return result;
        }
        if (result.iterations == options.maxIterations) {
            // Out of budget: rewind the speculative last step so the
            // reported (point, residual) pair is consistent.
            result.point = evaluated;
            return result;
        }
    }
    return result;
}

MpnrResult solveArclengthIterate(const HFunction& h, SkewPoint guess,
                                 const Vector& tangent,
                                 const MpnrOptions& options,
                                 SimStats* stats) {
    require(tangent.size() == 2, "solveArclengthCorrector: tangent must be 2D");
    MpnrResult result;
    result.point = guess;

    for (result.iterations = 1; result.iterations <= options.maxIterations;
         ++result.iterations) {
        if (stats != nullptr) {
            ++stats->mpnrIterations;
        }
        const HEvaluation eval =
            h.evaluate(result.point.setup, result.point.hold, stats);
        if (!absorbEvaluation(eval, result)) {
            return result;
        }
        const SkewPoint evaluated = result.point;

        // Augmented residual: [h; T^T (tau - guess)].
        const double planeResidual =
            tangent[0] * (result.point.setup - guess.setup) +
            tangent[1] * (result.point.hold - guess.hold);

        // 2x2 Newton: [dh/ds dh/dh; T0 T1] dtau = -[h; planeResidual].
        const double det =
            eval.dhds * tangent[1] - eval.dhdh * tangent[0];
        const double gradNorm =
            std::sqrt(eval.dhds * eval.dhds + eval.dhdh * eval.dhdh);
        if (std::fabs(det) <= options.gradientTol ||
            gradNorm <= options.gradientTol) {
            // The curve is (numerically) tangent to the constraint plane,
            // or h is flat: the square system is singular.
            result.gradientVanished = true;
            return result;
        }
        double ds =
            (-eval.h * tangent[1] + planeResidual * eval.dhdh) / det;
        double dh =
            (-planeResidual * eval.dhds + eval.h * tangent[0]) / det;
        const double stepNorm = std::sqrt(ds * ds + dh * dh);
        if (stepNorm > options.maxStep) {
            const double scale = options.maxStep / stepNorm;
            ds *= scale;
            dh *= scale;
        }
        if (!std::isfinite(ds) || !std::isfinite(dh)) {
            result.nonFinite = true;
            return result;
        }
        result.point.setup += ds;
        result.point.hold += dh;

        const bool updateSmall =
            std::fabs(ds) <= options.skewRelTol *
                                 std::fabs(result.point.setup) +
                                 options.skewAbsTol &&
            std::fabs(dh) <= options.skewRelTol *
                                 std::fabs(result.point.hold) +
                                 options.skewAbsTol;
        if (updateSmall && std::fabs(eval.h) <= options.hTol) {
            result.converged = true;
            return result;
        }
        if (result.iterations == options.maxIterations) {
            result.point = evaluated;  // keep (point, residual) consistent
            return result;
        }
    }
    return result;
}

/// One histogram sample per corrector attempt, converged or not.
void observeCorrector(const MpnrResult& result) {
    if (obs::enabled()) {
        obs::observe(obs::Hist::CorrectorIterationsPerPoint,
                     static_cast<double>(result.iterations));
    }
}

}  // namespace

MpnrResult solveMpnr(const HFunction& h, SkewPoint guess,
                     const MpnrOptions& options, SimStats* stats) {
    SHTRACE_SPAN("mpnr.solve");
    const MpnrResult result = solveMpnrIterate(h, guess, options, stats);
    observeCorrector(result);
    return result;
}

MpnrResult solveArclengthCorrector(const HFunction& h, SkewPoint guess,
                                   const Vector& tangent,
                                   const MpnrOptions& options,
                                   SimStats* stats) {
    SHTRACE_SPAN("mpnr.solve");
    const MpnrResult result =
        solveArclengthIterate(h, guess, tangent, options, stats);
    observeCorrector(result);
    return result;
}

}  // namespace shtrace
