#include "shtrace/chz/mpnr.hpp"

#include <cmath>

#include "shtrace/linalg/pseudo_inverse.hpp"

namespace shtrace {

MpnrResult solveMpnr(const HFunction& h, SkewPoint guess,
                     const MpnrOptions& options, SimStats* stats) {
    MpnrResult result;
    result.point = guess;

    for (result.iterations = 1; result.iterations <= options.maxIterations;
         ++result.iterations) {
        if (stats != nullptr) {
            ++stats->mpnrIterations;
        }
        const HEvaluation eval =
            h.evaluate(result.point.setup, result.point.hold, stats);
        if (!eval.success) {
            result.transientFailed = true;
            return result;
        }
        result.h = eval.h;
        result.dhds = eval.dhds;
        result.dhdh = eval.dhdh;

        const double gram = eval.dhds * eval.dhds + eval.dhdh * eval.dhdh;
        if (!(gram > options.gradientTol * options.gradientTol)) {
            // Flat spot of h: no Moore-Penrose direction exists. Typical
            // cause: both skews so generous that the output no longer
            // depends on them (the plateau of the output surface).
            result.gradientVanished = true;
            return result;
        }

        // dtau = -H^+ h = -h * H^T / (H H^T).
        double ds = -eval.h * eval.dhds / gram;
        double dh = -eval.h * eval.dhdh / gram;
        const double stepNorm = std::sqrt(ds * ds + dh * dh);
        if (stepNorm > options.maxStep) {
            const double scale = options.maxStep / stepNorm;
            ds *= scale;
            dh *= scale;
        }
        result.point.setup += ds;
        result.point.hold += dh;

        const bool updateSmall =
            std::fabs(ds) <= options.skewRelTol * std::fabs(result.point.setup) +
                                 options.skewAbsTol &&
            std::fabs(dh) <= options.skewRelTol * std::fabs(result.point.hold) +
                                 options.skewAbsTol;
        if (updateSmall && std::fabs(eval.h) <= options.hTol) {
            result.converged = true;
            return result;
        }
    }
    result.iterations = options.maxIterations;
    return result;
}

MpnrResult solveArclengthCorrector(const HFunction& h, SkewPoint guess,
                                   const Vector& tangent,
                                   const MpnrOptions& options,
                                   SimStats* stats) {
    require(tangent.size() == 2, "solveArclengthCorrector: tangent must be 2D");
    MpnrResult result;
    result.point = guess;

    for (result.iterations = 1; result.iterations <= options.maxIterations;
         ++result.iterations) {
        if (stats != nullptr) {
            ++stats->mpnrIterations;
        }
        const HEvaluation eval =
            h.evaluate(result.point.setup, result.point.hold, stats);
        if (!eval.success) {
            result.transientFailed = true;
            return result;
        }
        result.h = eval.h;
        result.dhds = eval.dhds;
        result.dhdh = eval.dhdh;

        // Augmented residual: [h; T^T (tau - guess)].
        const double planeResidual =
            tangent[0] * (result.point.setup - guess.setup) +
            tangent[1] * (result.point.hold - guess.hold);

        // 2x2 Newton: [dh/ds dh/dh; T0 T1] dtau = -[h; planeResidual].
        const double det =
            eval.dhds * tangent[1] - eval.dhdh * tangent[0];
        const double gradNorm =
            std::sqrt(eval.dhds * eval.dhds + eval.dhdh * eval.dhdh);
        if (std::fabs(det) <= options.gradientTol ||
            gradNorm <= options.gradientTol) {
            // The curve is (numerically) tangent to the constraint plane,
            // or h is flat: the square system is singular.
            result.gradientVanished = true;
            return result;
        }
        double ds =
            (-eval.h * tangent[1] + planeResidual * eval.dhdh) / det;
        double dh =
            (-planeResidual * eval.dhds + eval.h * tangent[0]) / det;
        const double stepNorm = std::sqrt(ds * ds + dh * dh);
        if (stepNorm > options.maxStep) {
            const double scale = options.maxStep / stepNorm;
            ds *= scale;
            dh *= scale;
        }
        result.point.setup += ds;
        result.point.hold += dh;

        const bool updateSmall =
            std::fabs(ds) <= options.skewRelTol *
                                 std::fabs(result.point.setup) +
                                 options.skewAbsTol &&
            std::fabs(dh) <= options.skewRelTol *
                                 std::fabs(result.point.hold) +
                                 options.skewAbsTol;
        if (updateSmall && std::fabs(eval.h) <= options.hTol) {
            result.converged = true;
            return result;
        }
    }
    result.iterations = options.maxIterations;
    return result;
}

}  // namespace shtrace
