// shtrace -- internal helpers wiring the persistent store into the batch
// drivers (docs/STORE.md). Not installed; drivers include it from src/.
//
// The contract every driver follows:
//   * policy Refresh never reads, ReadOnly never writes;
//   * a hit returns the cached payload with FRESH stats (cacheHits = 1 and
//     the lookup's wall time) -- the characterized numbers are
//     byte-identical to the producing run, the cost counters describe THIS
//     run, which did no transient work;
//   * a computed job counts cacheMisses = 1; failed jobs are never saved;
//   * with warmStart enabled, a miss whose problem hash matches a cached
//     contour seeds the tracer from the nearest cached point instead of
//     running the seed bisection (cacheWarmStarts = 1).
#pragma once

#include <algorithm>
#include <optional>

#include "shtrace/chz/run_config.hpp"
#include "shtrace/store/cache.hpp"
#include "shtrace/store/key.hpp"
#include "shtrace/store/serialize.hpp"

namespace shtrace::chz_detail {

/// Opens the store named by config.cacheDir; nullopt when caching is off.
/// Throws Error when the directory cannot be created.
inline std::optional<store::ResultStore> openStore(const RunConfig& config) {
    if (config.cacheDir.empty()) {
        return std::nullopt;
    }
    return store::ResultStore(config.cacheDir);
}

inline bool mayRead(const RunConfig& config) {
    return config.cachePolicy != CachePolicy::Refresh;
}

inline bool mayWrite(const RunConfig& config) {
    return config.cachePolicy != CachePolicy::ReadOnly;
}

/// Loads the entry at `key` when it exists AND carries the expected kind.
inline std::optional<store::StoreEntry> loadKind(
    const store::ResultStore& cache, std::uint64_t key, const char* kind) {
    auto entry = cache.load(key);
    if (!entry || entry->kind != kind) {
        return std::nullopt;
    }
    return entry;
}

/// The tracer seed a near-hit provides: a point of the cached contour
/// (same problem family, different full key) clamped into the tracer
/// window. MPNR then pulls it onto the new contour, replacing the seed
/// bisection. The point chosen is the cached contour's large-hold end --
/// the same entry geometry the seed search uses (hold pinned large, setup
/// bisected), so the trace spends its whole budget sweeping the window
/// once instead of ramping up from mid-curve in both directions.
/// nullopt: trace cold.
inline std::optional<SkewPoint> warmStartPoint(
    const store::ResultStore& cache, const store::CacheKey& key,
    const TracerOptions& tracer) {
    const auto near = cache.findNearHit(key.problem, key.full);
    if (!near) {
        return std::nullopt;
    }
    const std::vector<SkewPoint> contour = store::contourOfEntry(*near);
    if (contour.empty()) {
        return std::nullopt;
    }
    SkewPoint point = *std::max_element(
        contour.begin(), contour.end(),
        [](const SkewPoint& a, const SkewPoint& b) {
            return a.hold < b.hold;
        });
    point.setup = std::clamp(point.setup, tracer.bounds.setupMin,
                             tracer.bounds.setupMax);
    point.hold = std::clamp(point.hold, tracer.bounds.holdMin,
                            tracer.bounds.holdMax);
    return point;
}

}  // namespace shtrace::chz_detail
