#include "shtrace/chz/independent.hpp"

#include <cmath>
#include <vector>

#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

/// Skew pair along an axis with the other coordinate pinned.
SkewPoint onAxis(SkewAxis axis, double value, double pinned) {
    return axis == SkewAxis::Setup ? SkewPoint{value, pinned}
                                   : SkewPoint{pinned, value};
}

}  // namespace

IndependentResult characterizeByBisection(const HFunction& h, SkewAxis axis,
                                          double passSign,
                                          const IndependentOptions& opt,
                                          SimStats* stats) {
    require(opt.lo < opt.hi, "characterizeByBisection: bad bracket");
    IndependentResult result;

    const auto passMetric = [&](double v) {
        const SkewPoint p = onAxis(axis, v, opt.pinnedSkew);
        const HEvaluation eval = h.evaluateValueOnly(p.setup, p.hold, stats);
        ++result.transientCount;
        require(eval.success, "characterizeByBisection: ",
                eval.nonFinite ? "non-finite transient (NaN/Inf guard)"
                               : "transient failed");
        return passSign * eval.h;
    };

    double lo = opt.lo;
    double hi = opt.hi;
    double mLo = passMetric(lo);
    double mHi = passMetric(hi);
    if (mLo > 0.0 || mHi <= 0.0) {
        return result;  // transition not inside the range
    }
    while (hi - lo > opt.tolerance &&
           result.iterations < opt.maxIterations) {
        ++result.iterations;
        const double mid = 0.5 * (lo + hi);
        if (passMetric(mid) > 0.0) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    result.converged = hi - lo <= opt.tolerance;
    result.skew = 0.5 * (lo + hi);
    return result;
}

IndependentResult characterizeByNewton(const HFunction& h, SkewAxis axis,
                                       double passSign,
                                       const IndependentOptions& opt,
                                       SimStats* stats) {
    require(opt.lo < opt.hi, "characterizeByNewton: bad bracket");
    IndependentResult result;

    // --- coarse bracket scan (a handful of cheap transients) ---
    double seed = opt.newtonSeed;
    double lo = opt.lo;
    double hi = opt.hi;
    if (seed <= 0.0) {
        constexpr int kScanPoints = 5;
        std::vector<double> grid(kScanPoints);
        if (lo > 0.0) {
            // Geometric spacing resolves the decades of a positive range.
            const double ratio = std::pow(hi / lo, 1.0 / (kScanPoints - 1));
            double v = lo;
            for (int i = 0; i < kScanPoints; ++i, v *= ratio) {
                grid[static_cast<std::size_t>(i)] = v;
            }
        } else {
            // Ranges admitting negative skews (zero/negative setup or hold
            // constraints) scan linearly.
            for (int i = 0; i < kScanPoints; ++i) {
                grid[static_cast<std::size_t>(i)] =
                    lo + (hi - lo) * i / (kScanPoints - 1);
            }
        }
        double prevMetric = 0.0;
        bool seeded = false;
        for (int i = 0; i < kScanPoints; ++i) {
            const SkewPoint p =
                onAxis(axis, grid[static_cast<std::size_t>(i)], opt.pinnedSkew);
            const HEvaluation eval =
                h.evaluateValueOnly(p.setup, p.hold, stats);
            ++result.transientCount;
            require(eval.success, "characterizeByNewton: scan ",
                    eval.nonFinite ? "non-finite transient (NaN/Inf guard)"
                                   : "transient failed");
            const double metric = passSign * eval.h;
            if (i > 0 && prevMetric <= 0.0 && metric > 0.0) {
                lo = grid[static_cast<std::size_t>(i - 1)];
                hi = grid[static_cast<std::size_t>(i)];
                seed = 0.5 * (lo + hi);
                seeded = true;
                break;
            }
            prevMetric = metric;
        }
        if (!seeded) {
            return result;  // no transition found in range
        }
    }

    // --- safeguarded Newton: sensitivity-driven steps, bracket fallback ---
    double x = seed;
    for (result.iterations = 1; result.iterations <= opt.maxIterations;
         ++result.iterations) {
        const SkewPoint p = onAxis(axis, x, opt.pinnedSkew);
        const HEvaluation eval = h.evaluate(p.setup, p.hold, stats);
        ++result.transientCount;
        require(eval.success, "characterizeByNewton: ",
                eval.nonFinite ? "non-finite transient (NaN/Inf guard)"
                               : "transient failed");
        const double deriv =
            axis == SkewAxis::Setup ? eval.dhds : eval.dhdh;

        // Maintain the bracket from the sign of the pass metric.
        if (passSign * eval.h > 0.0) {
            hi = std::min(hi, x);
        } else {
            lo = std::max(lo, x);
        }

        if (std::fabs(eval.h) <= opt.hTol) {
            result.converged = true;
            result.skew = x;
            return result;
        }
        double xNext;
        if (std::fabs(deriv) > 1e-30) {
            xNext = x - eval.h / deriv;
        } else {
            xNext = 0.5 * (lo + hi);  // flat spot: bisect
        }
        if (xNext <= lo || xNext >= hi) {
            xNext = 0.5 * (lo + hi);  // Newton left the bracket: bisect
        }
        if (std::fabs(xNext - x) <= opt.tolerance && hi - lo < 4.0 * opt.tolerance) {
            result.converged = true;
            result.skew = xNext;
            return result;
        }
        x = xNext;
    }
    result.skew = x;
    return result;
}

}  // namespace shtrace
