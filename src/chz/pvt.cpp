#include "shtrace/chz/pvt.hpp"

namespace shtrace {

std::vector<PvtCornerResult> sweepPvtCorners(
    const std::vector<ProcessCorner>& corners,
    const CornerFixtureBuilder& builder, const PvtSweepOptions& options,
    SimStats* stats) {
    std::vector<PvtCornerResult> results;
    results.reserve(corners.size());
    for (const ProcessCorner& corner : corners) {
        PvtCornerResult row;
        row.corner = corner.name;
        SimStats local;
        try {
            const RegisterFixture fixture = builder(corner);
            const CharacterizationProblem problem(fixture, options.criterion,
                                                  options.recipe, &local);
            row.characteristicClockToQ = problem.characteristicClockToQ();

            const IndependentResult setup = characterizeByNewton(
                problem.h(), SkewAxis::Setup, problem.passSign(),
                options.independent, &local);
            const IndependentResult hold = characterizeByNewton(
                problem.h(), SkewAxis::Hold, problem.passSign(),
                options.independent, &local);
            row.setupTime = setup.skew;
            row.holdTime = hold.skew;
            row.transientCount = setup.transientCount + hold.transientCount;
            row.success = setup.converged && hold.converged;
        } catch (const Error&) {
            row.success = false;
        }
        if (stats != nullptr) {
            *stats += local;
        }
        results.push_back(row);
    }
    return results;
}

}  // namespace shtrace
