#include "shtrace/chz/pvt.hpp"

#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

PvtCornerResult characterizeCorner(const ProcessCorner& corner,
                                   const CornerFixtureBuilder& builder,
                                   const RunConfig& config) {
    PvtCornerResult row;
    row.corner = corner.name;
    ScopedTimer timer(&row.stats);
    try {
        const RegisterFixture fixture = builder(corner);
        const CharacterizationProblem problem(fixture, config.criterion,
                                              config.recipe, &row.stats);
        row.characteristicClockToQ = problem.characteristicClockToQ();

        const IndependentResult setup = characterizeByNewton(
            problem.h(), SkewAxis::Setup, problem.passSign(),
            config.independent, &row.stats);
        const IndependentResult hold = characterizeByNewton(
            problem.h(), SkewAxis::Hold, problem.passSign(),
            config.independent, &row.stats);
        row.setupTime = setup.skew;
        row.holdTime = hold.skew;
        row.transientCount = setup.transientCount + hold.transientCount;
        row.success = setup.converged && hold.converged;
        if (!row.success) {
            row.failureReason = "independent characterization diverged";
        }
    } catch (const Error& e) {
        row.success = false;
        row.failureReason = e.what();
    }
    return row;
}

}  // namespace

PvtSweepResult sweepPvtCorners(const std::vector<ProcessCorner>& corners,
                               const CornerFixtureBuilder& builder,
                               const RunConfig& config) {
    PvtSweepResult result;
    result.rows.resize(corners.size());
    parallelRun(
        corners.size(),
        [&](std::size_t job, std::size_t /*worker*/) {
            try {
                result.rows[job] =
                    characterizeCorner(corners[job], builder, config);
            } catch (const std::exception& e) {
                result.rows[job].corner = corners[job].name;
                result.rows[job].success = false;
                result.rows[job].failureReason = e.what();
            }
        },
        config.parallel, config.onJobDone);
    for (const PvtCornerResult& row : result.rows) {
        result.stats.merge(row.stats);
    }
    return result;
}

std::vector<PvtCornerResult> sweepPvtCorners(
    const std::vector<ProcessCorner>& corners,
    const CornerFixtureBuilder& builder, const RunConfig& config,
    SimStats* stats) {
    PvtSweepResult result = sweepPvtCorners(corners, builder, config);
    if (stats != nullptr) {
        *stats += result.stats;
    }
    return std::move(result.rows);
}

}  // namespace shtrace
