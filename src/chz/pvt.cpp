#include "shtrace/chz/pvt.hpp"

#include <optional>

#include "cache_glue.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

PvtCornerResult characterizeCorner(const ProcessCorner& corner,
                                   const CornerFixtureBuilder& builder,
                                   const RunConfig& config,
                                   const store::ResultStore* cache) {
    SHTRACE_SPAN("chz.pvt_corner");
    PvtCornerResult row;
    row.corner = corner.name;
    ScopedTimer timer(&row.stats);
    try {
        const RegisterFixture fixture = builder(corner);

        std::optional<store::CacheKey> key;
        if (cache != nullptr) {
            key = store::independentRowKey(fixture, config);
            if (chz_detail::mayRead(config)) {
                if (const auto entry = chz_detail::loadKind(
                        *cache, key->full, store::kKindPvtRow)) {
                    try {
                        row = store::deserializePvtRow(entry->payload);
                        // The corner's identity is entirely in the built
                        // fixture; restore this sweep's display name.
                        row.corner = corner.name;
                        row.stats = SimStats{};
                        row.stats.cacheHits = 1;
                        return row;
                    } catch (const store::StoreFormatError&) {
                        // Unreadable payload: recompute and overwrite.
                    }
                }
            }
            row.stats.cacheMisses = 1;
        }

        const CharacterizationProblem problem(fixture, config.criterion,
                                              config.recipe, &row.stats);
        row.characteristicClockToQ = problem.characteristicClockToQ();

        const IndependentResult setup = characterizeByNewton(
            problem.h(), SkewAxis::Setup, problem.passSign(),
            config.independent, &row.stats);
        const IndependentResult hold = characterizeByNewton(
            problem.h(), SkewAxis::Hold, problem.passSign(),
            config.independent, &row.stats);
        row.setupTime = setup.skew;
        row.holdTime = hold.skew;
        row.transientCount = setup.transientCount + hold.transientCount;
        row.success = setup.converged && hold.converged;
        if (!row.success) {
            row.failureReason = "independent characterization diverged";
        } else if (cache != nullptr && chz_detail::mayWrite(config)) {
            store::StoreEntry entry;
            entry.kind = store::kKindPvtRow;
            entry.key = key->full;
            entry.problem = key->problem;
            entry.label = corner.name;
            entry.payload = store::serializePvtRow(row);
            cache->save(entry);
        }
    } catch (const Error& e) {
        row.success = false;
        row.failureReason = e.what();
    }
    return row;
}

}  // namespace

PvtSweepResult sweepPvtCorners(const std::vector<ProcessCorner>& corners,
                               const CornerFixtureBuilder& builder,
                               const RunConfig& config) {
    const obs::ScopedRequestContext requestScope(requestContextFor(config));
    obs::RunObservation observation(config.metricsPath,
                                    config.spanTracePath);
    obs::setGauge(
        obs::Gauge::WorkerThreads,
        resolveThreadCount(config.parallel.threads, corners.size()));
    obs::setGauge(obs::Gauge::BatchJobs,
                  static_cast<double>(corners.size()));
    PvtSweepResult result;
    result.rows.resize(corners.size());
    const std::optional<store::ResultStore> cache =
        chz_detail::openStore(config);
    const store::ResultStore* cachePtr = cache ? &*cache : nullptr;
    parallelRun(
        corners.size(),
        [&](std::size_t job, std::size_t /*worker*/) {
            try {
                result.rows[job] = characterizeCorner(corners[job], builder,
                                                      config, cachePtr);
            } catch (const std::exception& e) {
                result.rows[job].corner = corners[job].name;
                result.rows[job].success = false;
                result.rows[job].failureReason = e.what();
            }
        },
        config.parallel, config.onJobDone);
    for (const PvtCornerResult& row : result.rows) {
        result.stats.merge(row.stats);
    }
    observation.finish(result.stats);
    return result;
}

std::vector<PvtCornerResult> sweepPvtCorners(
    const std::vector<ProcessCorner>& corners,
    const CornerFixtureBuilder& builder, const RunConfig& config,
    SimStats* stats) {
    PvtSweepResult result = sweepPvtCorners(corners, builder, config);
    if (stats != nullptr) {
        *stats += result.stats;
    }
    return std::move(result.rows);
}

}  // namespace shtrace
