#include "shtrace/chz/tracer.hpp"

#include <algorithm>
#include <cmath>

#include "shtrace/linalg/pseudo_inverse.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

/// The two clocks a TimelineEvent carries: the deterministic operation
/// index (h evaluations completed, identical across thread counts) and a
/// wall-clock offset that is recorded only while obs is enabled -- it must
/// stay exactly 0.0 otherwise so default-mode store payloads are
/// byte-identical.
class TimelineClock {
public:
    explicit TimelineClock(const SimStats* stats)
        : stats_(stats),
          live_(obs::enabled()),
          startNs_(live_ ? obs::monotonicNanos() : 0) {}

    std::uint64_t opIndex() const {
        return stats_ != nullptr ? stats_->hEvaluations : 0;
    }
    double wallNs() const {
        return live_ ? static_cast<double>(obs::monotonicNanos() - startNs_)
                     : 0.0;
    }

private:
    const SimStats* stats_;
    bool live_;
    long long startNs_;
};

struct PointOnCurve {
    SkewPoint p;
    double h = 0.0;
    double dhds = 0.0;
    double dhdh = 0.0;
    int iterations = 0;
};

bool finitePoint(const SkewPoint& p) {
    return std::isfinite(p.setup) && std::isfinite(p.hold);
}

bool finiteResult(const MpnrResult& r) {
    return finitePoint(r.point) && std::isfinite(r.h) &&
           std::isfinite(r.dhds) && std::isfinite(r.dhdh);
}

/// Maps a non-converged corrector result to its taxonomy kind.
TraceEventKind classifyRejection(const MpnrResult& r) {
    if (r.nonFinite) {
        return TraceEventKind::NonFinite;
    }
    if (r.transientFailed) {
        return TraceEventKind::TransientFailed;
    }
    if (r.gradientVanished) {
        return TraceEventKind::GradientVanished;
    }
    return TraceEventKind::CorrectorDiverged;
}

/// Traces one direction from `start`, appending points to `out` and every
/// incident to `diag`.
void traceDirection(const HFunction& h, const TracerOptions& opt,
                    PointOnCurve start, Vector tangent, int budget,
                    TracePhase phase, std::vector<PointOnCurve>& out,
                    int& retries, TraceDiagnostics& diag, SimStats* stats,
                    const TimelineClock& clock) {
    SHTRACE_SPAN("tracer.direction");
    PointOnCurve current = start;
    double alpha = opt.stepLength;

    // Recovery state, reset whenever a point is accepted: a lateral offset
    // re-aims the next prediction after a transient failure, a pull < 1
    // shortens it after a plateau hit. Both leave alpha itself alone.
    double lateral = 0.0;
    double pull = 1.0;
    int transientRetries = 0;
    int plateauReseeds = 0;

    // Falls back to the classic halving once a recovery budget is spent.
    const auto halve = [&](bool resetPull) {
        alpha *= 0.5;
        ++retries;
        if (stats != nullptr) {
            ++stats->traceStepHalvings;
        }
        diag.mark(TimelineEventKind::Halving, phase, current.p,
                  clock.opIndex(), clock.wallNs());
        lateral = 0.0;
        if (resetPull) {
            pull = 1.0;
        }
    };

    while (static_cast<int>(out.size()) < budget) {
        // Euler predictor (paper eq. 26), optionally re-aimed by the
        // recovery policies.
        SkewPoint predicted{current.p.setup + pull * alpha * tangent[0],
                            current.p.hold + pull * alpha * tangent[1]};
        predicted.setup += lateral * -tangent[1];
        predicted.hold += lateral * tangent[0];
        if (!finitePoint(predicted)) {
            // A non-finite prediction means the tangent itself is broken;
            // no amount of step control recovers from that.
            diag.record(TraceEventKind::NonFinite, phase, predicted, alpha,
                        0);
            if (stats != nullptr) {
                ++stats->traceNonFiniteRejections;
            }
            return;
        }
        const MpnrResult corrected =
            opt.correctorKind == CorrectorKind::MoorePenrose
                ? solveMpnr(h, predicted, opt.corrector, stats)
                : solveArclengthCorrector(h, predicted, tangent,
                                          opt.corrector, stats);

        bool accept = corrected.converged;
        bool wandered = false;
        if (accept && !finiteResult(corrected)) {
            accept = false;  // never let NaN/Inf into the contour
        }
        if (accept) {
            const double ds = corrected.point.setup - predicted.setup;
            const double dh = corrected.point.hold - predicted.hold;
            const double wander = std::sqrt(ds * ds + dh * dh);
            if (!(wander <= opt.maxCorrectionRatio * alpha)) {
                // Spelled as !(<=) so a NaN wander REJECTS: the legacy
                // (wander > limit) comparison is false for NaN and silently
                // accepted the point.
                accept = false;
                wandered = true;
            }
        }
        if (!accept) {
            const TraceEventKind kind =
                corrected.converged && !wandered
                    ? TraceEventKind::NonFinite
                    : (wandered ? TraceEventKind::CorrectorDiverged
                                : classifyRejection(corrected));
            diag.record(kind, phase, corrected.point, alpha,
                        corrected.iterations);
            switch (kind) {
                case TraceEventKind::NonFinite:
                    if (stats != nullptr) {
                        ++stats->traceNonFiniteRejections;
                    }
                    halve(true);
                    break;
                case TraceEventKind::TransientFailed:
                    // Spatial accident: re-aim the same alpha at a target
                    // nudged perpendicular to the tangent, alternating
                    // sides, before surrendering step length.
                    if (transientRetries < opt.transientRetryLimit) {
                        ++transientRetries;
                        ++retries;
                        if (stats != nullptr) {
                            ++stats->traceTransientRetries;
                        }
                        diag.mark(TimelineEventKind::Retry, phase,
                                  corrected.point, clock.opIndex(),
                                  clock.wallNs());
                        lateral = opt.transientRetryJitter * alpha *
                                  (transientRetries % 2 == 1 ? 1.0 : -1.0);
                    } else {
                        halve(false);
                    }
                    break;
                case TraceEventKind::GradientVanished:
                    // Plateau: pull the prediction back toward the curve
                    // instead of shrinking alpha for all future steps.
                    if (plateauReseeds < opt.plateauReseedLimit) {
                        ++plateauReseeds;
                        ++retries;
                        if (stats != nullptr) {
                            ++stats->tracePlateauReseeds;
                        }
                        diag.mark(TimelineEventKind::Reseed, phase,
                                  corrected.point, clock.opIndex(),
                                  clock.wallNs());
                        pull *= opt.plateauReseedPull;
                        lateral = 0.0;
                    } else {
                        halve(true);
                    }
                    break;
                default:
                    halve(true);
                    break;
            }
            if (alpha < opt.minStepLength) {
                diag.record(TraceEventKind::StepUnderflow, phase, predicted,
                            alpha, corrected.iterations);
                return;  // cannot make progress in this direction
            }
            continue;
        }
        if (!opt.bounds.contains(corrected.point)) {
            // Curve left the characterization window: the normal, healthy
            // end of a direction.
            diag.record(TraceEventKind::LeftBounds, phase, corrected.point,
                        alpha, corrected.iterations);
            return;
        }

        PointOnCurve next;
        next.p = corrected.point;
        next.h = corrected.h;
        next.dhds = corrected.dhds;
        next.dhdh = corrected.dhdh;
        next.iterations = corrected.iterations;
        out.push_back(next);
        diag.mark(TimelineEventKind::PointAccepted, phase, next.p,
                  clock.opIndex(), clock.wallNs());
        lateral = 0.0;
        pull = 1.0;
        transientRetries = 0;
        plateauReseeds = 0;

        // New tangent, oriented to continue the previous direction.
        Vector newTangent = tangentFromGradient2(next.dhds, next.dhdh);
        if (newTangent[0] * tangent[0] + newTangent[1] * tangent[1] < 0.0) {
            newTangent *= -1.0;
        }
        tangent = newTangent;
        current = next;

        if (corrected.iterations <= opt.easyIterations) {
            alpha = std::min(alpha * opt.growFactor, opt.maxStepLength);
        }
    }
    // Loop exit means the point budget ran dry with the curve still alive.
    diag.record(TraceEventKind::BudgetExhausted, phase, current.p, alpha, 0);
}

}  // namespace

double TracedContour::averageCorrectorIterations() const {
    if (correctorIterations.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (int it : correctorIterations) {
        sum += it;
    }
    return sum / static_cast<double>(correctorIterations.size());
}

TracedContour traceContour(const HFunction& h, SkewPoint seed,
                           const TracerOptions& opt, SimStats* stats) {
    require(opt.maxPoints >= 1, "traceContour: maxPoints must be >= 1");
    SHTRACE_SPAN("tracer.contour");
    const TimelineClock clock(stats);
    TracedContour contour;

    // Put the seed exactly on the curve.
    const MpnrResult seedResult = solveMpnr(h, seed, opt.corrector, stats);
    if (!seedResult.converged || !finiteResult(seedResult)) {
        const TraceEventKind kind =
            seedResult.converged ? TraceEventKind::NonFinite
                                 : classifyRejection(seedResult);
        contour.diagnostics.record(kind, TracePhase::Seed, seedResult.point,
                                   0.0, seedResult.iterations);
        if (kind == TraceEventKind::NonFinite && stats != nullptr) {
            ++stats->traceNonFiniteRejections;
        }
        return contour;  // seedConverged stays false
    }
    contour.seedConverged = true;
    contour.diagnostics.mark(TimelineEventKind::SeedCorrected,
                             TracePhase::Seed, seedResult.point,
                             clock.opIndex(), clock.wallNs());
    const bool seedInWindow = opt.bounds.contains(seedResult.point);
    if (!seedInWindow) {
        // The corrector pulled the seed onto the curve but OUTSIDE the
        // characterization window (the standard flow clamps the raw seed to
        // the window edge, so an epsilon overshoot here is routine). The
        // curve itself is still valid: trace both directions from it, but
        // keep the out-of-window seed out of the emitted points.
        contour.diagnostics.record(TraceEventKind::LeftBounds,
                                   TracePhase::Seed, seedResult.point, 0.0,
                                   seedResult.iterations);
    }

    PointOnCurve p0;
    p0.p = seedResult.point;
    p0.h = seedResult.h;
    p0.dhds = seedResult.dhds;
    p0.dhdh = seedResult.dhdh;
    p0.iterations = seedResult.iterations;

    const Vector t0 = tangentFromGradient2(p0.dhds, p0.dhdh);

    // Direction A runs with the full point budget (it stops early when the
    // curve leaves the bounds); direction B then consumes whatever is left.
    // A seed on the window boundary therefore spends everything on the one
    // productive direction, while a mid-curve seed covers both sides. An
    // out-of-window seed is not emitted, so it does not cost a point.
    const int remaining = opt.maxPoints - (seedInWindow ? 1 : 0);
    std::vector<PointOnCurve> forward;
    std::vector<PointOnCurve> backward;
    traceDirection(h, opt, p0, t0, remaining, TracePhase::Forward, forward,
                   contour.predictorRetries, contour.diagnostics, stats,
                   clock);
    if (opt.traceBothDirections) {
        Vector tNeg = t0;
        tNeg *= -1.0;
        const int budget = remaining - static_cast<int>(forward.size());
        traceDirection(h, opt, p0, tNeg, budget, TracePhase::Backward,
                       backward, contour.predictorRetries,
                       contour.diagnostics, stats, clock);
    }

    // Splice: reversed backward + seed + forward, then order by setup skew
    // for a clean presentation (the physical contour is monotone).
    std::vector<PointOnCurve> all;
    all.reserve(backward.size() + 1 + forward.size());
    for (auto it = backward.rbegin(); it != backward.rend(); ++it) {
        all.push_back(*it);
    }
    if (seedInWindow) {
        all.push_back(p0);
    }
    for (const auto& p : forward) {
        all.push_back(p);
    }

    contour.points.reserve(all.size());
    contour.residuals.reserve(all.size());
    contour.correctorIterations.reserve(all.size());
    for (const auto& p : all) {
        contour.points.push_back(p.p);
        contour.residuals.push_back(std::fabs(p.h));
        contour.correctorIterations.push_back(p.iterations);
    }
    return contour;
}

}  // namespace shtrace
