#include "shtrace/chz/tracer.hpp"

#include <algorithm>
#include <cmath>

#include "shtrace/linalg/pseudo_inverse.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

struct PointOnCurve {
    SkewPoint p;
    double h = 0.0;
    double dhds = 0.0;
    double dhdh = 0.0;
    int iterations = 0;
};

/// Traces one direction from `start`, appending points to `out`.
void traceDirection(const HFunction& h, const TracerOptions& opt,
                    PointOnCurve start, Vector tangent, int budget,
                    std::vector<PointOnCurve>& out, int& retries,
                    SimStats* stats) {
    PointOnCurve current = start;
    double alpha = opt.stepLength;

    while (static_cast<int>(out.size()) < budget) {
        // Euler predictor (paper eq. 26).
        const SkewPoint predicted{current.p.setup + alpha * tangent[0],
                                  current.p.hold + alpha * tangent[1]};
        const MpnrResult corrected =
            opt.correctorKind == CorrectorKind::MoorePenrose
                ? solveMpnr(h, predicted, opt.corrector, stats)
                : solveArclengthCorrector(h, predicted, tangent,
                                          opt.corrector, stats);

        bool accept = corrected.converged;
        if (accept) {
            const double ds = corrected.point.setup - predicted.setup;
            const double dh = corrected.point.hold - predicted.hold;
            const double wander = std::sqrt(ds * ds + dh * dh);
            if (wander > opt.maxCorrectionRatio * alpha) {
                accept = false;  // landed on a distant part of the curve
            }
        }
        if (!accept) {
            alpha *= 0.5;
            ++retries;
            if (alpha < opt.minStepLength) {
                return;  // cannot make progress in this direction
            }
            continue;
        }
        if (!opt.bounds.contains(corrected.point)) {
            return;  // curve left the characterization window
        }

        PointOnCurve next;
        next.p = corrected.point;
        next.h = corrected.h;
        next.dhds = corrected.dhds;
        next.dhdh = corrected.dhdh;
        next.iterations = corrected.iterations;
        out.push_back(next);

        // New tangent, oriented to continue the previous direction.
        Vector newTangent = tangentFromGradient2(next.dhds, next.dhdh);
        if (newTangent[0] * tangent[0] + newTangent[1] * tangent[1] < 0.0) {
            newTangent *= -1.0;
        }
        tangent = newTangent;
        current = next;

        if (corrected.iterations <= opt.easyIterations) {
            alpha = std::min(alpha * opt.growFactor, opt.maxStepLength);
        }
    }
}

}  // namespace

double TracedContour::averageCorrectorIterations() const {
    if (correctorIterations.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (int it : correctorIterations) {
        sum += it;
    }
    return sum / static_cast<double>(correctorIterations.size());
}

TracedContour traceContour(const HFunction& h, SkewPoint seed,
                           const TracerOptions& opt, SimStats* stats) {
    require(opt.maxPoints >= 1, "traceContour: maxPoints must be >= 1");
    TracedContour contour;

    // Put the seed exactly on the curve.
    const MpnrResult seedResult = solveMpnr(h, seed, opt.corrector, stats);
    if (!seedResult.converged) {
        return contour;  // seedConverged stays false
    }
    contour.seedConverged = true;

    PointOnCurve p0;
    p0.p = seedResult.point;
    p0.h = seedResult.h;
    p0.dhds = seedResult.dhds;
    p0.dhdh = seedResult.dhdh;
    p0.iterations = seedResult.iterations;

    const Vector t0 = tangentFromGradient2(p0.dhds, p0.dhdh);

    // Direction A runs with the full point budget (it stops early when the
    // curve leaves the bounds); direction B then consumes whatever is left.
    // A seed on the window boundary therefore spends everything on the one
    // productive direction, while a mid-curve seed covers both sides.
    const int remaining = opt.maxPoints - 1;
    std::vector<PointOnCurve> forward;
    std::vector<PointOnCurve> backward;
    traceDirection(h, opt, p0, t0, remaining, forward,
                   contour.predictorRetries, stats);
    if (opt.traceBothDirections) {
        Vector tNeg = t0;
        tNeg *= -1.0;
        const int budget = remaining - static_cast<int>(forward.size());
        traceDirection(h, opt, p0, tNeg, budget, backward,
                       contour.predictorRetries, stats);
    }

    // Splice: reversed backward + seed + forward, then order by setup skew
    // for a clean presentation (the physical contour is monotone).
    std::vector<PointOnCurve> all;
    all.reserve(backward.size() + 1 + forward.size());
    for (auto it = backward.rbegin(); it != backward.rend(); ++it) {
        all.push_back(*it);
    }
    all.push_back(p0);
    for (const auto& p : forward) {
        all.push_back(p);
    }

    contour.points.reserve(all.size());
    contour.residuals.reserve(all.size());
    contour.correctorIterations.reserve(all.size());
    for (const auto& p : all) {
        contour.points.push_back(p.p);
        contour.residuals.push_back(std::fabs(p.h));
        contour.correctorIterations.push_back(p.iterations);
    }
    return contour;
}

}  // namespace shtrace
