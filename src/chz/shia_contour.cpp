#include "shtrace/chz/shia_contour.hpp"

#include <algorithm>

#include "shtrace/util/error.hpp"

namespace shtrace {

ShiaContour::ShiaContour(std::vector<SkewPoint> points, double) {
    require(points.size() >= 2, "ShiaContour: need at least 2 contour points");
    // Normalize to the Pareto frontier (lower-left staircase): every traced
    // point is a valid (setup, hold) pair, but for QUERIES only the
    // non-dominated ones matter. This also absorbs the vertical
    // setup-asymptote segment (many holds at one setup -> keep the lowest)
    // and any few-ps corrector wiggle (dominated points drop out).
    std::sort(points.begin(), points.end(),
              [](const SkewPoint& a, const SkewPoint& b) {
                  if (a.setup != b.setup) {
                      return a.setup < b.setup;
                  }
                  return a.hold < b.hold;
              });
    for (const SkewPoint& p : points) {
        if (points_.empty() || p.hold < points_.back().hold) {
            points_.push_back(p);
        }
    }
    require(points_.size() >= 2,
            "ShiaContour: contour degenerates to a single non-dominated "
            "point (no setup/hold tradeoff present)");
}

ShiaContour ShiaContour::fromTrace(const TracedContour& contour,
                                   double monotoneSlack) {
    return ShiaContour(contour.points, monotoneSlack);
}

std::optional<double> ShiaContour::holdRequirementAt(double setup) const {
    if (setup < points_.front().setup) {
        return std::nullopt;  // below the setup asymptote: infeasible
    }
    if (setup >= points_.back().setup) {
        return points_.back().hold;  // clamped to the hold asymptote
    }
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), setup,
        [](double lhs, const SkewPoint& p) { return lhs < p.setup; });
    const SkewPoint& hi = *it;
    const SkewPoint& lo = *(it - 1);
    const double span = hi.setup - lo.setup;
    if (span <= 0.0) {
        return lo.hold;
    }
    const double frac = (setup - lo.setup) / span;
    return lo.hold + frac * (hi.hold - lo.hold);
}

bool ShiaContour::admits(double setupAvail, double holdAvail) const {
    const auto requirement = holdRequirementAt(setupAvail);
    return requirement.has_value() && holdAvail >= *requirement;
}

std::optional<double> ShiaContour::holdSlack(double setupAvail,
                                             double holdAvail) const {
    const auto requirement = holdRequirementAt(setupAvail);
    if (!requirement.has_value()) {
        return std::nullopt;
    }
    return holdAvail - *requirement;
}

}  // namespace shtrace
