#include "shtrace/chz/shia_contour.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "shtrace/util/error.hpp"

namespace shtrace {

ShiaContour::ShiaContour(std::vector<SkewPoint> points, double monotoneSlack) {
    require(points.size() >= 2, "ShiaContour: need at least 2 contour points");
    require(std::isfinite(monotoneSlack) && monotoneSlack >= 0.0,
            "ShiaContour: monotoneSlack must be finite and >= 0");
    for (const SkewPoint& p : points) {
        require(std::isfinite(p.setup) && std::isfinite(p.hold),
                "ShiaContour: non-finite contour point");
    }
    // Normalize to the Pareto frontier (lower-left staircase): every traced
    // point is a valid (setup, hold) pair, but for QUERIES only the
    // non-dominated ones matter. This also absorbs the vertical
    // setup-asymptote segment (many holds at one setup -> keep the lowest).
    // A dominated point whose hold is within `monotoneSlack` of the running
    // minimum is retained: few-ps corrector wiggle is curve shape, not
    // noise, at that tolerance.
    std::sort(points.begin(), points.end(),
              [](const SkewPoint& a, const SkewPoint& b) {
                  if (a.setup != b.setup) {
                      return a.setup < b.setup;
                  }
                  return a.hold < b.hold;
              });
    double runningMin = std::numeric_limits<double>::infinity();
    for (const SkewPoint& p : points) {
        if (!points_.empty() && p.setup == points_.back().setup) {
            continue;  // vertical segment: the first (lowest hold) stays
        }
        const bool improves = p.hold < runningMin;
        const bool withinSlack =
            monotoneSlack > 0.0 && p.hold <= runningMin + monotoneSlack;
        if (points_.empty() || improves || withinSlack) {
            points_.push_back(p);
            runningMin = std::min(runningMin, p.hold);
        }
    }
    minHold_ = runningMin;
    require(points_.size() >= 2,
            "ShiaContour: contour degenerates to a single non-dominated "
            "point (no setup/hold tradeoff present)");
}

ShiaContour ShiaContour::fromTrace(const TracedContour& contour,
                                   double monotoneSlack) {
    return ShiaContour(contour.points, monotoneSlack);
}

SkewPoint ShiaContour::kneePoint() const {
    const auto it = std::min_element(
        points_.begin(), points_.end(),
        [](const SkewPoint& a, const SkewPoint& b) {
            // Strict < keeps the FIRST minimizer on ties; points_ is
            // sorted by setup, so ties resolve to the smaller setup.
            return a.setup + a.hold < b.setup + b.hold;
        });
    return *it;
}

std::optional<double> ShiaContour::holdRequirementAt(double setup) const {
    if (!std::isfinite(setup)) {
        return std::nullopt;  // NaN/Inf budgets are never feasible
    }
    if (setup < points_.front().setup) {
        return std::nullopt;  // below the setup asymptote: infeasible
    }
    if (setup >= points_.back().setup) {
        return minHold_;  // clamped to the hold asymptote
    }
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), setup,
        [](double lhs, const SkewPoint& p) { return lhs < p.setup; });
    const SkewPoint& hi = *it;
    const SkewPoint& lo = *(it - 1);
    const double span = hi.setup - lo.setup;
    if (span <= 0.0) {
        return lo.hold;
    }
    const double frac = (setup - lo.setup) / span;
    return lo.hold + frac * (hi.hold - lo.hold);
}

bool ShiaContour::admits(double setupAvail, double holdAvail) const {
    if (!std::isfinite(holdAvail)) {
        return false;
    }
    const auto requirement = holdRequirementAt(setupAvail);
    return requirement.has_value() && holdAvail >= *requirement;
}

std::optional<double> ShiaContour::holdSlack(double setupAvail,
                                             double holdAvail) const {
    if (!std::isfinite(holdAvail)) {
        return std::nullopt;
    }
    const auto requirement = holdRequirementAt(setupAvail);
    if (!requirement.has_value()) {
        return std::nullopt;
    }
    return holdAvail - *requirement;
}

}  // namespace shtrace
