#include "shtrace/chz/seed.hpp"

#include <cmath>

#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

struct SeedSearchObservation {
    const SeedResult* result;
    ~SeedSearchObservation() {
        if (obs::enabled()) {
            obs::observe(obs::Hist::SeedEvaluationsPerSearch,
                         static_cast<double>(result->evaluations));
        }
    }
};

}  // namespace

SeedResult findSeedPoint(const HFunction& h, double passSign,
                         const SeedOptions& opt, SimStats* stats) {
    require(passSign == 1.0 || passSign == -1.0,
            "findSeedPoint: passSign must be +1 or -1");
    require(opt.setupLo < opt.setupHi, "findSeedPoint: bad initial bracket");

    SHTRACE_SPAN("seed.bisection");
    SeedResult result;
    const SeedSearchObservation observation{&result};
    const double th = opt.holdSkewLarge;

    // Signed pass metric: positive when the register latched in time.
    const auto passMetric = [&](double ts) {
        const HEvaluation eval = h.evaluateValueOnly(ts, th, stats);
        ++result.evaluations;
        require(eval.success, "findSeedPoint: ",
                eval.nonFinite ? "non-finite transient (NaN/Inf guard)"
                               : "transient failed",
                " at tau_s=", ts);
        return passSign * eval.h;
    };

    // Large setup skew should pass; small should fail. Expand outward when
    // the initial bracket does not straddle the transition.
    double lo = opt.setupLo;
    double hi = opt.setupHi;
    double mLo = passMetric(lo);
    double mHi = passMetric(hi);
    for (int i = 0; i < opt.maxExpansions && mHi <= 0.0; ++i) {
        hi *= 2.0;
        mHi = passMetric(hi);
    }
    for (int i = 0; i < opt.maxExpansions && mLo > 0.0; ++i) {
        lo *= 0.5;
        mLo = passMetric(lo);
    }
    if (mHi <= 0.0 || mLo > 0.0) {
        return result;  // no pass/fail transition in reach: found = false
    }

    // Coarse bisection down to the MPNR convergence range (paper Fig. 7(b)).
    for (int i = 0; i < opt.maxBisections && hi - lo > opt.bracketTarget;
         ++i) {
        const double mid = 0.5 * (lo + hi);
        if (passMetric(mid) > 0.0) {
            hi = mid;  // mid passes: the setup-time transition is below it
        } else {
            lo = mid;
        }
    }

    result.found = true;
    result.bracketLo = lo;
    result.bracketHi = hi;
    result.seed = SkewPoint{0.5 * (lo + hi), th};
    return result;
}

}  // namespace shtrace
