#include "shtrace/chz/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

SampleStatistics summarize(const std::vector<double>& values) {
    SampleStatistics s;
    if (values.empty()) {
        return s;
    }
    double sum = 0.0;
    s.min = values.front();
    s.max = values.front();
    for (double v : values) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(values.size());
    double acc = 0.0;
    for (double v : values) {
        acc += (v - s.mean) * (v - s.mean);
    }
    s.stddev = values.size() > 1
                   ? std::sqrt(acc / static_cast<double>(values.size() - 1))
                   : 0.0;
    return s;
}

}  // namespace

ProcessCorner sampleCorner(const ProcessCorner& nominal,
                           const ProcessVariation& var, std::uint64_t seed,
                           int sampleIndex) {
    // One independent stream per sample: reproducible regardless of
    // evaluation order.
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull +
                        static_cast<std::uint64_t>(sampleIndex));
    std::normal_distribution<double> normal(0.0, 1.0);
    ProcessCorner c = nominal;
    c.name = message(nominal.name, "#", sampleIndex);
    c.vtn = std::max(0.05, c.vtn + var.vtSigma * normal(rng));
    c.vtp = std::max(0.05, c.vtp + var.vtSigma * normal(rng));
    c.kpn *= std::max(0.2, 1.0 + var.kpRelSigma * normal(rng));
    c.kpp *= std::max(0.2, 1.0 + var.kpRelSigma * normal(rng));
    c.vdd *= std::max(0.5, 1.0 + var.vddRelSigma * normal(rng));
    return c;
}

MonteCarloResult runMonteCarlo(const ProcessCorner& nominal,
                               const CornerFixtureBuilder& builder,
                               const MonteCarloOptions& opt,
                               SimStats* stats) {
    require(opt.samples >= 1, "runMonteCarlo: need at least one sample");
    MonteCarloResult result;
    result.samplesRequested = opt.samples;

    for (int i = 0; i < opt.samples; ++i) {
        const ProcessCorner corner =
            sampleCorner(nominal, opt.variation, opt.seed, i);
        try {
            const RegisterFixture fixture = builder(corner);
            const CharacterizationProblem problem(fixture, opt.criterion,
                                                  opt.recipe, stats);
            const IndependentResult setup = characterizeByNewton(
                problem.h(), SkewAxis::Setup, problem.passSign(),
                opt.independent, stats);
            const IndependentResult hold = characterizeByNewton(
                problem.h(), SkewAxis::Hold, problem.passSign(),
                opt.independent, stats);
            if (!setup.converged || !hold.converged) {
                continue;
            }
            result.setupTimes.push_back(setup.skew);
            result.holdTimes.push_back(hold.skew);
            result.clockToQs.push_back(problem.characteristicClockToQ());
            ++result.samplesConverged;
        } catch (const Error&) {
            // A pathological sample (e.g. vt beyond the supply) is
            // reported through the converged count, not by aborting the
            // whole study.
        }
    }
    result.setup = summarize(result.setupTimes);
    result.hold = summarize(result.holdTimes);
    result.clockToQ = summarize(result.clockToQs);
    return result;
}

}  // namespace shtrace
