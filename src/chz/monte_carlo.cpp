#include "shtrace/chz/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <random>

#include "cache_glue.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

SampleStatistics summarize(const std::vector<double>& values) {
    SampleStatistics s;
    if (values.empty()) {
        return s;
    }
    double sum = 0.0;
    s.min = values.front();
    s.max = values.front();
    for (double v : values) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(values.size());
    double acc = 0.0;
    for (double v : values) {
        acc += (v - s.mean) * (v - s.mean);
    }
    s.stddev = values.size() > 1
                   ? std::sqrt(acc / static_cast<double>(values.size() - 1))
                   : 0.0;
    return s;
}

}  // namespace

ProcessCorner sampleCorner(const ProcessCorner& nominal,
                           const ProcessVariation& var, std::uint64_t seed,
                           int sampleIndex) {
    // One independent stream per sample: reproducible regardless of
    // evaluation order.
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull +
                        static_cast<std::uint64_t>(sampleIndex));
    std::normal_distribution<double> normal(0.0, 1.0);
    ProcessCorner c = nominal;
    c.name = message(nominal.name, "#", sampleIndex);
    c.vtn = std::max(0.05, c.vtn + var.vtSigma * normal(rng));
    c.vtp = std::max(0.05, c.vtp + var.vtSigma * normal(rng));
    c.kpn *= std::max(0.2, 1.0 + var.kpRelSigma * normal(rng));
    c.kpp *= std::max(0.2, 1.0 + var.kpRelSigma * normal(rng));
    c.vdd *= std::max(0.5, 1.0 + var.vddRelSigma * normal(rng));
    return c;
}

MonteCarloResult runMonteCarlo(const ProcessCorner& nominal,
                               const CornerFixtureBuilder& builder,
                               const MonteCarloOptions& opt,
                               SimStats* stats) {
    require(opt.samples >= 1, "runMonteCarlo: need at least one sample");
    obs::RunObservation observation(opt.metricsPath, opt.spanTracePath);
    MonteCarloResult result;
    result.samplesRequested = opt.samples;

    // One slot per sample: workers fill their own slot, the compaction
    // below walks them in sample order, so the distributions are
    // independent of how jobs were scheduled over threads.
    struct SampleSlot {
        bool converged = false;
        double setupTime = 0.0;
        double holdTime = 0.0;
        double clockToQ = 0.0;
    };
    const std::size_t jobs = static_cast<std::size_t>(opt.samples);
    std::vector<SampleSlot> slots(jobs);
    RunContext context(opt, jobs);
    obs::setGauge(obs::Gauge::WorkerThreads, context.threads());
    obs::setGauge(obs::Gauge::BatchJobs, static_cast<double>(jobs));
    const std::optional<store::ResultStore> cache = chz_detail::openStore(opt);

    parallelRun(
        jobs,
        [&](std::size_t job, std::size_t /*worker*/) {
            SHTRACE_SPAN("chz.mc_sample");
            SimStats& jobStats = context.jobStats(job);
            try {
                const ProcessCorner corner = sampleCorner(
                    nominal, opt.variation, opt.seed, static_cast<int>(job));
                const RegisterFixture fixture = builder(corner);

                // The sampled parameters are baked into the fixture, so
                // the content key is unique per sample and stable across
                // runs (the RNG streams are seed-deterministic).
                std::optional<store::CacheKey> key;
                if (cache) {
                    key = store::independentRowKey(fixture, opt);
                    if (chz_detail::mayRead(opt)) {
                        if (const auto entry = chz_detail::loadKind(
                                *cache, key->full, store::kKindMcRow)) {
                            try {
                                const store::McSampleRow cached =
                                    store::deserializeMcRow(entry->payload);
                                slots[job] = SampleSlot{
                                    cached.converged, cached.setupTime,
                                    cached.holdTime, cached.clockToQ};
                                jobStats.cacheHits = 1;
                                return;
                            } catch (const store::StoreFormatError&) {
                                // Unreadable payload: recompute.
                            }
                        }
                    }
                    jobStats.cacheMisses = 1;
                }

                const CharacterizationProblem problem(fixture, opt.criterion,
                                                      opt.recipe, &jobStats);
                const IndependentResult setup = characterizeByNewton(
                    problem.h(), SkewAxis::Setup, problem.passSign(),
                    opt.independent, &jobStats);
                const IndependentResult hold = characterizeByNewton(
                    problem.h(), SkewAxis::Hold, problem.passSign(),
                    opt.independent, &jobStats);
                if (!setup.converged || !hold.converged) {
                    return;
                }
                slots[job] = SampleSlot{true, setup.skew, hold.skew,
                                        problem.characteristicClockToQ()};
                if (cache && chz_detail::mayWrite(opt)) {
                    store::McSampleRow row;
                    row.converged = true;
                    row.setupTime = setup.skew;
                    row.holdTime = hold.skew;
                    row.clockToQ = problem.characteristicClockToQ();
                    store::StoreEntry entry;
                    entry.kind = store::kKindMcRow;
                    entry.key = key->full;
                    entry.problem = key->problem;
                    entry.label = corner.name;
                    entry.payload = store::serializeMcRow(row);
                    cache->save(entry);
                }
            } catch (const std::exception&) {
                // A pathological sample (e.g. vt beyond the supply) is
                // reported through the converged count, not by aborting
                // the whole study.
            }
        },
        opt.parallel, opt.onJobDone);

    for (const SampleSlot& slot : slots) {
        if (!slot.converged) {
            continue;
        }
        result.setupTimes.push_back(slot.setupTime);
        result.holdTimes.push_back(slot.holdTime);
        result.clockToQs.push_back(slot.clockToQ);
        ++result.samplesConverged;
    }
    result.stats = context.mergedStats();
    if (stats != nullptr) {
        *stats += result.stats;  // deprecated out-param path
    }
    result.setup = summarize(result.setupTimes);
    result.hold = summarize(result.holdTimes);
    result.clockToQ = summarize(result.clockToQs);
    observation.finish(result.stats);
    return result;
}

}  // namespace shtrace
