#include "shtrace/chz/h_function.hpp"

#include <cmath>

#include "shtrace/util/error.hpp"

namespace shtrace {

HFunction::HFunction(const Circuit& circuit, std::shared_ptr<DataPulse> data,
                     Vector selector, double tf, double r,
                     TransientOptions baseOptions)
    : circuit_(circuit),
      data_(std::move(data)),
      selector_(std::move(selector)),
      tf_(tf),
      r_(r),
      baseOptions_(std::move(baseOptions)) {
    require(data_ != nullptr, "HFunction: null data pulse");
    require(selector_.size() == circuit.systemSize(),
            "HFunction: selector size mismatch");
    require(tf_ > baseOptions_.tStart, "HFunction: tf must follow tStart");
    require(!baseOptions_.adaptive,
            "HFunction requires the fixed-grid transient recipe; the "
            "discretized h must not depend on an adaptive grid");
}

TransientOptions HFunction::makeOptions(bool sensitivities,
                                        bool storeStates) const {
    TransientOptions opt = baseOptions_;
    opt.tStop = tf_;
    opt.trackSkewSensitivities = sensitivities;
    opt.storeStates = storeStates;
    return opt;
}

HEvaluation HFunction::evaluate(double setupSkew, double holdSkew,
                                SimStats* stats) const {
    data_->setSkews(setupSkew, holdSkew);
    const TransientResult tr =
        TransientAnalysis(circuit_, makeOptions(true, false)).run(stats);
    HEvaluation out;
    out.success = tr.success;
    if (stats != nullptr) {
        ++stats->hEvaluations;
    }
    if (!tr.success) {
        out.nonFinite = tr.nonFinite;
        return out;
    }
    out.h = selector_.dot(tr.finalState) - r_;
    out.dhds = selector_.dot(tr.finalSensitivitySetup);
    out.dhdh = selector_.dot(tr.finalSensitivityHold);
    // Boundary guard: success promises finite values to every consumer
    // (MPNR divides by the gradient norm; the tracer builds tangents from
    // it). The offending values stay visible for diagnostics.
    if (!std::isfinite(out.h) || !std::isfinite(out.dhds) ||
        !std::isfinite(out.dhdh)) {
        out.success = false;
        out.nonFinite = true;
    }
    return out;
}

HEvaluation HFunction::evaluateValueOnly(double setupSkew, double holdSkew,
                                         SimStats* stats) const {
    data_->setSkews(setupSkew, holdSkew);
    const TransientResult tr =
        TransientAnalysis(circuit_, makeOptions(false, false)).run(stats);
    HEvaluation out;
    out.success = tr.success;
    if (stats != nullptr) {
        ++stats->hEvaluations;
    }
    if (!tr.success) {
        out.nonFinite = tr.nonFinite;
        return out;
    }
    out.h = selector_.dot(tr.finalState) - r_;
    if (!std::isfinite(out.h)) {
        out.success = false;
        out.nonFinite = true;
    }
    return out;
}

TransientResult HFunction::simulate(double setupSkew, double holdSkew,
                                    SimStats* stats) const {
    data_->setSkews(setupSkew, holdSkew);
    return TransientAnalysis(circuit_, makeOptions(false, true)).run(stats);
}

}  // namespace shtrace
