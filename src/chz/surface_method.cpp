#include "shtrace/chz/surface_method.hpp"

#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {
std::vector<double> linspace(double lo, double hi, int n) {
    require(n >= 2 && hi > lo, "runSurfaceMethod: bad axis spec");
    std::vector<double> out(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] =
            lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(n - 1);
    }
    return out;
}
}  // namespace

SurfaceMethodResult runSurfaceMethod(const HFunction& h,
                                     const SurfaceMethodOptions& opt,
                                     SimStats* stats) {
    SurfaceMethodResult result{
        OutputSurface(linspace(opt.setupMin, opt.setupMax, opt.setupPoints),
                      linspace(opt.holdMin, opt.holdMax, opt.holdPoints)),
        {},
        0};
    OutputSurface& surface = result.surface;
    for (std::size_t i = 0; i < surface.setupCount(); ++i) {
        for (std::size_t j = 0; j < surface.holdCount(); ++j) {
            const HEvaluation eval = h.evaluateValueOnly(
                surface.setupAt(i), surface.holdAt(j), stats);
            require(eval.success,
                    "runSurfaceMethod: transient failed at grid point (",
                    surface.setupAt(i), ", ", surface.holdAt(j), ")");
            // Store the raw output c^T x(t_f); the contour level is r,
            // i.e. h = 0.
            surface.setValue(i, j, eval.h + h.r());
            ++result.transientCount;
        }
    }
    result.contours = extractLevelContours(surface, h.r());
    return result;
}

}  // namespace shtrace
