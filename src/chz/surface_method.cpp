#include "shtrace/chz/surface_method.hpp"

#include <memory>
#include <optional>

#include "cache_glue.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {

namespace {

std::vector<double> linspace(double lo, double hi, int n) {
    require(n >= 2 && hi > lo, "runSurfaceMethod: bad axis spec");
    std::vector<double> out(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] =
            lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(n - 1);
    }
    return out;
}

OutputSurface makeGrid(const SurfaceMethodOptions& opt) {
    return OutputSurface(
        linspace(opt.setupMin, opt.setupMax, opt.setupPoints),
        linspace(opt.holdMin, opt.holdMax, opt.holdPoints));
}

/// Fills one grid row i of `surface` with the raw output c^T x(t_f); the
/// contour level is r, i.e. h = 0.
void fillRow(OutputSurface& surface, std::size_t i, const HFunction& h,
             SimStats* stats) {
    for (std::size_t j = 0; j < surface.holdCount(); ++j) {
        const HEvaluation eval = h.evaluateValueOnly(
            surface.setupAt(i), surface.holdAt(j), stats);
        require(eval.success, "runSurfaceMethod: ",
                eval.nonFinite ? "non-finite transient (NaN/Inf guard)"
                               : "transient failed",
                " at grid point (", surface.setupAt(i), ", ",
                surface.holdAt(j), ")");
        surface.setValue(i, j, eval.h + h.r());
    }
}

}  // namespace

SurfaceMethodResult runSurfaceMethod(const HFunction& h,
                                     const SurfaceMethodOptions& opt,
                                     SimStats* stats) {
    SurfaceMethodResult result{makeGrid(opt), {}, 0, SimStats{}};
    OutputSurface& surface = result.surface;
    for (std::size_t i = 0; i < surface.setupCount(); ++i) {
        fillRow(surface, i, h, &result.stats);
    }
    result.transientCount =
        static_cast<int>(surface.setupCount() * surface.holdCount());
    if (stats != nullptr) {
        *stats += result.stats;
    }
    result.contours = extractLevelContours(surface, h.r());
    return result;
}

SurfaceMethodResult runSurfaceMethod(const FixtureSource& source,
                                     const RunConfig& config,
                                     const SurfaceMethodOptions& opt) {
    require(source != nullptr, "runSurfaceMethod: null fixture source");
    obs::RunObservation observation(config.metricsPath,
                                    config.spanTracePath);

    // The store can answer the whole grid: one entry per (fixture,
    // criterion, recipe, grid spec). Building one fixture for the key is
    // cheap -- no transient runs before a hit returns.
    const std::optional<store::ResultStore> cache =
        chz_detail::openStore(config);
    std::optional<store::CacheKey> key;
    if (cache) {
        const RegisterFixture keyFixture = source();
        key = store::surfaceKey(keyFixture, config, opt);
        if (chz_detail::mayRead(config)) {
            if (const auto entry = chz_detail::loadKind(
                    *cache, key->full, store::kKindSurface)) {
                try {
                    SurfaceMethodResult cached =
                        store::deserializeSurfaceResult(entry->payload);
                    cached.stats = SimStats{};
                    cached.stats.cacheHits = 1;
                    observation.finish(cached.stats);
                    return cached;
                } catch (const store::StoreFormatError&) {
                    // Unreadable payload: recompute and overwrite.
                }
            }
        }
    }

    SurfaceMethodResult result{makeGrid(opt), {}, 0, SimStats{}};
    OutputSurface& surface = result.surface;

    // Worker-local evaluation context: evaluating h retunes the fixture's
    // shared data pulse, so every worker needs its own fixture + problem.
    // The criterion computation is deterministic, so all workers derive
    // the same (t_f, r) and the grid is byte-identical to the serial path.
    struct Worker {
        RegisterFixture fixture;
        CharacterizationProblem problem;
        SimStats stats;

        Worker(const FixtureSource& source, const RunConfig& config)
            : fixture(source()),
              // Setup cost excluded from the batch stats: it scales with
              // the worker count, not with the grid.
              problem(fixture, config.criterion, config.recipe, nullptr) {}
    };
    const std::size_t rows = surface.setupCount();
    const int threads = resolveThreadCount(config.parallel.threads, rows);
    obs::setGauge(obs::Gauge::WorkerThreads, threads);
    obs::setGauge(obs::Gauge::BatchJobs, static_cast<double>(rows));
    std::vector<std::unique_ptr<Worker>> workers(
        static_cast<std::size_t>(threads));

    parallelRun(
        rows,
        [&](std::size_t i, std::size_t workerIndex) {
            SHTRACE_SPAN("chz.surface_row");
            // Lazily build the context on the worker's first job; each
            // worker only ever touches its own slot.
            std::unique_ptr<Worker>& slot = workers[workerIndex];
            if (slot == nullptr) {
                slot = std::make_unique<Worker>(source, config);
            }
            fillRow(surface, i, slot->problem.h(), &slot->stats);
        },
        config.parallel, config.onJobDone);

    double r = 0.0;
    bool haveR = false;
    for (const std::unique_ptr<Worker>& worker : workers) {
        if (worker == nullptr) {
            continue;
        }
        result.stats.merge(worker->stats);
        if (!haveR) {
            r = worker->problem.r();
            haveR = true;
        }
    }
    require(haveR, "runSurfaceMethod: no grid rows were evaluated");
    result.transientCount =
        static_cast<int>(surface.setupCount() * surface.holdCount());
    result.contours = extractLevelContours(surface, r);
    if (cache) {
        result.stats.cacheMisses = 1;
        if (chz_detail::mayWrite(config)) {
            store::StoreEntry entry;
            entry.kind = store::kKindSurface;
            entry.key = key->full;
            entry.problem = key->problem;
            entry.payload = store::serializeSurfaceResult(result);
            cache->save(entry);
        }
    }
    observation.finish(result.stats);
    return result;
}

}  // namespace shtrace
