// Tests for PWL, pulse and clock waveforms and edge profiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "shtrace/util/error.hpp"
#include "shtrace/waveform/clock.hpp"
#include "shtrace/waveform/pulse.hpp"
#include "shtrace/waveform/pwl.hpp"

namespace shtrace {
namespace {

TEST(EdgeProfile, ClampsAndHitsHalfAtMidpoint) {
    for (EdgeShape shape : {EdgeShape::Linear, EdgeShape::Smoothstep}) {
        EXPECT_DOUBLE_EQ(edgeProfile(shape, -0.5), 0.0);
        EXPECT_DOUBLE_EQ(edgeProfile(shape, 0.0), 0.0);
        EXPECT_DOUBLE_EQ(edgeProfile(shape, 0.5), 0.5);
        EXPECT_DOUBLE_EQ(edgeProfile(shape, 1.0), 1.0);
        EXPECT_DOUBLE_EQ(edgeProfile(shape, 2.0), 1.0);
    }
}

TEST(EdgeProfile, SlopeMatchesFiniteDifference) {
    const double du = 1e-7;
    for (EdgeShape shape : {EdgeShape::Linear, EdgeShape::Smoothstep}) {
        for (double u : {0.1, 0.3, 0.5, 0.7, 0.9}) {
            const double fd =
                (edgeProfile(shape, u + du) - edgeProfile(shape, u - du)) /
                (2.0 * du);
            EXPECT_NEAR(edgeProfileSlope(shape, u), fd, 1e-5)
                << "shape=" << static_cast<int>(shape) << " u=" << u;
        }
    }
}

TEST(EdgeProfile, SmoothstepIsC1AtEnds) {
    EXPECT_DOUBLE_EQ(edgeProfileSlope(EdgeShape::Smoothstep, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(edgeProfileSlope(EdgeShape::Smoothstep, 1.0), 0.0);
    EXPECT_NEAR(edgeProfileSlope(EdgeShape::Smoothstep, 1e-4), 0.0, 1e-3);
}

TEST(Pwl, InterpolatesAndClamps) {
    const PwlWaveform w({{0.0, 0.0}, {1.0, 2.0}, {3.0, -2.0}});
    EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);   // clamp before
    EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);    // on first segment
    EXPECT_DOUBLE_EQ(w.value(1.0), 2.0);    // at a point
    EXPECT_DOUBLE_EQ(w.value(2.0), 0.0);    // on second segment
    EXPECT_DOUBLE_EQ(w.value(10.0), -2.0);  // clamp after
}

TEST(Pwl, BreakpointsInsideWindowOnly) {
    const PwlWaveform w({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
    std::vector<double> bp;
    w.breakpoints(0.5, 1.5, bp);
    ASSERT_EQ(bp.size(), 1u);
    EXPECT_DOUBLE_EQ(bp[0], 1.0);
}

TEST(Pwl, RejectsBadInput) {
    EXPECT_THROW(PwlWaveform({}), InvalidArgumentError);
    EXPECT_THROW(PwlWaveform({{1.0, 0.0}, {1.0, 1.0}}), InvalidArgumentError);
}

TEST(Pulse, ShapeIsCorrect) {
    PulseWaveform::Spec spec;
    spec.v0 = 0.5;
    spec.v1 = 2.5;
    spec.delay = 1.0;
    spec.riseTime = 0.2;
    spec.width = 1.0;
    spec.fallTime = 0.4;
    const PulseWaveform w(spec);
    EXPECT_DOUBLE_EQ(w.value(0.0), 0.5);
    EXPECT_NEAR(w.value(1.1), 1.5, 1e-12);  // 50% of the rise
    EXPECT_DOUBLE_EQ(w.value(1.5), 2.5);    // plateau
    EXPECT_NEAR(w.value(2.4), 1.5, 1e-12);  // 50% of the fall
    EXPECT_DOUBLE_EQ(w.value(5.0), 0.5);

    std::vector<double> bp;
    w.breakpoints(0.0, 10.0, bp);
    EXPECT_EQ(bp.size(), 4u);
}

TEST(Clock, PaperTimingProducesEdgesAt1And11ns) {
    const ClockWaveform clock{ClockWaveform::Spec{}};  // paper defaults
    EXPECT_NEAR(clock.risingEdgeMidpoint(0), 1.05e-9, 1e-15);
    EXPECT_NEAR(clock.risingEdgeMidpoint(1), 11.05e-9, 1e-15);
    EXPECT_DOUBLE_EQ(clock.value(0.5e-9), 0.0);   // before first edge
    EXPECT_DOUBLE_EQ(clock.value(3e-9), 2.5);     // high phase
    EXPECT_DOUBLE_EQ(clock.value(8e-9), 0.0);     // low phase
    EXPECT_DOUBLE_EQ(clock.value(13e-9), 2.5);    // next cycle high
    // 50% at the edge midpoint.
    EXPECT_NEAR(clock.value(11.05e-9), 1.25, 1e-12);
}

TEST(Clock, DutyCycleControlsHighFraction) {
    ClockWaveform::Spec spec;
    spec.dutyCycle = 0.3;
    const ClockWaveform clock(spec);
    // Falling 50% point is 0.3 * period after the rising 50% point.
    const double t50fall = clock.risingEdgeMidpoint(0) + 0.3 * spec.period;
    EXPECT_NEAR(clock.value(t50fall), 1.25, 1e-9);
}

TEST(Clock, InvertedAndDelayedForClkBar) {
    // The C2MOS clk-bar: inverted, delayed 0.3 ns after clk.
    ClockWaveform::Spec spec;
    spec.delay = 1e-9 + 0.3e-9;
    spec.inverted = true;
    const ClockWaveform bar(spec);
    EXPECT_DOUBLE_EQ(bar.value(0.0), 2.5);     // high while clk low
    EXPECT_DOUBLE_EQ(bar.value(3e-9), 0.0);    // low while clk high
    // At the (delayed) rising edge of the underlying clock, bar falls.
    EXPECT_NEAR(bar.value(1.35e-9), 1.25, 1e-12);
}

TEST(Clock, BreakpointsCoverEveryEdgeCorner) {
    const ClockWaveform clock{ClockWaveform::Spec{}};
    std::vector<double> bp;
    clock.breakpoints(0.0, 21e-9, bp);
    // Two full cycles in the window: 4 corners each (cycle starting at 1 ns
    // and 11 ns), plus the rise corners of the cycle at 21 ns are outside.
    EXPECT_GE(bp.size(), 8u);
    EXPECT_TRUE(std::is_sorted(bp.begin(), bp.end()));
    // The first rising-edge corners are present.
    EXPECT_NEAR(bp[0], 1e-9, 1e-15);
    EXPECT_NEAR(bp[1], 1.1e-9, 1e-15);
}

TEST(Clock, RejectsBadSpecs) {
    ClockWaveform::Spec bad;
    bad.period = 0.0;
    EXPECT_THROW(ClockWaveform{bad}, InvalidArgumentError);
    bad = ClockWaveform::Spec{};
    bad.dutyCycle = 1.5;
    EXPECT_THROW(ClockWaveform{bad}, InvalidArgumentError);
    bad = ClockWaveform::Spec{};
    bad.dutyCycle = 0.004;  // high time shorter than the edges
    EXPECT_THROW(ClockWaveform{bad}, InvalidArgumentError);
}

TEST(Dc, ConstantEverywhere) {
    const DcWaveform w(1.8);
    EXPECT_DOUBLE_EQ(w.value(-1.0), 1.8);
    EXPECT_DOUBLE_EQ(w.value(1e9), 1.8);
    std::vector<double> bp;
    w.breakpoints(0.0, 1.0, bp);
    EXPECT_TRUE(bp.empty());
}

}  // namespace
}  // namespace shtrace
