// Integration test: the TSPC register expressed as a NETLIST must
// characterize identically to the programmatic builder -- the parser, the
// model cards and the builder are three descriptions of one circuit.
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/independent.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/circuit/netlist_parser.hpp"
#include "shtrace/measure/clock_to_q.hpp"

namespace shtrace {
namespace {

// The builder's default TSPC (typical corner, 0.6u/1.2u devices, 20 fF
// load, 2 fF internal nodes) transcribed by hand. Cap values mirror
// makeNmos/makePmos: cgs = cgd = 0.5*cox*W*L + 4e-10*W, cgb = 0.1*cox*W*L,
// cdb = csb = 8e-10*W with cox = 8e-3.
const char* kTspcNetlist = R"(
.model n1 NMOS VT0=0.45 KP=60u LAMBDA=0.06 W=0.6u L=0.25u CGS=0.84f CGD=0.84f CGB=0.12f CDB=0.48f CSB=0.48f
.model p1 PMOS VT0=0.50 KP=25u LAMBDA=0.10 W=1.2u L=0.25u CGS=1.68f CGD=1.68f CGB=0.24f CDB=0.96f CSB=0.96f
Vdd   vdd 0 2.5
Vclk  clk 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
Vdata d   0 DATAPULSE(2.5 0 11.05n 0.1n)
MP1a s1 d   vdd vdd p1
MP1b x1 clk s1  vdd p1
MN1  x1 d   0   0   n1
MP2  y  clk vdd vdd p1
MN3  y  x1  s2  0   n1
MN4  s2 clk 0   0   n1
MP3  qb y   vdd vdd p1
MN5  qb clk s3  0   n1
MN6  s3 y   0   0   n1
MP4  q  qb  vdd vdd p1
MN7  q  qb  0   0   n1
Cload q 0 20f
Cx1 x1 0 2f
Cy  y  0 2f
Cqb qb 0 2f
.end
)";

TEST(NetlistRoundtrip, ShippedNetlistFilesParseAndSimulate) {
    // The files under netlists/ are user-facing: they must stay in sync
    // with the parser and describe working registers.
    for (const char* file : {"/tspc.sp", "/c2mos.sp"}) {
        const ParsedNetlist parsed =
            parseNetlistFile(std::string(SHTRACE_NETLIST_DIR) + file);
        EXPECT_GE(parsed.circuit.deviceCount(), 12u) << file;
        EXPECT_NO_THROW((void)parsed.theDataPulse()) << file;
        EXPECT_NO_THROW((void)parsed.theClock()) << file;
        const DcResult dc = solveDcOperatingPoint(parsed.circuit);
        EXPECT_TRUE(dc.converged) << file;
    }
    EXPECT_THROW(parseNetlistFile("/no/such/file.sp"), Error);
}

TEST(NetlistRoundtrip, DcOperatingPointsAgree) {
    const RegisterFixture built = buildTspcRegister();
    const ParsedNetlist parsed = parseNetlistString(kTspcNetlist);
    built.data->setSkews(2e-9, 2e-9);
    parsed.theDataPulse()->setSkews(2e-9, 2e-9);

    const DcResult dcBuilt = solveDcOperatingPoint(built.circuit);
    const DcResult dcParsed = solveDcOperatingPoint(parsed.circuit);
    ASSERT_TRUE(dcBuilt.converged);
    ASSERT_TRUE(dcParsed.converged);
    // Node orderings coincide by construction (same declaration order).
    for (const char* node : {"x1", "y", "qb", "q"}) {
        const double a =
            dcBuilt.x[static_cast<std::size_t>(
                built.circuit.findNode(node).index)];
        const double b =
            dcParsed.x[static_cast<std::size_t>(
                parsed.circuit.findNode(node).index)];
        EXPECT_NEAR(a, b, 1e-6) << node;
    }
}

TEST(NetlistRoundtrip, IndependentSetupHoldAgree) {
    // Characterize both descriptions and compare the numbers.
    const RegisterFixture built = buildTspcRegister();
    const CharacterizationProblem probBuilt(built);

    ParsedNetlist parsed = parseNetlistString(kTspcNetlist);
    RegisterFixture viaNetlist;
    viaNetlist.name = "TSPC-netlist";
    viaNetlist.data = parsed.theDataPulse();
    viaNetlist.clock = parsed.theClock();
    viaNetlist.circuit = std::move(parsed.circuit);
    viaNetlist.q = viaNetlist.circuit.findNode("q");
    viaNetlist.d = viaNetlist.circuit.findNode("d");
    viaNetlist.clk = viaNetlist.circuit.findNode("clk");
    viaNetlist.vdd = 2.5;
    viaNetlist.activeEdgeIndex = 1;
    viaNetlist.qInitial = 2.5;
    viaNetlist.qFinal = 0.0;
    const CharacterizationProblem probParsed(viaNetlist);

    EXPECT_NEAR(probParsed.characteristicClockToQ(),
                probBuilt.characteristicClockToQ(), 2e-12);

    const IndependentResult setupBuilt = characterizeByNewton(
        probBuilt.h(), SkewAxis::Setup, probBuilt.passSign());
    const IndependentResult setupParsed = characterizeByNewton(
        probParsed.h(), SkewAxis::Setup, probParsed.passSign());
    ASSERT_TRUE(setupBuilt.converged);
    ASSERT_TRUE(setupParsed.converged);
    EXPECT_NEAR(setupParsed.skew, setupBuilt.skew, 1e-12);
}

}  // namespace
}  // namespace shtrace
