// Tests for the characterization-as-a-service layer (serve/): the JSON
// reader/writer, the strict request schema, HTTP framing, the coalescing
// service core, admission control, priority ordering, and a live
// end-to-end daemon on an ephemeral port. In the tsan sweep: the service
// is the repo's most concurrent component (connection threads x worker
// pool x coalesced waiters).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "shtrace/serve/http.hpp"
#include "shtrace/serve/json.hpp"
#include "shtrace/serve/request.hpp"
#include "shtrace/serve/server.hpp"
#include "shtrace/serve/service.hpp"

namespace shtrace::serve {
namespace {

// A request body with a tiny trace budget so service tests run fast.
// `variant` perturbs the data transition time into a distinct cache key.
std::string smallBody(int variant = 0, int priority = 0) {
    std::string body =
        R"({"cell":"tspc","tracer":{"bounds":{"setupMin":8e-11,)"
        R"("setupMax":7e-10,"holdMin":4e-11,"holdMax":5e-10},)"
        R"("maxPoints":3})";
    if (variant != 0) {
        body += R"(,"cellOptions":{"dataTransitionTime":1.)" +
                std::to_string(1000 + variant) + "e-10}";
    }
    if (priority != 0) {
        body += ",\"priority\":" + std::to_string(priority);
    }
    return body + "}";
}

// ------------------------------------------------------------- JSON --

TEST(ServeJson, RoundTripsScalarsAndNesting) {
    const JsonValue doc = parseJson(
        R"({"a":1.5,"b":"x\n\"y\"","c":[true,false,null],"d":{"e":-2e3}})");
    EXPECT_DOUBLE_EQ(doc.find("a")->asNumber(), 1.5);
    EXPECT_EQ(doc.find("b")->asString(), "x\n\"y\"");
    EXPECT_EQ(doc.find("c")->asArray().size(), 3u);
    EXPECT_TRUE(doc.find("c")->asArray()[0].asBool());
    EXPECT_TRUE(doc.find("c")->asArray()[2].isNull());
    EXPECT_DOUBLE_EQ(doc.find("d")->find("e")->asNumber(), -2000.0);
    // Serialize -> reparse -> identical text (deterministic writer).
    const std::string text = writeJson(doc);
    EXPECT_EQ(writeJson(parseJson(text)), text);
}

TEST(ServeJson, NumbersSurviveRoundTrip) {
    for (const double v : {0.0, -0.0, 1e-300, 3.141592653589793,
                           4.715356675226939e-10, 1e15, -7.25}) {
        const std::string text = writeJson(JsonValue(v));
        EXPECT_DOUBLE_EQ(parseJson(text).asNumber(), v) << text;
    }
    // Integer fast path: no exponent noise on counters.
    EXPECT_EQ(writeJson(JsonValue(std::uint64_t{42})), "42");
}

TEST(ServeJson, RejectsMalformedDocuments) {
    EXPECT_THROW(parseJson(""), JsonParseError);
    EXPECT_THROW(parseJson("{"), JsonParseError);
    EXPECT_THROW(parseJson("{}x"), JsonParseError);
    EXPECT_THROW(parseJson("{\"a\":1,}"), JsonParseError);
    EXPECT_THROW(parseJson("[1,]"), JsonParseError);
    EXPECT_THROW(parseJson("nul"), JsonParseError);
    EXPECT_THROW(parseJson("\"\\q\""), JsonParseError);
    EXPECT_THROW(parseJson("01"), JsonParseError);
    EXPECT_THROW(parseJson("{\"a\":1,\"a\":2}"), JsonParseError);  // dup key
    EXPECT_THROW(parseJson("1e999"), JsonParseError);  // non-finite
}

// ---------------------------------------------------------- request --

TEST(ServeRequestParse, DefaultsAndKeyStability) {
    const ServeRequest a = parseServeRequest(smallBody(), "");
    EXPECT_EQ(a.cell, "tspc");
    EXPECT_EQ(a.label, "tspc");
    EXPECT_EQ(a.priority, 0);
    EXPECT_EQ(a.config.tracer.maxPoints, 3);
    // Same physics, different spelling (explicit default) -> same key.
    const ServeRequest b = parseServeRequest(
        R"({"cell":"tspc","label":"other","priority":5,)"
        R"("cellOptions":{"dataTransitionTime":1e-10},)"
        R"("tracer":{"bounds":{"setupMin":8e-11,"setupMax":7e-10,)"
        R"("holdMin":4e-11,"holdMax":5e-10},"maxPoints":3}})",
        "");
    EXPECT_EQ(a.key.full, b.key.full);
    // Different physics -> different key.
    const ServeRequest c = parseServeRequest(smallBody(1), "");
    EXPECT_NE(a.key.full, c.key.full);
}

TEST(ServeRequestParse, RejectsSchemaViolations) {
    // Unknown fields at every level.
    EXPECT_THROW(parseServeRequest(R"({"cell":"tspc","bogus":1})", ""),
                 BadRequestError);
    EXPECT_THROW(parseServeRequest(
                     R"({"cell":"tspc","tracer":{"maxPoint":4}})", ""),
                 BadRequestError);
    // Missing / unknown cell.
    EXPECT_THROW(parseServeRequest(R"({})", ""), BadRequestError);
    EXPECT_THROW(parseServeRequest(R"({"cell":"dff9000"})", ""),
                 BadRequestError);
    // Type errors and range violations.
    EXPECT_THROW(parseServeRequest(R"({"cell":"tspc","priority":"hi"})",
                                   ""),
                 BadRequestError);
    EXPECT_THROW(
        parseServeRequest(
            R"({"cell":"tspc","criterion":{"transitionFraction":1.5}})",
            ""),
        BadRequestError);
    EXPECT_THROW(
        parseServeRequest(R"({"cell":"tspc","recipe":{"method":"rk4"}})",
                          ""),
        BadRequestError);
    // TSPC is single-phase: clkBarDelay must be rejected, not ignored.
    EXPECT_THROW(
        parseServeRequest(
            R"({"cell":"tspc","cellOptions":{"clkBarDelay":1e-11}})", ""),
        BadRequestError);
    // Syntax errors surface as JsonParseError (mapped to 400 upstream).
    EXPECT_THROW(parseServeRequest("{", ""), JsonParseError);
}

TEST(ServeRequestParse, PvtSweepBlockIsStrictAndKeyed) {
    const std::string sweepBody =
        R"({"cell":"tspc","pvtSweep":{"process":[-1,0,1],)"
        R"("vdd":[2.25,2.75],"temperatureC":[-40,27,125],)"
        R"("tolerance":2e-12,"probeResidual":false}})";
    const ServeRequest sweep = parseServeRequest(sweepBody, "");
    EXPECT_TRUE(sweep.sweep);
    EXPECT_EQ(sweep.sweepAxes.cornerCount(), 18u);
    EXPECT_DOUBLE_EQ(sweep.config.corners.tolerance, 2e-12);
    EXPECT_FALSE(sweep.config.corners.probeResidual);
    ASSERT_TRUE(static_cast<bool>(sweep.sweepBuilder));
    // The builder synthesizes per-corner fixtures on demand.
    const RegisterFixture fixture =
        sweep.sweepBuilder(cornerAtPvt(sweep.sweepAxes.at(0)));
    EXPECT_GT(fixture.circuit.nodeCount(), 0u);

    // A sweep never coalesces with the single-corner spelling of the
    // same cell, nor with a different grid or strategy.
    const ServeRequest single =
        parseServeRequest(R"({"cell":"tspc"})", "");
    EXPECT_FALSE(single.sweep);
    EXPECT_NE(sweep.key.full, single.key.full);
    const ServeRequest otherGrid = parseServeRequest(
        R"({"cell":"tspc","pvtSweep":{"process":[-1,0,1],)"
        R"("vdd":[2.25,2.75],"temperatureC":[-40,27],)"
        R"("tolerance":2e-12,"probeResidual":false}})",
        "");
    EXPECT_NE(sweep.key.full, otherGrid.key.full);
    const ServeRequest otherTolerance = parseServeRequest(
        R"({"cell":"tspc","pvtSweep":{"process":[-1,0,1],)"
        R"("vdd":[2.25,2.75],"temperatureC":[-40,27,125],)"
        R"("tolerance":1e-12,"probeResidual":false}})",
        "");
    EXPECT_NE(sweep.key.full, otherTolerance.key.full);

    // Strictness: unknown knobs, malformed axes, corner conflicts.
    EXPECT_THROW(parseServeRequest(
                     R"({"cell":"tspc","pvtSweep":{"bogus":1}})", ""),
                 BadRequestError);
    EXPECT_THROW(
        parseServeRequest(
            R"({"cell":"tspc","pvtSweep":{"process":[1,0]}})", ""),
        BadRequestError);
    EXPECT_THROW(
        parseServeRequest(
            R"({"cell":"tspc","pvtSweep":{"process":"all"}})", ""),
        BadRequestError);
    EXPECT_THROW(parseServeRequest(
                     R"({"cell":"tspc","pvtSweep":{},"corner":{}})", ""),
                 BadRequestError);
}

TEST(ServeRequestParse, PvtSweepResponseCarriesPerCornerDisposition) {
    const ServeRequest request = parseServeRequest(
        R"({"cell":"tspc","pvtSweep":{"process":[-1,0,1]}})", "");
    CornerFamilyResult result;
    result.axes = request.sweepAxes;
    result.rows.resize(3);
    result.rows[0].corner = "P-1.00/V2.500/T+027";
    result.rows[0].success = true;
    result.rows[0].anchor = true;
    result.rows[1].corner = "P+0.00/V2.500/T+027";
    result.rows[1].success = true;
    result.rows[1].provenance = CornerProvenance::Surrogate;
    result.rows[1].acquisitionScore = 1.25e-12;
    result.rows[2].corner = "P+1.00/V2.500/T+027";
    result.rows[2].success = false;
    result.rows[2].failureReason = "injected";
    result.anchorsTraced = 2;
    result.surrogateAccepted = 1;

    const std::string body =
        renderPvtSweepResponse(request, result, ServeDisposition{});
    const JsonValue doc = parseJson(body);
    EXPECT_FALSE(doc.find("ok")->asBool());  // one corner failed
    const JsonArray& corners = doc.find("corners")->asArray();
    ASSERT_EQ(corners.size(), 3u);
    EXPECT_EQ(corners[0].find("provenance")->asString(), "traced");
    EXPECT_TRUE(corners[0].find("anchor")->asBool());
    EXPECT_EQ(corners[1].find("provenance")->asString(), "surrogate");
    EXPECT_DOUBLE_EQ(corners[1].find("acquisitionScore")->asNumber(),
                     1.25e-12);
    EXPECT_EQ(corners[2].find("error")->asString(), "injected");
    EXPECT_DOUBLE_EQ(doc.find("sweep")->find("tracedFraction")->asNumber(),
                     2.0 / 3.0);
}

// ------------------------------------------------------------- http --

TEST(ServeHttp, EchoesOverRealSockets) {
    HttpServer server(0);
    ASSERT_GT(server.port(), 0);
    std::thread loop([&server] {
        server.serve([](const HttpRequest& request) {
            HttpResponse response;
            response.body = request.method + " " + request.target + " " +
                            request.body;
            response.contentType = "text/plain";
            return response;
        });
    });
    {
        HttpClient client(server.port());
        // Keep-alive: three requests over one connection.
        for (int i = 0; i < 3; ++i) {
            const auto response =
                client.request("POST", "/echo", "hello" + std::to_string(i));
            EXPECT_EQ(response.status, 200);
            EXPECT_EQ(response.body,
                      "POST /echo hello" + std::to_string(i));
        }
        const auto get = client.request("GET", "/path?q=1");
        EXPECT_EQ(get.body, "GET /path?q=1 ");
    }
    server.stop();
    loop.join();
}

TEST(ServeHttp, HandlerExceptionBecomes500NotCrash) {
    HttpServer server(0);
    std::thread loop([&server] {
        server.serve([](const HttpRequest&) -> HttpResponse {
            throw Error("boom");
        });
    });
    HttpClient client(server.port());
    const auto response = client.request("GET", "/");
    EXPECT_EQ(response.status, 500);
    EXPECT_NE(response.body.find("boom"), std::string::npos);
    server.stop();
    loop.join();
}

// ---------------------------------------------------------- service --

TEST(ServeService, ComputesAndRendersAResult) {
    ServiceOptions options;
    options.threads = 1;
    CharacterizationService service(options);
    const auto outcome = service.characterize(smallBody());
    EXPECT_EQ(outcome.status, 200);
    const JsonValue doc = parseJson(outcome.body);
    EXPECT_TRUE(doc.find("ok")->asBool());
    EXPECT_GT(doc.find("characteristicClockToQ")->asNumber(), 0.0);
    EXPECT_GE(doc.find("contour")->asArray().size(), 1u);
    EXPECT_FALSE(doc.find("served")->find("coalesced")->asBool());
    const auto counters = service.counters();
    EXPECT_EQ(counters.requests, 1u);
    EXPECT_EQ(counters.ok, 1u);
    EXPECT_EQ(counters.computed, 1u);
}

TEST(ServeService, BadRequestIs400WithoutComputing) {
    CharacterizationService service(ServiceOptions{});
    const auto outcome = service.characterize(R"({"cell":"nope"})");
    EXPECT_EQ(outcome.status, 400);
    EXPECT_NE(outcome.body.find("error"), std::string::npos);
    EXPECT_EQ(service.counters().badRequests, 1u);
    EXPECT_EQ(service.counters().computed, 0u);
}

TEST(ServeService, ConcurrentIdenticalRequestsCoalesceOntoOneComputation) {
    ServiceOptions options;
    options.threads = 2;
    CharacterizationService service(options);
    constexpr int kClients = 8;
    std::vector<std::thread> clients;
    std::atomic<int> ok{0};
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&service, &ok] {
            const auto outcome = service.characterize(smallBody(7));
            if (outcome.status == 200 &&
                parseJson(outcome.body).find("ok")->asBool()) {
                ok.fetch_add(1);
            }
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    const auto counters = service.counters();
    EXPECT_EQ(ok.load(), kClients);
    EXPECT_EQ(counters.requests, static_cast<std::uint64_t>(kClients));
    // The acceptance criterion: N identical concurrent requests, exactly
    // one traced computation; everyone else attached to the leader.
    EXPECT_EQ(counters.computed, 1u);
    EXPECT_EQ(counters.coalesced,
              static_cast<std::uint64_t>(kClients - 1));
}

TEST(ServeService, SecondRequestAfterCompletionHitsTheStore) {
    const std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) / "serve_store_hit";
    std::filesystem::remove_all(dir);

    {
        ServiceOptions options;
        options.threads = 1;
        options.cacheDir = dir.string();
        CharacterizationService service(options);
        const auto first = service.characterize(smallBody(3));
        const auto second = service.characterize(smallBody(3));
        EXPECT_EQ(first.status, 200);
        EXPECT_EQ(second.status, 200);
        const JsonValue doc = parseJson(second.body);
        EXPECT_TRUE(doc.find("served")->find("cacheHit")->asBool());
        // Sequential (not concurrent) -> no coalescing; the store is
        // what made the second one cheap.
        const auto counters = service.counters();
        EXPECT_EQ(counters.coalesced, 0u);
        EXPECT_EQ(counters.computed, 2u);
        EXPECT_EQ(counters.cacheHits, 1u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ServeService, FullQueueShedsWithRetryAfter) {
    ServiceOptions options;
    options.threads = 1;
    options.queueDepth = 1;
    options.retryAfterSeconds = 7;
    CharacterizationService service(options);

    // A slow job (large trace budget) occupies the single worker; its
    // runtime dwarfs every synchronization window below.
    const std::string slowBody =
        R"({"cell":"tspc","cellOptions":{"dataTransitionTime":1.2e-10},)"
        R"("tracer":{"bounds":{"setupMin":8e-11,"setupMax":7e-10,)"
        R"("holdMin":4e-11,"holdMax":5e-10},"maxPoints":16}})";
    std::thread occupant([&service, &slowBody] {
        (void)service.characterize(slowBody);
    });
    // Wait until the worker has actually PICKED UP the occupant (admitted
    // and then dequeued) -- polling queuedJobs() >= 1 right away could be
    // satisfied by the occupant itself still sitting in the queue, and a
    // slow scheduler (tsan) could then drain it before the probe below.
    while (service.counters().requests < 1 || service.queuedJobs() != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // A second distinct job fills the depth-1 queue behind it.
    std::thread filler([&service] {
        (void)service.characterize(smallBody(21));
    });
    while (service.queuedJobs() < 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Worker busy, queue full: a third distinct request must be shed.
    const auto shed = service.characterize(smallBody(22));
    occupant.join();
    filler.join();
    ASSERT_EQ(shed.status, 503);
    EXPECT_EQ(shed.retryAfterSeconds, 7);
    EXPECT_NE(shed.body.find("queue full"), std::string::npos);
    EXPECT_GE(service.counters().rejected, 1u);
}

TEST(ServeService, DrainRejectsNewWorkAndFinishesAdmitted) {
    ServiceOptions options;
    options.threads = 1;
    CharacterizationService service(options);
    std::thread inflight([&service] {
        const auto outcome = service.characterize(smallBody(31));
        EXPECT_EQ(outcome.status, 200);
    });
    // Give the in-flight job a moment to admit, then drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.beginDrain();
    const auto rejected = service.characterize(smallBody(32));
    EXPECT_EQ(rejected.status, 503);
    EXPECT_NE(rejected.body.find("draining"), std::string::npos);
    service.awaitDrain();
    inflight.join();
    EXPECT_EQ(service.counters().ok, 1u);
}

TEST(ServeService, HigherPriorityRunsFirst) {
    ServiceOptions options;
    options.threads = 1;
    CharacterizationService service(options);

    // Block the single worker with a job, then queue a low-priority and a
    // high-priority request; the high one must complete first.
    std::atomic<int> finishOrder{0};
    std::atomic<int> lowFinished{0}, highFinished{0};
    std::thread blocker([&service] {
        (void)service.characterize(smallBody(41));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::thread low([&] {
        (void)service.characterize(smallBody(42, -5));
        lowFinished.store(finishOrder.fetch_add(1) + 1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::thread high([&] {
        (void)service.characterize(smallBody(43, 5));
        highFinished.store(finishOrder.fetch_add(1) + 1);
    });
    blocker.join();
    low.join();
    high.join();
    EXPECT_LT(highFinished.load(), lowFinished.load());
}

// ------------------------------------------------------- end to end --

TEST(ServeDaemonTest, EndToEndOverEphemeralPort) {
    DaemonOptions options;
    options.port = 0;
    options.service.threads = 2;
    ServedDaemon daemon(options);
    ASSERT_GT(daemon.port(), 0);
    std::thread loop([&daemon] { daemon.run(); });

    {
        HttpClient client(static_cast<std::uint16_t>(daemon.port()));
        const auto health = client.request("GET", "/healthz");
        EXPECT_EQ(health.status, 200);
        const auto healthType = health.headers.find("content-type");
        ASSERT_NE(healthType, health.headers.end());
        EXPECT_EQ(healthType->second, "application/json");
        const JsonValue healthDoc = parseJson(health.body);
        EXPECT_EQ(healthDoc.find("status")->asString(), "ok");
        EXPECT_EQ(healthDoc.find("version")->asString(), "1.0.0");
        EXPECT_GE(healthDoc.find("uptimeSeconds")->asNumber(), 0.0);
        ASSERT_NE(healthDoc.find("queueDepth"), nullptr);
        ASSERT_NE(healthDoc.find("flightRecorder"), nullptr);

        // Prometheus content type is part of the exposition contract.
        const auto metrics = client.request("GET", "/metrics");
        EXPECT_EQ(metrics.status, 200);
        const auto type = metrics.headers.find("content-type");
        ASSERT_NE(type, metrics.headers.end());
        EXPECT_EQ(type->second, "text/plain; version=0.0.4; charset=utf-8");
        EXPECT_NE(metrics.body.find("shtrace_serve_requests_total"),
                  std::string::npos);

        const auto wrongMethod = client.request("GET", "/v1/characterize");
        EXPECT_EQ(wrongMethod.status, 405);
        const auto missing = client.request("GET", "/nope");
        EXPECT_EQ(missing.status, 404);

        const auto result =
            client.request("POST", "/v1/characterize", smallBody(60));
        EXPECT_EQ(result.status, 200);
        EXPECT_TRUE(parseJson(result.body).find("ok")->asBool());

        const auto bad = client.request("POST", "/v1/characterize", "{");
        EXPECT_EQ(bad.status, 400);
    }

    daemon.shutdown();
    loop.join();
    EXPECT_EQ(daemon.service().counters().ok, 1u);
}

}  // namespace
}  // namespace shtrace::serve
