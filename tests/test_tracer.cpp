// Tests for Euler-Newton contour tracing (paper Sections IIID/IIIE).
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/tracer.hpp"

namespace shtrace {
namespace {

class TracerOnTspc : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        fixture_ = new RegisterFixture(buildTspcRegister());
        problem_ = new CharacterizationProblem(*fixture_);
    }
    static void TearDownTestSuite() {
        delete problem_;
        delete fixture_;
        problem_ = nullptr;
        fixture_ = nullptr;
    }

    static TracerOptions window() {
        TracerOptions opt;
        opt.bounds = SkewBounds{100e-12, 600e-12, 50e-12, 450e-12};
        opt.maxPoints = 14;
        return opt;
    }

    static RegisterFixture* fixture_;
    static CharacterizationProblem* problem_;
};

RegisterFixture* TracerOnTspc::fixture_ = nullptr;
CharacterizationProblem* TracerOnTspc::problem_ = nullptr;

TEST_F(TracerOnTspc, EveryPointSatisfiesHWithinTolerance) {
    const TracedContour contour =
        traceContour(problem_->h(), SkewPoint{220e-12, 450e-12}, window());
    ASSERT_TRUE(contour.seedConverged);
    ASSERT_GE(contour.points.size(), 8u);
    for (std::size_t i = 0; i < contour.points.size(); ++i) {
        EXPECT_LT(contour.residuals[i], TracerOptions{}.corrector.hTol)
            << "point " << i;
    }
}

TEST_F(TracerOnTspc, ContourShowsSetupHoldTradeoff) {
    const TracedContour contour =
        traceContour(problem_->h(), SkewPoint{220e-12, 450e-12}, window());
    ASSERT_TRUE(contour.seedConverged);
    // Along the curve, hold skew must be (weakly) decreasing as setup skew
    // increases -- the interdependence tradeoff of Fig. 1(b)/Fig. 8.
    // Allow a few ps of wiggle from corrector tolerance.
    const auto& pts = contour.points;
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GE(pts[i].setup, pts[i - 1].setup - 3e-12) << "point " << i;
        EXPECT_LE(pts[i].hold, pts[i - 1].hold + 3e-12) << "point " << i;
    }
    // And the tradeoff is substantial: the traced span covers both the
    // setup-critical and hold-critical regions.
    EXPECT_GT(pts.back().setup - pts.front().setup, 100e-12);
    EXPECT_GT(pts.front().hold - pts.back().hold, 100e-12);
}

TEST_F(TracerOnTspc, AllPointsInsideBounds) {
    const TracerOptions opt = window();
    const TracedContour contour =
        traceContour(problem_->h(), SkewPoint{220e-12, 450e-12}, opt);
    for (const SkewPoint& p : contour.points) {
        EXPECT_TRUE(opt.bounds.contains(p))
            << "(" << p.setup << ", " << p.hold << ")";
    }
}

TEST_F(TracerOnTspc, RespectsPointBudget) {
    TracerOptions opt = window();
    opt.maxPoints = 5;
    const TracedContour contour =
        traceContour(problem_->h(), SkewPoint{220e-12, 450e-12}, opt);
    EXPECT_LE(contour.points.size(), 5u);
    EXPECT_GE(contour.points.size(), 3u);
}

TEST_F(TracerOnTspc, CorrectorStaysCheapAlongTheCurve) {
    // The paper's efficiency claim: Euler predictors are good enough that
    // MPNR needs only 2-3 iterations per point.
    const TracedContour contour =
        traceContour(problem_->h(), SkewPoint{220e-12, 450e-12}, window());
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_LE(contour.averageCorrectorIterations(), 4.0);
}

TEST_F(TracerOnTspc, MidCurveSeedTracesBothDirections) {
    // Seed near the knee: points must appear on both sides of the seed.
    TracerOptions opt = window();
    opt.maxPoints = 12;
    const TracedContour contour =
        traceContour(problem_->h(), SkewPoint{260e-12, 180e-12}, opt);
    ASSERT_TRUE(contour.seedConverged);
    ASSERT_GE(contour.points.size(), 6u);
    // The seed's corrected position sits strictly inside the traced span.
    double minSetup = 1.0;
    double maxSetup = 0.0;
    for (const SkewPoint& p : contour.points) {
        minSetup = std::min(minSetup, p.setup);
        maxSetup = std::max(maxSetup, p.setup);
    }
    EXPECT_LT(minSetup, 250e-12);
    EXPECT_GT(maxSetup, 280e-12);
}

TEST_F(TracerOnTspc, FailsGracefullyFromHopelessSeed) {
    // A seed on the plateau: MPNR cannot converge, tracer reports it.
    const TracedContour contour =
        traceContour(problem_->h(), SkewPoint{1.4e-9, 1.4e-9}, window());
    EXPECT_FALSE(contour.seedConverged);
    EXPECT_TRUE(contour.points.empty());
}

TEST_F(TracerOnTspc, SingleDirectionModeCoversOneSide) {
    TracerOptions opt = window();
    opt.traceBothDirections = false;
    opt.maxPoints = 8;
    const TracedContour contour =
        traceContour(problem_->h(), SkewPoint{220e-12, 450e-12}, opt);
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_LE(contour.points.size(), 8u);
}

}  // namespace
}  // namespace shtrace
