// Tests for the request-scoped observability layer: W3C traceparent
// adoption, the structured JSON-lines event log (schema + bounded-drop
// accounting under a saturated sink), the serve flight recorder (ring
// wraparound, /debug routes, stage-sum contract), and metrics snapshot
// determinism under concurrent counter writers. In the tsan sweep: the
// logger and the counter registry are written from many threads by
// design.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "shtrace/obs/log.hpp"
#include "shtrace/obs/metrics.hpp"
#include "shtrace/obs/obs.hpp"
#include "shtrace/obs/trace_context.hpp"
#include "shtrace/serve/flight_recorder.hpp"
#include "shtrace/serve/json.hpp"
#include "shtrace/serve/server.hpp"
#include "shtrace/serve/service.hpp"

namespace shtrace {
namespace {

using obs::LogLevel;
using serve::JsonValue;
using serve::parseJson;

// ------------------------------------------------------ trace context --

TEST(TraceContextTest, MintsValidDistinctContexts) {
    const obs::TraceContext a = obs::mintTraceContext();
    const obs::TraceContext b = obs::mintTraceContext();
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_NE(a.traceIdHex(), b.traceIdHex());
    EXPECT_EQ(a.traceIdHex().size(), 32u);
    EXPECT_EQ(a.spanIdHex().size(), 16u);
}

TEST(TraceContextTest, AdoptsWellFormedTraceparentVerbatim) {
    const std::string parent =
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
    bool adopted = false;
    const obs::TraceContext context =
        obs::adoptOrMintTraceContext(parent, &adopted);
    EXPECT_TRUE(adopted);
    EXPECT_TRUE(context.valid());
    // The trace id is the client's, verbatim; the span id is OURS (a
    // fresh server-side span, not the client's parent span).
    EXPECT_EQ(context.traceIdHex(), "4bf92f3577b34da6a3ce929d0e0e4736");
    EXPECT_NE(context.spanIdHex(), "00f067aa0ba902b7");
    EXPECT_EQ(context.traceparent(),
              "00-4bf92f3577b34da6a3ce929d0e0e4736-" +
                  context.spanIdHex() + "-01");
}

TEST(TraceContextTest, MalformedTraceparentMintsFresh) {
    const std::vector<std::string> malformed = {
        "",
        "garbage",
        // Wrong length.
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",
        // Uppercase hex is invalid per W3C trace-context.
        "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
        // All-zero trace id.
        "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
        // All-zero parent span id.
        "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
        // Forbidden version 0xff.
        "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        // Dashes in the wrong place.
        "004-bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
    };
    for (const std::string& header : malformed) {
        bool adopted = true;
        const obs::TraceContext context =
            obs::adoptOrMintTraceContext(header, &adopted);
        EXPECT_FALSE(adopted) << "adopted: " << header;
        EXPECT_TRUE(context.valid()) << "not minted: " << header;
        EXPECT_NE(context.traceIdHex(),
                  "4bf92f3577b34da6a3ce929d0e0e4736");
    }
}

TEST(TraceContextTest, ScopedContextInstallsAndRestores) {
    EXPECT_FALSE(obs::currentRequestContext().trace.valid());
    const obs::TraceContext trace = obs::mintTraceContext();
    {
        const obs::ScopedRequestContext scope(
            obs::RequestContext{trace, nullptr});
        EXPECT_EQ(obs::currentRequestContext().trace.traceIdHex(),
                  trace.traceIdHex());
    }
    EXPECT_FALSE(obs::currentRequestContext().trace.valid());
}

TEST(TraceContextTest, StageTimerAccumulates) {
    obs::StageAccumulator stages;
    {
        const obs::ScopedRequestContext scope(
            obs::RequestContext{obs::mintTraceContext(), &stages});
        const obs::ScopedStageTimer timer(obs::Stage::StoreRead);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(stages.nanos(obs::Stage::StoreRead), 0);
    EXPECT_EQ(stages.nanos(obs::Stage::StorePublish), 0);
}

// -------------------------------------------------------- event log --

TEST(EventLogTest, SchemaFieldsInOrderWithTraceContext) {
    obs::resetLogging();
    std::vector<std::string> lines;
    obs::setLogSink([&lines](const std::string& line) {
        lines.push_back(line);
        return true;
    });

    const obs::TraceContext trace = obs::mintTraceContext();
    {
        const obs::ScopedRequestContext scope(
            obs::RequestContext{trace, nullptr});
        obs::logEvent(LogLevel::Info, "test.event",
                      {{"text", "a \"quoted\" value"},
                       {"count", 42},
                       {"ratio", 0.5},
                       {"flag", true}});
    }
    obs::logEvent(LogLevel::Warn, "test.plain", {});

    ASSERT_EQ(lines.size(), 2u);
    const JsonValue doc = parseJson(lines[0]);
    ASSERT_TRUE(doc.isObject());
    const auto& members = doc.members();
    // ts, level, event lead in that order; trace/span follow while a
    // request context is installed; caller fields in call order.
    ASSERT_GE(members.size(), 5u);
    EXPECT_EQ(members[0].first, "ts");
    EXPECT_EQ(members[1].first, "level");
    EXPECT_EQ(members[2].first, "event");
    EXPECT_EQ(members[3].first, "trace");
    EXPECT_EQ(members[4].first, "span");
    EXPECT_EQ(doc.find("level")->asString(), "info");
    EXPECT_EQ(doc.find("event")->asString(), "test.event");
    EXPECT_EQ(doc.find("trace")->asString(), trace.traceIdHex());
    EXPECT_EQ(doc.find("text")->asString(), "a \"quoted\" value");
    EXPECT_EQ(doc.find("count")->asNumber(), 42.0);
    EXPECT_TRUE(doc.find("flag")->asBool());

    // Without a request context there is no trace/span.
    const JsonValue plain = parseJson(lines[1]);
    EXPECT_EQ(plain.find("trace"), nullptr);
    EXPECT_EQ(plain.find("span"), nullptr);

    obs::resetLogging();
}

TEST(EventLogTest, LevelFilterSkipsBelowMinimum) {
    obs::resetLogging();
    int sunk = 0;
    obs::setLogSink([&sunk](const std::string&) {
        ++sunk;
        return true;
    });
    obs::setLogLevel(LogLevel::Warn);
    EXPECT_FALSE(obs::logEnabled(LogLevel::Info));
    EXPECT_TRUE(obs::logEnabled(LogLevel::Error));
    obs::logEvent(LogLevel::Debug, "drop.me", {});
    obs::logEvent(LogLevel::Info, "drop.me.too", {});
    obs::logEvent(LogLevel::Error, "keep.me", {});
    EXPECT_EQ(sunk, 1);
    const obs::LogCounts counts = obs::logCounts();
    EXPECT_EQ(counts.emitted, 1u);
    EXPECT_EQ(counts.dropped, 0u);
    obs::resetLogging();
}

// The drop-accounting contract under a saturated sink, with concurrent
// writers (tsan exercises the mutex): every record is either emitted or
// counted dropped, and the gap is announced by a synthetic log.dropped
// record once the sink recovers.
TEST(EventLogTest, SaturatedSinkCountsDropsExactly) {
    obs::resetLogging();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 200;
    constexpr int kAccept = 100;

    std::atomic<int> accepted{0};
    std::atomic<bool> saturated{false};
    obs::setLogSink([&](const std::string&) {
        if (saturated.load(std::memory_order_relaxed)) {
            return false;
        }
        if (accepted.fetch_add(1) + 1 >= kAccept) {
            saturated.store(true, std::memory_order_relaxed);
        }
        return true;
    });

    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i) {
                obs::logEvent(LogLevel::Info, "saturate",
                              {{"thread", t}, {"i", i}});
            }
        });
    }
    for (std::thread& w : writers) {
        w.join();
    }

    const obs::LogCounts counts = obs::logCounts();
    EXPECT_EQ(counts.emitted + counts.dropped,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_GT(counts.dropped, 0u);

    // Recovery: the next successful write is preceded by the synthetic
    // drop notice carrying the exact gap.
    std::vector<std::string> after;
    obs::setLogSink([&after](const std::string& line) {
        after.push_back(line);
        return true;
    });
    obs::logEvent(LogLevel::Info, "recovered", {});
    ASSERT_EQ(after.size(), 2u);
    const JsonValue notice = parseJson(after[0]);
    EXPECT_EQ(notice.find("event")->asString(), "log.dropped");
    EXPECT_EQ(notice.find("count")->asNumber(),
              static_cast<double>(counts.dropped));
    EXPECT_EQ(parseJson(after[1]).find("event")->asString(), "recovered");

    obs::resetLogging();
}

// ---------------------------------------------------- flight recorder --

serve::RequestRecord makeRecord(const std::string& id, double wall) {
    serve::RequestRecord record;
    record.id = id;
    record.cell = "tspc";
    record.status = 200;
    record.ok = true;
    record.wallMillis = wall;
    record.stages.computeMillis = wall;
    return record;
}

TEST(FlightRecorderTest, RingWrapsAndKeepsNewest) {
    serve::FlightRecorder recorder(4);
    EXPECT_EQ(recorder.capacity(), 4u);
    for (int i = 0; i < 10; ++i) {
        const std::uint64_t seq = recorder.record(
            makeRecord("id" + std::to_string(i), 1.0 + i));
        EXPECT_EQ(seq, static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.totalRecorded(), 10u);

    const std::vector<serve::RequestRecord> recent = recorder.recent();
    ASSERT_EQ(recent.size(), 4u);
    EXPECT_EQ(recent[0].id, "id9");  // newest first
    EXPECT_EQ(recent[1].id, "id8");
    EXPECT_EQ(recent[2].id, "id7");
    EXPECT_EQ(recent[3].id, "id6");

    EXPECT_TRUE(recorder.find("id7").has_value());
    EXPECT_FALSE(recorder.find("id5").has_value());  // evicted
    EXPECT_FALSE(recorder.find("nope").has_value());
}

TEST(FlightRecorderTest, FindReturnsNewestForReusedId) {
    serve::FlightRecorder recorder(8);
    recorder.record(makeRecord("dup", 1.0));
    recorder.record(makeRecord("dup", 2.0));
    const auto found = recorder.find("dup");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->sequence, 1u);
    EXPECT_EQ(found->wallMillis, 2.0);
}

TEST(FlightRecorderTest, RenderedListingIsValidJson) {
    serve::FlightRecorder recorder(2);
    recorder.record(makeRecord("a", 1.0));
    recorder.record(makeRecord("b", 2.0));
    const JsonValue doc = parseJson(serve::renderRequestRecords(recorder));
    EXPECT_EQ(doc.find("capacity")->asNumber(), 2.0);
    EXPECT_EQ(doc.find("recorded")->asNumber(), 2.0);
    const auto& requests = doc.find("requests")->asArray();
    ASSERT_EQ(requests.size(), 2u);
    EXPECT_EQ(requests[0].find("requestId")->asString(), "b");
    const JsonValue* stages = requests[0].find("stages");
    ASSERT_NE(stages, nullptr);
    EXPECT_EQ(stages->find("computeMillis")->asNumber(), 2.0);
}

// ------------------------------------------------------ debug routes --

serve::HttpRequest getRequest(const std::string& target) {
    serve::HttpRequest request;
    request.method = "GET";
    request.target = target;
    request.version = "HTTP/1.1";
    return request;
}

TEST(DebugRoutesTest, UnknownRequestIdIs404Json) {
    serve::DaemonOptions options;
    options.port = 0;
    options.service.threads = 1;
    serve::ServedDaemon daemon(options);

    const serve::HttpResponse miss = daemon.handle(
        getRequest("/debug/requests/00000000000000000000000000000000"));
    EXPECT_EQ(miss.status, 404);
    EXPECT_EQ(miss.contentType, "application/json");
    const JsonValue doc = parseJson(miss.body);
    ASSERT_NE(doc.find("error"), nullptr);

    const serve::HttpResponse empty =
        daemon.handle(getRequest("/debug/requests"));
    EXPECT_EQ(empty.status, 200);
    const JsonValue listing = parseJson(empty.body);
    EXPECT_EQ(listing.find("recorded")->asNumber(), 0.0);
    EXPECT_EQ(listing.find("requests")->asArray().size(), 0u);
}

// The live round-trip contract: a 200 response carries a requestId that
// resolves at /debug/requests/<id> to a record whose five stages sum to
// the recorded wall clock, and an inbound traceparent id is adopted
// verbatim end to end.
TEST(DebugRoutesTest, RequestIdResolvesWithStageSumMatchingWall) {
    serve::DaemonOptions options;
    options.port = 0;
    options.service.threads = 1;
    serve::ServedDaemon daemon(options);

    serve::HttpRequest post;
    post.method = "POST";
    post.target = "/v1/characterize";
    post.version = "HTTP/1.1";
    post.headers["traceparent"] =
        "00-aaaabbbbccccddddeeeeffff00001111-1234123412341234-01";
    post.body =
        R"({"cell":"tspc","tracer":{"bounds":{"setupMin":8e-11,)"
        R"("setupMax":7e-10,"holdMin":4e-11,"holdMax":5e-10},)"
        R"("maxPoints":3}})";

    const serve::HttpResponse response = daemon.handle(post);
    ASSERT_EQ(response.status, 200);

    std::string headerId;
    for (const auto& [name, value] : response.headers) {
        if (name == "X-Request-Id") {
            headerId = value;
        }
    }
    EXPECT_EQ(headerId, "aaaabbbbccccddddeeeeffff00001111");

    const JsonValue body = parseJson(response.body);
    ASSERT_NE(body.find("requestId"), nullptr);
    EXPECT_EQ(body.find("requestId")->asString(), headerId);
    EXPECT_TRUE(body.find("served")->find("tracedByClient")->asBool());

    const serve::HttpResponse debug =
        daemon.handle(getRequest("/debug/requests/" + headerId));
    ASSERT_EQ(debug.status, 200);
    const JsonValue record = parseJson(debug.body);
    EXPECT_EQ(record.find("requestId")->asString(), headerId);
    EXPECT_TRUE(record.find("tracedByClient")->asBool());
    EXPECT_TRUE(record.find("ok")->asBool());
    EXPECT_FALSE(record.find("coalesced")->asBool());

    const JsonValue* stages = record.find("stages");
    ASSERT_NE(stages, nullptr);
    const double sum = stages->find("queueWaitMillis")->asNumber() +
                       stages->find("coalesceWaitMillis")->asNumber() +
                       stages->find("storeReadMillis")->asNumber() +
                       stages->find("computeMillis")->asNumber() +
                       stages->find("storePublishMillis")->asNumber();
    const double wall = record.find("wallMillis")->asNumber();
    ASSERT_GT(wall, 0.0);
    EXPECT_NEAR(sum, wall, 0.05 * wall);

    daemon.shutdown();
}

TEST(DebugRoutesTest, FreshRequestMintsIdWithoutTraceparent) {
    serve::ServiceOptions options;
    options.threads = 1;
    serve::CharacterizationService service(options);
    const std::string body =
        R"({"cell":"tspc","tracer":{"bounds":{"setupMin":8e-11,)"
        R"("setupMax":7e-10,"holdMin":4e-11,"holdMax":5e-10},)"
        R"("maxPoints":3}})";
    const auto outcome = service.characterize(body);
    EXPECT_EQ(outcome.status, 200);
    ASSERT_EQ(outcome.requestId.size(), 32u);
    const auto record = service.flightRecorder().find(outcome.requestId);
    ASSERT_TRUE(record.has_value());
    EXPECT_FALSE(record->tracedByClient);
    EXPECT_NEAR(record->stages.sumMillis(), record->wallMillis,
                0.05 * record->wallMillis);
}

// ------------------------------------------------- metrics snapshot --

// addCount is mutex-serialized with metricsSnapshot, so a snapshot taken
// concurrently with counter writers is a consistent point-in-time view:
// values only grow, and after the writers join the total is exact.
TEST(MetricsSnapshotTest, CounterSnapshotsAreMonotonicUnderWriters) {
    obs::clearMetrics();
    const int previousDetail = obs::detailLevel();
    obs::setDetail(obs::Detail::Coarse);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    const char* kCounter = "shtrace_serve_worker_exceptions_total";

    const auto counterValue = [&](const obs::MetricsSnapshot& snapshot) {
        for (const obs::CounterSnapshot& c : snapshot.counters) {
            if (c.name == kCounter) {
                return c.value;
            }
        }
        return -1.0;
    };

    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([] {
            for (int i = 0; i < kPerThread; ++i) {
                obs::addCount(obs::Count::ServeWorkerExceptions);
            }
        });
    }
    std::thread reader([&] {
        double previous = 0.0;
        while (!done.load(std::memory_order_acquire)) {
            const double value = counterValue(obs::metricsSnapshot());
            EXPECT_GE(value, previous);
            previous = value;
        }
    });
    for (std::thread& w : writers) {
        w.join();
    }
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(counterValue(obs::metricsSnapshot()),
              static_cast<double>(kThreads * kPerThread));

    obs::clearMetrics();
    obs::setDetail(static_cast<obs::Detail>(previousDetail));
}

}  // namespace
}  // namespace shtrace
