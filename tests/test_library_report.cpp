// Golden-file test for the Liberty-lite writer: synthetic rows with fixed
// numbers must produce byte-identical report text, release after release.
// If a deliberate format change breaks this, regenerate the golden file
// (instructions below) and review the diff like any other API change.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "shtrace/chz/library.hpp"

namespace shtrace {
namespace {

std::vector<LibraryRow> syntheticRows() {
    LibraryRow good;
    good.cell = "TSPC_X1";
    good.success = true;
    good.characteristicClockToQ = 81.25e-12;
    good.setupTime = 123.5e-12;
    good.holdTime = 45.25e-12;
    good.contour = {{100e-12, 400e-12},
                    {150e-12, 200e-12},
                    {250e-12, 100e-12}};

    LibraryRow bare;
    bare.cell = "C2MOS_X1";
    bare.success = true;
    bare.characteristicClockToQ = 95e-12;
    bare.setupTime = 180e-12;
    bare.holdTime = 60e-12;  // no contour: independent-only row

    LibraryRow failed;
    failed.cell = "BROKEN_X1";
    failed.success = false;
    failed.failureReason = "contour seed search failed";

    return {good, bare, failed};
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(LibraryReport, MatchesGoldenFile) {
    const std::string actualPath =
        ::testing::TempDir() + "/shtrace_golden_check.lib";
    writeLibertyLite(syntheticRows(), actualPath, "shtrace_golden");
    const std::string actual = slurp(actualPath);

    const std::string goldenPath =
        std::string(SHTRACE_GOLDEN_DIR) + "/library_report.lib";
    const std::string golden = slurp(goldenPath);

    EXPECT_EQ(actual, golden)
        << "Liberty-lite output drifted from tests/golden/"
           "library_report.lib.\nIf the change is intentional, regenerate "
           "with:\n  cp " << actualPath << " " << goldenPath;
    std::remove(actualPath.c_str());
}

TEST(LibraryReport, WriterIsDeterministic) {
    const std::string a = ::testing::TempDir() + "/shtrace_det_a.lib";
    const std::string b = ::testing::TempDir() + "/shtrace_det_b.lib";
    writeLibertyLite(syntheticRows(), a, "shtrace_golden");
    writeLibertyLite(syntheticRows(), b, "shtrace_golden");
    EXPECT_EQ(slurp(a), slurp(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

}  // namespace
}  // namespace shtrace
