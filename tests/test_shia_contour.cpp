// Tests for the STA-facing contour view (interpolation, admission, slack).
#include <gtest/gtest.h>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/shia_contour.hpp"

namespace shtrace {
namespace {

ShiaContour synthetic() {
    // A clean L-shaped tradeoff: (100,400) (150,250) (250,150) (400,100).
    return ShiaContour({{100e-12, 400e-12},
                        {150e-12, 250e-12},
                        {250e-12, 150e-12},
                        {400e-12, 100e-12}});
}

TEST(ShiaContour, SortsAndExposesAsymptotes) {
    // Deliberately unsorted input.
    const ShiaContour c({{250e-12, 150e-12},
                         {100e-12, 400e-12},
                         {400e-12, 100e-12},
                         {150e-12, 250e-12}});
    EXPECT_DOUBLE_EQ(c.minSetup(), 100e-12);
    EXPECT_DOUBLE_EQ(c.minHold(), 100e-12);
    EXPECT_EQ(c.size(), 4u);
}

TEST(ShiaContour, InterpolatesHoldRequirement) {
    const ShiaContour c = synthetic();
    // Midpoint of the (150,250)-(250,150) segment.
    const auto req = c.holdRequirementAt(200e-12);
    ASSERT_TRUE(req.has_value());
    EXPECT_NEAR(*req, 200e-12, 1e-15);
    // Exactly on a point.
    EXPECT_NEAR(*c.holdRequirementAt(150e-12), 250e-12, 1e-15);
}

TEST(ShiaContour, ClampsAndRejectsOutsideTheRange) {
    const ShiaContour c = synthetic();
    // Beyond the largest traced setup: the hold asymptote.
    EXPECT_NEAR(*c.holdRequirementAt(1e-9), 100e-12, 1e-15);
    // Below the setup asymptote: no feasible pair.
    EXPECT_FALSE(c.holdRequirementAt(50e-12).has_value());
}

TEST(ShiaContour, AdmissionMatchesDomination) {
    const ShiaContour c = synthetic();
    EXPECT_TRUE(c.admits(300e-12, 200e-12));   // above the curve
    EXPECT_FALSE(c.admits(300e-12, 110e-12));  // below the curve
    EXPECT_FALSE(c.admits(80e-12, 1e-9));      // infeasible setup
    EXPECT_TRUE(c.admits(150e-12, 250e-12));   // exactly on the curve
}

TEST(ShiaContour, HoldSlackSignsAreMeaningful) {
    const ShiaContour c = synthetic();
    EXPECT_NEAR(*c.holdSlack(200e-12, 260e-12), 60e-12, 1e-15);
    EXPECT_NEAR(*c.holdSlack(200e-12, 150e-12), -50e-12, 1e-15);
    EXPECT_FALSE(c.holdSlack(50e-12, 1e-9).has_value());
}

TEST(ShiaContour, RejectsDegenerateInput) {
    EXPECT_THROW(ShiaContour({{1e-10, 1e-10}}), InvalidArgumentError);
    // A "contour" with no tradeoff (second point dominated): the Pareto
    // frontier collapses to one point.
    EXPECT_THROW(ShiaContour({{100e-12, 100e-12}, {200e-12, 200e-12}}),
                 InvalidArgumentError);
}

TEST(ShiaContour, DropsDominatedWigglePoints) {
    // The (300, 202) point is dominated by (200, 200): it is removed and
    // queries interpolate across the remaining frontier.
    const ShiaContour c({{100e-12, 300e-12},
                         {200e-12, 200e-12},
                         {300e-12, 202e-12},  // corrector wiggle upward
                         {400e-12, 150e-12}});
    EXPECT_EQ(c.size(), 3u);
    EXPECT_NEAR(*c.holdRequirementAt(300e-12), 175e-12, 1e-15);
}

TEST(ShiaContour, VerticalAsymptoteSegmentCollapsesToItsLowestPoint) {
    // Many holds at (numerically) one setup -- the tracer's descent along
    // the setup asymptote: keep the lowest, queries stay well defined.
    const ShiaContour c({{204e-12, 460e-12},
                         {204e-12, 380e-12},
                         {204e-12, 300e-12},
                         {250e-12, 180e-12},
                         {400e-12, 140e-12}});
    EXPECT_EQ(c.size(), 3u);
    EXPECT_NEAR(*c.holdRequirementAt(204e-12), 300e-12, 1e-15);
}

TEST(ShiaContour, FromRealTracedContour) {
    const RegisterFixture reg = buildTspcRegister();
    CharacterizeOptions opt;
    opt.tracer.maxPoints = 12;
    opt.tracer.bounds = SkewBounds{120e-12, 560e-12, 60e-12, 460e-12};
    const CharacterizeResult r = characterizeInterdependent(reg, opt);
    ASSERT_TRUE(r.success);
    const ShiaContour c = ShiaContour::fromTrace(r.contour);
    // The real curve supports the SHIA trade: generous setup admits a hold
    // budget below the knee requirement.
    const double knee = *c.holdRequirementAt(c.minSetup() + 30e-12);
    EXPECT_TRUE(c.admits(c.points().back().setup, c.minHold()));
    EXPECT_GT(knee, c.minHold());
}

}  // namespace
}  // namespace shtrace
