// Tests for the STA-facing contour view (interpolation, admission, slack).
#include <gtest/gtest.h>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/shia_contour.hpp"

namespace shtrace {
namespace {

ShiaContour synthetic() {
    // A clean L-shaped tradeoff: (100,400) (150,250) (250,150) (400,100).
    return ShiaContour({{100e-12, 400e-12},
                        {150e-12, 250e-12},
                        {250e-12, 150e-12},
                        {400e-12, 100e-12}});
}

TEST(ShiaContour, SortsAndExposesAsymptotes) {
    // Deliberately unsorted input.
    const ShiaContour c({{250e-12, 150e-12},
                         {100e-12, 400e-12},
                         {400e-12, 100e-12},
                         {150e-12, 250e-12}});
    EXPECT_DOUBLE_EQ(c.minSetup(), 100e-12);
    EXPECT_DOUBLE_EQ(c.minHold(), 100e-12);
    EXPECT_EQ(c.size(), 4u);
}

TEST(ShiaContour, InterpolatesHoldRequirement) {
    const ShiaContour c = synthetic();
    // Midpoint of the (150,250)-(250,150) segment.
    const auto req = c.holdRequirementAt(200e-12);
    ASSERT_TRUE(req.has_value());
    EXPECT_NEAR(*req, 200e-12, 1e-15);
    // Exactly on a point.
    EXPECT_NEAR(*c.holdRequirementAt(150e-12), 250e-12, 1e-15);
}

TEST(ShiaContour, ClampsAndRejectsOutsideTheRange) {
    const ShiaContour c = synthetic();
    // Beyond the largest traced setup: the hold asymptote.
    EXPECT_NEAR(*c.holdRequirementAt(1e-9), 100e-12, 1e-15);
    // Below the setup asymptote: no feasible pair.
    EXPECT_FALSE(c.holdRequirementAt(50e-12).has_value());
}

TEST(ShiaContour, AdmissionMatchesDomination) {
    const ShiaContour c = synthetic();
    EXPECT_TRUE(c.admits(300e-12, 200e-12));   // above the curve
    EXPECT_FALSE(c.admits(300e-12, 110e-12));  // below the curve
    EXPECT_FALSE(c.admits(80e-12, 1e-9));      // infeasible setup
    EXPECT_TRUE(c.admits(150e-12, 250e-12));   // exactly on the curve
}

TEST(ShiaContour, HoldSlackSignsAreMeaningful) {
    const ShiaContour c = synthetic();
    EXPECT_NEAR(*c.holdSlack(200e-12, 260e-12), 60e-12, 1e-15);
    EXPECT_NEAR(*c.holdSlack(200e-12, 150e-12), -50e-12, 1e-15);
    EXPECT_FALSE(c.holdSlack(50e-12, 1e-9).has_value());
}

TEST(ShiaContour, RejectsDegenerateInput) {
    EXPECT_THROW(ShiaContour({{1e-10, 1e-10}}), InvalidArgumentError);
    // A "contour" with no tradeoff (second point dominated): the Pareto
    // frontier collapses to one point.
    EXPECT_THROW(ShiaContour({{100e-12, 100e-12}, {200e-12, 200e-12}}),
                 InvalidArgumentError);
}

TEST(ShiaContour, DropsDominatedWigglePoints) {
    // The (300, 202) point is dominated by (200, 200): it is removed and
    // queries interpolate across the remaining frontier.
    const ShiaContour c({{100e-12, 300e-12},
                         {200e-12, 200e-12},
                         {300e-12, 202e-12},  // corrector wiggle upward
                         {400e-12, 150e-12}});
    EXPECT_EQ(c.size(), 3u);
    EXPECT_NEAR(*c.holdRequirementAt(300e-12), 175e-12, 1e-15);
}

TEST(ShiaContour, VerticalAsymptoteSegmentCollapsesToItsLowestPoint) {
    // Many holds at (numerically) one setup -- the tracer's descent along
    // the setup asymptote: keep the lowest, queries stay well defined.
    const ShiaContour c({{204e-12, 460e-12},
                         {204e-12, 380e-12},
                         {204e-12, 300e-12},
                         {250e-12, 180e-12},
                         {400e-12, 140e-12}});
    EXPECT_EQ(c.size(), 3u);
    EXPECT_NEAR(*c.holdRequirementAt(204e-12), 300e-12, 1e-15);
}

TEST(ShiaContour, MonotoneSlackRetainsNearFrontierPoints) {
    // Regression: fromTrace/the constructor used to accept monotoneSlack
    // and silently drop it, always producing the strict frontier. The
    // (300, 202) point sits 2 ps above the running minimum: the strict
    // frontier drops it, a 5 ps tolerance must RETAIN it.
    const std::vector<SkewPoint> wiggly = {{100e-12, 300e-12},
                                           {200e-12, 200e-12},
                                           {300e-12, 202e-12},
                                           {400e-12, 150e-12}};
    const ShiaContour strict(wiggly);
    const ShiaContour tolerant(wiggly, 5e-12);
    EXPECT_EQ(strict.size(), 3u);
    ASSERT_EQ(tolerant.size(), 4u);  // the nonzero slack changed the set
    // The retained wiggle point participates in interpolation...
    EXPECT_NEAR(*tolerant.holdRequirementAt(300e-12), 202e-12, 1e-15);
    EXPECT_NEAR(*strict.holdRequirementAt(300e-12), 175e-12, 1e-15);
    // ...but the true minimum over the retained set is still reported.
    EXPECT_DOUBLE_EQ(tolerant.minHold(), 150e-12);
}

TEST(ShiaContour, MonotoneSlackDoesNotResurrectFarDominatedPoints) {
    // A point 20 ps above the running minimum is outside a 5 ps slack:
    // still dropped.
    const ShiaContour c({{100e-12, 300e-12},
                         {200e-12, 200e-12},
                         {300e-12, 220e-12},
                         {400e-12, 150e-12}},
                        5e-12);
    EXPECT_EQ(c.size(), 3u);
}

TEST(ShiaContour, MonotoneSlackStillCollapsesEqualSetupPlateaus) {
    // The vertical setup-asymptote segment collapses to its lowest hold
    // regardless of the slack; a plateau of equal setups never spans.
    const ShiaContour c({{204e-12, 460e-12},
                         {204e-12, 380e-12},
                         {204e-12, 300e-12},
                         {250e-12, 180e-12},
                         {400e-12, 140e-12}},
                        500e-12);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_NEAR(*c.holdRequirementAt(204e-12), 300e-12, 1e-15);
}

TEST(ShiaContour, RejectsNonFiniteConstructionAndSlack) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(ShiaContour({{100e-12, nan}, {200e-12, 100e-12}}),
                 InvalidArgumentError);
    EXPECT_THROW(ShiaContour({{inf, 200e-12}, {200e-12, 100e-12}}),
                 InvalidArgumentError);
    const std::vector<SkewPoint> good = {{100e-12, 300e-12},
                                         {200e-12, 200e-12}};
    EXPECT_THROW(ShiaContour(good, nan), InvalidArgumentError);
    EXPECT_THROW(ShiaContour(good, -1e-12), InvalidArgumentError);
}

TEST(ShiaContour, QueriesRejectNonFiniteBudgets) {
    const ShiaContour c = synthetic();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(c.admits(nan, 1e-9));
    EXPECT_FALSE(c.admits(1e-9, nan));
    EXPECT_FALSE(c.admits(inf, inf));  // an infinite budget is a bug upstream
    EXPECT_FALSE(c.holdSlack(nan, 1e-9).has_value());
    EXPECT_FALSE(c.holdSlack(1e-9, nan).has_value());
    EXPECT_FALSE(c.holdRequirementAt(nan).has_value());
    EXPECT_FALSE(c.holdRequirementAt(inf).has_value());
}

TEST(ShiaContour, BoundaryExactQueries) {
    const ShiaContour c = synthetic();
    // Exactly at the smallest traced setup: the first point's hold.
    EXPECT_NEAR(*c.holdRequirementAt(100e-12), 400e-12, 1e-15);
    // Exactly at the largest traced setup: the last point's hold.
    EXPECT_NEAR(*c.holdRequirementAt(400e-12), 100e-12, 1e-15);
    // One ulp-scale step below the smallest setup: infeasible.
    EXPECT_FALSE(c.holdRequirementAt(100e-12 * (1 - 1e-12)).has_value());
    // Budget exactly equal to a contour point admits (closed curve).
    EXPECT_TRUE(c.admits(100e-12, 400e-12));
    EXPECT_TRUE(c.admits(400e-12, 100e-12));
    EXPECT_NEAR(*c.holdSlack(400e-12, 100e-12), 0.0, 1e-18);
}

TEST(ShiaContour, KneePointMinimizesTheBudgetSum) {
    // synthetic(): sums are 500, 400, 400, 500 -- the tie between
    // (150, 250) and (250, 150) resolves to the smaller setup.
    const SkewPoint knee = synthetic().kneePoint();
    EXPECT_DOUBLE_EQ(knee.setup, 150e-12);
    EXPECT_DOUBLE_EQ(knee.hold, 250e-12);
    // The knee never lands on a dominated point: (300, 202) is dropped
    // before selection even though its sum beats (400, 150)'s.
    const ShiaContour wiggly({{100e-12, 320e-12},
                              {200e-12, 200e-12},
                              {300e-12, 202e-12},
                              {400e-12, 150e-12}});
    const SkewPoint k2 = wiggly.kneePoint();
    EXPECT_DOUBLE_EQ(k2.setup, 200e-12);
    EXPECT_DOUBLE_EQ(k2.hold, 200e-12);
}

TEST(ShiaContour, FromRealTracedContour) {
    const RegisterFixture reg = buildTspcRegister();
    CharacterizeOptions opt;
    opt.tracer.maxPoints = 12;
    opt.tracer.bounds = SkewBounds{120e-12, 560e-12, 60e-12, 460e-12};
    const CharacterizeResult r = characterizeInterdependent(reg, opt);
    ASSERT_TRUE(r.success);
    const ShiaContour c = ShiaContour::fromTrace(r.contour);
    // The real curve supports the SHIA trade: generous setup admits a hold
    // budget below the knee requirement.
    const double knee = *c.holdRequirementAt(c.minSetup() + 30e-12);
    EXPECT_TRUE(c.admits(c.points().back().setup, c.minHold()));
    EXPECT_GT(knee, c.minHold());
}

}  // namespace
}  // namespace shtrace
