// Tests for the forward skew sensitivities (paper eqs. 7-14): the analytic
// m_s, m_h computed alongside the transient must match central finite
// differences of the state trajectory in (tau_s, tau_h). This is THE
// correctness property behind the Moore-Penrose Newton Jacobian.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "shtrace/analysis/sensitivity.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"

namespace shtrace {
namespace {

/// Linear RC probe driven by the data pulse: has an exact analytic
/// sensitivity structure and converges fast.
struct RcDataFixture {
    Circuit ckt;
    std::shared_ptr<DataPulse> data;
    NodeId out;

    explicit RcDataFixture(double capacitance = 0.2e-12) {
        DataPulse::Spec spec;
        spec.v0 = 0.0;
        spec.v1 = 2.5;
        spec.activeEdgeTime = 2e-9;
        spec.transitionTime = 0.1e-9;
        data = std::make_shared<DataPulse>(spec);
        data->setSkews(300e-12, 200e-12);
        const NodeId in = ckt.node("in");
        out = ckt.node("out");
        ckt.add<VoltageSource>("Vd", in, kGround, data);
        ckt.add<Resistor>("R1", in, out, 1e3);
        ckt.add<Capacitor>("C1", out, kGround, capacitance);
        ckt.finalize();
    }
};

struct SensCase {
    IntegrationMethod method;
    double tStop;
    int steps;
};

class RcSensitivity : public ::testing::TestWithParam<SensCase> {};

TEST_P(RcSensitivity, MatchesFiniteDifferenceOnLinearCircuit) {
    const auto& [method, tStop, steps] = GetParam();
    RcDataFixture fx;
    const Vector sel = fx.ckt.selectorFor(fx.out);
    TransientOptions opt;
    opt.tStop = tStop;
    opt.method = method;
    opt.fixedSteps = steps;
    opt.initialCondition = Vector(fx.ckt.systemSize());

    const SkewEvaluation analytic = evaluateWithSensitivities(
        fx.ckt, *fx.data, sel, 300e-12, 200e-12, opt);
    // On the FIXED grid the analytic sensitivity is the exact derivative of
    // the discretized map, so a small FD delta must agree tightly.
    const SkewEvaluation fd = evaluateWithFiniteDifferences(
        fx.ckt, *fx.data, sel, 300e-12, 200e-12, opt, 1e-14);
    ASSERT_TRUE(analytic.success);
    ASSERT_TRUE(fd.success);
    EXPECT_NEAR(analytic.output, fd.output, 1e-12);
    const double scale = 2.5 / 0.1e-9;  // typical magnitude of du/dtau
    EXPECT_NEAR(analytic.dOutputDSetup, fd.dOutputDSetup, 2e-4 * scale);
    EXPECT_NEAR(analytic.dOutputDHold, fd.dOutputDHold, 2e-4 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndWindows, RcSensitivity,
    ::testing::Values(
        SensCase{IntegrationMethod::BackwardEuler, 2.5e-9, 1250},
        SensCase{IntegrationMethod::Trapezoidal, 2.5e-9, 1250},
        // End the window ON the trailing edge: both sensitivities active.
        SensCase{IntegrationMethod::Trapezoidal, 2.2e-9, 1100},
        SensCase{IntegrationMethod::BackwardEuler, 2.2e-9, 550}));

TEST(Sensitivity, RcSetupSensitivityHasAnalyticValue) {
    // For the linear RC, x(t) = convolution of u_d with the RC kernel, so
    // dx/dtau_s(t_f) = integral of kernel * du/dtau_s. For t_f many time
    // constants past the leading edge (but before the trailing edge), the
    // response to the edge shift has fully settled: dx/dtau_s -> 0; ON the
    // trailing edge, dx/dtau_h is substantial. Use a fast RC (tau = 20 ps)
    // so "many time constants" fits between the edges.
    RcDataFixture fx(0.02e-12);
    const Vector sel = fx.ckt.selectorFor(fx.out);
    TransientOptions opt;
    opt.method = IntegrationMethod::Trapezoidal;
    opt.initialCondition = Vector(fx.ckt.systemSize());

    // Window ends between the edges: setup sensitivity ~0 (settled).
    opt.tStop = 2.05e-9;
    opt.fixedSteps = 1025;
    const SkewEvaluation mid = evaluateWithSensitivities(
        fx.ckt, *fx.data, sel, 300e-12, 200e-12, opt);
    ASSERT_TRUE(mid.success);
    EXPECT_NEAR(mid.output, 2.5, 1e-3);  // settled at v1
    EXPECT_NEAR(mid.dOutputDSetup, 0.0, 1e6);  // ~0 vs scale 2.5e10
    EXPECT_NEAR(mid.dOutputDHold, 0.0, 1e6);

    // Window ends mid-trailing-edge: hold sensitivity ~ +u'(t) magnitude.
    opt.tStop = 2.2e-9;
    opt.fixedSteps = 1100;
    const SkewEvaluation trail = evaluateWithSensitivities(
        fx.ckt, *fx.data, sel, 300e-12, 200e-12, opt);
    ASSERT_TRUE(trail.success);
    EXPECT_GT(trail.dOutputDHold, 1e9);  // rising with hold skew
    EXPECT_NEAR(trail.dOutputDSetup, 0.0, 1e6);
}

TEST(Sensitivity, TspcNonlinearMatchesFiniteDifference) {
    // The real thing: the TSPC register near its setup/hold knee, where h
    // varies strongly with both skews.
    const RegisterFixture reg = buildTspcRegister();
    const Vector sel = reg.circuit.selectorFor(reg.q);
    TransientOptions opt;
    opt.tStop = reg.activeEdgeMidpoint() + 0.52e-9;
    opt.fixedSteps = static_cast<int>(opt.tStop / 10e-12);
    opt.method = IntegrationMethod::Trapezoidal;

    const double ts = 230e-12;
    const double th = 190e-12;
    const SkewEvaluation analytic =
        evaluateWithSensitivities(reg.circuit, *reg.data, sel, ts, th, opt);
    const SkewEvaluation fd = evaluateWithFiniteDifferences(
        reg.circuit, *reg.data, sel, ts, th, opt, 5e-15);
    ASSERT_TRUE(analytic.success);
    ASSERT_TRUE(fd.success);
    // Gradients are large (V per second of skew); require 1% agreement.
    const double tolS =
        0.01 * std::max(std::fabs(fd.dOutputDSetup), 1e8);
    const double tolH = 0.01 * std::max(std::fabs(fd.dOutputDHold), 1e8);
    EXPECT_NEAR(analytic.dOutputDSetup, fd.dOutputDSetup, tolS);
    EXPECT_NEAR(analytic.dOutputDHold, fd.dOutputDHold, tolH);
    // Both sensitivities must be significant at the knee.
    EXPECT_GT(std::fabs(analytic.dOutputDSetup), 1e8);
    EXPECT_GT(std::fabs(analytic.dOutputDHold), 1e8);
}

TEST(Sensitivity, ZeroWhenWindowEndsBeforeDataMoves) {
    RcDataFixture fx;
    const Vector sel = fx.ckt.selectorFor(fx.out);
    TransientOptions opt;
    opt.tStop = 1e-9;  // before the leading edge
    opt.fixedSteps = 100;
    opt.initialCondition = Vector(fx.ckt.systemSize());
    const SkewEvaluation eval = evaluateWithSensitivities(
        fx.ckt, *fx.data, sel, 300e-12, 200e-12, opt);
    ASSERT_TRUE(eval.success);
    EXPECT_DOUBLE_EQ(eval.dOutputDSetup, 0.0);
    EXPECT_DOUBLE_EQ(eval.dOutputDHold, 0.0);
}

TEST(Sensitivity, FiniteDifferenceRestoresSkews) {
    RcDataFixture fx;
    const Vector sel = fx.ckt.selectorFor(fx.out);
    TransientOptions opt;
    opt.tStop = 1e-9;
    opt.fixedSteps = 100;
    opt.initialCondition = Vector(fx.ckt.systemSize());
    (void)evaluateWithFiniteDifferences(fx.ckt, *fx.data, sel, 300e-12,
                                        200e-12, opt, 1e-13);
    EXPECT_DOUBLE_EQ(fx.data->setupSkew(), 300e-12);
    EXPECT_DOUBLE_EQ(fx.data->holdSkew(), 200e-12);
}

}  // namespace
}  // namespace shtrace
