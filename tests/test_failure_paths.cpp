// Failure-injection tests: the library must fail loudly and precisely, not
// hang or fabricate numbers, when the numerics are sabotaged.
#include <gtest/gtest.h>

#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/mpnr.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/tracer.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"

namespace shtrace {
namespace {

TEST(FailurePaths, TransientReportsNewtonFailureWithTime) {
    // One Newton iteration is never enough for the nonlinear latch step:
    // the transient must return success=false with the failing time in the
    // reason, not throw or loop.
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);
    TransientOptions opt;
    opt.tStop = 2e-9;
    opt.fixedSteps = 200;
    opt.newton.maxIterations = 1;
    // Explicit (bad) initial condition so the sabotaged Newton settings do
    // not already kill the DC solve: the STEP failure path is under test.
    opt.initialCondition = Vector(reg.circuit.systemSize());
    const TransientResult tr = TransientAnalysis(reg.circuit, opt).run();
    EXPECT_FALSE(tr.success);
    EXPECT_NE(tr.failureReason.find("Newton failed"), std::string::npos);
    EXPECT_NE(tr.failureReason.find("fixed grid"), std::string::npos);
}

TEST(FailurePaths, AdaptiveModeRetriesBeforeGivingUp) {
    // Same sabotage in adaptive mode: the stepper halves dt until dtMin
    // and reports the underflow.
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);
    TransientOptions opt;
    opt.tStop = 2e-9;
    opt.adaptive = true;
    opt.dtMin = 1e-15;
    opt.newton.maxIterations = 1;
    opt.initialCondition = Vector(reg.circuit.systemSize());
    const TransientResult tr = TransientAnalysis(reg.circuit, opt).run();
    EXPECT_FALSE(tr.success);
    EXPECT_NE(tr.failureReason.find("dt underflow"), std::string::npos);
}

TEST(FailurePaths, MpnrPropagatesTransientFailure) {
    const RegisterFixture reg = buildTspcRegister();
    const CharacterizationProblem problem(reg);
    // Build a SECOND h-function over the same circuit with sabotaged
    // Newton settings.
    TransientOptions bad;
    bad.tStop = problem.tf();
    bad.fixedSteps = 100;  // grotesquely coarse: huge steps CAN still pass,
    bad.newton.maxIterations = 1;  // but one NR iteration cannot
    bad.initialCondition = problem.initialCondition();
    const HFunction h(reg.circuit, reg.data,
                      reg.circuit.selectorFor(reg.q), problem.tf(),
                      problem.r(), bad);
    const MpnrResult r = solveMpnr(h, SkewPoint{200e-12, 300e-12});
    EXPECT_FALSE(r.converged);
    EXPECT_TRUE(r.transientFailed);
}

TEST(FailurePaths, TracerReturnsEmptyOnBrokenH) {
    const RegisterFixture reg = buildTspcRegister();
    const CharacterizationProblem problem(reg);
    TransientOptions bad;
    bad.tStop = problem.tf();
    bad.fixedSteps = 100;
    bad.newton.maxIterations = 1;
    bad.initialCondition = problem.initialCondition();
    const HFunction h(reg.circuit, reg.data,
                      reg.circuit.selectorFor(reg.q), problem.tf(),
                      problem.r(), bad);
    const TracedContour contour =
        traceContour(h, SkewPoint{200e-12, 300e-12});
    EXPECT_FALSE(contour.seedConverged);
    EXPECT_TRUE(contour.points.empty());
}

TEST(FailurePaths, HFunctionRejectsAdaptiveRecipe) {
    const RegisterFixture reg = buildTspcRegister();
    TransientOptions opt;
    opt.tStop = 12e-9;
    opt.adaptive = true;  // forbidden: h must live on a fixed grid
    EXPECT_THROW(HFunction(reg.circuit, reg.data,
                           reg.circuit.selectorFor(reg.q), 12e-9, 1.25, opt),
                 InvalidArgumentError);
}

TEST(FailurePaths, SingularCircuitFailsDcLoudly) {
    // Two ideal voltage sources in parallel with conflicting values: the
    // MNA system is inconsistent; DC must throw NumericalError (after the
    // gmin ladder gives up), not return garbage.
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<VoltageSource>("V1", a, kGround, 1.0);
    ckt.add<VoltageSource>("V2", a, kGround, 2.0);
    ckt.add<Resistor>("R1", a, kGround, 1e3);
    ckt.finalize();
    EXPECT_THROW(
        {
            TransientOptions opt;
            opt.tStop = 1e-9;
            opt.fixedSteps = 10;
            (void)TransientAnalysis(ckt, opt).run();
        },
        NumericalError);
}

}  // namespace
}  // namespace shtrace
