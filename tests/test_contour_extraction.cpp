// Tests for marching-squares level-set extraction and polyline distances.
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/measure/contour.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

std::vector<double> linspace(double lo, double hi, int n) {
    std::vector<double> v(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        v[static_cast<std::size_t>(i)] = lo + (hi - lo) * i / (n - 1);
    }
    return v;
}

OutputSurface sampled(const std::function<double(double, double)>& f, int n) {
    OutputSurface s(linspace(-1.0, 1.0, n), linspace(-1.0, 1.0, n));
    for (std::size_t i = 0; i < s.setupCount(); ++i) {
        for (std::size_t j = 0; j < s.holdCount(); ++j) {
            s.setValue(i, j, f(s.setupAt(i), s.holdAt(j)));
        }
    }
    return s;
}

TEST(Contour, ExtractsCircleLevelSet) {
    // f = x^2 + y^2; level 0.25 is the circle of radius 0.5.
    const OutputSurface s =
        sampled([](double x, double y) { return x * x + y * y; }, 41);
    const auto contours = extractLevelContours(s, 0.25);
    ASSERT_GE(contours.size(), 1u);
    // One closed polyline with every point at radius ~0.5.
    const ContourPolyline& circle = contours.front();
    EXPECT_GT(circle.size(), 20u);
    for (const SkewPoint& p : circle) {
        const double r = std::sqrt(p.setup * p.setup + p.hold * p.hold);
        EXPECT_NEAR(r, 0.5, 0.01);
    }
    // Closed: the chained endpoints meet.
    const SkewPoint& a = circle.front();
    const SkewPoint& b = circle.back();
    const double gap = std::hypot(a.setup - b.setup, a.hold - b.hold);
    EXPECT_LT(gap, 0.2);  // within a couple of cells
}

TEST(Contour, ExtractsStraightLine) {
    // f = x + y; the level is chosen off the grid corners (a level hitting
    // corners exactly degenerates into many zero-length segments).
    const OutputSurface s =
        sampled([](double x, double y) { return x + y; }, 21);
    const double level = 0.0131;
    const auto contours = extractLevelContours(s, level);
    ASSERT_EQ(contours.size(), 1u);
    for (const SkewPoint& p : contours.front()) {
        EXPECT_NEAR(p.setup + p.hold, level, 1e-9);
    }
    // Spans corner to corner.
    EXPECT_GT(contours.front().size(), 20u);
}

TEST(Contour, EmptyWhenLevelOutsideRange) {
    const OutputSurface s =
        sampled([](double x, double y) { return x + y; }, 11);
    EXPECT_TRUE(extractLevelContours(s, 5.0).empty());
}

TEST(Contour, SaddleProducesTwoSegmentsNotACross) {
    // f = x*y has a saddle at the origin; level +-0.1 must produce clean
    // hyperbola branches (2 polylines), not self-intersecting chains.
    const OutputSurface s =
        sampled([](double x, double y) { return x * y; }, 41);
    const auto contours = extractLevelContours(s, 0.1);
    ASSERT_GE(contours.size(), 2u);
    for (const auto& poly : contours) {
        for (const SkewPoint& p : poly) {
            EXPECT_NEAR(p.setup * p.hold, 0.1, 0.01);
        }
    }
}

TEST(Contour, InterpolationIsExactForBilinearData) {
    // On a bilinear function the edge crossings are exact.
    const OutputSurface s =
        sampled([](double x, double) { return x; }, 11);
    const auto contours = extractLevelContours(s, 0.05);
    ASSERT_EQ(contours.size(), 1u);
    for (const SkewPoint& p : contours.front()) {
        EXPECT_NEAR(p.setup, 0.05, 1e-12);
    }
}

TEST(PolylineDistance, PointToSegmentExact) {
    const ContourPolyline line{{0.0, 0.0}, {1.0, 0.0}};
    EXPECT_NEAR(distanceToPolyline({0.5, 0.3}, line), 0.3, 1e-12);
    EXPECT_NEAR(distanceToPolyline({-0.4, 0.3}, line), 0.5, 1e-12);
    EXPECT_NEAR(distanceToPolyline({2.0, 0.0}, line), 1.0, 1e-12);
    EXPECT_THROW(distanceToPolyline({0, 0}, {}), InvalidArgumentError);
}

TEST(PolylineDistance, MaxDeviationPicksWorstPoint) {
    const std::vector<ContourPolyline> contours{
        {{0.0, 0.0}, {1.0, 0.0}},
        {{0.0, 1.0}, {1.0, 1.0}},
    };
    const std::vector<SkewPoint> points{{0.5, 0.1}, {0.5, 0.45}, {0.5, 0.9}};
    EXPECT_NEAR(maxDeviation(points, contours), 0.45, 1e-12);
    EXPECT_THROW(maxDeviation(points, {}), InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
