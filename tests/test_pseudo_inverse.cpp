// Tests for the Moore-Penrose pseudo-inverse and the Euler tangent
// (paper eqs. 15-16 and 23-24).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "shtrace/linalg/pseudo_inverse.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

Matrix randomWide(std::size_t rows, std::size_t cols, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            m(i, j) = dist(rng) + (i == j ? 1.5 : 0.0);
        }
    }
    return m;
}

struct WideShape {
    std::size_t rows;
    std::size_t cols;
};

class PinvProperty : public ::testing::TestWithParam<WideShape> {};

// Moore-Penrose axioms for a full-row-rank wide A: A A^+ = I (rows), and
// A^+ A is symmetric idempotent.
TEST_P(PinvProperty, SatisfiesPenroseAxioms) {
    const auto [rows, cols] = GetParam();
    const Matrix a = randomWide(rows, cols, 42 + rows * 10 + cols);
    const Matrix pinv = pseudoInverseWide(a);
    ASSERT_EQ(pinv.rows(), cols);
    ASSERT_EQ(pinv.cols(), rows);

    const Matrix aap = a.multiply(pinv);
    EXPECT_LT(aap.maxAbsDiff(Matrix::identity(rows)), 1e-10);

    const Matrix proj = pinv.multiply(a);  // projector onto row space
    EXPECT_LT(proj.maxAbsDiff(proj.transposed()), 1e-10);
    EXPECT_LT(proj.multiply(proj).maxAbsDiff(proj), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PinvProperty,
                         ::testing::Values(WideShape{1, 2}, WideShape{1, 5},
                                           WideShape{2, 4}, WideShape{3, 7}));

TEST(Pinv, RejectsTallMatrix) {
    EXPECT_THROW(pseudoInverseWide(Matrix(3, 2)), InvalidArgumentError);
}

TEST(Pinv, ThrowsOnRankDeficientRows) {
    Matrix a(2, 3);
    a(0, 0) = 1;
    a(1, 0) = 2;  // row 1 = 2 * row 0
    a(0, 1) = 3;
    a(1, 1) = 6;
    EXPECT_THROW(pseudoInverseWide(a), NumericalError);
}

// The MPNR step dtau = -h * H^T/(H H^T) is the minimum-norm solution of
// H dtau = -h: check both properties.
TEST(MoorePenroseStep, SolvesAndIsMinimumNorm) {
    const Vector hRow{3.0, -4.0};
    const double h = 2.5;
    const Vector step = moorePenroseStep(hRow, h);
    // H * step = -h.
    EXPECT_NEAR(hRow.dot(step), -h, 1e-12);
    // Minimum-norm solutions are parallel to H^T.
    EXPECT_NEAR(step[0] * hRow[1] - step[1] * hRow[0], 0.0, 1e-12);
    // Norm equals |h| / ||H||.
    EXPECT_NEAR(step.norm2(), std::fabs(h) / 5.0, 1e-12);
}

TEST(MoorePenroseStep, ThrowsOnVanishingGradient) {
    EXPECT_THROW(moorePenroseStep(Vector{0.0, 0.0}, 1.0), NumericalError);
}

// Tangent (eq. 16): unit length and in the null space of the Jacobian row.
TEST(Tangent, UnitLengthAndOrthogonalToGradient) {
    for (const auto& [ds, dh] : std::vector<std::pair<double, double>>{
             {1.0, 0.0}, {0.0, -2.0}, {3.0, 4.0}, {-1e9, 2e9}, {1e-8, 1e-8}}) {
        const Vector t = tangentFromGradient2(ds, dh);
        EXPECT_NEAR(t.norm2(), 1.0, 1e-12);
        // Orthogonal to the gradient => H * T = 0 (null space of H).
        const double proj = (ds * t[0] + dh * t[1]) /
                            std::sqrt(ds * ds + dh * dh);
        EXPECT_NEAR(proj, 0.0, 1e-12);
    }
}

TEST(Tangent, MatchesPaperFormula) {
    const Vector t = tangentFromGradient2(3.0, 4.0);
    EXPECT_NEAR(t[0], -4.0 / 5.0, 1e-12);
    EXPECT_NEAR(t[1], 3.0 / 5.0, 1e-12);
}

TEST(Tangent, ThrowsOnZeroGradient) {
    EXPECT_THROW(tangentFromGradient2(0.0, 0.0), NumericalError);
}

// MPNR converges in ONE step for an affine h (the model problem behind the
// "2-3 iterations" behaviour on the nearly-linear latch response).
TEST(MoorePenroseStep, ExactForAffineFunction) {
    // h(tau) = a . tau + b.
    const Vector a{2.0, -1.0};
    const double b = 0.3;
    Vector tau{1.0, 1.0};
    const double h0 = a.dot(tau) + b;
    const Vector step = moorePenroseStep(a, h0);
    tau += step;
    EXPECT_NEAR(a.dot(tau) + b, 0.0, 1e-12);
}

}  // namespace
}  // namespace shtrace
