// Deterministic fault injection for the tracer-hardening tests.
//
// Two decorators, both scripted by CALL INDEX so every run of a test
// produces the identical fault sequence (no randomness, no timing):
//
//  * FaultInjectingHFunction wraps a real HFunction (the virtual hooks
//    exist for exactly this, see h_function.hpp) and rewrites selected
//    evaluations AFTER the concrete class ran its own guards -- modelling a
//    buggy or hostile h source, which is what the corrector- and
//    tracer-level defenses must survive.
//
//  * FaultInjectingDevice wraps any Device and forwards every virtual,
//    corrupting the MNA stamps or the skew-derivative right-hand side from
//    a scripted call onward -- driving the NaN through the TRANSIENT
//    engine's guards rather than past them.
//
// Header-only and test-only: production code never sees these types.
#pragma once

#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "shtrace/chz/h_function.hpp"
#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/device.hpp"

namespace shtrace::faults {

inline double quietNan() {
    return std::numeric_limits<double>::quiet_NaN();
}

/// What a faulted h evaluation reports.
enum class FaultKind {
    None,
    /// h = NaN with success still claimed: a hostile evaluation that the
    /// corrector's absorbEvaluation guard must catch (-> NonFinite).
    NanH,
    /// success = false, nonFinite = false: an ordinary transient failure
    /// (-> TransientFailed, eligible for the perturbed-predictor retry).
    TransientFail,
    /// success = false, nonFinite = true, h = NaN: exactly what the concrete
    /// HFunction reports when its own NaN/Inf guard trips (-> NonFinite,
    /// and the "non-finite transient" require() message in the scalar
    /// drivers).
    NonFiniteEval,
    /// dhds = dhdh = 0: the plateau (-> GradientVanished, eligible for the
    /// pulled-back re-seed).
    FlatGradient,
    /// h *= 1e3: the corrector cannot reach hTol and exhausts its
    /// iterations (-> CorrectorDiverged).
    AmplifyH,
    /// dhds = dhdh = 1e200: finite but overflowing gradient; the Gram
    /// product H H^T is Inf, the Moore-Penrose update collapses to zero and
    /// the corrector spins in place until its budget dies
    /// (-> CorrectorDiverged, with all reported values still finite).
    OverflowGradient,
};

/// One scripted fault: applies to evaluation calls in [firstCall, lastCall]
/// (0-based, inclusive; lastCall < 0 means "forever after").
struct FaultWindow {
    FaultKind kind = FaultKind::None;
    int firstCall = 0;
    int lastCall = -1;

    bool covers(int call) const {
        return call >= firstCall && (lastCall < 0 || call <= lastCall);
    }
};

/// HFunction decorator: forwards to the wrapped recipe (the copy carries
/// circuit/selector/tf/r/options), then rewrites the result per the fault
/// plan. One shared counter covers evaluate() and evaluateValueOnly() so a
/// test can reason about "the k-th h evaluation" regardless of entry point.
class FaultInjectingHFunction final : public HFunction {
public:
    FaultInjectingHFunction(const HFunction& inner,
                            std::vector<FaultWindow> plan)
        : HFunction(inner), plan_(std::move(plan)) {}

    /// Total evaluations seen so far (for calibrating fault windows).
    int calls() const { return calls_; }

    HEvaluation evaluate(double setupSkew, double holdSkew,
                         SimStats* stats = nullptr) const override {
        HEvaluation out = HFunction::evaluate(setupSkew, holdSkew, stats);
        corrupt(out, /*gradientKnown=*/true);
        return out;
    }

    HEvaluation evaluateValueOnly(double setupSkew, double holdSkew,
                                  SimStats* stats = nullptr) const override {
        HEvaluation out =
            HFunction::evaluateValueOnly(setupSkew, holdSkew, stats);
        corrupt(out, /*gradientKnown=*/false);
        return out;
    }

private:
    void corrupt(HEvaluation& out, bool gradientKnown) const {
        const int call = calls_++;
        for (const FaultWindow& w : plan_) {
            if (!w.covers(call)) {
                continue;
            }
            switch (w.kind) {
                case FaultKind::None:
                    break;
                case FaultKind::NanH:
                    out.h = quietNan();  // success left as reported
                    break;
                case FaultKind::TransientFail:
                    out = HEvaluation{};  // success=false, nonFinite=false
                    break;
                case FaultKind::NonFiniteEval:
                    out = HEvaluation{};
                    out.h = quietNan();
                    out.nonFinite = true;
                    break;
                case FaultKind::FlatGradient:
                    if (gradientKnown) {
                        out.dhds = 0.0;
                        out.dhdh = 0.0;
                    }
                    break;
                case FaultKind::AmplifyH:
                    out.h *= 1e3;
                    break;
                case FaultKind::OverflowGradient:
                    if (gradientKnown) {
                        out.dhds = 1e200;
                        out.dhdh = 1e200;
                    }
                    break;
            }
        }
    }

    std::vector<FaultWindow> plan_;
    mutable int calls_ = 0;
};

/// Where a FaultInjectingDevice corrupts the simulation.
enum class DeviceFaultKind {
    None,
    /// addSkewDerivative adds NaN into the right-hand side: the state
    /// trajectory stays clean but the co-integrated sensitivities go NaN
    /// (the transient engine's sensitivity guard must trip).
    SensitivityNan,
    /// eval stamps a NaN current into its node's KCL row: Newton cannot
    /// converge and the step fails as an ordinary transient failure.
    ResidualNan,
};

/// Device decorator: owns the wrapped device and forwards every virtual.
/// The fault fires from the given 0-based call of the corrupted entry point
/// onward (eval calls for ResidualNan, addSkewDerivative calls for
/// SensitivityNan); counting per entry point keeps the scripts independent
/// of how often the other hooks run.
class FaultInjectingDevice final : public Device {
public:
    FaultInjectingDevice(std::unique_ptr<Device> inner, NodeId node,
                         DeviceFaultKind kind, int firstCall)
        : Device("fault(" + inner->name() + ")"),
          inner_(std::move(inner)),
          node_(node),
          kind_(kind),
          firstCall_(firstCall) {}

    int evalCalls() const { return evalCalls_; }
    int skewCalls() const { return skewCalls_; }

    int branchCount() const override { return inner_->branchCount(); }
    void allocateBranches(BranchAllocator& alloc) override {
        inner_->allocateBranches(alloc);
    }

    void eval(const EvalContext& ctx, Assembler& out) const override {
        inner_->eval(ctx, out);
        if (kind_ == DeviceFaultKind::ResidualNan &&
            evalCalls_++ >= firstCall_) {
            out.addCurrent(node_, quietNan());
        }
    }

    void evalResidual(const EvalContext& ctx, Assembler& out) const override {
        // Counted as an eval: chord-Newton residual passes must see the
        // same corruption as full assembly passes.
        inner_->evalResidual(ctx, out);
        if (kind_ == DeviceFaultKind::ResidualNan &&
            evalCalls_++ >= firstCall_) {
            out.addCurrent(node_, quietNan());
        }
    }

    void describe(std::ostream& os) const override {
        // The store hashes this text; a faulted device must never alias its
        // clean twin in a cache.
        os << "fault_injecting kind=" << static_cast<int>(kind_)
           << " first=" << firstCall_ << " inner={";
        inner_->describe(os);
        os << "}";
    }

    void addSkewDerivative(double t, SkewParam p,
                           Vector& rhs) const override {
        inner_->addSkewDerivative(t, p, rhs);
        if (kind_ == DeviceFaultKind::SensitivityNan &&
            skewCalls_++ >= firstCall_ && !node_.isGround()) {
            rhs[static_cast<std::size_t>(node_.index)] = quietNan();
        }
    }

    void addAcStimulus(Vector& rhs) const override {
        inner_->addAcStimulus(rhs);
    }

    void breakpoints(double t0, double t1,
                     std::vector<double>& out) const override {
        inner_->breakpoints(t0, t1, out);
    }

private:
    std::unique_ptr<Device> inner_;
    NodeId node_;
    DeviceFaultKind kind_;
    int firstCall_;
    mutable int evalCalls_ = 0;
    mutable int skewCalls_ = 0;
};

}  // namespace shtrace::faults
