// Tests for the Gear2 (BDF2) integrator: order of accuracy, A-stability
// behaviour on a stiff transition, sensitivity consistency, guards.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "shtrace/analysis/sensitivity.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"
#include "shtrace/waveform/pulse.hpp"

namespace shtrace {
namespace {

TEST(Gear2, SecondOrderOnRcDecay) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const double r = 1e3;
    const double c = 1e-12;
    ckt.add<Resistor>("R1", a, kGround, r);
    ckt.add<Capacitor>("C1", a, kGround, c);
    ckt.finalize();
    const Vector sel = ckt.selectorFor(a);
    auto errorWith = [&](int steps) {
        TransientOptions opt;
        opt.tStop = 2e-9;
        opt.method = IntegrationMethod::Gear2;
        opt.fixedSteps = steps;
        Vector x0(1);
        x0[0] = 2.0;
        opt.initialCondition = x0;
        opt.storeStates = false;
        const TransientResult tr = TransientAnalysis(ckt, opt).run();
        EXPECT_TRUE(tr.success);
        const double analytic = 2.0 * std::exp(-2e-9 / (r * c));
        return std::fabs(sel.dot(tr.finalState) - analytic);
    };
    const double ratio = errorWith(100) / errorWith(200);
    // Second order: halving dt shrinks the error ~4x (the BE bootstrap
    // step costs a little, hence the loose lower bound).
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
}

TEST(Gear2, NoTrapezoidalRingingOnStiffStep) {
    // Stiff parasitic pole: tau = 1 ps on a 20 ps grid. TRAP rings with
    // slowly-damped alternating error after the step; BDF2's strong
    // damping kills it. Measure the oscillation of the error signal after
    // the input step has settled.
    const auto oscillation = [](IntegrationMethod method) {
        Circuit ckt;
        const NodeId in = ckt.node("in");
        const NodeId out = ckt.node("out");
        PulseWaveform::Spec step;
        step.v1 = 1.0;
        step.delay = 100e-12;
        step.riseTime = 1e-15;  // near-ideal step
        step.width = 1.0;
        step.fallTime = 1e-15;
        step.shape = EdgeShape::Linear;
        ckt.add<VoltageSource>("V1", in, kGround,
                               std::make_shared<PulseWaveform>(step));
        ckt.add<Resistor>("R1", in, out, 100.0);
        ckt.add<Capacitor>("C1", out, kGround, 10e-15);  // tau = 1 ps
        ckt.finalize();
        TransientOptions opt;
        opt.tStop = 1e-9;
        opt.method = method;
        opt.fixedSteps = 50;  // 20 ps steps: tau is under-resolved
        opt.initialCondition = Vector(ckt.systemSize());
        const TransientResult tr = TransientAnalysis(ckt, opt).run();
        EXPECT_TRUE(tr.success);
        const Vector sel = ckt.selectorFor(out);
        // Sum of |sample-to-sample| changes well after the step: the
        // settled solution is constant, so this measures ringing.
        double wiggle = 0.0;
        const std::vector<double> sig = tr.signal(sel);
        for (std::size_t i = 1; i < sig.size(); ++i) {
            if (tr.times[i] > 400e-12) {
                wiggle += std::fabs(sig[i] - sig[i - 1]);
            }
        }
        return wiggle;
    };
    const double trapWiggle = oscillation(IntegrationMethod::Trapezoidal);
    const double gearWiggle = oscillation(IntegrationMethod::Gear2);
    EXPECT_LT(gearWiggle, 0.2 * trapWiggle + 1e-12);
}

TEST(Gear2, SensitivityMatchesFiniteDifference) {
    DataPulse::Spec spec;
    spec.v0 = 0.0;
    spec.v1 = 2.5;
    spec.activeEdgeTime = 2e-9;
    spec.transitionTime = 0.1e-9;
    auto data = std::make_shared<DataPulse>(spec);
    data->setSkews(300e-12, 200e-12);
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("Vd", in, kGround, data);
    ckt.add<Resistor>("R1", in, out, 1e3);
    ckt.add<Capacitor>("C1", out, kGround, 0.2e-12);
    ckt.finalize();
    const Vector sel = ckt.selectorFor(out);

    TransientOptions opt;
    opt.tStop = 2.2e-9;  // mid trailing edge
    opt.method = IntegrationMethod::Gear2;
    opt.fixedSteps = 1100;
    opt.initialCondition = Vector(ckt.systemSize());
    const SkewEvaluation analytic =
        evaluateWithSensitivities(ckt, *data, sel, 300e-12, 200e-12, opt);
    const SkewEvaluation fd = evaluateWithFiniteDifferences(
        ckt, *data, sel, 300e-12, 200e-12, opt, 1e-14);
    ASSERT_TRUE(analytic.success);
    ASSERT_TRUE(fd.success);
    const double scale = 2.5 / 0.1e-9;
    EXPECT_NEAR(analytic.dOutputDSetup, fd.dOutputDSetup, 2e-4 * scale);
    EXPECT_NEAR(analytic.dOutputDHold, fd.dOutputDHold, 2e-4 * scale);
}

TEST(Gear2, WorksOnTspcRegister) {
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(2e-9, 2e-9);
    TransientOptions opt;
    opt.tStop = reg.activeEdgeMidpoint() + 2e-9;
    opt.method = IntegrationMethod::Gear2;
    opt.fixedSteps = static_cast<int>(opt.tStop / 10e-12);
    const TransientResult tr = TransientAnalysis(reg.circuit, opt).run();
    ASSERT_TRUE(tr.success);
    const Vector sel = reg.circuit.selectorFor(reg.q);
    EXPECT_NEAR(sel.dot(tr.finalState), reg.qFinal, 0.1);
}

TEST(Gear2, RejectsAdaptiveMode) {
    Circuit ckt;
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1.0);
    ckt.finalize();
    TransientOptions opt;
    opt.tStop = 1e-9;
    opt.method = IntegrationMethod::Gear2;
    opt.adaptive = true;
    EXPECT_THROW(TransientAnalysis(ckt, opt), InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
