// Tests for the Moore-Penrose Newton corrector on the real TSPC h-function
// (paper Section IIIC). Shared fixture: one criterion computation reused by
// all tests (it is the expensive part).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/mpnr.hpp"
#include "shtrace/chz/problem.hpp"

namespace shtrace {
namespace {

class MpnrOnTspc : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        fixture_ = new RegisterFixture(buildTspcRegister());
        problem_ = new CharacterizationProblem(*fixture_);
    }
    static void TearDownTestSuite() {
        delete problem_;
        delete fixture_;
        problem_ = nullptr;
        fixture_ = nullptr;
    }

    static RegisterFixture* fixture_;
    static CharacterizationProblem* problem_;
};

RegisterFixture* MpnrOnTspc::fixture_ = nullptr;
CharacterizationProblem* MpnrOnTspc::problem_ = nullptr;

TEST_F(MpnrOnTspc, ConvergesFromNearbyGuessToCurvePoint) {
    // Start near the setup-time knee found during development (~204 ps at
    // generous hold): MPNR must land on the curve with |h| below tolerance.
    const MpnrResult r =
        solveMpnr(problem_->h(), SkewPoint{230e-12, 300e-12});
    ASSERT_TRUE(r.converged);
    EXPECT_LT(std::fabs(r.h), MpnrOptions{}.hTol);
    // The gradient at the solution is available for the Euler tangent.
    EXPECT_GT(std::hypot(r.dhds, r.dhdh), 0.0);
}

TEST_F(MpnrOnTspc, SolutionIsNearTheGuessNotAcrossTheCurve) {
    // MPNR converges toward the nearest curve point (paper Fig. 4): from a
    // guess 30 ps off the curve the solution must not jump hundreds of ps.
    const SkewPoint guess{230e-12, 300e-12};
    const MpnrResult r = solveMpnr(problem_->h(), guess);
    ASSERT_TRUE(r.converged);
    const double dist = std::hypot(r.point.setup - guess.setup,
                                   r.point.hold - guess.hold);
    EXPECT_LT(dist, 100e-12);
}

TEST_F(MpnrOnTspc, ResidualRefinedToPrescribedAccuracy) {
    // Tighten hTol: the "exact to any prescribed accuracy" property of
    // Newton-refined points (Sec. IV: 5 digits).
    MpnrOptions tight;
    tight.hTol = 1e-8;
    tight.maxIterations = 25;
    const MpnrResult r =
        solveMpnr(problem_->h(), SkewPoint{210e-12, 280e-12}, tight);
    ASSERT_TRUE(r.converged);
    EXPECT_LT(std::fabs(r.h), 1e-8);
}

TEST_F(MpnrOnTspc, ReportsVanishingGradientOnThePlateau) {
    // Far out on the plateau (both skews huge) h is flat: no MPNR
    // direction exists and the solver must say so rather than loop.
    const MpnrResult r =
        solveMpnr(problem_->h(), SkewPoint{1.4e-9, 1.4e-9});
    EXPECT_FALSE(r.converged);
    EXPECT_TRUE(r.gradientVanished);
}

TEST_F(MpnrOnTspc, IterationCountIsSmallNearTheCurve) {
    // Seeded close to the curve (as the Euler predictor does), 2-3
    // iterations are typical per the paper.
    const MpnrResult far =
        solveMpnr(problem_->h(), SkewPoint{230e-12, 300e-12});
    ASSERT_TRUE(far.converged);
    const SkewPoint near{far.point.setup + 2e-12, far.point.hold + 2e-12};
    const MpnrResult r = solveMpnr(problem_->h(), near);
    ASSERT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 4);
}

TEST_F(MpnrOnTspc, StatsCountMpnrIterations) {
    SimStats stats;
    (void)solveMpnr(problem_->h(), SkewPoint{230e-12, 300e-12}, {}, &stats);
    EXPECT_GT(stats.mpnrIterations, 0u);
    EXPECT_EQ(stats.mpnrIterations, stats.hEvaluations);
}

TEST_F(MpnrOnTspc, MaxStepClampPreventsWildJumps) {
    MpnrOptions clamped;
    clamped.maxStep = 5e-12;
    clamped.maxIterations = 3;  // not enough to travel far
    const MpnrResult r =
        solveMpnr(problem_->h(), SkewPoint{300e-12, 400e-12}, clamped);
    // From this far out the solver cannot converge in 3 clamped steps...
    EXPECT_FALSE(r.converged);
    // ...and must have moved at most 3 * maxStep.
    const double moved = std::hypot(r.point.setup - 300e-12,
                                    r.point.hold - 400e-12);
    EXPECT_LE(moved, 3 * 5e-12 + 1e-15);
}

}  // namespace
}  // namespace shtrace
