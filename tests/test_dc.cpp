// Tests for the DC operating-point solver (Newton + gmin continuation).
#include <gtest/gtest.h>

#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/cells/mos_library.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/diode.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

double nodeV(const DcResult& dc, const Circuit& ckt, const char* name) {
    return dc.x[static_cast<std::size_t>(ckt.findNode(name).index)];
}

TEST(DcOp, LinearDivider) {
    Circuit ckt;
    ckt.add<VoltageSource>("V1", ckt.node("in"), kGround, 10.0);
    ckt.add<Resistor>("R1", ckt.node("in"), ckt.node("mid"), 3e3);
    ckt.add<Resistor>("R2", ckt.node("mid"), kGround, 1e3);
    ckt.finalize();
    const DcResult dc = solveDcOperatingPoint(ckt);
    ASSERT_TRUE(dc.converged);
    // Tolerance reflects the retained gmin floor (1e-9 S leak).
    EXPECT_NEAR(nodeV(dc, ckt, "mid"), 2.5, 1e-5);
    EXPECT_FALSE(dc.usedContinuation);
}

TEST(DcOp, SourceBranchCurrentIsCorrect) {
    Circuit ckt;
    auto& v1 = ckt.add<VoltageSource>("V1", ckt.node("a"), kGround, 5.0);
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1e3);
    ckt.finalize();
    const DcResult dc = solveDcOperatingPoint(ckt);
    ASSERT_TRUE(dc.converged);
    // KCL at a: i_branch + v/R = 0 -> branch current = -5 mA.
    EXPECT_NEAR(dc.x[static_cast<std::size_t>(v1.branchRow())], -5e-3, 2e-8);
}

TEST(DcOp, DiodeResistorBias) {
    Circuit ckt;
    ckt.add<VoltageSource>("V1", ckt.node("in"), kGround, 5.0);
    ckt.add<Resistor>("R1", ckt.node("in"), ckt.node("d"), 1e3);
    ckt.add<Diode>("D1", ckt.node("d"), kGround, DiodeParams{});
    ckt.finalize();
    const DcResult dc = solveDcOperatingPoint(ckt);
    ASSERT_TRUE(dc.converged);
    const double vd = nodeV(dc, ckt, "d");
    EXPECT_GT(vd, 0.5);
    EXPECT_LT(vd, 0.8);
    // Consistency: resistor current equals diode current.
    double iD = 0.0;
    double g = 0.0;
    Diode::currentAndConductance(DiodeParams{}, vd, iD, g);
    EXPECT_NEAR((5.0 - vd) / 1e3, iD, 1e-6);
}

TEST(DcOp, CmosInverterRails) {
    const ProcessCorner corner = ProcessCorner::typical();
    for (const double vin : {0.0, corner.vdd}) {
        Circuit ckt;
        const NodeId vdd = ckt.node("vdd");
        const NodeId in = ckt.node("in");
        const NodeId out = ckt.node("out");
        ckt.add<VoltageSource>("Vdd", vdd, kGround, corner.vdd);
        ckt.add<VoltageSource>("Vin", in, kGround, vin);
        ckt.add<Mosfet>("MP", out, in, vdd, vdd, makePmos(corner, 1.2e-6, 0.25e-6));
        ckt.add<Mosfet>("MN", out, in, kGround, kGround,
                        makeNmos(corner, 0.6e-6, 0.25e-6));
        ckt.finalize();
        const DcResult dc = solveDcOperatingPoint(ckt);
        ASSERT_TRUE(dc.converged) << "vin=" << vin;
        const double expected = vin == 0.0 ? corner.vdd : 0.0;
        EXPECT_NEAR(nodeV(dc, ckt, "out"), expected, 0.02) << "vin=" << vin;
    }
}

TEST(DcOp, FloatingNodeSettlesToZeroThroughGmin) {
    Circuit ckt;
    // A node connected only through a capacitor: no DC path.
    ckt.add<VoltageSource>("V1", ckt.node("a"), kGround, 3.0);
    ckt.add<Capacitor>("C1", ckt.node("a"), ckt.node("float"), 1e-12);
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1e3);
    ckt.finalize();
    const DcResult dc = solveDcOperatingPoint(ckt);
    ASSERT_TRUE(dc.converged);
    EXPECT_NEAR(nodeV(dc, ckt, "float"), 0.0, 1e-9);
}

TEST(DcOp, TspcRegisterOperatingPoint) {
    // A realistic latch circuit: must converge (directly or via the ladder)
    // with all node voltages within the rails.
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(1e-9, 1e-9);
    const DcResult dc = solveDcOperatingPoint(reg.circuit);
    ASSERT_TRUE(dc.converged);
    for (int i = 0; i < reg.circuit.nodeCount(); ++i) {
        const double v = dc.x[static_cast<std::size_t>(i)];
        EXPECT_GT(v, -0.1) << "node " << i;
        EXPECT_LT(v, reg.vdd + 0.1) << "node " << i;
    }
}

TEST(DcOp, StatsAccumulate) {
    Circuit ckt;
    ckt.add<VoltageSource>("V1", ckt.node("a"), kGround, 1.0);
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1e3);
    ckt.finalize();
    SimStats stats;
    (void)solveDcOperatingPoint(ckt, {}, &stats);
    EXPECT_GT(stats.newtonIterations, 0u);
    EXPECT_GT(stats.luFactorizations, 0u);
}

TEST(DcOp, RequiresFinalizedCircuit) {
    Circuit ckt;
    ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1.0);
    EXPECT_THROW(solveDcOperatingPoint(ckt), InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
