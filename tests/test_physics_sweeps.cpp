// Cross-cutting physics property sweeps: characterized quantities must
// track device sizing, load and recipe choices the way circuit theory
// says they should. These catch sign errors and unit slips that unit
// tests of individual modules cannot.
#include <gtest/gtest.h>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/independent.hpp"
#include "shtrace/chz/problem.hpp"

namespace shtrace {
namespace {

struct Characterized {
    double clockToQ = 0.0;
    double setup = 0.0;
    double hold = 0.0;
};

Characterized characterize(const TspcOptions& cellOpt,
                           SimulationRecipe recipe = {}) {
    const RegisterFixture reg = buildTspcRegister(cellOpt);
    const CharacterizationProblem problem(reg, {}, recipe);
    const IndependentResult setup = characterizeByNewton(
        problem.h(), SkewAxis::Setup, problem.passSign());
    const IndependentResult hold = characterizeByNewton(
        problem.h(), SkewAxis::Hold, problem.passSign());
    EXPECT_TRUE(setup.converged);
    EXPECT_TRUE(hold.converged);
    return {problem.characteristicClockToQ(), setup.skew, hold.skew};
}

TEST(PhysicsSweeps, HeavierLoadSlowsClockToQButNotSetup) {
    TspcOptions light;
    light.outputLoadCapacitance = 10e-15;
    TspcOptions heavy;
    heavy.outputLoadCapacitance = 60e-15;
    const Characterized a = characterize(light);
    const Characterized b = characterize(heavy);
    // The load sits on Q, after the latching nodes: clock-to-Q grows...
    EXPECT_GT(b.clockToQ, a.clockToQ + 50e-12);
    // ...but the setup race (stage-1 precharge) barely moves.
    EXPECT_NEAR(b.setup, a.setup, 25e-12);
}

TEST(PhysicsSweeps, WiderPmosShortensSetupTime) {
    // The TSPC setup race charges x1 through the PMOS stack: doubling the
    // PMOS width must shorten the setup time.
    TspcOptions narrow;
    narrow.wp = 0.9e-6;
    TspcOptions wide;
    wide.wp = 2.4e-6;
    const Characterized a = characterize(narrow);
    const Characterized b = characterize(wide);
    EXPECT_LT(b.setup, a.setup - 10e-12);
}

TEST(PhysicsSweeps, SlowerDataEdgeIncreasesSetupTime) {
    // A slower data transition reaches its 50% point later relative to its
    // start: the register needs more setup skew.
    TspcOptions fast;
    fast.dataTransitionTime = 0.05e-9;
    TspcOptions slow;
    slow.dataTransitionTime = 0.4e-9;
    const Characterized a = characterize(fast);
    const Characterized b = characterize(slow);
    EXPECT_GT(b.setup, a.setup + 10e-12);
}

class RecipeConsistency
    : public ::testing::TestWithParam<IntegrationMethod> {};

// The characterized setup time is a property of the CIRCUIT: any accurate
// integration recipe must agree to within its grid error.
TEST_P(RecipeConsistency, SetupTimeIndependentOfIntegrator) {
    SimulationRecipe reference;  // TRAP at 10 ps (the default)
    SimulationRecipe variant;
    variant.method = GetParam();
    variant.dtNominal = 5e-12;
    const Characterized a = characterize(TspcOptions{}, reference);
    const Characterized b = characterize(TspcOptions{}, variant);
    // Second-order methods sit within a few ps of the reference; BE's
    // first-order truncation error at 5 ps steps is itself worth several
    // ps of skew (see ABL2), hence the wider band.
    const double tol =
        GetParam() == IntegrationMethod::BackwardEuler ? 10e-12 : 3e-12;
    EXPECT_NEAR(b.setup, a.setup, tol);
    EXPECT_NEAR(b.hold, a.hold, tol);
}

INSTANTIATE_TEST_SUITE_P(Methods, RecipeConsistency,
                         ::testing::Values(IntegrationMethod::Trapezoidal,
                                           IntegrationMethod::Gear2,
                                           IntegrationMethod::BackwardEuler));

TEST(PhysicsSweeps, FinerGridConvergesToTheSameSetupTime) {
    SimulationRecipe coarse;
    coarse.dtNominal = 20e-12;
    SimulationRecipe fine;
    fine.dtNominal = 5e-12;
    SimulationRecipe finest;
    finest.dtNominal = 2.5e-12;
    const double a = characterize(TspcOptions{}, coarse).setup;
    const double b = characterize(TspcOptions{}, fine).setup;
    const double c = characterize(TspcOptions{}, finest).setup;
    // Successive refinements contract (2nd-order recipe).
    EXPECT_LT(std::fabs(c - b), std::fabs(b - a) + 0.2e-12);
    EXPECT_NEAR(b, c, 1e-12);
}

}  // namespace
}  // namespace shtrace
