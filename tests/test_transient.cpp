// Tests for transient analysis: analytic RC/RL references, integrator
// accuracy orders, fixed vs adaptive grids, breakpoints, failure paths.
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/analysis/transient.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/inductor.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"
#include "shtrace/waveform/pulse.hpp"

namespace shtrace {
namespace {

/// RC lowpass driven by a step: v(t) = V * (1 - exp(-t/RC)).
struct RcFixture {
    Circuit ckt;
    NodeId out;
    double r = 1e3;
    double c = 1e-12;
    double v = 2.0;

    RcFixture() {
        const NodeId in = ckt.node("in");
        out = ckt.node("out");
        PulseWaveform::Spec step;
        step.v0 = 0.0;
        step.v1 = v;
        step.delay = 0.0;
        step.riseTime = 1e-15;  // effectively a step just after t=0
        step.width = 1.0;
        step.fallTime = 1e-15;
        step.shape = EdgeShape::Linear;
        ckt.add<VoltageSource>("V1", in, kGround,
                               std::make_shared<PulseWaveform>(step));
        ckt.add<Resistor>("R1", in, out, r);
        ckt.add<Capacitor>("C1", out, kGround, c);
        ckt.finalize();
    }

    double analytic(double t) const { return v * (1.0 - std::exp(-t / (r * c))); }
};

TEST(Transient, RcStepMatchesAnalytic) {
    RcFixture fx;
    TransientOptions opt;
    opt.tStop = 5e-9;  // 5 time constants
    opt.fixedSteps = 2000;
    opt.initialCondition = Vector(fx.ckt.systemSize());  // start discharged
    const TransientResult tr = TransientAnalysis(fx.ckt, opt).run();
    ASSERT_TRUE(tr.success);
    const Vector sel = fx.ckt.selectorFor(fx.out);
    for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
        EXPECT_NEAR(tr.valueAt(sel, t), fx.analytic(t), 5e-3) << "t=" << t;
    }
    EXPECT_NEAR(sel.dot(tr.finalState), fx.analytic(5e-9), 5e-3);
}

TEST(Transient, StartsFromDcWhenNoInitialCondition) {
    // DC at t=0: the pulse has not started (value 0) -> same trajectory.
    RcFixture fx;
    TransientOptions opt;
    opt.tStop = 2e-9;
    opt.fixedSteps = 1000;
    const TransientResult tr = TransientAnalysis(fx.ckt, opt).run();
    ASSERT_TRUE(tr.success);
    const Vector sel = fx.ckt.selectorFor(fx.out);
    EXPECT_NEAR(tr.valueAt(sel, 1e-9), fx.analytic(1e-9), 5e-3);
}

// Convergence-order property: TRAP error shrinks ~4x when steps double;
// BE error shrinks ~2x.
class IntegratorOrder
    : public ::testing::TestWithParam<IntegrationMethod> {};

TEST_P(IntegratorOrder, ErrorScalesWithExpectedOrder) {
    const IntegrationMethod method = GetParam();
    // Source-free RC discharge: v(t) = v0 exp(-t/RC). No input edges, so
    // the observed error is purely the integrator's truncation error.
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const double r = 1e3;
    const double c = 1e-12;
    ckt.add<Resistor>("R1", a, kGround, r);
    ckt.add<Capacitor>("C1", a, kGround, c);
    ckt.finalize();
    const Vector sel = ckt.selectorFor(a);
    auto errorWith = [&](int steps) {
        TransientOptions opt;
        opt.tStop = 2e-9;
        opt.method = method;
        opt.fixedSteps = steps;
        Vector x0(1);
        x0[0] = 2.0;
        opt.initialCondition = x0;
        opt.storeStates = false;
        const TransientResult tr = TransientAnalysis(ckt, opt).run();
        EXPECT_TRUE(tr.success);
        const double analytic = 2.0 * std::exp(-2e-9 / (r * c));
        return std::fabs(sel.dot(tr.finalState) - analytic);
    };
    const double e1 = errorWith(100);
    const double e2 = errorWith(200);
    const double ratio = e1 / e2;
    if (method == IntegrationMethod::Trapezoidal) {
        EXPECT_GT(ratio, 3.0) << "TRAP should be ~2nd order (ratio ~4)";
    } else {
        EXPECT_GT(ratio, 1.7) << "BE should be ~1st order (ratio ~2)";
        EXPECT_LT(ratio, 2.6);
    }
}

INSTANTIATE_TEST_SUITE_P(Methods, IntegratorOrder,
                         ::testing::Values(IntegrationMethod::BackwardEuler,
                                           IntegrationMethod::Trapezoidal));

TEST(Transient, RlcRingingFrequencyIsCorrect) {
    // Series R-L-C from a charged capacitor: underdamped oscillation at
    // f ~ 1/(2 pi sqrt(LC)).
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const NodeId b = ckt.node("b");
    const double l = 10e-9;
    const double c = 1e-12;
    ckt.add<Capacitor>("C1", a, kGround, c);
    ckt.add<Inductor>("L1", a, b, l);
    ckt.add<Resistor>("R1", b, kGround, 5.0);  // lightly damped
    ckt.finalize();

    TransientOptions opt;
    opt.tStop = 3e-9;
    opt.fixedSteps = 6000;
    Vector x0(ckt.systemSize());
    x0[static_cast<std::size_t>(a.index)] = 1.0;  // charged cap
    opt.initialCondition = x0;
    const TransientResult tr = TransientAnalysis(ckt, opt).run();
    ASSERT_TRUE(tr.success);

    // Find the first two downward zero crossings of v(a).
    const Vector sel = ckt.selectorFor(a);
    const std::vector<double> sig = tr.signal(sel);
    double firstDown = -1.0;
    double period = -1.0;
    for (std::size_t i = 1; i < sig.size(); ++i) {
        if (sig[i - 1] > 0.0 && sig[i] <= 0.0) {
            const double frac = sig[i - 1] / (sig[i - 1] - sig[i]);
            const double t =
                tr.times[i - 1] + frac * (tr.times[i] - tr.times[i - 1]);
            if (firstDown < 0.0) {
                firstDown = t;
            } else {
                period = t - firstDown;
                break;
            }
        }
    }
    ASSERT_GT(period, 0.0);
    const double expected = 2.0 * M_PI * std::sqrt(l * c);
    EXPECT_NEAR(period, expected, 0.03 * expected);
}

TEST(Transient, AdaptiveAgreesWithFixedGrid) {
    RcFixture fx;
    const Vector sel = fx.ckt.selectorFor(fx.out);

    TransientOptions fixed;
    fixed.tStop = 3e-9;
    fixed.fixedSteps = 3000;
    fixed.initialCondition = Vector(fx.ckt.systemSize());
    const TransientResult a = TransientAnalysis(fx.ckt, fixed).run();

    TransientOptions adaptive = fixed;
    adaptive.adaptive = true;
    adaptive.dtInit = 1e-13;
    adaptive.lteRelTol = 1e-4;
    adaptive.lteAbsTol = 1e-6;
    SimStats stats;
    const TransientResult b = TransientAnalysis(fx.ckt, adaptive).run(&stats);

    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    EXPECT_NEAR(sel.dot(a.finalState), sel.dot(b.finalState), 2e-3);
    // The adaptive run should use far fewer steps than the fine fixed grid.
    EXPECT_LT(stats.timeSteps, 2000u);
}

TEST(Transient, AdaptiveLandsOnBreakpoints) {
    RcFixture fx;  // pulse corners at ~0, 1s... use a pulse inside window
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    PulseWaveform::Spec spec;
    spec.v1 = 1.0;
    spec.delay = 1e-9;
    spec.riseTime = 0.1e-9;
    spec.width = 0.5e-9;
    spec.fallTime = 0.1e-9;
    ckt.add<VoltageSource>("V1", in, kGround,
                           std::make_shared<PulseWaveform>(spec));
    ckt.add<Resistor>("R1", in, out, 1e3);
    ckt.add<Capacitor>("C1", out, kGround, 1e-12);
    ckt.finalize();

    TransientOptions opt;
    opt.tStop = 3e-9;
    opt.adaptive = true;
    const TransientResult tr = TransientAnalysis(ckt, opt).run();
    ASSERT_TRUE(tr.success);
    // Every waveform corner must be an exact time point.
    for (double corner : {1e-9, 1.1e-9, 1.6e-9, 1.7e-9}) {
        bool hit = false;
        for (double t : tr.times) {
            if (std::fabs(t - corner) < 1e-18) {
                hit = true;
                break;
            }
        }
        EXPECT_TRUE(hit) << "missing breakpoint " << corner;
    }
    // And the final time is exactly tStop.
    EXPECT_DOUBLE_EQ(tr.times.back(), 3e-9);
}

TEST(Transient, FixedGridEndsExactlyAtTstop) {
    RcFixture fx;
    TransientOptions opt;
    opt.tStop = 1.7e-9;
    opt.fixedSteps = 333;
    opt.initialCondition = Vector(fx.ckt.systemSize());
    const TransientResult tr = TransientAnalysis(fx.ckt, opt).run();
    ASSERT_TRUE(tr.success);
    EXPECT_DOUBLE_EQ(tr.times.back(), 1.7e-9);
    EXPECT_EQ(tr.times.size(), 334u);  // t0 + 333 steps
}

TEST(Transient, RejectsBadOptions) {
    RcFixture fx;
    TransientOptions opt;
    opt.tStop = 0.0;
    EXPECT_THROW(TransientAnalysis(fx.ckt, opt), InvalidArgumentError);
    opt.tStop = 1e-9;
    opt.initialCondition = Vector(7);  // wrong size (system has 3 unknowns)
    EXPECT_THROW(TransientAnalysis(fx.ckt, opt).run(), InvalidArgumentError);
}

TEST(Transient, StoreStatesOffKeepsOnlyFinalState) {
    RcFixture fx;
    TransientOptions opt;
    opt.tStop = 1e-9;
    opt.fixedSteps = 100;
    opt.storeStates = false;
    const TransientResult tr = TransientAnalysis(fx.ckt, opt).run();
    ASSERT_TRUE(tr.success);
    EXPECT_TRUE(tr.times.empty());
    EXPECT_EQ(tr.finalState.size(), fx.ckt.systemSize());
}

TEST(Transient, StatsCountSteps) {
    RcFixture fx;
    TransientOptions opt;
    opt.tStop = 1e-9;
    opt.fixedSteps = 50;
    SimStats stats;
    (void)TransientAnalysis(fx.ckt, opt).run(&stats);
    EXPECT_EQ(stats.timeSteps, 50u);
    EXPECT_EQ(stats.transientSolves, 1u);
}

}  // namespace
}  // namespace shtrace
