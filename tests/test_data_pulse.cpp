// Tests for the skew-parameterized data waveform u_d(t, tau_s, tau_h) and
// its analytic derivatives z_s, z_h -- the inputs to the sensitivity
// recurrences (paper eqs. 7-13).
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/util/error.hpp"
#include "shtrace/waveform/data_pulse.hpp"

namespace shtrace {
namespace {

DataPulse::Spec paperSpec(EdgeShape shape = EdgeShape::Smoothstep) {
    DataPulse::Spec s;
    s.v0 = 0.0;
    s.v1 = 2.5;
    s.activeEdgeTime = 11.05e-9;
    s.transitionTime = 0.1e-9;
    s.shape = shape;
    return s;
}

TEST(DataPulse, EdgeMidpointsFollowSkews) {
    DataPulse w(paperSpec());
    w.setSkews(200e-12, 150e-12);
    EXPECT_NEAR(w.leadingEdgeMidpoint(), 11.05e-9 - 200e-12, 1e-18);
    EXPECT_NEAR(w.trailingEdgeMidpoint(), 11.05e-9 + 150e-12, 1e-18);
    // 50% levels exactly at the midpoints.
    EXPECT_NEAR(w.value(w.leadingEdgeMidpoint()), 1.25, 1e-9);
    EXPECT_NEAR(w.value(w.trailingEdgeMidpoint()), 1.25, 1e-9);
}

TEST(DataPulse, PulseLevelsAwayFromEdges) {
    DataPulse w(paperSpec());
    w.setSkews(300e-12, 300e-12);
    EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
    EXPECT_DOUBLE_EQ(w.value(11.05e-9), 2.5);  // centered on the edge
    EXPECT_DOUBLE_EQ(w.value(13e-9), 0.0);
}

TEST(DataPulse, FallingDataInvertsLevels) {
    DataPulse::Spec s = paperSpec();
    s.v0 = 2.5;
    s.v1 = 0.0;
    DataPulse w(s);
    w.setSkews(300e-12, 300e-12);
    EXPECT_DOUBLE_EQ(w.value(0.0), 2.5);
    EXPECT_DOUBLE_EQ(w.value(11.05e-9), 0.0);
    EXPECT_DOUBLE_EQ(w.value(13e-9), 2.5);
}

struct DerivCase {
    EdgeShape shape;
    double setup;
    double hold;
};

class DataPulseDerivative : public ::testing::TestWithParam<DerivCase> {};

// Property: the analytic z_s/z_h match central finite differences in the
// skews, at time points covering both edges and the plateau.
TEST_P(DataPulseDerivative, MatchesFiniteDifference) {
    const auto& [shape, setup, hold] = GetParam();
    DataPulse w(paperSpec(shape));
    const double delta = 1e-15;
    const double tEdge = 11.05e-9;
    for (double t :
         {tEdge - setup - 40e-12, tEdge - setup, tEdge - setup + 30e-12,
          tEdge, tEdge + hold - 30e-12, tEdge + hold, tEdge + hold + 40e-12}) {
        w.setSkews(setup + delta, hold);
        const double vsPlus = w.value(t);
        w.setSkews(setup - delta, hold);
        const double vsMinus = w.value(t);
        w.setSkews(setup, hold + delta);
        const double vhPlus = w.value(t);
        w.setSkews(setup, hold - delta);
        const double vhMinus = w.value(t);
        w.setSkews(setup, hold);

        const double fdS = (vsPlus - vsMinus) / (2.0 * delta);
        const double fdH = (vhPlus - vhMinus) / (2.0 * delta);
        EXPECT_NEAR(w.skewDerivative(t, SkewParam::Setup), fdS,
                    1e-4 * 2.5 / 0.1e-9)
            << "t=" << t;
        EXPECT_NEAR(w.skewDerivative(t, SkewParam::Hold), fdH,
                    1e-4 * 2.5 / 0.1e-9)
            << "t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSkews, DataPulseDerivative,
    ::testing::Values(DerivCase{EdgeShape::Smoothstep, 200e-12, 150e-12},
                      DerivCase{EdgeShape::Smoothstep, 350e-12, 80e-12},
                      DerivCase{EdgeShape::Linear, 200e-12, 150e-12},
                      DerivCase{EdgeShape::Linear, 100e-12, 300e-12}));

TEST(DataPulse, DerivativeZeroOffEdges) {
    DataPulse w(paperSpec());
    w.setSkews(200e-12, 200e-12);
    for (double t : {0.0, 5e-9, 11.05e-9, 20e-9}) {
        EXPECT_DOUBLE_EQ(w.skewDerivative(t, SkewParam::Setup), 0.0);
        EXPECT_DOUBLE_EQ(w.skewDerivative(t, SkewParam::Hold), 0.0);
    }
}

TEST(DataPulse, DerivativeSignPushesPulseWider) {
    DataPulse w(paperSpec());
    w.setSkews(200e-12, 200e-12);
    // On the leading edge, increasing tau_s moves the rise earlier, so the
    // value at a fixed mid-edge time increases (v1 > v0).
    const double tLead = w.leadingEdgeMidpoint();
    EXPECT_GT(w.skewDerivative(tLead, SkewParam::Setup), 0.0);
    // On the trailing edge, increasing tau_h delays the fall: value rises.
    const double tTrail = w.trailingEdgeMidpoint();
    EXPECT_GT(w.skewDerivative(tTrail, SkewParam::Hold), 0.0);
}

TEST(DataPulse, OverlappingEdgesStayBounded) {
    DataPulse w(paperSpec());
    // A negative hold skew brings the edges into overlap: the pulse
    // amplitude shrinks but the waveform stays within [v0, v1].
    w.setSkews(20e-12, -10e-12);
    for (double t = 10.9e-9; t < 11.2e-9; t += 1e-12) {
        const double v = w.value(t);
        EXPECT_GE(v, -1e-12);
        EXPECT_LE(v, 2.5 + 1e-12);
    }
}

TEST(DataPulse, BreakpointsTrackSkews) {
    DataPulse w(paperSpec());
    w.setSkews(200e-12, 100e-12);
    std::vector<double> bp;
    w.breakpoints(0.0, 20e-9, bp);
    ASSERT_EQ(bp.size(), 4u);
    EXPECT_NEAR(bp[0], 11.05e-9 - 200e-12 - 50e-12, 1e-18);
    EXPECT_NEAR(bp[3], 11.05e-9 + 100e-12 + 50e-12, 1e-18);
}

TEST(DataPulse, RejectsBadSpec) {
    DataPulse::Spec s = paperSpec();
    s.transitionTime = 0.0;
    EXPECT_THROW(DataPulse{s}, InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
