// Tests for the level-1 MOSFET model: regions, continuity, symmetry,
// body effect and the PMOS polarity mirror.
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/circuit/circuit.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

MosfetParams nmosParams() {
    MosfetParams p;  // defaults are NMOS
    return p;
}

Mosfet makeDevice(const MosfetParams& p) {
    // Standalone device; node ids are irrelevant for operatingPoint().
    return Mosfet("M", NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, p);
}

TEST(Mosfet, CutoffBelowThreshold) {
    const Mosfet m = makeDevice(nmosParams());
    const MosfetOperatingPoint op = m.operatingPoint(1.0, 0.3, 0.0, 0.0);
    EXPECT_EQ(op.region, 0);
    EXPECT_DOUBLE_EQ(op.id, 0.0);
    EXPECT_DOUBLE_EQ(op.gm, 0.0);
}

TEST(Mosfet, TriodeMatchesSquareLaw) {
    const MosfetParams p = nmosParams();
    const Mosfet m = makeDevice(p);
    const double vgs = 1.5;
    const double vds = 0.3;  // < vov = 1.05
    const MosfetOperatingPoint op = m.operatingPoint(vds, vgs, 0.0, 0.0);
    EXPECT_EQ(op.region, 1);
    const double vov = vgs - p.vt0;
    const double expected = p.beta() * (vov * vds - 0.5 * vds * vds) *
                            (1.0 + p.lambda * vds);
    EXPECT_NEAR(op.id, expected, expected * 1e-12);
}

TEST(Mosfet, SaturationMatchesSquareLaw) {
    const MosfetParams p = nmosParams();
    const Mosfet m = makeDevice(p);
    const double vgs = 1.5;
    const double vds = 2.0;  // > vov
    const MosfetOperatingPoint op = m.operatingPoint(vds, vgs, 0.0, 0.0);
    EXPECT_EQ(op.region, 2);
    const double vov = vgs - p.vt0;
    const double expected =
        0.5 * p.beta() * vov * vov * (1.0 + p.lambda * vds);
    EXPECT_NEAR(op.id, expected, expected * 1e-12);
    EXPECT_NEAR(op.gm, p.beta() * vov * (1.0 + p.lambda * vds),
                op.gm * 1e-12);
}

TEST(Mosfet, CurrentAndGdsContinuousAtVdsat) {
    const MosfetParams p = nmosParams();
    const Mosfet m = makeDevice(p);
    const double vov = 1.5 - p.vt0;
    const double eps = 1e-9;
    const MosfetOperatingPoint below =
        m.operatingPoint(vov - eps, 1.5, 0.0, 0.0);
    const MosfetOperatingPoint above =
        m.operatingPoint(vov + eps, 1.5, 0.0, 0.0);
    EXPECT_NEAR(below.id, above.id, std::fabs(below.id) * 1e-6);
    EXPECT_NEAR(below.gds, above.gds, std::fabs(below.gds) * 1e-4 + 1e-12);
    EXPECT_NEAR(below.gm, above.gm, std::fabs(below.gm) * 1e-6);
}

TEST(Mosfet, CurrentContinuousAtThreshold) {
    const MosfetParams p = nmosParams();
    const Mosfet m = makeDevice(p);
    const double eps = 1e-9;
    const MosfetOperatingPoint below =
        m.operatingPoint(1.0, p.vt0 - eps, 0.0, 0.0);
    const MosfetOperatingPoint above =
        m.operatingPoint(1.0, p.vt0 + eps, 0.0, 0.0);
    EXPECT_NEAR(below.id, above.id, 1e-12);
}

TEST(Mosfet, SymmetricUnderTerminalSwap) {
    // I(vd, vs) = -I(vs, vd): the level-1 model is symmetric.
    const Mosfet m = makeDevice(nmosParams());
    const MosfetOperatingPoint fwd = m.operatingPoint(1.2, 2.0, 0.3, 0.0);
    const MosfetOperatingPoint rev = m.operatingPoint(0.3, 2.0, 1.2, 0.0);
    EXPECT_TRUE(rev.swapped);
    EXPECT_FALSE(fwd.swapped);
    EXPECT_NEAR(fwd.id, rev.id, std::fabs(fwd.id) * 1e-12);
}

TEST(Mosfet, PmosMirrorsNmos) {
    MosfetParams pn = nmosParams();
    MosfetParams pp = pn;
    pp.type = MosfetType::Pmos;
    const Mosfet mn = makeDevice(pn);
    const Mosfet mp = makeDevice(pp);
    // Mirrored bias: all voltages negated.
    const MosfetOperatingPoint opN = mn.operatingPoint(1.2, 2.0, 0.0, 0.0);
    const MosfetOperatingPoint opP =
        mp.operatingPoint(-1.2, -2.0, 0.0, 0.0);
    EXPECT_NEAR(opN.id, opP.id, std::fabs(opN.id) * 1e-12);
    EXPECT_EQ(opN.region, opP.region);
}

TEST(Mosfet, BodyEffectRaisesThreshold) {
    MosfetParams p = nmosParams();
    p.gamma = 0.5;
    const Mosfet m = makeDevice(p);
    // Reverse body bias (vbs < 0) raises vt and lowers the current.
    const MosfetOperatingPoint noBias = m.operatingPoint(2.0, 1.2, 0.0, 0.0);
    const MosfetOperatingPoint revBias =
        m.operatingPoint(2.0, 1.2, 0.0, -1.0);
    EXPECT_LT(revBias.id, noBias.id);
    EXPECT_GT(revBias.gmb, 0.0);
}

TEST(Mosfet, GmbZeroWithoutGamma) {
    const Mosfet m = makeDevice(nmosParams());
    const MosfetOperatingPoint op = m.operatingPoint(2.0, 1.2, 0.0, -1.0);
    EXPECT_DOUBLE_EQ(op.gmb, 0.0);
}

TEST(Mosfet, GmGdsMatchFiniteDifferenceAcrossRegions) {
    MosfetParams p = nmosParams();
    p.gamma = 0.4;
    const Mosfet m = makeDevice(p);
    const double dv = 1e-6;
    for (double vgs : {0.8, 1.2, 2.0}) {
        for (double vds : {0.1, 0.5, 1.0, 2.2}) {
            const auto id = [&](double g, double d) {
                return m.operatingPoint(d, g, 0.0, 0.0).id;
            };
            const MosfetOperatingPoint op =
                m.operatingPoint(vds, vgs, 0.0, 0.0);
            const double fdGm =
                (id(vgs + dv, vds) - id(vgs - dv, vds)) / (2.0 * dv);
            const double fdGds =
                (id(vgs, vds + dv) - id(vgs, vds - dv)) / (2.0 * dv);
            EXPECT_NEAR(op.gm, fdGm, 1e-5 * (1.0 + std::fabs(fdGm)))
                << "vgs=" << vgs << " vds=" << vds;
            EXPECT_NEAR(op.gds, fdGds, 1e-5 * (1.0 + std::fabs(fdGds)))
                << "vgs=" << vgs << " vds=" << vds;
        }
    }
}

TEST(Mosfet, StampsConserveCurrent) {
    // KCL across the device: f contributions over all nodes sum to zero.
    Circuit ckt;
    const NodeId d = ckt.node("d");
    const NodeId g = ckt.node("g");
    const NodeId s = ckt.node("s");
    const NodeId b = ckt.node("b");
    MosfetParams p = nmosParams();
    p.cgs = 1e-15;
    p.cgd = 1e-15;
    p.cgb = 0.2e-15;
    p.cdb = 0.5e-15;
    p.csb = 0.5e-15;
    ckt.add<Mosfet>("M1", d, g, s, b, p);
    ckt.finalize();
    Assembler asmb(4);
    Vector x{1.8, 1.2, 0.2, 0.0};
    ckt.assemble(x, 0.0, asmb);
    double fSum = 0.0;
    double qSum = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        fSum += asmb.f()[i];
        qSum += asmb.q()[i];
    }
    EXPECT_NEAR(fSum, 0.0, 1e-18);
    EXPECT_NEAR(qSum, 0.0, 1e-27);
}

TEST(Mosfet, RejectsBadParams) {
    MosfetParams p;
    p.kp = 0.0;
    EXPECT_THROW(makeDevice(p), InvalidArgumentError);
    p = MosfetParams{};
    p.w = -1.0;
    EXPECT_THROW(makeDevice(p), InvalidArgumentError);
    p = MosfetParams{};
    p.vt0 = -0.4;  // magnitudes only
    EXPECT_THROW(makeDevice(p), InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
