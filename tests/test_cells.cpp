// Functional tests of the register cells: correct latching at generous
// skews (both data polarities), failure at hopeless skews, dynamic-node
// behaviour, and the C2MOS false-transition phenomenon (paper Fig. 11(b)).
#include <gtest/gtest.h>

#include <functional>

#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/c2mos.hpp"
#include "shtrace/cells/tg_dff.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/measure/clock_to_q.hpp"
#include "shtrace/measure/crossing.hpp"

namespace shtrace {
namespace {

TransientResult simulate(const RegisterFixture& reg, double extraTime,
                         double setupSkew, double holdSkew) {
    reg.data->setSkews(setupSkew, holdSkew);
    TransientOptions opt;
    opt.tStop = reg.activeEdgeMidpoint() + extraTime;
    opt.fixedSteps = static_cast<int>(opt.tStop / 10e-12);
    return TransientAnalysis(reg.circuit, opt).run();
}

double finalQ(const RegisterFixture& reg, const TransientResult& tr) {
    return reg.circuit.selectorFor(reg.q).dot(tr.finalState);
}

struct CellCase {
    const char* name;
    std::function<RegisterFixture(bool risingData)> build;
};

class RegisterFunctional : public ::testing::TestWithParam<CellCase> {};

TEST_P(RegisterFunctional, LatchesDatumAtGenerousSkews) {
    for (bool rising : {true, false}) {
        const RegisterFixture reg = GetParam().build(rising);
        const TransientResult tr = simulate(reg, 3e-9, 2e-9, 2e-9);
        ASSERT_TRUE(tr.success) << tr.failureReason;
        EXPECT_NEAR(finalQ(reg, tr), reg.qFinal, 0.2)
            << GetParam().name << " rising=" << rising;
        // And before the active edge Q held the previously latched datum.
        const Vector sel = reg.circuit.selectorFor(reg.q);
        EXPECT_NEAR(tr.valueAt(sel, reg.activeEdgeMidpoint() - 1e-9),
                    reg.qInitial, 0.2)
            << GetParam().name << " rising=" << rising;
    }
}

TEST_P(RegisterFunctional, FailsToLatchWithHopelessSetupSkew) {
    // Data arriving AFTER the edge (negative effective setup) cannot latch.
    const RegisterFixture reg = GetParam().build(false);
    const TransientResult tr = simulate(reg, 3e-9, -0.5e-9, 2e-9);
    ASSERT_TRUE(tr.success) << tr.failureReason;
    EXPECT_NEAR(finalQ(reg, tr), reg.qInitial, 0.3) << GetParam().name;
}

TEST_P(RegisterFunctional, OutputHoldsAfterDataGoesAway) {
    // With a modest hold skew past the hold time, Q must stay latched even
    // though D returns to its idle level long before the window ends.
    const RegisterFixture reg = GetParam().build(false);
    const TransientResult tr = simulate(reg, 4e-9, 1.2e-9, 0.6e-9);
    ASSERT_TRUE(tr.success) << tr.failureReason;
    EXPECT_NEAR(finalQ(reg, tr), reg.qFinal, 0.2) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisters, RegisterFunctional,
    ::testing::Values(
        CellCase{"TSPC",
                 [](bool rising) {
                     TspcOptions opt;
                     opt.risingData = rising;
                     return buildTspcRegister(opt);
                 }},
        CellCase{"C2MOS",
                 [](bool rising) {
                     C2mosOptions opt;
                     opt.risingData = rising;
                     return buildC2mosRegister(opt);
                 }},
        CellCase{"TGDFF",
                 [](bool rising) {
                     TgDffOptions opt;
                     opt.risingData = rising;
                     return buildTgDffRegister(opt);
                 }}),
    [](const ::testing::TestParamInfo<CellCase>& info) {
        return info.param.name;
    });

TEST(Tspc, SystemSizeAndStructure) {
    const RegisterFixture reg = buildTspcRegister();
    // 10 circuit nodes (vdd clk d x1 s1 y s2 qb s3 q) + 3 source branches.
    EXPECT_EQ(reg.circuit.nodeCount(), 10);
    EXPECT_EQ(reg.circuit.branchCount(), 3);
    EXPECT_EQ(reg.name, "TSPC");
    EXPECT_EQ(reg.clockBar, nullptr);  // single-phase!
    EXPECT_NEAR(reg.activeEdgeMidpoint(), 11.05e-9, 1e-15);
}

TEST(C2mos, HasDelayedInvertedClockBar) {
    const RegisterFixture reg = buildC2mosRegister();
    ASSERT_NE(reg.clockBar, nullptr);
    EXPECT_TRUE(reg.clockBar->spec().inverted);
    EXPECT_NEAR(reg.clockBar->spec().delay - reg.clock->spec().delay, 0.3e-9,
                1e-15);
}

TEST(C2mos, FalseTransitionRevertsAfterReaching80Percent) {
    // Paper Fig. 11(b): due to the clk/clk-bar overlap, for some hold skews
    // the output crosses 80% of its transition and then reverts. A longer
    // overlap and lighter load make the race decisive, as in the paper's
    // setup where the criterion had to move to 90% of the transition.
    C2mosOptions copt;
    copt.clkBarDelay = 0.5e-9;
    copt.outputLoadCapacitance = 8e-15;
    const RegisterFixture reg = buildC2mosRegister(copt);  // falling data
    const double v80 = reg.qInitial + 0.8 * (reg.qFinal - reg.qInitial);
    bool foundFalseTransition = false;
    for (double th = 100e-12; th <= 350e-12; th += 25e-12) {
        const TransientResult tr = simulate(reg, 3e-9, 2e-9, th);
        ASSERT_TRUE(tr.success);
        const Vector sel = reg.circuit.selectorFor(reg.q);
        const auto crossed =
            firstCrossingAfter(tr.times, tr.signal(sel), v80,
                               reg.activeEdgeMidpoint(), false);
        const double qEnd = finalQ(reg, tr);
        const bool reverted =
            std::fabs(qEnd - reg.qInitial) < 0.5;  // came back up
        if (crossed.has_value() && reverted) {
            foundFalseTransition = true;
            break;
        }
    }
    EXPECT_TRUE(foundFalseTransition)
        << "no hold skew produced the Fig. 11(b) false transition";
}

TEST(TgDff, KeeperHoldsStorageNodesStatically) {
    // The TG-DFF is static: after latching, Q must hold without drooping
    // through the entire remaining clock cycle (through the clk-low phase
    // where the slave storage node is kept only by the weak feedback
    // inverter). Stop before the NEXT rising edge at 21 ns, which would
    // correctly latch the idle datum.
    const RegisterFixture reg = buildTgDffRegister();
    const TransientResult tr = simulate(reg, 8e-9, 2e-9, 2e-9);
    ASSERT_TRUE(tr.success);
    EXPECT_NEAR(finalQ(reg, tr), reg.qFinal, 0.1);
}

TEST(Cells, CornerPropagatesToSupplyAndSwing) {
    TspcOptions opt;
    opt.corner = ProcessCorner::fast();
    const RegisterFixture reg = buildTspcRegister(opt);
    EXPECT_DOUBLE_EQ(reg.vdd, 2.75);
    EXPECT_DOUBLE_EQ(reg.clock->spec().v1, 2.75);
    // Falling data: latches a 0 from an idle 2.75 V.
    EXPECT_DOUBLE_EQ(reg.data->spec().v0, 2.75);
    EXPECT_DOUBLE_EQ(reg.qInitial, 2.75);
    EXPECT_DOUBLE_EQ(reg.qFinal, 0.0);
}

}  // namespace
}  // namespace shtrace
