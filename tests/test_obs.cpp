// Tests for the obs subsystem: span tracing (ring buffers, detail gating,
// Chrome trace / collapsed-stack export), the metrics registry (histograms,
// gauges, SimStats counter publication, Prometheus/JSON export), and the
// determinism guarantee that histogram counts are identical across thread
// counts. Runs under the tsan sweep: the collect/export paths must be clean
// against worker-pool threads that have already joined.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "shtrace/obs/obs.hpp"
#include "shtrace/util/parallel.hpp"

namespace shtrace {
namespace {

namespace fs = std::filesystem;

class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::setDetail(obs::Detail::Off);
        obs::clearAll();
    }
    void TearDown() override {
        obs::setDetail(obs::Detail::Off);
        obs::clearAll();
    }
};

std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ------------------------------------------------------------------ spans

TEST_F(ObsTest, DisabledRecordsNothing) {
    {
        SHTRACE_SPAN("should.not.appear");
        SHTRACE_FINE_SPAN("nor.this");
    }
    EXPECT_EQ(obs::spanCounts().recorded, 0u);
    EXPECT_TRUE(obs::collectSpans().empty());
}

TEST_F(ObsTest, NullSinkSpanIsAnEmptyType) {
    using NullSpan = obs::BasicScopedSpan<obs::NullSpanSink>;
    EXPECT_TRUE(std::is_empty_v<NullSpan>);
    NullSpan proof("compiles and does nothing");
    (void)proof;
}

TEST_F(ObsTest, NestedSpansRecordNamesDepthsAndDurations) {
    obs::setDetail(obs::Detail::Coarse);
    {
        SHTRACE_SPAN("outer");
        {
            SHTRACE_SPAN("inner");
        }
    }
    obs::setDetail(obs::Detail::Off);

    const std::vector<obs::CollectedSpan> spans = obs::collectSpans();
    ASSERT_EQ(spans.size(), 2u);
    // Sorted by (thread, start, depth): outer starts first.
    EXPECT_EQ(spans[0].name, "outer");
    EXPECT_EQ(spans[0].depth, 0u);
    EXPECT_EQ(spans[1].name, "inner");
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_GE(spans[1].startNs, spans[0].startNs);
    EXPECT_GE(spans[0].durationNs, spans[1].durationNs);
}

TEST_F(ObsTest, FineSpansNeedFineDetail) {
    obs::setDetail(obs::Detail::Coarse);
    {
        SHTRACE_FINE_SPAN("kernel");
    }
    EXPECT_EQ(obs::spanCounts().recorded, 0u);

    obs::setDetail(obs::Detail::Fine);
    {
        SHTRACE_FINE_SPAN("kernel");
    }
    obs::setDetail(obs::Detail::Off);
    const auto spans = obs::collectSpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "kernel");
}

TEST_F(ObsTest, RingOverwritesOldestAndCountsDrops) {
    obs::setDetail(obs::Detail::Coarse);
    constexpr std::size_t kPushes = 20000;  // ring capacity is 16384
    for (std::size_t i = 0; i < kPushes; ++i) {
        SHTRACE_SPAN("tick");
    }
    obs::setDetail(obs::Detail::Off);
    const obs::SpanCounts counts = obs::spanCounts();
    EXPECT_EQ(counts.recorded, kPushes);
    EXPECT_GT(counts.dropped, 0u);
    EXPECT_EQ(obs::collectSpans().size(), kPushes - counts.dropped);
}

TEST_F(ObsTest, ClearSpansResets) {
    obs::setDetail(obs::Detail::Coarse);
    {
        SHTRACE_SPAN("gone");
    }
    obs::setDetail(obs::Detail::Off);
    obs::clearSpans();
    EXPECT_EQ(obs::spanCounts().recorded, 0u);
    EXPECT_TRUE(obs::collectSpans().empty());
}

TEST_F(ObsTest, ChromeTraceJsonCarriesCompleteEvents) {
    obs::setDetail(obs::Detail::Coarse);
    {
        SHTRACE_SPAN("phase.alpha");
        SHTRACE_SPAN("phase.beta");
    }
    obs::setDetail(obs::Detail::Off);
    const std::string json = obs::chromeTraceJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"phase.alpha\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"phase.beta\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST_F(ObsTest, CollapsedStacksRebuildNesting) {
    obs::setDetail(obs::Detail::Coarse);
    {
        SHTRACE_SPAN("root");
        {
            SHTRACE_SPAN("child");
        }
    }
    obs::setDetail(obs::Detail::Off);
    const std::string folded = obs::collapsedStacks();
    EXPECT_NE(folded.find("root;child "), std::string::npos);
    EXPECT_NE(folded.find("root "), std::string::npos);
}

// ---------------------------------------------------------------- metrics

TEST_F(ObsTest, ObserveIsNoOpWhileDisabled) {
    obs::observe(obs::Hist::NewtonIterationsPerStep, 3.0);
    const obs::MetricsSnapshot snap = obs::metricsSnapshot();
    for (const obs::HistogramSnapshot& h : snap.histograms) {
        EXPECT_EQ(h.totalCount, 0u) << h.name;
    }
}

TEST_F(ObsTest, HistogramBucketsPlaceValues) {
    obs::setDetail(obs::Detail::Coarse);
    // NewtonIterationsPerStep bounds: {1,2,3,4,5,6,8,12}.
    obs::observe(obs::Hist::NewtonIterationsPerStep, 1.0);   // first bucket
    obs::observe(obs::Hist::NewtonIterationsPerStep, 7.0);   // le=8 bucket
    obs::observe(obs::Hist::NewtonIterationsPerStep, 100.0); // +Inf bucket
    obs::setDetail(obs::Detail::Off);

    const obs::MetricsSnapshot snap = obs::metricsSnapshot();
    const obs::HistogramSnapshot* hist = nullptr;
    for (const obs::HistogramSnapshot& h : snap.histograms) {
        if (h.name == "shtrace_newton_iterations_per_step") {
            hist = &h;
        }
    }
    ASSERT_NE(hist, nullptr);
    ASSERT_EQ(hist->counts.size(), hist->upperBounds.size() + 1);
    EXPECT_EQ(hist->totalCount, 3u);
    EXPECT_DOUBLE_EQ(hist->sum, 108.0);
    EXPECT_EQ(hist->counts.front(), 1u);  // the 1.0 observation
    EXPECT_EQ(hist->counts.back(), 1u);   // the 100.0 overflow
    std::uint64_t total = 0;
    for (const std::uint64_t c : hist->counts) {
        total += c;
    }
    EXPECT_EQ(total, hist->totalCount);
}

TEST_F(ObsTest, GaugesHoldLastValue) {
    obs::setDetail(obs::Detail::Coarse);
    obs::setGauge(obs::Gauge::WorkerThreads, 4.0);
    obs::setGauge(obs::Gauge::WorkerThreads, 8.0);
    obs::setGauge(obs::Gauge::BatchJobs, 128.0);
    obs::setDetail(obs::Detail::Off);

    const obs::MetricsSnapshot snap = obs::metricsSnapshot();
    for (const obs::GaugeSnapshot& g : snap.gauges) {
        if (g.name == "shtrace_worker_threads") {
            EXPECT_DOUBLE_EQ(g.value, 8.0);
        } else if (g.name == "shtrace_batch_jobs") {
            EXPECT_DOUBLE_EQ(g.value, 128.0);
        }
    }
}

TEST_F(ObsTest, AddRunCountersPublishesAndAccumulates) {
    obs::setDetail(obs::Detail::Coarse);
    SimStats stats;
    stats.transientSolves = 10;
    stats.hEvaluations = 4;
    stats.wallSeconds = 0.5;
    obs::addRunCounters(stats);
    obs::addRunCounters(stats);
    obs::setDetail(obs::Detail::Off);

    const obs::MetricsSnapshot snap = obs::metricsSnapshot();
    // One counter per SimStats field, plus wall seconds, plus the serve
    // layer's 9 event counters, plus the corner-family driver's 3, plus
    // the SHIA-STA engine's 2 endpoint counters.
    EXPECT_EQ(snap.counters.size(), 37u);
    bool sawTransients = false;
    bool sawWall = false;
    for (const obs::CounterSnapshot& c : snap.counters) {
        if (c.name == "shtrace_transient_solves_total") {
            sawTransients = true;
            EXPECT_DOUBLE_EQ(c.value, 20.0);
        } else if (c.name == "shtrace_wall_seconds_total") {
            sawWall = true;
            EXPECT_DOUBLE_EQ(c.value, 1.0);
        } else if (c.name == "shtrace_h_evaluations_total") {
            EXPECT_DOUBLE_EQ(c.value, 8.0);
        }
    }
    EXPECT_TRUE(sawTransients);
    EXPECT_TRUE(sawWall);
}

TEST_F(ObsTest, PrometheusTextSpeaksTheExpositionFormat) {
    obs::setDetail(obs::Detail::Coarse);
    obs::observe(obs::Hist::SeedEvaluationsPerSearch, 5.0);
    obs::setGauge(obs::Gauge::WorkerThreads, 2.0);
    SimStats stats;
    stats.transientSolves = 3;
    obs::addRunCounters(stats);
    obs::setDetail(obs::Detail::Off);

    const std::string text = obs::prometheusText(obs::metricsSnapshot());
    EXPECT_NE(text.find("# HELP shtrace_transient_solves_total"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE shtrace_transient_solves_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("shtrace_transient_solves_total 3"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE shtrace_worker_threads gauge"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE shtrace_seed_evaluations_per_search histogram"),
        std::string::npos);
    EXPECT_NE(text.find("_bucket{le=\"+Inf\"}"), std::string::npos);
    EXPECT_NE(text.find("shtrace_seed_evaluations_per_search_sum 5"),
              std::string::npos);
    EXPECT_NE(text.find("shtrace_seed_evaluations_per_search_count 1"),
              std::string::npos);
    EXPECT_EQ(text.back(), '\n');
}

TEST_F(ObsTest, JsonMirrorsTheSnapshot) {
    obs::setDetail(obs::Detail::Coarse);
    obs::observe(obs::Hist::CorrectorIterationsPerPoint, 2.0);
    obs::setDetail(obs::Detail::Off);
    const std::string json = obs::metricsJson(obs::metricsSnapshot());
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"shtrace_corrector_iterations_per_point\""),
              std::string::npos);
}

TEST_F(ObsTest, PrometheusPathDerivation) {
    EXPECT_EQ(obs::prometheusPathFor("a/b/metrics.json"), "a/b/metrics.prom");
    EXPECT_EQ(obs::prometheusPathFor("noext"), "noext.prom");
}

TEST_F(ObsTest, WriteMetricsFilesEmitsJsonAndProm) {
    const fs::path dir =
        fs::path(::testing::TempDir()) / "shtrace_obs_files";
    fs::create_directories(dir);
    const std::string jsonPath = (dir / "metrics.json").string();

    obs::setDetail(obs::Detail::Coarse);
    obs::observe(obs::Hist::TransientWallMilliseconds, 1.5);
    obs::setDetail(obs::Detail::Off);
    obs::writeMetricsFiles(jsonPath);

    EXPECT_NE(slurp(jsonPath).find("\"histograms\""), std::string::npos);
    EXPECT_NE(
        slurp(obs::prometheusPathFor(jsonPath)).find("# TYPE"),
        std::string::npos);
    fs::remove_all(dir);
}

// ------------------------------------------------------------ determinism

obs::MetricsSnapshot snapshotOfRun(int threads) {
    obs::clearAll();
    obs::setDetail(obs::Detail::Coarse);
    ParallelOptions par;
    par.threads = threads;
    parallelRun(
        64,
        [](std::size_t job, std::size_t /*worker*/) {
            obs::observe(obs::Hist::NewtonIterationsPerStep,
                         static_cast<double>(job % 13));
            obs::observe(obs::Hist::SeedEvaluationsPerSearch,
                         static_cast<double>(job));
        },
        par);
    obs::MetricsSnapshot snap = obs::metricsSnapshot();
    obs::setDetail(obs::Detail::Off);
    obs::clearAll();
    return snap;
}

TEST_F(ObsTest, HistogramCountsIdenticalAcrossThreadCounts) {
    const obs::MetricsSnapshot serial = snapshotOfRun(1);
    const obs::MetricsSnapshot pooled = snapshotOfRun(8);
    ASSERT_EQ(serial.histograms.size(), pooled.histograms.size());
    for (std::size_t i = 0; i < serial.histograms.size(); ++i) {
        const obs::HistogramSnapshot& a = serial.histograms[i];
        const obs::HistogramSnapshot& b = pooled.histograms[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.totalCount, b.totalCount) << a.name;
        EXPECT_DOUBLE_EQ(a.sum, b.sum) << a.name;
        ASSERT_EQ(a.counts.size(), b.counts.size());
        for (std::size_t j = 0; j < a.counts.size(); ++j) {
            EXPECT_EQ(a.counts[j], b.counts[j]) << a.name << " bucket " << j;
        }
    }
}

TEST_F(ObsTest, SpansFromJoinedWorkersSurviveCollection) {
    obs::setDetail(obs::Detail::Coarse);
    ParallelOptions par;
    par.threads = 4;
    parallelRun(
        16,
        [](std::size_t, std::size_t) {
            SHTRACE_SPAN("pool.job");
        },
        par);
    obs::setDetail(obs::Detail::Off);
    // The pool's threads have exited; their rings must still be readable.
    std::size_t jobSpans = 0;
    for (const obs::CollectedSpan& span : obs::collectSpans()) {
        if (span.name == std::string("pool.job")) {
            ++jobSpans;
        }
    }
    EXPECT_EQ(jobSpans, 16u);
}

// --------------------------------------------------------- RunObservation

TEST_F(ObsTest, RunObservationEnablesWritesAndRestores) {
    const fs::path dir =
        fs::path(::testing::TempDir()) / "shtrace_obs_run";
    fs::create_directories(dir);
    const std::string jsonPath = (dir / "run.json").string();
    const std::string tracePath = (dir / "run.trace.json").string();

    ASSERT_FALSE(obs::enabled());
    {
        obs::RunObservation observation(jsonPath, tracePath);
        EXPECT_TRUE(observation.active());
        EXPECT_TRUE(obs::enabled());
        {
            SHTRACE_SPAN("observed.phase");
        }
        SimStats stats;
        stats.transientSolves = 7;
        observation.finish(stats);
    }
    EXPECT_FALSE(obs::enabled());

    EXPECT_NE(slurp(jsonPath).find("shtrace_transient_solves_total"),
              std::string::npos);
    EXPECT_NE(slurp(obs::prometheusPathFor(jsonPath))
                  .find("shtrace_transient_solves_total 7"),
              std::string::npos);
    EXPECT_NE(slurp(tracePath).find("observed.phase"), std::string::npos);
    EXPECT_TRUE(fs::exists(tracePath + ".folded"));
    fs::remove_all(dir);
}

TEST_F(ObsTest, RunObservationWithEmptyPathsIsInert) {
    obs::RunObservation observation("", "");
    EXPECT_FALSE(observation.active());
    EXPECT_FALSE(obs::enabled());
    SimStats stats;
    observation.finish(stats);  // must not write anywhere or throw
}

}  // namespace
}  // namespace shtrace
