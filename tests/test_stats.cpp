// Tests for the SimStats cost accumulator: merge laws across every field
// (associativity/commutativity -- the property the parallel batch engine's
// merge-at-join discipline rests on), the stats-line store round-trip, the
// field-count drift guard, and the ScopedTimer nesting regression (nested
// timers on one accumulator must not double-count wall time).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>

#include "shtrace/store/serialize.hpp"
#include "shtrace/util/stats.hpp"

namespace shtrace {
namespace {

/// Every field distinct, wallSeconds a power of two so double addition is
/// exactly associative and the merge-law checks can demand equality.
SimStats distinctStats(std::uint64_t base, double wall) {
    SimStats s;
    s.transientSolves = base + 1;
    s.timeSteps = base + 2;
    s.rejectedSteps = base + 3;
    s.newtonIterations = base + 4;
    s.luFactorizations = base + 5;
    s.luSolves = base + 6;
    s.deviceEvaluations = base + 7;
    s.residualOnlyAssemblies = base + 8;
    s.chordIterations = base + 9;
    s.bypassedFactorizations = base + 10;
    s.sensitivitySteps = base + 11;
    s.hEvaluations = base + 12;
    s.mpnrIterations = base + 13;
    s.cacheHits = base + 14;
    s.cacheMisses = base + 15;
    s.cacheWarmStarts = base + 16;
    s.traceNonFiniteRejections = base + 17;
    s.traceTransientRetries = base + 18;
    s.tracePlateauReseeds = base + 19;
    s.traceStepHalvings = base + 20;
    s.sparseRefactorizations = base + 21;
    s.batchAssemblies = base + 22;
    s.wallSeconds = wall;
    return s;
}

/// serializeSimStats spells every field in declaration order, so comparing
/// the serialized lines compares ALL fields at once -- a new field that
/// misses operator+= would surface here without updating 23 EXPECT lines.
std::string line(const SimStats& s) { return store::serializeSimStats(s); }

TEST(SimStatsMergeLaws, CommutativeOnEveryField) {
    const SimStats a = distinctStats(100, 0.5);
    const SimStats b = distinctStats(4000, 0.03125);
    EXPECT_EQ(line(a + b), line(b + a));
}

TEST(SimStatsMergeLaws, AssociativeOnEveryField) {
    const SimStats a = distinctStats(100, 0.5);
    const SimStats b = distinctStats(4000, 0.03125);
    const SimStats c = distinctStats(900000, 8.0);
    EXPECT_EQ(line((a + b) + c), line(a + (b + c)));
}

TEST(SimStatsMergeLaws, MergeMatchesPlusAndIdentity) {
    const SimStats a = distinctStats(7, 0.25);
    SimStats viaMerge = a;
    viaMerge.merge(distinctStats(31, 2.0));
    EXPECT_EQ(line(viaMerge), line(a + distinctStats(31, 2.0)));
    // Zero is the identity.
    EXPECT_EQ(line(a + SimStats{}), line(a));

    SimStats r = a;
    r.reset();
    EXPECT_EQ(line(r), line(SimStats{}));
}

TEST(SimStatsMergeLaws, SumsAndNeverDrops) {
    const SimStats sum = distinctStats(100, 0.5) + distinctStats(4000, 0.25);
    EXPECT_EQ(sum.transientSolves, 101u + 4001u);
    EXPECT_EQ(sum.traceStepHalvings, 120u + 4020u);
    EXPECT_DOUBLE_EQ(sum.wallSeconds, 0.75);
}

// ------------------------------------------------------- drift guards

// The store's stats line, the CLI pretty-printer, and the obs counter
// export all enumerate SimStats fields by hand. A new field must visit
// all of them; these guards make forgetting loud.

TEST(SimStatsDriftGuard, StructIsExactlyTwentyTwoCountersPlusWall) {
    static_assert(sizeof(SimStats) ==
                      22 * sizeof(std::uint64_t) + sizeof(double),
                  "SimStats changed: update serialize.cpp, obs/metrics.cpp, "
                  "shtrace_store_cli.cpp, and this test");
    SUCCEED();
}

TEST(SimStatsDriftGuard, StatsLineCarriesTwentyThreeFields) {
    std::istringstream in(store::serializeSimStats(SimStats{}));
    std::string tag;
    in >> tag;
    EXPECT_EQ(tag, "stats");
    int fields = 0;
    std::string token;
    while (in >> token) {
        ++fields;
    }
    EXPECT_EQ(fields, 23);
}

TEST(SimStatsDriftGuard, StatsLineRoundTripsEveryField) {
    const SimStats s = distinctStats(12345, 0.12345678901234567);
    const SimStats back = store::deserializeSimStats(line(s));
    EXPECT_EQ(line(back), line(s));
}

// -------------------------------------------------- ScopedTimer nesting

TEST(ScopedTimerNesting, InnerTimerOnSameStatsIsSuppressed) {
    SimStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    {
        ScopedTimer outer(&stats);
        EXPECT_FALSE(outer.suppressed());
        {
            ScopedTimer inner(&stats);
            EXPECT_TRUE(inner.suppressed());
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        // Post-inner work is still covered by the outer timer.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double external =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Double counting would make wallSeconds exceed the external window
    // (outer + inner > elapsed); inclusive-outermost-only stays inside it.
    EXPECT_GT(stats.wallSeconds, 0.0);
    EXPECT_LE(stats.wallSeconds, external);
}

TEST(ScopedTimerNesting, DeepNestingCountsOnce) {
    SimStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    {
        ScopedTimer a(&stats);
        ScopedTimer b(&stats);
        ScopedTimer c(&stats);
        ScopedTimer d(&stats);
        EXPECT_TRUE(b.suppressed());
        EXPECT_TRUE(c.suppressed());
        EXPECT_TRUE(d.suppressed());
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const double external =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LE(stats.wallSeconds, external);
}

TEST(ScopedTimerNesting, DifferentStatsNestFreely) {
    SimStats outerStats;
    SimStats innerStats;
    {
        ScopedTimer outer(&outerStats);
        ScopedTimer inner(&innerStats);
        EXPECT_FALSE(inner.suppressed());
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(outerStats.wallSeconds, 0.0);
    EXPECT_GT(innerStats.wallSeconds, 0.0);
}

TEST(ScopedTimerNesting, SequentialSiblingsBothAccumulate) {
    SimStats stats;
    {
        ScopedTimer first(&stats);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const double afterFirst = stats.wallSeconds;
    EXPECT_GT(afterFirst, 0.0);
    {
        // The first timer is gone: this is NOT nesting and must count.
        ScopedTimer second(&stats);
        EXPECT_FALSE(second.suppressed());
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(stats.wallSeconds, afterFirst);
}

TEST(ScopedTimerNesting, SuppressionIsPerThread) {
    SimStats stats;
    double wallAtJoin = 0.0;
    {
        ScopedTimer outer(&stats);
        std::thread worker([&] {
            // The active-timer list is thread-local: another thread's
            // timer on the SAME accumulator is not "nesting" and counts.
            // (The worker finishes -- and writes -- before outer does.)
            ScopedTimer t(&stats);
            EXPECT_FALSE(t.suppressed());
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        });
        worker.join();
        wallAtJoin = stats.wallSeconds;
    }
    EXPECT_GT(wallAtJoin, 0.0);
    EXPECT_GT(stats.wallSeconds, wallAtJoin);  // outer added its own share
}

TEST(ScopedTimerNesting, NullStatsRemainsNoOp) {
    ScopedTimer t(nullptr);
    EXPECT_GE(t.elapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace shtrace
