// Tracer-hardening tests: every TraceDiagnostics kind is reachable and
// correctly classified under scripted faults (fault_injection.hpp), the
// recovery policies fire before step halving, NaN/Inf never reaches a
// TracedContour, and the diagnostics are thread-count deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fault_injection.hpp"
#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/library.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/seed.hpp"
#include "shtrace/chz/tracer.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"

namespace shtrace {
namespace {

using faults::DeviceFaultKind;
using faults::FaultInjectingDevice;
using faults::FaultInjectingHFunction;
using faults::FaultKind;
using faults::FaultWindow;

bool finitePoint(const SkewPoint& p) {
    return std::isfinite(p.setup) && std::isfinite(p.hold);
}

void expectContourFinite(const TracedContour& contour) {
    for (const SkewPoint& p : contour.points) {
        EXPECT_TRUE(finitePoint(p)) << "(" << p.setup << ", " << p.hold
                                    << ")";
    }
    for (const double r : contour.residuals) {
        EXPECT_TRUE(std::isfinite(r));
    }
}

int countKind(const TraceDiagnostics& diag, TraceEventKind kind) {
    return static_cast<int>(diag.count(kind));
}

// ---------------------------------------------------------------- taxonomy

TEST(TraceTaxonomy, EveryKindAndPhaseRoundTripsThroughStrings) {
    for (int i = 0; i < kTraceEventKindCount; ++i) {
        const auto kind = static_cast<TraceEventKind>(i);
        bool ok = false;
        EXPECT_EQ(traceEventKindFromString(toString(kind), ok), kind);
        EXPECT_TRUE(ok) << toString(kind);
    }
    for (const TracePhase phase :
         {TracePhase::Seed, TracePhase::Forward, TracePhase::Backward}) {
        bool ok = false;
        EXPECT_EQ(tracePhaseFromString(toString(phase), ok), phase);
        EXPECT_TRUE(ok) << toString(phase);
    }
    bool ok = true;
    traceEventKindFromString("NotAKind", ok);
    EXPECT_FALSE(ok);
}

TEST(TraceTaxonomy, SummaryAggregatesByKind) {
    TraceDiagnostics diag;
    diag.record(TraceEventKind::LeftBounds, TracePhase::Forward,
                SkewPoint{1e-12, 2e-12}, 1e-12, 3);
    diag.record(TraceEventKind::LeftBounds, TracePhase::Backward,
                SkewPoint{3e-12, 4e-12}, 1e-12, 2);
    diag.record(TraceEventKind::TransientFailed, TracePhase::Forward,
                SkewPoint{5e-12, 6e-12}, 2e-12, 1);
    EXPECT_EQ(diag.summary(), "TransientFailed x1, LeftBounds x2");
}

// ------------------------------------------------- fault-injected tracing
//
// All tests share one TSPC problem; the fault decorator copies the h
// recipe, so each test gets an independent call counter. The seed
// correction takes a handful of evaluations, so faults scripted from call
// 8 onward land in the tracing loop proper.

class FaultedTracerOnTspc : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        fixture_ = new RegisterFixture(buildTspcRegister());
        problem_ = new CharacterizationProblem(*fixture_);
    }
    static void TearDownTestSuite() {
        delete problem_;
        delete fixture_;
        problem_ = nullptr;
        fixture_ = nullptr;
    }

    static TracerOptions window() {
        TracerOptions opt;
        opt.bounds = SkewBounds{100e-12, 600e-12, 50e-12, 450e-12};
        opt.maxPoints = 14;
        return opt;
    }

    static constexpr SkewPoint kSeed{220e-12, 450e-12};

    static RegisterFixture* fixture_;
    static CharacterizationProblem* problem_;
};

RegisterFixture* FaultedTracerOnTspc::fixture_ = nullptr;
CharacterizationProblem* FaultedTracerOnTspc::problem_ = nullptr;

TEST_F(FaultedTracerOnTspc, CleanTraceLogsOnlyItsTerminations) {
    SimStats stats;
    const TracedContour contour =
        traceContour(problem_->h(), kSeed, window(), &stats);
    ASSERT_TRUE(contour.seedConverged);
    ASSERT_GE(contour.points.size(), 8u);
    // A healthy trace records nothing but how each direction ended.
    ASSERT_FALSE(contour.diagnostics.empty());
    for (const TraceEvent& e : contour.diagnostics.events) {
        EXPECT_TRUE(e.kind == TraceEventKind::LeftBounds ||
                    e.kind == TraceEventKind::BudgetExhausted)
            << toString(e.kind);
        EXPECT_NE(e.phase, TracePhase::Seed);
    }
    // And none of the recovery machinery fired.
    EXPECT_EQ(stats.traceTransientRetries, 0u);
    EXPECT_EQ(stats.tracePlateauReseeds, 0u);
    EXPECT_EQ(stats.traceNonFiniteRejections, 0u);
    EXPECT_EQ(contour.predictorRetries, 0);
}

TEST_F(FaultedTracerOnTspc, BudgetExhaustionIsRecorded) {
    TracerOptions opt = window();
    opt.maxPoints = 5;
    const TracedContour contour = traceContour(problem_->h(), kSeed, opt);
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_GE(countKind(contour.diagnostics,
                        TraceEventKind::BudgetExhausted),
              1);
}

TEST_F(FaultedTracerOnTspc, TransientFaultIsClassifiedAndRetried) {
    // Two consecutive failed transients mid-trace: the recovery policy must
    // re-aim the predictor (same alpha) instead of halving, then continue.
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::TransientFail, 8, 9}});
    SimStats stats;
    const TracedContour contour =
        traceContour(h, kSeed, window(), &stats);
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_GE(countKind(contour.diagnostics,
                        TraceEventKind::TransientFailed),
              1);
    EXPECT_GE(stats.traceTransientRetries, 1u);
    EXPECT_EQ(stats.traceStepHalvings, 0u);  // retries absorbed the fault
    EXPECT_GE(contour.points.size(), 8u);    // and the trace completed
    expectContourFinite(contour);
}

TEST_F(FaultedTracerOnTspc, PersistentTransientFaultEndsInStepUnderflow) {
    // From call 8 on, every transient fails: retries, then halvings, then a
    // classified underflow -- never a hang and never an unexplained stop.
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::TransientFail, 8, -1}});
    SimStats stats;
    const TracedContour contour =
        traceContour(h, kSeed, window(), &stats);
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_GE(countKind(contour.diagnostics,
                        TraceEventKind::TransientFailed),
              1);
    EXPECT_GE(countKind(contour.diagnostics,
                        TraceEventKind::StepUnderflow),
              1);
    EXPECT_GT(stats.traceStepHalvings, 0u);
    expectContourFinite(contour);
}

TEST_F(FaultedTracerOnTspc, FlatGradientTriggersPlateauReseed) {
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::FlatGradient, 8, 9}});
    SimStats stats;
    const TracedContour contour =
        traceContour(h, kSeed, window(), &stats);
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_GE(countKind(contour.diagnostics,
                        TraceEventKind::GradientVanished),
              1);
    EXPECT_GE(stats.tracePlateauReseeds, 1u);
    EXPECT_GE(contour.points.size(), 8u);
    expectContourFinite(contour);
}

TEST_F(FaultedTracerOnTspc, HostileNanEvaluationIsCaughtByCorrectorGuard) {
    // h = NaN while still claiming success: only a misbehaving HFunction
    // override can do this, and the corrector-level guard must classify it
    // instead of letting `wander > limit` (false for NaN) accept the point.
    FaultInjectingHFunction h(problem_->h(), {{FaultKind::NanH, 8, 9}});
    SimStats stats;
    const TracedContour contour =
        traceContour(h, kSeed, window(), &stats);
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_GE(countKind(contour.diagnostics, TraceEventKind::NonFinite), 1);
    EXPECT_GE(stats.traceNonFiniteRejections, 1u);
    expectContourFinite(contour);
}

TEST_F(FaultedTracerOnTspc, GuardedNonFiniteTransientIsClassified) {
    // The concrete HFunction's own guard output (success=false,
    // nonFinite=true) must reach the taxonomy as NonFinite, not be lumped
    // with ordinary transient failures.
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::NonFiniteEval, 8, 9}});
    SimStats stats;
    const TracedContour contour =
        traceContour(h, kSeed, window(), &stats);
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_GE(countKind(contour.diagnostics, TraceEventKind::NonFinite), 1);
    EXPECT_EQ(countKind(contour.diagnostics,
                        TraceEventKind::TransientFailed),
              0);
    expectContourFinite(contour);
}

TEST_F(FaultedTracerOnTspc, AmplifiedResidualDivergesTheCorrector) {
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::AmplifyH, 8, -1}});
    const TracedContour contour = traceContour(h, kSeed, window());
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_GE(countKind(contour.diagnostics,
                        TraceEventKind::CorrectorDiverged),
              1);
    // Every termination is still explained.
    EXPECT_GE(countKind(contour.diagnostics,
                        TraceEventKind::StepUnderflow),
              1);
    expectContourFinite(contour);
}

TEST_F(FaultedTracerOnTspc, OverflowingGradientNeverPutsNanInTheContour) {
    // A finite-but-enormous gradient overflows the Gram product H H^T; the
    // corrector must fail in a classified way and the contour stay finite.
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::OverflowGradient, 8, -1}});
    const TracedContour contour = traceContour(h, kSeed, window());
    ASSERT_TRUE(contour.seedConverged);
    ASSERT_FALSE(contour.diagnostics.empty());
    EXPECT_LE(contour.points.size(),
              static_cast<std::size_t>(window().maxPoints));
    expectContourFinite(contour);
}

TEST_F(FaultedTracerOnTspc, SeedFaultIsClassifiedWithoutAnyPoints) {
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::NonFiniteEval, 0, -1}});
    const TracedContour contour = traceContour(h, kSeed, window());
    EXPECT_FALSE(contour.seedConverged);
    EXPECT_TRUE(contour.points.empty());
    // No empty contour without a reason: the seed failure is on record.
    ASSERT_EQ(contour.diagnostics.events.size(), 1u);
    EXPECT_EQ(contour.diagnostics.events[0].kind,
              TraceEventKind::NonFinite);
    EXPECT_EQ(contour.diagnostics.events[0].phase, TracePhase::Seed);
}

TEST_F(FaultedTracerOnTspc, SeedCorrectedOutsideBoundsReportsLeftBounds) {
    // The window sits far from where the seed lands on the curve: the
    // corrector succeeds but the tracer must refuse to emit the
    // out-of-window point -- and say why. Tracing still proceeds from the
    // converged seed (the standard flow clamps seeds to the window edge, so
    // an overshoot must not kill the whole contour), but here every traced
    // point is also outside, so the contour stays empty.
    TracerOptions opt = window();
    opt.bounds = SkewBounds{500e-12, 600e-12, 50e-12, 120e-12};
    const TracedContour contour = traceContour(problem_->h(), kSeed, opt);
    EXPECT_TRUE(contour.seedConverged);
    EXPECT_TRUE(contour.points.empty());
    ASSERT_GE(contour.diagnostics.events.size(), 1u);
    EXPECT_EQ(contour.diagnostics.events[0].kind,
              TraceEventKind::LeftBounds);
    EXPECT_EQ(contour.diagnostics.events[0].phase, TracePhase::Seed);
}

TEST_F(FaultedTracerOnTspc, ArclengthCorrectorSurvivesTheSameFaults) {
    TracerOptions opt = window();
    opt.correctorKind = CorrectorKind::PseudoArclength;
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::TransientFail, 8, 9}});
    SimStats stats;
    const TracedContour contour = traceContour(h, kSeed, opt, &stats);
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_GE(countKind(contour.diagnostics,
                        TraceEventKind::TransientFailed),
              1);
    expectContourFinite(contour);
}

TEST_F(FaultedTracerOnTspc, DisabledRecoveryReproducesLegacyHalving) {
    TracerOptions opt = window();
    opt.transientRetryLimit = 0;  // legacy: halve immediately
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::TransientFail, 8, 8}});
    SimStats stats;
    const TracedContour contour = traceContour(h, kSeed, opt, &stats);
    ASSERT_TRUE(contour.seedConverged);
    EXPECT_EQ(stats.traceTransientRetries, 0u);
    EXPECT_GE(stats.traceStepHalvings, 1u);
    expectContourFinite(contour);
}

// -------------------------------------------- corrector-level consistency

TEST_F(FaultedTracerOnTspc, MpnrReportsResidualAtItsReturnedPoint) {
    // Out-of-budget exits rewind the speculative last step: the reported
    // (point, h) pair must be exactly consistent, bit for bit.
    MpnrOptions opt;
    opt.maxIterations = 2;
    const MpnrResult r = solveMpnr(problem_->h(), kSeed, opt);
    ASSERT_FALSE(r.converged);
    const HEvaluation check =
        problem_->h().evaluate(r.point.setup, r.point.hold);
    ASSERT_TRUE(check.success);
    EXPECT_EQ(check.h, r.h);
    EXPECT_EQ(check.dhds, r.dhds);
    EXPECT_EQ(check.dhdh, r.dhdh);
}

TEST_F(FaultedTracerOnTspc, SeedSearchNamesTheNonFiniteGuard) {
    // The scalar drivers cannot classify into TraceDiagnostics (they do not
    // trace); they must instead say "NaN/Inf guard" in the thrown message.
    FaultInjectingHFunction h(
        problem_->h(), {{FaultKind::NonFiniteEval, 0, -1}});
    try {
        (void)findSeedPoint(h, problem_->passSign());
        FAIL() << "findSeedPoint accepted a non-finite transient";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("NaN/Inf guard"),
                  std::string::npos)
            << e.what();
    }
}

// ------------------------------------------------ transient-engine guards

TEST(TransientGuards, InjectedSensitivityNanTripsTheGuard) {
    // NaN enters through addSkewDerivative: the state trajectory is clean,
    // so only the new sensitivity guard can catch this (before it, the NaN
    // flowed silently into dh/dtau and was misclassified as a vanished
    // gradient).
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<VoltageSource>("V1", a, kGround, 1.0);
    ckt.add<FaultInjectingDevice>(
        std::make_unique<Resistor>("R1", a, kGround, 1e3), a,
        DeviceFaultKind::SensitivityNan, 0);
    ckt.finalize();

    TransientOptions opt;
    opt.tStop = 1e-9;
    opt.fixedSteps = 10;
    opt.trackSkewSensitivities = true;
    const TransientResult tr = TransientAnalysis(ckt, opt).run();
    EXPECT_FALSE(tr.success);
    EXPECT_TRUE(tr.nonFinite);
    EXPECT_NE(tr.failureReason.find("non-finite sensitivity"),
              std::string::npos)
        << tr.failureReason;
}

TEST(TransientGuards, InjectedResidualNanIsCaughtByAcceptedStateGuard) {
    // NaN stamped into the KCL residual slips PAST Newton: its tolerance
    // comparisons are false for NaN, so the iteration "converges" onto a
    // NaN state. The accepted-state guard is the backstop that turns this
    // into a classified non-finite failure instead of a poisoned waveform.
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<VoltageSource>("V1", a, kGround, 1.0);
    // The DC solve takes the first few eval calls; call 8 lands inside the
    // stepping loop so the failure is a step failure, not a DC throw.
    ckt.add<FaultInjectingDevice>(
        std::make_unique<Resistor>("R1", a, kGround, 1e3), a,
        DeviceFaultKind::ResidualNan, 8);
    ckt.finalize();

    TransientOptions opt;
    opt.tStop = 1e-9;
    opt.fixedSteps = 10;
    const TransientResult tr = TransientAnalysis(ckt, opt).run();
    EXPECT_FALSE(tr.success);
    EXPECT_TRUE(tr.nonFinite);
    EXPECT_NE(tr.failureReason.find("non-finite accepted state"),
              std::string::npos)
        << tr.failureReason;
}

TEST(TransientGuards, FaultWrapperForwardsCleanlyWhenDisarmed) {
    // kind=None: the wrapped circuit must behave exactly like the bare one.
    const auto build = [](bool wrapped) {
        Circuit ckt;
        const NodeId a = ckt.node("a");
        ckt.add<VoltageSource>("V1", a, kGround, 1.0);
        if (wrapped) {
            ckt.add<FaultInjectingDevice>(
                std::make_unique<Resistor>("R1", a, kGround, 1e3), a,
                DeviceFaultKind::None, 0);
        } else {
            ckt.add<Resistor>("R1", a, kGround, 1e3);
        }
        ckt.finalize();
        TransientOptions opt;
        opt.tStop = 1e-9;
        opt.fixedSteps = 10;
        return TransientAnalysis(ckt, opt).run();
    };
    const TransientResult bare = build(false);
    const TransientResult wrapped = build(true);
    ASSERT_TRUE(bare.success);
    ASSERT_TRUE(wrapped.success);
    ASSERT_EQ(bare.finalState.size(), wrapped.finalState.size());
    for (std::size_t i = 0; i < bare.finalState.size(); ++i) {
        EXPECT_EQ(bare.finalState[i], wrapped.finalState[i]);
    }
}

// -------------------------------------------- batch-level determinism

std::vector<LibraryCell> smallLibrary() {
    const auto tspcAt = [](double load) {
        return [load] {
            TspcOptions opt;
            opt.outputLoadCapacitance = load;
            return buildTspcRegister(opt);
        };
    };
    return {
        LibraryCell{"TSPC_X1", tspcAt(20e-15), CriterionOptions{}},
        LibraryCell{"TSPC_X2", tspcAt(40e-15), CriterionOptions{}},
    };
}

RunConfig fastConfig(int threads) {
    RunConfig cfg = RunConfig::defaults().withThreads(threads);
    cfg.tracer.maxPoints = 6;
    cfg.tracer.bounds = SkewBounds{80e-12, 900e-12, 40e-12, 700e-12};
    return cfg;
}

TEST(TraceDiagnosticsParallel, DiagnosticsAreThreadCountDeterministic) {
    // The per-row incident log (and the new trace counters) must be
    // byte-identical for any worker count -- this binary also runs under
    // tsan in the sanitizer sweep.
    const LibraryResult serial =
        characterizeLibrary(smallLibrary(), fastConfig(1));
    const LibraryResult parallel =
        characterizeLibrary(smallLibrary(), fastConfig(8));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const TraceDiagnostics& a = serial[i].diagnostics;
        const TraceDiagnostics& b = parallel[i].diagnostics;
        ASSERT_EQ(a.events.size(), b.events.size()) << serial[i].cell;
        for (std::size_t k = 0; k < a.events.size(); ++k) {
            EXPECT_EQ(a.events[k].kind, b.events[k].kind);
            EXPECT_EQ(a.events[k].phase, b.events[k].phase);
            EXPECT_EQ(a.events[k].at.setup, b.events[k].at.setup);
            EXPECT_EQ(a.events[k].at.hold, b.events[k].at.hold);
            EXPECT_EQ(a.events[k].stepLength, b.events[k].stepLength);
            EXPECT_EQ(a.events[k].correctorIterations,
                      b.events[k].correctorIterations);
        }
        EXPECT_EQ(serial[i].stats.traceStepHalvings,
                  parallel[i].stats.traceStepHalvings);
        EXPECT_EQ(serial[i].stats.traceTransientRetries,
                  parallel[i].stats.traceTransientRetries);
    }
    EXPECT_EQ(serial.stats.traceStepHalvings,
              parallel.stats.traceStepHalvings);
    EXPECT_EQ(serial.stats.traceNonFiniteRejections,
              parallel.stats.traceNonFiniteRejections);
}

}  // namespace
}  // namespace shtrace
