// Driver-level tests of the persistent result cache: a cold batch
// populates the store, a second identical run is served entirely from it
// (zero transient integrations, byte-identical rows, any thread count),
// policies gate reads/writes, corruption recomputes, and a perturbed
// clock-to-Q target warm-starts the tracer from the cached contour.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/library.hpp"
#include "shtrace/chz/monte_carlo.hpp"
#include "shtrace/chz/pvt.hpp"
#include "shtrace/chz/surface_method.hpp"
#include "shtrace/store/cache.hpp"
#include "shtrace/store/key.hpp"
#include "shtrace/store/serialize.hpp"

namespace shtrace {
namespace {

namespace fs = std::filesystem;

class StoreCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::path(::testing::TempDir()) /
               ("shtrace_cache_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)));
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string dir() const { return dir_.string(); }

    std::size_t entryCount() const {
        return store::ResultStore(dir()).list().size();
    }

    fs::path dir_;
};

std::vector<LibraryCell> twoCellLibrary() {
    TspcOptions heavy;
    heavy.outputLoadCapacitance = 40e-15;
    return {
        LibraryCell{"TSPC_X1", [] { return buildTspcRegister(); },
                    CriterionOptions{}},
        LibraryCell{"TSPC_X2",
                    [heavy] { return buildTspcRegister(heavy); },
                    CriterionOptions{}},
    };
}

RunConfig fastConfig() {
    RunConfig config;
    config.traceContours = true;
    config.tracer.maxPoints = 6;
    config.tracer.bounds = SkewBounds{80e-12, 900e-12, 40e-12, 700e-12};
    return config;
}

void expectSameRow(const LibraryRow& a, const LibraryRow& b) {
    EXPECT_EQ(a.cell, b.cell);
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(std::memcmp(&a.setupTime, &b.setupTime, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.holdTime, &b.holdTime, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.characteristicClockToQ,
                          &b.characteristicClockToQ, sizeof(double)),
              0);
    ASSERT_EQ(a.contour.size(), b.contour.size());
    for (std::size_t i = 0; i < a.contour.size(); ++i) {
        EXPECT_EQ(a.contour[i].setup, b.contour[i].setup);
        EXPECT_EQ(a.contour[i].hold, b.contour[i].hold);
    }
}

TEST_F(StoreCacheTest, LibrarySecondRunDoesZeroTransientWork) {
    const RunConfig cold = fastConfig().withCacheDir(dir());
    const auto first = characterizeLibrary(twoCellLibrary(), cold);
    ASSERT_TRUE(first[0].success && first[1].success);
    EXPECT_GT(first.stats.transientSolves, 0u);
    EXPECT_EQ(first.stats.cacheMisses, 2u);
    EXPECT_EQ(first.stats.cacheHits, 0u);
    EXPECT_EQ(entryCount(), 2u);

    // Identical run, 1 thread and 8 threads: every row served from the
    // store, no transient integration anywhere, rows byte-identical.
    for (const int threads : {1, 8}) {
        const RunConfig warm =
            fastConfig().withCacheDir(dir()).withThreads(threads);
        const auto second = characterizeLibrary(twoCellLibrary(), warm);
        EXPECT_EQ(second.stats.transientSolves, 0u) << threads;
        EXPECT_EQ(second.stats.timeSteps, 0u) << threads;
        EXPECT_EQ(second.stats.hEvaluations, 0u) << threads;
        EXPECT_EQ(second.stats.cacheHits, 2u) << threads;
        EXPECT_EQ(second.stats.cacheMisses, 0u) << threads;
        ASSERT_EQ(second.size(), first.size());
        for (std::size_t i = 0; i < first.size(); ++i) {
            expectSameRow(first[i], second[i]);
        }
    }
}

TEST_F(StoreCacheTest, ReadOnlyNeverWritesRefreshRecomputes) {
    // ReadOnly against an empty store: computes, stores nothing.
    const RunConfig readOnly = fastConfig()
                                   .withCacheDir(dir())
                                   .withCachePolicy(CachePolicy::ReadOnly);
    const auto first = characterizeLibrary(twoCellLibrary(), readOnly);
    EXPECT_TRUE(first[0].success);
    EXPECT_EQ(first.stats.cacheMisses, 2u);
    EXPECT_EQ(entryCount(), 0u);

    // Populate, then Refresh: recomputes (no hits) but re-publishes.
    characterizeLibrary(twoCellLibrary(), fastConfig().withCacheDir(dir()));
    ASSERT_EQ(entryCount(), 2u);
    const RunConfig refresh = fastConfig()
                                  .withCacheDir(dir())
                                  .withCachePolicy(CachePolicy::Refresh)
                                  .withWarmStart(false);
    const auto again = characterizeLibrary(twoCellLibrary(), refresh);
    EXPECT_GT(again.stats.transientSolves, 0u);
    EXPECT_EQ(again.stats.cacheHits, 0u);
    EXPECT_EQ(again.stats.cacheMisses, 2u);
    EXPECT_EQ(entryCount(), 2u);
}

TEST_F(StoreCacheTest, CorruptedEntryRecomputesAndHeals) {
    const RunConfig config = fastConfig().withCacheDir(dir());
    const auto first = characterizeLibrary(twoCellLibrary(), config);
    ASSERT_EQ(entryCount(), 2u);

    // Trash every entry file in the store.
    for (const auto& item : fs::directory_iterator(dir_)) {
        std::ofstream(item.path()) << "scrambled bits\n";
    }
    EXPECT_EQ(entryCount(), 0u);

    const auto second = characterizeLibrary(twoCellLibrary(), config);
    EXPECT_TRUE(second[0].success && second[1].success);
    EXPECT_GT(second.stats.transientSolves, 0u);  // really recomputed
    EXPECT_EQ(second.stats.cacheMisses, 2u);
    for (std::size_t i = 0; i < first.size(); ++i) {
        expectSameRow(first[i], second[i]);  // determinism, not the cache
    }
    EXPECT_EQ(entryCount(), 2u);  // healed

    const auto third = characterizeLibrary(twoCellLibrary(), config);
    EXPECT_EQ(third.stats.cacheHits, 2u);
}

TEST_F(StoreCacheTest, CharacterizeHitSkipsAllTransients) {
    const RegisterFixture fixture = buildTspcRegister();
    CharacterizeOptions opt = fastConfig().withCacheDir(dir());

    const CharacterizeResult cold = characterizeInterdependent(fixture, opt);
    ASSERT_TRUE(cold.success);
    EXPECT_EQ(cold.stats.cacheMisses, 1u);
    EXPECT_GT(cold.stats.transientSolves, 0u);

    const CharacterizeResult hit = characterizeInterdependent(fixture, opt);
    EXPECT_TRUE(hit.success);
    EXPECT_EQ(hit.stats.cacheHits, 1u);
    EXPECT_EQ(hit.stats.transientSolves, 0u);
    EXPECT_EQ(std::memcmp(&hit.characteristicClockToQ,
                          &cold.characteristicClockToQ, sizeof(double)),
              0);
    ASSERT_EQ(hit.contour.points.size(), cold.contour.points.size());
    for (std::size_t i = 0; i < cold.contour.points.size(); ++i) {
        EXPECT_EQ(hit.contour.points[i].setup, cold.contour.points[i].setup);
        EXPECT_EQ(hit.contour.points[i].hold, cold.contour.points[i].hold);
    }
}

TEST_F(StoreCacheTest, PerturbedTargetWarmStartsFromCachedContour) {
    const RegisterFixture fixture = buildTspcRegister();
    CharacterizeOptions opt = fastConfig().withCacheDir(dir());

    const CharacterizeResult cold = characterizeInterdependent(fixture, opt);
    ASSERT_TRUE(cold.success);

    // Same circuit and recipe, different clock-to-Q degradation target:
    // full key misses, problem key matches the cached contour.
    CharacterizeOptions perturbed = opt;
    perturbed.criterion.degradation = opt.criterion.degradation + 0.05;
    const CharacterizeResult warm =
        characterizeInterdependent(fixture, perturbed);
    ASSERT_TRUE(warm.success);
    EXPECT_EQ(warm.stats.cacheHits, 0u);
    EXPECT_EQ(warm.stats.cacheMisses, 1u);
    EXPECT_EQ(warm.stats.cacheWarmStarts, 1u);
    EXPECT_EQ(warm.seed.evaluations, 0);  // no bisection ran

    // The same perturbed run without a cache pays for the seed search.
    CharacterizeOptions noCache = perturbed;
    noCache.cacheDir.clear();
    const CharacterizeResult coldPerturbed =
        characterizeInterdependent(fixture, noCache);
    ASSERT_TRUE(coldPerturbed.success);
    EXPECT_GT(coldPerturbed.seed.evaluations, 0);
    EXPECT_LT(warm.stats.transientSolves,
              coldPerturbed.stats.transientSolves);

    // Warm start can be opted out of.
    CharacterizeOptions noWarm = perturbed;
    noWarm.warmStart = false;
    noWarm.criterion.degradation = opt.criterion.degradation + 0.07;
    const CharacterizeResult opted =
        characterizeInterdependent(fixture, noWarm);
    EXPECT_EQ(opted.stats.cacheWarmStarts, 0u);
}

TEST_F(StoreCacheTest, PvtSweepCachesPerCorner) {
    const CornerFixtureBuilder builder = [](const ProcessCorner& corner) {
        TspcOptions opt;
        opt.corner = corner;
        return buildTspcRegister(opt);
    };
    const std::vector<ProcessCorner> corners = {ProcessCorner::typical()};
    const RunConfig config = RunConfig::defaults().withCacheDir(dir());

    const auto first = sweepPvtCorners(corners, builder, config);
    ASSERT_TRUE(first[0].success);
    EXPECT_EQ(first.stats.cacheMisses, 1u);
    ASSERT_EQ(entryCount(), 1u);

    const auto second = sweepPvtCorners(corners, builder, config);
    EXPECT_EQ(second.stats.transientSolves, 0u);
    EXPECT_EQ(second.stats.cacheHits, 1u);
    EXPECT_EQ(std::memcmp(&first[0].setupTime, &second[0].setupTime,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&first[0].holdTime, &second[0].holdTime,
                          sizeof(double)),
              0);
    EXPECT_EQ(first[0].corner, second[0].corner);
}

TEST_F(StoreCacheTest, MonteCarloCachesPerSample) {
    const CornerFixtureBuilder builder = [](const ProcessCorner& corner) {
        TspcOptions opt;
        opt.corner = corner;
        return buildTspcRegister(opt);
    };
    MonteCarloOptions opt;
    opt.samples = 3;
    opt.seed = 7;
    opt.cacheDir = dir();

    const MonteCarloResult first =
        runMonteCarlo(ProcessCorner::typical(), builder, opt);
    ASSERT_EQ(first.samplesConverged, 3);
    EXPECT_EQ(first.stats.cacheMisses, 3u);

    const MonteCarloResult second =
        runMonteCarlo(ProcessCorner::typical(), builder, opt);
    EXPECT_EQ(second.stats.transientSolves, 0u);
    EXPECT_EQ(second.stats.cacheHits, 3u);
    ASSERT_EQ(second.samplesConverged, first.samplesConverged);
    for (std::size_t i = 0; i < first.setupTimes.size(); ++i) {
        EXPECT_EQ(std::memcmp(&first.setupTimes[i], &second.setupTimes[i],
                              sizeof(double)),
                  0);
        EXPECT_EQ(std::memcmp(&first.holdTimes[i], &second.holdTimes[i],
                              sizeof(double)),
                  0);
    }

    // A different RNG seed samples different corners: all misses.
    MonteCarloOptions reseeded = opt;
    reseeded.seed = 8;
    const MonteCarloResult third =
        runMonteCarlo(ProcessCorner::typical(), builder, reseeded);
    EXPECT_EQ(third.stats.cacheHits, 0u);
    EXPECT_EQ(third.stats.cacheMisses, 3u);
}

TEST_F(StoreCacheTest, SurfaceMethodCachesTheWholeGrid) {
    const FixtureSource source = [] { return buildTspcRegister(); };
    const RunConfig config = RunConfig::defaults().withCacheDir(dir());
    SurfaceMethodOptions opt;
    opt.setupPoints = 3;
    opt.holdPoints = 3;

    const SurfaceMethodResult first = runSurfaceMethod(source, config, opt);
    EXPECT_EQ(first.stats.cacheMisses, 1u);
    EXPECT_GT(first.stats.transientSolves, 0u);

    const SurfaceMethodResult second = runSurfaceMethod(source, config, opt);
    EXPECT_EQ(second.stats.transientSolves, 0u);
    EXPECT_EQ(second.stats.cacheHits, 1u);
    ASSERT_EQ(second.surface.setupCount(), first.surface.setupCount());
    for (std::size_t i = 0; i < first.surface.setupCount(); ++i) {
        for (std::size_t j = 0; j < first.surface.holdCount(); ++j) {
            EXPECT_EQ(second.surface.value(i, j), first.surface.value(i, j));
        }
    }

    // A different grid is a different entry.
    SurfaceMethodOptions denser = opt;
    denser.holdPoints = 4;
    const SurfaceMethodResult third =
        runSurfaceMethod(source, config, denser);
    EXPECT_EQ(third.stats.cacheHits, 0u);
    EXPECT_EQ(entryCount(), 2u);
}

// The serve daemon's coalescing prevents identical CONCURRENT requests
// from racing, but two independent processes (or a follower arriving just
// after the index entry is erased) can still publish the same key at the
// same time. save()'s unique-temp-file + atomic-rename contract says
// that race is benign: whichever rename lands last wins with identical
// content, readers never observe a torn entry, and no temp debris
// survives. This is the tsan-swept proof.
TEST_F(StoreCacheTest, ConcurrentSameKeyPublicationIsAtomic) {
    const store::ResultStore cache(dir());
    store::StoreEntry entry;
    entry.kind = store::kKindCharacterize;
    entry.key = 0x1234abcd5678ef00ull;
    entry.problem = 0x9999888877776666ull;
    entry.label = "racer";
    // A payload big enough that a torn write could not look complete.
    std::string payload;
    for (int i = 0; i < 200; ++i) {
        payload += "line " + std::to_string(i) + " of the same payload\n";
    }
    entry.payload = payload;

    constexpr int kWriters = 8;
    constexpr int kRoundsPerWriter = 25;
    std::vector<std::thread> writers;
    std::atomic<bool> readerSawTorn{false};
    std::atomic<bool> done{false};
    // Concurrent reader: every load during the race must be either a
    // clean miss (before the first publish) or the complete entry.
    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            const auto loaded = cache.load(entry.key);
            if (loaded && loaded->payload != payload) {
                readerSawTorn.store(true, std::memory_order_release);
            }
        }
    });
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&cache, &entry] {
            for (int round = 0; round < kRoundsPerWriter; ++round) {
                cache.save(entry);
            }
        });
    }
    for (auto& t : writers) {
        t.join();
    }
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_FALSE(readerSawTorn.load());
    const auto final = cache.load(entry.key);
    ASSERT_TRUE(final.has_value());
    EXPECT_EQ(final->payload, payload);
    EXPECT_EQ(final->label, "racer");
    // Exactly one entry file and zero leaked temp files.
    std::size_t files = 0, temps = 0;
    for (const auto& f : fs::directory_iterator(dir())) {
        ++files;
        if (f.path().filename().string().find(".tmp-") !=
            std::string::npos) {
            ++temps;
        }
    }
    EXPECT_EQ(files, 1u);
    EXPECT_EQ(temps, 0u);
}

}  // namespace
}  // namespace shtrace
