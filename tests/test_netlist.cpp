// Tests for the SPICE-style netlist parser.
#include <gtest/gtest.h>

#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/circuit/netlist_parser.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

TEST(Netlist, ParsesVoltageDividerAndSolves) {
    const auto parsed = parseNetlistString(R"(
* a comment line
V1 in 0 DC 3.0
R1 in mid 1k       ; trailing comment
R2 mid 0 2k
.end
)");
    EXPECT_EQ(parsed.circuit.nodeCount(), 2);
    EXPECT_EQ(parsed.circuit.deviceCount(), 3u);
    const DcResult dc = solveDcOperatingPoint(parsed.circuit);
    ASSERT_TRUE(dc.converged);
    const NodeId mid = parsed.circuit.findNode("mid");
    EXPECT_NEAR(dc.x[static_cast<std::size_t>(mid.index)], 2.0, 1e-5);
}

TEST(Netlist, ParsesEngineeringSuffixes) {
    const auto parsed = parseNetlistString(R"(
V1 a 0 2.5V
R1 a b 10kOhm
C1 b 0 100f
L1 b 0 2n
)");
    EXPECT_EQ(parsed.circuit.deviceCount(), 4u);
}

TEST(Netlist, ParsesAllSourceWaveforms) {
    const auto parsed = parseNetlistString(R"(
V1 a 0 PULSE(0 2.5 1n 0.1n 2n 0.1n)
V2 b 0 PWL(0 0 1n 2.5 2n 0)
V3 c 0 CLOCK(0 2.5 10n 1n 0.1n 0.1n)
V4 cb 0 CLOCK(0 2.5 10n 1.3n 0.1n 0.1n 0.5 INV)
V5 d 0 DATAPULSE(0 2.5 11.05n 0.1n)
I1 e 0 DC 1m
R1 a b 1k
R2 b c 1k
R3 c d 1k
R4 d e 1k
R5 e 0 1k
R6 cb 0 1k
)");
    EXPECT_EQ(parsed.clocks.size(), 2u);
    EXPECT_EQ(parsed.dataPulses.size(), 1u);
    const auto clock = parsed.theClock();  // the non-inverted one
    EXPECT_FALSE(clock->spec().inverted);
    EXPECT_NEAR(clock->risingEdgeMidpoint(1), 11.05e-9, 1e-15);
    const auto data = parsed.theDataPulse();
    EXPECT_NEAR(data->spec().activeEdgeTime, 11.05e-9, 1e-15);
}

TEST(Netlist, ParsesMosfetWithInlineAndModelParams) {
    const auto parsed = parseNetlistString(R"(
.model mynmos NMOS VT0=0.5 KP=100u LAMBDA=0.05
V1 vdd 0 2.5
M1 out in 0 0 mynmos W=2u L=0.25u
M2 out in vdd vdd PMOS W=4u L=0.25u VT0=0.45
R1 out 0 100k
Vin in 0 1.2
)");
    EXPECT_EQ(parsed.circuit.deviceCount(), 5u);
    // Finds a DC operating point (an inverter biased mid-rail).
    const DcResult dc = solveDcOperatingPoint(parsed.circuit);
    EXPECT_TRUE(dc.converged);
}

TEST(Netlist, ParsesDiodeAndVcvs) {
    const auto parsed = parseNetlistString(R"(
V1 a 0 1.0
D1 a b IS=1e-14 N=1.2 CJ0=0.5p
R1 b 0 1k
E1 c 0 b 0 2.0
R2 c 0 1k
)");
    EXPECT_EQ(parsed.circuit.deviceCount(), 5u);
    const DcResult dc = solveDcOperatingPoint(parsed.circuit);
    ASSERT_TRUE(dc.converged);
    const NodeId b = parsed.circuit.findNode("b");
    const NodeId c = parsed.circuit.findNode("c");
    EXPECT_NEAR(dc.x[static_cast<std::size_t>(c.index)],
                2.0 * dc.x[static_cast<std::size_t>(b.index)], 1e-6);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
    try {
        parseNetlistString("V1 a 0 1.0\nR1 a 0 bogus\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(Netlist, RejectsUnknownElementAndModel) {
    EXPECT_THROW(parseNetlistString("X1 a b 1k\n"), ParseError);
    EXPECT_THROW(parseNetlistString("M1 d g s b nosuchmodel\n"), ParseError);
    EXPECT_THROW(parseNetlistString(".model m1 BJT\n"), ParseError);
}

TEST(Netlist, RejectsContentAfterEnd) {
    EXPECT_THROW(parseNetlistString("R1 a 0 1k\n.end\nR2 b 0 1k\n"),
                 ParseError);
}

TEST(Netlist, RejectsEmptyNetlist) {
    EXPECT_THROW(parseNetlistString("* nothing here\n"), ParseError);
}

TEST(Netlist, RejectsMalformedWaveforms) {
    EXPECT_THROW(parseNetlistString("V1 a 0 PULSE(0 2.5 1n)\nR1 a 0 1k\n"),
                 ParseError);
    EXPECT_THROW(parseNetlistString("V1 a 0 PWL(0 0 1n)\nR1 a 0 1k\n"),
                 ParseError);
    EXPECT_THROW(parseNetlistString("V1 a 0 WIGGLE(1 2)\nR1 a 0 1k\n"),
                 ParseError);
}

TEST(Netlist, TheDataPulseRequiresExactlyOne) {
    const auto none = parseNetlistString("R1 a 0 1k\n");
    EXPECT_THROW(none.theDataPulse(), InvalidArgumentError);
}

TEST(Netlist, MangledInputNeverCrashes) {
    // Deterministic mutation sweep over a valid netlist: every mutant must
    // either parse or throw ParseError/InvalidArgumentError -- never crash
    // or hang. (A poor man's fuzzer, kept deterministic for CI.)
    const std::string base =
        "V1 in 0 PULSE(0 2.5 1n 0.1n 2n 0.1n)\n"
        "M1 out in 0 0 NMOS W=1u L=0.25u\n"
        "R1 out 0 10k\n"
        "C1 out 0 5f\n"
        ".end\n";
    const char junk[] = {'(', ')', '=', '!', 'z', '9', ' ', '\t', '-'};
    int parsed = 0;
    int rejected = 0;
    for (std::size_t pos = 0; pos < base.size(); pos += 3) {
        for (char c : junk) {
            std::string mutant = base;
            mutant[pos] = c;
            try {
                (void)parseNetlistString(mutant);
                ++parsed;
            } catch (const Error&) {
                ++rejected;
            }
        }
    }
    // Sanity: the sweep exercised both outcomes.
    EXPECT_GT(parsed, 0);
    EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace shtrace
