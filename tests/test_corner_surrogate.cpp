// Tests for the cross-corner surrogate math (corner_surrogate.hpp) and
// the corner-family driver (corner_family.hpp): grids and donor metric,
// arc-length resampling, linear-exact interpolation with leave-one-out
// errors, fault injection (a failed anchor never poisons the surrogate),
// exhaustive bit-identity with sweepPvtCorners, donor determinism across
// thread counts, the corner_row store round trip, and Liberty-lite
// provenance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/corner_family.hpp"
#include "shtrace/store/serialize.hpp"

namespace shtrace {
namespace {

RegisterFixture buildTspcAt(const ProcessCorner& corner) {
    TspcOptions opt;
    opt.corner = corner;
    return buildTspcRegister(opt);
}

/// A process-only grid (vdd and temperature degenerate), the cheapest
/// shape that still exercises anchors / escalation / surrogate fill.
PvtAxes processAxis(std::vector<double> values) {
    PvtAxes axes;
    axes.process = std::move(values);
    return axes;
}

/// Contour-mode config kept cheap: few points, the known TSPC window.
RunConfig cheapContourConfig() {
    RunConfig config;
    config.tracer.maxPoints = 6;
    config.tracer.bounds = SkewBounds{120e-12, 560e-12, 60e-12, 460e-12};
    return config;
}

TEST(CornerAtPvt, BlendsProcessAndAppliesOverrides) {
    const ProcessCorner ss = cornerAtPvt({-1.0, 2.25, 27.0});
    const ProcessCorner tt = cornerAtPvt({0.0, 2.5, 27.0});
    const ProcessCorner ff = cornerAtPvt({1.0, 2.75, 27.0});
    // FF is fast (low thresholds, high gain), SS the opposite.
    EXPECT_LT(ff.vtn, tt.vtn);
    EXPECT_GT(ss.vtn, tt.vtn);
    EXPECT_GT(ff.kpn, tt.kpn);
    EXPECT_LT(ss.kpn, tt.kpn);
    // The explicit vdd override is exact.
    EXPECT_DOUBLE_EQ(ss.vdd, 2.25);
    EXPECT_DOUBLE_EQ(ff.vdd, 2.75);
    // The name is self-describing.
    EXPECT_EQ(cornerAtPvt({0.5, 2.4, 85.0}).name, "P+0.50/V2.400/T+085");
    // A midpoint blend lands between its neighbors.
    const ProcessCorner half = cornerAtPvt({0.5, 2.5, 27.0});
    EXPECT_LT(half.vtn, tt.vtn);
    EXPECT_GT(half.vtn, ff.vtn);
}

TEST(PvtAxes, IndexingRoundTripsAndValidates) {
    PvtAxes axes;
    axes.process = {-1.0, 0.0, 1.0};
    axes.vdd = {2.25, 2.75};
    axes.temperatureC = {-40.0, 27.0, 125.0};
    axes.validate();
    ASSERT_EQ(axes.cornerCount(), 18u);
    for (std::size_t i = 0; i < axes.cornerCount(); ++i) {
        const PvtPoint p = axes.at(i);
        // Process-major flat index: index = (ip*nv + iv)*nt + it.
        const std::size_t it = i % 3, iv = (i / 3) % 2, ip = i / 6;
        EXPECT_DOUBLE_EQ(p.process, axes.process[ip]);
        EXPECT_DOUBLE_EQ(p.vdd, axes.vdd[iv]);
        EXPECT_DOUBLE_EQ(p.temperatureC, axes.temperatureC[it]);
    }

    PvtAxes bad;
    bad.process = {};
    EXPECT_THROW(bad.validate(), Error);
    bad.process = {1.0, 0.0};
    EXPECT_THROW(bad.validate(), Error);
    bad.process = {0.0, 0.0};
    EXPECT_THROW(bad.validate(), Error);
}

TEST(PvtAxes, NormalizedIgnoresDegenerateAxes) {
    const PvtAxes axes = processAxis({-1.0, 0.0, 1.0});
    const auto lo = axes.normalized(axes.at(0));
    const auto mid = axes.normalized(axes.at(1));
    const auto hi = axes.normalized(axes.at(2));
    EXPECT_DOUBLE_EQ(lo[0], 0.0);
    EXPECT_DOUBLE_EQ(mid[0], 0.5);
    EXPECT_DOUBLE_EQ(hi[0], 1.0);
    // Degenerate vdd / temperature axes contribute exactly 0.
    EXPECT_DOUBLE_EQ(lo[1], 0.0);
    EXPECT_DOUBLE_EQ(hi[2], 0.0);
}

TEST(PvtAxes, AnchorsAreVerticesPlusCenter) {
    PvtAxes axes;
    axes.process = {-1.0, 0.0, 1.0};
    axes.temperatureC = {-40.0, 27.0, 125.0};
    // 3x1x3 grid: vertices {0,2,6,8} + index-center (1,0,1) -> 4.
    EXPECT_EQ(axes.anchorIndices(),
              (std::vector<std::size_t>{0, 2, 4, 6, 8}));
    // A degenerate 1x1x1 grid has a single anchor.
    EXPECT_EQ(PvtAxes{}.anchorIndices(), (std::vector<std::size_t>{0}));
}

TEST(NearestCorner, TieBreaksTowardSmallerIndex) {
    const PvtAxes axes = processAxis({-1.0, -0.5, 0.0, 0.5, 1.0});
    // Corner 1 is equidistant from 0 and 2: the smaller index wins.
    EXPECT_EQ(nearestCornerIndex(axes, 1, {0, 2, 4}), 0u);
    EXPECT_EQ(nearestCornerIndex(axes, 1, {4, 2, 0}), 0u);
    // Corner 3 ties between 2 and 4.
    EXPECT_EQ(nearestCornerIndex(axes, 3, {0, 2, 4}), 2u);
    // A strictly nearer candidate wins regardless of order.
    EXPECT_EQ(nearestCornerIndex(axes, 4, {0, 2}), 2u);
    EXPECT_THROW(nearestCornerIndex(axes, 0, {}), Error);
}

TEST(ArcLengthResample, UniformSpacingAndRoundTrip) {
    // A straight segment sampled very non-uniformly.
    const std::vector<SkewPoint> line{
        {0.0, 0.0}, {1e-12, 1e-12}, {90e-12, 90e-12}, {100e-12, 100e-12}};
    const auto even = resampleByArcLength(line, 5);
    ASSERT_EQ(even.size(), 5u);
    // Endpoints preserved, interior points equally spaced in arc length.
    EXPECT_DOUBLE_EQ(even.front().setup, 0.0);
    EXPECT_DOUBLE_EQ(even.back().setup, 100e-12);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(even[i].setup, 25e-12 * static_cast<double>(i), 1e-24);
        EXPECT_NEAR(even[i].hold, 25e-12 * static_cast<double>(i), 1e-24);
    }
    // Resampling an already-uniform polyline is idempotent.
    const auto again = resampleByArcLength(even, 5);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(again[i].setup, even[i].setup, 1e-24);
        EXPECT_NEAR(again[i].hold, even[i].hold, 1e-24);
    }
}

TEST(ArcLengthResample, DegenerateContoursReplicate) {
    const auto single = resampleByArcLength({{5e-12, 7e-12}}, 4);
    ASSERT_EQ(single.size(), 4u);
    for (const SkewPoint& p : single) {
        EXPECT_DOUBLE_EQ(p.setup, 5e-12);
        EXPECT_DOUBLE_EQ(p.hold, 7e-12);
    }
    // Zero total arc length (repeated point) also replicates.
    const auto repeated =
        resampleByArcLength({{5e-12, 7e-12}, {5e-12, 7e-12}}, 3);
    EXPECT_DOUBLE_EQ(repeated[2].hold, 7e-12);
    EXPECT_THROW(resampleByArcLength({}, 4), Error);
    EXPECT_THROW(resampleByArcLength({{0.0, 0.0}}, 1), Error);
}

/// An analytically-known family: every control point depends LINEARLY on
/// the normalized coordinates, which the polyharmonic + linear-tail
/// interpolant must reproduce exactly (up to solver roundoff).
std::vector<SkewPoint> linearFamilyContour(const std::array<double, 3>& x,
                                           std::size_t points) {
    std::vector<SkewPoint> contour;
    contour.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double t =
            static_cast<double>(i) / static_cast<double>(points - 1);
        contour.push_back(
            {(100.0 + 200.0 * t + 40.0 * x[0] - 25.0 * x[1] + 10.0 * x[2]) *
                 1e-12,
             (400.0 - 300.0 * t - 15.0 * x[0] + 30.0 * x[1] - 5.0 * x[2]) *
                 1e-12});
    }
    return contour;
}

std::vector<std::array<double, 3>> cubeNodes() {
    std::vector<std::array<double, 3>> nodes;
    for (const double a : {0.0, 1.0}) {
        for (const double b : {0.0, 1.0}) {
            for (const double c : {0.0, 1.0}) {
                nodes.push_back({a, b, c});
            }
        }
    }
    nodes.push_back({0.5, 0.5, 0.5});
    return nodes;
}

TEST(CornerSurrogate, ReproducesLinearFamiliesExactly) {
    const auto nodes = cubeNodes();
    std::vector<std::vector<SkewPoint>> contours;
    for (const auto& node : nodes) {
        contours.push_back(linearFamilyContour(node, 8));
    }
    CornerSurrogate surrogate;
    surrogate.fit(nodes, contours);
    ASSERT_TRUE(surrogate.fitted());
    EXPECT_EQ(surrogate.nodeCount(), 9u);
    EXPECT_EQ(surrogate.controlPoints(), 8u);

    // An untrained interior point: linear reproduction is exact.
    const std::array<double, 3> x{0.3, 0.7, 0.2};
    const auto expected = linearFamilyContour(x, 8);
    const auto predicted = surrogate.predict(x);
    ASSERT_EQ(predicted.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(predicted[i].setup, expected[i].setup, 1e-22);
        EXPECT_NEAR(predicted[i].hold, expected[i].hold, 1e-22);
    }
    // And so is a linear scalar field interpolated through the same fit.
    std::vector<double> field;
    for (const auto& node : nodes) {
        field.push_back(3.0 + 2.0 * node[0] - node[1] + 0.5 * node[2]);
    }
    EXPECT_NEAR(surrogate.predictScalar(x, field),
                3.0 + 2.0 * x[0] - x[1] + 0.5 * x[2], 1e-9);
}

TEST(CornerSurrogate, LooErrorsVanishOnLinearFamilies) {
    const auto nodes = cubeNodes();
    std::vector<std::vector<SkewPoint>> contours;
    for (const auto& node : nodes) {
        contours.push_back(linearFamilyContour(node, 6));
    }
    CornerSurrogate surrogate;
    surrogate.fit(nodes, contours);
    const std::vector<double> loo = surrogate.looErrors();
    ASSERT_EQ(loo.size(), 9u);
    for (const double e : loo) {
        EXPECT_LT(e, 1e-20);  // exact modulo roundoff, on a 1e-10 scale
    }
}

TEST(CornerSurrogate, LooFlagsTheNonlinearNode) {
    // Eight linear nodes plus one corrupted contour: leave-one-out must
    // rank the corrupted node's error far above the linear ones.
    auto nodes = cubeNodes();
    std::vector<std::vector<SkewPoint>> contours;
    for (const auto& node : nodes) {
        contours.push_back(linearFamilyContour(node, 6));
    }
    for (SkewPoint& p : contours.back()) {
        p.hold += 50e-12;
    }
    CornerSurrogate surrogate;
    surrogate.fit(nodes, contours);
    const std::vector<double> loo = surrogate.looErrors();
    const std::size_t last = loo.size() - 1;
    for (std::size_t i = 0; i + 1 < loo.size(); ++i) {
        EXPECT_LT(loo[i], loo[last]);
    }
    EXPECT_GT(loo[last], 10e-12);
}

TEST(CornerSurrogate, DegradesToNearestNodeOnDegenerateFits) {
    // Two coincident-coordinate nodes defeat every tail and the RBF
    // matrix itself; the deterministic fallback is nearest-node lookup.
    CornerSurrogate surrogate;
    surrogate.fit({{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}},
                  {{{100e-12, 200e-12}}, {{300e-12, 400e-12}}});
    ASSERT_TRUE(surrogate.fitted());
    const auto p = surrogate.predict({0.0, 0.0, 0.0});
    ASSERT_EQ(p.size(), 1u);
    EXPECT_TRUE(std::isfinite(p[0].setup));
    EXPECT_TRUE(std::isfinite(p[0].hold));
}

TEST(CornerFamily, ExhaustiveModeMatchesPvtSweepBitIdentically) {
    const PvtAxes axes = processAxis({-1.0, 0.0, 1.0});
    RunConfig config;
    config.traceContours = false;  // independent numbers only

    const CornerFamilyResult family =
        characterizeCornerFamily(axes, buildTspcAt, config);
    const PvtSweepResult sweep =
        sweepPvtCorners(axes.corners(), buildTspcAt, config);

    ASSERT_EQ(family.rows.size(), sweep.rows.size());
    EXPECT_EQ(family.anchorsTraced, 3u);
    EXPECT_EQ(family.surrogateAccepted, 0u);
    for (std::size_t i = 0; i < sweep.rows.size(); ++i) {
        const CornerFamilyRow& a = family.rows[i];
        const PvtCornerResult& b = sweep.rows[i];
        EXPECT_TRUE(a.success) << a.corner;
        EXPECT_EQ(a.corner, b.corner);
        EXPECT_EQ(a.provenance, CornerProvenance::Traced);
        // Bit-identical: the family driver DELEGATES, it does not
        // reimplement.
        EXPECT_EQ(a.characteristicClockToQ, b.characteristicClockToQ);
        EXPECT_EQ(a.setupTime, b.setupTime);
        EXPECT_EQ(a.holdTime, b.holdTime);
        EXPECT_EQ(a.transientCount, b.transientCount);
    }
}

TEST(CornerFamily, FailedAnchorIsExcludedNotPoisoning) {
    const PvtAxes axes = processAxis({-1.0, -0.5, 0.0, 0.5, 1.0});
    RunConfig config = cheapContourConfig();
    config.corners.probeResidual = false;  // pure-surrogate acceptance

    const auto builder = [](const ProcessCorner& corner) -> RegisterFixture {
        if (corner.name.find("P-1.00") != std::string::npos) {
            throw NumericalError("injected anchor failure");
        }
        return buildTspcAt(corner);
    };
    const CornerFamilyResult result =
        characterizeCornerFamily(axes, builder, config);

    ASSERT_EQ(result.rows.size(), 5u);
    EXPECT_FALSE(result.rows[0].success);
    EXPECT_TRUE(result.rows[0].anchor);
    EXPECT_FALSE(result.allSucceeded());
    // The two surviving anchors still feed the surrogate; the untraced
    // corners are filled, finite, and flagged as surrogate.
    for (const std::size_t i : {1u, 3u}) {
        const CornerFamilyRow& row = result.rows[i];
        EXPECT_TRUE(row.success) << row.corner;
        EXPECT_EQ(row.provenance, CornerProvenance::Surrogate);
        ASSERT_FALSE(row.contour.empty());
        for (const SkewPoint& p : row.contour) {
            EXPECT_TRUE(std::isfinite(p.setup));
            EXPECT_TRUE(std::isfinite(p.hold));
        }
        EXPECT_TRUE(std::isfinite(row.setupTime));
        EXPECT_TRUE(std::isfinite(row.holdTime));
    }
    EXPECT_EQ(result.surrogateAccepted, 2u);
}

TEST(CornerFamily, AllAnchorsFailingFailsCleanly) {
    const PvtAxes axes = processAxis({-1.0, 0.0, 1.0});
    RunConfig config = cheapContourConfig();
    const CornerFamilyResult result = characterizeCornerFamily(
        axes,
        [](const ProcessCorner&) -> RegisterFixture {
            throw NumericalError("no fixture for you");
        },
        config);
    EXPECT_FALSE(result.allSucceeded());
    EXPECT_FALSE(result.converged);
    for (const CornerFamilyRow& row : result.rows) {
        EXPECT_FALSE(row.success);
        EXPECT_FALSE(row.failureReason.empty());
    }
}

TEST(CornerFamily, DonorSelectionIsDeterministicAcrossThreadCounts) {
    const PvtAxes axes = processAxis({-1.0, -0.5, 0.0, 0.5, 1.0});
    RunConfig config = cheapContourConfig();
    // Force escalation of every non-anchor corner: zero-ish tolerance
    // with the probe disabled means the propagated LOO score alone
    // decides, and it cannot be below 1e-18 on a real family.
    config.corners.tolerance = 1e-18;
    config.corners.probeResidual = false;

    const CornerFamilyResult one =
        characterizeCornerFamily(axes, buildTspcAt, config.withThreads(1));
    const CornerFamilyResult eight =
        characterizeCornerFamily(axes, buildTspcAt, config.withThreads(8));

    ASSERT_EQ(one.rows.size(), eight.rows.size());
    EXPECT_EQ(one.escalated, 2u);
    EXPECT_EQ(eight.escalated, 2u);
    for (std::size_t i = 0; i < one.rows.size(); ++i) {
        const CornerFamilyRow& a = one.rows[i];
        const CornerFamilyRow& b = eight.rows[i];
        EXPECT_TRUE(a.success) << a.corner;
        // The donor (and therefore the whole warm-started trace) must not
        // depend on worker scheduling.
        EXPECT_EQ(a.warmStartCorner, b.warmStartCorner) << a.corner;
        EXPECT_EQ(a.provenance, b.provenance);
        ASSERT_EQ(a.contour.size(), b.contour.size()) << a.corner;
        for (std::size_t j = 0; j < a.contour.size(); ++j) {
            EXPECT_EQ(a.contour[j].setup, b.contour[j].setup);
            EXPECT_EQ(a.contour[j].hold, b.contour[j].hold);
        }
        EXPECT_EQ(a.setupTime, b.setupTime);
        EXPECT_EQ(a.holdTime, b.holdTime);
    }
    // The nearest-corner metric itself: corner 1 ties anchors 0 and 2 in
    // normalized process distance and must pick the smaller index.
    EXPECT_EQ(one.rows[1].warmStartCorner, 0);
    EXPECT_EQ(one.rows[3].warmStartCorner, 2);
}

TEST(CornerRowStore, SerializationRoundTripsBitForBit) {
    CornerFamilyRow row;
    row.corner = "P+0.50/V2.400/T+085";
    row.point = {0.5, 2.4, 85.0};
    row.success = true;
    row.provenance = CornerProvenance::Surrogate;
    row.characteristicClockToQ = 123.456e-12;
    row.setupTime = 0x1.23p-33;
    row.holdTime = 0x1.77p-34;
    row.acquisitionScore = 1.5e-12;
    row.transientCount = 42;
    row.contour = {{100e-12, 400e-12}, {250e-12, 150e-12}};

    const std::string payload = store::serializeCornerRow(row);
    const CornerFamilyRow back = store::deserializeCornerRow(payload);
    EXPECT_EQ(back.corner, row.corner);
    EXPECT_EQ(back.success, row.success);
    EXPECT_EQ(back.provenance, CornerProvenance::Surrogate);
    EXPECT_EQ(back.point.process, row.point.process);
    EXPECT_EQ(back.point.vdd, row.point.vdd);
    EXPECT_EQ(back.point.temperatureC, row.point.temperatureC);
    EXPECT_EQ(back.characteristicClockToQ, row.characteristicClockToQ);
    EXPECT_EQ(back.setupTime, row.setupTime);
    EXPECT_EQ(back.holdTime, row.holdTime);
    EXPECT_EQ(back.acquisitionScore, row.acquisitionScore);
    EXPECT_EQ(back.transientCount, row.transientCount);
    ASSERT_EQ(back.contour.size(), 2u);
    EXPECT_EQ(back.contour[1].setup, row.contour[1].setup);
    EXPECT_EQ(back.contour[1].hold, row.contour[1].hold);

    // A corrupted provenance line is a format error (clean cache miss),
    // never a silently-defaulted value.
    std::string corrupted = payload;
    corrupted.replace(corrupted.find("surrogate"), 9, "guesswork");
    EXPECT_THROW(store::deserializeCornerRow(corrupted),
                 store::StoreFormatError);
}

TEST(CornerFamilyLiberty, ProvenanceReachesTheExport) {
    CornerFamilyResult result;
    result.rows.resize(2);
    result.rows[0].corner = "P+0.00/V2.500/T+027";
    result.rows[0].success = true;
    result.rows[0].provenance = CornerProvenance::Traced;
    result.rows[0].contour = {{100e-12, 400e-12}, {400e-12, 100e-12}};
    result.rows[1].corner = "P+0.50/V2.500/T+027";
    result.rows[1].success = true;
    result.rows[1].provenance = CornerProvenance::Surrogate;

    const std::vector<LibraryRow> rows =
        libraryRowsFromCornerFamily(result);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].provenance, "traced");
    EXPECT_EQ(rows[1].provenance, "surrogate");

    const std::string path =
        (std::filesystem::temp_directory_path() /
         "shtrace_test_corner_family.lib")
            .string();
    writeLibertyLite(rows, path, "corner_family");
    std::ifstream in(path);
    std::stringstream text;
    text << in.rdbuf();
    std::remove(path.c_str());
    EXPECT_NE(text.str().find("shtrace_provenance : traced;"),
              std::string::npos);
    EXPECT_NE(text.str().find("shtrace_provenance : surrogate;"),
              std::string::npos);
}

}  // namespace
}  // namespace shtrace
