// Tests for periodic steady state via shooting Newton (Aprille-Trick, the
// paper's reference [7], built on the same state-transition machinery).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "shtrace/analysis/shooting.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/diode.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/util/error.hpp"
#include "shtrace/waveform/analog_sources.hpp"
#include "shtrace/waveform/clock.hpp"

namespace shtrace {
namespace {

/// RC lowpass driven by a 100 MHz clock, slow RC (settles over many
/// periods -- the case where shooting beats brute-force integration).
struct DrivenRc {
    Circuit ckt;
    NodeId out;
    double period = 10e-9;

    DrivenRc(double r, double c) {
        ClockWaveform::Spec clk;
        clk.period = period;
        clk.delay = 0.0;
        clk.v1 = 1.0;
        const NodeId in = ckt.node("in");
        out = ckt.node("out");
        ckt.add<VoltageSource>("V1", in, kGround,
                               std::make_shared<ClockWaveform>(clk));
        ckt.add<Resistor>("R1", in, out, r);
        ckt.add<Capacitor>("C1", out, kGround, c);
        ckt.finalize();
    }
};

TEST(Shooting, LinearCircuitConvergesInOneNewtonStep) {
    // For a linear circuit F(x0) is affine: shooting must converge on the
    // second iteration (first computes the exact Newton step).
    DrivenRc fx(10e3, 10e-12);  // tau = 100 ns >> period: slow settling
    ShootingOptions opt;
    opt.period = fx.period;
    opt.tStart = 10e-9;  // one period in: sources periodic from here
    const ShootingResult pss = solvePeriodicSteadyState(fx.ckt, opt);
    ASSERT_TRUE(pss.converged);
    EXPECT_LE(pss.iterations, 2);
    EXPECT_LT(pss.finalError, 1e-6);
}

TEST(Shooting, MatchesLongTransientSteadyState) {
    DrivenRc fx(10e3, 10e-12);  // tau = 100 ns: ~50 periods to settle
    ShootingOptions opt;
    opt.period = fx.period;
    opt.tStart = 10e-9;
    const ShootingResult pss = solvePeriodicSteadyState(fx.ckt, opt);
    ASSERT_TRUE(pss.converged);

    // Brute force: integrate 80 periods and compare the state at an
    // equivalent phase.
    TransientOptions longRun;
    longRun.tStop = 10e-9 + 80.0 * fx.period;
    longRun.fixedSteps = 80 * 200;
    longRun.storeStates = false;
    const TransientResult brute =
        TransientAnalysis(fx.ckt, longRun).run();
    ASSERT_TRUE(brute.success);
    // Same phase as tStart (multiple of the period past it).
    const Vector sel = fx.ckt.selectorFor(fx.out);
    EXPECT_NEAR(sel.dot(pss.periodicState), sel.dot(brute.finalState),
                2e-3);
}

TEST(Shooting, PeriodicityOfTheReturnedWaveform) {
    DrivenRc fx(2e3, 5e-12);
    ShootingOptions opt;
    opt.period = fx.period;
    opt.tStart = 10e-9;
    const ShootingResult pss = solvePeriodicSteadyState(fx.ckt, opt);
    ASSERT_TRUE(pss.converged);
    // First and last stored states of the period agree component-wise.
    const Vector& first = pss.steadyStatePeriod.states.front();
    const Vector& last = pss.steadyStatePeriod.states.back();
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_NEAR(first[i], last[i], 1e-5) << "component " << i;
    }
}

TEST(Shooting, NonlinearRectifierFindsDcOutputWithRipple) {
    // Diode half-wave rectifier with an RC smoothing tank driven by a
    // sine: PSS output must sit near the positive peak with small ripple.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    SineWaveform::Spec sine;
    sine.amplitude = 3.0;
    sine.frequency = 100e6;
    ckt.add<VoltageSource>("V1", in, kGround,
                           std::make_shared<SineWaveform>(sine));
    ckt.add<Diode>("D1", in, out, DiodeParams{});
    ckt.add<Capacitor>("C1", out, kGround, 20e-12);
    ckt.add<Resistor>("R1", out, kGround, 20e3);
    ckt.finalize();

    ShootingOptions opt;
    opt.period = 1.0 / sine.frequency;
    opt.stepsPerPeriod = 400;
    const ShootingResult pss = solvePeriodicSteadyState(ckt, opt);
    ASSERT_TRUE(pss.converged);

    const Vector sel = ckt.selectorFor(out);
    const std::vector<double> wave = pss.steadyStatePeriod.signal(sel);
    double lo = 1e9;
    double hi = -1e9;
    for (double v : wave) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GT(lo, 1.5);           // holds well above zero: rectified
    EXPECT_LT(hi, 3.0);           // below the peak minus the diode drop
    EXPECT_LT(hi - lo, 0.5);      // modest ripple
}

TEST(Shooting, FewerStepsThanBruteForceSettling) {
    // The selling point: slow RC settles over ~50 periods; shooting needs
    // a couple of period-long transients.
    DrivenRc fx(10e3, 10e-12);
    ShootingOptions opt;
    opt.period = fx.period;
    opt.tStart = 10e-9;
    SimStats stats;
    const ShootingResult pss =
        solvePeriodicSteadyState(fx.ckt, opt, &stats);
    ASSERT_TRUE(pss.converged);
    // <= 2 iterations x 400 steps, far below the ~16000 brute-force steps.
    EXPECT_LT(stats.timeSteps, 2000u);
}

TEST(Shooting, RejectsBadOptions) {
    DrivenRc fx(1e3, 1e-12);
    ShootingOptions opt;
    opt.period = 0.0;
    EXPECT_THROW(solvePeriodicSteadyState(fx.ckt, opt),
                 InvalidArgumentError);
    opt.period = 1e-9;
    opt.initialGuess = Vector(99);
    EXPECT_THROW(solvePeriodicSteadyState(fx.ckt, opt),
                 InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
