// Tests for the extension surface: SIN/EXP sources, the VCCS element, the
// transparent latch cell, and cross-cell physics checks.
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/c2mos.hpp"
#include "shtrace/cells/latch.hpp"
#include "shtrace/cells/tg_dff.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/independent.hpp"
#include "shtrace/circuit/netlist_parser.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/devices/vccs.hpp"
#include "shtrace/waveform/analog_sources.hpp"

namespace shtrace {
namespace {

TEST(SineWaveform, ValueAndDelay) {
    SineWaveform::Spec spec;
    spec.offset = 1.0;
    spec.amplitude = 0.5;
    spec.frequency = 1e9;
    spec.delay = 1e-9;
    const SineWaveform w(spec);
    EXPECT_DOUBLE_EQ(w.value(0.5e-9), 1.0);  // before delay
    // Quarter period after the delay: peak.
    EXPECT_NEAR(w.value(1e-9 + 0.25e-9), 1.5, 1e-9);
    // Half period: back at offset.
    EXPECT_NEAR(w.value(1e-9 + 0.5e-9), 1.0, 1e-9);
}

TEST(SineWaveform, DampingDecaysEnvelope) {
    SineWaveform::Spec spec;
    spec.amplitude = 1.0;
    spec.frequency = 1e9;
    spec.damping = 1e9;
    const SineWaveform w(spec);
    const double peak1 = w.value(0.25e-9);
    const double peak2 = w.value(1.25e-9);
    EXPECT_GT(peak1, 0.5);
    EXPECT_LT(std::fabs(peak2), std::fabs(peak1));
    EXPECT_NEAR(peak2 / peak1, std::exp(-1.0), 0.05);
}

TEST(ExpWaveform, RiseAndFallAsymptotes) {
    ExpWaveform::Spec spec;
    spec.v1 = 0.0;
    spec.v2 = 2.0;
    spec.riseDelay = 1e-9;
    spec.riseTau = 0.1e-9;
    spec.fallDelay = 5e-9;
    spec.fallTau = 0.1e-9;
    const ExpWaveform w(spec);
    EXPECT_DOUBLE_EQ(w.value(0.5e-9), 0.0);
    EXPECT_NEAR(w.value(3e-9), 2.0, 1e-6);   // settled high
    EXPECT_NEAR(w.value(9e-9), 0.0, 1e-6);   // settled back
    // One tau into the rise: 1 - 1/e of the swing.
    EXPECT_NEAR(w.value(1.1e-9), 2.0 * (1.0 - std::exp(-1.0)), 1e-9);
    EXPECT_THROW(ExpWaveform(ExpWaveform::Spec{0, 1, 2e-9, 1e-9, 1e-9, 1e-9}),
                 InvalidArgumentError);
}

TEST(Vccs, StampsTransconductance) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("V1", in, kGround, 0.5);
    // G element pulling current OUT of `out` proportionally to v(in):
    // out settles at -gm * v(in) * R.
    ckt.add<Vccs>("G1", out, kGround, in, kGround, 2e-3);
    ckt.add<Resistor>("R1", out, kGround, 1e3);
    ckt.finalize();
    const DcResult dc = solveDcOperatingPoint(ckt);
    ASSERT_TRUE(dc.converged);
    EXPECT_NEAR(dc.x[static_cast<std::size_t>(out.index)], -1.0, 1e-5);
}

TEST(Netlist, ParsesSinExpAndVccs) {
    const auto parsed = parseNetlistString(R"(
V1 a 0 SIN(1.0 0.5 1g 1n)
V2 b 0 EXP(0 2 1n 0.1n 5n 0.1n)
Vc c 0 0.5
G1 out 0 c 0 2m
R1 a b 1k
R2 b out 1k
R3 out 0 1k
)");
    EXPECT_EQ(parsed.circuit.deviceCount(), 7u);
    // Malformed variants.
    EXPECT_THROW(parseNetlistString("V1 a 0 SIN(1.0)\nR1 a 0 1k\n"),
                 ParseError);
    EXPECT_THROW(parseNetlistString("V1 a 0 EXP(0 1 2n)\nR1 a 0 1k\n"),
                 ParseError);
    EXPECT_THROW(parseNetlistString("G1 a 0 b\nR1 a 0 1k\n"), ParseError);
}

TEST(TransientSine, RcFilterAttenuatesAndLags) {
    // Drive an RC lowpass at its corner frequency: gain 1/sqrt(2).
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    const double r = 1e3;
    const double c = 1e-12;
    const double fc = 1.0 / (2.0 * M_PI * r * c);  // ~159 MHz
    SineWaveform::Spec spec;
    spec.amplitude = 1.0;
    spec.frequency = fc;
    ckt.add<VoltageSource>("V1", in, kGround,
                           std::make_shared<SineWaveform>(spec));
    ckt.add<Resistor>("R1", in, out, r);
    ckt.add<Capacitor>("C1", out, kGround, c);
    ckt.finalize();

    TransientOptions opt;
    opt.tStop = 10.0 / fc;  // let the transient settle
    opt.fixedSteps = 4000;
    const TransientResult tr = TransientAnalysis(ckt, opt).run();
    ASSERT_TRUE(tr.success);
    // Peak of the last period.
    const Vector sel = ckt.selectorFor(out);
    double peak = 0.0;
    for (std::size_t i = 0; i < tr.times.size(); ++i) {
        if (tr.times[i] > 9.0 / fc) {
            peak = std::max(peak, std::fabs(sel.dot(tr.states[i])));
        }
    }
    EXPECT_NEAR(peak, 1.0 / std::sqrt(2.0), 0.02);
}

TEST(TransparentLatch, TransparentWhileClockHigh) {
    const RegisterFixture latch = buildTransparentLatch();
    // Data arrives 1.5 ns before the closing edge (16.05 ns): Q must
    // already track it DURING transparency, i.e. before the edge.
    latch.data->setSkews(1.5e-9, 2e-9);
    TransientOptions opt;
    opt.tStop = latch.activeEdgeMidpoint() + 1e-9;
    opt.fixedSteps = static_cast<int>(opt.tStop / 10e-12);
    const TransientResult tr = TransientAnalysis(latch.circuit, opt).run();
    ASSERT_TRUE(tr.success);
    const Vector sel = latch.circuit.selectorFor(latch.q);
    EXPECT_NEAR(tr.valueAt(sel, latch.activeEdgeMidpoint() - 0.5e-9),
                latch.qFinal, 0.2);
    // And it stays latched after the clock closes.
    EXPECT_NEAR(sel.dot(tr.finalState), latch.qFinal, 0.2);
}

TEST(TransparentLatch, OpaqueWhileClockLow) {
    const RegisterFixture latch = buildTransparentLatch();
    // Data arriving AFTER the closing edge must not propagate.
    latch.data->setSkews(-1e-9, 4e-9);
    TransientOptions opt;
    opt.tStop = latch.activeEdgeMidpoint() + 2e-9;
    opt.fixedSteps = static_cast<int>(opt.tStop / 10e-12);
    const TransientResult tr = TransientAnalysis(latch.circuit, opt).run();
    ASSERT_TRUE(tr.success);
    const Vector sel = latch.circuit.selectorFor(latch.q);
    EXPECT_NEAR(sel.dot(tr.finalState), latch.qInitial, 0.2);
}

TEST(TransparentLatch, CharacterizesAgainstClosingEdge) {
    // The generality claim: the identical Euler-Newton flow characterizes
    // a level-sensitive latch once the criterion is referenced to the
    // closing edge. The reference run uses a setup skew just past the
    // latch's setup time (data racing the closing TG), where the output
    // crossing falls shortly AFTER the edge -- the clock-limited regime
    // that defines the latch's clock-to-Q.
    const RegisterFixture latch = buildTransparentLatch();
    CharacterizeOptions opt;
    opt.criterion.referenceSetupSkew = 150e-12;
    opt.tracer.maxPoints = 8;
    opt.tracer.bounds = SkewBounds{20e-12, 400e-12, 20e-12, 400e-12};
    const CharacterizeResult r = characterizeInterdependent(latch, opt);
    ASSERT_TRUE(r.success);
    EXPECT_GE(r.contour.points.size(), 4u);
    for (double res : r.contour.residuals) {
        EXPECT_LT(res, 2e-5);
    }
}

TEST(TgDff, HoldTimeIsNearZeroAndNeedsNegativeRange) {
    // The static TG-DFF with a minimal clk/clk-bar lag holds its datum
    // through the keeper: its hold time sits below the default positive
    // search range. Extending the range into negative skews must converge.
    const RegisterFixture reg = buildTgDffRegister();
    const CharacterizationProblem problem(reg);

    IndependentOptions positiveOnly;  // default lo = 5 ps
    const IndependentResult fail = characterizeByNewton(
        problem.h(), SkewAxis::Hold, problem.passSign(), positiveOnly);
    EXPECT_FALSE(fail.converged);

    IndependentOptions extended = positiveOnly;
    extended.lo = -300e-12;
    const IndependentResult hold = characterizeByNewton(
        problem.h(), SkewAxis::Hold, problem.passSign(), extended);
    ASSERT_TRUE(hold.converged);
    EXPECT_LT(hold.skew, 20e-12);
    EXPECT_GT(hold.skew, -300e-12);
}

TEST(C2mos, HoldTimeGrowsWithClockOverlap) {
    // Physics check across fixtures: a larger clk/clk-bar overlap imposes
    // a larger hold time (the paper introduces the 0.3 ns delay exactly to
    // create a positive hold time).
    double holdSmall = 0.0;
    double holdLarge = 0.0;
    for (const double overlap : {0.15e-9, 0.45e-9}) {
        C2mosOptions cellOpt;
        cellOpt.clkBarDelay = overlap;
        const RegisterFixture reg = buildC2mosRegister(cellOpt);
        CriterionOptions crit;
        crit.transitionFraction = 0.9;
        const CharacterizationProblem problem(reg, crit);
        const IndependentResult hold = characterizeByNewton(
            problem.h(), SkewAxis::Hold, problem.passSign());
        ASSERT_TRUE(hold.converged) << overlap;
        (overlap < 0.3e-9 ? holdSmall : holdLarge) = hold.skew;
    }
    EXPECT_GT(holdLarge, holdSmall);
    EXPECT_GT(holdLarge - holdSmall, 100e-12);  // roughly the extra overlap
}

}  // namespace
}  // namespace shtrace
