// Unit tests for the damped Newton solver itself (so far it was exercised
// only through DC/transient): convergence on known systems, the SPICE
// tolerance model, damping, singularity reporting, iteration limits.
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/analysis/newton.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

TEST(Newton, SolvesLinearSystemInOneCorrection) {
    // F(x) = A x - b with A = [[2, 1], [1, 3]].
    const DenseNewtonSystemFn system = [](const Vector& x, Vector& f, Matrix& j) {
        j.resize(2, 2);
        j(0, 0) = 2;
        j(0, 1) = 1;
        j(1, 0) = 1;
        j(1, 1) = 3;
        f.resize(2);
        f[0] = 2 * x[0] + x[1] - 5;
        f[1] = x[0] + 3 * x[1] - 10;
    };
    Vector x(2);
    NewtonOptions opt;
    opt.maxUpdate = 100.0;  // no damping interference
    const NewtonResult r = solveNewton(system, x, 2, opt);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 1.0, 1e-9);
    EXPECT_NEAR(x[1], 3.0, 1e-9);
    EXPECT_LE(r.iterations, 3);  // one step + convergence confirmation
}

TEST(Newton, QuadraticConvergenceOnScalarRoot) {
    // F(x) = x^2 - 4 from x0 = 3: classic quadratic contraction.
    const DenseNewtonSystemFn system = [](const Vector& x, Vector& f, Matrix& j) {
        f.resize(1);
        j.resize(1, 1);
        f[0] = x[0] * x[0] - 4.0;
        j(0, 0) = 2.0 * x[0];
    };
    Vector x(1);
    x[0] = 3.0;
    NewtonOptions opt;
    opt.relTol = 1e-12;
    opt.residualTol = 1e-12;
    const NewtonResult r = solveNewton(system, x, 1, opt);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 2.0, 1e-10);
    EXPECT_LE(r.iterations, 8);
}

TEST(Newton, DampingClampsLargeUpdates) {
    // Steep residual far from the root would take a huge first step;
    // maxUpdate must clamp it.
    const DenseNewtonSystemFn system = [](const Vector& x, Vector& f, Matrix& j) {
        f.resize(1);
        j.resize(1, 1);
        f[0] = 1e-3 * (x[0] - 1000.0);
        j(0, 0) = 1e-3;
    };
    Vector x(1);
    NewtonOptions opt;
    opt.maxUpdate = 1.0;
    opt.maxIterations = 3;
    const NewtonResult r = solveNewton(system, x, 1, opt);
    EXPECT_FALSE(r.converged);  // 3 clamped steps cannot reach 1000
    EXPECT_LE(std::fabs(x[0]), 3.0 + 1e-12);
}

TEST(Newton, ReportsSingularJacobian) {
    const DenseNewtonSystemFn system = [](const Vector& x, Vector& f, Matrix& j) {
        f.resize(2);
        j.resize(2, 2);
        f[0] = x[0] + x[1] - 1;
        f[1] = 2 * x[0] + 2 * x[1] - 2;  // dependent row
        j(0, 0) = 1;
        j(0, 1) = 1;
        j(1, 0) = 2;
        j(1, 1) = 2;
    };
    Vector x(2);
    const NewtonResult r = solveNewton(system, x, 2, NewtonOptions{});
    EXPECT_FALSE(r.converged);
    EXPECT_TRUE(r.singular);
}

TEST(Newton, HonoursIterationLimit) {
    // A cycle-inducing system (Newton on x^(1/3)-style residual diverges).
    const DenseNewtonSystemFn system = [](const Vector& x, Vector& f, Matrix& j) {
        f.resize(1);
        j.resize(1, 1);
        const double v = x[0];
        f[0] = std::cbrt(v);
        j(0, 0) = v == 0.0 ? 1.0 : 1.0 / (3.0 * std::pow(std::fabs(v), 2.0 / 3.0));
    };
    Vector x(1);
    x[0] = 1.0;
    NewtonOptions opt;
    opt.maxIterations = 7;
    opt.maxUpdate = 1e9;
    const NewtonResult r = solveNewton(system, x, 1, opt);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.iterations, 7);
}

TEST(Newton, BranchRowsUseCurrentTolerance) {
    // Two identical decoupled equations with a solution at 1e-7: row 0 is
    // a "node" row (vAbsTol = 1e-6 -> immediately inside tolerance), row 1
    // a "branch" row (iAbsTol = 1e-9 -> must actually converge). Verify
    // that the solver does NOT stop until the branch row's tighter
    // tolerance is met.
    const DenseNewtonSystemFn system = [](const Vector& x, Vector& f, Matrix& j) {
        f.resize(2);
        j.resize(2, 2);
        f[0] = x[0] - 1e-7;
        f[1] = x[1] - 1e-7;
        j(0, 0) = 1;
        j(1, 1) = 1;
        j(0, 1) = j(1, 0) = 0;
    };
    Vector x(2);
    x[0] = 5e-7;
    x[1] = 5e-7;
    NewtonOptions opt;
    opt.residualTol = 1e-12;
    const NewtonResult r = solveNewton(system, x, 1, opt);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(x[1], 1e-7, 1e-12);
}

TEST(Newton, CountsIterationsInStats) {
    const DenseNewtonSystemFn system = [](const Vector& x, Vector& f, Matrix& j) {
        f.resize(1);
        j.resize(1, 1);
        f[0] = x[0] - 1;
        j(0, 0) = 1;
    };
    Vector x(1);
    SimStats stats;
    (void)solveNewton(system, x, 1, NewtonOptions{}, &stats);
    EXPECT_GT(stats.newtonIterations, 0u);
    EXPECT_EQ(stats.newtonIterations, stats.luFactorizations);
}

TEST(Newton, RejectsBadNodeRows) {
    const DenseNewtonSystemFn system = [](const Vector&, Vector&, Matrix&) {};
    Vector x(2);
    EXPECT_THROW(solveNewton(system, x, 5, NewtonOptions{}),
                 InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
