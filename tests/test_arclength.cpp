// Tests for the pseudo-arclength corrector and its use inside the tracer.
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/tracer.hpp"
#include "shtrace/linalg/pseudo_inverse.hpp"

namespace shtrace {
namespace {

class ArclengthOnTspc : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        fixture_ = new RegisterFixture(buildTspcRegister());
        problem_ = new CharacterizationProblem(*fixture_);
    }
    static void TearDownTestSuite() {
        delete problem_;
        delete fixture_;
        problem_ = nullptr;
        fixture_ = nullptr;
    }
    static RegisterFixture* fixture_;
    static CharacterizationProblem* problem_;
};

RegisterFixture* ArclengthOnTspc::fixture_ = nullptr;
CharacterizationProblem* ArclengthOnTspc::problem_ = nullptr;

TEST_F(ArclengthOnTspc, ConvergesToCurveOnConstraintPlane) {
    // Get a curve point and its tangent via MPNR first.
    const MpnrResult base =
        solveMpnr(problem_->h(), SkewPoint{220e-12, 300e-12});
    ASSERT_TRUE(base.converged);
    const Vector tangent = tangentFromGradient2(base.dhds, base.dhdh);

    // Predict along the tangent and correct with pseudo-arclength.
    const double alpha = 15e-12;
    const SkewPoint predicted{base.point.setup + alpha * tangent[0],
                              base.point.hold + alpha * tangent[1]};
    const MpnrResult corrected =
        solveArclengthCorrector(problem_->h(), predicted, tangent);
    ASSERT_TRUE(corrected.converged);
    EXPECT_LT(std::fabs(corrected.h), MpnrOptions{}.hTol);

    // The correction must lie (numerically) on the plane through the
    // prediction orthogonal to the tangent.
    const double planeResidual =
        tangent[0] * (corrected.point.setup - predicted.setup) +
        tangent[1] * (corrected.point.hold - predicted.hold);
    EXPECT_LT(std::fabs(planeResidual), 1e-15);
}

TEST_F(ArclengthOnTspc, AgreesWithMpnrCorrection) {
    const MpnrResult base =
        solveMpnr(problem_->h(), SkewPoint{220e-12, 300e-12});
    ASSERT_TRUE(base.converged);
    const Vector tangent = tangentFromGradient2(base.dhds, base.dhdh);
    const double alpha = 10e-12;
    const SkewPoint predicted{base.point.setup + alpha * tangent[0],
                              base.point.hold + alpha * tangent[1]};

    const MpnrResult viaMpnr = solveMpnr(problem_->h(), predicted);
    const MpnrResult viaArc =
        solveArclengthCorrector(problem_->h(), predicted, tangent);
    ASSERT_TRUE(viaMpnr.converged);
    ASSERT_TRUE(viaArc.converged);
    // Both land on the same curve near the prediction; for small alpha the
    // curvature separates them by O(alpha^2) only.
    EXPECT_NEAR(viaArc.point.setup, viaMpnr.point.setup, 2e-12);
    EXPECT_NEAR(viaArc.point.hold, viaMpnr.point.hold, 2e-12);
}

TEST_F(ArclengthOnTspc, TracerProducesEquivalentContour) {
    TracerOptions mp;
    mp.bounds = SkewBounds{100e-12, 600e-12, 50e-12, 450e-12};
    mp.maxPoints = 10;
    TracerOptions arc = mp;
    arc.correctorKind = CorrectorKind::PseudoArclength;

    const SkewPoint seed{220e-12, 450e-12};
    const TracedContour a = traceContour(problem_->h(), seed, mp);
    const TracedContour b = traceContour(problem_->h(), seed, arc);
    ASSERT_TRUE(a.seedConverged);
    ASSERT_TRUE(b.seedConverged);
    ASSERT_GE(a.points.size(), 6u);
    ASSERT_GE(b.points.size(), 6u);
    // Every arclength point satisfies h to tolerance.
    for (double r : b.residuals) {
        EXPECT_LT(r, MpnrOptions{}.hTol);
    }
}

TEST_F(ArclengthOnTspc, SingularWhenTangentParallelsGradientPlane) {
    // Constraint plane containing the curve direction: the augmented
    // system is singular and the corrector must report it, not loop.
    const MpnrResult base =
        solveMpnr(problem_->h(), SkewPoint{220e-12, 300e-12});
    ASSERT_TRUE(base.converged);
    // Use the GRADIENT direction as the "tangent": then the plane is
    // parallel to the level set and det = hs*T1 - hh*T0 with T || grad is
    // hs*hh - hh*hs... actually 0 only when grad is parallel to itself
    // rotated -- construct the degenerate case directly: T proportional to
    // (dhds, dhdh) gives det = dhds*dhdh - dhdh*dhds = 0.
    const double norm = std::hypot(base.dhds, base.dhdh);
    const Vector badTangent{base.dhds / norm, base.dhdh / norm};
    const MpnrResult r = solveArclengthCorrector(
        problem_->h(), SkewPoint{base.point.setup, base.point.hold},
        badTangent);
    EXPECT_FALSE(r.converged);
    EXPECT_TRUE(r.gradientVanished);  // reported as a singular system
}

}  // namespace
}  // namespace shtrace
