// Tests for independent setup/hold characterization (paper Section IIIB):
// bisection baseline vs sensitivity-driven scalar Newton (ref [6]).
#include <gtest/gtest.h>

#include <cmath>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/independent.hpp"
#include "shtrace/chz/problem.hpp"

namespace shtrace {
namespace {

class IndependentOnTspc : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        fixture_ = new RegisterFixture(buildTspcRegister());
        problem_ = new CharacterizationProblem(*fixture_);
    }
    static void TearDownTestSuite() {
        delete problem_;
        delete fixture_;
        problem_ = nullptr;
        fixture_ = nullptr;
    }
    static RegisterFixture* fixture_;
    static CharacterizationProblem* problem_;
};

RegisterFixture* IndependentOnTspc::fixture_ = nullptr;
CharacterizationProblem* IndependentOnTspc::problem_ = nullptr;

TEST_F(IndependentOnTspc, BisectionFindsSetupTime) {
    const IndependentResult r = characterizeByBisection(
        problem_->h(), SkewAxis::Setup, problem_->passSign());
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.skew, 150e-12);
    EXPECT_LT(r.skew, 280e-12);
}

TEST_F(IndependentOnTspc, BisectionFindsHoldTime) {
    const IndependentResult r = characterizeByBisection(
        problem_->h(), SkewAxis::Hold, problem_->passSign());
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.skew, 80e-12);
    EXPECT_LT(r.skew, 250e-12);
}

TEST_F(IndependentOnTspc, NewtonAgreesWithBisection) {
    for (const SkewAxis axis : {SkewAxis::Setup, SkewAxis::Hold}) {
        const IndependentResult bisect = characterizeByBisection(
            problem_->h(), axis, problem_->passSign());
        const IndependentResult newton = characterizeByNewton(
            problem_->h(), axis, problem_->passSign());
        ASSERT_TRUE(bisect.converged);
        ASSERT_TRUE(newton.converged);
        // Both solve h = 0 along the axis; the Newton answer lands where
        // |h| <= hTol, which is within ~1 ps of the bisection boundary.
        EXPECT_NEAR(newton.skew, bisect.skew, 2e-12)
            << "axis=" << static_cast<int>(axis);
    }
}

TEST_F(IndependentOnTspc, NewtonUsesFarFewerTransients) {
    // The ref [6] claim: 4-10x fewer simulations than bisection, measured
    // at matched accuracy. Newton's |h| <= hTol corresponds to sub-0.01 ps
    // skew accuracy (gradients ~1e10 V/s), so the fair bisection baseline
    // runs at 0.01 ps tolerance.
    IndependentOptions bisectOpt;
    bisectOpt.tolerance = 0.01e-12;
    const IndependentResult bisect = characterizeByBisection(
        problem_->h(), SkewAxis::Setup, problem_->passSign(), bisectOpt);
    const IndependentResult newton = characterizeByNewton(
        problem_->h(), SkewAxis::Setup, problem_->passSign());
    ASSERT_TRUE(bisect.converged);
    ASSERT_TRUE(newton.converged);
    EXPECT_GE(static_cast<double>(bisect.transientCount) /
                  newton.transientCount,
              2.0);

    // In the library-characterization setting a seed from a neighbouring
    // corner is available, skipping the coarse scan entirely: this is the
    // configuration in which ref [6] reports 4-10x.
    IndependentOptions seeded;
    seeded.newtonSeed = newton.skew * 1.05;
    const IndependentResult warm = characterizeByNewton(
        problem_->h(), SkewAxis::Setup, problem_->passSign(), seeded);
    ASSERT_TRUE(warm.converged);
    EXPECT_GE(static_cast<double>(bisect.transientCount) /
                  warm.transientCount,
              4.0);
}

TEST_F(IndependentOnTspc, NewtonResidualIsTiny) {
    const IndependentResult newton = characterizeByNewton(
        problem_->h(), SkewAxis::Setup, problem_->passSign());
    ASSERT_TRUE(newton.converged);
    const HEvaluation check = problem_->h().evaluateValueOnly(
        newton.skew, IndependentOptions{}.pinnedSkew);
    EXPECT_LT(std::fabs(check.h), 2.0 * IndependentOptions{}.hTol);
}

TEST_F(IndependentOnTspc, ReportsFailureOutsideRange) {
    IndependentOptions opt;
    opt.lo = 600e-12;  // setup time (~204 ps) is below the range
    opt.hi = 1.4e-9;
    const IndependentResult bisect = characterizeByBisection(
        problem_->h(), SkewAxis::Setup, problem_->passSign(), opt);
    EXPECT_FALSE(bisect.converged);
    const IndependentResult newton = characterizeByNewton(
        problem_->h(), SkewAxis::Setup, problem_->passSign(), opt);
    EXPECT_FALSE(newton.converged);
}

TEST_F(IndependentOnTspc, RejectsBadBracket) {
    IndependentOptions opt;
    opt.lo = 1e-9;
    opt.hi = 0.5e-9;
    EXPECT_THROW(characterizeByBisection(problem_->h(), SkewAxis::Setup, 1.0,
                                         opt),
                 InvalidArgumentError);
    EXPECT_THROW(
        characterizeByNewton(problem_->h(), SkewAxis::Setup, 1.0, opt),
        InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
