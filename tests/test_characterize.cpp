// End-to-end tests of the one-call characterization pipeline on both of the
// paper's validation registers (TSPC with the 50% criterion, C2MOS with the
// 90% criterion) and the extension TG-DFF.
#include <gtest/gtest.h>

#include "shtrace/cells/c2mos.hpp"
#include "shtrace/cells/tg_dff.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"

namespace shtrace {
namespace {

CharacterizeOptions smallBudget() {
    CharacterizeOptions opt;
    opt.tracer.maxPoints = 10;
    opt.tracer.bounds = SkewBounds{80e-12, 700e-12, 40e-12, 500e-12};
    return opt;
}

TEST(Characterize, TspcEndToEnd) {
    const RegisterFixture reg = buildTspcRegister();
    const CharacterizeResult r =
        characterizeInterdependent(reg, smallBudget());
    ASSERT_TRUE(r.success);
    // Characteristic clock-to-Q in the few-hundred-ps regime of the paper.
    EXPECT_GT(r.characteristicClockToQ, 100e-12);
    EXPECT_LT(r.characteristicClockToQ, 1e-9);
    EXPECT_NEAR(r.degradedClockToQ, 1.1 * r.characteristicClockToQ, 1e-15);
    // t_f = active edge + degraded clock-to-Q.
    EXPECT_NEAR(r.tf, 11.05e-9 + r.degradedClockToQ, 1e-15);
    // TSPC latches a falling datum: r is 50% of a 2.5 V swing.
    EXPECT_NEAR(r.r, 1.25, 1e-12);
    EXPECT_GE(r.contour.points.size(), 5u);
    // Cost counters were accumulated.
    EXPECT_GT(r.stats.transientSolves, 10u);
    EXPECT_GT(r.stats.wallSeconds, 0.0);
}

TEST(Characterize, C2mosWith90PercentCriterion) {
    const RegisterFixture reg = buildC2mosRegister();
    CharacterizeOptions opt = smallBudget();
    // Paper Sec. IV-B: 90% criterion to reject false transitions; for the
    // high->low data transition this puts r at 0.25 V.
    opt.criterion.transitionFraction = 0.9;
    const CharacterizeResult r = characterizeInterdependent(reg, opt);
    ASSERT_TRUE(r.success);
    EXPECT_NEAR(r.r, 0.25, 1e-12);
    EXPECT_GE(r.contour.points.size(), 5u);
    // C2MOS with delayed clk-bar has larger setup/hold than TSPC; the
    // contour must sit in the few-hundred-ps band (paper Fig. 12: setup
    // 350-500 ps, hold 200-300 ps).
    for (const SkewPoint& p : r.contour.points) {
        EXPECT_GT(p.setup, 100e-12);
        EXPECT_LT(p.setup, 700e-12);
        EXPECT_GT(p.hold, 40e-12);
        EXPECT_LT(p.hold, 500e-12);
    }
}

TEST(Characterize, TgDffExtensionCell) {
    // "The method is generally applicable to any kind of latch or
    // register" -- the static TG-DFF must characterize with the same flow.
    const RegisterFixture reg = buildTgDffRegister();
    const CharacterizeResult r =
        characterizeInterdependent(reg, smallBudget());
    ASSERT_TRUE(r.success);
    EXPECT_GE(r.contour.points.size(), 3u);
}

TEST(Characterize, ContoursAreOnTheConstantClockToQCurve) {
    // Closing the loop on the DEFINITION: pick traced points and verify by
    // direct measurement that the clock-to-Q delay there is degraded by
    // ~10% over the characteristic value.
    const RegisterFixture reg = buildTspcRegister();
    CharacterizeOptions opt = smallBudget();
    opt.tracer.maxPoints = 6;
    const CharacterizeResult r = characterizeInterdependent(reg, opt);
    ASSERT_TRUE(r.success);

    const CharacterizationProblem problem(reg, opt.criterion, opt.recipe);
    for (std::size_t i = 0; i < r.contour.points.size(); i += 2) {
        const SkewPoint& p = r.contour.points[i];
        const auto c2q = problem.measureClockToQAt(p.setup, p.hold);
        ASSERT_TRUE(c2q.has_value()) << "point " << i;
        // Within 2% of the degraded target (interpolation on the stored
        // 10 ps grid limits the measurement, not the contour).
        EXPECT_NEAR(*c2q, r.degradedClockToQ, 0.02 * r.degradedClockToQ)
            << "point " << i;
    }
}

TEST(Characterize, HigherDegradationMovesContourInward) {
    // A 25%-degradation contour tolerates LATER data arrival than a 10%
    // one: smaller setup time at matched hold skew.
    const RegisterFixture reg = buildTspcRegister();
    CharacterizeOptions opt10 = smallBudget();
    opt10.tracer.maxPoints = 4;
    CharacterizeOptions opt25 = opt10;
    opt25.criterion.degradation = 0.25;

    const CharacterizeResult r10 = characterizeInterdependent(reg, opt10);
    const CharacterizeResult r25 = characterizeInterdependent(reg, opt25);
    ASSERT_TRUE(r10.success);
    ASSERT_TRUE(r25.success);
    // Compare the seed-side (vertical asymptote) setup values.
    EXPECT_LT(r25.seed.seed.setup, r10.seed.seed.setup);
}

TEST(Characterize, FailsCleanlyOnBrokenFixture) {
    // A register whose data pulse is centered on a non-existent edge index
    // will never latch; the criterion computation must throw, not hang.
    TspcOptions opt;
    opt.outputLoadCapacitance = 20e-15;
    RegisterFixture reg = buildTspcRegister(opt);
    // Sabotage: point the data pulse 40 ns late so the reference run's
    // window sees no data transition at the measured edge.
    DataPulse::Spec spec = reg.data->spec();
    (void)spec;
    reg.data->setSkews(-30e-9, 50e-9);  // pulse far after the edge
    CriterionOptions crit;
    crit.referenceSetupSkew = -30e-9;
    crit.referenceHoldSkew = 50e-9;
    EXPECT_THROW(CharacterizationProblem(reg, crit), NumericalError);
}

}  // namespace
}  // namespace shtrace
