// Tests for the parallel batch-characterization engine: the worker-pool
// executor, SimStats::merge, the unified RunConfig API, and the
// determinism guarantee (threads=N produces byte-identical rows, contours
// and counter totals to threads=1).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/library.hpp"
#include "shtrace/chz/monte_carlo.hpp"
#include "shtrace/chz/pvt.hpp"
#include "shtrace/chz/surface_method.hpp"
#include "shtrace/util/parallel.hpp"

namespace shtrace {
namespace {

// ---------------------------------------------------------------------------
// SimStats::merge

SimStats statsWith(std::uint64_t transients, std::uint64_t steps,
                   double wall) {
    SimStats s;
    s.transientSolves = transients;
    s.timeSteps = steps;
    s.wallSeconds = wall;
    return s;
}

TEST(SimStatsMerge, MatchesPlusAndIsAssociative) {
    const SimStats a = statsWith(1, 10, 0.5);
    const SimStats b = statsWith(2, 20, 0.25);
    const SimStats c = statsWith(4, 40, 0.125);

    SimStats viaMerge = a;
    viaMerge.merge(b);
    const SimStats viaPlus = a + b;
    EXPECT_EQ(viaMerge.transientSolves, viaPlus.transientSolves);
    EXPECT_EQ(viaMerge.timeSteps, viaPlus.timeSteps);
    EXPECT_DOUBLE_EQ(viaMerge.wallSeconds, viaPlus.wallSeconds);

    // (a+b)+c == a+(b+c) on every counter.
    SimStats left = a;
    left.merge(b);
    left.merge(c);
    SimStats bc = b;
    bc.merge(c);
    SimStats right = a;
    right.merge(bc);
    EXPECT_EQ(left.transientSolves, right.transientSolves);
    EXPECT_EQ(left.timeSteps, right.timeSteps);
    EXPECT_DOUBLE_EQ(left.wallSeconds, right.wallSeconds);
}

// ---------------------------------------------------------------------------
// parallelRun core

TEST(ParallelRun, ResolveThreadCountClampsAndResolvesZero) {
    EXPECT_EQ(resolveThreadCount(3, 100), 3);
    EXPECT_EQ(resolveThreadCount(8, 2), 2);   // never more workers than jobs
    EXPECT_EQ(resolveThreadCount(1, 0), 1);
    EXPECT_GE(resolveThreadCount(0, 100), 1); // 0 = hardware concurrency
}

TEST(ParallelRun, ExecutesEveryJobExactlyOnce) {
    const std::size_t n = 137;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) {
        h.store(0);
    }
    ParallelOptions opt;
    opt.threads = 8;
    opt.chunk = 3;
    parallelRun(
        n, [&](std::size_t job, std::size_t) { ++hits[job]; }, opt);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "job " << i;
    }
}

TEST(ParallelRun, WorkerIndicesStayInRange) {
    ParallelOptions opt;
    opt.threads = 4;
    std::atomic<bool> inRange{true};
    parallelRun(
        64,
        [&](std::size_t, std::size_t worker) {
            if (worker >= 4) {
                inRange = false;
            }
        },
        opt);
    EXPECT_TRUE(inRange.load());
}

TEST(ParallelRun, ProgressCallbackReportsEveryJobSerialized) {
    const std::size_t n = 50;
    ParallelOptions opt;
    opt.threads = 8;
    std::set<std::size_t> seen;  // mutated inside the serialized callback
    std::size_t total = 0;
    parallelRun(
        n, [](std::size_t, std::size_t) {}, opt,
        [&](std::size_t job, std::size_t totalJobs) {
            seen.insert(job);
            total = totalJobs;
        });
    EXPECT_EQ(seen.size(), n);
    EXPECT_EQ(total, n);
}

TEST(ParallelRun, EscapedExceptionIsRethrownAsErrorAfterJoin) {
    ParallelOptions opt;
    opt.threads = 4;
    EXPECT_THROW(parallelRun(
                     16,
                     [&](std::size_t job, std::size_t) {
                         if (job == 5) {
                             throw std::runtime_error("grid point exploded");
                         }
                     },
                     opt),
                 Error);
}

// ---------------------------------------------------------------------------
// RunConfig fluent builder and legacy aliases

TEST(RunConfig, FluentBuilderSetsEveryKnob) {
    CriterionOptions crit;
    crit.transitionFraction = 0.9;
    TracerOptions tracer;
    tracer.maxPoints = 7;
    const RunConfig cfg = RunConfig::defaults()
                              .withThreads(8)
                              .withChunk(2)
                              .withCriterion(crit)
                              .withTracer(tracer)
                              .withContours(false);
    EXPECT_EQ(cfg.parallel.threads, 8);
    EXPECT_EQ(cfg.parallel.chunk, 2);
    EXPECT_DOUBLE_EQ(cfg.criterion.transitionFraction, 0.9);
    EXPECT_EQ(cfg.tracer.maxPoints, 7);
    EXPECT_FALSE(cfg.traceContours);
}

TEST(RunConfig, LegacyOptionBundlesStillCompile) {
    LibraryFlowOptions lib;  // = RunConfig
    lib.traceContours = false;
    lib.tracer.maxPoints = 5;
    PvtSweepOptions pvt;  // = RunConfig
    pvt.independent.maxIterations = 10;
    CharacterizeOptions chz;  // = RunConfig
    chz.seed.maxBisections = 12;
    MonteCarloOptions mc;  // derives from RunConfig; seed shadows RNG seed
    mc.samples = 4;
    mc.seed = 99;
    mc.parallel.threads = 2;
    EXPECT_FALSE(lib.traceContours);
    EXPECT_EQ(static_cast<RunConfig&>(mc).parallel.threads, 2);
}

// ---------------------------------------------------------------------------
// Batch-driver determinism and failure isolation on the TSPC fixture

std::vector<LibraryCell> tspcLibrary() {
    const auto tspcAt = [](double load) {
        return [load] {
            TspcOptions opt;
            opt.outputLoadCapacitance = load;
            return buildTspcRegister(opt);
        };
    };
    return {
        LibraryCell{"TSPC_X1", tspcAt(20e-15), CriterionOptions{}},
        LibraryCell{"TSPC_X2", tspcAt(40e-15), CriterionOptions{}},
        LibraryCell{"TSPC_X4", tspcAt(80e-15), CriterionOptions{}},
    };
}

RunConfig fastConfig(int threads) {
    RunConfig cfg = RunConfig::defaults().withThreads(threads);
    cfg.tracer.maxPoints = 6;
    cfg.tracer.bounds = SkewBounds{80e-12, 900e-12, 40e-12, 700e-12};
    return cfg;
}

void expectRowsIdentical(const LibraryRow& a, const LibraryRow& b) {
    EXPECT_EQ(a.cell, b.cell);
    EXPECT_EQ(a.success, b.success);
    // Byte-identical, not approximately equal: the same jobs run the same
    // FP instruction streams regardless of the thread count.
    EXPECT_EQ(a.characteristicClockToQ, b.characteristicClockToQ);
    EXPECT_EQ(a.setupTime, b.setupTime);
    EXPECT_EQ(a.holdTime, b.holdTime);
    ASSERT_EQ(a.contour.size(), b.contour.size());
    for (std::size_t i = 0; i < a.contour.size(); ++i) {
        EXPECT_EQ(a.contour[i].setup, b.contour[i].setup);
        EXPECT_EQ(a.contour[i].hold, b.contour[i].hold);
    }
    EXPECT_EQ(a.stats.transientSolves, b.stats.transientSolves);
    EXPECT_EQ(a.stats.newtonIterations, b.stats.newtonIterations);
    EXPECT_EQ(a.stats.hEvaluations, b.stats.hEvaluations);
}

TEST(ParallelLibrary, ThreadsEightMatchesThreadsOneByteForByte) {
    const LibraryResult serial =
        characterizeLibrary(tspcLibrary(), fastConfig(1));
    const LibraryResult parallel =
        characterizeLibrary(tspcLibrary(), fastConfig(8));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].success) << serial[i].failureReason;
        expectRowsIdentical(serial[i], parallel[i]);
    }
    EXPECT_EQ(serial.stats.transientSolves, parallel.stats.transientSolves);
    EXPECT_EQ(serial.stats.newtonIterations,
              parallel.stats.newtonIterations);
    EXPECT_EQ(serial.stats.hEvaluations, parallel.stats.hEvaluations);
    EXPECT_GT(serial.stats.transientSolves, 0u);
}

TEST(ParallelLibrary, ChordReuseIsDeterministicAcrossThreadCounts) {
    // Each worker's engines own their LU factorizations and Newton
    // workspaces, so chord reuse must not introduce any cross-thread state:
    // rows AND the chord counters are byte-identical for any thread count
    // (this binary runs under tsan in the sanitizer sweep).
    RunConfig cfg = fastConfig(1).withJacobianReuse(true);
    const LibraryResult serial = characterizeLibrary(tspcLibrary(), cfg);
    const LibraryResult parallel =
        characterizeLibrary(tspcLibrary(), cfg.withThreads(8));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].success) << serial[i].failureReason;
        expectRowsIdentical(serial[i], parallel[i]);
        EXPECT_EQ(serial[i].stats.chordIterations,
                  parallel[i].stats.chordIterations);
        EXPECT_EQ(serial[i].stats.residualOnlyAssemblies,
                  parallel[i].stats.residualOnlyAssemblies);
        EXPECT_EQ(serial[i].stats.bypassedFactorizations,
                  parallel[i].stats.bypassedFactorizations);
    }
    EXPECT_GT(serial.stats.chordIterations, 0u);
    EXPECT_GT(serial.stats.bypassedFactorizations, 0u);
    EXPECT_EQ(serial.stats.chordIterations, parallel.stats.chordIterations);
}

TEST(ParallelLibrary, PoisonedCellFailsItsRowOthersSucceed) {
    std::vector<LibraryCell> cells = tspcLibrary();
    // A non-Error exception: characterizeOne only catches Error, so this
    // exercises the pool's own per-job capture net.
    cells[1].build = []() -> RegisterFixture {
        throw std::runtime_error("poisoned cell fixture");
    };
    RunConfig cfg = fastConfig(4);
    cfg.traceContours = false;
    const LibraryResult rows = characterizeLibrary(cells, cfg);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_TRUE(rows[0].success) << rows[0].failureReason;
    EXPECT_FALSE(rows[1].success);
    EXPECT_NE(rows[1].failureReason.find("poisoned"), std::string::npos);
    EXPECT_TRUE(rows[2].success) << rows[2].failureReason;
}

TEST(ParallelLibrary, ProgressCallbackSeesEveryCell) {
    RunConfig cfg = fastConfig(4);
    cfg.traceContours = false;
    std::set<std::size_t> seen;
    cfg.onJobDone = [&](std::size_t job, std::size_t total) {
        seen.insert(job);
        EXPECT_EQ(total, 3u);
    };
    const LibraryResult rows = characterizeLibrary(tspcLibrary(), cfg);
    EXPECT_EQ(rows.size(), 3u);
    EXPECT_EQ(seen.size(), 3u);
}

CornerFixtureBuilder tspcCornerBuilder() {
    return [](const ProcessCorner& corner) {
        TspcOptions opt;
        opt.corner = corner;
        return buildTspcRegister(opt);
    };
}

TEST(ParallelPvt, DeterministicAndCarriesFullStatsPerCorner) {
    const std::vector<ProcessCorner> corners{ProcessCorner::typical(),
                                             ProcessCorner::fast(),
                                             ProcessCorner::slow()};
    const PvtSweepResult serial = sweepPvtCorners(
        corners, tspcCornerBuilder(), RunConfig::defaults().withThreads(1));
    const PvtSweepResult parallel = sweepPvtCorners(
        corners, tspcCornerBuilder(), RunConfig::defaults().withThreads(4));
    ASSERT_EQ(serial.size(), 3u);
    ASSERT_EQ(parallel.size(), 3u);
    SimStats rowSum;
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(serial[i].success) << serial[i].failureReason;
        EXPECT_EQ(serial[i].setupTime, parallel[i].setupTime);
        EXPECT_EQ(serial[i].holdTime, parallel[i].holdTime);
        EXPECT_EQ(serial[i].characteristicClockToQ,
                  parallel[i].characteristicClockToQ);
        // The bugfix: corners now carry the full SimStats, not just a
        // transient count, so sweeps are cost-comparable with library rows.
        EXPECT_GT(serial[i].stats.transientSolves, 0u);
        EXPECT_GT(serial[i].stats.newtonIterations, 0u);
        EXPECT_EQ(serial[i].stats.transientSolves,
                  parallel[i].stats.transientSolves);
        rowSum.merge(serial[i].stats);
    }
    EXPECT_EQ(serial.stats.transientSolves, rowSum.transientSolves);
    EXPECT_EQ(serial.stats.transientSolves, parallel.stats.transientSolves);
}

TEST(ParallelPvt, DeprecatedOutParamOverloadStillWorks) {
    const std::vector<ProcessCorner> corners{ProcessCorner::typical()};
    SimStats stats;
    const std::vector<PvtCornerResult> rows =
        sweepPvtCorners(corners, tspcCornerBuilder(), {}, &stats);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(rows[0].success);
    EXPECT_GT(stats.transientSolves, 0u);
    EXPECT_EQ(stats.transientSolves, rows[0].stats.transientSolves);
}

TEST(ParallelMonteCarlo, DeterministicAcrossThreadCounts) {
    MonteCarloOptions opt;
    opt.samples = 6;
    opt.parallel.threads = 1;
    const MonteCarloResult serial =
        runMonteCarlo(ProcessCorner::typical(), tspcCornerBuilder(), opt);
    opt.parallel.threads = 4;
    const MonteCarloResult parallel =
        runMonteCarlo(ProcessCorner::typical(), tspcCornerBuilder(), opt);
    EXPECT_EQ(serial.samplesConverged, parallel.samplesConverged);
    ASSERT_EQ(serial.setupTimes.size(), parallel.setupTimes.size());
    for (std::size_t i = 0; i < serial.setupTimes.size(); ++i) {
        EXPECT_EQ(serial.setupTimes[i], parallel.setupTimes[i]);
        EXPECT_EQ(serial.holdTimes[i], parallel.holdTimes[i]);
        EXPECT_EQ(serial.clockToQs[i], parallel.clockToQs[i]);
    }
    EXPECT_EQ(serial.setup.mean, parallel.setup.mean);
    EXPECT_EQ(serial.setup.stddev, parallel.setup.stddev);
    EXPECT_GT(serial.stats.transientSolves, 0u);
    EXPECT_EQ(serial.stats.transientSolves, parallel.stats.transientSolves);
}

TEST(ParallelSurface, GridMatchesSerialOverloadByteForByte) {
    SurfaceMethodOptions surfOpt;
    surfOpt.setupPoints = 8;
    surfOpt.holdPoints = 8;
    surfOpt.setupMin = 120e-12;
    surfOpt.setupMax = 560e-12;
    surfOpt.holdMin = 60e-12;
    surfOpt.holdMax = 460e-12;

    const auto source = [] { return buildTspcRegister(); };
    // Serial reference through the legacy HFunction overload.
    const RegisterFixture reg = buildTspcRegister();
    const CharacterizationProblem problem(reg, CriterionOptions{});
    const SurfaceMethodResult serial =
        runSurfaceMethod(problem.h(), surfOpt);
    const SurfaceMethodResult parallel = runSurfaceMethod(
        source, RunConfig::defaults().withThreads(4), surfOpt);

    ASSERT_EQ(serial.surface.setupCount(), parallel.surface.setupCount());
    ASSERT_EQ(serial.surface.holdCount(), parallel.surface.holdCount());
    for (std::size_t i = 0; i < serial.surface.setupCount(); ++i) {
        for (std::size_t j = 0; j < serial.surface.holdCount(); ++j) {
            EXPECT_EQ(serial.surface.value(i, j),
                      parallel.surface.value(i, j))
                << "grid point (" << i << ", " << j << ")";
        }
    }
    ASSERT_EQ(serial.contours.size(), parallel.contours.size());
    EXPECT_EQ(serial.transientCount, parallel.transientCount);
    EXPECT_EQ(serial.stats.transientSolves, parallel.stats.transientSolves);
    EXPECT_EQ(serial.stats.hEvaluations, parallel.stats.hEvaluations);
}

}  // namespace
}  // namespace shtrace
