// Tests for the chord-Newton transient hot path: residual-only assembly,
// LU/Jacobian reuse across iterations and steps, the automatic refactor
// triggers, and the end-to-end Fig. 8 acceptance claim (same contour,
// far fewer factorizations).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/tracer.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/diode.hpp"
#include "shtrace/devices/inductor.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/devices/vccs.hpp"
#include "shtrace/devices/vcvs.hpp"
#include "shtrace/util/error.hpp"
#include "shtrace/waveform/pulse.hpp"

namespace shtrace {
namespace {

// ----------------------------------------------- residual-only assembly ---

/// One circuit containing every device type, so the f/q-equality contract
/// of Device::evalResidual is pinned for each implementation at once.
Circuit buildEveryDeviceCircuit() {
    Circuit ckt;
    const NodeId n1 = ckt.node("n1");
    const NodeId n2 = ckt.node("n2");
    const NodeId n3 = ckt.node("n3");
    const NodeId n4 = ckt.node("n4");
    const NodeId n5 = ckt.node("n5");
    PulseWaveform::Spec pulse;
    pulse.v0 = 0.0;
    pulse.v1 = 1.1;
    pulse.delay = 0.1e-9;
    pulse.riseTime = 0.2e-9;
    pulse.width = 2e-9;
    pulse.fallTime = 0.2e-9;
    ckt.add<VoltageSource>("V1", n1, kGround,
                           std::make_shared<PulseWaveform>(pulse));
    ckt.add<CurrentSource>("I1", n2, kGround, 1e-6);
    ckt.add<Resistor>("R1", n1, n2, 10e3);
    ckt.add<Capacitor>("C1", n2, kGround, 1e-12);
    ckt.add<Inductor>("L1", n2, n3, 1e-9);
    ckt.add<Vcvs>("E1", n4, kGround, n2, kGround, 2.0);
    ckt.add<Vccs>("G1", n3, kGround, n1, n2, 1e-3);
    DiodeParams dp;
    dp.cj0 = 1e-15;
    dp.tt = 1e-12;
    ckt.add<Diode>("D1", n3, kGround, dp);
    MosfetParams mp;
    mp.gamma = 0.3;
    mp.cgs = 1e-15;
    mp.cgd = 0.8e-15;
    mp.cdb = 0.5e-15;
    ckt.add<Mosfet>("M1", n5, n1, kGround, kGround, mp);
    ckt.add<Resistor>("R2", n4, n5, 5e3);
    ckt.finalize();
    return ckt;
}

TEST(ResidualAssembly, MatchesFullAssemblyForEveryDeviceType) {
    const Circuit ckt = buildEveryDeviceCircuit();
    const std::size_t n = ckt.systemSize();
    Assembler asmb(n);

    // A deliberately awkward state: mixed signs, forward- and
    // reverse-biased junctions, nonzero branch currents.
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = 0.7 * std::sin(1.0 + 3.7 * static_cast<double>(i));
    }
    for (double t : {0.0, 0.25e-9, 1.0e-9, 2.4e-9}) {
        ckt.assemble(x, t, asmb);
        const Vector fFull = asmb.f();
        const Vector qFull = asmb.q();

        ckt.assembleResidual(x, t, asmb);
        ASSERT_EQ(asmb.f().size(), fFull.size());
        for (std::size_t i = 0; i < n; ++i) {
            // Byte-identical, not approximately equal: evalResidual must
            // run the exact same f/q arithmetic as eval.
            EXPECT_EQ(asmb.f()[i], fFull[i]) << "f row " << i << " t=" << t;
            EXPECT_EQ(asmb.q()[i], qFull[i]) << "q row " << i << " t=" << t;
        }
    }
}

TEST(ResidualAssembly, JacobianAccessAfterResidualPassThrows) {
    const Circuit ckt = buildEveryDeviceCircuit();
    Assembler asmb(ckt.systemSize());
    const Vector x(ckt.systemSize());
    ckt.assembleResidual(x, 0.0, asmb);
    EXPECT_THROW(asmb.g(), InvalidArgumentError);
    EXPECT_THROW(asmb.c(), InvalidArgumentError);
    // A fresh full pass restores access.
    ckt.assemble(x, 0.0, asmb);
    EXPECT_NO_THROW(asmb.g());
    EXPECT_NO_THROW(asmb.c());
}

TEST(ResidualAssembly, CountsInItsOwnStatsBucket) {
    const Circuit ckt = buildEveryDeviceCircuit();
    Assembler asmb(ckt.systemSize());
    const Vector x(ckt.systemSize());
    SimStats stats;
    ckt.assemble(x, 0.0, asmb, &stats);
    ckt.assembleResidual(x, 0.0, asmb, &stats);
    ckt.assembleResidual(x, 0.0, asmb, &stats);
    EXPECT_EQ(stats.deviceEvaluations, 1u);
    EXPECT_EQ(stats.residualOnlyAssemblies, 2u);
}

// ------------------------------------------------- chord vs full Newton ---

TransientOptions tspcTransientOptions(IntegrationMethod method, bool reuse) {
    TransientOptions opt;
    opt.tStop = 11.6e-9;
    opt.fixedSteps = 1160;  // the default 10 ps recipe
    opt.method = method;
    opt.jacobianReuse = reuse;
    opt.storeStates = false;
    return opt;
}

class ChordEquivalence
    : public ::testing::TestWithParam<IntegrationMethod> {};

TEST_P(ChordEquivalence, FixedGridStateMatchesFullNewton) {
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);

    SimStats off;
    const TransientResult full = TransientAnalysis(
        reg.circuit, tspcTransientOptions(GetParam(), false)).run(&off);
    SimStats on;
    const TransientResult chord = TransientAnalysis(
        reg.circuit, tspcTransientOptions(GetParam(), true)).run(&on);
    ASSERT_TRUE(full.success);
    ASSERT_TRUE(chord.success);

    // Both trajectories satisfy the same per-step Newton tolerances
    // (relTol 1e-4, vAbsTol 1e-6); on the contracting latch dynamics the
    // accumulated divergence stays of the same order.
    double worst = 0.0;
    for (std::size_t i = 0; i < full.finalState.size(); ++i) {
        worst = std::max(worst,
                         std::fabs(full.finalState[i] - chord.finalState[i]));
    }
    EXPECT_LT(worst, 5e-4);

    // The whole point: reuse must slash factorizations, not just match.
    EXPECT_GT(on.chordIterations, 0u);
    EXPECT_EQ(on.chordIterations, on.bypassedFactorizations);
    EXPECT_GT(on.residualOnlyAssemblies, 0u);
    EXPECT_LT(on.luFactorizations, (off.luFactorizations * 3) / 5);

    // Legacy path must not silently pick up chord behavior.
    EXPECT_EQ(off.chordIterations, 0u);
    EXPECT_EQ(off.bypassedFactorizations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Methods, ChordEquivalence,
                         ::testing::Values(IntegrationMethod::BackwardEuler,
                                           IntegrationMethod::Trapezoidal,
                                           IntegrationMethod::Gear2));

TEST(ChordNewton, SensitivitiesMatchFullNewton) {
    // With jacobianReuse the sensitivity recurrences run against the
    // epilogue refactorization (factored AT the accepted solution), so the
    // gradients must agree with the reuse-off path to Newton-tolerance
    // accuracy -- this is what the Euler-Newton tracer lives on.
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);

    TransientOptions base =
        tspcTransientOptions(IntegrationMethod::Trapezoidal, false);
    base.trackSkewSensitivities = true;
    TransientOptions reuse = base;
    reuse.jacobianReuse = true;

    const TransientResult full = TransientAnalysis(reg.circuit, base).run();
    const TransientResult chord = TransientAnalysis(reg.circuit, reuse).run();
    ASSERT_TRUE(full.success);
    ASSERT_TRUE(chord.success);

    const Vector sel = reg.circuit.selectorFor(reg.q);
    const double dhdsFull = sel.dot(full.finalSensitivitySetup);
    const double dhdsChord = sel.dot(chord.finalSensitivitySetup);
    const double dhdhFull = sel.dot(full.finalSensitivityHold);
    const double dhdhChord = sel.dot(chord.finalSensitivityHold);
    const double scale =
        std::max({std::fabs(dhdsFull), std::fabs(dhdhFull), 1e6});
    EXPECT_LT(std::fabs(dhdsFull - dhdsChord), 1e-2 * scale);
    EXPECT_LT(std::fabs(dhdhFull - dhdhChord), 1e-2 * scale);
}

TEST(ChordNewton, AdaptiveRejectionsAndDtChangesRefactor) {
    // Adaptive LTE control rejects steps and continually rescales dt; both
    // are refactor triggers, so reuse must stay correct AND still save
    // factorizations on the accepted stretches.
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);

    TransientOptions opt;
    opt.tStop = 11.6e-9;
    opt.adaptive = true;
    opt.dtInit = 1e-12;
    opt.lteRelTol = 1e-3;
    opt.storeStates = false;

    TransientOptions off = opt;
    off.jacobianReuse = false;
    TransientOptions on = opt;
    on.jacobianReuse = true;

    SimStats statsOff;
    const TransientResult rOff =
        TransientAnalysis(reg.circuit, off).run(&statsOff);
    SimStats statsOn;
    const TransientResult rOn =
        TransientAnalysis(reg.circuit, on).run(&statsOn);
    ASSERT_TRUE(rOff.success);
    ASSERT_TRUE(rOn.success);
    // The scenario must actually exercise the rejection trigger.
    EXPECT_GT(statsOn.rejectedSteps, 0u);

    double worst = 0.0;
    for (std::size_t i = 0; i < rOff.finalState.size(); ++i) {
        worst = std::max(worst,
                         std::fabs(rOff.finalState[i] - rOn.finalState[i]));
    }
    // Adaptive grids need not match step-for-step; compare the settled
    // final state only.
    EXPECT_LT(worst, 5e-3);
    EXPECT_LT(statsOn.luFactorizations, statsOff.luFactorizations);
}

// ---------------------------------------------- Fig. 8 acceptance claim ---

double distanceToPolyline(const SkewPoint& p,
                          const std::vector<SkewPoint>& poly) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < poly.size(); ++i) {
        const double ax = poly[i].setup;
        const double ay = poly[i].hold;
        const double bx = poly[i + 1].setup;
        const double by = poly[i + 1].hold;
        const double dx = bx - ax;
        const double dy = by - ay;
        const double len2 = dx * dx + dy * dy;
        double u = 0.0;
        if (len2 > 0.0) {
            u = ((p.setup - ax) * dx + (p.hold - ay) * dy) / len2;
            u = std::clamp(u, 0.0, 1.0);
        }
        const double ex = p.setup - (ax + u * dx);
        const double ey = p.hold - (ay + u * dy);
        best = std::min(best, std::hypot(ex, ey));
    }
    return best;
}

TEST(ChordNewton, Fig8TspcContourFewerFactorizationsSameCurve) {
    const RegisterFixture reg = buildTspcRegister();
    TracerOptions window;
    window.bounds = SkewBounds{100e-12, 600e-12, 50e-12, 450e-12};
    window.maxPoints = 12;

    const auto trace = [&](bool reuse, SimStats& stats) {
        SimulationRecipe recipe;
        recipe.jacobianReuse = reuse;
        const CharacterizationProblem problem(reg, CriterionOptions{}, recipe,
                                              &stats);
        return traceContour(problem.h(), SkewPoint{220e-12, 450e-12}, window,
                            &stats);
    };

    SimStats off;
    const TracedContour reference = trace(false, off);
    SimStats on;
    const TracedContour reused = trace(true, on);
    ASSERT_TRUE(reference.seedConverged);
    ASSERT_TRUE(reused.seedConverged);
    ASSERT_GE(reference.points.size(), 8u);
    ASSERT_GE(reused.points.size(), 8u);

    // Acceptance: >= 40% fewer LU factorizations and fewer full device
    // assemblies over the whole criterion + seed + trace pipeline.
    EXPECT_LE(on.luFactorizations, (off.luFactorizations * 6) / 10)
        << "on=" << on.luFactorizations << " off=" << off.luFactorizations;
    EXPECT_LT(on.deviceEvaluations, off.deviceEvaluations);
    EXPECT_GT(on.chordIterations, 0u);

    // Same curve: points may slide ALONG the contour (the predictor step
    // positions differ once iterates differ in the last Newton digit), so
    // compare geometric distance to the reference polyline, not indexwise.
    for (const SkewPoint& p : reused.points) {
        EXPECT_LT(distanceToPolyline(p, reference.points), 2e-12)
            << "setup=" << p.setup << " hold=" << p.hold;
    }
    for (const SkewPoint& p : reference.points) {
        EXPECT_LT(distanceToPolyline(p, reused.points), 2e-12)
            << "setup=" << p.setup << " hold=" << p.hold;
    }
}

}  // namespace
}  // namespace shtrace
