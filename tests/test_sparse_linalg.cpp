// Tests for the PR 6 sparse stack: SparsePattern/SparseMatrixCsc storage,
// minimum-degree ordering, the Gilbert-Peierls LU with its numeric-refactor
// replay and fallback, SystemMatrix dense/sparse parity, backend
// resolution, and the singular / structurally-deficient failure paths --
// which must surface exactly like the dense ones (factor() -> false ->
// NewtonResult.singular -> ordinary transient failure), so the PR 4
// failure taxonomy keeps classifying them as TransientFailed rather than
// crashing.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "shtrace/analysis/newton.hpp"
#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/register_chain.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/circuit/assembler.hpp"
#include "shtrace/circuit/circuit.hpp"
#include "shtrace/devices/mosfet_batch.hpp"
#include "shtrace/linalg/linear_solver.hpp"
#include "shtrace/linalg/lu.hpp"
#include "shtrace/linalg/sparse.hpp"
#include "shtrace/linalg/sparse_lu.hpp"

namespace shtrace {
namespace {

using Positions = std::vector<std::pair<int, int>>;

/// An asymmetric 5x5 test pattern with off-diagonal structure in both
/// triangles (duplicates included to exercise the merge).
std::shared_ptr<const SparsePattern> testPattern() {
    const Positions pos = {{0, 1}, {1, 0}, {0, 1}, {2, 4}, {4, 2},
                           {3, 1}, {1, 3}, {2, 0}, {4, 4}, {0, 3}};
    return std::make_shared<SparsePattern>(5, pos);
}

SparseMatrixCsc fill(const std::shared_ptr<const SparsePattern>& p,
                     const Matrix& dense) {
    SparseMatrixCsc m(p);
    const std::size_t n = p->dimension();
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t r = 0; r < n; ++r) {
            const int nz = p->indexOf(static_cast<int>(r),
                                      static_cast<int>(c));
            if (nz >= 0) {
                m.addAt(nz, dense(r, c));
            }
        }
    }
    return m;
}

/// A well-conditioned unsymmetric matrix confined to the test pattern.
Matrix testDense() {
    Matrix a(5, 5);
    a(0, 0) = 4.0;
    a(1, 1) = 5.0;
    a(2, 2) = 6.0;
    a(3, 3) = 7.0;
    a(4, 4) = 8.0;
    a(0, 1) = 1.5;
    a(1, 0) = -2.0;
    a(2, 4) = 0.5;
    a(4, 2) = 3.0;
    a(3, 1) = -1.0;
    a(1, 3) = 2.5;
    a(2, 0) = 1.0;
    a(0, 3) = -0.5;
    return a;
}

TEST(SparsePattern, MergesDuplicatesAndAlwaysHoldsTheDiagonal) {
    const auto p = testPattern();
    EXPECT_EQ(p->dimension(), 5u);
    // 8 unique off-diagonals + 5 diagonal slots.
    EXPECT_EQ(p->nonZeros(), 13u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_GE(p->diagonalIndex(static_cast<std::size_t>(i)), 0);
        EXPECT_EQ(p->indexOf(i, i),
                  p->diagonalIndex(static_cast<std::size_t>(i)));
    }
    EXPECT_GE(p->indexOf(0, 1), 0);
    EXPECT_GE(p->indexOf(4, 2), 0);
    EXPECT_EQ(p->indexOf(4, 0), -1);  // outside the pattern
    // Rows sorted ascending within each column.
    for (std::size_t c = 0; c < 5; ++c) {
        for (int k = p->colPtr()[c]; k + 1 < p->colPtr()[c + 1]; ++k) {
            EXPECT_LT(p->rowIdx()[static_cast<std::size_t>(k)],
                      p->rowIdx()[static_cast<std::size_t>(k) + 1]);
        }
    }
}

TEST(SparseMatrixCsc, ValueOpsMatchDense) {
    const auto p = testPattern();
    const Matrix ad = testDense();
    SparseMatrixCsc a = fill(p, ad);

    // toDense round-trip.
    const Matrix back = a.toDense();
    for (std::size_t r = 0; r < 5; ++r) {
        for (std::size_t c = 0; c < 5; ++c) {
            EXPECT_DOUBLE_EQ(back(r, c), ad(r, c));
        }
    }

    // multiplyAccumulate and multiplyTransposed against dense arithmetic.
    Vector x(5);
    for (std::size_t i = 0; i < 5; ++i) {
        x[i] = 0.25 * static_cast<double>(i) - 0.5;
    }
    Vector y(5);
    y.setZero();
    a.multiplyAccumulate(x, 2.0, y);
    const Vector yt = a.multiplyTransposed(x);
    for (std::size_t r = 0; r < 5; ++r) {
        double accum = 0.0;
        double accumT = 0.0;
        for (std::size_t c = 0; c < 5; ++c) {
            accum += ad(r, c) * x[c];
            accumT += ad(c, r) * x[c];
        }
        EXPECT_NEAR(y[r], 2.0 * accum, 1e-14);
        EXPECT_NEAR(yt[r], accumT, 1e-14);
    }

    // Scale + aligned elementwise add.
    SparseMatrixCsc b = fill(p, ad);
    b *= 3.0;
    b += a;
    const Matrix sum = b.toDense();
    for (std::size_t r = 0; r < 5; ++r) {
        for (std::size_t c = 0; c < 5; ++c) {
            EXPECT_NEAR(sum(r, c), 4.0 * ad(r, c), 1e-14);
        }
    }
}

TEST(MinimumDegree, ProducesADeterministicPermutation) {
    const auto p = testPattern();
    const std::vector<int> order = minimumDegreeOrder(*p);
    ASSERT_EQ(order.size(), 5u);
    std::vector<bool> seen(5, false);
    for (int c : order) {
        ASSERT_GE(c, 0);
        ASSERT_LT(c, 5);
        EXPECT_FALSE(seen[static_cast<std::size_t>(c)]);
        seen[static_cast<std::size_t>(c)] = true;
    }
    // Same pattern, same order: the symbolic analysis is reproducible.
    EXPECT_EQ(order, minimumDegreeOrder(*p));
}

TEST(SparseLu, FactorsAndSolvesLikeDense) {
    const auto p = testPattern();
    const Matrix ad = testDense();
    const SparseMatrixCsc a = fill(p, ad);

    LuFactorization dense;
    ASSERT_TRUE(dense.factor(ad));
    SparseLuFactorization sparse;
    ASSERT_TRUE(sparse.factor(a));
    EXPECT_TRUE(sparse.valid());
    EXPECT_FALSE(sparse.lastFactorWasRefactor());
    EXPECT_GT(sparse.reciprocalPivotRatio(), 0.0);

    Vector b(5);
    for (std::size_t i = 0; i < 5; ++i) {
        b[i] = 1.0 + static_cast<double>(i);
    }
    const Vector xs = sparse.solve(b);
    const Vector xd = dense.solve(b);
    const Vector ts = sparse.solveTransposed(b);
    const Vector td = dense.solveTransposed(b);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(xs[i], xd[i], 1e-12);
        EXPECT_NEAR(ts[i], td[i], 1e-12);
    }
}

TEST(SparseLu, NumericRefactorReplaysAndStaysCorrect) {
    const auto p = testPattern();
    SparseLuFactorization lu;
    SimStats stats;
    ASSERT_TRUE(lu.factor(fill(p, testDense()), &stats));
    EXPECT_EQ(stats.sparseRefactorizations, 0u);
    EXPECT_EQ(stats.luFactorizations, 1u);

    // Gentle value drift (the chord-Newton situation): the stored pivot
    // sequence stays healthy, so this must be a replay.
    Matrix drifted = testDense();
    drifted *= 1.25;
    drifted(0, 1) = 1.0;
    ASSERT_TRUE(lu.factor(fill(p, drifted), &stats));
    EXPECT_TRUE(lu.lastFactorWasRefactor());
    EXPECT_EQ(stats.sparseRefactorizations, 1u);
    EXPECT_EQ(stats.luFactorizations, 2u);

    LuFactorization dense;
    ASSERT_TRUE(dense.factor(drifted));
    Vector b(5);
    b[0] = 1.0;
    b[3] = -2.0;
    const Vector xs = lu.solve(b);
    const Vector xd = dense.solve(b);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(xs[i], xd[i], 1e-12);
    }
}

TEST(SparseLu, RefactorFallsBackWhenThePivotSequenceGoesBad) {
    const auto p = testPattern();
    SparseLuFactorization lu;
    ASSERT_TRUE(lu.factor(fill(p, testDense())));

    // Invert the dominance structure: testDense is diagonally dominant, so
    // the stored pivots sit on the diagonal; now every diagonal is tiny
    // against its off-diagonal column mates. The health check (pivot vs
    // 0.1x column max) must reject the replay, and the transparent full
    // fallback -- free to pivot off-diagonal -- must still succeed.
    Matrix flipped(5, 5);
    for (std::size_t i = 0; i < 5; ++i) {
        flipped(i, i) = 1e-8;
    }
    flipped(1, 0) = 3.0;
    flipped(2, 0) = 1.0;
    flipped(0, 1) = 2.0;
    flipped(3, 1) = 4.0;
    flipped(1, 3) = 5.0;
    flipped(0, 3) = 1.0;
    flipped(2, 4) = 6.0;
    flipped(4, 2) = 7.0;
    SimStats stats;
    ASSERT_TRUE(lu.factor(fill(p, flipped), &stats));
    EXPECT_FALSE(lu.lastFactorWasRefactor());
    EXPECT_EQ(stats.sparseRefactorizations, 0u);

    LuFactorization dense;
    ASSERT_TRUE(dense.factor(flipped));
    Vector b(5);
    b[2] = 1.0;
    const Vector xs = lu.solve(b);
    const Vector xd = dense.solve(b);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(xs[i], xd[i], 1e-10);
    }
}

// ------------------------------------------- singular / deficient faults ---

TEST(SparseLuFaults, NumericallySingularMatrixIsReportedNotCrashed) {
    const auto p = testPattern();
    Matrix singular = testDense();
    // Row 4 := 2 * row 2 on the shared support {2, 4}: rank deficient.
    singular(4, 4) = 2.0 * singular(2, 4);
    singular(4, 2) = 2.0 * singular(2, 2);
    singular(2, 2) = 0.5 * singular(4, 2);
    singular(2, 4) = 0.5 * singular(4, 4);
    SparseLuFactorization lu;
    EXPECT_FALSE(lu.factor(fill(p, singular)));
    EXPECT_FALSE(lu.valid());
    EXPECT_EQ(lu.reciprocalPivotRatio(), 0.0);
}

TEST(SparseLuFaults, StructurallyDeficientColumnIsSingular) {
    // Column 3 exists only through its (structural) diagonal slot and its
    // value is zero: no eligible pivot anywhere in its reach.
    const Positions pos = {{0, 1}, {1, 0}, {2, 1}};
    const auto p = std::make_shared<SparsePattern>(4, pos);
    SparseMatrixCsc a(p);
    a.addAt(p->indexOf(0, 0), 2.0);
    a.addAt(p->indexOf(1, 1), 3.0);
    a.addAt(p->indexOf(2, 2), 4.0);
    a.addAt(p->indexOf(0, 1), 1.0);
    a.addAt(p->indexOf(1, 0), -1.0);
    a.addAt(p->indexOf(2, 1), 0.5);
    // (3, 3) left at 0.0.
    SparseLuFactorization lu;
    EXPECT_FALSE(lu.factor(a));
    EXPECT_FALSE(lu.valid());
}

TEST(SparseLuFaults, FailedRefactorAfterValidFactorInvalidatesCleanly) {
    const auto p = testPattern();
    SparseLuFactorization lu;
    ASSERT_TRUE(lu.factor(fill(p, testDense())));
    // Zero matrix on the same pattern: both the replay and the fallback
    // must fail, leaving the instance invalid (not stale-valid).
    const SparseMatrixCsc zero(p);
    EXPECT_FALSE(lu.factor(zero));
    EXPECT_FALSE(lu.valid());
    // And a subsequent good factor recovers.
    ASSERT_TRUE(lu.factor(fill(p, testDense())));
    EXPECT_TRUE(lu.valid());
}

TEST(SparseLuFaults, SingularJacobianSurfacesAsNewtonSingular) {
    // The PR 4 taxonomy contract: a singular sparse Jacobian is an ordinary
    // NewtonResult.singular -- the same classification the dense backend
    // produces, which the transient engine then reports as a plain
    // non-convergence (TransientFailed at the tracer level), never a crash.
    const auto p = testPattern();
    NewtonWorkspace ws;
    ws.bind(5, p);
    SparseLinearSolver solver;
    const NewtonSystemFn system = [&](const Vector&, Vector& r,
                                      SystemMatrix& j) {
        r.setZero();
        r[0] = 1.0;
        j.setZero();  // identically singular
    };
    Vector x(5);
    const NewtonResult nr =
        solveNewton(system, x, 5, NewtonOptions{}, solver, ws);
    EXPECT_FALSE(nr.converged);
    EXPECT_TRUE(nr.singular);
}

// ------------------------------------------------- SystemMatrix parity ---

TEST(SystemMatrix, DenseAndSparseModesAgreeOnEveryOp) {
    const auto p = testPattern();
    const Matrix cd = testDense();
    Matrix gd(5, 5);
    gd(0, 0) = 1.0;
    gd(1, 1) = -0.5;
    gd(2, 0) = 2.0;
    gd(3, 1) = 0.25;
    gd(4, 4) = 1.5;

    SystemMatrix dense;
    dense.bindDense(5);
    dense.dense() = cd;
    SystemMatrix sparse;
    sparse.bindSparse(p);
    sparse.sparse() = fill(p, cd);

    SystemMatrix denseG;
    denseG.bindDense(5);
    denseG.dense() = gd;
    SystemMatrix sparseG;
    sparseG.bindSparse(p);
    sparseG.sparse() = fill(p, gd);

    // J = a*C + G + gmin on the diagonal, both modes.
    const double a = 7.5;
    dense *= a;
    dense += denseG;
    sparse *= a;
    sparse += sparseG;
    for (std::size_t i = 0; i < 5; ++i) {
        dense.addToDiagonal(i, 1e-3);
        sparse.addToDiagonal(i, 1e-3);
    }
    const Matrix dd = dense.toDense();
    const Matrix ds = sparse.toDense();
    for (std::size_t r = 0; r < 5; ++r) {
        for (std::size_t c = 0; c < 5; ++c) {
            EXPECT_NEAR(dd(r, c), ds(r, c), 1e-12) << r << "," << c;
        }
    }

    Vector x(5);
    for (std::size_t i = 0; i < 5; ++i) {
        x[i] = 0.1 * static_cast<double>(i + 1);
    }
    Vector yd(5), ys(5);
    yd.setZero();
    ys.setZero();
    dense.multiplyAccumulate(x, -1.5, yd);
    sparse.multiplyAccumulate(x, -1.5, ys);
    const Vector td = dense.multiplyTransposed(x);
    const Vector ts = sparse.multiplyTransposed(x);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(yd[i], ys[i], 1e-12);
        EXPECT_NEAR(td[i], ts[i], 1e-12);
    }
}

TEST(LinalgBackendResolution, AutoSplitsAtTheThreshold) {
    EXPECT_EQ(resolveLinalgBackend(LinalgBackend::Auto,
                                   kSparseAutoThreshold - 1),
              LinalgBackend::Dense);
    EXPECT_EQ(resolveLinalgBackend(LinalgBackend::Auto, kSparseAutoThreshold),
              LinalgBackend::Sparse);
    EXPECT_EQ(resolveLinalgBackend(LinalgBackend::Dense, 10000),
              LinalgBackend::Dense);
    EXPECT_EQ(resolveLinalgBackend(LinalgBackend::Sparse, 2),
              LinalgBackend::Sparse);
    EXPECT_THROW(makeLinearSolver(LinalgBackend::Auto), InvalidArgumentError);
    EXPECT_EQ(makeLinearSolver(LinalgBackend::Dense)->backend(),
              LinalgBackend::Dense);
    EXPECT_EQ(makeLinearSolver(LinalgBackend::Sparse)->backend(),
              LinalgBackend::Sparse);
}

// ------------------------------------------------- circuit-level checks ---

TEST(CircuitPattern, SparseAssemblyMatchesDenseOnARealLatch) {
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(300e-12, 300e-12);
    const std::size_t n = reg.circuit.systemSize();

    Assembler dense(n);
    Assembler sparse(n, reg.circuit.sparsityPattern());
    EXPECT_FALSE(dense.sparse());
    EXPECT_TRUE(sparse.sparse());

    // A mid-transition operating point exercises every region: triode,
    // saturation, and cutoff devices all stamp.
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = (i % 3 == 0) ? 2.5 : ((i % 3 == 1) ? 1.1 : 0.2);
    }
    const double t = 11.05e-9;
    reg.circuit.assemble(x, t, dense);
    reg.circuit.assemble(x, t, sparse);

    const Matrix gd = dense.gSystem().toDense();
    const Matrix gs = sparse.gSystem().toDense();
    const Matrix cd = dense.cSystem().toDense();
    const Matrix cs = sparse.cSystem().toDense();
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            // Bit-identical: the sparse stamp adds the same doubles in the
            // same device order, just into CSC slots.
            EXPECT_DOUBLE_EQ(gd(r, c), gs(r, c)) << r << "," << c;
            EXPECT_DOUBLE_EQ(cd(r, c), cs(r, c)) << r << "," << c;
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(dense.f()[i], sparse.f()[i]);
        EXPECT_DOUBLE_EQ(dense.q()[i], sparse.q()[i]);
    }
}

TEST(CircuitPattern, PatternCoversEveryStampOfTheChainAcrossTheSwing) {
    // If Device::stampPattern under-declared (the MOSFET drain/source swap
    // is the classic trap), a sparse assembly at SOME state would throw.
    // Sweep both polarities of every internal node.
    const RegisterChainOptions chainOpt{TspcOptions{}, 2};
    const RegisterFixture reg = buildTspcRegisterChain(chainOpt);
    const std::size_t n = reg.circuit.systemSize();
    Assembler sparse(n, reg.circuit.sparsityPattern());
    for (int pattern = 0; pattern < 8; ++pattern) {
        Vector x(n);
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = ((i + static_cast<std::size_t>(pattern)) % 3) * 1.25;
        }
        EXPECT_NO_THROW(reg.circuit.assemble(x, 11.0e-9, sparse));
    }
}

TEST(CircuitPattern, BatchAssemblyIsBitIdenticalToScalar) {
    const RegisterFixture reg = buildTspcRegister();
    reg.data->setSkews(250e-12, 350e-12);
    const std::size_t n = reg.circuit.systemSize();
    Assembler scalar(n);
    Assembler batched(n);
    MosfetBatchScratch scratch;
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = 2.5 - 0.3 * static_cast<double>(i % 7);
    }
    SimStats stats;
    reg.circuit.assemble(x, 11.02e-9, scalar);
    reg.circuit.assembleBatch(x, 11.02e-9, batched, scratch, &stats);
    EXPECT_EQ(stats.batchAssemblies, 1u);
    for (std::size_t r = 0; r < n; ++r) {
        EXPECT_DOUBLE_EQ(scalar.f()[r], batched.f()[r]);
        EXPECT_DOUBLE_EQ(scalar.q()[r], batched.q()[r]);
        for (std::size_t c = 0; c < n; ++c) {
            EXPECT_DOUBLE_EQ(scalar.g()(r, c), batched.g()(r, c));
            EXPECT_DOUBLE_EQ(scalar.c()(r, c), batched.c()(r, c));
        }
    }
}

TEST(CircuitPattern, ChainScalesAndKeepsBitZeroSemantics) {
    const RegisterChainOptions one{TspcOptions{}, 1};
    const RegisterChainOptions four{TspcOptions{}, 4};
    const RegisterFixture r1 = buildTspcRegisterChain(one);
    const RegisterFixture r4 = buildTspcRegisterChain(four);
    // 7 internal nodes per bit on top of the shared vdd/clk/d + 3 branches.
    EXPECT_EQ(r4.circuit.systemSize(), r1.circuit.systemSize() + 3u * 7u);
    // The single-bit chain is a plain TSPC (plus nothing).
    const RegisterFixture tspc = buildTspcRegister();
    EXPECT_EQ(r1.circuit.systemSize(), tspc.circuit.systemSize());
}

}  // namespace
}  // namespace shtrace
