// Tests for the SHIA-STA timing engine: netlist grammar, graph
// levelization, contour-aware endpoint checks, and thread-count
// determinism of the parallel sweeps (tsan-labeled).
#include <gtest/gtest.h>

#include <sstream>

#include "shtrace/sta/engine.hpp"

namespace shtrace {
namespace {

sta::CharacterizedStaCell fakeCell(const std::string& name) {
    // Clean L-shaped tradeoff; knee ties resolve to (150, 250).
    sta::CharacterizedStaCell cell;
    cell.name = name;
    cell.traced = {{100e-12, 400e-12},
                   {150e-12, 250e-12},
                   {250e-12, 150e-12},
                   {400e-12, 100e-12}};
    cell.contour = ShiaContour(cell.traced);
    cell.knee = cell.contour->kneePoint();
    cell.clockToQ = 400e-12;
    cell.degradedClockToQ = 440e-12;
    return cell;
}

std::map<std::string, sta::CharacterizedStaCell> fakeLibrary() {
    std::map<std::string, sta::CharacterizedStaCell> cells;
    cells.emplace("fake", fakeCell("fake"));
    return cells;
}

TEST(StaNetlist, ParsesTheFullGrammar) {
    const sta::Design d = sta::parseDesign(R"(
        # comment lines and blank lines are ignored
        design demo
        clock clk period 2n

        input a arrival 100p 0.3n   # engineering suffixes everywhere
        input b
        output y require 1.8n

        gate g1 n1 from a 150p from b 250p
        reg r1 cell tspc d n1 q q1 skew 50p
        gate g2 y from q1 120p
    )");
    EXPECT_EQ(d.name, "demo");
    EXPECT_EQ(d.clockName, "clk");
    EXPECT_DOUBLE_EQ(d.clockPeriod, 2e-9);
    ASSERT_EQ(d.inputs.size(), 2u);
    EXPECT_DOUBLE_EQ(d.inputs[0].arrivalMin, 100e-12);
    EXPECT_DOUBLE_EQ(d.inputs[0].arrivalMax, 0.3e-9);
    EXPECT_DOUBLE_EQ(d.inputs[1].arrivalMin, 0.0);
    ASSERT_EQ(d.outputs.size(), 1u);
    EXPECT_TRUE(d.outputs[0].hasRequirement);
    EXPECT_DOUBLE_EQ(d.outputs[0].requiredMax, 1.8e-9);
    ASSERT_EQ(d.gates.size(), 2u);
    ASSERT_EQ(d.gates[0].arcs.size(), 2u);
    EXPECT_EQ(d.gates[0].arcs[1].from, "b");
    EXPECT_DOUBLE_EQ(d.gates[0].arcs[1].delay, 250e-12);
    ASSERT_EQ(d.registers.size(), 1u);
    EXPECT_EQ(d.registers[0].cell, "tspc");
    EXPECT_DOUBLE_EQ(d.registers[0].skew, 50e-12);
}

TEST(StaNetlist, RejectsBrokenInputsWithLineNumbers) {
    const auto expectParseError = [](const std::string& text,
                                     const std::string& needle) {
        try {
            sta::parseDesign(text);
            FAIL() << "expected ParseError for: " << needle;
        } catch (const ParseError& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << "got: " << e.what();
        }
    };
    expectParseError("gate g1 y from a 1p\n", "missing design");
    expectParseError("design d\nfrobnicate x\n", "unknown statement");
    expectParseError("design d\ndesign d2\n", "duplicate design");
    expectParseError("design d\nclock c period 1n\nclock c2 period 1n\n",
                     "duplicate clock");
    expectParseError("design d\nclock c period -1n\n", "must be positive");
    expectParseError("design d\ninput a arrival 2n 1n\n",
                     "arrival min exceeds arrival max");
    expectParseError("design d\ngate g1 y\n", "has no 'from' arcs");
    expectParseError("design d\ngate g1 y from a -5p\n",
                     "negative arc delay");
    expectParseError("design d\ngate g1 y from y 5p\n",
                     "feeds its own output net");
    expectParseError("design d\ngate g1 y from a 5p\ngate g1 z from a 5p\n",
                     "duplicate instance name");
    expectParseError(
        "design d\ninput a\ngate g1 a from b 5p\n", "already driven by");
    expectParseError(
        "design d\nclock c period 1n\nreg r1 cell t d n q n\n",
        "ties d and q");
    expectParseError("design d\nreg r1 cell t d n q q1\n",
                     "registers but no clock");
    expectParseError("design d\noutput y\noutput y\n",
                     "duplicate output statement");
    expectParseError("design d\nclock c period xyz\n", "");  // bad number
    // Line numbers point at the offending statement.
    try {
        sta::parseDesign("design d\n\ngate g1 y from a -5p\n");
        FAIL();
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3);
    }
}

TEST(StaGraph, LevelizesAReconvergentDiamond) {
    const sta::Design d = sta::parseDesign(R"(
        design diamond
        input a
        gate top n1 from a 1p
        gate left n2 from n1 1p
        gate right n3 from n1 3p
        gate join n4 from n2 1p from n3 1p
        output n4
    )");
    const sta::TimingGraph g = sta::buildTimingGraph(d);
    EXPECT_EQ(g.netCount(), 5);
    EXPECT_EQ(g.levels[g.indexOf("a")], 0);
    EXPECT_EQ(g.levels[g.indexOf("n1")], 1);
    EXPECT_EQ(g.levels[g.indexOf("n2")], 2);
    EXPECT_EQ(g.levels[g.indexOf("n3")], 2);
    // The join waits for BOTH diamond arms: level 3, not 2.
    EXPECT_EQ(g.levels[g.indexOf("n4")], 3);
    ASSERT_EQ(g.byLevel.size(), 4u);
    EXPECT_EQ(g.byLevel[2].size(), 2u);
    EXPECT_THROW(g.indexOf("nope"), InvalidArgumentError);
}

TEST(StaGraph, RejectsUndrivenNetsAndCycles) {
    const sta::Design undriven = sta::parseDesign(
        "design d\ninput a\ngate g1 y from a 1p from ghost 1p\n");
    EXPECT_THROW(sta::buildTimingGraph(undriven), Error);

    const sta::Design cyclic = sta::parseDesign(
        "design d\ninput a\n"
        "gate g1 n1 from a 1p from n2 1p\n"
        "gate g2 n2 from n1 1p\n");
    try {
        sta::buildTimingGraph(cyclic);
        FAIL() << "expected a cycle error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("combinational cycle"),
                  std::string::npos);
    }
}

TEST(StaEngine, EndpointRegimesClassicalVsContour) {
    // One launch register, three capture registers whose skews step the
    // hold budget through the three regimes of the fake contour
    // (knee hold 250p, asymptote 100p, clock-to-Q 400p):
    //   comfortable: availHold = 400p + 100p - 0    = 500p  (both pass)
    //   recovered:   availHold = 400p + 100p - 380p = 120p  (knee fails,
    //                contour admits: availSetup 840p dominates (400p,100p))
    //   violating:   availHold = 400p + 100p - 450p =  50p  (both fail)
    const sta::Design d = sta::parseDesign(R"(
        design regimes
        clock clk period 1n
        input a arrival 200p 200p
        reg launch cell fake d d0 q q0
        gate gin d0 from a 100p
        gate g1 n1 from q0 100p
        gate g2 n2 from q0 100p
        gate g3 n3 from q0 100p
        reg comfortable cell fake d n1 q x1
        reg recovered cell fake d n2 q x2 skew 380p
        reg violating cell fake d n3 q x3 skew 450p
    )");
    const sta::StaReport report = sta::analyzeDesign(d, fakeLibrary());
    ASSERT_TRUE(report.success) << report.failureReason;
    ASSERT_EQ(report.endpoints.size(), 4u);

    const auto& comfortable = report.endpoints[1];
    EXPECT_TRUE(comfortable.classicalHoldOk);
    EXPECT_TRUE(comfortable.shiaOk);
    EXPECT_FALSE(comfortable.recovered);

    const auto& recovered = report.endpoints[2];
    EXPECT_NEAR(recovered.availHold, 120e-12, 1e-15);
    EXPECT_NEAR(recovered.availSetup, 840e-12, 1e-15);
    EXPECT_FALSE(recovered.classicalHoldOk);  // 120p < knee hold 250p
    EXPECT_TRUE(recovered.shiaOk);            // contour asymptote is 100p
    EXPECT_TRUE(recovered.recovered);
    ASSERT_TRUE(recovered.shiaFeasible);
    EXPECT_NEAR(recovered.shiaHoldSlack, 20e-12, 1e-15);

    const auto& violating = report.endpoints[3];
    EXPECT_FALSE(violating.classicalHoldOk);
    EXPECT_FALSE(violating.shiaOk);
    EXPECT_FALSE(violating.recovered);

    EXPECT_EQ(report.classicalHoldViolations, 2u);
    EXPECT_EQ(report.shiaViolations, 1u);
    EXPECT_EQ(report.recoveredEndpoints, 1u);
    // The design-level hold pessimism gap: classical worst is the
    // violating endpoint either way, but SHIA's is less negative.
    EXPECT_GT(report.shiaWorstHoldSlack, report.classicalWorstHoldSlack);
}

TEST(StaEngine, UnknownCellLandsInFailureReasonNotAThrow) {
    const sta::Design d = sta::parseDesign(
        "design d\nclock c period 1n\ninput a\n"
        "reg r1 cell nosuch d a q q1\n");
    const sta::StaReport viaLibrary =
        sta::analyzeDesign(d, std::vector<sta::StaCell>{});
    EXPECT_FALSE(viaLibrary.success);
    EXPECT_NE(viaLibrary.failureReason.find("nosuch"), std::string::npos);

    const sta::StaReport viaCells =
        sta::analyzeDesign(d, std::map<std::string, sta::CharacterizedStaCell>{});
    EXPECT_FALSE(viaCells.success);
    EXPECT_NE(viaCells.failureReason.find("nosuch"), std::string::npos);
}

TEST(StaEngine, StructuralErrorsLandInFailureReason) {
    const sta::Design cyclic = sta::parseDesign(
        "design d\nclock c period 1n\ninput a\n"
        "gate g1 n1 from a 1p from n2 1p\n"
        "gate g2 n2 from n1 1p\n"
        "reg r1 cell fake d n2 q q1\n");
    const sta::StaReport report = sta::analyzeDesign(cyclic, fakeLibrary());
    EXPECT_FALSE(report.success);
    EXPECT_NE(report.failureReason.find("combinational cycle"),
              std::string::npos);
}

/// A wide layered design: `width` parallel chains with cross-links, so
/// every level holds many nets and the per-level parallel sweeps have
/// real contention to get wrong.
sta::Design wideDesign(int width, int depth) {
    std::ostringstream text;
    text << "design wide\nclock clk period 5n\n";
    for (int w = 0; w < width; ++w) {
        text << "input a" << w << " arrival 0 " << (w + 1) << "0p\n";
        text << "reg l" << w << " cell fake d a" << w << " q q" << w
             << "_0 skew " << w * 7 << "p\n";
    }
    for (int l = 0; l < depth; ++l) {
        for (int w = 0; w < width; ++w) {
            // Each gate merges its own chain and the neighbor chain:
            // reconvergence everywhere, deterministic arc order.
            text << "gate g" << w << "_" << l << " q" << w << "_" << (l + 1)
                 << " from q" << w << "_" << l << " " << (13 + w) << "p"
                 << " from q" << ((w + 1) % width) << "_" << l << " "
                 << (29 + l) << "p\n";
        }
    }
    for (int w = 0; w < width; ++w) {
        text << "reg c" << w << " cell fake d q" << w << "_" << depth
             << " q z" << w << " skew " << w * 11 << "p\n";
        text << "output z" << w << "\n";
    }
    return sta::parseDesign(text.str());
}

TEST(StaEngine, ThreadCountDoesNotChangeAnyResult) {
    const sta::Design d = wideDesign(16, 12);
    const auto cells = fakeLibrary();
    RunConfig serial;
    serial.parallel.threads = 1;
    RunConfig wide;
    wide.parallel.threads = 8;
    const sta::StaReport a = sta::analyzeDesign(d, cells, serial);
    const sta::StaReport b = sta::analyzeDesign(d, cells, wide);
    ASSERT_TRUE(a.success) << a.failureReason;
    ASSERT_TRUE(b.success) << b.failureReason;

    ASSERT_EQ(a.nets.size(), b.nets.size());
    for (std::size_t i = 0; i < a.nets.size(); ++i) {
        EXPECT_EQ(a.nets[i].net, b.nets[i].net);
        // Bit-exact, not approximately equal: per-net slots plus fixed
        // arc order make the sweeps independent of the thread count.
        EXPECT_EQ(a.nets[i].atMin, b.nets[i].atMin);
        EXPECT_EQ(a.nets[i].atMax, b.nets[i].atMax);
        EXPECT_EQ(a.nets[i].requiredMax, b.nets[i].requiredMax);
        EXPECT_EQ(a.nets[i].requiredMin, b.nets[i].requiredMin);
        EXPECT_EQ(a.nets[i].setupSlack, b.nets[i].setupSlack);
        EXPECT_EQ(a.nets[i].holdSlack, b.nets[i].holdSlack);
    }
    ASSERT_EQ(a.endpoints.size(), b.endpoints.size());
    for (std::size_t i = 0; i < a.endpoints.size(); ++i) {
        EXPECT_EQ(a.endpoints[i].availSetup, b.endpoints[i].availSetup);
        EXPECT_EQ(a.endpoints[i].availHold, b.endpoints[i].availHold);
        EXPECT_EQ(a.endpoints[i].shiaOk, b.endpoints[i].shiaOk);
        EXPECT_EQ(a.endpoints[i].shiaHoldSlack,
                  b.endpoints[i].shiaHoldSlack);
    }
    EXPECT_EQ(a.worstSetupSlack, b.worstSetupSlack);
    EXPECT_EQ(a.classicalWorstHoldSlack, b.classicalWorstHoldSlack);
    EXPECT_EQ(a.shiaWorstHoldSlack, b.shiaWorstHoldSlack);
}

TEST(StaNetlist, ShippedBenchmarkNetlistsParseAndLevelize) {
    for (const char* name : {"pipeline4", "chain8", "diamond"}) {
        const sta::Design d = sta::loadDesign(
            std::string(SHTRACE_NETLIST_DIR) + "/" + name + ".stanet");
        EXPECT_FALSE(d.registers.empty()) << name;
        EXPECT_GT(d.clockPeriod, 0.0) << name;
        EXPECT_NO_THROW(sta::buildTimingGraph(d)) << name;
    }
    const sta::Design pipeline = sta::loadDesign(
        std::string(SHTRACE_NETLIST_DIR) + "/pipeline4.stanet");
    EXPECT_EQ(pipeline.registers.size(), 4u);
    EXPECT_EQ(pipeline.name, "pipeline4");
}

}  // namespace
}  // namespace shtrace
