// Tests for LU factorization with scaled partial pivoting.
#include <gtest/gtest.h>

#include <random>

#include "shtrace/linalg/lu.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

Matrix randomMatrix(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            m(i, j) = dist(rng);
        }
        m(i, i) += 2.0;  // keep it comfortably nonsingular
    }
    return m;
}

Vector randomVector(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = dist(rng);
    }
    return v;
}

class LuSolveProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSolveProperty, SolutionSatisfiesSystem) {
    const std::size_t n = GetParam();
    for (unsigned seed = 1; seed <= 5; ++seed) {
        const Matrix a = randomMatrix(n, seed);
        const Vector b = randomVector(n, seed + 100);
        LuFactorization lu;
        ASSERT_TRUE(lu.factor(a));
        const Vector x = lu.solve(b);
        const Vector residual = a.multiply(x) - b;
        EXPECT_LT(residual.normInf(), 1e-10 * (1.0 + b.normInf()))
            << "n=" << n << " seed=" << seed;
    }
}

TEST_P(LuSolveProperty, TransposedSolveSatisfiesTransposedSystem) {
    const std::size_t n = GetParam();
    const Matrix a = randomMatrix(n, 7);
    const Vector b = randomVector(n, 8);
    LuFactorization lu;
    ASSERT_TRUE(lu.factor(a));
    const Vector x = lu.solveTransposed(b);
    const Vector residual = a.transposed().multiply(x) - b;
    EXPECT_LT(residual.normInf(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSolveProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40));

TEST(Lu, DeterminantOfKnownMatrix) {
    Matrix a(2, 2);
    a(0, 0) = 3;
    a(0, 1) = 1;
    a(1, 0) = 4;
    a(1, 1) = 2;
    LuFactorization lu;
    ASSERT_TRUE(lu.factor(a));
    EXPECT_NEAR(lu.determinant(), 2.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;  // rank 1
    LuFactorization lu;
    EXPECT_FALSE(lu.factor(a));
    EXPECT_FALSE(lu.valid());
}

TEST(Lu, DetectsEmptyRow) {
    Matrix a(3, 3);
    a(0, 0) = 1;
    a(2, 2) = 1;  // row 1 all zero
    LuFactorization lu;
    EXPECT_FALSE(lu.factor(a));
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
    // Requires a row swap: [[0 1],[1 0]].
    Matrix a(2, 2);
    a(0, 1) = 1;
    a(1, 0) = 1;
    LuFactorization lu;
    ASSERT_TRUE(lu.factor(a));
    const Vector x = lu.solve(Vector{3.0, 5.0});
    EXPECT_DOUBLE_EQ(x[0], 5.0);
    EXPECT_DOUBLE_EQ(x[1], 3.0);
    EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(Lu, ScaledPivotingHandlesBadlyScaledRows) {
    // Row 0 is a branch-like row (unit entries), row 1 conductance-scale.
    Matrix a(2, 2);
    a(0, 0) = 1e-12;
    a(0, 1) = 1.0;
    a(1, 0) = 1e-3;
    a(1, 1) = 1e-3;
    const Vector b{1.0, 2e-3};
    LuFactorization lu;
    ASSERT_TRUE(lu.factor(a));
    const Vector x = lu.solve(b);
    const Vector residual = a.multiply(x) - b;
    EXPECT_LT(residual.normInf(), 1e-12);
}

TEST(Lu, SolveBeforeFactorThrows) {
    LuFactorization lu;
    EXPECT_THROW(lu.solve(Vector(2)), InvalidArgumentError);
}

TEST(Lu, RejectsNonSquare) {
    LuFactorization lu;
    EXPECT_THROW(lu.factor(Matrix(2, 3)), InvalidArgumentError);
}

TEST(Lu, OneShotSolverThrowsOnSingular) {
    Matrix a(2, 2);  // all zeros
    EXPECT_THROW(solveLinearSystem(a, Vector(2)), NumericalError);
}

TEST(Lu, StatsCountFactorAndSolve) {
    SimStats stats;
    const Matrix a = randomMatrix(4, 3);
    LuFactorization lu;
    ASSERT_TRUE(lu.factor(a, &stats));
    (void)lu.solve(Vector(4, 1.0), &stats);
    (void)lu.solve(Vector(4, 2.0), &stats);
    EXPECT_EQ(stats.luFactorizations, 1u);
    EXPECT_EQ(stats.luSolves, 2u);
}

TEST(Lu, ReciprocalPivotRatioReflectsConditioning) {
    LuFactorization good;
    ASSERT_TRUE(good.factor(Matrix::identity(3)));
    EXPECT_DOUBLE_EQ(good.reciprocalPivotRatio(), 1.0);

    Matrix skewed = Matrix::identity(3);
    skewed(2, 2) = 1e-9;
    LuFactorization bad;
    ASSERT_TRUE(bad.factor(skewed));
    EXPECT_LT(bad.reciprocalPivotRatio(), 1e-8);
}

}  // namespace
}  // namespace shtrace
