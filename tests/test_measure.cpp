// Tests for crossing detection, clock-to-Q measurement and output surfaces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "shtrace/measure/clock_to_q.hpp"
#include "shtrace/measure/crossing.hpp"
#include "shtrace/measure/surface.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

TEST(Crossing, FindsInterpolatedCrossings) {
    const std::vector<double> t{0.0, 1.0, 2.0, 3.0, 4.0};
    const std::vector<double> v{0.0, 2.0, 2.0, 0.0, 2.0};
    const auto crossings = findCrossings(t, v, 1.0);
    ASSERT_EQ(crossings.size(), 3u);
    EXPECT_NEAR(crossings[0].time, 0.5, 1e-12);
    EXPECT_TRUE(crossings[0].rising);
    EXPECT_NEAR(crossings[1].time, 2.5, 1e-12);
    EXPECT_FALSE(crossings[1].rising);
    EXPECT_NEAR(crossings[2].time, 3.5, 1e-12);
    EXPECT_TRUE(crossings[2].rising);
}

TEST(Crossing, SampleExactlyOnThresholdNotDoubleCounted) {
    const std::vector<double> t{0.0, 1.0, 2.0};
    const std::vector<double> v{0.0, 1.0, 2.0};  // hits threshold at sample 1
    const auto crossings = findCrossings(t, v, 1.0);
    ASSERT_EQ(crossings.size(), 1u);
    EXPECT_NEAR(crossings[0].time, 1.0, 1e-12);
}

TEST(Crossing, FlatAtThresholdIsNotACrossing) {
    const std::vector<double> t{0.0, 1.0, 2.0};
    const std::vector<double> v{1.0, 1.0, 1.0};
    EXPECT_TRUE(findCrossings(t, v, 1.0).empty());
}

TEST(Crossing, FirstAfterFiltersTimeAndDirection) {
    const std::vector<double> t{0.0, 1.0, 2.0, 3.0, 4.0};
    const std::vector<double> v{0.0, 2.0, 0.0, 2.0, 0.0};
    const auto c = firstCrossingAfter(t, v, 1.0, 1.2, true);
    ASSERT_TRUE(c.has_value());
    EXPECT_NEAR(c->time, 2.5, 1e-12);
    EXPECT_FALSE(
        firstCrossingAfter(t, v, 1.0, 3.6, true).has_value());
}

TEST(Crossing, RejectsBadInput) {
    EXPECT_THROW(findCrossings({0.0, 1.0}, {0.0}, 0.5), InvalidArgumentError);
    EXPECT_THROW(findCrossings({1.0, 1.0}, {0.0, 1.0}, 0.5),
                 InvalidArgumentError);
}

TEST(ClockToQSpec, ThresholdAndPolarity) {
    ClockToQSpec rising;
    rising.outputInitial = 0.0;
    rising.outputFinal = 2.5;
    rising.transitionFraction = 0.5;
    EXPECT_DOUBLE_EQ(rising.threshold(), 1.25);
    EXPECT_TRUE(rising.risingOutput());

    ClockToQSpec falling;
    falling.outputInitial = 2.5;
    falling.outputFinal = 0.0;
    falling.transitionFraction = 0.9;  // the C2MOS criterion
    EXPECT_DOUBLE_EQ(falling.threshold(), 0.25);
    EXPECT_FALSE(falling.risingOutput());
}

TEST(ClockToQ, MeasuresOnSyntheticTransient) {
    TransientResult tr;
    tr.success = true;
    // One "node": ramps 0 -> 2.5 between t = 1.0 and 2.0.
    for (double t = 0.0; t <= 3.0 + 1e-9; t += 0.25) {
        tr.times.push_back(t);
        Vector x(1);
        x[0] = std::clamp((t - 1.0) / 1.0, 0.0, 1.0) * 2.5;
        tr.states.push_back(x);
    }
    Vector sel(1);
    sel[0] = 1.0;
    ClockToQSpec spec;
    spec.clockEdgeMidpoint = 0.5;
    spec.outputFinal = 2.5;
    const auto c2q = measureClockToQ(tr, sel, spec);
    ASSERT_TRUE(c2q.has_value());
    EXPECT_NEAR(*c2q, 1.0, 1e-9);  // crosses 1.25 at t = 1.5
    EXPECT_TRUE(latchedSuccessfully(tr, sel, spec));
}

TEST(ClockToQ, FailedLatchReturnsNullopt) {
    TransientResult tr;
    tr.success = true;
    for (double t = 0.0; t <= 2.0; t += 0.5) {
        tr.times.push_back(t);
        tr.states.push_back(Vector(1, 0.2));  // output never moves
    }
    Vector sel(1);
    sel[0] = 1.0;
    ClockToQSpec spec;
    EXPECT_FALSE(measureClockToQ(tr, sel, spec).has_value());
    EXPECT_FALSE(latchedSuccessfully(tr, sel, spec));
}

TEST(ClockToQ, FalseTransitionDetectedByFinalValue) {
    // Q rises through the threshold then reverts (the Fig. 11(b) case):
    // the crossing exists but latchedSuccessfully must say no.
    TransientResult tr;
    tr.success = true;
    const double values[] = {0.0, 1.0, 2.0, 1.5, 0.3, 0.0};
    for (int i = 0; i < 6; ++i) {
        tr.times.push_back(i);
        tr.states.push_back(Vector(1, values[i]));
    }
    Vector sel(1);
    sel[0] = 1.0;
    ClockToQSpec spec;  // threshold 1.25 rising
    EXPECT_TRUE(measureClockToQ(tr, sel, spec).has_value());
    EXPECT_FALSE(latchedSuccessfully(tr, sel, spec));
}

TEST(Surface, InterpolatesBilinearly) {
    OutputSurface s({0.0, 1.0, 2.0}, {0.0, 2.0});
    // f(x, y) = 3x + 0.5y is reproduced exactly by bilinear interpolation.
    for (std::size_t i = 0; i < s.setupCount(); ++i) {
        for (std::size_t j = 0; j < s.holdCount(); ++j) {
            s.setValue(i, j, 3.0 * s.setupAt(i) + 0.5 * s.holdAt(j));
        }
    }
    EXPECT_NEAR(s.interpolate({0.5, 1.0}), 2.0, 1e-12);
    EXPECT_NEAR(s.interpolate({1.7, 0.4}), 5.3, 1e-12);
    EXPECT_TRUE(s.contains({2.0, 2.0}));
    EXPECT_FALSE(s.contains({2.1, 1.0}));
    EXPECT_THROW(s.interpolate({-0.1, 0.0}), InvalidArgumentError);
}

TEST(Surface, RejectsBadAxes) {
    EXPECT_THROW(OutputSurface({0.0}, {0.0, 1.0}), InvalidArgumentError);
    EXPECT_THROW(OutputSurface({0.0, 0.0}, {0.0, 1.0}),
                 InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
