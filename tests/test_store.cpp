// Tests for the persistent store primitives: hex-float round-trips, FNV-1a
// content keys (and their per-component invalidation), the serialization
// formats (bit-for-bit round-trips), and the on-disk ResultStore.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/store/cache.hpp"
#include "shtrace/store/key.hpp"
#include "shtrace/store/serialize.hpp"
#include "shtrace/util/hexfloat.hpp"

namespace shtrace {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- hexfloat

TEST(HexFloat, RoundTripsAwkwardValues) {
    const double values[] = {0.0,
                             -0.0,
                             1.0,
                             -1.0,
                             1.23456789e-12,
                             -3.141592653589793,
                             1e300,
                             5e-324,  // min subnormal
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::epsilon()};
    for (const double v : values) {
        const double back = fromHexFloat(toHexFloat(v));
        EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << toHexFloat(v);
    }
}

TEST(HexFloat, RoundTripsSpecials) {
    EXPECT_TRUE(std::isnan(fromHexFloat(toHexFloat(
        std::numeric_limits<double>::quiet_NaN()))));
    EXPECT_EQ(fromHexFloat(toHexFloat(
                  std::numeric_limits<double>::infinity())),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(fromHexFloat(toHexFloat(
                  -std::numeric_limits<double>::infinity())),
              -std::numeric_limits<double>::infinity());
}

TEST(HexFloat, RejectsJunk) {
    EXPECT_THROW(fromHexFloat(""), Error);
    EXPECT_THROW(fromHexFloat("0x1p0 trailing"), Error);
    EXPECT_THROW(fromHexFloat("hello"), Error);
}

// -------------------------------------------------------------------- keys

TEST(StoreKey, Fnv1aMatchesReferenceVectors) {
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(store::Fnv1a().value(), 14695981039346656037ull);
    EXPECT_EQ(store::Fnv1a().update("a").value(), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(store::Fnv1a().update("foobar").value(),
              0x85944171f73967e8ull);
    // Streaming == one-shot.
    EXPECT_EQ(store::Fnv1a().update("foo").update("bar").value(),
              store::Fnv1a().update("foobar").value());
}

TEST(StoreKey, HexKeySpellingRoundTrips) {
    const std::uint64_t keys[] = {0ull, 1ull, 0xdeadbeefcafef00dull,
                                  ~0ull};
    for (const std::uint64_t key : keys) {
        const std::string text = store::toHexKey(key);
        EXPECT_EQ(text.size(), 16u);
        const auto back = store::parseHexKey(text);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, key);
    }
    EXPECT_FALSE(store::parseHexKey("short"));
    EXPECT_FALSE(store::parseHexKey("123456789012345X"));
    EXPECT_FALSE(store::parseHexKey("0123456789ABCDEF"));  // upper case
}

TEST(StoreKey, EveryKeyComponentInvalidates) {
    const RegisterFixture fixture = buildTspcRegister();
    const RunConfig base;
    const store::CacheKey ref = store::characterizeKey(fixture, base);

    // Same inputs -> same key (stable across calls).
    EXPECT_EQ(store::characterizeKey(fixture, base).full, ref.full);
    EXPECT_EQ(store::characterizeKey(fixture, base).problem, ref.problem);

    // Criterion target: full key flips, problem key survives (that is the
    // warm-start family).
    {
        RunConfig c = base;
        c.criterion.degradation = 0.25;
        const store::CacheKey k = store::characterizeKey(fixture, c);
        EXPECT_NE(k.full, ref.full);
        EXPECT_EQ(k.problem, ref.problem);
    }
    // Criterion family field: both flip.
    {
        RunConfig c = base;
        c.criterion.transitionFraction = 0.8;
        const store::CacheKey k = store::characterizeKey(fixture, c);
        EXPECT_NE(k.full, ref.full);
        EXPECT_NE(k.problem, ref.problem);
    }
    // Recipe: both flip.
    {
        RunConfig c = base;
        c.recipe.dtNominal *= 0.5;
        const store::CacheKey k = store::characterizeKey(fixture, c);
        EXPECT_NE(k.full, ref.full);
        EXPECT_NE(k.problem, ref.problem);
    }
    // Tracer numerics: full flips, problem survives.
    {
        RunConfig c = base;
        c.tracer.stepLength *= 2.0;
        const store::CacheKey k = store::characterizeKey(fixture, c);
        EXPECT_NE(k.full, ref.full);
        EXPECT_EQ(k.problem, ref.problem);
    }
    // Seed search options: full flips.
    {
        RunConfig c = base;
        c.seed.maxBisections += 1;
        EXPECT_NE(store::characterizeKey(fixture, c).full, ref.full);
    }
    // The circuit itself: both flip.
    {
        TspcOptions opt;
        opt.outputLoadCapacitance = 33e-15;
        const RegisterFixture other = buildTspcRegister(opt);
        const store::CacheKey k = store::characterizeKey(other, base);
        EXPECT_NE(k.full, ref.full);
        EXPECT_NE(k.problem, ref.problem);
    }
    // Parallelism does NOT shape the result: keys must not see it.
    {
        RunConfig c = base;
        c.parallel.threads = 7;
        EXPECT_EQ(store::characterizeKey(fixture, c).full, ref.full);
    }
    // Cache knobs themselves are not part of the key.
    {
        RunConfig c = base;
        c.cacheDir = "/somewhere";
        c.cachePolicy = CachePolicy::Refresh;
        EXPECT_EQ(store::characterizeKey(fixture, c).full, ref.full);
    }
}

TEST(StoreKey, KindSeparatesEntryFamilies) {
    const RegisterFixture fixture = buildTspcRegister();
    const RunConfig config;
    const std::uint64_t chz = store::characterizeKey(fixture, config).full;
    const std::uint64_t lib =
        store::libraryRowKey(fixture, config.criterion, config, true).full;
    const std::uint64_t ind = store::independentRowKey(fixture, config).full;
    EXPECT_NE(chz, lib);
    EXPECT_NE(chz, ind);
    EXPECT_NE(lib, ind);
}

TEST(StoreKey, LibraryRowKeySeesContourToggleAndCriterion) {
    const RegisterFixture fixture = buildTspcRegister();
    const RunConfig config;
    const std::uint64_t with =
        store::libraryRowKey(fixture, config.criterion, config, true).full;
    const std::uint64_t without =
        store::libraryRowKey(fixture, config.criterion, config, false).full;
    EXPECT_NE(with, without);

    CriterionOptions cellCrit;
    cellCrit.transitionFraction = 0.9;
    EXPECT_NE(store::libraryRowKey(fixture, cellCrit, config, true).full,
              with);
}

// ------------------------------------------------------------ round trips

SimStats sampleStats() {
    SimStats s;
    s.transientSolves = 11;
    s.timeSteps = 1234;
    s.rejectedSteps = 5;
    s.newtonIterations = 4321;
    s.luFactorizations = 999;
    s.luSolves = 1001;
    s.deviceEvaluations = 123456;
    s.residualOnlyAssemblies = 888;
    s.chordIterations = 654;
    s.bypassedFactorizations = 321;
    s.sensitivitySteps = 77;
    s.hEvaluations = 42;
    s.mpnrIterations = 13;
    s.cacheHits = 1;
    s.cacheMisses = 2;
    s.cacheWarmStarts = 3;
    s.traceNonFiniteRejections = 4;
    s.traceTransientRetries = 5;
    s.tracePlateauReseeds = 6;
    s.traceStepHalvings = 7;
    s.wallSeconds = 0.12345678901234567;
    return s;
}

void expectSameStats(const SimStats& a, const SimStats& b) {
    EXPECT_EQ(a.transientSolves, b.transientSolves);
    EXPECT_EQ(a.timeSteps, b.timeSteps);
    EXPECT_EQ(a.rejectedSteps, b.rejectedSteps);
    EXPECT_EQ(a.newtonIterations, b.newtonIterations);
    EXPECT_EQ(a.luFactorizations, b.luFactorizations);
    EXPECT_EQ(a.luSolves, b.luSolves);
    EXPECT_EQ(a.deviceEvaluations, b.deviceEvaluations);
    EXPECT_EQ(a.residualOnlyAssemblies, b.residualOnlyAssemblies);
    EXPECT_EQ(a.chordIterations, b.chordIterations);
    EXPECT_EQ(a.bypassedFactorizations, b.bypassedFactorizations);
    EXPECT_EQ(a.sensitivitySteps, b.sensitivitySteps);
    EXPECT_EQ(a.hEvaluations, b.hEvaluations);
    EXPECT_EQ(a.mpnrIterations, b.mpnrIterations);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.cacheWarmStarts, b.cacheWarmStarts);
    EXPECT_EQ(a.traceNonFiniteRejections, b.traceNonFiniteRejections);
    EXPECT_EQ(a.traceTransientRetries, b.traceTransientRetries);
    EXPECT_EQ(a.tracePlateauReseeds, b.tracePlateauReseeds);
    EXPECT_EQ(a.traceStepHalvings, b.traceStepHalvings);
    EXPECT_EQ(std::memcmp(&a.wallSeconds, &b.wallSeconds, sizeof(double)),
              0);
}

void expectSameDiagnostics(const TraceDiagnostics& a,
                           const TraceDiagnostics& b) {
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].phase, b.events[i].phase);
        EXPECT_EQ(std::memcmp(&a.events[i].at.setup, &b.events[i].at.setup,
                              sizeof(double)),
                  0);
        EXPECT_EQ(std::memcmp(&a.events[i].at.hold, &b.events[i].at.hold,
                              sizeof(double)),
                  0);
        EXPECT_EQ(a.events[i].stepLength, b.events[i].stepLength);
        EXPECT_EQ(a.events[i].correctorIterations,
                  b.events[i].correctorIterations);
    }
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].kind, b.timeline[i].kind);
        EXPECT_EQ(a.timeline[i].phase, b.timeline[i].phase);
        EXPECT_EQ(std::memcmp(&a.timeline[i].at.setup,
                              &b.timeline[i].at.setup, sizeof(double)),
                  0);
        EXPECT_EQ(std::memcmp(&a.timeline[i].at.hold,
                              &b.timeline[i].at.hold, sizeof(double)),
                  0);
        EXPECT_EQ(a.timeline[i].opIndex, b.timeline[i].opIndex);
        EXPECT_EQ(std::memcmp(&a.timeline[i].wallNs, &b.timeline[i].wallNs,
                              sizeof(double)),
                  0);
    }
}

/// An every-kind timeline (pre-trace insertion included) for round trips.
void fillSampleTimeline(TraceDiagnostics& d) {
    d.mark(TimelineEventKind::SeedCorrected, TracePhase::Seed,
           SkewPoint{10e-12, 20e-12}, 31, 0.0);
    d.mark(TimelineEventKind::PointAccepted, TracePhase::Forward,
           SkewPoint{11e-12, 19e-12}, 40, 1234.5);
    d.mark(TimelineEventKind::Retry, TracePhase::Forward,
           SkewPoint{12e-12, 18e-12}, 55, 2500.0);
    d.mark(TimelineEventKind::Reseed, TracePhase::Backward,
           SkewPoint{9e-12, 21e-12}, 60, 0.0);
    d.mark(TimelineEventKind::Halving, TracePhase::Backward,
           SkewPoint{8e-12, 22e-12}, 72, 9.75e6);
    d.markPreTrace(TimelineEventKind::WarmStart, SkewPoint{10e-12, 20e-12},
                   25);
    d.markPreTrace(TimelineEventKind::SeedFound, SkewPoint{10e-12, 20e-12},
                   25);
    ASSERT_EQ(d.timeline.front().kind, TimelineEventKind::SeedFound);
}

TEST(StoreSerialize, SimStatsRoundTripsBitForBit) {
    const SimStats s = sampleStats();
    const SimStats back =
        store::deserializeSimStats(store::serializeSimStats(s));
    expectSameStats(s, back);
}

TEST(StoreSerialize, CharacterizeResultRoundTripsBitForBit) {
    CharacterizeResult r;
    r.success = true;
    r.characteristicClockToQ = 81.25e-12;
    r.degradedClockToQ = 89.375e-12;
    r.tf = 1.1e-9;
    r.r = 0.567;
    r.seed.found = true;
    r.seed.seed = SkewPoint{123.456e-12, 700e-12};
    r.seed.bracketLo = 100e-12;
    r.seed.bracketHi = 150e-12;
    r.seed.evaluations = 17;
    r.contour.seedConverged = true;
    r.contour.predictorRetries = 2;
    r.contour.points = {{1e-12, 2e-12}, {3e-12, 4e-12}, {5e-12, 6e-12}};
    r.contour.residuals = {1e-15, 2e-15, 3e-15};
    r.contour.correctorIterations = {2, 3, 4};
    r.failureReason = "contour tracing produced no points (NonFinite x1)";
    // Diagnostics round-trip bit-for-bit, including a NaN offending point
    // (hex-float carries the payload bits).
    r.contour.diagnostics.record(
        TraceEventKind::NonFinite, TracePhase::Forward,
        SkewPoint{std::numeric_limits<double>::quiet_NaN(), 2e-12}, 8e-12,
        5);
    r.contour.diagnostics.record(TraceEventKind::LeftBounds,
                                 TracePhase::Backward,
                                 SkewPoint{-3e-12, 4e-12}, 1.25e-12, 2);
    fillSampleTimeline(r.contour.diagnostics);
    r.stats = sampleStats();

    const CharacterizeResult back = store::deserializeCharacterizeResult(
        store::serializeCharacterizeResult(r));
    EXPECT_EQ(back.success, r.success);
    EXPECT_EQ(back.characteristicClockToQ, r.characteristicClockToQ);
    EXPECT_EQ(back.degradedClockToQ, r.degradedClockToQ);
    EXPECT_EQ(back.tf, r.tf);
    EXPECT_EQ(back.r, r.r);
    EXPECT_EQ(back.seed.found, r.seed.found);
    EXPECT_EQ(back.seed.seed.setup, r.seed.seed.setup);
    EXPECT_EQ(back.seed.seed.hold, r.seed.seed.hold);
    EXPECT_EQ(back.seed.bracketLo, r.seed.bracketLo);
    EXPECT_EQ(back.seed.bracketHi, r.seed.bracketHi);
    EXPECT_EQ(back.seed.evaluations, r.seed.evaluations);
    EXPECT_EQ(back.contour.seedConverged, r.contour.seedConverged);
    EXPECT_EQ(back.contour.predictorRetries, r.contour.predictorRetries);
    ASSERT_EQ(back.contour.points.size(), r.contour.points.size());
    for (std::size_t i = 0; i < r.contour.points.size(); ++i) {
        EXPECT_EQ(back.contour.points[i].setup, r.contour.points[i].setup);
        EXPECT_EQ(back.contour.points[i].hold, r.contour.points[i].hold);
        EXPECT_EQ(back.contour.residuals[i], r.contour.residuals[i]);
        EXPECT_EQ(back.contour.correctorIterations[i],
                  r.contour.correctorIterations[i]);
    }
    EXPECT_EQ(back.failureReason, r.failureReason);
    expectSameDiagnostics(r.contour.diagnostics, back.contour.diagnostics);
    expectSameStats(r.stats, back.stats);

    // Serialization is deterministic: serialize(deserialize(text)) == text.
    const std::string text = store::serializeCharacterizeResult(r);
    EXPECT_EQ(store::serializeCharacterizeResult(back), text);
}

TEST(StoreSerialize, LibraryRowRoundTripsIncludingStrings) {
    LibraryRow row;
    row.cell = "TSPC_X1 \"quoted\"\nsecond line\\";
    row.success = true;
    row.failureReason = "";
    row.characteristicClockToQ = 81e-12;
    row.setupTime = 123.4567e-12;
    row.holdTime = -4.5e-12;
    row.contour = {{1e-12, 2e-12}, {3e-12, 4e-12}};
    row.diagnostics.record(TraceEventKind::TransientFailed,
                           TracePhase::Forward, SkewPoint{2e-12, 3e-12},
                           4e-12, 1);
    row.diagnostics.record(TraceEventKind::BudgetExhausted,
                           TracePhase::Backward, SkewPoint{5e-12, 6e-12},
                           7e-12, 0);
    fillSampleTimeline(row.diagnostics);
    row.stats = sampleStats();

    const LibraryRow back =
        store::deserializeLibraryRow(store::serializeLibraryRow(row));
    EXPECT_EQ(back.cell, row.cell);
    EXPECT_EQ(back.success, row.success);
    EXPECT_EQ(back.failureReason, row.failureReason);
    EXPECT_EQ(back.characteristicClockToQ, row.characteristicClockToQ);
    EXPECT_EQ(back.setupTime, row.setupTime);
    EXPECT_EQ(back.holdTime, row.holdTime);
    ASSERT_EQ(back.contour.size(), row.contour.size());
    EXPECT_EQ(back.contour[1].hold, row.contour[1].hold);
    expectSameDiagnostics(row.diagnostics, back.diagnostics);
    expectSameStats(row.stats, back.stats);
}

TEST(StoreSerialize, PvtAndMcRowsRoundTrip) {
    PvtCornerResult row;
    row.corner = "ss/0.9V/125C";
    row.success = true;
    row.characteristicClockToQ = 99e-12;
    row.setupTime = 44e-12;
    row.holdTime = 11e-12;
    row.transientCount = 23;
    row.stats = sampleStats();
    const PvtCornerResult backPvt =
        store::deserializePvtRow(store::serializePvtRow(row));
    EXPECT_EQ(backPvt.corner, row.corner);
    EXPECT_EQ(backPvt.setupTime, row.setupTime);
    EXPECT_EQ(backPvt.transientCount, row.transientCount);
    expectSameStats(row.stats, backPvt.stats);

    store::McSampleRow mc{true, 1.25e-12, -0.5e-12, 80e-12};
    const store::McSampleRow backMc =
        store::deserializeMcRow(store::serializeMcRow(mc));
    EXPECT_EQ(backMc.converged, mc.converged);
    EXPECT_EQ(backMc.setupTime, mc.setupTime);
    EXPECT_EQ(backMc.holdTime, mc.holdTime);
    EXPECT_EQ(backMc.clockToQ, mc.clockToQ);
}

TEST(StoreSerialize, SurfaceResultRoundTrips) {
    SurfaceMethodResult r{OutputSurface({1e-12, 2e-12, 3e-12},
                                        {10e-12, 20e-12}),
                          {}, 6, sampleStats()};
    double v = 0.5;
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            r.surface.setValue(i, j, v);
            v += 0.125;
        }
    }
    r.contours = {{{1.5e-12, 15e-12}, {2.5e-12, 12e-12}}};

    const SurfaceMethodResult back =
        store::deserializeSurfaceResult(store::serializeSurfaceResult(r));
    EXPECT_EQ(back.transientCount, r.transientCount);
    ASSERT_EQ(back.surface.setupCount(), r.surface.setupCount());
    ASSERT_EQ(back.surface.holdCount(), r.surface.holdCount());
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            EXPECT_EQ(back.surface.value(i, j), r.surface.value(i, j));
        }
    }
    ASSERT_EQ(back.contours.size(), 1u);
    ASSERT_EQ(back.contours[0].size(), 2u);
    EXPECT_EQ(back.contours[0][1].setup, 2.5e-12);
    expectSameStats(r.stats, back.stats);
}

TEST(StoreSerialize, MalformedPayloadsThrowNotCrash) {
    EXPECT_THROW(store::deserializeSimStats(""), store::StoreFormatError);
    EXPECT_THROW(store::deserializeSimStats("stats 1 2\n"),
                 store::StoreFormatError);
    EXPECT_THROW(store::deserializeCharacterizeResult("characterize 1\n"),
                 store::StoreFormatError);
    EXPECT_THROW(store::deserializeLibraryRow("library_row 5\n"),
                 store::StoreFormatError);
    EXPECT_THROW(
        store::deserializeContourPoints("points 3\n0x1p0 0x1p0\n"),
        store::StoreFormatError);
    // Trailing garbage is rejected too.
    EXPECT_THROW(store::deserializeMcRow(
                     store::serializeMcRow({true, 1, 2, 3}) + "extra\n"),
                 store::StoreFormatError);
}

TEST(StoreSerialize, CorruptTimelineThrowsNotCrash) {
    LibraryRow row;
    row.cell = "X";
    row.success = true;
    fillSampleTimeline(row.diagnostics);
    const std::string good = store::serializeLibraryRow(row);
    ASSERT_NE(good.find("\ntimeline "), std::string::npos);

    // Unknown event kind.
    {
        std::string bad = good;
        const std::size_t pos = bad.find("PointAccepted");
        ASSERT_NE(pos, std::string::npos);
        bad.replace(pos, std::strlen("PointAccepted"), "PointAccepte?");
        EXPECT_THROW(store::deserializeLibraryRow(bad),
                     store::StoreFormatError);
    }
    // Count larger than the lines that follow.
    {
        std::string bad = good;
        const std::size_t pos = bad.find("\ntimeline ");
        bad.replace(pos, std::strlen("\ntimeline "), "\ntimeline 9");
        EXPECT_THROW(store::deserializeLibraryRow(bad),
                     store::StoreFormatError);
    }
}

// ------------------------------------------------------------ ResultStore

class ResultStoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::path(::testing::TempDir()) /
               ("shtrace_store_" +
                std::to_string(reinterpret_cast<std::uintptr_t>(this)));
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    store::StoreEntry sampleEntry(std::uint64_t key,
                                  std::uint64_t problem) const {
        store::StoreEntry entry;
        entry.kind = store::kKindMcRow;
        entry.key = key;
        entry.problem = problem;
        entry.label = "sample";
        entry.payload = store::serializeMcRow({true, 1e-12, 2e-12, 3e-12});
        return entry;
    }

    fs::path dir_;
};

TEST_F(ResultStoreTest, SaveLoadListRemove) {
    const store::ResultStore cache(dir_.string());
    EXPECT_FALSE(cache.load(42).has_value());

    cache.save(sampleEntry(42, 7));
    cache.save(sampleEntry(43, 7));
    const auto entry = cache.load(42);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->kind, store::kKindMcRow);
    EXPECT_EQ(entry->key, 42u);
    EXPECT_EQ(entry->problem, 7u);
    EXPECT_EQ(entry->label, "sample");

    const auto all = cache.list();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].key, 42u);
    EXPECT_EQ(all[1].key, 43u);

    EXPECT_TRUE(cache.remove(42));
    EXPECT_FALSE(cache.remove(42));
    EXPECT_FALSE(cache.load(42).has_value());
}

TEST_F(ResultStoreTest, OverwriteReplacesContent) {
    const store::ResultStore cache(dir_.string());
    cache.save(sampleEntry(1, 2));
    store::StoreEntry updated = sampleEntry(1, 2);
    updated.label = "updated";
    cache.save(updated);
    ASSERT_EQ(cache.list().size(), 1u);
    EXPECT_EQ(cache.load(1)->label, "updated");
}

TEST_F(ResultStoreTest, CorruptionReadsAsCleanMiss) {
    const store::ResultStore cache(dir_.string());
    cache.save(sampleEntry(5, 9));
    const fs::path path = dir_ / store::ResultStore::entryFileName(5);

    // Flip a payload byte: checksum mismatch.
    {
        std::string text;
        {
            std::ifstream in(path);
            std::stringstream buf;
            buf << in.rdbuf();
            text = buf.str();
        }
        const std::size_t pos = text.find("0x");
        ASSERT_NE(pos, std::string::npos);
        text[pos + 2] = text[pos + 2] == '1' ? '2' : '1';
        std::ofstream(path) << text;
    }
    EXPECT_FALSE(cache.load(5).has_value());

    // Truncation.
    cache.save(sampleEntry(5, 9));
    {
        std::error_code ec;
        fs::resize_file(path, fs::file_size(path) / 2, ec);
        ASSERT_FALSE(ec);
    }
    EXPECT_FALSE(cache.load(5).has_value());

    // Plain junk.
    std::ofstream(path) << "not a store entry\n";
    EXPECT_FALSE(cache.load(5).has_value());

    // A valid entry renamed to the wrong key must not be served.
    cache.save(sampleEntry(6, 9));
    fs::copy_file(dir_ / store::ResultStore::entryFileName(6),
                  dir_ / store::ResultStore::entryFileName(77));
    EXPECT_FALSE(cache.load(77).has_value());
}

TEST_F(ResultStoreTest, GcRemovesOnlyBrokenEntries) {
    const store::ResultStore cache(dir_.string());
    cache.save(sampleEntry(10, 1));
    cache.save(sampleEntry(11, 1));
    std::ofstream(dir_ / store::ResultStore::entryFileName(12))
        << "garbage\n";
    std::ofstream(dir_ / "README.txt") << "not an entry at all\n";

    const auto report = cache.gc();
    EXPECT_EQ(report.kept, 2u);
    EXPECT_EQ(report.removed, 1u);
    EXPECT_TRUE(cache.load(10).has_value());
    EXPECT_TRUE(cache.load(11).has_value());
    EXPECT_TRUE(fs::exists(dir_ / "README.txt"));  // non-.shtr untouched
}

TEST_F(ResultStoreTest, FindNearHitPrefersContourCarriers) {
    const store::ResultStore cache(dir_.string());
    // An mc_row in the family: no contour, never a warm-start source.
    cache.save(sampleEntry(20, 99));
    EXPECT_FALSE(cache.findNearHit(99, 0).has_value());

    LibraryRow row;
    row.cell = "X";
    row.success = true;
    row.contour = {{1e-12, 2e-12}};
    store::StoreEntry entry;
    entry.kind = store::kKindLibraryRow;
    entry.key = 21;
    entry.problem = 99;
    entry.payload = store::serializeLibraryRow(row);
    cache.save(entry);

    const auto hit = cache.findNearHit(99, 0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->key, 21u);
    // The entry itself is excluded (a near-hit must be a DIFFERENT entry),
    // and other problem families never match.
    EXPECT_FALSE(cache.findNearHit(99, 21).has_value());
    EXPECT_FALSE(cache.findNearHit(98, 0).has_value());
}

TEST(NearestPoint, PicksEuclideanNearest) {
    const std::vector<SkewPoint> points = {
        {0.0, 0.0}, {1.0, 1.0}, {5.0, 5.0}};
    const auto p = store::nearestPoint(points, SkewPoint{1.2, 0.9});
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->setup, 1.0);
    EXPECT_EQ(p->hold, 1.0);
    EXPECT_FALSE(store::nearestPoint({}, SkewPoint{0, 0}).has_value());
}

}  // namespace
}  // namespace shtrace
