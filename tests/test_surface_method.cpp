// Integration test: brute-force surface baseline vs Euler-Newton tracing.
// The overlay agreement (paper Figs. 10/12(b)) is THE correctness check of
// the whole method: two completely different algorithms must produce the
// same constant clock-to-Q contour.
#include <gtest/gtest.h>

#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/problem.hpp"
#include "shtrace/chz/surface_method.hpp"
#include "shtrace/chz/tracer.hpp"

namespace shtrace {
namespace {

class SurfaceVsTracer : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        fixture_ = new RegisterFixture(buildTspcRegister());
        problem_ = new CharacterizationProblem(*fixture_);

        // Moderate grid over the knee region (cost: 15x15 transients).
        SurfaceMethodOptions surfOpt;
        surfOpt.setupPoints = 15;
        surfOpt.holdPoints = 15;
        surfOpt.setupMin = 150e-12;
        surfOpt.setupMax = 450e-12;
        surfOpt.holdMin = 80e-12;
        surfOpt.holdMax = 400e-12;
        surface_ = new SurfaceMethodResult(
            runSurfaceMethod(problem_->h(), surfOpt));
    }
    static void TearDownTestSuite() {
        delete surface_;
        delete problem_;
        delete fixture_;
        surface_ = nullptr;
        problem_ = nullptr;
        fixture_ = nullptr;
    }

    static RegisterFixture* fixture_;
    static CharacterizationProblem* problem_;
    static SurfaceMethodResult* surface_;
};

RegisterFixture* SurfaceVsTracer::fixture_ = nullptr;
CharacterizationProblem* SurfaceVsTracer::problem_ = nullptr;
SurfaceMethodResult* SurfaceVsTracer::surface_ = nullptr;

TEST_F(SurfaceVsTracer, SurfaceHasExpectedShape) {
    const OutputSurface& s = surface_->surface;
    // TSPC latches a falling datum: passing corner (large setup AND hold)
    // has LOW output, failing corner (small skews) stays HIGH.
    const double pass = s.value(s.setupCount() - 1, s.holdCount() - 1);
    const double fail = s.value(0, 0);
    EXPECT_LT(pass, problem_->r());
    EXPECT_GT(fail, problem_->r());
    EXPECT_EQ(surface_->transientCount, 15 * 15);
}

TEST_F(SurfaceVsTracer, ContourExtractedFromSurface) {
    ASSERT_GE(surface_->contours.size(), 1u);
    // The main polyline spans a substantial part of the window.
    EXPECT_GE(surface_->contours.front().size(), 8u);
}

TEST_F(SurfaceVsTracer, EulerNewtonContourOverlaysSurfaceContour) {
    TracerOptions opt;
    opt.bounds = SkewBounds{160e-12, 440e-12, 90e-12, 390e-12};
    opt.maxPoints = 16;
    const TracedContour traced =
        traceContour(problem_->h(), SkewPoint{220e-12, 380e-12}, opt);
    ASSERT_TRUE(traced.seedConverged);
    ASSERT_GE(traced.points.size(), 8u);

    // Every Newton-refined point must lie within one grid cell of the
    // interpolated surface contour (the surface carries the interpolation
    // error, not the tracer).
    const double cell = (450e-12 - 150e-12) / 14.0;  // ~21 ps
    const double dev = maxDeviation(traced.points, surface_->contours);
    EXPECT_LT(dev, cell);
}

TEST_F(SurfaceVsTracer, TracerCostIsFarBelowSurfaceCost) {
    SimStats tracerStats;
    TracerOptions opt;
    opt.bounds = SkewBounds{160e-12, 440e-12, 90e-12, 390e-12};
    opt.maxPoints = 15;
    const TracedContour traced = traceContour(
        problem_->h(), SkewPoint{220e-12, 380e-12}, opt, &tracerStats);
    ASSERT_TRUE(traced.seedConverged);
    // ~15 points at 2-3 MPNR iterations each ~= 40-60 transients, vs 225
    // for even this COARSE surface (a real 40x40 surface needs 1600).
    EXPECT_LT(tracerStats.hEvaluations,
              static_cast<std::uint64_t>(surface_->transientCount) / 2);
}

TEST_F(SurfaceVsTracer, SurfaceInterpolationConsistentWithDirectEval) {
    // Bilinear interpolation of the sampled surface approximates a direct
    // h evaluation mid-cell (loose tolerance: the surface is coarse).
    const SkewPoint mid{290e-12, 230e-12};
    const double interp = surface_->surface.interpolate(mid);
    const HEvaluation direct =
        problem_->h().evaluateValueOnly(mid.setup, mid.hold);
    EXPECT_NEAR(interp, direct.h + problem_->r(), 0.25);
}

}  // namespace
}  // namespace shtrace
