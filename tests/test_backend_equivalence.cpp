// Dense-vs-sparse backend equivalence, end to end: the same circuit run
// through LinalgBackend::Dense and LinalgBackend::Sparse must produce the
// same DC operating point, transient trajectory, skew sensitivities,
// adjoint gradient, and -- the acceptance criterion for the whole PR --
// the same Fig. 8 setup/hold contour to within 2 ps. The SoA batch device
// path is held to a stricter standard (bit-identical to scalar), and the
// chord determinism guarantee (threads=1 == threads=8, byte for byte) is
// re-proven on the sparse backend; this binary runs under tsan in the
// sanitizer sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "fault_injection.hpp"
#include "shtrace/analysis/adjoint.hpp"
#include "shtrace/analysis/dc_op.hpp"
#include "shtrace/analysis/transient.hpp"
#include "shtrace/cells/register_chain.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/characterize.hpp"
#include "shtrace/chz/library.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"

namespace shtrace {
namespace {

double worstAbsDiff(const Vector& a, const Vector& b) {
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
        worst = std::max(worst, std::abs(a[i] - b[i]));
    }
    return worst;
}

double relDiff(const Vector& a, const Vector& b) {
    double scale = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        scale = std::max(scale, std::abs(a[i]));
    }
    return scale > 0.0 ? worstAbsDiff(a, b) / scale : worstAbsDiff(a, b);
}

TransientOptions chainTransientOptions(LinalgBackend backend) {
    TransientOptions opt;
    opt.tStart = 10e-9;
    opt.tStop = 11.6e-9;
    opt.method = IntegrationMethod::Trapezoidal;
    opt.adaptive = false;
    opt.fixedSteps = 640;
    opt.linalg = backend;
    return opt;
}

// ------------------------------------------------------------------- DC ---

TEST(BackendEquivalence, DcOperatingPointMatchesOnAnEightBitChain) {
    const RegisterChainOptions chainOpt{TspcOptions{}, 8};  // 62 unknowns
    const RegisterFixture reg = buildTspcRegisterChain(chainOpt);
    reg.data->setSkews(300e-12, 300e-12);

    DcOptions dense;
    dense.time = 10e-9;
    dense.linalg = LinalgBackend::Dense;
    DcOptions sparse = dense;
    sparse.linalg = LinalgBackend::Sparse;

    const DcResult xd = solveDcOperatingPoint(reg.circuit, dense);
    const DcResult xs = solveDcOperatingPoint(reg.circuit, sparse);
    ASSERT_TRUE(xd.converged);
    ASSERT_TRUE(xs.converged);
    // Both backends converge the same Newton iteration to the same
    // tolerance; only factorization rounding differs.
    EXPECT_LT(worstAbsDiff(xd.x, xs.x), 1e-7) << "volts";
}

// ------------------------------------------- transient + sensitivities ---

TEST(BackendEquivalence, TransientAndSensitivitiesMatchOnAFourBitChain) {
    const RegisterChainOptions chainOpt{TspcOptions{}, 4};
    const RegisterFixture reg = buildTspcRegisterChain(chainOpt);
    reg.data->setSkews(300e-12, 300e-12);

    TransientOptions dOpt = chainTransientOptions(LinalgBackend::Dense);
    dOpt.trackSkewSensitivities = true;
    TransientOptions sOpt = dOpt;
    sOpt.linalg = LinalgBackend::Sparse;

    const TransientResult td = TransientAnalysis(reg.circuit, dOpt).run();
    const TransientResult ts = TransientAnalysis(reg.circuit, sOpt).run();
    ASSERT_TRUE(td.success) << td.failureReason;
    ASSERT_TRUE(ts.success) << ts.failureReason;

    EXPECT_LT(worstAbsDiff(td.finalState, ts.finalState), 1e-6) << "volts";
    // Sensitivities are single back-substitutions (not iterated to a
    // tolerance), so backend rounding shows up scaled by the conditioning;
    // compare relative to the trajectory's own magnitude.
    EXPECT_LT(relDiff(td.finalSensitivitySetup, ts.finalSensitivitySetup),
              1e-3);
    EXPECT_LT(relDiff(td.finalSensitivityHold, ts.finalSensitivityHold),
              1e-3);
}

TEST(BackendEquivalence, AdjointGradientMatchesOnAFourBitChain) {
    const RegisterChainOptions chainOpt{TspcOptions{}, 4};
    const RegisterFixture reg = buildTspcRegisterChain(chainOpt);
    reg.data->setSkews(300e-12, 300e-12);
    const std::size_t n = reg.circuit.systemSize();

    Vector selector(n);
    selector[static_cast<std::size_t>(reg.q.index)] = 1.0;

    const auto gradientFor = [&](LinalgBackend backend) {
        TransientOptions opt = chainTransientOptions(backend);
        opt.method = IntegrationMethod::BackwardEuler;
        opt.recordAdjointTape = true;
        const TransientResult tr = TransientAnalysis(reg.circuit, opt).run();
        EXPECT_TRUE(tr.success) << tr.failureReason;
        // The tape is stored in the run's backend representation; the
        // adjoint sweep (and its solveTransposed) must follow it.
        EXPECT_EQ(tr.adjointTape.at(1).c.isSparse(),
                  backend == LinalgBackend::Sparse);
        return computeAdjointGradient(reg.circuit, tr, selector);
    };
    const AdjointGradient gd = gradientFor(LinalgBackend::Dense);
    const AdjointGradient gs = gradientFor(LinalgBackend::Sparse);
    const double scale =
        std::max({std::abs(gd.dSetup), std::abs(gd.dHold), 1e-6});
    EXPECT_LT(std::abs(gd.dSetup - gs.dSetup) / scale, 1e-6);
    EXPECT_LT(std::abs(gd.dHold - gs.dHold) / scale, 1e-6);
}

// ---------------------------------------------------- Auto resolution ---

TEST(BackendEquivalence, AutoRoutesChainsSparseAndLatchesDense) {
    // A 16-bit chain (118 unknowns) crosses kSparseAutoThreshold; the
    // single-bit TSPC (13 unknowns) must stay on the bit-exact dense path.
    const RegisterChainOptions chainOpt{TspcOptions{}, 16};
    const RegisterFixture chain = buildTspcRegisterChain(chainOpt);
    chain.data->setSkews(300e-12, 300e-12);
    ASSERT_GE(chain.circuit.systemSize(), kSparseAutoThreshold);

    TransientOptions opt = chainTransientOptions(LinalgBackend::Auto);
    opt.fixedSteps = 160;  // enough steps to factor many times
    SimStats chainStats;
    const TransientResult tr =
        TransientAnalysis(chain.circuit, opt).run(&chainStats);
    ASSERT_TRUE(tr.success) << tr.failureReason;
    EXPECT_GT(chainStats.sparseRefactorizations, 0u);

    const RegisterFixture tspc = buildTspcRegister();
    tspc.data->setSkews(300e-12, 300e-12);
    ASSERT_LT(tspc.circuit.systemSize(), kSparseAutoThreshold);
    SimStats tspcStats;
    const TransientResult tl =
        TransientAnalysis(tspc.circuit, opt).run(&tspcStats);
    ASSERT_TRUE(tl.success) << tl.failureReason;
    EXPECT_EQ(tspcStats.sparseRefactorizations, 0u);
}

// ------------------------------------------------ Fig. 8 contour (2 ps) ---

CharacterizeOptions contourConfig(LinalgBackend backend, bool batch) {
    CharacterizeOptions opt;
    opt.tracer.maxPoints = 12;
    opt.tracer.bounds = SkewBounds{120e-12, 560e-12, 60e-12, 460e-12};
    opt.recipe.linalg = backend;
    opt.recipe.batchDeviceEval = batch;
    return opt;
}

TEST(BackendEquivalence, Fig8ContourAgreesWithinTwoPicoseconds) {
    const RegisterFixture reg = buildTspcRegister();
    const CharacterizeResult dense = characterizeInterdependent(
        reg, contourConfig(LinalgBackend::Dense, false));
    const CharacterizeResult sparse = characterizeInterdependent(
        reg, contourConfig(LinalgBackend::Sparse, false));
    ASSERT_TRUE(dense.success) << dense.failureReason;
    ASSERT_TRUE(sparse.success) << sparse.failureReason;

    // Same seed, same predictor schedule, h solved to the same tolerance:
    // the traced polylines must be pointwise within the PR's 2 ps budget
    // (they are far closer in practice).
    ASSERT_EQ(dense.contour.points.size(), sparse.contour.points.size());
    for (std::size_t i = 0; i < dense.contour.points.size(); ++i) {
        EXPECT_NEAR(dense.contour.points[i].setup,
                    sparse.contour.points[i].setup, 2e-12)
            << "point " << i;
        EXPECT_NEAR(dense.contour.points[i].hold,
                    sparse.contour.points[i].hold, 2e-12)
            << "point " << i;
    }
    EXPECT_NEAR(dense.characteristicClockToQ, sparse.characteristicClockToQ,
                2e-12);
    // The sparse run actually exercised the sparse solver.
    EXPECT_GT(sparse.stats.sparseRefactorizations, 0u);
    EXPECT_EQ(dense.stats.sparseRefactorizations, 0u);
}

TEST(BackendEquivalence, BatchDeviceEvalIsBitIdenticalThroughTheContour) {
    const RegisterFixture reg = buildTspcRegister();
    const CharacterizeResult scalar = characterizeInterdependent(
        reg, contourConfig(LinalgBackend::Dense, false));
    const CharacterizeResult batch = characterizeInterdependent(
        reg, contourConfig(LinalgBackend::Dense, true));
    ASSERT_TRUE(scalar.success) << scalar.failureReason;
    ASSERT_TRUE(batch.success) << batch.failureReason;

    // The batch evaluator runs the same Shichman-Hodges arithmetic in the
    // same stamping order: byte-identical results, not approximately equal.
    EXPECT_EQ(scalar.characteristicClockToQ, batch.characteristicClockToQ);
    ASSERT_EQ(scalar.contour.points.size(), batch.contour.points.size());
    for (std::size_t i = 0; i < scalar.contour.points.size(); ++i) {
        EXPECT_EQ(scalar.contour.points[i].setup,
                  batch.contour.points[i].setup);
        EXPECT_EQ(scalar.contour.points[i].hold,
                  batch.contour.points[i].hold);
    }
    EXPECT_EQ(scalar.stats.newtonIterations, batch.stats.newtonIterations);
    EXPECT_GT(batch.stats.batchAssemblies, 0u);
    EXPECT_EQ(scalar.stats.batchAssemblies, 0u);
}

// ------------------------------------- chord determinism across threads ---

std::vector<LibraryCell> tspcLibrary() {
    const auto tspcAt = [](double load) {
        return [load] {
            TspcOptions opt;
            opt.outputLoadCapacitance = load;
            return buildTspcRegister(opt);
        };
    };
    return {
        LibraryCell{"TSPC_X1", tspcAt(20e-15), CriterionOptions{}},
        LibraryCell{"TSPC_X2", tspcAt(40e-15), CriterionOptions{}},
        LibraryCell{"TSPC_X4", tspcAt(80e-15), CriterionOptions{}},
    };
}

TEST(BackendEquivalence, SparseChordReuseIsDeterministicAcrossThreads) {
    // PR 3's guarantee, re-proven on the sparse backend: each worker owns
    // its SparseLinearSolver (symbolic structure included), so rows and
    // chord counters are byte-identical for any thread count. Runs under
    // tsan in the sanitizer sweep.
    RunConfig cfg = RunConfig::defaults()
                        .withThreads(1)
                        .withJacobianReuse(true)
                        .withLinalgBackend(LinalgBackend::Sparse);
    cfg.tracer.maxPoints = 5;
    cfg.tracer.bounds = SkewBounds{80e-12, 900e-12, 40e-12, 700e-12};
    const LibraryResult serial = characterizeLibrary(tspcLibrary(), cfg);
    const LibraryResult parallel =
        characterizeLibrary(tspcLibrary(), cfg.withThreads(8));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].success) << serial[i].failureReason;
        EXPECT_EQ(serial[i].setupTime, parallel[i].setupTime);
        EXPECT_EQ(serial[i].holdTime, parallel[i].holdTime);
        ASSERT_EQ(serial[i].contour.size(), parallel[i].contour.size());
        for (std::size_t j = 0; j < serial[i].contour.size(); ++j) {
            EXPECT_EQ(serial[i].contour[j].setup,
                      parallel[i].contour[j].setup);
            EXPECT_EQ(serial[i].contour[j].hold, parallel[i].contour[j].hold);
        }
        EXPECT_EQ(serial[i].stats.chordIterations,
                  parallel[i].stats.chordIterations);
        EXPECT_EQ(serial[i].stats.sparseRefactorizations,
                  parallel[i].stats.sparseRefactorizations);
    }
    EXPECT_GT(serial.stats.sparseRefactorizations, 0u);
    EXPECT_GT(serial.stats.chordIterations, 0u);
}

// ----------------------------------------------- fault-path equivalence ---

TEST(BackendEquivalence, ResidualNanOnSparseFailsLikeDense) {
    // PR 4 taxonomy: a NaN stamped into the KCL row is an ordinary
    // transient failure on BOTH backends -- same flags, same reason text.
    const auto run = [](LinalgBackend backend) {
        Circuit ckt;
        const NodeId a = ckt.node("a");
        ckt.add<VoltageSource>("V1", a, kGround, 1.0);
        ckt.add<faults::FaultInjectingDevice>(
            std::make_unique<Resistor>("R1", a, kGround, 1e3), a,
            faults::DeviceFaultKind::ResidualNan, 8);
        ckt.finalize();
        TransientOptions opt;
        opt.tStop = 1e-9;
        opt.fixedSteps = 10;
        opt.linalg = backend;
        return TransientAnalysis(ckt, opt).run();
    };
    const TransientResult dense = run(LinalgBackend::Dense);
    const TransientResult sparse = run(LinalgBackend::Sparse);
    EXPECT_FALSE(dense.success);
    EXPECT_FALSE(sparse.success);
    EXPECT_EQ(dense.nonFinite, sparse.nonFinite);
    EXPECT_EQ(dense.failureReason, sparse.failureReason);
}

}  // namespace
}  // namespace shtrace
