// Tests for the dense Vector and Matrix primitives.
#include <gtest/gtest.h>

#include "shtrace/linalg/matrix.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

TEST(Vector, ConstructionAndAccess) {
    Vector v(3, 1.5);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 1.5);
    v[1] = -2.0;
    EXPECT_DOUBLE_EQ(v.at(1), -2.0);
    EXPECT_THROW(v.at(3), InvalidArgumentError);

    const Vector init{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(init[2], 3.0);
}

TEST(Vector, Arithmetic) {
    const Vector a{1.0, 2.0};
    const Vector b{3.0, -1.0};
    const Vector sum = a + b;
    EXPECT_DOUBLE_EQ(sum[0], 4.0);
    EXPECT_DOUBLE_EQ(sum[1], 1.0);
    const Vector diff = a - b;
    EXPECT_DOUBLE_EQ(diff[0], -2.0);
    const Vector scaled = 2.0 * a;
    EXPECT_DOUBLE_EQ(scaled[1], 4.0);

    Vector axpy = a;
    axpy.addScaled(-3.0, b);
    EXPECT_DOUBLE_EQ(axpy[0], 1.0 - 9.0);
    EXPECT_DOUBLE_EQ(axpy[1], 2.0 + 3.0);
}

TEST(Vector, DotAndNorms) {
    const Vector a{3.0, -4.0};
    EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
    EXPECT_DOUBLE_EQ(a.norm2(), 5.0);
    EXPECT_DOUBLE_EQ(a.normInf(), 4.0);
    EXPECT_THROW(a.dot(Vector(3)), InvalidArgumentError);
}

TEST(Vector, SizeMismatchThrows) {
    Vector a(2);
    const Vector b(3);
    EXPECT_THROW(a += b, InvalidArgumentError);
    EXPECT_THROW(a -= b, InvalidArgumentError);
}

TEST(Matrix, IdentityAndAccess) {
    const Matrix eye = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
    Matrix m(2, 3);
    m(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
    EXPECT_THROW(m.at(2, 0), InvalidArgumentError);
}

TEST(Matrix, MatrixVectorProduct) {
    Matrix m(2, 3);
    // [1 2 3; 4 5 6]
    m(0, 0) = 1;
    m(0, 1) = 2;
    m(0, 2) = 3;
    m(1, 0) = 4;
    m(1, 1) = 5;
    m(1, 2) = 6;
    const Vector x{1.0, 0.0, -1.0};
    const Vector y = m.multiply(x);
    EXPECT_DOUBLE_EQ(y[0], -2.0);
    EXPECT_DOUBLE_EQ(y[1], -2.0);

    const Vector yt = m.multiplyTransposed(Vector{1.0, 1.0});
    EXPECT_DOUBLE_EQ(yt[0], 5.0);
    EXPECT_DOUBLE_EQ(yt[1], 7.0);
    EXPECT_DOUBLE_EQ(yt[2], 9.0);
}

TEST(Matrix, MultiplyAccumulateAddsScaled) {
    Matrix m = Matrix::identity(2);
    Vector y{10.0, 20.0};
    m.multiplyAccumulate(Vector{1.0, 2.0}, 3.0, y);
    EXPECT_DOUBLE_EQ(y[0], 13.0);
    EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(Matrix, MatrixMatrixProductAndTranspose) {
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    const Matrix b = a.transposed();
    EXPECT_DOUBLE_EQ(b(0, 1), 3.0);
    const Matrix c = a.multiply(b);  // A A^T is symmetric
    EXPECT_DOUBLE_EQ(c(0, 1), c(1, 0));
    EXPECT_DOUBLE_EQ(c(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 25.0);
}

TEST(Matrix, Norms) {
    Matrix m(2, 2);
    m(0, 0) = -1;
    m(0, 1) = 2;
    m(1, 0) = 0.5;
    m(1, 1) = 0.25;
    EXPECT_DOUBLE_EQ(m.normInf(), 3.0);
    Matrix m2 = m;
    m2(1, 1) = 1.25;
    EXPECT_DOUBLE_EQ(m.maxAbsDiff(m2), 1.0);
}

TEST(Matrix, ShapeMismatchThrows) {
    Matrix a(2, 3);
    const Matrix b(3, 2);
    EXPECT_THROW(a += b, InvalidArgumentError);
    EXPECT_THROW(a.multiply(Vector(2)), InvalidArgumentError);
    EXPECT_THROW(Matrix(2, 2).multiply(Matrix(3, 3)), InvalidArgumentError);
}

}  // namespace
}  // namespace shtrace
