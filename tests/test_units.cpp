// Tests for SI-suffixed engineering number parsing and formatting.
#include <gtest/gtest.h>

#include "shtrace/util/error.hpp"
#include "shtrace/util/units.hpp"

namespace shtrace {
namespace {

TEST(Units, ParsesPlainNumbers) {
    EXPECT_DOUBLE_EQ(*parseEngineering("2.5"), 2.5);
    EXPECT_DOUBLE_EQ(*parseEngineering("-3"), -3.0);
    EXPECT_DOUBLE_EQ(*parseEngineering("1e-9"), 1e-9);
    EXPECT_DOUBLE_EQ(*parseEngineering("0"), 0.0);
}

struct SuffixCase {
    const char* text;
    double expected;
};

class UnitsSuffix : public ::testing::TestWithParam<SuffixCase> {};

TEST_P(UnitsSuffix, ParsesSuffix) {
    const auto& [text, expected] = GetParam();
    const auto value = parseEngineering(text);
    ASSERT_TRUE(value.has_value()) << text;
    EXPECT_NEAR(*value, expected, std::abs(expected) * 1e-12) << text;
}

INSTANTIATE_TEST_SUITE_P(
    AllSuffixes, UnitsSuffix,
    ::testing::Values(
        SuffixCase{"10k", 10e3}, SuffixCase{"10K", 10e3},
        SuffixCase{"3meg", 3e6}, SuffixCase{"3MEG", 3e6},
        SuffixCase{"2g", 2e9}, SuffixCase{"1t", 1e12},
        SuffixCase{"5m", 5e-3}, SuffixCase{"5u", 5e-6},
        SuffixCase{"0.1n", 0.1e-9}, SuffixCase{"5p", 5e-12},
        SuffixCase{"5f", 5e-15}, SuffixCase{"2a", 2e-18},
        SuffixCase{"1mil", 25.4e-6},
        // Trailing unit letters are ignored, as in SPICE.
        SuffixCase{"10kOhm", 10e3}, SuffixCase{"2.5V", 2.5},
        SuffixCase{"100pF", 100e-12}, SuffixCase{"-0.3ns", -0.3e-9}));

TEST(Units, RejectsMalformedInput) {
    EXPECT_FALSE(parseEngineering("").has_value());
    EXPECT_FALSE(parseEngineering("abc").has_value());
    EXPECT_FALSE(parseEngineering("1.2.3").has_value());
    EXPECT_FALSE(parseEngineering("3k9").has_value());  // digit after suffix
}

TEST(Units, ThrowingParserReportsLine) {
    EXPECT_DOUBLE_EQ(parseEngineeringOrThrow("4n", 7), 4e-9);
    try {
        parseEngineeringOrThrow("bogus", 42);
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 42);
    }
}

TEST(Units, FormatsWithPrefixes) {
    EXPECT_EQ(formatEngineering(2.98e-10, "s"), "298ps");
    EXPECT_EQ(formatEngineering(1.25, "V"), "1.25V");
    EXPECT_EQ(formatEngineering(10e3, "Hz"), "10kHz");
    EXPECT_EQ(formatEngineering(-3.3e-9, "s"), "-3.3ns");
    EXPECT_EQ(formatEngineering(0.0, "s"), "0s");
}

TEST(Units, FormatRoundTripsThroughParse) {
    for (double v : {1e-15, 2.5e-12, 3.3e-9, 4.7e-6, 1e-3, 1.0, 42.0, 1e3,
                     2e6, 3e9}) {
        const std::string text = formatEngineering(v, "", 9);
        const auto parsed = parseEngineering(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        EXPECT_NEAR(*parsed, v, v * 1e-6) << text;
    }
}

}  // namespace
}  // namespace shtrace
