// Tests for passive devices, sources and the MNA assembly: stamp values and
// the Jacobian consistency property G = df/dx, C = dq/dx (central FD).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "shtrace/circuit/circuit.hpp"
#include "shtrace/devices/capacitor.hpp"
#include "shtrace/devices/diode.hpp"
#include "shtrace/devices/inductor.hpp"
#include "shtrace/devices/mosfet.hpp"
#include "shtrace/devices/resistor.hpp"
#include "shtrace/devices/sources.hpp"
#include "shtrace/devices/vcvs.hpp"
#include "shtrace/util/error.hpp"

namespace shtrace {
namespace {

/// Checks G = df/dx and C = dq/dx by central differences at state x.
void checkJacobians(const Circuit& ckt, const Vector& x, double t,
                    double delta = 1e-7, double tol = 1e-4) {
    Assembler asmb(ckt.systemSize());
    ckt.assemble(x, t, asmb);
    const Matrix g = asmb.g();
    const Matrix c = asmb.c();
    const std::size_t n = ckt.systemSize();
    for (std::size_t j = 0; j < n; ++j) {
        Vector xp = x;
        xp[j] += delta;
        ckt.assemble(xp, t, asmb);
        const Vector fPlus = asmb.f();
        const Vector qPlus = asmb.q();
        Vector xm = x;
        xm[j] -= delta;
        ckt.assemble(xm, t, asmb);
        const Vector fMinus = asmb.f();
        const Vector qMinus = asmb.q();
        for (std::size_t i = 0; i < n; ++i) {
            const double fdG = (fPlus[i] - fMinus[i]) / (2.0 * delta);
            const double fdC = (qPlus[i] - qMinus[i]) / (2.0 * delta);
            EXPECT_NEAR(g(i, j), fdG, tol * (1.0 + std::fabs(fdG)))
                << "G(" << i << "," << j << ")";
            EXPECT_NEAR(c(i, j), fdC, tol * (1.0 + std::fabs(fdC)))
                << "C(" << i << "," << j << ")";
        }
    }
}

TEST(Resistor, StampsOhmsLaw) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    const NodeId b = ckt.node("b");
    ckt.add<Resistor>("R1", a, b, 1e3);
    ckt.finalize();
    Assembler asmb(ckt.systemSize());
    Vector x(2);
    x[0] = 2.0;  // v(a)
    x[1] = 0.5;  // v(b)
    ckt.assemble(x, 0.0, asmb);
    EXPECT_NEAR(asmb.f()[0], 1.5e-3, 1e-15);   // current leaving a
    EXPECT_NEAR(asmb.f()[1], -1.5e-3, 1e-15);  // current entering b
    EXPECT_NEAR(asmb.g()(0, 0), 1e-3, 1e-15);
    EXPECT_NEAR(asmb.g()(0, 1), -1e-3, 1e-15);
}

TEST(Resistor, GroundedTerminalDropsRow) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<Resistor>("R1", a, kGround, 2e3);
    ckt.finalize();
    EXPECT_EQ(ckt.systemSize(), 1u);
    Assembler asmb(1);
    Vector x(1);
    x[0] = 4.0;
    ckt.assemble(x, 0.0, asmb);
    EXPECT_NEAR(asmb.f()[0], 2e-3, 1e-15);
    EXPECT_NEAR(asmb.g()(0, 0), 5e-4, 1e-15);
}

TEST(Resistor, RejectsNonPositive) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    EXPECT_THROW(ckt.add<Resistor>("R1", a, kGround, 0.0),
                 InvalidArgumentError);
    EXPECT_THROW(ckt.add<Resistor>("R2", a, kGround, -5.0),
                 InvalidArgumentError);
}

TEST(Capacitor, StampsChargeAndCapacitance) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<Capacitor>("C1", a, kGround, 1e-12);
    ckt.finalize();
    Assembler asmb(1);
    Vector x(1);
    x[0] = 2.5;
    ckt.assemble(x, 0.0, asmb);
    EXPECT_NEAR(asmb.q()[0], 2.5e-12, 1e-24);
    EXPECT_NEAR(asmb.c()(0, 0), 1e-12, 1e-24);
    EXPECT_DOUBLE_EQ(asmb.f()[0], 0.0);  // no resistive current
}

TEST(VoltageSource, EnforcesBranchEquation) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<VoltageSource>("V1", a, kGround, 1.8);
    ckt.add<Resistor>("R1", a, kGround, 1e3);
    ckt.finalize();
    ASSERT_EQ(ckt.systemSize(), 2u);  // node + branch
    Assembler asmb(2);
    Vector x(2);
    x[0] = 1.8;      // consistent node voltage
    x[1] = -1.8e-3;  // branch current INTO the + terminal
    ckt.assemble(x, 0.0, asmb);
    // Node KCL: branch current + resistor current = 0.
    EXPECT_NEAR(asmb.f()[0], 0.0, 1e-15);
    // Branch row: v(a) - 1.8 = 0.
    EXPECT_NEAR(asmb.f()[1], 0.0, 1e-15);
}

TEST(CurrentSource, PushesCurrentIntoNegNode) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<CurrentSource>("I1", kGround, a, 1e-3);  // pumps INTO a
    ckt.add<Resistor>("R1", a, kGround, 1e3);
    ckt.finalize();
    Assembler asmb(1);
    Vector x(1);
    x[0] = 1.0;  // v = I*R
    ckt.assemble(x, 0.0, asmb);
    EXPECT_NEAR(asmb.f()[0], 0.0, 1e-15);
}

TEST(Inductor, BranchEquationRelatesFluxAndVoltage) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<Inductor>("L1", a, kGround, 1e-9);
    ckt.add<Resistor>("R1", a, kGround, 50.0);
    ckt.finalize();
    ASSERT_EQ(ckt.systemSize(), 2u);
    Assembler asmb(2);
    Vector x(2);
    x[0] = 3.0;   // v(a)
    x[1] = 0.25;  // inductor current
    ckt.assemble(x, 0.0, asmb);
    // Node KCL: iL + v/R.
    EXPECT_NEAR(asmb.f()[0], 0.25 + 3.0 / 50.0, 1e-15);
    // Branch: f = v(a), q = -L*i.
    EXPECT_NEAR(asmb.f()[1], 3.0, 1e-15);
    EXPECT_NEAR(asmb.q()[1], -1e-9 * 0.25, 1e-24);
}

TEST(Vcvs, AmplifiesControlVoltage) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("V1", in, kGround, 0.1);
    ckt.add<Vcvs>("E1", out, kGround, in, kGround, 10.0);
    ckt.add<Resistor>("R1", out, kGround, 1e3);
    ckt.finalize();
    // At the consistent solution out = 1.0.
    Assembler asmb(ckt.systemSize());
    Vector x(ckt.systemSize());
    x[static_cast<std::size_t>(in.index)] = 0.1;
    x[static_cast<std::size_t>(out.index)] = 1.0;
    // branch currents: V1 carries 0 (no load on in), E1 carries -1 mA.
    x[2] = 0.0;
    x[3] = -1e-3;
    ckt.assemble(x, 0.0, asmb);
    for (std::size_t i = 0; i < ckt.systemSize(); ++i) {
        EXPECT_NEAR(asmb.f()[i], 0.0, 1e-12) << "row " << i;
    }
}

TEST(Diode, ForwardCurrentMatchesShockley) {
    DiodeParams p;
    double i = 0.0;
    double g = 0.0;
    Diode::currentAndConductance(p, 0.6, i, g);
    const double expected = p.is * (std::exp(0.6 / p.vt) - 1.0);
    EXPECT_NEAR(i, expected, expected * 1e-12);
    EXPECT_NEAR(g, expected / p.vt + p.is / p.vt, expected / p.vt * 1e-6);
}

TEST(Diode, OverflowLimitingIsC1) {
    DiodeParams p;
    const double vCap = p.maxExpArg * p.n * p.vt;
    double iBelow = 0.0;
    double gBelow = 0.0;
    double iAbove = 0.0;
    double gAbove = 0.0;
    Diode::currentAndConductance(p, vCap - 1e-9, iBelow, gBelow);
    Diode::currentAndConductance(p, vCap + 1e-9, iAbove, gAbove);
    EXPECT_NEAR(iBelow, iAbove, std::fabs(iBelow) * 1e-4);
    EXPECT_NEAR(gBelow, gAbove, std::fabs(gBelow) * 1e-4);
    // And no overflow far beyond the cap.
    Diode::currentAndConductance(p, 100.0, iAbove, gAbove);
    EXPECT_TRUE(std::isfinite(iAbove));
    EXPECT_TRUE(std::isfinite(gAbove));
}

TEST(Diode, DepletionChargeContinuousAtFcVj) {
    DiodeParams p;
    p.cj0 = 1e-12;
    const double vSwitch = p.fc * p.vj;
    double qBelow = 0.0;
    double cBelow = 0.0;
    double qAbove = 0.0;
    double cAbove = 0.0;
    Diode::chargeAndCapacitance(p, vSwitch - 1e-9, qBelow, cBelow);
    Diode::chargeAndCapacitance(p, vSwitch + 1e-9, qAbove, cAbove);
    EXPECT_NEAR(qBelow, qAbove, 1e-18);
    EXPECT_NEAR(cBelow, cAbove, cBelow * 1e-4);
}

TEST(Diode, CapacitanceIsDerivativeOfCharge) {
    DiodeParams p;
    p.cj0 = 2e-12;
    p.tt = 1e-12;
    const double dv = 1e-6;
    for (double v : {-1.0, 0.0, 0.3, p.fc * p.vj + 0.05, 0.7}) {
        double qp = 0.0;
        double cp = 0.0;
        double qm = 0.0;
        double cm = 0.0;
        double q0 = 0.0;
        double c0 = 0.0;
        Diode::chargeAndCapacitance(p, v + dv, qp, cp);
        Diode::chargeAndCapacitance(p, v - dv, qm, cm);
        Diode::chargeAndCapacitance(p, v, q0, c0);
        EXPECT_NEAR((qp - qm) / (2.0 * dv), c0, 1e-4 * c0 + 1e-18)
            << "v=" << v;
    }
}

// The assembled Jacobians of a kitchen-sink circuit match finite
// differences of the assembled residual/charge -- the single most
// load-bearing property for Newton and the sensitivity recurrences.
class JacobianConsistency : public ::testing::TestWithParam<int> {};

TEST_P(JacobianConsistency, MatchesFiniteDifference) {
    const int variant = GetParam();
    Circuit ckt;
    const NodeId n1 = ckt.node("n1");
    const NodeId n2 = ckt.node("n2");
    const NodeId n3 = ckt.node("n3");
    ckt.add<VoltageSource>("V1", n1, kGround, 2.5);
    ckt.add<Resistor>("R1", n1, n2, 10e3);
    ckt.add<Capacitor>("C1", n2, kGround, 1e-12);
    DiodeParams dp;
    dp.cj0 = 0.5e-12;
    dp.tt = 2e-12;
    ckt.add<Diode>("D1", n2, n3, dp);
    ckt.add<Resistor>("R2", n3, kGround, 5e3);
    ckt.add<Inductor>("L1", n2, n3, 2e-9);
    MosfetParams mp;
    mp.type = variant == 0 ? MosfetType::Nmos : MosfetType::Pmos;
    mp.gamma = 0.4;
    mp.cgs = 1e-15;
    mp.cgd = 1e-15;
    mp.cdb = 0.5e-15;
    ckt.add<Mosfet>("M1", n3, n2, kGround, kGround, mp);
    ckt.finalize();

    Vector x(ckt.systemSize());
    // A generic operating point away from region boundaries.
    x[0] = 2.5;
    x[1] = variant == 0 ? 1.3 : -0.9;
    x[2] = 0.4;
    for (std::size_t i = 3; i < x.size(); ++i) {
        x[i] = 1e-4;
    }
    checkJacobians(ckt, x, 0.0);
}

INSTANTIATE_TEST_SUITE_P(NmosAndPmos, JacobianConsistency,
                         ::testing::Values(0, 1));

}  // namespace
}  // namespace shtrace
