// Tests for the batch library-characterization flow and Liberty-lite
// output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "shtrace/cells/c2mos.hpp"
#include "shtrace/cells/tspc.hpp"
#include "shtrace/chz/library.hpp"

namespace shtrace {
namespace {

std::vector<LibraryCell> twoCellLibrary() {
    CriterionOptions c2mosCrit;
    c2mosCrit.transitionFraction = 0.9;
    return {
        LibraryCell{"TSPC_X1", [] { return buildTspcRegister(); },
                    CriterionOptions{}},
        LibraryCell{"C2MOS_X1", [] { return buildC2mosRegister(); },
                    c2mosCrit},
    };
}

LibraryFlowOptions fastFlow(bool contours) {
    LibraryFlowOptions opt;
    opt.traceContours = contours;
    opt.tracer.maxPoints = 6;
    opt.tracer.bounds = SkewBounds{80e-12, 900e-12, 40e-12, 700e-12};
    return opt;
}

TEST(LibraryFlow, CharacterizesAllCells) {
    const auto rows = characterizeLibrary(twoCellLibrary(), fastFlow(true));
    ASSERT_EQ(rows.size(), 2u);
    for (const auto& row : rows) {
        EXPECT_TRUE(row.success) << row.cell << ": " << row.failureReason;
        EXPECT_GT(row.setupTime, 0.0) << row.cell;
        EXPECT_GT(row.holdTime, 0.0) << row.cell;
        EXPECT_GE(row.contour.size(), 3u) << row.cell;
        EXPECT_GT(row.stats.transientSolves, 0u) << row.cell;
    }
    // C2MOS (delayed clk-bar) needs more setup than TSPC.
    EXPECT_GT(rows[1].setupTime, rows[0].setupTime);
}

TEST(LibraryFlow, IndependentOnlyModeSkipsContours) {
    const auto rows = characterizeLibrary(
        {twoCellLibrary()[0]}, fastFlow(false));
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(rows[0].success);
    EXPECT_TRUE(rows[0].contour.empty());
}

TEST(LibraryFlow, BuilderFailureIsReportedPerRow) {
    std::vector<LibraryCell> cells = twoCellLibrary();
    cells.push_back(LibraryCell{
        "BROKEN",
        []() -> RegisterFixture {
            throw NumericalError("intentionally broken builder");
        },
        CriterionOptions{}});
    const auto rows = characterizeLibrary(cells, fastFlow(false));
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_TRUE(rows[0].success);
    EXPECT_FALSE(rows[2].success);
    EXPECT_NE(rows[2].failureReason.find("broken"), std::string::npos);
}

TEST(LibraryFlow, LibertyLiteOutputContainsTheNumbers) {
    const auto rows = characterizeLibrary(twoCellLibrary(), fastFlow(true));
    const std::string path = ::testing::TempDir() + "/shtrace_lib.lib";
    writeLibertyLite(rows, path, "testlib");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    EXPECT_NE(text.find("library (testlib)"), std::string::npos);
    EXPECT_NE(text.find("cell (TSPC_X1)"), std::string::npos);
    EXPECT_NE(text.find("cell (C2MOS_X1)"), std::string::npos);
    EXPECT_NE(text.find("setup_rising"), std::string::npos);
    EXPECT_NE(text.find("hold_rising"), std::string::npos);
    EXPECT_NE(text.find("setup_hold_contour"), std::string::npos);
    std::remove(path.c_str());
}

TEST(LibraryFlow, LibertyLiteMarksFailedCells) {
    std::vector<LibraryRow> rows(1);
    rows[0].cell = "DEAD";
    rows[0].failureReason = "no latch";
    const std::string path = ::testing::TempDir() + "/shtrace_dead.lib";
    writeLibertyLite(rows, path);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("CHARACTERIZATION FAILED: no latch"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(LibraryFlow, WriteToBadPathThrows) {
    EXPECT_THROW(writeLibertyLite({}, "/no_such_dir_xyz/lib.lib"), Error);
}

}  // namespace
}  // namespace shtrace
